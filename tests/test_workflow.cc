// Tests for workflow specs (edges, topo order) and the WorkflowRunner
// across all three coupling disciplines, including the headline
// invariant: identical application code and results in every mode.
#include <gtest/gtest.h>

#include "src/apps/paper_apps.h"
#include "src/common/tempfile.h"
#include "src/vfs/local_client.h"
#include "src/workflow/runner.h"

namespace griddles::workflow {
namespace {

apps::AppKernel make_kernel(const std::string& name, double work,
                            std::vector<apps::StreamSpec> inputs,
                            std::vector<apps::StreamSpec> outputs) {
  apps::AppKernel kernel;
  kernel.name = name;
  kernel.work_units = work;
  kernel.timesteps = 8;
  kernel.inputs = std::move(inputs);
  kernel.outputs = std::move(outputs);
  kernel.verify_inputs = true;  // tests always verify content integrity
  return kernel;
}

/// A small 3-stage pipeline: gen -> filter -> sink.
std::vector<apps::AppKernel> tiny_pipeline() {
  constexpr std::uint64_t kBytes = 200 * 1000;
  return {
      make_kernel("gen", 6, {}, {{"mid.dat", kBytes}}),
      make_kernel("filter", 2, {{"mid.dat", kBytes}},
                  {{"out.dat", kBytes / 2}}),
      make_kernel("sink", 4, {{"out.dat", kBytes / 2}},
                  {{"final.dat", 1000}}),
  };
}

TEST(SpecTest, InfersEdges) {
  auto spec = WorkflowSpec::from_pipeline("t", tiny_pipeline(), {"jagan"});
  ASSERT_TRUE(spec.is_ok());
  auto edges = infer_edges(*spec);
  ASSERT_TRUE(edges.is_ok());
  ASSERT_EQ(edges->size(), 2u);
  // Edges sorted by path: mid.dat, out.dat.
  EXPECT_EQ((*edges)[0].path, "mid.dat");
  EXPECT_EQ((*edges)[0].producer, 0u);
  EXPECT_EQ((*edges)[0].consumers, std::vector<std::size_t>{1});
  EXPECT_EQ((*edges)[1].path, "out.dat");
  EXPECT_EQ((*edges)[1].producer, 1u);
}

TEST(SpecTest, TopologicalOrder) {
  auto spec = WorkflowSpec::from_pipeline("t", tiny_pipeline(), {"jagan"});
  auto edges = infer_edges(*spec);
  auto order = topological_order(*spec, *edges);
  ASSERT_TRUE(order.is_ok());
  EXPECT_EQ(*order, (std::vector<std::size_t>{0, 1, 2}));
}

TEST(SpecTest, CycleDetected) {
  std::vector<apps::AppKernel> cyclic = {
      make_kernel("a", 1, {{"x", 10}}, {{"y", 10}}),
      make_kernel("b", 1, {{"y", 10}}, {{"x", 10}}),
  };
  auto spec = WorkflowSpec::from_pipeline("c", cyclic, {"jagan"});
  auto edges = infer_edges(*spec);
  ASSERT_TRUE(edges.is_ok());
  EXPECT_FALSE(topological_order(*spec, *edges).is_ok());
}

TEST(SpecTest, DoubleProducerRejected) {
  std::vector<apps::AppKernel> bad = {
      make_kernel("a", 1, {}, {{"x", 10}}),
      make_kernel("b", 1, {}, {{"x", 10}}),
  };
  auto spec = WorkflowSpec::from_pipeline("d", bad, {"jagan"});
  EXPECT_FALSE(infer_edges(*spec).is_ok());
}

TEST(SpecTest, MachineCountValidation) {
  EXPECT_FALSE(
      WorkflowSpec::from_pipeline("t", tiny_pipeline(), {}).is_ok());
  EXPECT_FALSE(WorkflowSpec::from_pipeline("t", tiny_pipeline(),
                                           {"a", "b"})
                   .is_ok());
  EXPECT_TRUE(WorkflowSpec::from_pipeline("t", tiny_pipeline(),
                                          {"jagan", "dione", "vpac27"})
                  .is_ok());
}

TEST(SpecTest, ExternalInputsDetected) {
  std::vector<apps::AppKernel> kernels = {
      make_kernel("only", 1, {{"given.dat", 100}}, {{"out", 10}}),
  };
  auto spec = WorkflowSpec::from_pipeline("e", kernels, {"jagan"});
  auto edges = infer_edges(*spec);
  auto externals = external_inputs(*spec, *edges, 0);
  ASSERT_EQ(externals.size(), 1u);
  EXPECT_EQ(externals[0].path, "given.dat");
}

class RunnerTest : public ::testing::Test {
 protected:
  RunnerTest() : dir_(*TempDir::create("wf-test")) {}

  /// 1 model second = 0.2 wall ms: a minute-long model run fits in ~12ms.
  testbed::TestbedRuntime make_testbed() {
    return testbed::TestbedRuntime(0.0002, dir_.path().string(),
                                   /*byte_scale=*/1.0);
  }

  TempDir dir_;
};

TEST_F(RunnerTest, SequentialFilesSingleMachine) {
  auto testbed = make_testbed();
  WorkflowRunner runner(testbed);
  auto spec = WorkflowSpec::from_pipeline("seq", tiny_pipeline(), {"jagan"});
  ASSERT_TRUE(spec.is_ok());
  WorkflowRunner::Options options;
  options.mode = CouplingMode::kSequentialFiles;
  auto report = runner.run(*spec, options);
  ASSERT_TRUE(report.is_ok()) << report.status();
  ASSERT_EQ(report->tasks.size(), 3u);
  EXPECT_TRUE(report->copies.empty());
  // Stages strictly ordered.
  EXPECT_LE(report->tasks[0].finished_s, report->tasks[1].started_s + 1e-6);
  EXPECT_LE(report->tasks[1].finished_s, report->tasks[2].started_s + 1e-6);
  // jagan at 0.35 units/s: gen alone needs ~17 model seconds.
  EXPECT_GT(report->total_seconds, (6 + 2 + 4) / 0.35 * 0.9);
}

TEST_F(RunnerTest, GridBuffersPipelineOverlapsStages) {
  auto testbed = make_testbed();
  WorkflowRunner runner(testbed);
  auto spec = WorkflowSpec::from_pipeline("buf", tiny_pipeline(), {"jagan"});
  ASSERT_TRUE(spec.is_ok());
  WorkflowRunner::Options options;
  options.mode = CouplingMode::kGridBuffers;
  auto report = runner.run(*spec, options);
  ASSERT_TRUE(report.is_ok()) << report.status();
  ASSERT_EQ(report->tasks.size(), 3u);
  // Downstream stages START before upstream stages FINISH (overlap).
  const TaskResult* gen = report->task("gen");
  const TaskResult* sink = report->task("sink");
  ASSERT_NE(gen, nullptr);
  ASSERT_NE(sink, nullptr);
  EXPECT_LT(sink->started_s, gen->finished_s);
}

TEST_F(RunnerTest, ConcurrentFilesTailsAndCompletes) {
  auto testbed = make_testbed();
  WorkflowRunner runner(testbed);
  auto spec = WorkflowSpec::from_pipeline("cf", tiny_pipeline(), {"jagan"});
  ASSERT_TRUE(spec.is_ok());
  WorkflowRunner::Options options;
  options.mode = CouplingMode::kConcurrentFiles;
  options.poll_interval = std::chrono::milliseconds(200);
  auto report = runner.run(*spec, options);
  ASSERT_TRUE(report.is_ok()) << report.status();
  ASSERT_EQ(report->tasks.size(), 3u);
}

TEST_F(RunnerTest, ConcurrentFilesRequiresOneMachine) {
  auto testbed = make_testbed();
  WorkflowRunner runner(testbed);
  auto spec = WorkflowSpec::from_pipeline(
      "cf2", tiny_pipeline(), {"jagan", "dione", "vpac27"});
  ASSERT_TRUE(spec.is_ok());
  WorkflowRunner::Options options;
  options.mode = CouplingMode::kConcurrentFiles;
  EXPECT_FALSE(runner.run(*spec, options).is_ok());
}

TEST_F(RunnerTest, DistributedSequentialCopiesBetweenMachines) {
  auto testbed = make_testbed();
  WorkflowRunner runner(testbed);
  auto spec = WorkflowSpec::from_pipeline(
      "dist", tiny_pipeline(), {"brecca", "dione", "freak"});
  ASSERT_TRUE(spec.is_ok());
  WorkflowRunner::Options options;
  options.mode = CouplingMode::kSequentialFiles;
  auto report = runner.run(*spec, options);
  ASSERT_TRUE(report.is_ok()) << report.status();
  // Two cross-machine edges -> two staged copies.
  ASSERT_EQ(report->copies.size(), 2u);
  EXPECT_EQ(report->copies[0].from, "brecca");
  EXPECT_EQ(report->copies[0].to, "dione");
  EXPECT_GT(report->copies[0].seconds, 0.0);
}

TEST_F(RunnerTest, DistributedBuffersStreamAcrossMachines) {
  auto testbed = make_testbed();
  WorkflowRunner runner(testbed);
  auto spec = WorkflowSpec::from_pipeline(
      "distbuf", tiny_pipeline(), {"brecca", "dione", "freak"});
  ASSERT_TRUE(spec.is_ok());
  WorkflowRunner::Options options;
  options.mode = CouplingMode::kGridBuffers;
  auto report = runner.run(*spec, options);
  ASSERT_TRUE(report.is_ok()) << report.status();
  EXPECT_EQ(report->tasks.size(), 3u);
  EXPECT_TRUE(report->copies.empty());
}

TEST_F(RunnerTest, SameResultBytesInEveryMode) {
  // The headline claim: switching coupling changes ONLY timing, never
  // results. verify_inputs=true already checks every transferred byte;
  // here we additionally compare the final artifact across modes.
  std::map<std::string, std::uint64_t> checksums;
  for (const CouplingMode mode :
       {CouplingMode::kSequentialFiles, CouplingMode::kConcurrentFiles,
        CouplingMode::kGridBuffers}) {
    auto scratch = TempDir::create("wf-mode");
    testbed::TestbedRuntime testbed(0.0002, scratch->path().string());
    WorkflowRunner runner(testbed);
    auto spec =
        WorkflowSpec::from_pipeline("same", tiny_pipeline(), {"jagan"});
    ASSERT_TRUE(spec.is_ok());
    WorkflowRunner::Options options;
    options.mode = mode;
    auto report = runner.run(*spec, options);
    ASSERT_TRUE(report.is_ok())
        << coupling_mode_name(mode) << ": " << report.status();
    auto final_bytes = vfs::read_file(
        (std::filesystem::path(scratch->path()) / "jagan" / "final.dat")
            .string());
    ASSERT_TRUE(final_bytes.is_ok()) << coupling_mode_name(mode);
    checksums[std::string(coupling_mode_name(mode))] = fnv1a(*final_bytes);
  }
  ASSERT_EQ(checksums.size(), 3u);
  const auto first = checksums.begin()->second;
  for (const auto& [mode, checksum] : checksums) {
    EXPECT_EQ(checksum, first) << mode;
  }
}

TEST_F(RunnerTest, BroadcastEdgeFeedsTwoConsumers) {
  constexpr std::uint64_t kBytes = 100 * 1000;
  std::vector<apps::AppKernel> fanout = {
      make_kernel("src", 3, {}, {{"shared.dat", kBytes}}),
      make_kernel("left", 2, {{"shared.dat", kBytes}}, {{"l.out", 100}}),
      make_kernel("right", 2, {{"shared.dat", kBytes}}, {{"r.out", 100}}),
  };
  auto testbed = make_testbed();
  WorkflowRunner runner(testbed);
  auto spec = WorkflowSpec::from_pipeline("fan", fanout, {"dione"});
  ASSERT_TRUE(spec.is_ok());
  WorkflowRunner::Options options;
  options.mode = CouplingMode::kGridBuffers;
  auto report = runner.run(*spec, options);
  ASSERT_TRUE(report.is_ok()) << report.status();
  EXPECT_EQ(report->tasks.size(), 3u);
}

TEST_F(RunnerTest, BroadcastAcrossMachines) {
  // One writer on brecca, readers on dione and freak: the buffer sits at
  // the first reader's end (paper §3.1) and both readers see the whole
  // stream across their own links.
  constexpr std::uint64_t kBytes = 80 * 1000;
  std::vector<apps::AppKernel> fanout = {
      make_kernel("src", 3, {}, {{"shared.dat", kBytes}}),
      make_kernel("left", 2, {{"shared.dat", kBytes}}, {{"l.out", 100}}),
      make_kernel("right", 2, {{"shared.dat", kBytes}}, {{"r.out", 100}}),
  };
  auto testbed = make_testbed();
  WorkflowRunner runner(testbed);
  WorkflowSpec spec;
  spec.name = "xfan";
  spec.tasks = {TaskSpec{fanout[0], "brecca"},
                TaskSpec{fanout[1], "dione"},
                TaskSpec{fanout[2], "freak"}};
  WorkflowRunner::Options options;
  options.mode = CouplingMode::kGridBuffers;
  auto report = runner.run(spec, options);
  ASSERT_TRUE(report.is_ok()) << report.status();
  EXPECT_EQ(report->tasks.size(), 3u);
  // verify_inputs=true in make_kernel already proved byte integrity on
  // both consumers.
}

TEST_F(RunnerTest, RerreadThroughBufferCache) {
  // DARLAM-style: consumer re-reads the head of its streamed input.
  constexpr std::uint64_t kBytes = 150 * 1000;
  auto pipeline = std::vector<apps::AppKernel>{
      make_kernel("w", 2, {}, {{"s.dat", kBytes}}),
      make_kernel("r", 2, {{"s.dat", kBytes}}, {{"done", 100}}),
  };
  pipeline[1].reread_bytes = kBytes / 3;
  auto testbed = make_testbed();
  WorkflowRunner runner(testbed);
  auto spec = WorkflowSpec::from_pipeline("rr", pipeline, {"brecca"});
  ASSERT_TRUE(spec.is_ok());
  WorkflowRunner::Options options;
  options.mode = CouplingMode::kGridBuffers;
  options.buffer_cache = true;
  auto report = runner.run(*spec, options);
  ASSERT_TRUE(report.is_ok()) << report.status();
}

TEST_F(RunnerTest, PaperPipelinesAreWellFormed) {
  for (double scale : {1.0, 64.0}) {
    auto durability = apps::durability_pipeline(scale);
    EXPECT_EQ(durability.size(), 5u);
    auto spec = WorkflowSpec::from_pipeline("dur", durability, {"jagan"});
    ASSERT_TRUE(spec.is_ok());
    auto edges = infer_edges(*spec);
    ASSERT_TRUE(edges.is_ok());
    EXPECT_GE(edges->size(), 8u);  // the Figure 5 JOB.* files
    ASSERT_TRUE(topological_order(*spec, *edges).is_ok());

    auto climate = apps::climate_pipeline(scale);
    EXPECT_EQ(climate.size(), 3u);
    auto cspec = WorkflowSpec::from_pipeline("cli", climate, {"dione"});
    auto cedges = infer_edges(*cspec);
    ASSERT_TRUE(cedges.is_ok());
    EXPECT_EQ(cedges->size(), 2u);
  }
  EXPECT_TRUE(apps::kernel_named(apps::climate_pipeline(), "darlam")
                  .is_ok());
  EXPECT_FALSE(apps::kernel_named(apps::climate_pipeline(), "nope")
                   .is_ok());
}

}  // namespace
}  // namespace griddles::workflow
