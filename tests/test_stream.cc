// Tests for GlStream, the buffered line-oriented layer over the FM.
#include <gtest/gtest.h>

#include <thread>

#include "src/common/tempfile.h"
#include "src/core/stream.h"
#include "src/gns/service.h"
#include "src/gridbuffer/server.h"
#include "src/net/inproc.h"

namespace griddles::core {
namespace {

class StreamTest : public ::testing::Test {
 protected:
  StreamTest() : dir_(*TempDir::create("stream-test")) {
    FileMultiplexer::Options options;
    options.host = "localhost";
    options.local_root = dir_.path().string();
    fm_ = std::make_unique<FileMultiplexer>(options);
  }
  TempDir dir_;
  std::unique_ptr<FileMultiplexer> fm_;
};

TEST_F(StreamTest, WriteLinesReadLinesBack) {
  {
    auto out = GlStream::open(*fm_, "lines.txt", "w");
    ASSERT_TRUE(out.is_ok());
    ASSERT_TRUE(out->write_line("first").is_ok());
    ASSERT_TRUE(out->write_line("").is_ok());
    ASSERT_TRUE(out->write_line("third line with spaces").is_ok());
    ASSERT_TRUE(out->close().is_ok());
  }
  auto in = GlStream::open(*fm_, "lines.txt", "r");
  ASSERT_TRUE(in.is_ok());
  EXPECT_EQ(in->read_line()->value(), "first");
  EXPECT_EQ(in->read_line()->value(), "");
  EXPECT_EQ(in->read_line()->value(), "third line with spaces");
  EXPECT_FALSE(in->read_line()->has_value());  // EOF
  EXPECT_FALSE(in->read_line()->has_value());  // stays EOF
}

TEST_F(StreamTest, FinalLineWithoutNewline) {
  {
    auto out = GlStream::open(*fm_, "tail.txt", "w");
    ASSERT_TRUE(out.is_ok());
    ASSERT_TRUE(out->write(as_bytes_view("a\nb")).is_ok());
    ASSERT_TRUE(out->close().is_ok());
  }
  auto in = GlStream::open(*fm_, "tail.txt", "r");
  ASSERT_TRUE(in.is_ok());
  EXPECT_EQ(in->read_line()->value(), "a");
  EXPECT_EQ(in->read_line()->value(), "b");
  EXPECT_FALSE(in->read_line()->has_value());
}

TEST_F(StreamTest, PrintfFormats) {
  {
    auto out = GlStream::open(*fm_, "fmt.txt", "w");
    ASSERT_TRUE(out.is_ok());
    ASSERT_TRUE(out->printf("step %04d: stress=%.2f\n", 7, 1.5).is_ok());
    // A line longer than the 512-byte stack buffer.
    std::string long_text(700, 'x');
    ASSERT_TRUE(out->printf("%s\n", long_text.c_str()).is_ok());
    ASSERT_TRUE(out->close().is_ok());
  }
  auto in = GlStream::open(*fm_, "fmt.txt", "r");
  ASSERT_TRUE(in.is_ok());
  EXPECT_EQ(in->read_line()->value(), "step 0007: stress=1.50");
  EXPECT_EQ(in->read_line()->value().size(), 700u);
}

TEST_F(StreamTest, LongLinesAcrossBufferBoundaries) {
  std::string giant(100000, 'q');
  {
    auto out = GlStream::open(*fm_, "giant.txt", "w");
    ASSERT_TRUE(out.is_ok());
    ASSERT_TRUE(out->write_line(giant).is_ok());
    ASSERT_TRUE(out->write_line("after").is_ok());
    ASSERT_TRUE(out->close().is_ok());
  }
  auto in = GlStream::open(*fm_, "giant.txt", "r");
  ASSERT_TRUE(in.is_ok());
  EXPECT_EQ(in->read_line()->value(), giant);
  EXPECT_EQ(in->read_line()->value(), "after");
}

TEST_F(StreamTest, AppendMode) {
  {
    auto out = GlStream::open(*fm_, "log.txt", "w");
    ASSERT_TRUE(out->write_line("one").is_ok());
  }
  {
    auto out = GlStream::open(*fm_, "log.txt", "a");
    ASSERT_TRUE(out->write_line("two").is_ok());
  }
  auto in = GlStream::open(*fm_, "log.txt", "r");
  EXPECT_EQ(in->read_line()->value(), "one");
  EXPECT_EQ(in->read_line()->value(), "two");
}

TEST_F(StreamTest, BadModeRejected) {
  EXPECT_FALSE(GlStream::open(*fm_, "x", "rw").is_ok());
  EXPECT_FALSE(GlStream::open(*fm_, "x", nullptr).is_ok());
}

TEST_F(StreamTest, MixedRawAndLineReads) {
  {
    auto out = GlStream::open(*fm_, "mixed.bin", "w");
    ASSERT_TRUE(out->write_line("header").is_ok());
    ASSERT_TRUE(out->write(as_bytes_view("raw-payload")).is_ok());
    ASSERT_TRUE(out->close().is_ok());
  }
  auto in = GlStream::open(*fm_, "mixed.bin", "r");
  EXPECT_EQ(in->read_line()->value(), "header");
  Bytes raw(11);
  auto got = in->read({raw.data(), raw.size()});
  ASSERT_TRUE(got.is_ok());
  EXPECT_EQ(*got, 11u);
  EXPECT_EQ(to_string(raw), "raw-payload");
}

TEST(StreamBufferTest, LinesThroughAGridBufferChannel) {
  // The line layer composes with any routing: stream lines from a writer
  // to a concurrently-running reader over a Grid Buffer.
  auto dir = TempDir::create("stream-gbuf");
  RealClock clock;
  net::InProcNetwork network(clock);
  auto service_transport = network.transport("dione");
  gns::Database db;
  gns::GnsServer gns_server(db, *service_transport,
                            net::inproc_endpoint("dione", "gns"));
  ASSERT_TRUE(gns_server.start().is_ok());
  gridbuffer::GridBufferServer buffer_server(
      dir->file("gbuf").string(), *service_transport,
      net::inproc_endpoint("dione", "gbuf"));
  ASSERT_TRUE(buffer_server.start().is_ok());
  gns::MappingRule rule;
  rule.host_pattern = "*";
  rule.path_pattern = "*feed.txt";
  rule.mapping.mode = gns::IoMode::kGridBuffer;
  rule.mapping.channel = "stream/feed";
  rule.mapping.buffer_endpoint = buffer_server.endpoint().to_string();
  db.add_rule(rule);

  auto transport = network.transport("jagan");
  gns::GnsClient gns_client(*transport, gns_server.endpoint());
  FileMultiplexer::Options options;
  options.host = "jagan";
  options.local_root = dir->file("work").string();
  options.gns = &gns_client;
  options.transport = transport.get();
  FileMultiplexer fm(options);

  constexpr int kLines = 500;
  std::thread producer([&] {
    auto out = GlStream::open(fm, "feed.txt", "w");
    ASSERT_TRUE(out.is_ok());
    for (int i = 0; i < kLines; ++i) {
      ASSERT_TRUE(out->printf("record %d value %d\n", i, i * i).is_ok());
    }
    ASSERT_TRUE(out->close().is_ok());
  });
  auto in = GlStream::open(fm, "feed.txt", "r");
  ASSERT_TRUE(in.is_ok());
  int count = 0;
  while (true) {
    auto line = in->read_line();
    ASSERT_TRUE(line.is_ok()) << line.status();
    if (!line->has_value()) break;
    EXPECT_EQ(**line, "record " + std::to_string(count) + " value " +
                          std::to_string(count * count));
    ++count;
  }
  producer.join();
  EXPECT_EQ(count, kLines);
  buffer_server.stop();
  gns_server.stop();
}

}  // namespace
}  // namespace griddles::core
