// Robustness ("fuzz-ish") tests: decoders and servers must reject — not
// crash on, not hang on — corrupted or adversarial inputs.
#include <gtest/gtest.h>

#include <random>

#include "src/common/config.h"
#include "src/gns/mapping.h"
#include "src/net/inproc.h"
#include "src/net/rpc.h"
#include "src/net/soap.h"
#include "src/xdr/codec.h"
#include "src/xdr/record.h"

namespace griddles {
namespace {

TEST(FuzzTest, SoapDecodeSurvivesRandomBytes) {
  std::mt19937 rng(1312);
  for (int trial = 0; trial < 300; ++trial) {
    Bytes junk(rng() % 400);
    for (std::byte& b : junk) b = static_cast<std::byte>(rng());
    auto frame = net::soap_decode(junk);
    // Either a clean error or (absurdly unlikely) a parse; never UB.
    if (frame.is_ok()) SUCCEED();
  }
}

TEST(FuzzTest, SoapDecodeSurvivesMutatedValidFrames) {
  net::RpcFrame frame;
  frame.kind = net::FrameKind::kRequest;
  frame.id = 42;
  frame.method = 3;
  frame.payload = to_bytes("payload bytes here");
  const Bytes valid = net::soap_encode(frame);
  std::mt19937 rng(99);
  for (int trial = 0; trial < 300; ++trial) {
    Bytes mutated = valid;
    const int mutations = 1 + static_cast<int>(rng() % 4);
    for (int m = 0; m < mutations; ++m) {
      mutated[rng() % mutated.size()] = static_cast<std::byte>(rng());
    }
    auto decoded = net::soap_decode(mutated);
    (void)decoded;  // must not crash; error or lucky parse both fine
  }
}

TEST(FuzzTest, BinaryFrameDecodeSurvivesTruncation) {
  net::RpcFrame frame;
  frame.kind = net::FrameKind::kResponse;
  frame.id = 7;
  frame.method = 9;
  frame.status = not_found("x");
  frame.payload = Bytes(300, std::byte{0x5a});
  const Bytes valid =
      net::encode_frame(frame, net::WireFormat::kBinary);
  for (std::size_t cut = 0; cut < valid.size(); cut += 7) {
    Bytes truncated(valid.begin(),
                    valid.begin() + static_cast<std::ptrdiff_t>(cut));
    auto decoded = net::decode_frame(truncated, net::WireFormat::kBinary);
    EXPECT_FALSE(decoded.is_ok()) << "cut at " << cut;
  }
}

TEST(FuzzTest, MappingDecodeSurvivesRandomBytes) {
  std::mt19937 rng(7);
  for (int trial = 0; trial < 300; ++trial) {
    Bytes junk(rng() % 200);
    for (std::byte& b : junk) b = static_cast<std::byte>(rng());
    xdr::Decoder dec(junk);
    auto mapping = gns::decode_mapping(dec);
    (void)mapping;  // error or garbage mapping; never a crash
  }
}

TEST(FuzzTest, RecordSchemaParseSurvivesRandomText) {
  std::mt19937 rng(31);
  const char alphabet[] = "fic0123456789[], x8";
  for (int trial = 0; trial < 500; ++trial) {
    std::string text;
    const std::size_t len = rng() % 30;
    for (std::size_t i = 0; i < len; ++i) {
      text.push_back(alphabet[rng() % (sizeof(alphabet) - 1)]);
    }
    auto schema = xdr::RecordSchema::parse(text);
    if (schema.is_ok()) {
      EXPECT_GT(schema->record_size(), 0u);
    }
  }
}

TEST(FuzzTest, ConfigParseSurvivesRandomText) {
  std::mt19937 rng(61);
  const char alphabet[] = "[]=#; abc.:\n\t";
  for (int trial = 0; trial < 500; ++trial) {
    std::string text;
    const std::size_t len = rng() % 120;
    for (std::size_t i = 0; i < len; ++i) {
      text.push_back(alphabet[rng() % (sizeof(alphabet) - 1)]);
    }
    auto config = Config::parse(text);
    (void)config;
  }
}

TEST(FuzzTest, RpcServerDropsGarbageConnections) {
  // A client that speaks garbage must get disconnected without taking
  // the server down for well-behaved clients.
  RealClock clock;
  net::InProcNetwork network(clock);
  auto server_transport = network.transport("dione");
  net::RpcServer server(*server_transport,
                        net::inproc_endpoint("dione", "svc"));
  server.register_method(
      1, [](ByteSpan request, const net::RpcContext&) -> Result<Bytes> {
        return Bytes(request.begin(), request.end());
      });
  ASSERT_TRUE(server.start().is_ok());

  auto evil_transport = network.transport("jagan");
  {
    auto conn = evil_transport->connect(server.endpoint());
    ASSERT_TRUE(conn.is_ok());
    ASSERT_TRUE((*conn)->send(as_bytes_view("NOT AN RPC FRAME")).is_ok());
    // Server drops us; recv reports closed (or whatever the transport
    // surfaces), but never hangs.
    auto reply = (*conn)->recv_until(WallClock::now() +
                                     std::chrono::seconds(5));
    EXPECT_FALSE(reply.is_ok());
  }

  // A good client still works afterwards.
  net::RpcClient client(*evil_transport, server.endpoint());
  auto reply = client.call(1, as_bytes_view("ok?"));
  ASSERT_TRUE(reply.is_ok());
  EXPECT_EQ(to_string(*reply), "ok?");
  server.stop();
}

TEST(FuzzTest, EndpointParseSurvivesRandomText) {
  std::mt19937 rng(17);
  const char alphabet[] = "tcpinproc:/.0123456789abc-";
  for (int trial = 0; trial < 500; ++trial) {
    std::string text;
    const std::size_t len = rng() % 40;
    for (std::size_t i = 0; i < len; ++i) {
      text.push_back(alphabet[rng() % (sizeof(alphabet) - 1)]);
    }
    auto endpoint = net::Endpoint::parse(text);
    if (endpoint.is_ok()) {
      // Anything accepted must round-trip through to_string/parse.
      auto again = net::Endpoint::parse(endpoint->to_string());
      ASSERT_TRUE(again.is_ok());
      EXPECT_EQ(*again, *endpoint);
    }
  }
}

}  // namespace
}  // namespace griddles
