// Property tests of FileClient mode transparency: a random sequence of
// read/write/seek operations must behave identically on a local file, a
// remote-proxy file, and a staged file — all compared against a simple
// in-memory reference model. This is the invariant that lets the FM
// remap files without the application noticing.
#include <gtest/gtest.h>

#include <random>

#include "src/common/tempfile.h"
#include "src/core/staged_client.h"
#include "src/net/inproc.h"
#include "src/remote/file_server.h"
#include "src/remote/remote_client.h"
#include "src/vfs/local_client.h"

namespace griddles {
namespace {

/// The oracle: a byte vector with a cursor.
class ReferenceFile {
 public:
  std::size_t read(MutableByteSpan out) {
    const std::size_t n =
        cursor_ >= data_.size()
            ? 0
            : std::min(out.size(), data_.size() - cursor_);
    std::copy_n(data_.begin() + static_cast<std::ptrdiff_t>(cursor_), n,
                out.begin());
    cursor_ += n;
    return n;
  }

  std::size_t write(ByteSpan in) {
    if (cursor_ + in.size() > data_.size()) {
      data_.resize(cursor_ + in.size());
    }
    std::copy(in.begin(), in.end(),
              data_.begin() + static_cast<std::ptrdiff_t>(cursor_));
    cursor_ += in.size();
    return in.size();
  }

  std::uint64_t seek(std::int64_t offset, vfs::Whence whence) {
    std::int64_t base = 0;
    if (whence == vfs::Whence::kCurrent) {
      base = static_cast<std::int64_t>(cursor_);
    } else if (whence == vfs::Whence::kEnd) {
      base = static_cast<std::int64_t>(data_.size());
    }
    cursor_ = static_cast<std::uint64_t>(
        std::max<std::int64_t>(0, base + offset));
    return cursor_;
  }

  std::uint64_t size() const { return data_.size(); }
  const Bytes& data() const { return data_; }

 private:
  Bytes data_;
  std::uint64_t cursor_ = 0;
};

/// Applies an identical random op stream to the client and the oracle,
/// asserting equivalence after every step.
void run_random_ops(vfs::FileClient& client, unsigned seed, int ops) {
  ReferenceFile reference;
  std::mt19937 rng(seed);
  for (int op = 0; op < ops; ++op) {
    switch (rng() % 4) {
      case 0: {  // write a random chunk
        Bytes chunk(1 + rng() % 3000);
        for (std::byte& b : chunk) b = static_cast<std::byte>(rng());
        auto put = client.write(chunk);
        ASSERT_TRUE(put.is_ok()) << op << ": " << put.status();
        ASSERT_EQ(*put, reference.write(chunk)) << "op " << op;
        break;
      }
      case 1: {  // read a random chunk
        Bytes theirs(1 + rng() % 3000);
        Bytes ours(theirs.size());
        auto got = client.read({theirs.data(), theirs.size()});
        ASSERT_TRUE(got.is_ok()) << op << ": " << got.status();
        const std::size_t expected =
            reference.read({ours.data(), ours.size()});
        ASSERT_EQ(*got, expected) << "op " << op;
        ASSERT_TRUE(std::equal(ours.begin(),
                               ours.begin() +
                                   static_cast<std::ptrdiff_t>(expected),
                               theirs.begin()))
            << "op " << op;
        break;
      }
      case 2: {  // seek somewhere valid
        const vfs::Whence whence =
            static_cast<vfs::Whence>(rng() % 3);
        std::int64_t offset = 0;
        if (whence == vfs::Whence::kSet) {
          offset = static_cast<std::int64_t>(
              rng() % (reference.size() + 100));
        } else if (whence == vfs::Whence::kEnd) {
          offset = -static_cast<std::int64_t>(
              reference.size() == 0 ? 0 : rng() % reference.size());
        } else {
          offset = static_cast<std::int64_t>(rng() % 100) - 50;
          // Keep kCurrent seeks non-negative overall.
          if (static_cast<std::int64_t>(client.tell()) + offset < 0) {
            offset = 0;
          }
        }
        auto pos = client.seek(offset, whence);
        ASSERT_TRUE(pos.is_ok()) << op << ": " << pos.status();
        ASSERT_EQ(*pos, reference.seek(offset, whence)) << "op " << op;
        break;
      }
      default: {  // size + tell agreement
        auto size = client.size();
        ASSERT_TRUE(size.is_ok());
        ASSERT_EQ(*size, reference.size()) << "op " << op;
        ASSERT_EQ(client.tell(), reference.seek(0, vfs::Whence::kCurrent))
            << "op " << op;
        break;
      }
    }
  }
  // Final byte-for-byte check.
  auto end = client.seek(0, vfs::Whence::kSet);
  ASSERT_TRUE(end.is_ok());
  auto all = vfs::read_all(client);
  ASSERT_TRUE(all.is_ok());
  EXPECT_EQ(*all, reference.data());
}

TEST(IoPropertyTest, LocalClientMatchesReference) {
  for (unsigned seed = 1; seed <= 6; ++seed) {
    auto dir = TempDir::create("prop-local");
    vfs::OpenFlags flags = vfs::OpenFlags::update();
    flags.create = true;
    auto client = vfs::LocalFileClient::open(dir->file("f.bin").string(),
                                             flags);
    ASSERT_TRUE(client.is_ok()) << client.status();
    run_random_ops(**client, seed, 120);
  }
}

TEST(IoPropertyTest, RemoteProxyMatchesReference) {
  auto dir = TempDir::create("prop-remote");
  RealClock clock;
  net::InProcNetwork network(clock);
  auto server_transport = network.transport("freak");
  remote::FileServer server(dir->file("export"), *server_transport,
                            net::inproc_endpoint("freak", "fs"));
  ASSERT_TRUE(server.start().is_ok());
  auto transport = network.transport("jagan");
  for (unsigned seed = 1; seed <= 6; ++seed) {
    vfs::OpenFlags flags = vfs::OpenFlags::update();
    flags.create = true;
    flags.truncate = true;
    remote::RemoteFileClient::Options options;
    options.block_size = 1 << (8 + seed % 4);  // vary cache granularity
    options.cache_blocks = 4 + seed;
    auto client = remote::RemoteFileClient::open(
        *transport, server.endpoint(),
        "prop-" + std::to_string(seed) + ".bin", flags, options);
    ASSERT_TRUE(client.is_ok()) << client.status();
    run_random_ops(**client, seed, 120);
    ASSERT_TRUE((*client)->close().is_ok());
  }
  server.stop();
}

TEST(IoPropertyTest, StagedClientMatchesReference) {
  auto dir = TempDir::create("prop-staged");
  RealClock clock;
  net::InProcNetwork network(clock);
  auto server_transport = network.transport("freak");
  remote::FileServer server(dir->file("export"), *server_transport,
                            net::inproc_endpoint("freak", "fs"));
  ASSERT_TRUE(server.start().is_ok());
  auto transport = network.transport("jagan");
  for (unsigned seed = 1; seed <= 4; ++seed) {
    vfs::OpenFlags flags = vfs::OpenFlags::update();
    flags.create = true;
    flags.truncate = true;
    auto client = core::StagedFileClient::open(
        *transport, clock, server.endpoint(),
        "staged-" + std::to_string(seed) + ".bin",
        dir->file("stage-" + std::to_string(seed)).string(), flags,
        remote::FileCopier::Options{});
    ASSERT_TRUE(client.is_ok()) << client.status();
    run_random_ops(**client, seed, 120);
    ASSERT_TRUE((*client)->close().is_ok());
    // After close, the staged copy must have been pushed back whole.
    auto remote_copy = vfs::read_file(
        (server.root() / ("staged-" + std::to_string(seed) + ".bin"))
            .string());
    ASSERT_TRUE(remote_copy.is_ok());
  }
  server.stop();
}

}  // namespace
}  // namespace griddles
