// Shared clock scaling for tests that compare wall-clock-scaled modelled
// runs against analytic expectations.
//
// Sanitizer instrumentation slows every memory access by 2-15x, which
// inflates the fixed per-operation overhead (thread spawn, RPC dispatch,
// scheduler wake-ups) relative to the modelled intervals under test.
// Running the model clock proportionally slower keeps that overhead
// small without loosening any tolerance — the assertions stay exactly as
// strict in model time.
#pragma once

#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define GL_TEST_UNDER_SANITIZER 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define GL_TEST_UNDER_SANITIZER 1
#endif
#endif

// Not named `testing` — inside `namespace griddles` that would shadow
// gtest's `::testing` for unqualified lookups.
namespace griddles::test_support {

/// Multiply a test's wall-seconds-per-model-second by this factor when
/// constructing its ScaledClock.
#ifdef GL_TEST_UNDER_SANITIZER
inline constexpr double kClockScale = 5.0;
#else
inline constexpr double kClockScale = 1.0;
#endif

}  // namespace griddles::test_support
