// Tests for the replica catalog, NWS-cost selection, and the
// dynamically-remapping replicated file client.
#include <gtest/gtest.h>

#include "src/common/tempfile.h"
#include "src/net/inproc.h"
#include "src/remote/file_server.h"
#include "src/replica/replicated_client.h"
#include "src/vfs/local_client.h"

namespace griddles::replica {
namespace {

TEST(CatalogTest, AddLookupRemove) {
  Catalog catalog;
  catalog.add("logical/data", {"freak", "inproc://freak/fs", "d.bin", 100,
                               0});
  catalog.add("logical/data", {"bouscat", "inproc://bouscat/fs", "d.bin",
                               100, 0});
  auto copies = catalog.lookup("logical/data");
  ASSERT_TRUE(copies.is_ok());
  EXPECT_EQ(copies->size(), 2u);
  EXPECT_TRUE(catalog.remove("logical/data", "freak"));
  EXPECT_FALSE(catalog.remove("logical/data", "freak"));
  EXPECT_EQ(catalog.lookup("logical/data")->size(), 1u);
  EXPECT_TRUE(catalog.remove("logical/data", "bouscat"));
  EXPECT_FALSE(catalog.lookup("logical/data").is_ok());
}

TEST(CatalogTest, AddRefreshesExistingHost) {
  Catalog catalog;
  catalog.add("x", {"freak", "ep", "old", 1, 0});
  catalog.add("x", {"freak", "ep", "new", 2, 0});
  auto copies = catalog.lookup("x");
  ASSERT_TRUE(copies.is_ok());
  ASSERT_EQ(copies->size(), 1u);
  EXPECT_EQ((*copies)[0].path, "new");
}

TEST(SelectorTest, PicksCheapestLink) {
  nws::StaticLinkEstimator estimator;
  estimator.set("near", {0.001, 10e6});
  estimator.set("far", {0.3, 0.5e6});
  std::vector<PhysicalReplica> copies = {
      {"far", "ep-far", "p", 10u << 20, 0},
      {"near", "ep-near", "p", 10u << 20, 0},
  };
  auto selection = select_replica(copies, estimator);
  ASSERT_TRUE(selection.is_ok());
  EXPECT_EQ(selection->replica.host, "near");
}

TEST(SelectorTest, UnknownLinksStillEligible) {
  nws::StaticLinkEstimator estimator;  // knows nothing
  std::vector<PhysicalReplica> copies = {{"mystery", "ep", "p", 5, 0}};
  auto selection = select_replica(copies, estimator);
  ASSERT_TRUE(selection.is_ok());
  EXPECT_EQ(selection->replica.host, "mystery");
  EXPECT_FALSE(select_replica({}, estimator).is_ok());
}

class ReplicatedClientTest : public ::testing::Test {
 protected:
  ReplicatedClientTest()
      : dir_(*TempDir::create("replica-test")), network_(clock_),
        client_transport_(network_.transport("jagan")) {}

  /// Spins up a file server on `host` exporting one copy of the data.
  void add_replica_host(const std::string& host, ByteSpan data) {
    auto transport = network_.transport(host);
    auto server = std::make_unique<remote::FileServer>(
        dir_.file("export-" + host), *transport,
        net::inproc_endpoint(host, "fs"));
    ASSERT_TRUE(server->start().is_ok());
    ASSERT_TRUE(vfs::write_file(
                    (server->root() / "data.bin").string(), data)
                    .is_ok());
    catalog_.add("logical/data",
                 {host, server->endpoint().to_string(), "data.bin",
                  data.size(), fnv1a(data)});
    transports_.push_back(std::move(transport));
    servers_.push_back(std::move(server));
  }

  Bytes pattern(std::size_t n) {
    Bytes out(n);
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = static_cast<std::byte>(i % 251);
    }
    return out;
  }

  CatalogClient catalog_client() {
    // Catalog service co-hosted for the test.
    if (!catalog_server_) {
      catalog_transport_ = network_.transport("dione");
      catalog_server_ = std::make_unique<CatalogServer>(
          catalog_, *catalog_transport_,
          net::inproc_endpoint("dione", "rc"));
      EXPECT_TRUE(catalog_server_->start().is_ok());
    }
    return CatalogClient(*client_transport_, catalog_server_->endpoint());
  }

  TempDir dir_;
  RealClock clock_;
  net::InProcNetwork network_;
  std::unique_ptr<net::Transport> client_transport_;
  std::vector<std::unique_ptr<net::Transport>> transports_;
  std::vector<std::unique_ptr<remote::FileServer>> servers_;
  Catalog catalog_;
  std::unique_ptr<net::Transport> catalog_transport_;
  std::unique_ptr<CatalogServer> catalog_server_;
};

TEST_F(ReplicatedClientTest, CatalogRpcRoundTrip) {
  auto client = catalog_client();
  PhysicalReplica replica{"freak", "inproc://freak/fs", "p.bin", 42, 7};
  ASSERT_TRUE(client.add("lfn", replica).is_ok());
  auto copies = client.lookup("lfn");
  ASSERT_TRUE(copies.is_ok());
  ASSERT_EQ(copies->size(), 1u);
  EXPECT_EQ((*copies)[0], replica);
  auto names = client.list();
  ASSERT_TRUE(names.is_ok());
  EXPECT_EQ(names->size(), 1u);
  ASSERT_TRUE(client.remove("lfn", "freak").is_ok());
  EXPECT_FALSE(client.lookup("lfn").is_ok());
}

TEST_F(ReplicatedClientTest, ReadsFromBestReplica) {
  const Bytes data = pattern(100000);
  add_replica_host("freak", data);
  add_replica_host("brecca", data);
  nws::StaticLinkEstimator estimator;
  estimator.set("freak", {0.2, 1e6});
  estimator.set("brecca", {0.001, 10e6});

  auto catalog = catalog_client();
  auto file = ReplicatedFileClient::open(*client_transport_, catalog,
                                         "logical/data", estimator);
  ASSERT_TRUE(file.is_ok());
  EXPECT_EQ((*file)->current_host(), "brecca");
  auto all = vfs::read_all(**file);
  ASSERT_TRUE(all.is_ok());
  EXPECT_EQ(*all, data);
  EXPECT_EQ((*file)->switch_count(), 0);
}

TEST_F(ReplicatedClientTest, DynamicRemapMidRead) {
  const Bytes data = pattern(4 << 20);
  add_replica_host("freak", data);
  add_replica_host("brecca", data);
  nws::StaticLinkEstimator estimator;
  estimator.set("freak", {0.001, 50e6});
  estimator.set("brecca", {0.5, 0.1e6});

  ReplicatedFileClient::Options options;
  options.reselect_interval_bytes = 1 << 20;
  auto catalog = catalog_client();
  auto file = ReplicatedFileClient::open(*client_transport_, catalog,
                                         "logical/data", estimator,
                                         options);
  ASSERT_TRUE(file.is_ok());
  EXPECT_EQ((*file)->current_host(), "freak");

  Bytes first(2 << 20);
  std::size_t got = 0;
  while (got < first.size()) {
    auto n = (*file)->read({first.data() + got, first.size() - got});
    ASSERT_TRUE(n.is_ok());
    got += *n;
  }
  // Network weather turns: freak degrades, brecca improves.
  estimator.set("freak", {0.5, 0.1e6});
  estimator.set("brecca", {0.001, 50e6});

  Bytes rest(data.size() - first.size());
  got = 0;
  while (got < rest.size()) {
    auto n = (*file)->read({rest.data() + got, rest.size() - got});
    ASSERT_TRUE(n.is_ok());
    ASSERT_GT(*n, 0u);
    got += *n;
  }
  EXPECT_EQ((*file)->current_host(), "brecca");
  EXPECT_GE((*file)->switch_count(), 1);
  // The observed bytes are identical regardless of the switch.
  Bytes all = first;
  all.insert(all.end(), rest.begin(), rest.end());
  EXPECT_EQ(all, data);
}

TEST_F(ReplicatedClientTest, FailoverWhenReplicaDies) {
  const Bytes data = pattern(200000);
  add_replica_host("freak", data);
  add_replica_host("brecca", data);
  nws::StaticLinkEstimator estimator;
  estimator.set("freak", {0.001, 50e6});  // freak preferred
  estimator.set("brecca", {0.1, 1e6});

  auto catalog = catalog_client();
  auto file = ReplicatedFileClient::open(*client_transport_, catalog,
                                         "logical/data", estimator);
  ASSERT_TRUE(file.is_ok());
  EXPECT_EQ((*file)->current_host(), "freak");
  Bytes buffer(1000);
  ASSERT_TRUE((*file)->read({buffer.data(), buffer.size()}).is_ok());

  // freak goes down mid-read.
  servers_[0]->stop();
  std::size_t total = 1000;
  while (total < data.size()) {
    auto n = (*file)->read({buffer.data(), buffer.size()});
    ASSERT_TRUE(n.is_ok()) << n.status().to_string();
    ASSERT_GT(*n, 0u);
    // Spot-check content continuity across the failover.
    for (std::size_t i = 0; i < *n; ++i) {
      ASSERT_EQ(buffer[i], data[total + i]) << "at " << (total + i);
    }
    total += *n;
  }
  EXPECT_EQ((*file)->current_host(), "brecca");
}

TEST_F(ReplicatedClientTest, WritesRejected) {
  add_replica_host("freak", pattern(10));
  nws::StaticLinkEstimator estimator;
  auto catalog = catalog_client();
  auto file = ReplicatedFileClient::open(*client_transport_, catalog,
                                         "logical/data", estimator);
  ASSERT_TRUE(file.is_ok());
  EXPECT_FALSE((*file)->write(as_bytes_view("x")).is_ok());
}

TEST_F(ReplicatedClientTest, UnknownLogicalNameFails) {
  nws::StaticLinkEstimator estimator;
  auto catalog = catalog_client();
  auto file = ReplicatedFileClient::open(*client_transport_, catalog,
                                         "no/such/file", estimator);
  EXPECT_FALSE(file.is_ok());
  EXPECT_EQ(file.status().code(), ErrorCode::kNotFound);
}

}  // namespace
}  // namespace griddles::replica
