// Tests for the overload-robustness layer (DESIGN.md §14): ambient
// end-to-end deadlines, admission control and load shedding, retry
// budgets, the burst@rpc fault op, and Grid Buffer writer backpressure.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "src/common/deadline.h"
#include "src/common/queue.h"
#include "src/common/tempfile.h"
#include "src/fault/plan.h"
#include "src/fault/retry.h"
#include "src/gridbuffer/channel.h"
#include "src/net/admission.h"
#include "src/net/inproc.h"
#include "src/net/rpc.h"
#include "src/net/soap.h"
#include "src/obs/metrics.h"
#include "src/obs/span.h"

namespace griddles {
namespace {

using std::chrono::milliseconds;

std::uint64_t counter_value(const char* name) {
  return obs::MetricsRegistry::global().counter(name).value();
}

// ---------------------------------------------------------------------------
// Ambient deadlines (src/common/deadline.h).

TEST(ScopedDeadlineTest, MinsWithEnclosingAndRestores) {
  EXPECT_FALSE(current_deadline().has_value());
  const WallClock::time_point anchor = WallClock::now();
  {
    ScopedDeadline outer(anchor + std::chrono::seconds(1));
    ASSERT_TRUE(current_deadline().has_value());
    EXPECT_EQ(*current_deadline(), anchor + std::chrono::seconds(1));
    {
      // A wider inner deadline cannot extend the enclosing budget.
      ScopedDeadline wider(anchor + std::chrono::seconds(5));
      EXPECT_EQ(*current_deadline(), anchor + std::chrono::seconds(1));
    }
    {
      // A narrower one shrinks it for its scope only.
      ScopedDeadline narrower(anchor + milliseconds(100));
      EXPECT_EQ(*current_deadline(), anchor + milliseconds(100));
    }
    {
      // nullopt leaves the context untouched.
      ScopedDeadline unchanged(std::optional<WallClock::time_point>{});
      EXPECT_EQ(*current_deadline(), anchor + std::chrono::seconds(1));
    }
    EXPECT_EQ(*current_deadline(), anchor + std::chrono::seconds(1));
  }
  EXPECT_FALSE(current_deadline().has_value());
}

TEST(ScopedDeadlineTest, ExpiryAndCheck) {
  EXPECT_FALSE(deadline_expired());
  EXPECT_TRUE(check_deadline("noop").is_ok());
  EXPECT_FALSE(remaining_budget().has_value());

  ScopedDeadline expired(WallClock::now() - milliseconds(1));
  EXPECT_TRUE(deadline_expired());
  ASSERT_TRUE(remaining_budget().has_value());
  EXPECT_LT(*remaining_budget(), Duration::zero());
  const Status status = check_deadline("the-op");
  EXPECT_EQ(status.code(), ErrorCode::kDeadlineExceeded);
  EXPECT_NE(status.message().find("the-op"), std::string::npos);
}

// ---------------------------------------------------------------------------
// BoundedQueue::push_until (deadline and close races).

TEST(BoundedQueueTest, PushUntilGivesUpAtDeadlineLeavingQueueIntact) {
  BoundedQueue<int> queue(1);
  ASSERT_TRUE(queue.push(1));
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(queue.push_until(
      2, std::chrono::steady_clock::now() + milliseconds(40)));
  EXPECT_GE(std::chrono::steady_clock::now() - start, milliseconds(35));
  EXPECT_EQ(queue.size(), 1u);
  EXPECT_EQ(queue.pop().value(), 1);  // the timed-out item never landed
  EXPECT_FALSE(queue.pop_until(std::chrono::steady_clock::now()).has_value());
}

TEST(BoundedQueueTest, PushUntilObservesCloseWhileWaiting) {
  BoundedQueue<int> queue(1);
  ASSERT_TRUE(queue.push(1));
  std::thread closer([&] {
    std::this_thread::sleep_for(milliseconds(20));
    queue.close();
  });
  // Far deadline: the close, not the timeout, must end the wait.
  EXPECT_FALSE(queue.push_until(
      2, std::chrono::steady_clock::now() + std::chrono::seconds(30)));
  closer.join();
  EXPECT_TRUE(queue.closed());
}

TEST(BoundedQueueTest, PushUntilSucceedsWhenSpaceFreesBeforeDeadline) {
  BoundedQueue<int> queue(1);
  ASSERT_TRUE(queue.push(1));
  std::thread drainer([&] {
    std::this_thread::sleep_for(milliseconds(20));
    EXPECT_EQ(queue.pop().value(), 1);
  });
  EXPECT_TRUE(queue.push_until(
      2, std::chrono::steady_clock::now() + std::chrono::seconds(30)));
  drainer.join();
  EXPECT_EQ(queue.pop().value(), 2);
}

// ---------------------------------------------------------------------------
// Budget propagation on the wire.

TEST(RpcFrameDeadlineTest, BinaryAndSoapRoundTripDeadline) {
  net::RpcFrame frame;
  frame.kind = net::FrameKind::kRequest;
  frame.id = 7;
  frame.method = 3;
  frame.deadline_us = 123456789;
  frame.payload = to_bytes("req");
  for (const auto format :
       {net::WireFormat::kBinary, net::WireFormat::kSoap}) {
    auto decoded =
        net::decode_frame(net::encode_frame(frame, format), format);
    ASSERT_TRUE(decoded.is_ok()) << decoded.status();
    EXPECT_EQ(decoded->deadline_us, 123456789u);
  }
  // deadline_us = 0 ("no deadline") survives too.
  frame.deadline_us = 0;
  auto decoded = net::decode_frame(
      net::encode_frame(frame, net::WireFormat::kSoap),
      net::WireFormat::kSoap);
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded->deadline_us, 0u);
}

// ---------------------------------------------------------------------------
// AdmissionController (src/net/admission.h).

TEST(AdmissionTest, ShedsNewestWhenQueueFull) {
  net::AdmissionController::Options options;
  options.capacity = 1;
  options.max_queued = 0;
  net::AdmissionController admission("dione", options);

  const std::uint64_t shed_before = counter_value("overload.shed");
  auto first = admission.admit(1, 7);
  ASSERT_TRUE(first.is_ok()) << first.status();
  EXPECT_EQ(admission.in_flight(), 1u);

  auto second = admission.admit(1, 7);
  ASSERT_FALSE(second.is_ok());
  EXPECT_EQ(second.status().code(), ErrorCode::kResourceExhausted);
  EXPECT_EQ(counter_value("overload.shed"), shed_before + 1);

  first->release();
  EXPECT_EQ(admission.in_flight(), 0u);
  EXPECT_TRUE(admission.admit(1, 7).is_ok());
}

TEST(AdmissionTest, QueueWaitBoundedByAmbientDeadline) {
  net::AdmissionController::Options options;
  options.capacity = 1;
  options.max_queued = 8;
  net::AdmissionController admission("dione", options);
  auto held = admission.admit(1, 7);
  ASSERT_TRUE(held.is_ok());

  ScopedDeadline budget(WallClock::now() + milliseconds(50));
  const auto start = WallClock::now();
  auto queued = admission.admit(1, 7);
  ASSERT_FALSE(queued.is_ok());
  EXPECT_EQ(queued.status().code(), ErrorCode::kDeadlineExceeded);
  EXPECT_LT(WallClock::now() - start, std::chrono::seconds(1));
  EXPECT_EQ(admission.queued(), 0u);  // the waiter cleaned up after itself
}

TEST(AdmissionTest, ZeroCostAdmitsWithoutHoldingCapacity) {
  net::AdmissionController::Options options;
  options.capacity = 1;
  net::AdmissionController admission("dione", options);
  auto free_rider = admission.admit(0, 9);
  ASSERT_TRUE(free_rider.is_ok());
  EXPECT_EQ(admission.in_flight(), 0u);
  EXPECT_TRUE(admission.admit(1, 7).is_ok());  // capacity still available
}

TEST(AdmissionTest, CloseUnblocksQueuedWaiters) {
  net::AdmissionController::Options options;
  options.capacity = 1;
  options.max_queued = 8;
  net::AdmissionController admission("dione", options);
  auto held = admission.admit(1, 7);
  ASSERT_TRUE(held.is_ok());

  std::thread closer([&] {
    std::this_thread::sleep_for(milliseconds(20));
    admission.close();
  });
  auto queued = admission.admit(1, 7);
  ASSERT_FALSE(queued.is_ok());
  EXPECT_EQ(queued.status().code(), ErrorCode::kUnavailable);
  closer.join();
}

TEST(AdmissionTest, BurstRuleInflatesAccountedCost) {
  net::AdmissionController::Options options;
  options.capacity = 4;
  options.max_queued = 0;
  net::AdmissionController admission("dione", options);

  // Without a burst rule a unit-cost admit fits comfortably.
  {
    auto permit = admission.admit(1, 7);
    ASSERT_TRUE(permit.is_ok());
  }

  // An armed burst rule makes the same request account 8 units — over
  // capacity, so it sheds with no real extra traffic.
  auto plan = *fault::Plan::parse("burst@rpc:di*:factor=8");
  fault::arm(plan, nullptr);
  auto shed = admission.admit(1, 7);
  fault::disarm();
  ASSERT_FALSE(shed.is_ok());
  EXPECT_EQ(shed.status().code(), ErrorCode::kResourceExhausted);
}

// ---------------------------------------------------------------------------
// burst@rpc fault grammar (src/fault/plan.h).

TEST(BurstPlanTest, ParsesToAdmissionSiteWithFactor) {
  auto plan = fault::Plan::parse("burst@rpc:dione:factor=6");
  ASSERT_TRUE(plan.is_ok()) << plan.status();
  ASSERT_EQ((*plan)->rules().size(), 1u);
  const fault::Rule& rule = (*plan)->rules()[0];
  EXPECT_EQ(rule.op, fault::Op::kBurst);
  // `@rpc` in the grammar, but remapped so client-call consults
  // (Site::kRpc) never see burst state.
  EXPECT_EQ(rule.site, fault::Site::kAdmission);
  EXPECT_DOUBLE_EQ(rule.burst_factor, 6.0);

  const fault::Decision hit =
      (*plan)->consult(fault::Site::kAdmission, "dione");
  EXPECT_EQ(hit.action, fault::Decision::Action::kBurst);
  EXPECT_DOUBLE_EQ(hit.factor, 6.0);
  const fault::Decision miss = (*plan)->consult(fault::Site::kRpc, "dione");
  EXPECT_EQ(miss.action, fault::Decision::Action::kNone);
}

TEST(BurstPlanTest, RejectsNonRpcSites) {
  EXPECT_FALSE(fault::Plan::parse("burst@copy:*").is_ok());
  EXPECT_FALSE(fault::Plan::parse("burst@gns:*").is_ok());
}

// ---------------------------------------------------------------------------
// Retry discipline: shed responses are not retried, budgets bound storms.

TEST(RetryPolicyTest, ShedAndExpiredResponsesAreNotRetryable) {
  EXPECT_TRUE(fault::RetryPolicy::retryable(ErrorCode::kUnavailable));
  EXPECT_TRUE(fault::RetryPolicy::retryable(ErrorCode::kTimeout));
  // A shed response means the server is overloaded right now; retrying
  // it is the storm the budget exists to prevent.
  EXPECT_FALSE(fault::RetryPolicy::retryable(ErrorCode::kResourceExhausted));
  EXPECT_FALSE(fault::RetryPolicy::retryable(ErrorCode::kDeadlineExceeded));
  EXPECT_FALSE(fault::RetryPolicy::retryable(ErrorCode::kDataLoss));
}

TEST(RetryBudgetTest, TokensSpendOnRetryAndEarnOnFreshTraffic) {
  fault::RetryBudget::Options options;
  options.earn_per_fresh = 0.5;
  options.burst = 2.0;
  fault::RetryBudget budget(options);
  const std::uint64_t key = 42;

  EXPECT_DOUBLE_EQ(budget.tokens(key), 2.0);  // buckets start full
  EXPECT_TRUE(budget.acquire(key));
  EXPECT_TRUE(budget.acquire(key));

  const std::uint64_t dry_before = counter_value("retry.budget.exhausted");
  EXPECT_FALSE(budget.acquire(key));  // bucket dry: retry denied
  EXPECT_EQ(counter_value("retry.budget.exhausted"), dry_before + 1);

  budget.note_fresh(key);
  budget.note_fresh(key);
  EXPECT_DOUBLE_EQ(budget.tokens(key), 1.0);
  EXPECT_TRUE(budget.acquire(key));

  // The cap: fresh traffic cannot bank more than `burst` tokens.
  for (int i = 0; i < 100; ++i) budget.note_fresh(key);
  EXPECT_DOUBLE_EQ(budget.tokens(key), 2.0);
}

TEST(RetryBudgetTest, PeersHaveIndependentBuckets) {
  fault::RetryBudget::Options options;
  options.burst = 1.0;
  fault::RetryBudget budget(options);
  EXPECT_TRUE(budget.acquire(1));
  EXPECT_FALSE(budget.acquire(1));
  EXPECT_TRUE(budget.acquire(2));  // peer 2 untouched by peer 1's drain
}

// ---------------------------------------------------------------------------
// RPC servers under overload.

TEST(RpcOverloadTest, ShedCallReturnsResourceExhaustedWithoutRetry) {
  RealClock clock;
  net::InProcNetwork network(clock);
  auto server_t = network.transport("dione");
  auto client_t = network.transport("jagan");

  std::atomic<bool> handler_started{false};
  net::RpcServer server(*server_t, net::inproc_endpoint("dione", "busy"));
  server.register_method(
      1, [&](ByteSpan, const net::RpcContext&) -> Result<Bytes> {
        handler_started = true;
        std::this_thread::sleep_for(milliseconds(150));
        return Bytes{};
      });
  net::AdmissionController::Options admission;
  admission.capacity = 1;
  admission.max_queued = 0;
  server.set_admission(admission);
  ASSERT_TRUE(server.start().is_ok());

  std::thread occupant([&] {
    net::RpcClient client(*client_t, server.endpoint());
    EXPECT_TRUE(client.call(1, {}).is_ok());
  });
  while (!handler_started) std::this_thread::sleep_for(milliseconds(1));

  const std::uint64_t shed_before = counter_value("overload.shed");
  const std::uint64_t retries_before = counter_value("retry.attempts");
  net::RpcClient client(*client_t, server.endpoint());
  auto shed = client.call(1, {});
  ASSERT_FALSE(shed.is_ok());
  EXPECT_EQ(shed.status().code(), ErrorCode::kResourceExhausted);
  EXPECT_GE(counter_value("overload.shed"), shed_before + 1);
  // A shed response must never be blindly retried.
  EXPECT_EQ(counter_value("retry.attempts"), retries_before);

  occupant.join();
  server.stop();
}

TEST(RpcOverloadTest, DefaultAdmissionIsTransparentForLightLoad) {
  RealClock clock;
  net::InProcNetwork network(clock);
  auto server_t = network.transport("dione");
  net::RpcServer server(*server_t, net::inproc_endpoint("dione", "light"));
  server.register_method(1, [](ByteSpan request, const net::RpcContext&)
                                -> Result<Bytes> {
    return Bytes(request.begin(), request.end());
  });
  ASSERT_TRUE(server.start().is_ok());
  ASSERT_NE(server.admission(), nullptr);

  const std::uint64_t admitted_before = counter_value("admission.admitted");
  net::RpcClient client(*server_t, server.endpoint());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(client.call(1, as_bytes_view("x")).is_ok());
  }
  EXPECT_GE(counter_value("admission.admitted"), admitted_before + 5);
  EXPECT_EQ(server.admission()->in_flight(), 0u);
  server.stop();
}

/// Two RPC hops (client -> front -> backend) under one shrinking budget:
/// expiry mid-chain surfaces kDeadlineExceeded end-to-end, never reaches
/// the backend handler, and emits a kDeadlineExpired span.
TEST(RpcOverloadTest, TwoHopDeadlineExpiryCancelsDownstreamWork) {
  RealClock clock;
  net::InProcNetwork network(clock);
  auto backend_t = network.transport("dione");
  auto front_t = network.transport("tethys");
  auto client_t = network.transport("jagan");

  std::atomic<int> backend_ran{0};
  net::RpcServer backend(*backend_t, net::inproc_endpoint("dione", "be"));
  backend.register_method(
      1, [&](ByteSpan, const net::RpcContext&) -> Result<Bytes> {
        ++backend_ran;
        return Bytes{};
      });
  ASSERT_TRUE(backend.start().is_ok());

  std::atomic<bool> front_done{false};
  net::RpcServer front(*front_t, net::inproc_endpoint("tethys", "fe"));
  front.register_method(
      1, [&](ByteSpan, const net::RpcContext&) -> Result<Bytes> {
        // Burn the whole budget before the downstream hop: the nested
        // call must be abandoned client-side, not executed late.
        std::this_thread::sleep_for(milliseconds(120));
        net::RpcClient to_backend(*front_t, backend.endpoint());
        auto nested = to_backend.call(1, {});
        front_done = true;
        if (!nested.is_ok()) return nested.status();
        return Bytes{};
      });
  ASSERT_TRUE(front.start().is_ok());

  obs::SpanCollector::global().enable(true);
  (void)obs::SpanCollector::global().drain();
  const std::uint64_t expired_before = counter_value("deadline.expired");

  net::RpcClient client(*client_t, front.endpoint());
  Result<Bytes> reply = [&] {
    ScopedDeadline budget(WallClock::now() + milliseconds(50));
    return client.call(1, {});
  }();
  ASSERT_FALSE(reply.is_ok());
  EXPECT_EQ(reply.status().code(), ErrorCode::kDeadlineExceeded);

  // Wait for the front handler to finish its late work, then confirm
  // nothing leaked downstream.
  while (!front_done) std::this_thread::sleep_for(milliseconds(5));
  EXPECT_EQ(backend_ran, 0);
  EXPECT_GE(counter_value("deadline.expired"), expired_before + 1);

  bool saw_expired_span = false;
  for (const obs::SpanRecord& span : obs::SpanCollector::global().drain()) {
    if (span.kind == obs::SpanKind::kDeadlineExpired) saw_expired_span = true;
  }
  EXPECT_TRUE(saw_expired_span);
  obs::SpanCollector::global().enable(false);
  (void)obs::SpanCollector::global().drain();

  front.stop();
  backend.stop();
}

TEST(RpcOverloadTest, ExpiredBudgetRejectedBeforeSend) {
  RealClock clock;
  net::InProcNetwork network(clock);
  auto server_t = network.transport("dione");
  std::atomic<int> ran{0};
  net::RpcServer server(*server_t, net::inproc_endpoint("dione", "pre"));
  server.register_method(
      1, [&](ByteSpan, const net::RpcContext&) -> Result<Bytes> {
        ++ran;
        return Bytes{};
      });
  ASSERT_TRUE(server.start().is_ok());

  net::RpcClient client(*server_t, server.endpoint());
  ScopedDeadline expired(WallClock::now() - milliseconds(1));
  auto reply = client.call(1, {});
  ASSERT_FALSE(reply.is_ok());
  EXPECT_EQ(reply.status().code(), ErrorCode::kDeadlineExceeded);
  EXPECT_EQ(ran, 0);  // never hit the wire
  server.stop();
}

// ---------------------------------------------------------------------------
// Grid Buffer writer backpressure (opt-in, DESIGN.md §14).

class BackpressureTest : public ::testing::Test {
 protected:
  BackpressureTest() : dir_(*TempDir::create("overload-test")) {}
  TempDir dir_;
};

TEST_F(BackpressureTest, WriterBlocksUntilReaderCatchesUp) {
  gridbuffer::ChannelConfig config;
  config.block_size = 1024;
  config.cache_enabled = false;
  config.expected_readers = 1;
  config.max_unread_bytes = 2048;
  gridbuffer::Channel channel("bp", config,
                              dir_.file("bp.cache").string());
  const auto reader = channel.add_reader();

  const Bytes block(1024, std::byte{0x5A});
  ASSERT_TRUE(channel.write(0, block).is_ok());
  ASSERT_TRUE(channel.write(1024, block).is_ok());

  const std::uint64_t waits_before =
      counter_value("gridbuffer.backpressure.waits");
  std::atomic<bool> third_done{false};
  std::thread writer([&] {
    // 3072 unread bytes would exceed the 2048 bound: must block.
    EXPECT_TRUE(channel.write(2048, block).is_ok());
    third_done = true;
  });
  std::this_thread::sleep_for(milliseconds(40));
  EXPECT_FALSE(third_done);

  auto got = channel.read(reader, 0, 1024, 1000);
  ASSERT_TRUE(got.is_ok());
  EXPECT_EQ(got->data.size(), 1024u);
  writer.join();
  EXPECT_TRUE(third_done);
  EXPECT_GE(counter_value("gridbuffer.backpressure.waits"),
            waits_before + 1);
}

TEST_F(BackpressureTest, BudgetExpiresUnderBackpressure) {
  gridbuffer::ChannelConfig config;
  config.block_size = 1024;
  config.cache_enabled = false;
  config.expected_readers = 1;
  config.max_unread_bytes = 1024;
  gridbuffer::Channel channel("bp2", config,
                              dir_.file("bp2.cache").string());
  (void)channel.add_reader();

  const Bytes block(1024, std::byte{0x11});
  ASSERT_TRUE(channel.write(0, block).is_ok());

  ScopedDeadline budget(WallClock::now() + milliseconds(50));
  const auto start = WallClock::now();
  const Status blocked = channel.write(1024, block);
  ASSERT_FALSE(blocked.is_ok());
  EXPECT_EQ(blocked.code(), ErrorCode::kDeadlineExceeded);
  EXPECT_LT(WallClock::now() - start, std::chrono::seconds(2));
}

}  // namespace
}  // namespace griddles
