// Tests for the NWS substitute: forecasting series, active probing over
// modelled links, and the query service.
#include <gtest/gtest.h>

#include "src/net/inproc.h"
#include "src/nws/monitor.h"
#include "tests/test_scaling.h"

namespace griddles::nws {
namespace {

TEST(SeriesTest, EmptyHasNoForecast) {
  Series series;
  EXPECT_FALSE(series.last().has_value());
  EXPECT_FALSE(series.median(4).has_value());
  EXPECT_FALSE(series.forecast().has_value());
}

TEST(SeriesTest, BasicStatistics) {
  Series series;
  for (const double v : {1.0, 2.0, 3.0, 4.0, 100.0}) {
    series.add(v, Duration::zero());
  }
  EXPECT_DOUBLE_EQ(series.last().value(), 100.0);
  EXPECT_DOUBLE_EQ(series.median(5).value(), 3.0);
  EXPECT_DOUBLE_EQ(series.mean(4).value(), (2 + 3 + 4 + 100) / 4.0);
}

TEST(SeriesTest, BoundedHistory) {
  Series series(4);
  for (int i = 0; i < 10; ++i) series.add(i, Duration::zero());
  EXPECT_EQ(series.size(), 4u);
  EXPECT_DOUBLE_EQ(series.samples().front().value, 6.0);
}

TEST(SeriesTest, ForecastTracksStableSignal) {
  Series series;
  for (int i = 0; i < 20; ++i) series.add(5.0, Duration::zero());
  EXPECT_NEAR(series.forecast().value(), 5.0, 1e-9);
}

TEST(SeriesTest, MedianPredictorResistsOutliers) {
  // A stable series with rare spikes: the adaptive forecast should stay
  // near the stable level, not the spike (NWS's motivation for the
  // predictor ensemble).
  Series series;
  for (int i = 0; i < 30; ++i) {
    series.add(i % 10 == 9 ? 50.0 : 2.0, Duration::zero());
  }
  EXPECT_LT(series.forecast().value(), 10.0);
}

TEST(SeriesTest, ForecastAdaptsToLevelShift) {
  Series series;
  for (int i = 0; i < 10; ++i) series.add(1.0, Duration::zero());
  for (int i = 0; i < 20; ++i) series.add(9.0, Duration::zero());
  EXPECT_GT(series.forecast().value(), 7.0);
}

TEST(StaticEstimatorTest, SetAndGet) {
  StaticLinkEstimator estimator;
  estimator.set("freak", {0.09, 840000});
  auto estimate = estimator.estimate("freak");
  ASSERT_TRUE(estimate.is_ok());
  EXPECT_DOUBLE_EQ(estimate->latency_seconds, 0.09);
  EXPECT_FALSE(estimator.estimate("unknown").is_ok());
}

TEST(LinkEstimateTest, TransferSeconds) {
  LinkEstimate estimate{0.1, 1e6};
  EXPECT_NEAR(estimate.transfer_seconds(2000000), 2.1, 1e-9);
  LinkEstimate no_bw{0.1, 0};
  EXPECT_NEAR(no_bw.transfer_seconds(1000), 0.1, 1e-9);
}

TEST(MonitorTest, ProbesMeasureModelledLink) {
  // 1 model second = 20 wall ms. The monitor must *measure* the
  // modelled WAN: latency 0.2 model s, bandwidth 1 MB/s. The clock is
  // slow enough that ~1 ms of scheduler noise on a loaded machine stays
  // well inside the probe tolerances (the bulk probe lasts ~4 ms wall),
  // and sanitizer builds slow it down further.
  ScaledClock clock(0.02 * test_support::kClockScale);
  net::InProcNetwork network(clock);
  net::LinkModel link;
  link.latency = from_seconds_d(0.2);
  link.bandwidth_bytes_per_sec = 1e6;
  network.links().set_link("jagan", "freak", link);

  auto responder_transport = network.transport("freak");
  Responder responder(*responder_transport,
                      net::inproc_endpoint("freak", "nws"));
  ASSERT_TRUE(responder.start().is_ok());

  auto monitor_transport = network.transport("jagan");
  Monitor::Options options;
  options.echo_count = 3;
  options.bulk_bytes = 200 * 1024;
  Monitor monitor(*monitor_transport, clock, options);
  monitor.add_target("freak", responder.endpoint());
  ASSERT_TRUE(monitor.probe_once("freak").is_ok());

  auto estimate = monitor.estimate("freak");
  ASSERT_TRUE(estimate.is_ok());
  // One-way latency ~0.2 s (echo RTT/2 ~ 0.2 since both directions add).
  // Generous tolerances: this is a timing measurement on a possibly
  // loaded CI machine.
  EXPECT_NEAR(estimate->latency_seconds, 0.2, 0.12);
  // Bandwidth within a factor ~4 of the configured 1 MB/s.
  EXPECT_GT(estimate->bandwidth_bytes_per_sec, 0.25e6);
  EXPECT_LT(estimate->bandwidth_bytes_per_sec, 4e6);
  responder.stop();
}

TEST(MonitorTest, UnknownTargetErrors) {
  RealClock clock;
  net::InProcNetwork network(clock);
  auto transport = network.transport("jagan");
  Monitor monitor(*transport, clock);
  EXPECT_FALSE(monitor.probe_once("nowhere").is_ok());
  EXPECT_FALSE(monitor.estimate("nowhere").is_ok());
}

TEST(MonitorTest, EstimateBeforeAnyProbeIsUnavailable) {
  RealClock clock;
  net::InProcNetwork network(clock);
  auto transport = network.transport("jagan");
  Monitor monitor(*transport, clock);
  monitor.add_target("freak", net::inproc_endpoint("freak", "nws"));
  auto estimate = monitor.estimate("freak");
  EXPECT_FALSE(estimate.is_ok());
  EXPECT_EQ(estimate.status().code(), ErrorCode::kUnavailable);
}

TEST(MonitorTest, BackgroundProberCollectsSamples) {
  RealClock clock;
  net::InProcNetwork network(clock);
  auto responder_transport = network.transport("freak");
  Responder responder(*responder_transport,
                      net::inproc_endpoint("freak", "nws"));
  ASSERT_TRUE(responder.start().is_ok());

  auto monitor_transport = network.transport("jagan");
  Monitor::Options options;
  options.period = std::chrono::milliseconds(10);
  options.bulk_bytes = 1024;
  options.echo_count = 1;
  Monitor monitor(*monitor_transport, clock, options);
  monitor.add_target("freak", responder.endpoint());
  monitor.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  monitor.stop();
  ASSERT_NE(monitor.latency_series("freak"), nullptr);
  EXPECT_GE(monitor.latency_series("freak")->size(), 2u);
  responder.stop();
}

TEST(MonitorTest, SeriesSurvivesTargetReplacement) {
  RealClock clock;
  net::InProcNetwork network(clock);
  auto responder_transport = network.transport("freak");
  Responder responder(*responder_transport,
                      net::inproc_endpoint("freak", "nws"));
  ASSERT_TRUE(responder.start().is_ok());

  auto monitor_transport = network.transport("jagan");
  Monitor::Options options;
  options.bulk_bytes = 1024;
  options.echo_count = 1;
  Monitor monitor(*monitor_transport, clock, options);
  monitor.add_target("freak", responder.endpoint());
  ASSERT_TRUE(monitor.probe_once("freak").is_ok());

  const std::shared_ptr<const Series> latency =
      monitor.latency_series("freak");
  const std::shared_ptr<const Series> bandwidth =
      monitor.bandwidth_series("freak");
  ASSERT_NE(latency, nullptr);
  ASSERT_NE(bandwidth, nullptr);
  const std::size_t samples = latency->size();
  EXPECT_GE(samples, 1u);

  // Re-registering the target replaces the map entry; the handed-out
  // series must keep working (shared ownership, not a dangling pointer).
  monitor.add_target("freak", responder.endpoint());
  EXPECT_EQ(latency->size(), samples);
  EXPECT_GE(bandwidth->size(), 1u);

  // The replacement starts a fresh series.
  const std::shared_ptr<const Series> fresh =
      monitor.latency_series("freak");
  ASSERT_NE(fresh, nullptr);
  EXPECT_EQ(fresh->size(), 0u);
  responder.stop();
}

TEST(QueryServiceTest, ServesEstimatesRemotely) {
  RealClock clock;
  net::InProcNetwork network(clock);
  auto responder_transport = network.transport("freak");
  Responder responder(*responder_transport,
                      net::inproc_endpoint("freak", "nws"));
  ASSERT_TRUE(responder.start().is_ok());

  auto monitor_transport = network.transport("jagan");
  Monitor monitor(*monitor_transport, clock);
  monitor.add_target("freak", responder.endpoint());
  ASSERT_TRUE(monitor.probe_once("freak").is_ok());

  QueryService service(monitor, *monitor_transport,
                       net::inproc_endpoint("jagan", "nws-query"));
  ASSERT_TRUE(service.start().is_ok());

  auto client_transport = network.transport("brecca");
  QueryClient client(*client_transport, service.endpoint());
  auto estimate = client.estimate("freak");
  ASSERT_TRUE(estimate.is_ok());
  EXPECT_GE(estimate->bandwidth_bytes_per_sec, 0.0);
  EXPECT_FALSE(client.estimate("unknown").is_ok());
  service.stop();
  responder.stop();
}

}  // namespace
}  // namespace griddles::nws
