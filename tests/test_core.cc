// Tests for the File Multiplexer core: GNS-driven routing across all six
// IO mechanisms, the staged/tailing/transcoding wrapper clients, the
// kAuto advisor path, and the POSIX-style shim. The central invariant —
// "mode transparency" — is tested directly: the same program bytes come
// back whatever the route.
#include <gtest/gtest.h>

#include <fstream>
#include <thread>

#include "src/common/tempfile.h"
#include "src/core/multiplexer.h"
#include "src/core/posix_shim.h"
#include "src/core/staged_client.h"
#include "src/core/tailing_client.h"
#include "src/core/transcode_client.h"
#include "src/gridbuffer/server.h"
#include "src/net/inproc.h"
#include "src/remote/file_server.h"
#include "src/replica/catalog.h"
#include "src/vfs/local_client.h"

namespace griddles::core {
namespace {

Bytes pattern(std::size_t n, unsigned seed = 1) {
  Bytes out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<std::byte>((i * 193 + seed) & 0xFF);
  }
  return out;
}

/// Full grid-in-a-box fixture: GNS, buffer server, file server, replica
/// catalog, NWS static estimator.
class FmTest : public ::testing::Test {
 protected:
  FmTest()
      : dir_(*TempDir::create("fm-test")), network_(clock_),
        services_transport_(network_.transport("dione")),
        gns_server_(db_, *services_transport_,
                    net::inproc_endpoint("dione", "gns")),
        buffer_server_(dir_.file("gbuf").string(), *services_transport_,
                       net::inproc_endpoint("dione", "gbuf")),
        file_server_(dir_.file("export"), *services_transport_,
                     net::inproc_endpoint("dione", "fs")),
        catalog_server_(catalog_, *services_transport_,
                        net::inproc_endpoint("dione", "rc")) {
    EXPECT_TRUE(gns_server_.start().is_ok());
    EXPECT_TRUE(buffer_server_.start().is_ok());
    EXPECT_TRUE(file_server_.start().is_ok());
    EXPECT_TRUE(catalog_server_.start().is_ok());
    estimator_.set("dione", {0.001, 10e6});
  }

  ~FmTest() override {
    buffer_server_.stop();
    file_server_.stop();
    catalog_server_.stop();
    gns_server_.stop();
  }

  /// Builds an FM for an application on `host`.
  struct Fm {
    std::unique_ptr<net::Transport> transport;
    std::unique_ptr<gns::GnsClient> gns;
    std::unique_ptr<FileMultiplexer> fm;
    FileMultiplexer* operator->() { return fm.get(); }
    FileMultiplexer& operator*() { return *fm; }
  };

  Fm make_fm(const std::string& host) {
    Fm out;
    out.transport = network_.transport(host);
    out.gns = std::make_unique<gns::GnsClient>(*out.transport,
                                               gns_server_.endpoint());
    FileMultiplexer::Options options;
    options.host = host;
    options.local_root = dir_.file("root-" + host).string();
    options.scratch_dir = dir_.file("scratch-" + host).string();
    options.gns = out.gns.get();
    options.transport = out.transport.get();
    options.estimator = &estimator_;
    out.fm = std::make_unique<FileMultiplexer>(options);
    return out;
  }

  void add_rule(const std::string& host, const std::string& path,
                gns::FileMapping mapping) {
    gns::MappingRule rule;
    rule.host_pattern = host;
    rule.path_pattern = path;
    rule.mapping = std::move(mapping);
    db_.add_rule(rule);
  }

  /// Writes `data` via one FM fd and reads it back via another.
  void roundtrip_through(Fm& fm, const std::string& path, ByteSpan data,
                         bool concurrent = false) {
    auto produce = [&] {
      auto fd = fm->open(path, vfs::OpenFlags::output());
      ASSERT_TRUE(fd.is_ok()) << fd.status();
      std::size_t offset = 0;
      while (offset < data.size()) {
        const std::size_t chunk = std::min<std::size_t>(
            8000, data.size() - offset);
        auto put = fm->write(*fd, data.subspan(offset, chunk));
        ASSERT_TRUE(put.is_ok()) << put.status();
        offset += *put;
      }
      ASSERT_TRUE(fm->close(*fd).is_ok());
    };
    Bytes got;
    auto consume = [&] {
      auto fd = fm->open(path, vfs::OpenFlags::input());
      ASSERT_TRUE(fd.is_ok()) << fd.status();
      Bytes buffer(9001);
      while (true) {
        auto n = fm->read(*fd, {buffer.data(), buffer.size()});
        ASSERT_TRUE(n.is_ok()) << n.status();
        if (*n == 0) break;
        got.insert(got.end(), buffer.begin(),
                   buffer.begin() + static_cast<std::ptrdiff_t>(*n));
      }
      ASSERT_TRUE(fm->close(*fd).is_ok());
    };
    if (concurrent) {
      std::thread producer(produce);
      consume();
      producer.join();
    } else {
      produce();
      consume();
    }
    EXPECT_EQ(got, Bytes(data.begin(), data.end()));
  }

  TempDir dir_;
  RealClock clock_;
  net::InProcNetwork network_;
  std::unique_ptr<net::Transport> services_transport_;
  gns::Database db_;
  gns::GnsServer gns_server_;
  gridbuffer::GridBufferServer buffer_server_;
  remote::FileServer file_server_;
  replica::Catalog catalog_;
  replica::CatalogServer catalog_server_;
  nws::StaticLinkEstimator estimator_;
};

TEST_F(FmTest, DefaultsToLocalWithoutMapping) {
  auto fm = make_fm("jagan");
  roundtrip_through(fm, "plain.dat", pattern(50000));
  EXPECT_EQ(fm->stats().local_opens, 2u);
  EXPECT_EQ(fm->stats().buffer_opens, 0u);
}

TEST_F(FmTest, CanonicalPathAnchorsRelativeNames) {
  auto fm = make_fm("jagan");
  EXPECT_EQ(fm->canonical_path("/abs/x"), "/abs/x");
  const std::string canonical = fm->canonical_path("rel.dat");
  EXPECT_EQ(canonical, dir_.file("root-jagan/rel.dat").string());
}

TEST_F(FmTest, GridBufferMappingStreams) {
  gns::FileMapping mapping;
  mapping.mode = gns::IoMode::kGridBuffer;
  mapping.channel = "t/stream";
  mapping.buffer_endpoint = buffer_server_.endpoint().to_string();
  add_rule("jagan", "*stream.dat", mapping);
  auto fm = make_fm("jagan");
  roundtrip_through(fm, "stream.dat", pattern(120000), /*concurrent=*/true);
  EXPECT_EQ(fm->stats().buffer_opens, 2u);
  EXPECT_EQ(fm->stats().local_opens, 0u);
}

TEST_F(FmTest, RemoteProxyMapping) {
  ASSERT_TRUE(vfs::write_file((file_server_.root() / "p.bin").string(),
                              pattern(30000, 3))
                  .is_ok());
  gns::FileMapping mapping;
  mapping.mode = gns::IoMode::kRemoteProxy;
  mapping.remote_endpoint = file_server_.endpoint().to_string();
  mapping.remote_path = "p.bin";
  add_rule("jagan", "*proxy.dat", mapping);
  auto fm = make_fm("jagan");
  auto fd = fm->open("proxy.dat", vfs::OpenFlags::input());
  ASSERT_TRUE(fd.is_ok());
  EXPECT_EQ(fm->size(*fd).value(), 30000u);
  Bytes buffer(30000);
  EXPECT_EQ(fm->read(*fd, {buffer.data(), buffer.size()}).value(), 30000u);
  EXPECT_EQ(buffer, pattern(30000, 3));
  ASSERT_TRUE(fm->close(*fd).is_ok());
  EXPECT_EQ(fm->stats().proxy_opens, 1u);
}

TEST_F(FmTest, RemoteCopyStagesInAndOut) {
  gns::FileMapping mapping;
  mapping.mode = gns::IoMode::kRemoteCopy;
  mapping.remote_endpoint = file_server_.endpoint().to_string();
  mapping.remote_path = "staged.bin";
  add_rule("jagan", "*staged.dat", mapping);
  auto fm = make_fm("jagan");
  roundtrip_through(fm, "staged.dat", pattern(70000, 7));
  EXPECT_EQ(fm->stats().staged_opens, 2u);
  // The write went back to the server.
  auto remote_copy = vfs::read_file(
      (file_server_.root() / "staged.bin").string());
  ASSERT_TRUE(remote_copy.is_ok());
  EXPECT_EQ(*remote_copy, pattern(70000, 7));
}

TEST_F(FmTest, AutoModePicksProxyForSparseAccess) {
  ASSERT_TRUE(vfs::write_file((file_server_.root() / "huge.bin").string(),
                              pattern(2 << 20))
                  .is_ok());
  gns::FileMapping mapping;
  mapping.mode = gns::IoMode::kAuto;
  mapping.remote_endpoint = file_server_.endpoint().to_string();
  mapping.remote_path = "huge.bin";
  mapping.access_fraction = 0.001;
  add_rule("jagan", "*sparse.dat", mapping);
  estimator_.set("dione", {0.0001, 100e6});
  auto fm = make_fm("jagan");
  auto fd = fm->open("sparse.dat", vfs::OpenFlags::input());
  ASSERT_TRUE(fd.is_ok());
  EXPECT_EQ(fm->stats().proxy_opens, 1u);
  EXPECT_EQ(fm->stats().staged_opens, 0u);
  ASSERT_TRUE(fm->close(*fd).is_ok());
}

TEST_F(FmTest, AutoModePicksCopyOnHighLatencyFullScan) {
  ASSERT_TRUE(vfs::write_file((file_server_.root() / "scan.bin").string(),
                              pattern(1 << 20))
                  .is_ok());
  gns::FileMapping mapping;
  mapping.mode = gns::IoMode::kAuto;
  mapping.remote_endpoint = file_server_.endpoint().to_string();
  mapping.remote_path = "scan.bin";
  mapping.access_fraction = 1.0;
  add_rule("jagan", "*scan.dat", mapping);
  estimator_.set("dione", {0.3, 1e6});  // nasty latency
  auto fm = make_fm("jagan");
  auto fd = fm->open("scan.dat", vfs::OpenFlags::input());
  ASSERT_TRUE(fd.is_ok());
  EXPECT_EQ(fm->stats().staged_opens, 1u);
  EXPECT_EQ(fm->stats().proxy_opens, 0u);
  ASSERT_TRUE(fm->close(*fd).is_ok());
}

TEST_F(FmTest, ReplicatedMappingSelectsAndReads) {
  const Bytes data = pattern(60000, 11);
  ASSERT_TRUE(vfs::write_file((file_server_.root() / "rep.bin").string(),
                              data)
                  .is_ok());
  catalog_.add("lfn/rep",
               {"dione", file_server_.endpoint().to_string(), "rep.bin",
                data.size(), fnv1a(data)});
  gns::FileMapping mapping;
  mapping.mode = gns::IoMode::kReplicated;
  mapping.logical_name = "lfn/rep";
  mapping.catalog_endpoint = catalog_server_.endpoint().to_string();
  add_rule("jagan", "*rep.dat", mapping);
  auto fm = make_fm("jagan");
  auto fd = fm->open("rep.dat", vfs::OpenFlags::input());
  ASSERT_TRUE(fd.is_ok()) << fd.status();
  Bytes buffer(data.size());
  EXPECT_EQ(fm->read(*fd, {buffer.data(), buffer.size()}).value(),
            data.size());
  EXPECT_EQ(buffer, data);
  EXPECT_EQ(fm->stats().replicated_opens, 1u);
  // Writable open of a replicated file is refused.
  auto wr = fm->open("rep.dat", vfs::OpenFlags::output());
  EXPECT_FALSE(wr.is_ok());
  EXPECT_EQ(wr.status().code(), ErrorCode::kPermissionDenied);
  ASSERT_TRUE(fm->close(*fd).is_ok());
}

TEST_F(FmTest, PerOpenIndependence) {
  // Paper: "Each OPEN operation makes an independent choice, thus one
  // file may be located locally and another may be remote."
  gns::FileMapping mapping;
  mapping.mode = gns::IoMode::kGridBuffer;
  mapping.channel = "t/mix";
  mapping.buffer_endpoint = buffer_server_.endpoint().to_string();
  add_rule("jagan", "*edge.dat", mapping);
  auto fm = make_fm("jagan");

  auto local_fd = fm->open("other.dat", vfs::OpenFlags::output());
  ASSERT_TRUE(local_fd.is_ok());
  auto buffer_fd = fm->open("edge.dat", vfs::OpenFlags::output());
  ASSERT_TRUE(buffer_fd.is_ok());
  EXPECT_NE(fm->describe(*local_fd).value().find("local:"),
            std::string::npos);
  EXPECT_NE(fm->describe(*buffer_fd).value().find("gridbuffer:"),
            std::string::npos);
  ASSERT_TRUE(fm->close_all().is_ok());
  EXPECT_EQ(fm->stats().local_opens, 1u);
  EXPECT_EQ(fm->stats().buffer_opens, 1u);
}

TEST_F(FmTest, BadDescriptorErrors) {
  auto fm = make_fm("jagan");
  Bytes buffer(1);
  EXPECT_FALSE(fm->read(77, {buffer.data(), 1}).is_ok());
  EXPECT_FALSE(fm->write(77, buffer).is_ok());
  EXPECT_FALSE(fm->seek(77, 0, vfs::Whence::kSet).is_ok());
  EXPECT_FALSE(fm->close(77).is_ok());
  EXPECT_FALSE(fm->describe(77).is_ok());
}

TEST_F(FmTest, RecordSchemaTranscodesTransparently) {
  gns::FileMapping mapping;
  mapping.mode = gns::IoMode::kLocal;
  mapping.record_schema = "f64[2], i32, c8[4]";
  add_rule("jagan", "*rec.dat", mapping);
  auto fm = make_fm("jagan");
  // 24-byte records; write three of them.
  struct Record {
    double a, b;
    std::int32_t c;
    char tag[4];
  } __attribute__((packed));
  static_assert(sizeof(Record) == 24);
  Record records[3] = {{1.5, -2.5, 42, {'a', 'b', 'c', 'd'}},
                       {3.25, 0.0, -7, {'e', 'f', 'g', 'h'}},
                       {9.75, 1e10, 123456, {'i', 'j', 'k', 'l'}}};
  {
    auto fd = fm->open("rec.dat", vfs::OpenFlags::output());
    ASSERT_TRUE(fd.is_ok());
    ASSERT_TRUE(fm->write(*fd, {reinterpret_cast<std::byte*>(records),
                                sizeof(records)})
                    .is_ok());
    ASSERT_TRUE(fm->close(*fd).is_ok());
  }
  // On disk the bytes are canonical big-endian — NOT the host bytes.
  auto raw = vfs::read_file(fm->canonical_path("rec.dat"));
  ASSERT_TRUE(raw.is_ok());
  if (std::endian::native == std::endian::little) {
    EXPECT_NE(std::memcmp(raw->data(), records, sizeof(records)), 0);
  }
  // Reading through the FM restores host order exactly.
  {
    auto fd = fm->open("rec.dat", vfs::OpenFlags::input());
    ASSERT_TRUE(fd.is_ok());
    Record back[3];
    EXPECT_EQ(fm->read(*fd, {reinterpret_cast<std::byte*>(back),
                             sizeof(back)})
                  .value(),
              sizeof(back));
    EXPECT_EQ(std::memcmp(back, records, sizeof(records)), 0);
    ASSERT_TRUE(fm->close(*fd).is_ok());
  }
}

TEST_F(FmTest, PosixShimDrivesTheFm) {
  auto fm = make_fm("jagan");
  glio_install(fm.fm.get());
  const int fd = glio_open("shim.dat", "w");
  ASSERT_GE(fd, 3);
  EXPECT_EQ(glio_write(fd, "hello", 5), 5);
  EXPECT_EQ(glio_flush(fd), 0);
  EXPECT_EQ(glio_close(fd), 0);

  const int rd = glio_open("shim.dat", "r");
  ASSERT_GE(rd, 3);
  char buffer[8] = {};
  EXPECT_EQ(glio_lseek(rd, 1, 0), 1);
  EXPECT_EQ(glio_read(rd, buffer, sizeof(buffer)), 4);
  EXPECT_STREQ(buffer, "ello");
  EXPECT_EQ(glio_read(rd, buffer, sizeof(buffer)), 0);  // EOF
  EXPECT_EQ(glio_close(rd), 0);

  EXPECT_EQ(glio_open("shim.dat", "x"), -1);  // bad mode
  EXPECT_NE(std::string(glio_last_error()).size(), 0u);
  EXPECT_EQ(glio_open("nope.dat", "r"), -1);
  glio_install(nullptr);
  EXPECT_EQ(glio_open("shim.dat", "r"), -1);
}

// ---- Wrapper clients directly -----------------------------------------

TEST(TranscodeClientTest, SeeksMustBeRecordAligned) {
  auto dir = TempDir::create("transcode");
  auto schema = xdr::RecordSchema::parse("i32[2]");
  ASSERT_TRUE(schema.is_ok());
  auto inner = vfs::LocalFileClient::open(dir->file("r.bin").string(),
                                          vfs::OpenFlags::output());
  ASSERT_TRUE(inner.is_ok());
  auto client = RecordTranscodingClient::wrap(std::move(*inner), *schema);
  ASSERT_TRUE(client.is_ok());
  std::int32_t record[2] = {1, 2};
  ASSERT_TRUE((*client)
                  ->write({reinterpret_cast<std::byte*>(record),
                           sizeof(record)})
                  .is_ok());
  EXPECT_TRUE((*client)->seek(8, vfs::Whence::kSet).is_ok());
  EXPECT_FALSE((*client)->seek(3, vfs::Whence::kSet).is_ok());
  ASSERT_TRUE((*client)->close().is_ok());
}

TEST(TranscodeClientTest, CloseWithPartialRecordFails) {
  auto dir = TempDir::create("transcode2");
  auto schema = xdr::RecordSchema::parse("i64");
  auto inner = vfs::LocalFileClient::open(dir->file("p.bin").string(),
                                          vfs::OpenFlags::output());
  auto client = RecordTranscodingClient::wrap(std::move(*inner), *schema);
  ASSERT_TRUE(client.is_ok());
  ASSERT_TRUE((*client)->write(as_bytes_view("abc")).is_ok());  // 3 of 8
  EXPECT_FALSE((*client)->flush().is_ok());
  EXPECT_FALSE((*client)->close().is_ok());
}

TEST(TailingClientTest, ReadsGrowingFileToMarker) {
  auto dir = TempDir::create("tailing");
  const std::string path = dir->file("grow.log").string();
  ASSERT_TRUE(vfs::write_file(path, as_bytes_view("first ")).is_ok());
  RealClock clock;

  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    auto file = vfs::LocalFileClient::open(path,
                                           vfs::OpenFlags::appending());
    ASSERT_TRUE(file.is_ok());
    ASSERT_TRUE(vfs::write_all(**file, as_bytes_view("second")).is_ok());
    ASSERT_TRUE((*file)->close().is_ok());
    std::ofstream(TailingLocalFileClient::done_marker(path)).put('\n');
  });

  auto reader = TailingLocalFileClient::open(
      path, clock, nullptr, std::chrono::milliseconds(5));
  ASSERT_TRUE(reader.is_ok());
  Bytes got;
  Bytes buffer(64);
  while (true) {
    auto n = (*reader)->read({buffer.data(), buffer.size()});
    ASSERT_TRUE(n.is_ok());
    if (*n == 0) break;
    got.insert(got.end(), buffer.begin(),
               buffer.begin() + static_cast<std::ptrdiff_t>(*n));
  }
  producer.join();
  EXPECT_EQ(to_string(got), "first second");
  EXPECT_EQ((*reader)->size().value(), 12u);
  ASSERT_TRUE((*reader)->close().is_ok());
}

TEST(TailingClientTest, WaitsForFileCreation) {
  auto dir = TempDir::create("tailing-create");
  const std::string path = dir->file("late.log").string();
  RealClock clock;
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    ASSERT_TRUE(vfs::write_file(path, as_bytes_view("data")).is_ok());
    std::ofstream(TailingLocalFileClient::done_marker(path)).put('\n');
  });
  auto reader = TailingLocalFileClient::open(
      path, clock, nullptr, std::chrono::milliseconds(5));
  producer.join();
  ASSERT_TRUE(reader.is_ok());
  auto all = vfs::read_all(**reader);
  ASSERT_TRUE(all.is_ok());
  EXPECT_EQ(to_string(*all), "data");
}

TEST(TailingClientTest, ProducerFinishedWithoutFileIsNotFound) {
  auto dir = TempDir::create("tailing-none");
  const std::string path = dir->file("never.log").string();
  std::ofstream(TailingLocalFileClient::done_marker(path)).put('\n');
  RealClock clock;
  auto reader = TailingLocalFileClient::open(
      path, clock, nullptr, std::chrono::milliseconds(5));
  EXPECT_FALSE(reader.is_ok());
  EXPECT_EQ(reader.status().code(), ErrorCode::kNotFound);
}

TEST(TailingClientTest, PollWaitHookIsInvoked) {
  auto dir = TempDir::create("tailing-hook");
  const std::string path = dir->file("h.log").string();
  ASSERT_TRUE(vfs::write_file(path, as_bytes_view("x")).is_ok());
  RealClock clock;
  std::atomic<int> polls{0};
  auto reader = TailingLocalFileClient::open(
      path, clock,
      [&](Duration d) {
        ++polls;
        std::this_thread::sleep_for(
            std::chrono::duration_cast<std::chrono::milliseconds>(d));
      },
      std::chrono::milliseconds(2));
  ASSERT_TRUE(reader.is_ok());
  std::thread finisher([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    std::ofstream(TailingLocalFileClient::done_marker(path)).put('\n');
  });
  Bytes buffer(8);
  ASSERT_TRUE((*reader)->read({buffer.data(), 8}).is_ok());  // "x"
  auto n = (*reader)->read({buffer.data(), 8});              // waits, EOF
  finisher.join();
  ASSERT_TRUE(n.is_ok());
  EXPECT_EQ(*n, 0u);
  EXPECT_GT(polls.load(), 0);
}

}  // namespace
}  // namespace griddles::core
