// Tests for src/obs/span.h: RAII nesting and parent/child integrity,
// cross-thread and cross-RPC context propagation, retry spans under an
// armed fault plan, bounded-buffer overflow accounting, the Chrome
// trace-event export, and whole-workflow span trees.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <thread>
#include <vector>

#include "src/apps/paper_apps.h"
#include "src/common/clock.h"
#include "src/common/tempfile.h"
#include "src/fault/plan.h"
#include "src/net/inproc.h"
#include "src/net/rpc.h"
#include "src/obs/metrics.h"
#include "src/obs/span.h"
#include "src/testbed/testbed.h"
#include "src/workflow/runner.h"
#include "tests/test_scaling.h"

namespace griddles {
namespace {

using obs::Span;
using obs::SpanCollector;
using obs::SpanKind;
using obs::SpanRecord;

/// Enables the global collector for one test and leaves it clean
/// (disabled, drained) for whichever suite runs next in this binary.
class SpanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    collector().enable(true);
    (void)collector().drain();  // spans leaked by earlier tests
  }
  void TearDown() override {
    collector().enable(false);
    (void)collector().drain();
    fault::disarm();  // belt and braces: no plan may leak out
  }

  static SpanCollector& collector() { return SpanCollector::global(); }

  static std::vector<SpanRecord> drain() {
    return SpanCollector::global().drain();
  }

  static const SpanRecord* find(const std::vector<SpanRecord>& spans,
                                SpanKind kind) {
    for (const SpanRecord& span : spans) {
      if (span.kind == kind) return &span;
    }
    return nullptr;
  }

  /// Every span's parent must exist in the same trace (or be 0): the
  /// invariant that makes the exported tree reassemble.
  static void expect_tree_integrity(const std::vector<SpanRecord>& spans) {
    std::map<std::uint64_t, const SpanRecord*> by_id;
    for (const SpanRecord& span : spans) by_id[span.span_id] = &span;
    for (const SpanRecord& span : spans) {
      if (span.parent_id == 0) continue;
      const auto parent = by_id.find(span.parent_id);
      ASSERT_NE(parent, by_id.end())
          << span.name << ": parent " << span.parent_id << " not recorded";
      EXPECT_EQ(parent->second->trace_id, span.trace_id)
          << span.name << ": parent in a different trace";
    }
  }
};

TEST_F(SpanTest, DisabledHookRecordsNothing) {
  collector().enable(false);
  Span span(SpanKind::kStage, "stage:ghost");
  EXPECT_FALSE(span.active());
  EXPECT_FALSE(span.context().valid());
  EXPECT_FALSE(obs::current_context().valid());
  span.end();
  EXPECT_TRUE(drain().empty());
}

TEST_F(SpanTest, NestingEstablishesParentChildAndRestoresContext) {
  EXPECT_FALSE(obs::current_context().valid());
  std::uint64_t root_id = 0, mid_id = 0;
  {
    Span root(SpanKind::kWorkflow, "workflow:t");
    root_id = root.context().span_id;
    EXPECT_EQ(obs::current_context().span_id, root_id);
    {
      Span mid(SpanKind::kStage, "stage:a");
      mid_id = mid.context().span_id;
      Span leaf(SpanKind::kRpc, "rpc:read");
      leaf.add_attr("peer", "dione");
      EXPECT_EQ(leaf.context().trace_id, root.context().trace_id);
    }
    // Inner spans ended: the root is the current context again.
    EXPECT_EQ(obs::current_context().span_id, root_id);
  }
  EXPECT_FALSE(obs::current_context().valid());

  const std::vector<SpanRecord> spans = drain();
  ASSERT_EQ(spans.size(), 3u);
  expect_tree_integrity(spans);
  const SpanRecord* root = find(spans, SpanKind::kWorkflow);
  const SpanRecord* mid = find(spans, SpanKind::kStage);
  const SpanRecord* leaf = find(spans, SpanKind::kRpc);
  ASSERT_TRUE(root != nullptr && mid != nullptr && leaf != nullptr);
  EXPECT_EQ(root->parent_id, 0u);
  EXPECT_EQ(mid->parent_id, root_id);
  EXPECT_EQ(leaf->parent_id, mid_id);
  EXPECT_GE(root->wall_end_s, root->wall_start_s);
  // Children end before their parent records (stack discipline).
  EXPECT_LE(leaf->wall_end_s, root->wall_end_s + 1e-9);
  ASSERT_EQ(leaf->attrs.size(), 1u);
  EXPECT_EQ(leaf->attrs[0].first, "peer");
  EXPECT_EQ(leaf->attrs[0].second, "dione");
}

TEST_F(SpanTest, ScopedTraceContextCarriesAcrossThreads) {
  Span parent(SpanKind::kStage, "stage:spawner");
  const obs::TraceContext handoff = obs::current_context();
  std::thread worker([handoff] {
    obs::ScopedTraceContext scope(handoff);
    Span child(SpanKind::kCopy, "copy.fetch:/x");
  });
  worker.join();  // the worker's thread buffer flushes at exit
  parent.end();

  const std::vector<SpanRecord> spans = drain();
  ASSERT_EQ(spans.size(), 2u);
  const SpanRecord* child = find(spans, SpanKind::kCopy);
  ASSERT_NE(child, nullptr);
  EXPECT_EQ(child->trace_id, handoff.trace_id);
  EXPECT_EQ(child->parent_id, handoff.span_id);
  expect_tree_integrity(spans);
}

TEST_F(SpanTest, ModelClockStampsModelTime) {
  ManualClock model;
  model.advance(from_seconds_d(2.0));
  collector().set_model_clock(&model);
  {
    Span span(SpanKind::kOther, "timed");
    model.advance(from_seconds_d(3.0));
  }
  collector().set_model_clock(nullptr);
  Span untimed(SpanKind::kOther, "untimed");
  untimed.end();

  const std::vector<SpanRecord> spans = drain();
  ASSERT_EQ(spans.size(), 2u);
  const SpanRecord& timed = spans[0].name == "timed" ? spans[0] : spans[1];
  const SpanRecord& bare = spans[0].name == "timed" ? spans[1] : spans[0];
  EXPECT_DOUBLE_EQ(timed.model_start_s, 2.0);
  EXPECT_DOUBLE_EQ(timed.model_end_s, 5.0);
  EXPECT_DOUBLE_EQ(bare.model_start_s, 0.0);
  EXPECT_DOUBLE_EQ(bare.model_end_s, 0.0);
}

TEST_F(SpanTest, OverflowDropsSpansAndCountsThem) {
  constexpr std::size_t kCapacity = 8;
  constexpr int kRecorded = 100;
  collector().set_capacity(kCapacity);
  const std::uint64_t dropped_before = collector().dropped();
  const std::uint64_t counter_before =
      obs::MetricsRegistry::global().counter("obs.span.dropped").value();
  for (int i = 0; i < kRecorded; ++i) {
    Span span(SpanKind::kOther, "bulk");
  }
  const std::vector<SpanRecord> spans = drain();
  collector().set_capacity(SpanCollector::kDefaultCapacity);

  EXPECT_EQ(spans.size(), kCapacity);
  const std::uint64_t dropped = collector().dropped() - dropped_before;
  EXPECT_EQ(dropped, static_cast<std::uint64_t>(kRecorded) - kCapacity);
  EXPECT_EQ(obs::MetricsRegistry::global().counter("obs.span.dropped")
                    .value() -
                counter_before,
            dropped);
}

TEST_F(SpanTest, RpcHopParentsServerSpanToClientContext) {
  RealClock clock;
  net::InProcNetwork network(clock);
  auto server_t = network.transport("dione");
  auto client_t = network.transport("jagan");

  net::RpcServer server(*server_t, net::inproc_endpoint("dione", "svc"));
  server.register_method(
      1, [](ByteSpan request, const net::RpcContext&) -> Result<Bytes> {
        return Bytes(request.begin(), request.end());
      });
  ASSERT_TRUE(server.start().is_ok());

  std::uint64_t caller_trace = 0, caller_span = 0;
  {
    Span caller(SpanKind::kStage, "stage:caller");
    caller_trace = caller.context().trace_id;
    caller_span = caller.context().span_id;
    net::RpcClient client(*client_t, server.endpoint());
    ASSERT_TRUE(client.call(1, as_bytes_view("ping")).is_ok());
  }
  server.stop();  // joins the worker, flushing its thread buffer

  const std::vector<SpanRecord> spans = drain();
  const SpanRecord* rpc = find(spans, SpanKind::kRpc);
  ASSERT_NE(rpc, nullptr) << "no server-side rpc span recorded";
  EXPECT_EQ(rpc->trace_id, caller_trace);
  EXPECT_EQ(rpc->parent_id, caller_span);
  EXPECT_EQ(rpc->name, "rpc:1");
  expect_tree_integrity(spans);
}

TEST_F(SpanTest, UntracedRpcMintsNoServerSpan) {
  RealClock clock;
  net::InProcNetwork network(clock);
  auto server_t = network.transport("dione");
  auto client_t = network.transport("jagan");

  net::RpcServer server(*server_t, net::inproc_endpoint("dione", "svc"));
  server.register_method(
      1, [](ByteSpan, const net::RpcContext&) -> Result<Bytes> {
        return Bytes{};
      });
  ASSERT_TRUE(server.start().is_ok());
  {
    // No enclosing span: the frame carries trace_id 0 and the server
    // must not invent a root trace per request.
    net::RpcClient client(*client_t, server.endpoint());
    ASSERT_TRUE(client.call(1, {}).is_ok());
  }
  server.stop();
  EXPECT_EQ(find(drain(), SpanKind::kRpc), nullptr);
}

TEST_F(SpanTest, FaultedRpcRecordsRetryChildSpans) {
  RealClock clock;
  net::InProcNetwork network(clock);
  auto server_t = network.transport("dione");
  auto client_t = network.transport("jagan");

  net::RpcServer server(*server_t, net::inproc_endpoint("dione", "svc"));
  server.register_method(
      1, [](ByteSpan, const net::RpcContext&) -> Result<Bytes> {
        return Bytes{};
      });
  ASSERT_TRUE(server.start().is_ok());

  // First two attempts are injected drops; the third succeeds.
  auto plan = fault::Plan::parse("drop@rpc:jagan>dione:count=2");
  ASSERT_TRUE(plan.is_ok()) << plan.status();
  fault::arm(*plan, &clock);

  std::uint64_t caller_trace = 0;
  {
    Span caller(SpanKind::kStage, "stage:caller");
    caller_trace = caller.context().trace_id;
    net::RpcClient client(*client_t, server.endpoint());
    ASSERT_TRUE(client.call(1, {}).is_ok());
  }
  fault::disarm();
  server.stop();

  const std::vector<SpanRecord> spans = drain();
  std::vector<const SpanRecord*> retries;
  for (const SpanRecord& span : spans) {
    if (span.kind == SpanKind::kRetry) retries.push_back(&span);
  }
  ASSERT_EQ(retries.size(), 2u) << "one retry span per failed attempt";
  for (const SpanRecord* retry : retries) {
    EXPECT_EQ(retry->trace_id, caller_trace);
    EXPECT_NE(retry->parent_id, 0u);
    const auto attempt = std::find_if(
        retry->attrs.begin(), retry->attrs.end(),
        [](const auto& attr) { return attr.first == "attempt"; });
    ASSERT_NE(attempt, retry->attrs.end());
    const auto error = std::find_if(
        retry->attrs.begin(), retry->attrs.end(),
        [](const auto& attr) { return attr.first == "error"; });
    ASSERT_NE(error, retry->attrs.end());
    EXPECT_NE(error->second.find("injected fault"), std::string::npos);
  }
  expect_tree_integrity(spans);
}

TEST_F(SpanTest, ChromeExportRendersIdsAsStringsAndEscapes) {
  {
    Span root(SpanKind::kWorkflow, "workflow:\"quoted\"");
    root.add_attr("mode", "grid_buffers");
    Span child(SpanKind::kBufferWait, "gbuf.read_wait:pipe");
  }
  std::vector<SpanRecord> spans = drain();
  ASSERT_EQ(spans.size(), 2u);

  const SpanRecord& child =
      spans[0].kind == SpanKind::kBufferWait ? spans[0] : spans[1];
  const std::string event = obs::to_chrome_event(child);
  // 64-bit ids must be JSON strings: doubles corrupt them past 2^53.
  EXPECT_NE(event.find("\"span_id\":\"" + std::to_string(child.span_id) +
                       "\""),
            std::string::npos)
      << event;
  EXPECT_NE(event.find("\"cat\":\"buffer_wait\""), std::string::npos);
  EXPECT_NE(event.find("\"ph\":\"X\""), std::string::npos);

  // Re-record and render the full document. lint: span-raii (drained
  // records re-enter the collector for the export round-trip test)
  for (SpanRecord& span : spans) collector().record(std::move(span));
  const std::string json = collector().drain_chrome_json();
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(json.find("workflow:\\\"quoted\\\""), std::string::npos);
  EXPECT_NE(json.find("\"mode\":\"grid_buffers\""), std::string::npos);
  // Drained twice: nothing left behind.
  EXPECT_TRUE(drain().empty());
}

TEST_F(SpanTest, WorkflowRunProducesOneRootedTree) {
  auto scratch = TempDir::create("trace-spans-wf");
  ASSERT_TRUE(scratch.is_ok());
  testbed::TestbedRuntime testbed(test_support::kClockScale / 4000.0,
                                  scratch->path().string(), 256.0);
  collector().set_model_clock(&testbed.clock());
  workflow::WorkflowRunner runner(testbed);
  auto spec = workflow::WorkflowSpec::from_pipeline(
      "trace-spans", apps::climate_pipeline(256.0), {"jagan"});
  ASSERT_TRUE(spec.is_ok());
  workflow::WorkflowRunner::Options options;
  options.mode = workflow::CouplingMode::kGridBuffers;
  auto report = runner.run(*spec, options);
  collector().set_model_clock(nullptr);
  ASSERT_TRUE(report.is_ok()) << report.status().to_string();

  const std::vector<SpanRecord> spans = drain();
  expect_tree_integrity(spans);

  std::vector<const SpanRecord*> roots;
  std::vector<const SpanRecord*> stages;
  for (const SpanRecord& span : spans) {
    if (span.kind == SpanKind::kWorkflow) roots.push_back(&span);
    if (span.kind == SpanKind::kStage) stages.push_back(&span);
  }
  ASSERT_EQ(roots.size(), 1u);
  const SpanRecord& root = *roots[0];
  EXPECT_EQ(root.parent_id, 0u);
  // climate pipeline: ccam -> cc2lam -> darlam.
  ASSERT_EQ(stages.size(), 3u);
  for (const SpanRecord* stage : stages) {
    EXPECT_EQ(stage->trace_id, root.trace_id);
    EXPECT_EQ(stage->parent_id, root.span_id);
    EXPECT_GE(stage->wall_start_s, root.wall_start_s - 1e-9);
    EXPECT_GE(stage->model_end_s, stage->model_start_s);
  }
  // The whole run shares the root's trace: opens and buffer waits too.
  for (const SpanRecord& span : spans) {
    EXPECT_EQ(span.trace_id, root.trace_id) << span.name;
  }
  const SpanRecord* open = find(spans, SpanKind::kOpen);
  ASSERT_NE(open, nullptr) << "FileMultiplexer opens must be traced";
}

}  // namespace
}  // namespace griddles
