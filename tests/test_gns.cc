// Tests for the GriddLeS Name Service: mapping model, database
// semantics, config loading, server/client, cache behaviour, dynamic
// remapping.
#include <gtest/gtest.h>

#include "src/common/clock.h"
#include "src/gns/service.h"
#include "src/net/inproc.h"

namespace griddles::gns {
namespace {

TEST(IoModeTest, NamesRoundTrip) {
  for (const IoMode mode :
       {IoMode::kLocal, IoMode::kRemoteCopy, IoMode::kRemoteProxy,
        IoMode::kReplicated, IoMode::kGridBuffer, IoMode::kAuto}) {
    auto parsed = io_mode_from_name(io_mode_name(mode));
    ASSERT_TRUE(parsed.is_ok());
    EXPECT_EQ(*parsed, mode);
  }
  EXPECT_FALSE(io_mode_from_name("bogus").is_ok());
}

FileMapping sample_mapping() {
  FileMapping mapping;
  mapping.mode = IoMode::kGridBuffer;
  mapping.channel = "wf/JOB.SF";
  mapping.buffer_endpoint = "inproc://dione/gbuf";
  mapping.cache_enabled = false;
  mapping.block_size = 8192;
  mapping.reader_count = 3;
  mapping.record_schema = "f64[3], i32";
  mapping.access_fraction = 0.25;
  mapping.tail = true;
  return mapping;
}

TEST(MappingTest, EncodeDecodeRoundTrip) {
  xdr::Encoder enc;
  encode_mapping(enc, sample_mapping());
  xdr::Decoder dec(enc.buffer());
  auto decoded = decode_mapping(dec);
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(*decoded, sample_mapping());
  EXPECT_TRUE(dec.done());
}

TEST(MappingTest, RuleMatching) {
  MappingRule rule;
  rule.host_pattern = "jagan";
  rule.path_pattern = "/work/JOB.*";
  EXPECT_TRUE(rule.matches("jagan", "/work/JOB.SF"));
  EXPECT_FALSE(rule.matches("dione", "/work/JOB.SF"));
  EXPECT_FALSE(rule.matches("jagan", "/work/RESULT.DAT"));
  rule.host_pattern = "*";
  EXPECT_TRUE(rule.matches("anything", "/work/JOB.TH"));
}

TEST(DatabaseTest, LaterRulesWin) {
  Database db;
  MappingRule broad;
  broad.host_pattern = "*";
  broad.path_pattern = "*";
  broad.mapping.mode = IoMode::kLocal;
  db.add_rule(broad);
  MappingRule specific;
  specific.host_pattern = "jagan";
  specific.path_pattern = "*JOB.SF";
  specific.mapping.mode = IoMode::kGridBuffer;
  db.add_rule(specific);

  EXPECT_EQ(db.lookup("jagan", "/w/JOB.SF")->mode, IoMode::kGridBuffer);
  EXPECT_EQ(db.lookup("jagan", "/w/other")->mode, IoMode::kLocal);
  EXPECT_EQ(db.lookup("dione", "/w/JOB.SF")->mode, IoMode::kLocal);
}

TEST(DatabaseTest, MissMeansNoMapping) {
  Database db;
  EXPECT_FALSE(db.lookup("jagan", "/x").has_value());
}

TEST(DatabaseTest, VersionBumpsOnEveryMutation) {
  Database db;
  const auto v0 = db.version();
  MappingRule rule;
  rule.host_pattern = "a";
  rule.path_pattern = "b";
  db.add_rule(rule);
  const auto v1 = db.version();
  EXPECT_GT(v1, v0);
  EXPECT_EQ(db.remove_rules("a", "b"), 1u);
  EXPECT_GT(db.version(), v1);
  // Removing nothing does not bump.
  const auto v2 = db.version();
  EXPECT_EQ(db.remove_rules("a", "b"), 0u);
  EXPECT_EQ(db.version(), v2);
}

TEST(DatabaseTest, LoadsFromConfig) {
  auto config = Config::parse(R"(
[mapping:sf]
host = jagan
path = /work/JOB.SF
mode = gridbuffer
channel = wf/JOB.SF
buffer_endpoint = inproc://dione/gbuf
block_size = 8192
readers = 2
cache = false

[mapping:all-remote]
host = *
path = /data/*
mode = remote_proxy
remote_endpoint = inproc://freak/fs
remote_path = data.bin
access_fraction = 0.1
)");
  ASSERT_TRUE(config.is_ok());
  Database db;
  ASSERT_TRUE(db.load_config(*config).is_ok());
  const auto sf = db.lookup("jagan", "/work/JOB.SF");
  ASSERT_TRUE(sf.has_value());
  EXPECT_EQ(sf->mode, IoMode::kGridBuffer);
  EXPECT_EQ(sf->block_size, 8192u);
  EXPECT_EQ(sf->reader_count, 2u);
  EXPECT_FALSE(sf->cache_enabled);
  const auto remote = db.lookup("vpac27", "/data/input.nc");
  ASSERT_TRUE(remote.has_value());
  EXPECT_EQ(remote->mode, IoMode::kRemoteProxy);
  EXPECT_DOUBLE_EQ(remote->access_fraction, 0.1);
}

TEST(ConfigTest, RejectsMissingFields) {
  auto config = Config::parse("[mapping:x]\nhost = jagan\n");
  ASSERT_TRUE(config.is_ok());
  EXPECT_FALSE(rules_from_config(*config).is_ok());
}

class GnsServiceTest : public ::testing::Test {
 protected:
  GnsServiceTest()
      : network_(clock_), server_transport_(network_.transport("dione")),
        client_transport_(network_.transport("jagan")),
        server_(db_, *server_transport_,
                net::inproc_endpoint("dione", "gns")) {
    EXPECT_TRUE(server_.start().is_ok());
  }
  ~GnsServiceTest() override { server_.stop(); }

  RealClock clock_;
  net::InProcNetwork network_;
  std::unique_ptr<net::Transport> server_transport_;
  std::unique_ptr<net::Transport> client_transport_;
  Database db_;
  GnsServer server_;
};

TEST_F(GnsServiceTest, LookupThroughRpc) {
  MappingRule rule;
  rule.host_pattern = "jagan";
  rule.path_pattern = "*";
  rule.mapping = sample_mapping();
  db_.add_rule(rule);

  GnsClient client(*client_transport_, server_.endpoint());
  auto found = client.lookup("jagan", "/anything");
  ASSERT_TRUE(found.is_ok());
  ASSERT_TRUE(found->has_value());
  EXPECT_EQ(**found, sample_mapping());

  auto miss = client.lookup("dione", "/anything");
  ASSERT_TRUE(miss.is_ok());
  EXPECT_FALSE(miss->has_value());
}

TEST_F(GnsServiceTest, ClientEditsRules) {
  GnsClient client(*client_transport_, server_.endpoint());
  MappingRule rule;
  rule.host_pattern = "h";
  rule.path_pattern = "p";
  rule.mapping.mode = IoMode::kRemoteCopy;
  ASSERT_TRUE(client.add_rule(rule).is_ok());
  auto rules = client.list_rules();
  ASSERT_TRUE(rules.is_ok());
  ASSERT_EQ(rules->size(), 1u);
  EXPECT_EQ((*rules)[0], rule);
  auto removed = client.remove_rules("h", "p");
  ASSERT_TRUE(removed.is_ok());
  EXPECT_EQ(*removed, 1u);
  EXPECT_EQ(client.list_rules()->size(), 0u);
}

TEST_F(GnsServiceTest, CacheServesRepeatLookups) {
  GnsClient client(*client_transport_, server_.endpoint(),
                   net::WireFormat::kBinary,
                   std::chrono::milliseconds(10000));
  ASSERT_TRUE(client.lookup("jagan", "/x").is_ok());
  const auto hits_before = client.cache_hits();
  ASSERT_TRUE(client.lookup("jagan", "/x").is_ok());
  ASSERT_TRUE(client.lookup("jagan", "/x").is_ok());
  EXPECT_EQ(client.cache_hits(), hits_before + 2);
}

TEST_F(GnsServiceTest, DynamicRemapInvalidatesCache) {
  GnsClient client(*client_transport_, server_.endpoint(),
                   net::WireFormat::kBinary,
                   std::chrono::milliseconds(0));  // no caching
  auto before = client.lookup("jagan", "/f");
  ASSERT_TRUE(before.is_ok());
  EXPECT_FALSE(before->has_value());

  // Reconfigure mid-run — the paper's "changing some parameters in the
  // GNS" with no application change.
  MappingRule rule;
  rule.host_pattern = "jagan";
  rule.path_pattern = "/f";
  rule.mapping.mode = IoMode::kGridBuffer;
  db_.add_rule(rule);

  auto after = client.lookup("jagan", "/f");
  ASSERT_TRUE(after.is_ok());
  ASSERT_TRUE(after->has_value());
  EXPECT_EQ((*after)->mode, IoMode::kGridBuffer);
}

TEST_F(GnsServiceTest, VersionVisibleOverRpc) {
  GnsClient client(*client_transport_, server_.endpoint());
  const auto v0 = client.version();
  ASSERT_TRUE(v0.is_ok());
  MappingRule rule;
  rule.host_pattern = "a";
  rule.path_pattern = "b";
  db_.add_rule(rule);
  const auto v1 = client.version();
  ASSERT_TRUE(v1.is_ok());
  EXPECT_GT(*v1, *v0);
}

}  // namespace
}  // namespace griddles::gns
