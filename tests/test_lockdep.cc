// Runtime lock-order detector (src/common/lockdep.h) behaviour:
// inversion and self-deadlock detection, silence on clean nesting, and
// the obs export of lockorder.* counters.
//
// Every test runs under ViolationPolicy::kCount — the default kAbort
// policy is for production test runs (GRIDDLES_LOCKDEP=1 ctest), where
// a cycle must fail loudly; here violations are the expected output.

#include <gtest/gtest.h>

#include "src/common/lockdep.h"
#include "src/common/thread_annotations.h"
#include "src/obs/export.h"
#include "src/obs/metrics.h"

namespace griddles {
namespace {

class LockdepTest : public ::testing::Test {
 protected:
  void SetUp() override {
    lockdep::reset();
    lockdep::set_violation_policy(lockdep::ViolationPolicy::kCount);
    lockdep::set_enabled(true);
  }
  void TearDown() override {
    lockdep::set_enabled(false);
    lockdep::set_violation_policy(lockdep::ViolationPolicy::kAbort);
    lockdep::reset();
  }
};

TEST_F(LockdepTest, CleanNestingIsSilent) {
  Mutex outer;
  Mutex inner;
  for (int i = 0; i < 3; ++i) {
    MutexLock a(outer);
    MutexLock b(inner);
  }
  EXPECT_EQ(lockdep::violations(), 0u);
  EXPECT_EQ(lockdep::edges(), 1u);  // outer -> inner, recorded once
  EXPECT_EQ(lockdep::last_violation(), "");
}

TEST_F(LockdepTest, InversionDetectedWithoutDeadlocking) {
  Mutex a;
  Mutex b;
  {
    MutexLock la(a);
    MutexLock lb(b);
  }
  EXPECT_EQ(lockdep::violations(), 0u);
  {
    // Reverse order on the same thread: no deadlock actually occurs,
    // but the order-based detector must flag the cycle a->b->a.
    MutexLock lb(b);
    MutexLock la(a);
  }
  EXPECT_EQ(lockdep::violations(), 1u);
  EXPECT_NE(lockdep::last_violation().find("inversion"), std::string::npos)
      << lockdep::last_violation();
}

TEST_F(LockdepTest, SelfDeadlockDetected) {
  // Drive the hooks directly with a dummy address: acquiring a lock the
  // thread already holds is a guaranteed deadlock under std::mutex, so
  // it cannot be provoked with a real Mutex.
  int dummy = 0;
  lockdep::acquiring(&dummy);
  EXPECT_EQ(lockdep::violations(), 0u);
  lockdep::acquiring(&dummy);
  EXPECT_EQ(lockdep::violations(), 1u);
  EXPECT_NE(lockdep::last_violation().find("self-deadlock"),
            std::string::npos)
      << lockdep::last_violation();
  lockdep::released(&dummy);
  lockdep::released(&dummy);
  EXPECT_EQ(lockdep::held_depth(), 0u);
}

TEST_F(LockdepTest, ExplicitUnlockKeepsHeldStackBalanced) {
  Mutex mu;
  {
    MutexLock lock(mu);
    EXPECT_EQ(lockdep::held_depth(), 1u);
    lock.unlock();
    EXPECT_EQ(lockdep::held_depth(), 0u);
    lock.lock();
    EXPECT_EQ(lockdep::held_depth(), 1u);
  }
  EXPECT_EQ(lockdep::held_depth(), 0u);
  EXPECT_EQ(lockdep::violations(), 0u);
}

TEST_F(LockdepTest, DestroyedMutexDropsItsEdges) {
  Mutex outer;
  {
    Mutex inner;
    MutexLock a(outer);
    MutexLock b(inner);
  }  // inner destroyed: both endpoints of the edge forget it
  EXPECT_EQ(lockdep::edges(), 0u);
  EXPECT_EQ(lockdep::violations(), 0u);
}

TEST_F(LockdepTest, ThreeLockCycleDetected) {
  Mutex a;
  Mutex b;
  Mutex c;
  {
    MutexLock la(a);
    MutexLock lb(b);
  }
  {
    MutexLock lb(b);
    MutexLock lc(c);
  }
  EXPECT_EQ(lockdep::violations(), 0u);
  {
    MutexLock lc(c);
    MutexLock la(a);  // closes a -> b -> c -> a
  }
  EXPECT_EQ(lockdep::violations(), 1u);
}

TEST_F(LockdepTest, CountersExportThroughObsSnapshot) {
  Mutex outer;
  Mutex inner;
  {
    MutexLock a(outer);
    MutexLock b(inner);
  }
  const obs::MetricsSnapshot snap =
      obs::snapshot(obs::MetricsRegistry::global());
  ASSERT_TRUE(snap.counters.count("lockorder.edges"));
  ASSERT_TRUE(snap.counters.count("lockorder.violations"));
  EXPECT_EQ(snap.counters.at("lockorder.edges"), lockdep::edges());
  EXPECT_EQ(snap.counters.at("lockorder.violations"), 0u);

  // The bridged counters survive the JSON round trip like any metric.
  const std::string json = obs::to_json(snap);
  const auto parsed = obs::parse_snapshot(json);
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().message();
  EXPECT_EQ(parsed->counters.at("lockorder.edges"),
            snap.counters.at("lockorder.edges"));
  EXPECT_EQ(parsed->counters.at("lockorder.violations"), 0u);
}

TEST_F(LockdepTest, DisabledDetectorRecordsNothing) {
  lockdep::set_enabled(false);
  Mutex outer;
  Mutex inner;
  {
    MutexLock a(outer);
    MutexLock b(inner);
  }
  EXPECT_EQ(lockdep::edges(), 0u);
  EXPECT_EQ(lockdep::violations(), 0u);
}

}  // namespace
}  // namespace griddles
