// Tests for the FileClient abstraction and the local pass-through client.
#include <gtest/gtest.h>

#include "src/common/tempfile.h"
#include "src/vfs/local_client.h"

namespace griddles::vfs {
namespace {

class LocalClientTest : public ::testing::Test {
 protected:
  LocalClientTest() : dir_(*TempDir::create("vfs-test")) {}
  std::string path(const std::string& name) {
    return dir_.file(name).string();
  }
  TempDir dir_;
};

TEST_F(LocalClientTest, WriteThenReadBack) {
  {
    auto file = LocalFileClient::open(path("a.txt"), OpenFlags::output());
    ASSERT_TRUE(file.is_ok());
    ASSERT_TRUE(write_all(**file, as_bytes_view("hello world")).is_ok());
    ASSERT_TRUE((*file)->close().is_ok());
  }
  auto file = LocalFileClient::open(path("a.txt"), OpenFlags::input());
  ASSERT_TRUE(file.is_ok());
  auto all = read_all(**file);
  ASSERT_TRUE(all.is_ok());
  EXPECT_EQ(to_string(*all), "hello world");
}

TEST_F(LocalClientTest, MissingFileIsNotFound) {
  auto file = LocalFileClient::open(path("missing"), OpenFlags::input());
  EXPECT_FALSE(file.is_ok());
  EXPECT_EQ(file.status().code(), ErrorCode::kNotFound);
}

TEST_F(LocalClientTest, CreateMakesParentDirectories) {
  auto file = LocalFileClient::open(path("deep/nested/dir/f.bin"),
                                    OpenFlags::output());
  ASSERT_TRUE(file.is_ok());
  ASSERT_TRUE((*file)->close().is_ok());
  EXPECT_TRUE(file_size(path("deep/nested/dir/f.bin")).is_ok());
}

TEST_F(LocalClientTest, SeekAndTell) {
  auto file = LocalFileClient::open(path("s.bin"), OpenFlags::output());
  ASSERT_TRUE(file.is_ok());
  ASSERT_TRUE(write_all(**file, as_bytes_view("0123456789")).is_ok());
  EXPECT_EQ((*file)->tell(), 10u);
  ASSERT_TRUE((*file)->close().is_ok());

  auto rd = LocalFileClient::open(path("s.bin"), OpenFlags::input());
  ASSERT_TRUE(rd.is_ok());
  EXPECT_EQ((*rd)->seek(4, Whence::kSet).value(), 4u);
  Bytes buffer(3);
  EXPECT_EQ((*rd)->read({buffer.data(), 3}).value(), 3u);
  EXPECT_EQ(to_string(buffer), "456");
  EXPECT_EQ((*rd)->seek(-2, Whence::kCurrent).value(), 5u);
  EXPECT_EQ((*rd)->seek(-1, Whence::kEnd).value(), 9u);
  EXPECT_EQ((*rd)->read({buffer.data(), 3}).value(), 1u);
  EXPECT_EQ(static_cast<char>(buffer[0]), '9');
}

TEST_F(LocalClientTest, ReadOnWriteOnlyFails) {
  auto file = LocalFileClient::open(path("w.bin"), OpenFlags::output());
  ASSERT_TRUE(file.is_ok());
  Bytes buffer(4);
  auto got = (*file)->read({buffer.data(), 4});
  EXPECT_FALSE(got.is_ok());
  EXPECT_EQ(got.status().code(), ErrorCode::kPermissionDenied);
}

TEST_F(LocalClientTest, WriteOnReadOnlyFails) {
  ASSERT_TRUE(write_file(path("r.bin"), as_bytes_view("x")).is_ok());
  auto file = LocalFileClient::open(path("r.bin"), OpenFlags::input());
  ASSERT_TRUE(file.is_ok());
  EXPECT_FALSE((*file)->write(as_bytes_view("y")).is_ok());
}

TEST_F(LocalClientTest, AppendMode) {
  ASSERT_TRUE(write_file(path("log"), as_bytes_view("one\n")).is_ok());
  auto file = LocalFileClient::open(path("log"), OpenFlags::appending());
  ASSERT_TRUE(file.is_ok());
  ASSERT_TRUE(write_all(**file, as_bytes_view("two\n")).is_ok());
  ASSERT_TRUE((*file)->close().is_ok());
  auto all = read_file(path("log"));
  ASSERT_TRUE(all.is_ok());
  EXPECT_EQ(to_string(*all), "one\ntwo\n");
}

TEST_F(LocalClientTest, TruncateDiscardsOldContent) {
  ASSERT_TRUE(write_file(path("t"), as_bytes_view("longcontent")).is_ok());
  auto file = LocalFileClient::open(path("t"), OpenFlags::output());
  ASSERT_TRUE(file.is_ok());
  ASSERT_TRUE(write_all(**file, as_bytes_view("s")).is_ok());
  ASSERT_TRUE((*file)->close().is_ok());
  EXPECT_EQ(file_size(path("t")).value(), 1u);
}

TEST_F(LocalClientTest, UpdateModeReadsAndWrites) {
  ASSERT_TRUE(write_file(path("u"), as_bytes_view("abcdef")).is_ok());
  auto file = LocalFileClient::open(path("u"), OpenFlags::update());
  ASSERT_TRUE(file.is_ok());
  ASSERT_TRUE((*file)->seek(2, Whence::kSet).is_ok());
  ASSERT_TRUE(write_all(**file, as_bytes_view("XY")).is_ok());
  ASSERT_TRUE((*file)->close().is_ok());
  EXPECT_EQ(to_string(*read_file(path("u"))), "abXYef");
}

TEST_F(LocalClientTest, SizeTracksWrites) {
  auto file = LocalFileClient::open(path("z"), OpenFlags::output());
  ASSERT_TRUE(file.is_ok());
  EXPECT_EQ((*file)->size().value(), 0u);
  ASSERT_TRUE(write_all(**file, Bytes(1234)).is_ok());
  EXPECT_EQ((*file)->size().value(), 1234u);
}

TEST_F(LocalClientTest, OperationsAfterCloseFail) {
  auto file = LocalFileClient::open(path("c"), OpenFlags::output());
  ASSERT_TRUE(file.is_ok());
  ASSERT_TRUE((*file)->close().is_ok());
  ASSERT_TRUE((*file)->close().is_ok());  // idempotent
  EXPECT_FALSE((*file)->write(as_bytes_view("x")).is_ok());
  Bytes buffer(1);
  EXPECT_FALSE((*file)->read({buffer.data(), 1}).is_ok());
  EXPECT_FALSE((*file)->seek(0, Whence::kSet).is_ok());
}

TEST_F(LocalClientTest, NeitherReadNorWriteRejected) {
  EXPECT_FALSE(LocalFileClient::open(path("n"), OpenFlags{}).is_ok());
}

TEST_F(LocalClientTest, DescribeMentionsPath) {
  auto file = LocalFileClient::open(path("d"), OpenFlags::output());
  ASSERT_TRUE(file.is_ok());
  EXPECT_NE((*file)->describe().find("d"), std::string::npos);
}

TEST_F(LocalClientTest, ReadAllLargeFile) {
  Bytes big(300000);
  for (std::size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<std::byte>(i * 31);
  }
  ASSERT_TRUE(write_file(path("big"), big).is_ok());
  auto all = read_file(path("big"));
  ASSERT_TRUE(all.is_ok());
  EXPECT_EQ(*all, big);
}

}  // namespace
}  // namespace griddles::vfs
