// Concurrency stress/regression tests, sized to stay fast enough to run
// under ThreadSanitizer (tools/check.sh thread). They hammer the two
// shared-state hot spots: BoundedQueue (the transport/writer spine) and
// the Grid Buffer Channel, including seek-backwards re-reads through the
// cache file while other readers are still streaming forward (§5.3).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <thread>
#include <vector>

#include "src/common/queue.h"
#include "src/common/tempfile.h"
#include "src/gridbuffer/channel.h"

namespace griddles {
namespace {

TEST(QueueStressTest, ManyProducersManyConsumersDeliverEverything) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 2000;
  BoundedQueue<std::uint64_t> queue(/*capacity=*/8);

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(queue.push(
            static_cast<std::uint64_t>(p) * kPerProducer + i));
      }
    });
  }

  std::atomic<std::uint64_t> sum{0};
  std::atomic<std::uint64_t> popped{0};
  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      while (auto item = queue.pop()) {
        sum.fetch_add(*item);
        popped.fetch_add(1);
      }
    });
  }

  for (auto& t : producers) t.join();
  queue.close();
  for (auto& t : consumers) t.join();

  const std::uint64_t n = kProducers * kPerProducer;
  EXPECT_EQ(popped.load(), n);
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);  // each value delivered once
  EXPECT_EQ(queue.size(), 0u);
}

TEST(QueueStressTest, CloseWhileBlockedWakesEveryone) {
  BoundedQueue<int> queue(/*capacity=*/1);
  ASSERT_TRUE(queue.push(0));  // consumers start with one item, then block

  std::vector<std::thread> waiters;
  std::atomic<int> woke{0};
  for (int i = 0; i < 8; ++i) {
    waiters.emplace_back([&] {
      while (queue.pop()) {
      }
      woke.fetch_add(1);
    });
  }
  // Blocked pushers as well (capacity 1, already full after the re-push).
  std::vector<std::thread> pushers;
  for (int i = 0; i < 4; ++i) {
    pushers.emplace_back([&] {
      while (queue.push(1)) {
      }
      woke.fetch_add(1);
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  queue.close();
  for (auto& t : waiters) t.join();
  for (auto& t : pushers) t.join();
  EXPECT_EQ(woke.load(), 12);
}

class ChannelStressTest : public ::testing::Test {
 protected:
  ChannelStressTest() : dir_(*TempDir::create("gbuf-stress")) {}
  TempDir dir_;
};

TEST_F(ChannelStressTest, ConcurrentReadersWithBackwardSeeksThroughCache) {
  constexpr std::uint32_t kBlock = 512;
  constexpr std::uint64_t kBlocks = 256;
  constexpr std::uint64_t kTotal = kBlock * kBlocks;
  constexpr int kReaders = 4;

  gridbuffer::ChannelConfig config;
  config.block_size = kBlock;
  config.cache_enabled = true;
  config.expected_readers = kReaders;
  // Tiny table: forces spills to the cache file mid-stream, so forward
  // readers and re-readers exercise both the table and the cache paths.
  config.max_buffered_bytes = 8 * kBlock;
  auto channel = std::make_shared<gridbuffer::Channel>(
      "stress", config, dir_.file("stress.cache").string());

  auto expected_byte = [](std::uint64_t offset) {
    return static_cast<std::byte>((offset * 31 + 7) & 0xFF);
  };

  std::vector<std::uint64_t> reader_ids;
  for (int r = 0; r < kReaders; ++r) {
    reader_ids.push_back(channel->add_reader());
  }

  std::thread writer([&] {
    Bytes block(kBlock);
    for (std::uint64_t b = 0; b < kBlocks; ++b) {
      const std::uint64_t base = b * kBlock;
      for (std::uint32_t i = 0; i < kBlock; ++i) {
        block[i] = expected_byte(base + i);
      }
      ASSERT_TRUE(channel->write(base, block).is_ok());
    }
    channel->close_writer();
  });

  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      const std::uint64_t id = reader_ids[static_cast<std::size_t>(r)];
      std::uint64_t offset = 0;
      std::uint64_t verified = 0;
      while (true) {
        auto result = channel->read(id, offset, kBlock, /*deadline_ms=*/0);
        ASSERT_TRUE(result.is_ok()) << result.status();
        for (std::size_t i = 0; i < result->data.size(); ++i) {
          ASSERT_EQ(result->data[i], expected_byte(offset + i));
        }
        verified += result->data.size();
        offset += result->data.size();
        if (result->eof) break;
        // Periodic seek backwards: re-read an already-consumed region
        // (served from the cache file once evicted from the table). Each
        // reader jumps back at a different cadence to desynchronize them.
        if (offset >= 16 * kBlock && (offset / kBlock) % (3 + r) == 0) {
          const std::uint64_t back = offset - 16 * kBlock;
          auto reread = channel->read(id, back, kBlock, /*deadline_ms=*/0);
          ASSERT_TRUE(reread.is_ok()) << reread.status();
          ASSERT_FALSE(reread->data.empty());
          for (std::size_t i = 0; i < reread->data.size(); ++i) {
            ASSERT_EQ(reread->data[i], expected_byte(back + i));
          }
        }
      }
      EXPECT_EQ(verified, kTotal);
      channel->remove_reader(id);
    });
  }

  writer.join();
  for (auto& t : readers) t.join();
  // Every reader consumed everything: the table must have fully drained.
  EXPECT_EQ(channel->buffered_bytes(), 0u);
}

TEST_F(ChannelStressTest, RemoveReaderRacingBlockedReadErrorsCleanly) {
  gridbuffer::ChannelConfig config;
  config.block_size = 64;
  config.expected_readers = 1;
  auto channel = std::make_shared<gridbuffer::Channel>(
      "race", config, dir_.file("race.cache").string());
  const std::uint64_t id = channel->add_reader();

  // Reader blocks at the frontier; remove_reader must not be resurrected
  // by the pending read (the old operator[] lookup recreated it).
  std::thread reader([&] {
    auto result = channel->read(id, 0, 64, /*deadline_ms=*/0);
    if (result.is_ok()) {
      EXPECT_TRUE(result->eof || !result->data.empty());
    } else {
      EXPECT_EQ(result.status().code(), ErrorCode::kNotFound)
          << result.status();
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  channel->remove_reader(id);
  channel->close_writer();  // wakes the blocked read
  reader.join();

  auto after = channel->read(id, 0, 64, /*deadline_ms=*/0);
  ASSERT_FALSE(after.is_ok());
  EXPECT_EQ(after.status().code(), ErrorCode::kNotFound);
}

TEST_F(ChannelStressTest, WriterBackpressureWithSlowConsumerNoCache) {
  gridbuffer::ChannelConfig config;
  config.block_size = 128;
  config.cache_enabled = false;
  config.expected_readers = 1;
  config.max_buffered_bytes = 4 * 128;  // writer must block on a slow reader
  auto channel = std::make_shared<gridbuffer::Channel>(
      "bp", config, dir_.file("bp.cache").string());
  const std::uint64_t id = channel->add_reader();

  constexpr std::uint64_t kBlocks = 64;
  std::thread writer([&] {
    Bytes block(128, std::byte{0x42});
    for (std::uint64_t b = 0; b < kBlocks; ++b) {
      ASSERT_TRUE(channel->write(b * 128, block).is_ok());
    }
    channel->close_writer();
  });

  std::uint64_t offset = 0;
  while (true) {
    auto result = channel->read(id, offset, 128, /*deadline_ms=*/0);
    ASSERT_TRUE(result.is_ok()) << result.status();
    offset += result->data.size();
    if (result->eof) break;
    std::this_thread::yield();
  }
  EXPECT_EQ(offset, kBlocks * 128);
  writer.join();
}

}  // namespace
}  // namespace griddles
