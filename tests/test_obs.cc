// Tests for src/obs: registry counters under contention, histogram
// bucket edges, JSON export round-trip, tracer spans, and an end-to-end
// check that workflow runs feed the expected per-mode FM counters.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "src/apps/paper_apps.h"
#include "src/common/tempfile.h"
#include "src/obs/export.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/workflow/runner.h"
#include "tests/test_scaling.h"

namespace griddles {
namespace {

TEST(CounterTest, ExactUnderContention) {
  obs::MetricsRegistry registry;
  obs::Counter& counter = registry.counter("test.contended");
  constexpr int kThreads = 8;
  constexpr int kIncrements = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kIncrements; ++i) counter.add();
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter.value(),
            static_cast<std::uint64_t>(kThreads) * kIncrements);
}

TEST(CounterTest, HotPathIsLockFree) {
  // The acceptance bar for instrumenting the FM/Grid Buffer hot paths:
  // an increment must be a branch plus a relaxed atomic, never a mutex.
  // The registry lock is only taken at registration time.
  static_assert(std::atomic<std::uint64_t>::is_always_lock_free,
                "obs::Counter increments must be lock-free");
  static_assert(std::atomic<std::int64_t>::is_always_lock_free,
                "obs::Gauge updates must be lock-free");
}

TEST(GaugeTest, MovesBothWays) {
  obs::MetricsRegistry registry;
  obs::Gauge& gauge = registry.gauge("test.level");
  gauge.add(10);
  gauge.sub(3);
  EXPECT_EQ(gauge.value(), 7);
  gauge.set(-2);
  EXPECT_EQ(gauge.value(), -2);
}

TEST(HistogramTest, BucketEdgesAreInclusiveUpperBounds) {
  obs::Histogram histogram({1.0, 10.0, 100.0});
  histogram.observe(0.5);     // <= 1.0       -> bucket 0
  histogram.observe(1.0);     // == bound     -> bucket 0 (inclusive)
  histogram.observe(1.0001);  // just above   -> bucket 1
  histogram.observe(10.0);    // == bound     -> bucket 1
  histogram.observe(100.0);   // == last      -> bucket 2
  histogram.observe(100.5);   // above all    -> overflow
  EXPECT_EQ(histogram.bucket_count(0), 2u);
  EXPECT_EQ(histogram.bucket_count(1), 2u);
  EXPECT_EQ(histogram.bucket_count(2), 1u);
  EXPECT_EQ(histogram.bucket_count(3), 1u);  // overflow
  EXPECT_EQ(histogram.count(), 6u);
  EXPECT_NEAR(histogram.sum(), 0.5 + 1.0 + 1.0001 + 10.0 + 100.0 + 100.5,
              1e-9);
}

TEST(HistogramTest, SumExactUnderContention) {
  obs::Histogram histogram({1.0});
  constexpr int kThreads = 8;
  constexpr int kObservations = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram] {
      for (int i = 0; i < kObservations; ++i) histogram.observe(0.25);
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(histogram.count(),
            static_cast<std::uint64_t>(kThreads) * kObservations);
  // 0.25 is exactly representable, so the CAS-loop sum has no rounding.
  EXPECT_EQ(histogram.sum(), 0.25 * kThreads * kObservations);
}

TEST(HistogramTest, ExponentialBounds) {
  const std::vector<double> bounds = obs::exponential_bounds(0.001, 10.0, 4);
  ASSERT_EQ(bounds.size(), 4u);
  EXPECT_NEAR(bounds[0], 0.001, 1e-12);
  EXPECT_NEAR(bounds[1], 0.01, 1e-12);
  EXPECT_NEAR(bounds[2], 0.1, 1e-12);
  EXPECT_NEAR(bounds[3], 1.0, 1e-12);
}

TEST(RegistryTest, SameNameReturnsSameHandle) {
  obs::MetricsRegistry registry;
  obs::Counter& a = registry.counter("dup");
  obs::Counter& b = registry.counter("dup");
  EXPECT_EQ(&a, &b);
  // First histogram registration fixes the bounds.
  obs::Histogram& h1 = registry.histogram("h", {1.0, 2.0});
  obs::Histogram& h2 = registry.histogram("h", {99.0});
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h2.bounds().size(), 2u);
}

TEST(RegistryTest, ConcurrentRegistrationAndIncrement) {
  obs::MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kNames = 16;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      for (int i = 0; i < kNames; ++i) {
        registry.counter("race." + std::to_string(i)).add();
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (int i = 0; i < kNames; ++i) {
    EXPECT_EQ(registry.counter("race." + std::to_string(i)).value(),
              static_cast<std::uint64_t>(kThreads));
  }
}

TEST(ExportTest, JsonRoundTrip) {
  obs::MetricsRegistry registry;
  registry.counter("fm.open.local").add(42);
  registry.counter("weird \"name\"\n").add(7);
  registry.gauge("gridbuffer.bytes.buffered").set(-12);
  obs::Histogram& histogram =
      registry.histogram("fm.open.latency_s", {0.001, 0.1});
  histogram.observe(0.0005);
  histogram.observe(0.05);
  histogram.observe(5.0);

  const obs::MetricsSnapshot before = obs::snapshot(registry);
  const std::string json = obs::to_json(before);
  auto parsed = obs::parse_snapshot(json);
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();

  EXPECT_EQ(parsed->counters, before.counters);
  EXPECT_EQ(parsed->gauges, before.gauges);
  ASSERT_EQ(parsed->histograms.size(), 1u);
  const auto& h = parsed->histograms.at("fm.open.latency_s");
  EXPECT_EQ(h.bounds, std::vector<double>({0.001, 0.1}));
  EXPECT_EQ(h.counts, std::vector<std::uint64_t>({1, 1, 1}));
  EXPECT_EQ(h.count, 3u);
  EXPECT_NEAR(h.sum, 5.0505, 1e-9);
}

TEST(ExportTest, ParserRejectsMalformedInput) {
  EXPECT_FALSE(obs::parse_snapshot("").is_ok());
  EXPECT_FALSE(obs::parse_snapshot("{}").is_ok());
  EXPECT_FALSE(obs::parse_snapshot("{\"counters\":{").is_ok());
  const std::string valid = obs::to_json(obs::MetricsSnapshot{});
  EXPECT_TRUE(obs::parse_snapshot(valid).is_ok());
  EXPECT_FALSE(obs::parse_snapshot(valid + "trailing").is_ok());
}

TEST(TracerTest, DisabledTracerRecordsNothing) {
  obs::IoTracer& tracer = obs::IoTracer::global();
  tracer.enable(false);
  (void)tracer.drain();
  obs::IoSpan span;
  span.path = "/ignored";
  tracer.record(span);
  EXPECT_TRUE(tracer.drain().empty());
}

TEST(TracerTest, SpanJsonLineHasEveryField) {
  obs::IoSpan span;
  span.host = "jagan";
  span.path = "/data/OUT.DAT";
  span.mode = "buffer";
  span.open_s = 1.5;
  span.close_s = 9.25;
  span.wall_open_s = 0.25;
  span.wall_close_s = 0.75;
  span.bytes_read = 10;
  span.bytes_written = 20;
  span.reads = 1;
  span.writes = 2;
  span.seeks = 3;
  span.read_wait_s = 0.5;
  span.faults = 4;
  const std::string line = obs::to_json_line(span);
  EXPECT_EQ(line,
            "{\"host\":\"jagan\",\"path\":\"/data/OUT.DAT\","
            "\"mode\":\"buffer\",\"open_s\":1.5,\"close_s\":9.25,"
            "\"wall_open_s\":0.25,\"wall_close_s\":0.75,"
            "\"bytes_read\":10,\"bytes_written\":20,\"reads\":1,"
            "\"writes\":2,\"seeks\":3,\"read_wait_s\":0.5,\"faults\":4}");
}

// End-to-end: the same pipeline run with staged files and with Grid
// Buffers must land its opens in the matching per-mode counters, and the
// tracer must see the spans.
class WorkflowTelemetryTest : public ::testing::Test {
 protected:
  struct ModeDeltas {
    std::uint64_t local = 0;
    std::uint64_t buffer = 0;
    std::vector<obs::IoSpan> spans;
  };

  static ModeDeltas run_pipeline(workflow::CouplingMode mode) {
    auto& registry = obs::MetricsRegistry::global();
    const std::uint64_t local_before =
        registry.counter("fm.open.local").value();
    const std::uint64_t buffer_before =
        registry.counter("fm.open.buffer").value();
    obs::IoTracer& tracer = obs::IoTracer::global();
    tracer.enable(true);
    (void)tracer.drain();

    auto scratch = TempDir::create("obs-telemetry");
    EXPECT_TRUE(scratch.is_ok());
    testbed::TestbedRuntime testbed(
        test_support::kClockScale / 4000.0, scratch->path().string(),
        256.0);
    workflow::WorkflowRunner runner(testbed);
    auto spec = workflow::WorkflowSpec::from_pipeline(
        "obs-telemetry", apps::climate_pipeline(256.0), {"jagan"});
    EXPECT_TRUE(spec.is_ok());
    workflow::WorkflowRunner::Options options;
    options.mode = mode;
    auto report = runner.run(*spec, options);
    EXPECT_TRUE(report.is_ok()) << report.status().to_string();

    ModeDeltas deltas;
    deltas.local = registry.counter("fm.open.local").value() - local_before;
    deltas.buffer =
        registry.counter("fm.open.buffer").value() - buffer_before;
    deltas.spans = tracer.drain();
    tracer.enable(false);
    return deltas;
  }

  static std::uint64_t spans_in_mode(const std::vector<obs::IoSpan>& spans,
                                     const std::string& mode) {
    std::uint64_t n = 0;
    for (const obs::IoSpan& span : spans) n += span.mode == mode ? 1 : 0;
    return n;
  }
};

TEST_F(WorkflowTelemetryTest, StagedRunUsesLocalFiles) {
  const ModeDeltas deltas =
      run_pipeline(workflow::CouplingMode::kSequentialFiles);
  // Single-machine sequential run: every open is plain local IO.
  EXPECT_GT(deltas.local, 0u);
  EXPECT_EQ(deltas.buffer, 0u);
  ASSERT_FALSE(deltas.spans.empty());
  EXPECT_GT(spans_in_mode(deltas.spans, "local"), 0u);
  EXPECT_EQ(spans_in_mode(deltas.spans, "buffer"), 0u);
  for (const obs::IoSpan& span : deltas.spans) {
    EXPECT_EQ(span.host, "jagan");
    EXPECT_GE(span.close_s, span.open_s);
    EXPECT_GT(span.bytes_read + span.bytes_written, 0u) << span.path;
  }
}

TEST_F(WorkflowTelemetryTest, BufferRunOpensGridBufferStreams) {
  const ModeDeltas deltas = run_pipeline(workflow::CouplingMode::kGridBuffers);
  // Inter-stage files become buffer channels; stage outputs to nowhere
  // (and rereads) may stay local, so only the buffer count is exact.
  EXPECT_GT(deltas.buffer, 0u);
  ASSERT_FALSE(deltas.spans.empty());
  const std::uint64_t buffer_spans = spans_in_mode(deltas.spans, "buffer");
  EXPECT_EQ(buffer_spans, deltas.buffer);
  bool saw_buffer_writer = false;
  for (const obs::IoSpan& span : deltas.spans) {
    if (span.mode == "buffer" && span.bytes_written > 0) {
      saw_buffer_writer = true;
    }
  }
  EXPECT_TRUE(saw_buffer_writer);
}

}  // namespace
}  // namespace griddles
