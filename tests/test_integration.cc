// End-to-end integration tests: the full GriddLeS stack (GNS + Grid
// Buffer servers + file servers + FM + workflow runner) on the modelled
// testbed, over both in-process and real TCP transports, plus
// fault-injection around server loss and stuck streams.
#include <gtest/gtest.h>

#include <thread>

#include "src/apps/paper_apps.h"
#include "src/common/tempfile.h"
#include "src/core/multiplexer.h"
#include "src/core/staged_client.h"
#include "src/gns/service.h"
#include "src/gridbuffer/server.h"
#include "src/net/tcp.h"
#include "src/remote/file_server.h"
#include "src/vfs/local_client.h"
#include "src/workflow/runner.h"

namespace griddles {
namespace {

// ---- Full stack over real TCP sockets ---------------------------------

TEST(TcpIntegrationTest, FmRoutesOverRealSockets) {
  auto dir = TempDir::create("tcp-integration");
  net::TcpTransport transport;

  gns::Database db;
  gns::GnsServer gns_server(db, transport,
                            net::tcp_endpoint("127.0.0.1", 0));
  ASSERT_TRUE(gns_server.start().is_ok());
  gridbuffer::GridBufferServer buffer_server(
      dir->file("gbuf").string(), transport,
      net::tcp_endpoint("127.0.0.1", 0));
  ASSERT_TRUE(buffer_server.start().is_ok());
  remote::FileServer file_server(dir->file("export"), transport,
                                 net::tcp_endpoint("127.0.0.1", 0));
  ASSERT_TRUE(file_server.start().is_ok());

  // Map stream.dat to a buffer channel and remote.dat to the server.
  {
    gns::MappingRule rule;
    rule.host_pattern = "*";
    rule.path_pattern = "*stream.dat";
    rule.mapping.mode = gns::IoMode::kGridBuffer;
    rule.mapping.channel = "tcp/stream";
    rule.mapping.buffer_endpoint = buffer_server.endpoint().to_string();
    db.add_rule(rule);
    rule.path_pattern = "*remote.dat";
    rule.mapping.mode = gns::IoMode::kRemoteCopy;
    rule.mapping.channel.clear();
    rule.mapping.buffer_endpoint.clear();
    rule.mapping.remote_endpoint = file_server.endpoint().to_string();
    rule.mapping.remote_path = "remote.dat";
    db.add_rule(rule);
  }

  gns::GnsClient gns_client(transport, gns_server.endpoint());
  core::FileMultiplexer::Options options;
  options.host = "localhost";
  options.local_root = dir->file("work").string();
  options.scratch_dir = dir->file("stage").string();
  options.gns = &gns_client;
  options.transport = &transport;
  core::FileMultiplexer fm(options);

  Bytes payload(300000);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::byte>(i * 7);
  }

  // Stream through the buffer, writer and reader overlapping over TCP.
  std::thread writer([&] {
    auto fd = fm.open("stream.dat", vfs::OpenFlags::output());
    ASSERT_TRUE(fd.is_ok());
    ASSERT_TRUE(fm.write(*fd, payload).is_ok());
    ASSERT_TRUE(fm.close(*fd).is_ok());
  });
  {
    auto fd = fm.open("stream.dat", vfs::OpenFlags::input());
    ASSERT_TRUE(fd.is_ok());
    Bytes got(payload.size());
    std::size_t total = 0;
    while (total < got.size()) {
      auto n = fm.read(*fd, {got.data() + total, got.size() - total});
      ASSERT_TRUE(n.is_ok());
      if (*n == 0) break;
      total += *n;
    }
    EXPECT_EQ(total, payload.size());
    EXPECT_EQ(got, payload);
    ASSERT_TRUE(fm.close(*fd).is_ok());
  }
  writer.join();

  // Staged copy out and back in over TCP.
  {
    auto fd = fm.open("remote.dat", vfs::OpenFlags::output());
    ASSERT_TRUE(fd.is_ok());
    ASSERT_TRUE(fm.write(*fd, payload).is_ok());
    ASSERT_TRUE(fm.close(*fd).is_ok());
    auto server_copy =
        vfs::read_file((file_server.root() / "remote.dat").string());
    ASSERT_TRUE(server_copy.is_ok());
    EXPECT_EQ(*server_copy, payload);
  }

  buffer_server.stop();
  file_server.stop();
  gns_server.stop();
}

// ---- Paper pipelines, small scale, all modes ---------------------------

class PipelineIntegrationTest : public ::testing::Test {
 protected:
  PipelineIntegrationTest() : dir_(*TempDir::create("pipe-integration")) {}

  /// Climate pipeline shrunk 2000x, on a fast clock.
  Result<workflow::WorkflowReport> run_climate(
      const std::vector<std::string>& machines,
      workflow::CouplingMode mode) {
    testbed::TestbedRuntime testbed(0.002, dir_.path().string(), 2000.0);
    workflow::WorkflowRunner runner(testbed);
    auto pipeline = apps::climate_pipeline(2000.0);
    for (auto& kernel : pipeline) {
      kernel.work_units /= 100;  // seconds, not tens of minutes
      kernel.timesteps = 24;
      kernel.verify_inputs = true;
    }
    GL_ASSIGN_OR_RETURN(
        const workflow::WorkflowSpec spec,
        workflow::WorkflowSpec::from_pipeline("climate", pipeline,
                                              machines));
    workflow::WorkflowRunner::Options options;
    options.mode = mode;
    options.buffer_block = 1024;
    return runner.run(spec, options);
  }

  TempDir dir_;
};

TEST_F(PipelineIntegrationTest, ClimateSequentialOneMachine) {
  auto report = run_climate({"brecca"},
                            workflow::CouplingMode::kSequentialFiles);
  ASSERT_TRUE(report.is_ok()) << report.status();
  EXPECT_EQ(report->tasks.size(), 3u);
}

TEST_F(PipelineIntegrationTest, ClimateBuffersDistributed) {
  auto report = run_climate({"brecca", "brecca", "vpac27"},
                            workflow::CouplingMode::kGridBuffers);
  ASSERT_TRUE(report.is_ok()) << report.status();
  const auto* ccam = report->task("ccam");
  const auto* darlam = report->task("darlam");
  ASSERT_NE(ccam, nullptr);
  ASSERT_NE(darlam, nullptr);
  EXPECT_LT(darlam->started_s, ccam->finished_s);  // genuine pipelining
}

TEST_F(PipelineIntegrationTest, ClimateFilesWithCopyDistributed) {
  auto report = run_climate({"brecca", "brecca", "vpac27"},
                            workflow::CouplingMode::kSequentialFiles);
  ASSERT_TRUE(report.is_ok()) << report.status();
  ASSERT_EQ(report->copies.size(), 1u);  // LAM_IN.DAT to vpac27
  EXPECT_EQ(report->copies[0].to, "vpac27");
}

TEST_F(PipelineIntegrationTest, DurabilityBuffersDistributed) {
  testbed::TestbedRuntime testbed(0.002, dir_.path().string(), 2000.0);
  workflow::WorkflowRunner runner(testbed);
  auto pipeline = apps::durability_pipeline(2000.0);
  for (auto& kernel : pipeline) {
    kernel.work_units /= 100;
    kernel.timesteps = 16;
    kernel.verify_inputs = true;
  }
  auto spec = workflow::WorkflowSpec::from_pipeline(
      "durability", pipeline,
      {"koume00", "jagan", "dione", "vpac27", "freak"});
  ASSERT_TRUE(spec.is_ok());
  workflow::WorkflowRunner::Options options;
  options.mode = workflow::CouplingMode::kGridBuffers;
  options.buffer_block = 1024;
  auto report = runner.run(*spec, options);
  ASSERT_TRUE(report.is_ok()) << report.status();
  EXPECT_EQ(report->tasks.size(), 5u);
}

// ---- Fault injection ----------------------------------------------------

TEST(FaultTest, ReaderSurvivesWriterCrashViaTimeout) {
  // A writer that dies without closing the channel must not hang the
  // reader forever: the read deadline fires.
  auto dir = TempDir::create("fault-hang");
  RealClock clock;
  net::InProcNetwork network(clock);
  auto server_transport = network.transport("dione");
  gridbuffer::GridBufferServer server(dir->file("cache").string(),
                                      *server_transport,
                                      net::inproc_endpoint("dione", "g"));
  ASSERT_TRUE(server.start().is_ok());
  auto transport = network.transport("jagan");

  {
    gridbuffer::GridBufferWriter::Options writer_options;
    auto writer = gridbuffer::GridBufferWriter::open(
        *transport, server.endpoint(), "fault/hang", writer_options);
    ASSERT_TRUE(writer.is_ok());
    ASSERT_TRUE((*writer)->write(Bytes(1000, std::byte{1})).is_ok());
    ASSERT_TRUE((*writer)->flush().is_ok());
    // Simulate a crash: drop the writer WITHOUT close_writer reaching
    // the channel... (close() in the destructor would publish EOF, so
    // instead we just never close and keep the channel open.)
    // Reader with a short deadline:
    gridbuffer::GridBufferReader::Options reader_options;
    reader_options.read_deadline_ms = 100;
    auto reader = gridbuffer::GridBufferReader::open(
        *transport, server.endpoint(), "fault/hang", reader_options);
    ASSERT_TRUE(reader.is_ok());
    Bytes buffer(2000);
    auto first = (*reader)->read({buffer.data(), 1000});
    ASSERT_TRUE(first.is_ok());
    EXPECT_EQ(*first, 1000u);
    auto stuck = (*reader)->read({buffer.data(), 1000});
    EXPECT_FALSE(stuck.is_ok());
    EXPECT_EQ(stuck.status().code(), ErrorCode::kTimeout);
    ASSERT_TRUE((*reader)->close().is_ok());
    ASSERT_TRUE((*writer)->close().is_ok());
  }
  server.stop();
}

TEST(FaultTest, BufferServerShutdownUnblocksClients) {
  auto dir = TempDir::create("fault-shutdown");
  RealClock clock;
  net::InProcNetwork network(clock);
  auto server_transport = network.transport("dione");
  auto server = std::make_unique<gridbuffer::GridBufferServer>(
      dir->file("cache").string(), *server_transport,
      net::inproc_endpoint("dione", "g"));
  ASSERT_TRUE(server->start().is_ok());
  auto transport = network.transport("jagan");

  gridbuffer::GridBufferReader::Options reader_options;
  reader_options.read_deadline_ms = 0;  // wait forever
  auto reader = gridbuffer::GridBufferReader::open(
      *transport, server->endpoint(), "fault/srv", reader_options);
  ASSERT_TRUE(reader.is_ok());

  std::thread blocked([&] {
    Bytes buffer(100);
    auto got = (*reader)->read({buffer.data(), buffer.size()});
    EXPECT_FALSE(got.is_ok());  // aborted or closed, never data
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  server->stop();
  blocked.join();
}

TEST(FaultTest, StagedCloseFailsWhenServerGone) {
  auto dir = TempDir::create("fault-staged");
  RealClock clock;
  net::InProcNetwork network(clock);
  auto server_transport = network.transport("freak");
  auto file_server = std::make_unique<remote::FileServer>(
      dir->file("export"), *server_transport,
      net::inproc_endpoint("freak", "fs"));
  ASSERT_TRUE(file_server->start().is_ok());
  auto transport = network.transport("jagan");

  auto staged = core::StagedFileClient::open(
      *transport, clock, file_server->endpoint(), "out.bin",
      dir->file("stage.bin").string(), vfs::OpenFlags::output(),
      remote::FileCopier::Options{});
  ASSERT_TRUE(staged.is_ok());
  ASSERT_TRUE((*staged)->write(as_bytes_view("data")).is_ok());
  file_server->stop();
  file_server.reset();
  // The copy-back on close must fail loudly, not silently drop data.
  EXPECT_FALSE((*staged)->close().is_ok());
}

TEST(FaultTest, GnsDownMakesOpensFailCleanly) {
  auto dir = TempDir::create("fault-gns");
  RealClock clock;
  net::InProcNetwork network(clock);
  auto transport = network.transport("jagan");
  gns::GnsClient gns_client(*transport,
                            net::inproc_endpoint("jagan", "nope"));
  core::FileMultiplexer::Options options;
  options.host = "jagan";
  options.local_root = dir->path().string();
  options.gns = &gns_client;
  options.transport = transport.get();
  core::FileMultiplexer fm(options);
  auto fd = fm.open("x.dat", vfs::OpenFlags::output());
  EXPECT_FALSE(fd.is_ok());
  EXPECT_EQ(fd.status().code(), ErrorCode::kUnavailable);
}

}  // namespace
}  // namespace griddles
