// Concurrency stress tests: many channels, many clients, broadcast
// fan-out, and racing teardown — the failure modes a long-running Grid
// Buffer deployment actually sees.
#include <gtest/gtest.h>

#include <random>
#include <thread>

#include "src/common/tempfile.h"
#include "src/gns/service.h"
#include "src/gridbuffer/client.h"
#include "src/gridbuffer/server.h"
#include "src/net/inproc.h"
#include "src/remote/file_server.h"
#include "src/remote/remote_client.h"
#include "src/vfs/local_client.h"

namespace griddles {
namespace {

TEST(StressTest, ManyParallelChannels) {
  auto dir = TempDir::create("stress-channels");
  RealClock clock;
  net::InProcNetwork network(clock);
  auto server_transport = network.transport("dione");
  gridbuffer::GridBufferServer server(dir->file("cache").string(),
                                      *server_transport,
                                      net::inproc_endpoint("dione", "g"));
  ASSERT_TRUE(server.start().is_ok());

  constexpr int kChannels = 12;
  constexpr std::size_t kBytesPerChannel = 60000;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int c = 0; c < kChannels; ++c) {
    threads.emplace_back([&, c] {
      auto transport = network.transport("jagan");
      const std::string channel = "stress/" + std::to_string(c);
      gridbuffer::GridBufferWriter::Options options;
      options.channel.block_size = 512;
      options.flusher_threads = 2;
      auto writer = gridbuffer::GridBufferWriter::open(
          *transport, server.endpoint(), channel, options);
      if (!writer.is_ok()) {
        ++failures;
        return;
      }
      Bytes chunk(1000);
      for (std::size_t i = 0; i < chunk.size(); ++i) {
        chunk[i] = static_cast<std::byte>(i + c);
      }
      for (std::size_t sent = 0; sent < kBytesPerChannel;
           sent += chunk.size()) {
        if (!(*writer)->write(chunk).is_ok()) {
          ++failures;
          return;
        }
      }
      if (!(*writer)->close().is_ok()) ++failures;
    });
    threads.emplace_back([&, c] {
      auto transport = network.transport("vpac27");
      const std::string channel = "stress/" + std::to_string(c);
      gridbuffer::GridBufferReader::Options options;
      options.channel.block_size = 512;
      auto reader = gridbuffer::GridBufferReader::open(
          *transport, server.endpoint(), channel, options);
      if (!reader.is_ok()) {
        ++failures;
        return;
      }
      Bytes buffer(1777);
      std::size_t total = 0;
      while (true) {
        auto n = (*reader)->read({buffer.data(), buffer.size()});
        if (!n.is_ok()) {
          ++failures;
          return;
        }
        if (*n == 0) break;
        // Verify content: byte at stream offset o is (o%1000 + c).
        for (std::size_t i = 0; i < *n; ++i) {
          const auto expected = static_cast<std::byte>(
              (total + i) % 1000 + static_cast<std::size_t>(c));
          if (buffer[i] != expected) {
            ++failures;
            return;
          }
        }
        total += *n;
      }
      if (total != kBytesPerChannel) ++failures;
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures, 0);
  server.stop();
}

TEST(StressTest, BroadcastToManyReaders) {
  auto dir = TempDir::create("stress-bcast");
  RealClock clock;
  net::InProcNetwork network(clock);
  auto server_transport = network.transport("dione");
  gridbuffer::GridBufferServer server(dir->file("cache").string(),
                                      *server_transport,
                                      net::inproc_endpoint("dione", "g"));
  ASSERT_TRUE(server.start().is_ok());

  constexpr int kReaders = 6;
  constexpr std::size_t kTotal = 200000;
  gridbuffer::ChannelConfig config;
  config.block_size = 2048;
  config.expected_readers = kReaders;
  config.cache_enabled = false;  // broadcast must hold blocks in the table
  config.max_buffered_bytes = 1u << 20;

  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      auto transport = network.transport("vpac27");
      gridbuffer::GridBufferReader::Options options;
      options.channel = config;
      auto reader = gridbuffer::GridBufferReader::open(
          *transport, server.endpoint(), "bcast", options);
      if (!reader.is_ok()) {
        ++failures;
        return;
      }
      Bytes buffer(4096);
      std::size_t total = 0;
      while (true) {
        auto n = (*reader)->read({buffer.data(), buffer.size()});
        if (!n.is_ok()) {
          ++failures;
          return;
        }
        if (*n == 0) break;
        total += *n;
      }
      if (total != kTotal) ++failures;
    });
  }

  auto writer_transport = network.transport("jagan");
  gridbuffer::GridBufferWriter::Options writer_options;
  writer_options.channel = config;
  auto writer = gridbuffer::GridBufferWriter::open(
      *writer_transport, server.endpoint(), "bcast", writer_options);
  ASSERT_TRUE(writer.is_ok());
  Bytes chunk(5000, std::byte{0x2a});
  for (std::size_t sent = 0; sent < kTotal; sent += chunk.size()) {
    ASSERT_TRUE((*writer)->write(chunk).is_ok());
  }
  ASSERT_TRUE((*writer)->close().is_ok());
  for (auto& reader : readers) reader.join();
  EXPECT_EQ(failures, 0);
  server.stop();
}

TEST(StressTest, GnsUnderConcurrentLookupsAndEdits) {
  RealClock clock;
  net::InProcNetwork network(clock);
  auto server_transport = network.transport("dione");
  gns::Database db;
  gns::GnsServer server(db, *server_transport,
                        net::inproc_endpoint("dione", "gns"));
  ASSERT_TRUE(server.start().is_ok());

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::thread editor([&] {
    auto transport = network.transport("brecca");
    gns::GnsClient client(*transport, server.endpoint());
    for (int i = 0; i < 100; ++i) {
      gns::MappingRule rule;
      rule.host_pattern = "h" + std::to_string(i % 10);
      rule.path_pattern = "*";
      rule.mapping.mode = gns::IoMode::kGridBuffer;
      if (!client.add_rule(rule).is_ok()) ++failures;
    }
    stop = true;
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&, r] {
      auto transport = network.transport("jagan");
      gns::GnsClient client(*transport, server.endpoint());
      while (!stop) {
        auto mapping =
            client.lookup("h" + std::to_string(r), "/some/file");
        if (!mapping.is_ok()) ++failures;
      }
    });
  }
  editor.join();
  for (auto& reader : readers) reader.join();
  EXPECT_EQ(failures, 0);
  EXPECT_EQ(db.rules().size(), 100u);
  server.stop();
}

TEST(StressTest, ManyHandlesOnOneFileServer) {
  auto dir = TempDir::create("stress-fs");
  RealClock clock;
  net::InProcNetwork network(clock);
  auto server_transport = network.transport("freak");
  remote::FileServer server(dir->file("export"), *server_transport,
                            net::inproc_endpoint("freak", "fs"));
  ASSERT_TRUE(server.start().is_ok());
  Bytes data(50000);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::byte>(i);
  }
  ASSERT_TRUE(
      vfs::write_file((server.root() / "shared.bin").string(), data)
          .is_ok());

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      auto transport = network.transport("jagan");
      for (int round = 0; round < 5; ++round) {
        auto file = remote::RemoteFileClient::open(
            *transport, server.endpoint(), "shared.bin",
            vfs::OpenFlags::input());
        if (!file.is_ok()) {
          ++failures;
          return;
        }
        auto all = vfs::read_all(**file);
        if (!all.is_ok() || *all != data) ++failures;
        if (!(*file)->close().is_ok()) ++failures;
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures, 0);
  EXPECT_EQ(server.open_handles(), 0u);
  server.stop();
}

}  // namespace
}  // namespace griddles
