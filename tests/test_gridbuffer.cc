// Tests for the Grid Buffer: channel store semantics (hash-table blocks,
// blocking reads, delete-on-consume, cache-file re-reads, broadcast,
// backpressure), the RPC server, and the writer/reader clients.
#include <gtest/gtest.h>

#include <random>
#include <thread>

#include "src/common/tempfile.h"
#include "src/gridbuffer/client.h"
#include "src/gridbuffer/file_client.h"
#include "src/gridbuffer/server.h"
#include "src/net/inproc.h"

namespace griddles::gridbuffer {
namespace {

Bytes pattern(std::size_t n, unsigned seed = 1) {
  Bytes out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<std::byte>((i * 37 + seed) & 0xFF);
  }
  return out;
}

class ChannelTest : public ::testing::Test {
 protected:
  ChannelTest() : dir_(*TempDir::create("gbuf-test")) {}

  std::shared_ptr<Channel> make_channel(ChannelConfig config,
                                        const std::string& name = "ch") {
    return std::make_shared<Channel>(
        name, config, dir_.file(name + ".cache").string());
  }

  TempDir dir_;
};

TEST_F(ChannelTest, SequentialWriteReadEof) {
  ChannelConfig config;
  config.block_size = 16;
  auto channel = make_channel(config);
  const auto reader = channel->add_reader();
  const Bytes data = pattern(40);
  ASSERT_TRUE(channel->write(0, {data.data(), 16}).is_ok());
  ASSERT_TRUE(channel->write(16, {data.data() + 16, 16}).is_ok());
  ASSERT_TRUE(channel->write(32, {data.data() + 32, 8}).is_ok());
  channel->close_writer();

  Bytes got;
  std::uint64_t offset = 0;
  while (true) {
    auto result = channel->read(reader, offset, 7, 1000);
    ASSERT_TRUE(result.is_ok());
    if (result->eof) break;
    got.insert(got.end(), result->data.begin(), result->data.end());
    offset += result->data.size();
  }
  EXPECT_EQ(got, data);
}

TEST_F(ChannelTest, ReadBlocksUntilWritten) {
  ChannelConfig config;
  config.block_size = 8;
  auto channel = make_channel(config);
  const auto reader = channel->add_reader();
  std::atomic<bool> served{false};
  std::thread consumer([&] {
    auto result = channel->read(reader, 0, 8, 5000);
    ASSERT_TRUE(result.is_ok());
    EXPECT_EQ(result->data.size(), 8u);
    served = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(served);  // paper: "the read operation can be blocked
                         // until the data is written"
  ASSERT_TRUE(channel->write(0, pattern(8)).is_ok());
  consumer.join();
  EXPECT_TRUE(served);
}

TEST_F(ChannelTest, ReadTimesOut) {
  auto channel = make_channel(ChannelConfig{});
  const auto reader = channel->add_reader();
  auto result = channel->read(reader, 0, 1, 40);
  EXPECT_FALSE(result.is_ok());
  EXPECT_EQ(result.status().code(), ErrorCode::kTimeout);
}

TEST_F(ChannelTest, ConsumedBlocksAreDeletedFromTable) {
  ChannelConfig config;
  config.block_size = 8;
  config.cache_enabled = false;
  auto channel = make_channel(config);
  const auto reader = channel->add_reader();
  ASSERT_TRUE(channel->write(0, pattern(8)).is_ok());
  ASSERT_TRUE(channel->write(8, pattern(8)).is_ok());
  EXPECT_EQ(channel->buffered_blocks(), 2u);
  // One multi-block read consumes both blocks...
  auto result = channel->read(reader, 0, 16, 1000);
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result->data.size(), 16u);
  // ...and the only reader has consumed them: table drained.
  EXPECT_EQ(channel->buffered_blocks(), 0u);
}

TEST_F(ChannelTest, RereadWithoutCacheFails) {
  ChannelConfig config;
  config.block_size = 8;
  config.cache_enabled = false;
  auto channel = make_channel(config);
  const auto reader = channel->add_reader();
  ASSERT_TRUE(channel->write(0, pattern(8)).is_ok());
  ASSERT_TRUE(channel->read(reader, 0, 8, 1000).is_ok());
  auto again = channel->read(reader, 0, 8, 1000);
  EXPECT_FALSE(again.is_ok());
  EXPECT_EQ(again.status().code(), ErrorCode::kOutOfRange);
}

TEST_F(ChannelTest, RereadServedFromCacheFile) {
  // §5.3: "Because the data has already been deleted from the hash table
  // in the Grid Buffer Service, it is read from the cache file instead."
  ChannelConfig config;
  config.block_size = 8;
  config.cache_enabled = true;
  auto channel = make_channel(config);
  const auto reader = channel->add_reader();
  const Bytes data = pattern(24);
  for (std::uint64_t off = 0; off < 24; off += 8) {
    ASSERT_TRUE(channel->write(off, {data.data() + off, 8}).is_ok());
  }
  // Consume everything (evicts from the hash table)...
  for (std::uint64_t off = 0; off < 24; off += 8) {
    ASSERT_TRUE(channel->read(reader, off, 8, 1000).is_ok());
  }
  EXPECT_EQ(channel->buffered_blocks(), 0u);
  // ...then seek back and re-read: cache serves it (reads may be short
  // at block boundaries, so accumulate).
  Bytes reread;
  std::uint64_t offset = 4;
  while (reread.size() < 12) {
    auto result = channel->read(reader, offset,
                                static_cast<std::uint32_t>(12 -
                                                           reread.size()),
                                1000);
    ASSERT_TRUE(result.is_ok());
    ASSERT_FALSE(result->data.empty());
    reread.insert(reread.end(), result->data.begin(), result->data.end());
    offset += result->data.size();
  }
  EXPECT_EQ(reread, Bytes(data.begin() + 4, data.begin() + 16));
}

TEST_F(ChannelTest, CacheRereadAndSeekAfterWriterClose) {
  // A late (or re-run) reader arrives after the writer closed and every
  // block was consumed: the whole stream must still be readable — and
  // seekable — out of the cache file.
  ChannelConfig config;
  config.block_size = 8;
  config.cache_enabled = true;
  auto channel = make_channel(config);
  const auto first = channel->add_reader();
  const Bytes data = pattern(40);
  for (std::uint64_t off = 0; off < 40; off += 8) {
    ASSERT_TRUE(channel->write(off, {data.data() + off, 8}).is_ok());
  }
  channel->close_writer();
  for (std::uint64_t off = 0; off < 40; off += 8) {
    ASSERT_TRUE(channel->read(first, off, 8, 1000).is_ok());
  }
  channel->remove_reader(first);
  EXPECT_EQ(channel->buffered_blocks(), 0u);

  const auto second = channel->add_reader();
  // Sequential drain from the cache, then EOF at the frontier.
  Bytes drained;
  std::uint64_t offset = 0;
  while (true) {
    auto result = channel->read(second, offset, 16, 1000);
    ASSERT_TRUE(result.is_ok()) << result.status();
    if (result->eof) break;
    ASSERT_FALSE(result->data.empty());
    drained.insert(drained.end(), result->data.begin(),
                   result->data.end());
    offset += result->data.size();
  }
  EXPECT_EQ(drained, data);
  // Seek back mid-stream and re-read a span.
  auto mid = channel->read(second, 12, 8, 1000);
  ASSERT_TRUE(mid.is_ok());
  ASSERT_FALSE(mid->data.empty());
  EXPECT_EQ(mid->data[0], data[12]);
}

TEST_F(ChannelTest, WriterDeathDrainsThenSurfacesDataLoss) {
  // Peer-death tolerance: covered data stays readable (drain), reads
  // past the dead writer's frontier fail typed, and a late clean close
  // must not turn the truncation into EOF.
  ChannelConfig config;
  config.block_size = 8;
  config.cache_enabled = true;
  auto channel = make_channel(config);
  const auto reader = channel->add_reader();
  const Bytes data = pattern(16);
  ASSERT_TRUE(channel->write(0, {data.data(), 8}).is_ok());
  ASSERT_TRUE(channel->write(8, {data.data() + 8, 8}).is_ok());
  channel->fail_writer("test-induced death");
  EXPECT_TRUE(channel->writer_failed());

  // Further writes are refused with kDataLoss.
  auto late = channel->write(16, {data.data(), 8});
  EXPECT_FALSE(late.is_ok());
  EXPECT_EQ(late.code(), ErrorCode::kDataLoss);

  // The covered prefix drains normally...
  auto head = channel->read(reader, 0, 16, 1000);
  ASSERT_TRUE(head.is_ok()) << head.status();
  EXPECT_EQ(head->data, data);

  // ...the uncovered tail is a typed loss, not a hang and not EOF —
  // even after the dying writer's teardown sends a clean close.
  channel->close_writer();
  auto tail = channel->read(reader, 16, 8, 1000);
  EXPECT_FALSE(tail.is_ok());
  EXPECT_EQ(tail.status().code(), ErrorCode::kDataLoss);

  auto stat = channel->stat(/*wait_for_eof=*/true, 1000);
  EXPECT_FALSE(stat.is_ok());
  EXPECT_EQ(stat.status().code(), ErrorCode::kDataLoss);
}

TEST_F(ChannelTest, OutOfOrderWritesAssemble) {
  // The hash table exists precisely so blocks may arrive out of order
  // (multiple flusher streams).
  ChannelConfig config;
  config.block_size = 8;
  auto channel = make_channel(config);
  const auto reader = channel->add_reader();
  const Bytes data = pattern(32);
  ASSERT_TRUE(channel->write(24, {data.data() + 24, 8}).is_ok());
  ASSERT_TRUE(channel->write(8, {data.data() + 8, 8}).is_ok());
  ASSERT_TRUE(channel->write(0, {data.data() + 0, 8}).is_ok());
  ASSERT_TRUE(channel->write(16, {data.data() + 16, 8}).is_ok());
  channel->close_writer();
  Bytes got;
  std::uint64_t offset = 0;
  while (got.size() < 32) {
    auto result = channel->read(reader, offset, 32, 1000);
    ASSERT_TRUE(result.is_ok());
    got.insert(got.end(), result->data.begin(), result->data.end());
    offset += result->data.size();
  }
  EXPECT_EQ(got, data);
}

TEST_F(ChannelTest, BroadcastBothReadersSeeAll) {
  // Paper §4: "one application may write to the buffer, but many may
  // read the buffer".
  ChannelConfig config;
  config.block_size = 8;
  config.expected_readers = 2;
  config.cache_enabled = false;
  auto channel = make_channel(config);
  const auto r1 = channel->add_reader();
  const auto r2 = channel->add_reader();
  const Bytes data = pattern(16);
  ASSERT_TRUE(channel->write(0, {data.data(), 8}).is_ok());
  ASSERT_TRUE(channel->write(8, {data.data() + 8, 8}).is_ok());

  // r1 consumes everything; blocks must survive for r2.
  ASSERT_TRUE(channel->read(r1, 0, 8, 1000).is_ok());
  ASSERT_TRUE(channel->read(r1, 8, 8, 1000).is_ok());
  EXPECT_EQ(channel->buffered_blocks(), 2u);
  auto b0 = channel->read(r2, 0, 8, 1000);
  ASSERT_TRUE(b0.is_ok());
  EXPECT_EQ(b0->data, Bytes(data.begin(), data.begin() + 8));
  ASSERT_TRUE(channel->read(r2, 8, 8, 1000).is_ok());
  // Now both readers consumed both blocks.
  EXPECT_EQ(channel->buffered_blocks(), 0u);
}

TEST_F(ChannelTest, EarlyWriterWaitsForExpectedReaders) {
  // With expected_readers=1 and no reader registered yet, nothing may be
  // evicted (a late reader must still see the data).
  ChannelConfig config;
  config.block_size = 8;
  config.cache_enabled = false;
  auto channel = make_channel(config);
  ASSERT_TRUE(channel->write(0, pattern(8)).is_ok());
  EXPECT_EQ(channel->buffered_blocks(), 1u);
  const auto reader = channel->add_reader();
  auto result = channel->read(reader, 0, 8, 1000);
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result->data.size(), 8u);
}

TEST_F(ChannelTest, BackpressureSpillsToCache) {
  ChannelConfig config;
  config.block_size = 1024;
  config.cache_enabled = true;
  config.max_buffered_bytes = 4096;  // 4 blocks
  auto channel = make_channel(config);
  const auto reader = channel->add_reader();
  // Write 16 blocks with no reads: table stays bounded, data spills.
  const Bytes data = pattern(16 * 1024);
  for (std::uint64_t off = 0; off < data.size(); off += 1024) {
    ASSERT_TRUE(channel->write(off, {data.data() + off, 1024}).is_ok());
  }
  EXPECT_LE(channel->buffered_bytes(), 4096u);
  channel->close_writer();
  // Everything is still readable (cache serves the spilled prefix).
  Bytes got;
  std::uint64_t offset = 0;
  while (got.size() < data.size()) {
    auto result = channel->read(reader, offset, 4096, 1000);
    ASSERT_TRUE(result.is_ok());
    ASSERT_FALSE(result->eof);
    got.insert(got.end(), result->data.begin(), result->data.end());
    offset += result->data.size();
  }
  EXPECT_EQ(got, data);
}

TEST_F(ChannelTest, BackpressureBlocksWriterWithoutCache) {
  ChannelConfig config;
  config.block_size = 1024;
  config.cache_enabled = false;
  config.max_buffered_bytes = 2048;
  auto channel = make_channel(config);
  const auto reader = channel->add_reader();
  ASSERT_TRUE(channel->write(0, pattern(1024)).is_ok());
  ASSERT_TRUE(channel->write(1024, pattern(1024)).is_ok());
  std::atomic<bool> third_done{false};
  std::thread writer([&] {
    ASSERT_TRUE(channel->write(2048, pattern(1024)).is_ok());
    third_done = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(third_done);  // writer is blocked: table full, no cache
  ASSERT_TRUE(channel->read(reader, 0, 1024, 1000).is_ok());  // frees one
  writer.join();
  EXPECT_TRUE(third_done);
}

TEST_F(ChannelTest, ShutdownWakesBlockedReader) {
  auto channel = make_channel(ChannelConfig{});
  const auto reader = channel->add_reader();
  std::thread consumer([&] {
    auto result = channel->read(reader, 0, 8, 0);
    EXPECT_FALSE(result.is_ok());
    EXPECT_EQ(result.status().code(), ErrorCode::kAborted);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  channel->shutdown();
  consumer.join();
}

TEST_F(ChannelTest, MisalignedWriteRejected) {
  ChannelConfig config;
  config.block_size = 8;
  auto channel = make_channel(config);
  EXPECT_FALSE(channel->write(3, pattern(4)).is_ok());
  EXPECT_FALSE(channel->write(0, pattern(9)).is_ok());
}

TEST_F(ChannelTest, PartialBlockExtension) {
  ChannelConfig config;
  config.block_size = 16;
  auto channel = make_channel(config);
  const auto reader = channel->add_reader();
  const Bytes data = pattern(16);
  // Flush-style partial write, then the extended full block.
  ASSERT_TRUE(channel->write(0, {data.data(), 6}).is_ok());
  auto early = channel->read(reader, 0, 16, 1000);
  ASSERT_TRUE(early.is_ok());
  EXPECT_EQ(early->data.size(), 6u);
  ASSERT_TRUE(channel->write(0, {data.data(), 16}).is_ok());
  auto rest = channel->read(reader, 6, 16, 1000);
  ASSERT_TRUE(rest.is_ok());
  EXPECT_EQ(rest->data, Bytes(data.begin() + 6, data.end()));
  // Shrinking a block is rejected.
  EXPECT_FALSE(channel->write(0, {data.data(), 4}).is_ok());
}

TEST_F(ChannelTest, StatWaitsForEof) {
  auto channel = make_channel(ChannelConfig{});
  std::atomic<bool> got_eof{false};
  std::thread waiter([&] {
    auto result = channel->stat(true, 5000);
    ASSERT_TRUE(result.is_ok());
    EXPECT_TRUE(result->eof);
    got_eof = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(got_eof);
  channel->close_writer();
  waiter.join();
}

TEST_F(ChannelTest, WriteAfterCloseRejected) {
  auto channel = make_channel(ChannelConfig{});
  channel->close_writer();
  EXPECT_FALSE(channel->write(0, pattern(8)).is_ok());
}

TEST(ChannelStoreTest, OpenIsIdempotentButConfigSticky) {
  auto dir = TempDir::create("store-test");
  ChannelStore store(dir->path().string());
  ChannelConfig config;
  config.block_size = 512;
  auto a = store.open("x", config);
  ASSERT_TRUE(a.is_ok());
  auto b = store.open("x", config);
  ASSERT_TRUE(b.is_ok());
  EXPECT_EQ(a->get(), b->get());
  ChannelConfig other;
  other.block_size = 1024;
  EXPECT_FALSE(store.open("x", other).is_ok());
  EXPECT_FALSE(store.find("y").is_ok());
  EXPECT_TRUE(store.find("x").is_ok());
}

TEST(ChannelStoreTest, RemoveRequiresClosedWriter) {
  auto dir = TempDir::create("store-rm");
  ChannelStore store(dir->path().string());
  auto channel = store.open("x", ChannelConfig{});
  ASSERT_TRUE(channel.is_ok());
  EXPECT_FALSE(store.remove("x").is_ok());
  (*channel)->close_writer();
  EXPECT_TRUE(store.remove("x").is_ok());
  EXPECT_FALSE(store.find("x").is_ok());
}

// ---- End-to-end over RPC ----------------------------------------------

class GridBufferE2ETest : public ::testing::TestWithParam<bool> {
 protected:
  GridBufferE2ETest()
      : dir_(*TempDir::create("gbuf-e2e")), network_(clock_),
        server_transport_(network_.transport("dione")),
        client_transport_(network_.transport("jagan")),
        server_(dir_.file("cache").string(), *server_transport_,
                net::inproc_endpoint("dione", "gbuf"),
                GetParam() ? net::WireFormat::kSoap
                           : net::WireFormat::kBinary) {
    EXPECT_TRUE(server_.start().is_ok());
  }
  ~GridBufferE2ETest() override { server_.stop(); }

  net::WireFormat format() const {
    return GetParam() ? net::WireFormat::kSoap : net::WireFormat::kBinary;
  }

  TempDir dir_;
  RealClock clock_;
  net::InProcNetwork network_;
  std::unique_ptr<net::Transport> server_transport_;
  std::unique_ptr<net::Transport> client_transport_;
  GridBufferServer server_;
};

TEST_P(GridBufferE2ETest, StreamOverlapsWriterAndReader) {
  const Bytes data = pattern(1 << 18, 9);
  GridBufferWriter::Options writer_options;
  writer_options.channel.block_size = 4096;
  writer_options.wire = format();

  std::thread producer([&] {
    auto writer = GridBufferWriter::open(
        *client_transport_, server_.endpoint(), "e2e/stream",
        writer_options);
    ASSERT_TRUE(writer.is_ok());
    std::size_t offset = 0;
    while (offset < data.size()) {
      const std::size_t chunk = std::min<std::size_t>(10000,
                                                      data.size() - offset);
      ASSERT_TRUE(
          (*writer)->write({data.data() + offset, chunk}).is_ok());
      offset += chunk;
    }
    ASSERT_TRUE((*writer)->close().is_ok());
  });

  GridBufferReader::Options reader_options;
  reader_options.wire = format();
  auto reader = GridBufferReader::open(*client_transport_,
                                       server_.endpoint(), "e2e/stream",
                                       reader_options);
  ASSERT_TRUE(reader.is_ok());
  Bytes got;
  Bytes buffer(7777);
  while (true) {
    auto n = (*reader)->read({buffer.data(), buffer.size()});
    ASSERT_TRUE(n.is_ok());
    if (*n == 0) break;
    got.insert(got.end(), buffer.begin(),
               buffer.begin() + static_cast<std::ptrdiff_t>(*n));
  }
  producer.join();
  EXPECT_EQ(got, data);
  EXPECT_EQ((*reader)->size().value(), data.size());
  ASSERT_TRUE((*reader)->close().is_ok());
}

TEST_P(GridBufferE2ETest, SeekBackAndRereadThroughCache) {
  const Bytes data = pattern(50000, 3);
  GridBufferWriter::Options writer_options;
  writer_options.channel.block_size = 4096;
  writer_options.channel.cache_enabled = true;
  writer_options.wire = format();
  auto writer = GridBufferWriter::open(
      *client_transport_, server_.endpoint(), "e2e/seek", writer_options);
  ASSERT_TRUE(writer.is_ok());
  ASSERT_TRUE((*writer)->write(data).is_ok());
  ASSERT_TRUE((*writer)->close().is_ok());

  GridBufferReader::Options reader_options;
  reader_options.wire = format();
  auto reader = GridBufferReader::open(*client_transport_,
                                       server_.endpoint(), "e2e/seek",
                                       reader_options);
  ASSERT_TRUE(reader.is_ok());
  Bytes all(data.size());
  ASSERT_TRUE((*reader)->read({all.data(), all.size()}).is_ok());
  EXPECT_EQ(all, data);
  // Arbitrary seek back (paper: "even perform arbitrary seeks").
  ASSERT_TRUE((*reader)->seek(12345, 0).is_ok());
  Bytes window(1000);
  ASSERT_TRUE((*reader)->read({window.data(), window.size()}).is_ok());
  EXPECT_EQ(window, Bytes(data.begin() + 12345, data.begin() + 13345));
  // Relative and end-based seeks.
  ASSERT_TRUE((*reader)->seek(-500, 1).is_ok());
  EXPECT_EQ((*reader)->tell(), 12845u);
  ASSERT_TRUE((*reader)->seek(-100, 2).is_ok());
  EXPECT_EQ((*reader)->tell(), data.size() - 100);
}

TEST_P(GridBufferE2ETest, FileClientAdapterRoundTrip) {
  if (format() == net::WireFormat::kSoap) {
    GTEST_SKIP() << "file-client adapter path is exercised binary-only";
  }
  ChannelConfig config;
  config.block_size = 1024;
  const Bytes data = pattern(30000, 5);

  std::thread producer([&] {
    auto writer = GridBufferFileClient::open(
        *client_transport_, server_.endpoint(), "e2e/fc",
        vfs::OpenFlags::output(), config);
    ASSERT_TRUE(writer.is_ok());
    ASSERT_TRUE(vfs::write_all(**writer, data).is_ok());
    ASSERT_TRUE((*writer)->close().is_ok());
  });
  auto reader = GridBufferFileClient::open(
      *client_transport_, server_.endpoint(), "e2e/fc",
      vfs::OpenFlags::input(), config);
  ASSERT_TRUE(reader.is_ok());
  auto got = vfs::read_all(**reader);
  producer.join();
  ASSERT_TRUE(got.is_ok());
  EXPECT_EQ(*got, data);

  // Read-write opens are rejected; writer seeks are rejected.
  auto rw = GridBufferFileClient::open(*client_transport_,
                                       server_.endpoint(), "e2e/fc2",
                                       vfs::OpenFlags::update(), config);
  EXPECT_FALSE(rw.is_ok());
}

INSTANTIATE_TEST_SUITE_P(Formats, GridBufferE2ETest,
                         ::testing::Values(false, true),
                         [](const auto& info) {
                           return info.param ? "Soap" : "Binary";
                         });

// Property test: random interleavings of writer chunk sizes and reader
// chunk sizes with occasional backward seeks always deliver the exact
// stream.
TEST(GridBufferPropertyTest, RandomChunkingAndSeeks) {
  auto dir = TempDir::create("gbuf-prop");
  RealClock clock;
  net::InProcNetwork network(clock);
  auto server_transport = network.transport("dione");
  auto client_transport = network.transport("jagan");
  GridBufferServer server(dir->file("cache").string(), *server_transport,
                          net::inproc_endpoint("dione", "gbuf"));
  ASSERT_TRUE(server.start().is_ok());

  std::mt19937 rng(424242);
  for (int trial = 0; trial < 8; ++trial) {
    const std::string channel = "prop/" + std::to_string(trial);
    const Bytes data = pattern(20000 + rng() % 30000, trial + 1);

    GridBufferWriter::Options writer_options;
    writer_options.channel.block_size = 512 << (rng() % 3);
    writer_options.flusher_threads = 1 + static_cast<int>(rng() % 4);
    std::thread producer([&] {
      auto writer = GridBufferWriter::open(
          *client_transport, server.endpoint(), channel, writer_options);
      ASSERT_TRUE(writer.is_ok());
      std::mt19937 wrng(trial);
      std::size_t offset = 0;
      while (offset < data.size()) {
        const std::size_t chunk = std::min<std::size_t>(
            1 + wrng() % 5000, data.size() - offset);
        ASSERT_TRUE((*writer)->write({data.data() + offset, chunk}).is_ok());
        offset += chunk;
      }
      ASSERT_TRUE((*writer)->close().is_ok());
    });

    GridBufferReader::Options reader_options;
    reader_options.channel.block_size = writer_options.channel.block_size;
    auto reader = GridBufferReader::open(*client_transport,
                                         server.endpoint(), channel,
                                         reader_options);
    ASSERT_TRUE(reader.is_ok());
    Bytes got(data.size());
    std::size_t position = 0;
    std::size_t high_water = 0;
    int seeks_left = 3;
    std::mt19937 rrng(trial * 7 + 1);
    while (high_water < data.size()) {
      // Occasionally jump backwards and re-read (cache path).
      if (seeks_left > 0 && high_water > 2000 && rrng() % 5 == 0) {
        const std::size_t back = rrng() % high_water;
        ASSERT_TRUE(
            (*reader)->seek(static_cast<std::int64_t>(back), 0).is_ok());
        position = back;
        --seeks_left;
      }
      Bytes buffer(1 + rrng() % 4000);
      auto n = (*reader)->read({buffer.data(), buffer.size()});
      ASSERT_TRUE(n.is_ok());
      if (*n == 0) break;
      ASSERT_LE(position + *n, data.size());
      // Verify against the reference data immediately.
      EXPECT_TRUE(std::equal(buffer.begin(),
                             buffer.begin() + static_cast<std::ptrdiff_t>(*n),
                             data.begin() +
                                 static_cast<std::ptrdiff_t>(position)))
          << "mismatch at " << position << " trial " << trial;
      position += *n;
      high_water = std::max(high_water, position);
    }
    EXPECT_EQ(high_water, data.size());
    producer.join();
    ASSERT_TRUE((*reader)->close().is_ok());
  }
  server.stop();
}

}  // namespace
}  // namespace griddles::gridbuffer
