// Tests for the fault-injection subsystem: spec parsing, deterministic
// replay (the golden guarantee: same seed + same spec = byte-identical
// injection schedule), retry backoff, and the tolerance matrix — for
// each IO mode a mid-stream fault is injected and the run completes
// with output identical to a fault-free run.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <filesystem>

#include "src/apps/paper_apps.h"
#include "src/common/tempfile.h"
#include "src/core/multiplexer.h"
#include "src/fault/plan.h"
#include "src/fault/retry.h"
#include "src/gridbuffer/server.h"
#include "src/net/inproc.h"
#include "src/obs/metrics.h"
#include "src/remote/file_server.h"
#include "src/replica/catalog.h"
#include "src/vfs/local_client.h"
#include "src/workflow/runner.h"

namespace griddles::fault {
namespace {

std::uint64_t counter_value(const char* name) {
  return obs::MetricsRegistry::global().counter(name).value();
}

/// Arms a plan for the test body and disarms on scope exit.
struct ArmedPlan {
  std::shared_ptr<Plan> plan;

  explicit ArmedPlan(const std::string& spec,
                     const Clock* clock = nullptr) {
    auto parsed = Plan::parse(spec);
    EXPECT_TRUE(parsed.is_ok()) << parsed.status();
    if (parsed.is_ok()) {
      plan = *parsed;
      arm(plan, clock);
    }
  }
  ~ArmedPlan() { disarm(); }
};

TEST(PlanParseTest, ReadsSeedRulesAndParams) {
  auto plan = Plan::parse(
      "seed=7;drop@rpc:a>b:p=0.5,count=2;die@peer:*ch:after=1000");
  ASSERT_TRUE(plan.is_ok()) << plan.status();
  EXPECT_EQ((*plan)->seed(), 7u);
  ASSERT_EQ((*plan)->rules().size(), 2u);
  const Rule& drop = (*plan)->rules()[0];
  EXPECT_EQ(drop.op, Op::kDrop);
  EXPECT_EQ(drop.site, Site::kRpc);
  EXPECT_EQ(drop.key_glob, "a>b");
  EXPECT_DOUBLE_EQ(drop.probability, 0.5);
  EXPECT_EQ(drop.max_fires, 2u);
  const Rule& death = (*plan)->rules()[1];
  EXPECT_EQ(death.op, Op::kPeerDeath);
  EXPECT_EQ(death.after_bytes, 1000u);
  EXPECT_EQ(death.max_fires, 1u);  // payload mutations default to once
}

TEST(PlanParseTest, RejectsMalformedSpecs) {
  EXPECT_FALSE(Plan::parse("explode@rpc:*").is_ok());
  EXPECT_FALSE(Plan::parse("drop@nowhere:*").is_ok());
  EXPECT_FALSE(Plan::parse("drop@rpc:").is_ok());
  EXPECT_FALSE(Plan::parse("drop@rpc:*:p").is_ok());
  EXPECT_FALSE(Plan::parse("seed=x;drop@rpc:*").is_ok());
}

TEST(PlanTest, SeededScheduleReplaysByteIdentically) {
  const std::string spec =
      "seed=42;drop@rpc:*>b:p=0.3;truncate@copy:*.dat:nth=4";
  auto drive = [&spec] {
    auto plan = *Plan::parse(spec);
    for (int i = 0; i < 100; ++i) {
      (void)plan->consult(Site::kRpc, "a>b");
      (void)plan->consult(Site::kRpc, "c>b");
      (void)plan->consult(Site::kCopy, "x.dat");
    }
    return plan->injection_log();
  };
  const std::vector<std::string> first = drive();
  const std::vector<std::string> second = drive();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);

  // A different seed yields a different probabilistic schedule.
  auto reseeded = *Plan::parse(
      "seed=43;drop@rpc:*>b:p=0.3;truncate@copy:*.dat:nth=4");
  for (int i = 0; i < 100; ++i) {
    (void)reseeded->consult(Site::kRpc, "a>b");
    (void)reseeded->consult(Site::kRpc, "c>b");
    (void)reseeded->consult(Site::kCopy, "x.dat");
  }
  EXPECT_NE(first, reseeded->injection_log());
}

TEST(PlanTest, NthFiresExactlyOnce) {
  auto plan = *Plan::parse("drop@rpc:k:nth=3,count=1");
  int fails = 0;
  for (int i = 0; i < 10; ++i) {
    if (plan->consult(Site::kRpc, "k").action == Decision::Action::kFail) {
      ++fails;
    }
  }
  EXPECT_EQ(fails, 1);
  EXPECT_EQ(plan->injection_count(), 1u);
}

TEST(PlanParseTest, CorruptAcceptsByteRange) {
  auto plan = Plan::parse("corrupt@copy:*mid.dat:offset=4096,len=16");
  ASSERT_TRUE(plan.is_ok()) << plan.status();
  const Rule& rule = (*plan)->rules()[0];
  EXPECT_EQ(rule.corrupt_offset, 4096u);
  EXPECT_EQ(rule.corrupt_len, 16u);
  EXPECT_FALSE(Plan::parse("corrupt@copy:*:len=0").is_ok());
}

TEST(PlanTest, CorruptDecisionCarriesByteRange) {
  auto plan = *Plan::parse("corrupt@copy:k:offset=7,len=3");
  const Decision decision = plan->consult(Site::kCopy, "k");
  EXPECT_EQ(decision.action, Decision::Action::kCorrupt);
  EXPECT_EQ(decision.corrupt_offset, 7u);
  EXPECT_EQ(decision.corrupt_len, 3u);
  // Defaults: flip the first byte.
  auto whole = *Plan::parse("corrupt@copy:k");
  const Decision defaulted = whole->consult(Site::kCopy, "k");
  EXPECT_EQ(defaulted.corrupt_offset, 0u);
  EXPECT_EQ(defaulted.corrupt_len, 1u);
}

TEST(PlanParseTest, PartitionParsesPairKeyAndWindow) {
  auto plan = Plan::parse("partition@gns:gns-0-gns-1:at=2,until=5");
  ASSERT_TRUE(plan.is_ok()) << plan.status();
  const Rule& rule = (*plan)->rules()[0];
  EXPECT_EQ(rule.op, Op::kPartition);
  // The grammar spells the site `gns`; the parser remaps the rule to
  // the sync plane so lookups keep working while replication is cut.
  EXPECT_EQ(rule.site, Site::kGnsSync);
  EXPECT_EQ(rule.key_glob, "gns-0-gns-1");
  EXPECT_DOUBLE_EQ(rule.at_s, 2.0);
  EXPECT_DOUBLE_EQ(rule.until_s, 5.0);
  EXPECT_FALSE(Plan::parse("partition@rpc:a>b").is_ok());
  EXPECT_FALSE(Plan::parse("partition@copy:*").is_ok());
}

TEST(PlanTest, PartitionWindowSeversThenHeals) {
  ManualClock clock;
  auto plan = *Plan::parse("partition@gns:*:at=1,until=3");
  plan->set_clock(&clock);
  // t=0: before the window opens, sync flows.
  EXPECT_EQ(plan->consult(Site::kGnsSync, "gns-0-gns-1").action,
            Decision::Action::kNone);
  clock.advance(from_seconds_d(2));  // t=2: inside [at, until)
  EXPECT_EQ(plan->consult(Site::kGnsSync, "gns-0-gns-1").action,
            Decision::Action::kSever);
  EXPECT_EQ(plan->consult(Site::kGnsSync, "gns-1-gns-2").action,
            Decision::Action::kSever);
  clock.advance(from_seconds_d(2));  // t=4: healed
  EXPECT_EQ(plan->consult(Site::kGnsSync, "gns-0-gns-1").action,
            Decision::Action::kNone);
  EXPECT_EQ(plan->injection_count(), 2u);
}

TEST(PlanTest, PartitionScheduleReplaysByteIdentically) {
  // The golden guarantee extends to the new op: same spec = identical
  // injection log, and the pair key glob picks out exactly one pair.
  auto drive = [] {
    auto plan = *Plan::parse("seed=9;partition@gns:gns-0-gns-1");
    for (int i = 0; i < 5; ++i) {
      (void)plan->consult(Site::kGnsSync, "gns-0-gns-1");
      (void)plan->consult(Site::kGnsSync, "gns-0-gns-2");
    }
    return plan->injection_log();
  };
  const std::vector<std::string> first = drive();
  ASSERT_EQ(first.size(), 5u);  // only the named pair, every consult
  EXPECT_EQ(first, drive());
}

TEST(PlanTest, ControlPlaneDeathIsPermanent) {
  auto plan = *Plan::parse("die@gns:gns-0;die@nws:freak");
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(plan->consult(Site::kGns, "gns-0").action,
              Decision::Action::kKill);
    EXPECT_EQ(plan->consult(Site::kNws, "freak").action,
              Decision::Action::kKill);
  }
  EXPECT_EQ(plan->consult(Site::kGns, "gns-1").action,
            Decision::Action::kNone);
  EXPECT_EQ(plan->injection_count(), 10u);
}

TEST(PlanTest, CrashIsPermanent) {
  auto plan = *Plan::parse("crash@host:*>down");
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(plan->consult(Site::kRpc, "a>down").action,
              Decision::Action::kFail);
  }
  EXPECT_EQ(plan->consult(Site::kRpc, "a>up").action,
            Decision::Action::kNone);
  EXPECT_EQ(plan->injection_count(), 5u);
}

TEST(RetryPolicyTest, BackoffIsCappedJitteredAndDeterministic) {
  ArmedPlan armed("seed=11;drop@rpc:never-matches");
  const RetryPolicy policy;
  double previous = 0;
  for (int attempt = 1; attempt <= 8; ++attempt) {
    const double base = std::min(
        to_seconds_d(policy.initial_backoff) *
            std::pow(policy.multiplier, attempt - 1),
        to_seconds_d(policy.max_backoff));
    const double got = to_seconds_d(policy.backoff(attempt, 99));
    EXPECT_GE(got, base * 0.5 - 1e-12) << attempt;
    EXPECT_LT(got, base) << attempt;
    EXPECT_EQ(got, to_seconds_d(policy.backoff(attempt, 99)));
    if (attempt > 1) EXPECT_GE(got, previous * 0.25);
    previous = got;
  }
  EXPECT_TRUE(RetryPolicy::retryable(ErrorCode::kUnavailable));
  EXPECT_TRUE(RetryPolicy::retryable(ErrorCode::kTimeout));
  EXPECT_FALSE(RetryPolicy::retryable(ErrorCode::kDataLoss));
  EXPECT_FALSE(RetryPolicy::retryable(ErrorCode::kInvalidArgument));
}

TEST(RetryPolicyTest, DeadlineBoundsRetries) {
  RetryPolicy policy;
  EXPECT_TRUE(policy.within_deadline(from_seconds_d(100)));  // no deadline
  policy.deadline = from_seconds_d(0.5);
  EXPECT_TRUE(policy.within_deadline(from_seconds_d(0.4)));
  EXPECT_FALSE(policy.within_deadline(from_seconds_d(0.6)));
}

Bytes pattern(std::size_t n, unsigned seed = 1) {
  Bytes out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<std::byte>((i * 151 + seed) & 0xFF);
  }
  return out;
}

/// Grid-in-a-box fixture for per-mode fault tolerance: GNS + two file
/// servers (dione, vpac27) + replica catalog + NWS estimates.
class FaultFmTest : public ::testing::Test {
 protected:
  FaultFmTest()
      : dir_(*TempDir::create("fault-fm")), network_(clock_),
        dione_transport_(network_.transport("dione")),
        vpac_transport_(network_.transport("vpac27")),
        gns_server_(db_, *dione_transport_,
                    net::inproc_endpoint("dione", "gns")),
        file_server_(dir_.file("export"), *dione_transport_,
                     net::inproc_endpoint("dione", "fs")),
        vpac_server_(dir_.file("export2"), *vpac_transport_,
                     net::inproc_endpoint("vpac27", "fs")),
        catalog_server_(catalog_, *dione_transport_,
                        net::inproc_endpoint("dione", "rc")) {
    obs::MetricsRegistry::global().reset();
    EXPECT_TRUE(gns_server_.start().is_ok());
    EXPECT_TRUE(file_server_.start().is_ok());
    EXPECT_TRUE(vpac_server_.start().is_ok());
    EXPECT_TRUE(catalog_server_.start().is_ok());
    estimator_.set("dione", {0.001, 10e6});
    estimator_.set("vpac27", {0.01, 5e6});
  }

  ~FaultFmTest() override {
    disarm();  // belt and braces: no plan may leak into other tests
    catalog_server_.stop();
    vpac_server_.stop();
    file_server_.stop();
    gns_server_.stop();
  }

  struct Fm {
    std::unique_ptr<net::Transport> transport;
    std::unique_ptr<gns::GnsClient> gns;
    std::unique_ptr<core::FileMultiplexer> fm;
    core::FileMultiplexer* operator->() { return fm.get(); }
  };

  Fm make_fm(const std::string& host) {
    Fm out;
    out.transport = network_.transport(host);
    out.gns = std::make_unique<gns::GnsClient>(*out.transport,
                                               gns_server_.endpoint());
    core::FileMultiplexer::Options options;
    options.host = host;
    options.local_root = dir_.file("root-" + host).string();
    options.scratch_dir = dir_.file("scratch-" + host).string();
    options.gns = out.gns.get();
    options.transport = out.transport.get();
    options.estimator = &estimator_;
    out.fm = std::make_unique<core::FileMultiplexer>(options);
    return out;
  }

  void add_rule(const std::string& host, const std::string& path,
                gns::FileMapping mapping) {
    gns::MappingRule rule;
    rule.host_pattern = host;
    rule.path_pattern = path;
    rule.mapping = std::move(mapping);
    db_.add_rule(rule);
  }

  Bytes read_all(Fm& fm, const std::string& path) {
    Bytes got;
    auto fd = fm->open(path, vfs::OpenFlags::input());
    EXPECT_TRUE(fd.is_ok()) << fd.status();
    if (!fd.is_ok()) return got;
    Bytes buffer(8192);
    while (true) {
      auto n = fm->read(*fd, {buffer.data(), buffer.size()});
      EXPECT_TRUE(n.is_ok()) << n.status();
      if (!n.is_ok() || *n == 0) break;
      got.insert(got.end(), buffer.begin(),
                 buffer.begin() + static_cast<std::ptrdiff_t>(*n));
    }
    EXPECT_TRUE(fm->close(*fd).is_ok());
    return got;
  }

  TempDir dir_;
  RealClock clock_;
  net::InProcNetwork network_;
  std::unique_ptr<net::Transport> dione_transport_;
  std::unique_ptr<net::Transport> vpac_transport_;
  gns::Database db_;
  gns::GnsServer gns_server_;
  remote::FileServer file_server_;
  remote::FileServer vpac_server_;
  replica::Catalog catalog_;
  replica::CatalogServer catalog_server_;
  nws::StaticLinkEstimator estimator_;
};

TEST_F(FaultFmTest, ProxyReadRetriesDroppedRpc) {
  const Bytes data = pattern(30000, 3);
  ASSERT_TRUE(
      vfs::write_file((file_server_.root() / "p.bin").string(), data)
          .is_ok());
  gns::FileMapping mapping;
  mapping.mode = gns::IoMode::kRemoteProxy;
  mapping.remote_endpoint = file_server_.endpoint().to_string();
  mapping.remote_path = "p.bin";
  add_rule("jagan", "*proxy.dat", mapping);

  ArmedPlan armed("seed=5;drop@rpc:jagan>dione:nth=2,count=1");
  auto fm = make_fm("jagan");
  EXPECT_EQ(read_all(fm, "proxy.dat"), data);
  EXPECT_EQ(counter_value("fault.injected.drop"), 1u);
  EXPECT_GE(counter_value("retry.attempts"), 1u);
}

TEST_F(FaultFmTest, StagedFetchResendsTruncatedChunk) {
  const Bytes data = pattern(70000, 7);
  ASSERT_TRUE(
      vfs::write_file((file_server_.root() / "staged.bin").string(), data)
          .is_ok());
  gns::FileMapping mapping;
  mapping.mode = gns::IoMode::kRemoteCopy;
  mapping.remote_endpoint = file_server_.endpoint().to_string();
  mapping.remote_path = "staged.bin";
  add_rule("jagan", "*staged.dat", mapping);

  ArmedPlan armed("seed=5;truncate@copy:staged.bin:nth=1");
  auto fm = make_fm("jagan");
  EXPECT_EQ(read_all(fm, "staged.dat"), data);
  EXPECT_EQ(counter_value("fault.injected.truncate"), 1u);
  EXPECT_GE(counter_value("retry.attempts"), 1u);
}

TEST_F(FaultFmTest, AutoCopyChecksumCatchesCorruption) {
  const Bytes data = pattern(200000, 9);
  ASSERT_TRUE(
      vfs::write_file((file_server_.root() / "scan.bin").string(), data)
          .is_ok());
  gns::FileMapping mapping;
  mapping.mode = gns::IoMode::kAuto;
  mapping.remote_endpoint = file_server_.endpoint().to_string();
  mapping.remote_path = "scan.bin";
  mapping.access_fraction = 1.0;
  add_rule("jagan", "*scan.dat", mapping);
  estimator_.set("dione", {0.3, 1e6});  // full scan over nasty latency

  ArmedPlan armed("seed=5;corrupt@copy:scan.bin:nth=1");
  auto fm = make_fm("jagan");
  EXPECT_EQ(read_all(fm, "scan.dat"), data);
  EXPECT_EQ(counter_value("fault.injected.corrupt"), 1u);
  EXPECT_GE(counter_value("retry.attempts"), 1u);
}

TEST_F(FaultFmTest, ChecksumCatchesMidFileByteRangeCorruption) {
  const Bytes data = pattern(200000, 17);
  ASSERT_TRUE(
      vfs::write_file((file_server_.root() / "range.bin").string(), data)
          .is_ok());
  gns::FileMapping mapping;
  mapping.mode = gns::IoMode::kAuto;
  mapping.remote_endpoint = file_server_.endpoint().to_string();
  mapping.remote_path = "range.bin";
  mapping.access_fraction = 1.0;
  add_rule("jagan", "*range.dat", mapping);
  estimator_.set("dione", {0.3, 1e6});

  // A 64-byte flip deep inside the first fetched chunk: the whole-file
  // checksum must still catch it and the retry must deliver clean data.
  ArmedPlan armed(
      "seed=5;corrupt@copy:range.bin:nth=1,offset=150000,len=64");
  auto fm = make_fm("jagan");
  EXPECT_EQ(read_all(fm, "range.dat"), data);
  EXPECT_EQ(counter_value("fault.injected.corrupt"), 1u);
  EXPECT_GE(counter_value("retry.attempts"), 1u);
}

TEST_F(FaultFmTest, ReplicatedReadFailsOverOnHostCrash) {
  // Bigger than one proxy block (64 KiB) so the tail genuinely needs
  // more RPCs — a fully cached file would never notice the crash.
  const Bytes data = pattern(200000, 11);
  ASSERT_TRUE(
      vfs::write_file((file_server_.root() / "rep.bin").string(), data)
          .is_ok());
  ASSERT_TRUE(
      vfs::write_file((vpac_server_.root() / "rep.bin").string(), data)
          .is_ok());
  catalog_.add("lfn/rep",
               {"dione", file_server_.endpoint().to_string(), "rep.bin",
                data.size(), fnv1a(data)});
  catalog_.add("lfn/rep",
               {"vpac27", vpac_server_.endpoint().to_string(), "rep.bin",
                data.size(), fnv1a(data)});
  gns::FileMapping mapping;
  mapping.mode = gns::IoMode::kReplicated;
  mapping.logical_name = "lfn/rep";
  mapping.catalog_endpoint = catalog_server_.endpoint().to_string();
  add_rule("jagan", "*rep.dat", mapping);

  auto fm = make_fm("jagan");
  auto fd = fm->open("rep.dat", vfs::OpenFlags::input());
  ASSERT_TRUE(fd.is_ok()) << fd.status();
  Bytes got(data.size());
  // First half streams from the cheap replica (dione)...
  ASSERT_EQ(fm->read(*fd, {got.data(), 30000}).value(), 30000u);
  // ...then dione dies mid-stream and the reader must fail over. Short
  // reads are legal (the proxy client drains its cache before the dead
  // link surfaces an error on the next call), so read in a loop.
  ArmedPlan armed("crash@host:*>dione");
  std::size_t off = 30000;
  while (off < got.size()) {
    auto rest = fm->read(*fd, {got.data() + off, got.size() - off});
    ASSERT_TRUE(rest.is_ok()) << rest.status();
    ASSERT_GT(*rest, 0u);
    off += *rest;
  }
  EXPECT_EQ(got, data);
  EXPECT_GE(counter_value("failover.switches"), 1u);
  EXPECT_GE(counter_value("fault.injected.crash"), 1u);
  ASSERT_TRUE(fm->close(*fd).is_ok());
}

// ---------------------------------------------------------------------
// Workflow-level tolerance: injected mid-stream faults, identical final
// artifacts (hash-compared against a fault-free run).

apps::AppKernel make_kernel(const std::string& name, double work,
                            std::vector<apps::StreamSpec> inputs,
                            std::vector<apps::StreamSpec> outputs) {
  apps::AppKernel kernel;
  kernel.name = name;
  kernel.work_units = work;
  kernel.timesteps = 8;
  kernel.inputs = std::move(inputs);
  kernel.outputs = std::move(outputs);
  kernel.verify_inputs = true;
  return kernel;
}

std::vector<apps::AppKernel> tiny_pipeline() {
  constexpr std::uint64_t kBytes = 200 * 1000;
  return {
      make_kernel("gen", 6, {}, {{"mid.dat", kBytes}}),
      make_kernel("filter", 2, {{"mid.dat", kBytes}},
                  {{"out.dat", kBytes / 2}}),
      make_kernel("sink", 4, {{"out.dat", kBytes / 2}},
                  {{"final.dat", 1000}}),
  };
}

class FaultWorkflowTest : public ::testing::Test {
 protected:
  FaultWorkflowTest() { obs::MetricsRegistry::global().reset(); }
  ~FaultWorkflowTest() override { disarm(); }

  /// Runs tiny_pipeline under `mode` on `machines` with `fault_spec`
  /// armed (empty = clean) and returns the final artifact's hash.
  std::uint64_t run_and_hash(workflow::CouplingMode mode,
                             const std::vector<std::string>& machines,
                             const std::string& fault_spec) {
    auto scratch = TempDir::create("fault-wf");
    EXPECT_TRUE(scratch.is_ok());
    testbed::TestbedRuntime testbed(0.0002, scratch->path().string(),
                                    /*byte_scale=*/1.0);
    std::shared_ptr<Plan> plan;
    if (!fault_spec.empty()) {
      auto parsed = Plan::parse(fault_spec);
      EXPECT_TRUE(parsed.is_ok()) << parsed.status();
      plan = *parsed;
      arm(plan, &testbed.clock());
    }
    workflow::WorkflowRunner runner(testbed);
    auto spec =
        workflow::WorkflowSpec::from_pipeline("ft", tiny_pipeline(),
                                              machines);
    EXPECT_TRUE(spec.is_ok());
    workflow::WorkflowRunner::Options options;
    options.mode = mode;
    options.poll_interval = std::chrono::milliseconds(200);
    auto report = runner.run(*spec, options);
    disarm();
    EXPECT_TRUE(report.is_ok()) << report.status();
    if (plan) EXPECT_GE(plan->injection_count(), 1u);
    auto final_bytes = vfs::read_file(
        (std::filesystem::path(scratch->path()) / machines.back() /
         "final.dat")
            .string());
    EXPECT_TRUE(final_bytes.is_ok()) << final_bytes.status();
    return final_bytes.is_ok() ? fnv1a(*final_bytes) : 0;
  }
};

TEST_F(FaultWorkflowTest, SequentialStagedCopySurvivesTruncatedChunk) {
  const std::vector<std::string> machines{"brecca", "dione", "freak"};
  const std::uint64_t clean =
      run_and_hash(workflow::CouplingMode::kSequentialFiles, machines, "");
  const std::uint64_t faulted =
      run_and_hash(workflow::CouplingMode::kSequentialFiles, machines,
                   "seed=3;truncate@copy:*mid.dat:nth=1");
  EXPECT_EQ(faulted, clean);
  EXPECT_GE(counter_value("retry.attempts"), 1u);
  EXPECT_EQ(counter_value("fault.injected.truncate"), 1u);
}

TEST_F(FaultWorkflowTest, ConcurrentFilesSurvivesDroppedGnsRpc) {
  const std::vector<std::string> machines{"jagan", "jagan", "jagan"};
  const std::uint64_t clean =
      run_and_hash(workflow::CouplingMode::kConcurrentFiles, machines, "");
  const std::uint64_t faulted =
      run_and_hash(workflow::CouplingMode::kConcurrentFiles, machines,
                   "seed=3;drop@rpc:jagan>jagan:nth=1,count=1");
  EXPECT_EQ(faulted, clean);
  EXPECT_GE(counter_value("retry.attempts"), 1u);
  EXPECT_EQ(counter_value("fault.injected.drop"), 1u);
}

TEST_F(FaultWorkflowTest, GridBufferWriterDeathRecoversViaStagedRerun) {
  const std::vector<std::string> machines{"jagan", "jagan", "jagan"};
  const std::uint64_t clean =
      run_and_hash(workflow::CouplingMode::kGridBuffers, machines, "");
  // The out.dat writer dies once its stream passes 30 kB: the reader
  // drains the cache, surfaces kDataLoss, and the runner re-runs both
  // failed stages over a staged-file remap.
  const std::uint64_t faulted =
      run_and_hash(workflow::CouplingMode::kGridBuffers, machines,
                   "seed=3;die@peer:*out.dat:after=30000");
  EXPECT_EQ(faulted, clean);
  EXPECT_GE(counter_value("stage.reruns"), 1u);
  EXPECT_EQ(counter_value("fault.injected.peer_death"), 1u);
}

TEST_F(FaultWorkflowTest, EmptyPlanLeavesHooksDisarmed) {
  EXPECT_EQ(armed(), nullptr);
  const std::uint64_t clean =
      run_and_hash(workflow::CouplingMode::kGridBuffers, {"jagan"}, "");
  EXPECT_NE(clean, 0u);
  EXPECT_EQ(counter_value("fault.injected.drop"), 0u);
  EXPECT_EQ(counter_value("stage.reruns"), 0u);
}

}  // namespace
}  // namespace griddles::fault
