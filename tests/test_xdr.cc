// Unit + property tests for the XDR codec and record schemas.
#include <gtest/gtest.h>

#include <random>

#include "src/xdr/codec.h"
#include "src/xdr/record.h"

namespace griddles::xdr {
namespace {

TEST(CodecTest, PrimitiveRoundTrip) {
  Encoder enc;
  enc.put_u8(0xAB);
  enc.put_u16(0xCDEF);
  enc.put_u32(0xDEADBEEF);
  enc.put_u64(0x0123456789ABCDEFULL);
  enc.put_i32(-42);
  enc.put_i64(-1LL << 40);
  enc.put_f32(3.25f);
  enc.put_f64(-2.5e300);
  enc.put_bool(true);
  enc.put_string("grid");
  enc.put_bytes(to_bytes(std::string_view("\x00\x01\x02", 3)));

  Decoder dec(enc.buffer());
  EXPECT_EQ(dec.u8().value(), 0xAB);
  EXPECT_EQ(dec.u16().value(), 0xCDEF);
  EXPECT_EQ(dec.u32().value(), 0xDEADBEEFu);
  EXPECT_EQ(dec.u64().value(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(dec.i32().value(), -42);
  EXPECT_EQ(dec.i64().value(), -1LL << 40);
  EXPECT_FLOAT_EQ(dec.f32().value(), 3.25f);
  EXPECT_DOUBLE_EQ(dec.f64().value(), -2.5e300);
  EXPECT_TRUE(dec.boolean().value());
  EXPECT_EQ(dec.string().value(), "grid");
  EXPECT_EQ(dec.bytes().value().size(), 3u);
  EXPECT_TRUE(dec.done());
}

TEST(CodecTest, BigEndianOnTheWire) {
  Encoder enc;
  enc.put_u32(0x01020304);
  const Bytes& wire = enc.buffer();
  ASSERT_EQ(wire.size(), 4u);
  EXPECT_EQ(static_cast<int>(wire[0]), 1);
  EXPECT_EQ(static_cast<int>(wire[3]), 4);
}

TEST(CodecTest, DecodePastEndFails) {
  Encoder enc;
  enc.put_u16(7);
  Decoder dec(enc.buffer());
  EXPECT_TRUE(dec.u16().is_ok());
  EXPECT_FALSE(dec.u32().is_ok());
}

TEST(CodecTest, TruncatedStringFails) {
  Encoder enc;
  enc.put_u32(100);  // claims 100 bytes follow; none do
  Decoder dec(enc.buffer());
  EXPECT_FALSE(dec.string().is_ok());
}

TEST(CodecTest, VectorRoundTrip) {
  Encoder enc;
  std::vector<std::string> names = {"a", "bb", ""};
  enc.put_vector(names, [](Encoder& e, const std::string& s) {
    e.put_string(s);
  });
  Decoder dec(enc.buffer());
  auto out = dec.vector<std::string>([](Decoder& d) { return d.string(); });
  ASSERT_TRUE(out.is_ok());
  EXPECT_EQ(*out, names);
}

TEST(CodecTest, StatusRoundTrip) {
  Encoder enc;
  encode_status(enc, timeout_error("too slow"));
  encode_status(enc, Status::ok());
  Decoder dec(enc.buffer());
  Status a, b;
  ASSERT_TRUE(decode_status(dec, &a).is_ok());
  ASSERT_TRUE(decode_status(dec, &b).is_ok());
  EXPECT_EQ(a.code(), ErrorCode::kTimeout);
  EXPECT_EQ(a.message(), "too slow");
  EXPECT_TRUE(b.is_ok());
}

// Property: random primitive sequences round-trip exactly.
TEST(CodecPropertyTest, RandomSequencesRoundTrip) {
  std::mt19937_64 rng(20040607);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::uint64_t> values;
    std::vector<int> kinds;
    Encoder enc;
    const int n = static_cast<int>(rng() % 20) + 1;
    for (int i = 0; i < n; ++i) {
      const int kind = static_cast<int>(rng() % 4);
      const std::uint64_t value = rng();
      kinds.push_back(kind);
      values.push_back(value);
      switch (kind) {
        case 0: enc.put_u8(static_cast<std::uint8_t>(value)); break;
        case 1: enc.put_u16(static_cast<std::uint16_t>(value)); break;
        case 2: enc.put_u32(static_cast<std::uint32_t>(value)); break;
        case 3: enc.put_u64(value); break;
      }
    }
    Decoder dec(enc.buffer());
    for (int i = 0; i < n; ++i) {
      switch (kinds[i]) {
        case 0:
          EXPECT_EQ(dec.u8().value(),
                    static_cast<std::uint8_t>(values[i]));
          break;
        case 1:
          EXPECT_EQ(dec.u16().value(),
                    static_cast<std::uint16_t>(values[i]));
          break;
        case 2:
          EXPECT_EQ(dec.u32().value(),
                    static_cast<std::uint32_t>(values[i]));
          break;
        case 3: EXPECT_EQ(dec.u64().value(), values[i]); break;
      }
    }
    EXPECT_TRUE(dec.done());
  }
}

TEST(RecordSchemaTest, ParseAndPrint) {
  auto schema = RecordSchema::parse("f64[3], i32, c8[16]");
  ASSERT_TRUE(schema.is_ok());
  EXPECT_EQ(schema->record_size(), 3 * 8 + 4 + 16u);
  EXPECT_EQ(schema->to_string(), "f64[3], i32, c8[16]");
  auto again = RecordSchema::parse(schema->to_string());
  ASSERT_TRUE(again.is_ok());
  EXPECT_EQ(*again, *schema);
}

TEST(RecordSchemaTest, ParseRejectsGarbage) {
  EXPECT_FALSE(RecordSchema::parse("").is_ok());
  EXPECT_FALSE(RecordSchema::parse("f99").is_ok());
  EXPECT_FALSE(RecordSchema::parse("f64[0]").is_ok());
  EXPECT_FALSE(RecordSchema::parse("f64[").is_ok());
  EXPECT_FALSE(RecordSchema::parse("f64[x]").is_ok());
}

TEST(RecordSchemaTest, SwapReordersMultiByteFieldsOnly) {
  auto schema = RecordSchema::parse("i32, c8[2]");
  ASSERT_TRUE(schema.is_ok());
  Bytes record = to_bytes(std::string("\x01\x02\x03\x04XY", 6));
  ASSERT_TRUE(schema->swap_records({record.data(), record.size()}).is_ok());
  EXPECT_EQ(to_string(record), std::string("\x04\x03\x02\x01XY", 6));
}

TEST(RecordSchemaTest, RejectsPartialRecords) {
  auto schema = RecordSchema::parse("i32");
  ASSERT_TRUE(schema.is_ok());
  Bytes data(6);  // one and a half records
  EXPECT_FALSE(schema->swap_records({data.data(), data.size()}).is_ok());
}

// Property: swapping is an involution for random schemas and data.
TEST(RecordSchemaPropertyTest, SwapIsInvolution) {
  std::mt19937_64 rng(77);
  const FieldType types[] = {FieldType::kChar8, FieldType::kInt16,
                             FieldType::kInt32, FieldType::kInt64,
                             FieldType::kFloat32, FieldType::kFloat64};
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<Field> fields;
    const int nf = static_cast<int>(rng() % 5) + 1;
    for (int f = 0; f < nf; ++f) {
      fields.push_back(Field{types[rng() % 6],
                             static_cast<std::size_t>(rng() % 4) + 1});
    }
    const RecordSchema schema(fields);
    const std::size_t records = rng() % 8 + 1;
    Bytes data(schema.record_size() * records);
    for (std::byte& b : data) b = static_cast<std::byte>(rng());
    Bytes original = data;
    ASSERT_TRUE(schema.swap_records({data.data(), data.size()}).is_ok());
    ASSERT_TRUE(schema.swap_records({data.data(), data.size()}).is_ok());
    EXPECT_EQ(data, original);
  }
}

// Property: swapping an i32 record matches integer byte-order reversal.
TEST(RecordSchemaPropertyTest, SwapMatchesIntegerByteSwap) {
  auto schema = RecordSchema::parse("i32[4]");
  ASSERT_TRUE(schema.is_ok());
  std::mt19937 rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    std::uint32_t values[4];
    for (auto& v : values) v = rng();
    Bytes data(16);
    std::memcpy(data.data(), values, 16);
    ASSERT_TRUE(schema->swap_records({data.data(), data.size()}).is_ok());
    std::uint32_t swapped[4];
    std::memcpy(swapped, data.data(), 16);
    for (int i = 0; i < 4; ++i) {
      EXPECT_EQ(swapped[i], __builtin_bswap32(values[i]));
    }
  }
}

}  // namespace
}  // namespace griddles::xdr
