// Tests for the remote file service: server, proxy client (with its
// block cache), parallel copier, and the copy-vs-proxy advisor.
#include <gtest/gtest.h>

#include "src/common/tempfile.h"
#include "src/net/inproc.h"
#include "src/remote/advisor.h"
#include "src/remote/copier.h"
#include "src/remote/file_server.h"
#include "src/remote/remote_client.h"
#include "src/vfs/local_client.h"

namespace griddles::remote {
namespace {

class RemoteTest : public ::testing::Test {
 protected:
  RemoteTest()
      : dir_(*TempDir::create("remote-test")), network_(clock_),
        server_transport_(network_.transport("freak")),
        client_transport_(network_.transport("jagan")),
        server_(dir_.file("export"), *server_transport_,
                net::inproc_endpoint("freak", "fs")) {
    EXPECT_TRUE(server_.start().is_ok());
  }
  ~RemoteTest() override { server_.stop(); }

  Bytes pattern(std::size_t n) {
    Bytes out(n);
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = static_cast<std::byte>(i * 131 + 7);
    }
    return out;
  }

  void put_remote(const std::string& name, ByteSpan data) {
    ASSERT_TRUE(
        vfs::write_file((server_.root() / name).string(), data).is_ok());
  }

  TempDir dir_;
  RealClock clock_;
  net::InProcNetwork network_;
  std::unique_ptr<net::Transport> server_transport_;
  std::unique_ptr<net::Transport> client_transport_;
  FileServer server_;
};

TEST_F(RemoteTest, ProxyReadWholeFile) {
  const Bytes data = pattern(200001);
  put_remote("big.bin", data);
  auto file = RemoteFileClient::open(*client_transport_, server_.endpoint(),
                                     "big.bin", vfs::OpenFlags::input());
  ASSERT_TRUE(file.is_ok());
  EXPECT_EQ((*file)->size().value(), data.size());
  auto all = vfs::read_all(**file);
  ASSERT_TRUE(all.is_ok());
  EXPECT_EQ(*all, data);
}

TEST_F(RemoteTest, ProxyBlockCacheHitsOnRereads) {
  put_remote("c.bin", pattern(100000));
  auto file = RemoteFileClient::open(*client_transport_, server_.endpoint(),
                                     "c.bin", vfs::OpenFlags::input());
  ASSERT_TRUE(file.is_ok());
  Bytes buffer(1000);
  ASSERT_TRUE((*file)->read({buffer.data(), buffer.size()}).is_ok());
  const auto misses = (*file)->cache_misses();
  // Re-read the same region: all cache hits, no further fetches.
  ASSERT_TRUE((*file)->seek(0, vfs::Whence::kSet).is_ok());
  ASSERT_TRUE((*file)->read({buffer.data(), buffer.size()}).is_ok());
  EXPECT_EQ((*file)->cache_misses(), misses);
  EXPECT_GT((*file)->cache_hits(), 0u);
}

TEST_F(RemoteTest, ProxyWriteReadBack) {
  auto file = RemoteFileClient::open(*client_transport_, server_.endpoint(),
                                     "w.bin", vfs::OpenFlags::output());
  ASSERT_TRUE(file.is_ok());
  const Bytes data = pattern(5000);
  ASSERT_TRUE(vfs::write_all(**file, data).is_ok());
  ASSERT_TRUE((*file)->close().is_ok());
  auto back = vfs::read_file((server_.root() / "w.bin").string());
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(*back, data);
}

TEST_F(RemoteTest, WriteInvalidatesCachedBlocks) {
  put_remote("rw.bin", pattern(8192));
  auto file = RemoteFileClient::open(*client_transport_, server_.endpoint(),
                                     "rw.bin", vfs::OpenFlags::update());
  ASSERT_TRUE(file.is_ok());
  Bytes buffer(16);
  ASSERT_TRUE((*file)->read({buffer.data(), buffer.size()}).is_ok());
  ASSERT_TRUE((*file)->seek(0, vfs::Whence::kSet).is_ok());
  ASSERT_TRUE((*file)->write(as_bytes_view("OVERWRITTEN!")).is_ok());
  ASSERT_TRUE((*file)->seek(0, vfs::Whence::kSet).is_ok());
  Bytes check(12);
  ASSERT_TRUE((*file)->read({check.data(), check.size()}).is_ok());
  EXPECT_EQ(to_string(check), "OVERWRITTEN!");
}

TEST_F(RemoteTest, MissingFileNotFound) {
  auto file = RemoteFileClient::open(*client_transport_, server_.endpoint(),
                                     "ghost", vfs::OpenFlags::input());
  EXPECT_FALSE(file.is_ok());
  EXPECT_EQ(file.status().code(), ErrorCode::kNotFound);
}

TEST_F(RemoteTest, PathEscapeRejected) {
  auto file = RemoteFileClient::open(*client_transport_, server_.endpoint(),
                                     "../../etc/passwd",
                                     vfs::OpenFlags::input());
  EXPECT_FALSE(file.is_ok());
  EXPECT_EQ(file.status().code(), ErrorCode::kPermissionDenied);
  auto abs = RemoteFileClient::open(*client_transport_, server_.endpoint(),
                                    "/etc/passwd", vfs::OpenFlags::input());
  EXPECT_FALSE(abs.is_ok());
  EXPECT_EQ(abs.status().code(), ErrorCode::kPermissionDenied);
}

TEST_F(RemoteTest, HandlesAreReleasedOnClose) {
  put_remote("h.bin", pattern(10));
  auto file = RemoteFileClient::open(*client_transport_, server_.endpoint(),
                                     "h.bin", vfs::OpenFlags::input());
  ASSERT_TRUE(file.is_ok());
  EXPECT_EQ(server_.open_handles(), 1u);
  ASSERT_TRUE((*file)->close().is_ok());
  EXPECT_EQ(server_.open_handles(), 0u);
}

TEST_F(RemoteTest, CopierFetchRoundTrip) {
  const Bytes data = pattern(3 * 1024 * 1024 + 17);
  put_remote("fetch.bin", data);
  FileCopier::Options options;
  options.parallel_streams = 3;
  options.chunk_size = 256 * 1024;
  FileCopier copier(*client_transport_, clock_, options);
  const std::string local = dir_.file("fetched.bin").string();
  auto stats = copier.fetch(server_.endpoint(), "fetch.bin", local);
  ASSERT_TRUE(stats.is_ok());
  EXPECT_EQ(stats->bytes, data.size());
  EXPECT_EQ(stats->streams_used, 3);
  auto back = vfs::read_file(local);
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(*back, data);
}

TEST_F(RemoteTest, CopierPushRoundTrip) {
  const Bytes data = pattern(2 * 1024 * 1024 + 3);
  const std::string local = dir_.file("tosend.bin").string();
  ASSERT_TRUE(vfs::write_file(local, data).is_ok());
  FileCopier copier(*client_transport_, clock_);
  auto stats = copier.push(local, server_.endpoint(), "pushed/deep.bin");
  ASSERT_TRUE(stats.is_ok());
  auto back = vfs::read_file((server_.root() / "pushed/deep.bin").string());
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(*back, data);
}

TEST_F(RemoteTest, CopierPushOverwritesLargerOldFile) {
  put_remote("shrink.bin", pattern(100000));
  const Bytes small = pattern(10);
  const std::string local = dir_.file("small.bin").string();
  ASSERT_TRUE(vfs::write_file(local, small).is_ok());
  FileCopier copier(*client_transport_, clock_);
  ASSERT_TRUE(
      copier.push(local, server_.endpoint(), "shrink.bin").is_ok());
  auto back = vfs::read_file((server_.root() / "shrink.bin").string());
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back->size(), small.size());
}

TEST_F(RemoteTest, CopierFetchMissingFails) {
  FileCopier copier(*client_transport_, clock_);
  auto stats = copier.fetch(server_.endpoint(), "nope",
                            dir_.file("x").string());
  EXPECT_FALSE(stats.is_ok());
  EXPECT_EQ(stats.status().code(), ErrorCode::kNotFound);
}

TEST_F(RemoteTest, CopierEmptyFile) {
  put_remote("empty", {});
  FileCopier copier(*client_transport_, clock_);
  const std::string local = dir_.file("empty-local").string();
  auto stats = copier.fetch(server_.endpoint(), "empty", local);
  ASSERT_TRUE(stats.is_ok());
  EXPECT_EQ(stats->bytes, 0u);
  EXPECT_EQ(vfs::file_size(local).value(), 0u);
}

// ---- Advisor ----------------------------------------------------------

TEST(AdvisorTest, SmallFileHighLatencyPrefersCopy) {
  // Paper §3.1: "if a file is small and the latency to the remote system
  // is high, then it is more efficient to copy the file".
  nws::LinkEstimate slow_link{0.3, 1e6};
  const Advice advice = advise(1 << 20, 1.0, slow_link, AdvisorPolicy{});
  EXPECT_EQ(advice.strategy, RemoteStrategy::kCopy);
}

TEST(AdvisorTest, SparseAccessPrefersProxy) {
  // "If an application reads a small fraction of the remote file, it may
  // not warrant copying it".
  nws::LinkEstimate link{0.01, 10e6};
  const Advice advice = advise(1u << 30, 0.01, link, AdvisorPolicy{});
  EXPECT_EQ(advice.strategy, RemoteStrategy::kProxy);
}

TEST(AdvisorTest, HugeFileAboveCapNeverCopies) {
  AdvisorPolicy policy;
  policy.max_copy_bytes = 1u << 20;
  nws::LinkEstimate link{0.3, 1e6};
  const Advice advice = advise(10u << 20, 1.0, link, policy);
  EXPECT_EQ(advice.strategy, RemoteStrategy::kProxy);
}

TEST(AdvisorTest, CrossoverMovesWithAccessFraction) {
  // Full scan of a big file: copy. Tiny fraction: proxy. Somewhere in
  // between the advice flips exactly once.
  nws::LinkEstimate link{0.05, 5e6};
  int flips = 0;
  RemoteStrategy last = advise(100u << 20, 0.001, link).strategy;
  EXPECT_EQ(last, RemoteStrategy::kProxy);
  for (double fraction = 0.002; fraction <= 1.0; fraction += 0.002) {
    const RemoteStrategy now =
        advise(100u << 20, fraction, link).strategy;
    if (now != last) ++flips;
    last = now;
  }
  EXPECT_EQ(flips, 1);
  EXPECT_EQ(last, RemoteStrategy::kCopy);
}

TEST(AdvisorTest, CostsAreReported) {
  nws::LinkEstimate link{0.1, 1e6};
  const Advice advice = advise(1u << 20, 0.5, link);
  EXPECT_GT(advice.copy_cost_seconds, 0);
  EXPECT_GT(advice.proxy_cost_seconds, 0);
}

}  // namespace
}  // namespace griddles::remote
