// Tests for the control-plane resilience layer (DESIGN.md
// "Control-plane resilience"): replicated GNS with circuit breakers and
// mapping leases, NWS outage degradation with static fallback, and the
// crash-restartable workflow checkpoint journal.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include "src/common/strings.h"
#include "src/common/tempfile.h"
#include "src/fault/plan.h"
#include "src/gns/replicated.h"
#include "src/gns/service.h"
#include "src/net/inproc.h"
#include "src/nws/monitor.h"
#include "src/obs/metrics.h"
#include "src/testbed/testbed.h"
#include "src/vfs/local_client.h"
#include "src/workflow/checkpoint.h"
#include "src/workflow/runner.h"
#include "tests/test_scaling.h"

namespace griddles {
namespace {

std::uint64_t counter_value(const char* name) {
  return obs::MetricsRegistry::global().counter(name).value();
}

std::int64_t gauge_value(const char* name) {
  return obs::MetricsRegistry::global().gauge(name).value();
}

/// Arms a plan for the test body and disarms on scope exit.
struct ArmedPlan {
  std::shared_ptr<fault::Plan> plan;

  explicit ArmedPlan(const std::string& spec,
                     const Clock* clock = nullptr) {
    auto parsed = fault::Plan::parse(spec);
    EXPECT_TRUE(parsed.is_ok()) << parsed.status();
    if (parsed.is_ok()) {
      plan = *parsed;
      fault::arm(plan, clock);
    }
  }
  ~ArmedPlan() { fault::disarm(); }
};

// ---------------------------------------------------------------------
// Replicated GNS: failover, breakers, leases.

class ReplicatedGnsTest : public ::testing::Test {
 protected:
  ReplicatedGnsTest()
      : network_(clock_),
        server_transport_(network_.transport("dione")),
        client_transport_(network_.transport("jagan")) {
    obs::MetricsRegistry::global().reset();
    for (int i = 0; i < 2; ++i) {
      servers_.push_back(std::make_unique<gns::GnsServer>(
          db_, *server_transport_,
          net::inproc_endpoint("dione", strings::cat("gns-", i))));
      EXPECT_TRUE(servers_.back()->start().is_ok());
    }
    gns::MappingRule rule;
    rule.host_pattern = "jagan";
    rule.path_pattern = "*";
    rule.mapping.mode = gns::IoMode::kLocal;
    db_.add_rule(rule);
  }
  ~ReplicatedGnsTest() override {
    fault::disarm();
    for (auto& server : servers_) server->stop();
  }

  std::unique_ptr<gns::ReplicatedNameService> make_service(
      gns::ReplicatedNameService::Options options) {
    auto service = std::make_unique<gns::ReplicatedNameService>(
        *client_transport_, options);
    service->add_replica("gns-0", servers_[0]->endpoint());
    service->add_replica("gns-1", servers_[1]->endpoint());
    return service;
  }
  std::unique_ptr<gns::ReplicatedNameService> make_service() {
    return make_service(gns::ReplicatedNameService::Options{});
  }

  RealClock clock_;
  net::InProcNetwork network_;
  std::unique_ptr<net::Transport> server_transport_;
  std::unique_ptr<net::Transport> client_transport_;
  gns::Database db_;
  std::vector<std::unique_ptr<gns::GnsServer>> servers_;
};

TEST_F(ReplicatedGnsTest, LookupFailsOverWhenFirstReplicaDies) {
  ArmedPlan armed("seed=1;die@gns:gns-0");
  auto service = make_service();

  auto result = service->lookup("jagan", "/work/a.dat");
  ASSERT_TRUE(result.is_ok()) << result.status();
  ASSERT_TRUE(result->has_value());
  EXPECT_EQ((*result)->mode, gns::IoMode::kLocal);
  EXPECT_GE(counter_value("gns.failover"), 1u);
  EXPECT_GE(counter_value("fault.injected.peer_death"), 1u);

  // Enough consecutive failures open the dead replica's breaker; the
  // healthy one stays closed and keeps answering.
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(service->lookup("jagan", "/work/a.dat").is_ok());
  }
  EXPECT_EQ(service->breaker_state("gns-0"), gns::BreakerState::kOpen);
  EXPECT_EQ(service->breaker_state("gns-1"), gns::BreakerState::kClosed);
  EXPECT_EQ(counter_value("gns.breaker.opened"), 1u);
  EXPECT_EQ(gauge_value("gns.breaker.open"), 1);
}

TEST_F(ReplicatedGnsTest, WarmLeaseSurvivesTotalOutageColdLookupFails) {
  auto service = make_service();
  // Warm the lease while the service is healthy.
  auto warm = service->lookup("jagan", "/work/warm.dat");
  ASSERT_TRUE(warm.is_ok());
  ASSERT_TRUE(warm->has_value());
  EXPECT_EQ(service->lease_count(), 1u);

  ArmedPlan armed("seed=1;die@gns:*");
  auto leased = service->lookup("jagan", "/work/warm.dat");
  ASSERT_TRUE(leased.is_ok()) << leased.status();
  ASSERT_TRUE(leased->has_value());
  EXPECT_EQ((*leased)->mode, gns::IoMode::kLocal);
  EXPECT_GE(counter_value("gns.lease.served"), 1u);

  // A path never resolved before has no lease: typed unavailable, fast.
  auto cold = service->lookup("jagan", "/work/cold.dat");
  ASSERT_FALSE(cold.is_ok());
  EXPECT_EQ(cold.status().code(), ErrorCode::kUnavailable);
}

TEST_F(ReplicatedGnsTest, OpenBreakerRecoversThroughHalfOpenProbe) {
  gns::ReplicatedNameService::Options options;
  options.failure_threshold = 1;
  options.cooldown = std::chrono::milliseconds(20);
  auto service = make_service(options);
  {
    ArmedPlan armed("seed=1;die@gns:gns-0");
    ASSERT_TRUE(service->lookup("jagan", "/work/a.dat").is_ok());
    EXPECT_EQ(service->breaker_state("gns-0"), gns::BreakerState::kOpen);
  }
  // Replica is healthy again; after the cooldown one probe lookup is
  // admitted and a success closes the breaker.
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  EXPECT_TRUE(service->lookup("jagan", "/work/a.dat").is_ok());
  EXPECT_EQ(service->breaker_state("gns-0"), gns::BreakerState::kClosed);
  EXPECT_EQ(counter_value("gns.breaker.recovered"), 1u);
  EXPECT_EQ(gauge_value("gns.breaker.open"), 0);
}

TEST_F(ReplicatedGnsTest, WriteThroughInvalidationBeatsClientCacheTtl) {
  // TTLs far beyond the test's lifetime: without write-through
  // invalidation every remap below would stay invisible until the
  // client cache expired (the stale-read window this closes).
  gns::ReplicatedNameService::Options options;
  options.client_cache_ttl = std::chrono::seconds(30);
  options.lease_ttl = std::chrono::seconds(30);
  auto service = make_service(options);

  auto before = service->lookup("jagan", "/work/w.dat");
  ASSERT_TRUE(before.is_ok()) << before.status();
  ASSERT_TRUE(before->has_value());
  EXPECT_EQ((*before)->mode, gns::IoMode::kLocal);

  // Remap the file while the old mapping is cached and leased.
  gns::MappingRule remap;
  remap.host_pattern = "jagan";
  remap.path_pattern = "/work/w.dat";
  remap.mapping.mode = gns::IoMode::kGridBuffer;
  ASSERT_TRUE(service->add_rule(remap).is_ok());

  auto after = service->lookup("jagan", "/work/w.dat");
  ASSERT_TRUE(after.is_ok()) << after.status();
  ASSERT_TRUE(after->has_value());
  EXPECT_EQ((*after)->mode, gns::IoMode::kGridBuffer);

  // Removal is equally immediate: back to the glob default.
  ASSERT_TRUE(service->remove_rule("jagan", "/work/w.dat").is_ok());
  auto removed = service->lookup("jagan", "/work/w.dat");
  ASSERT_TRUE(removed.is_ok()) << removed.status();
  ASSERT_TRUE(removed->has_value());
  EXPECT_EQ((*removed)->mode, gns::IoMode::kLocal);
}

TEST_F(ReplicatedGnsTest, HalfOpenAdmitsExactlyOneProbe) {
  gns::ReplicatedNameService::Options options;
  options.failure_threshold = 1;
  options.cooldown = std::chrono::milliseconds(20);
  auto service = make_service(options);
  {
    ArmedPlan armed("seed=1;die@gns:gns-0");
    ASSERT_TRUE(service->lookup("jagan", "/work/a.dat").is_ok());
    EXPECT_EQ(service->breaker_state("gns-0"), gns::BreakerState::kOpen);
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(60));

  // Many concurrent lookups race for the half-open slot. The
  // open->half-open transition is a single CAS, so exactly one caller
  // wins the probe; the losers observe kHalfOpen and fail over to
  // gns-1 instead of piling onto the recovering replica.
  const std::uint64_t probes_before = counter_value("gns.breaker.probe");
  std::vector<std::thread> lookups;
  std::atomic<int> failures{0};
  for (int i = 0; i < 8; ++i) {
    lookups.emplace_back([&service, &failures] {
      auto result = service->lookup("jagan", "/work/a.dat");
      if (!result.is_ok() || !result->has_value()) failures.fetch_add(1);
    });
  }
  for (std::thread& t : lookups) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(counter_value("gns.breaker.probe") - probes_before, 1u);
  EXPECT_EQ(service->breaker_state("gns-0"), gns::BreakerState::kClosed);
  EXPECT_EQ(counter_value("gns.breaker.recovered"), 1u);
}

// ---------------------------------------------------------------------
// NWS degradation: outage detection, confidence decay, static fallback.

TEST(NwsDegradationTest, SensorOutageFallsBackToStaticModel) {
  obs::MetricsRegistry::global().reset();
  ScaledClock clock(0.001 * test_support::kClockScale);
  net::InProcNetwork network(clock);
  auto responder_transport = network.transport("freak");
  nws::Responder responder(*responder_transport,
                           net::inproc_endpoint("freak", "nws"));
  ASSERT_TRUE(responder.start().is_ok());

  auto monitor_transport = network.transport("jagan");
  nws::Monitor::Options options;
  options.echo_count = 1;
  options.bulk_bytes = 4096;
  options.outage_after_failures = 2;
  nws::Monitor monitor(*monitor_transport, clock, options);
  monitor.add_target("freak", responder.endpoint());
  ASSERT_TRUE(monitor.probe_once("freak").is_ok());
  ASSERT_TRUE(monitor.estimate("freak").is_ok());

  // `die@nws` is a permanent sensor outage: every probe round fails.
  ArmedPlan armed("seed=1;die@nws:freak", &clock);
  EXPECT_FALSE(monitor.probe_once("freak").is_ok());
  EXPECT_FALSE(monitor.probe_once("freak").is_ok());
  EXPECT_EQ(counter_value("nws.sensor.outage"), 1u);

  // The monitor withholds its (now untrustworthy) forecast...
  auto direct = monitor.estimate("freak");
  ASSERT_FALSE(direct.is_ok());
  EXPECT_EQ(direct.status().code(), ErrorCode::kUnavailable);

  // ...and the fallback chain degrades to the static link model.
  nws::StaticLinkEstimator static_model;
  static_model.set("freak", {0.05, 2e6});
  nws::FallbackLinkEstimator chain(monitor, static_model);
  auto estimate = chain.estimate("freak");
  ASSERT_TRUE(estimate.is_ok()) << estimate.status();
  EXPECT_DOUBLE_EQ(estimate->latency_seconds, 0.05);
  EXPECT_DOUBLE_EQ(estimate->bandwidth_bytes_per_sec, 2e6);
  EXPECT_GE(counter_value("nws.fallback.static"), 1u);
  responder.stop();
}

TEST(NwsDegradationTest, StaleEstimateDecaysToFloorThenWithheld) {
  ScaledClock clock(0.001 * test_support::kClockScale);
  net::InProcNetwork network(clock);
  auto responder_transport = network.transport("freak");
  nws::Responder responder(*responder_transport,
                           net::inproc_endpoint("freak", "nws"));
  ASSERT_TRUE(responder.start().is_ok());

  auto monitor_transport = network.transport("jagan");
  nws::Monitor::Options options;
  options.echo_count = 1;
  options.bulk_bytes = 4096;
  options.stale_after = std::chrono::milliseconds(50);
  nws::Monitor monitor(*monitor_transport, clock, options);
  monitor.add_target("freak", responder.endpoint());
  ASSERT_TRUE(monitor.probe_once("freak").is_ok());

  auto fresh = monitor.estimate("freak");
  ASSERT_TRUE(fresh.is_ok());
  EXPECT_DOUBLE_EQ(fresh->confidence, 1.0);

  // Past stale_after the confidence decays toward the floor but the
  // estimate is still served (advisory degradation)...
  clock.sleep_for(std::chrono::milliseconds(120));
  auto stale = monitor.estimate("freak");
  ASSERT_TRUE(stale.is_ok());
  EXPECT_LT(stale->confidence, 1.0);
  EXPECT_GT(stale->confidence, options.confidence_floor);

  // ...until it reaches the floor, after which it is withheld.
  clock.sleep_for(std::chrono::seconds(2));
  auto gone = monitor.estimate("freak");
  ASSERT_FALSE(gone.is_ok());
  EXPECT_EQ(gone.status().code(), ErrorCode::kUnavailable);
  responder.stop();
}

TEST(NwsDegradationTest, TestbedStaticModelServesPaperLinks) {
  testbed::StaticModelEstimator estimator("brecca");
  auto estimate = estimator.estimate("dione");
  ASSERT_TRUE(estimate.is_ok()) << estimate.status();
  EXPECT_GT(estimate->bandwidth_bytes_per_sec, 0.0);
  EXPECT_DOUBLE_EQ(estimate->confidence, 0.5);
  EXPECT_FALSE(estimator.estimate("no-such-machine").is_ok());
}

// ---------------------------------------------------------------------
// Checkpoint journal.

TEST(CheckpointLogTest, HashFileMatchesInMemoryFnv) {
  auto dir = TempDir::create("ckpt-hash");
  ASSERT_TRUE(dir.is_ok());
  const std::string path = (dir->path() / "blob.bin").string();
  Bytes data;
  for (int i = 0; i < 70000; ++i) data.push_back(std::byte(i % 251));
  ASSERT_TRUE(vfs::write_file(path, data).is_ok());
  auto hash = workflow::hash_file(path);
  ASSERT_TRUE(hash.is_ok());
  EXPECT_EQ(*hash, fnv1a(data));
  EXPECT_FALSE(workflow::hash_file(path + ".missing").is_ok());
}

TEST(CheckpointLogTest, TornTailIsTruncatedAndJournalStaysAppendable) {
  obs::MetricsRegistry::global().reset();
  auto dir = TempDir::create("ckpt-torn");
  ASSERT_TRUE(dir.is_ok());
  const std::string path = (dir->path() / "wf.ck").string();
  {
    auto log = workflow::CheckpointLog::open(path);
    ASSERT_TRUE(log.is_ok()) << log.status();
    workflow::StageRecord stage;
    stage.name = "gen";
    stage.machine = "brecca";
    stage.finished_s = 12.5;
    stage.outputs.emplace_back("mid.dat", 0xabcdu);
    ASSERT_TRUE((*log)->append_stage(stage).is_ok());
    workflow::CopyRecord copy{"mid.dat", "brecca", "dione", 14.0, 1.5,
                              0x1234u};
    ASSERT_TRUE((*log)->append_copy(copy).is_ok());
  }
  const auto intact_size = std::filesystem::file_size(path);
  {
    // A crash mid-append leaves a torn frame at the tail.
    std::ofstream out(path, std::ios::app | std::ios::binary);
    out << "GLCK torn half-frame";
  }
  ASSERT_GT(std::filesystem::file_size(path), intact_size);
  {
    auto log = workflow::CheckpointLog::open(path);
    ASSERT_TRUE(log.is_ok()) << log.status();
    EXPECT_EQ((*log)->replayed(), 2u);
    EXPECT_EQ(counter_value("checkpoint.records.replayed"), 2u);
    // The torn tail was truncated away...
    EXPECT_EQ(std::filesystem::file_size(path), intact_size);
    const workflow::StageRecord* stage = (*log)->stage("gen");
    ASSERT_NE(stage, nullptr);
    EXPECT_EQ(stage->machine, "brecca");
    ASSERT_EQ(stage->outputs.size(), 1u);
    EXPECT_EQ(stage->outputs[0].second, 0xabcdu);
    const workflow::CopyRecord* copy =
        (*log)->copy("mid.dat", "brecca", "dione");
    ASSERT_NE(copy, nullptr);
    EXPECT_EQ(copy->dest_hash, 0x1234u);
    // ...and clean appends continue from the last good record.
    workflow::StageRecord next;
    next.name = "filter";
    next.machine = "dione";
    ASSERT_TRUE((*log)->append_stage(next).is_ok());
  }
  auto log = workflow::CheckpointLog::open(path);
  ASSERT_TRUE(log.is_ok());
  EXPECT_EQ((*log)->replayed(), 3u);
  EXPECT_NE((*log)->stage("filter"), nullptr);
}

// ---------------------------------------------------------------------
// Crash-restartable workflow runs.

class CheckpointWorkflowTest : public ::testing::Test {
 protected:
  CheckpointWorkflowTest() { obs::MetricsRegistry::global().reset(); }
  ~CheckpointWorkflowTest() override { fault::disarm(); }

  static constexpr std::uint64_t kBytes = 64 * 1024;

  static apps::AppKernel make_kernel(
      const std::string& name, double work,
      std::vector<apps::StreamSpec> inputs,
      std::vector<apps::StreamSpec> outputs) {
    apps::AppKernel kernel;
    kernel.name = name;
    kernel.work_units = work;
    kernel.timesteps = 4;
    kernel.inputs = std::move(inputs);
    kernel.outputs = std::move(outputs);
    return kernel;
  }

  static std::vector<apps::AppKernel> pipeline() {
    return {
        make_kernel("gen", 6, {}, {{"mid.dat", kBytes}}),
        make_kernel("filter", 2, {{"mid.dat", kBytes}},
                    {{"out.dat", kBytes / 2}}),
        make_kernel("sink", 4, {{"out.dat", kBytes / 2}},
                    {{"final.dat", 1000}}),
    };
  }

  /// One sequential-files run over {brecca, dione, freak} with the
  /// given stable scratch dir, checkpoint journal, and fault plan.
  Result<workflow::WorkflowReport> run(const std::string& scratch,
                                       const std::string& checkpoint,
                                       const std::string& fault_spec) {
    testbed::TestbedRuntime testbed(0.0002, scratch, /*byte_scale=*/1.0);
    std::shared_ptr<fault::Plan> plan;
    if (!fault_spec.empty()) {
      auto parsed = fault::Plan::parse(fault_spec);
      EXPECT_TRUE(parsed.is_ok()) << parsed.status();
      plan = *parsed;
      fault::arm(plan, &testbed.clock());
    }
    workflow::WorkflowRunner runner(testbed);
    auto spec = workflow::WorkflowSpec::from_pipeline(
        "ck", pipeline(), {"brecca", "dione", "freak"});
    EXPECT_TRUE(spec.is_ok());
    workflow::WorkflowRunner::Options options;
    options.mode = workflow::CouplingMode::kSequentialFiles;
    options.checkpoint_path = checkpoint;
    options.gns_replicas = 2;
    auto report = runner.run(*spec, options);
    fault::disarm();
    return report;
  }

  static std::uint64_t final_hash(const std::string& scratch) {
    auto bytes = vfs::read_file(
        (std::filesystem::path(scratch) / "freak" / "final.dat").string());
    EXPECT_TRUE(bytes.is_ok()) << bytes.status();
    return bytes.is_ok() ? fnv1a(*bytes) : 0;
  }
};

TEST_F(CheckpointWorkflowTest, CrashMidCopyResumesWithIdenticalArtifact) {
  auto clean_dir = TempDir::create("ckpt-clean");
  ASSERT_TRUE(clean_dir.is_ok());
  auto clean = run(clean_dir->path().string(),
                   (clean_dir->path() / "wf.ck").string(), "");
  ASSERT_TRUE(clean.is_ok()) << clean.status();
  const std::uint64_t clean_hash = final_hash(clean_dir->path().string());

  // A permanently dead host kills the dione->freak staging copy: the
  // coordinator aborts with two stages and one copy already journaled.
  auto crash_dir = TempDir::create("ckpt-crash");
  ASSERT_TRUE(crash_dir.is_ok());
  const std::string scratch = crash_dir->path().string();
  const std::string journal = (crash_dir->path() / "wf.ck").string();
  auto crashed = run(scratch, journal, "seed=3;crash@host:*>dione");
  ASSERT_FALSE(crashed.is_ok());
  EXPECT_EQ(crashed.status().code(), ErrorCode::kUnavailable);

  // The resume re-runs ONLY the incomplete work: the failed copy and
  // the never-started sink stage.
  obs::MetricsRegistry::global().reset();
  auto resumed = run(scratch, journal, "");
  ASSERT_TRUE(resumed.is_ok()) << resumed.status();
  EXPECT_EQ(counter_value("checkpoint.stage.skipped"), 2u);
  EXPECT_EQ(counter_value("checkpoint.copy.skipped"), 1u);
  EXPECT_EQ(counter_value("stage.reruns"), 1u);
  EXPECT_EQ(resumed->tasks.size(), 3u);
  EXPECT_EQ(final_hash(scratch), clean_hash);
}

TEST_F(CheckpointWorkflowTest, CheckpointRejectedForStreamingCouplings) {
  auto dir = TempDir::create("ckpt-mode");
  ASSERT_TRUE(dir.is_ok());
  testbed::TestbedRuntime testbed(0.0002, dir->path().string(), 1.0);
  workflow::WorkflowRunner runner(testbed);
  auto spec = workflow::WorkflowSpec::from_pipeline(
      "ck", pipeline(), {"jagan", "jagan", "jagan"});
  ASSERT_TRUE(spec.is_ok());
  workflow::WorkflowRunner::Options options;
  options.mode = workflow::CouplingMode::kGridBuffers;
  options.checkpoint_path = (dir->path() / "wf.ck").string();
  auto report = runner.run(*spec, options);
  ASSERT_FALSE(report.is_ok());
  EXPECT_EQ(report.status().code(), ErrorCode::kInvalidArgument);
}

}  // namespace
}  // namespace griddles
