// Tests for the synthetic legacy-app framework and the paper kernels.
#include <gtest/gtest.h>

#include "src/apps/paper_apps.h"
#include "src/common/tempfile.h"
#include "src/gns/service.h"
#include "src/net/inproc.h"

namespace griddles::apps {
namespace {

TEST(StreamContentTest, DeterministicAndPathKeyed) {
  EXPECT_EQ(stream_byte("a.dat", 0), stream_byte("a.dat", 0));
  EXPECT_EQ(stream_byte("a.dat", 12345), stream_byte("a.dat", 12345));
  // Different paths give different streams (overwhelmingly likely to
  // differ somewhere in a prefix).
  bool differs = false;
  for (std::uint64_t i = 0; i < 64; ++i) {
    if (stream_byte("a.dat", i) != stream_byte("b.dat", i)) {
      differs = true;
      break;
    }
  }
  EXPECT_TRUE(differs);
}

TEST(StreamContentTest, FillMatchesByteAtEveryOffset) {
  Bytes chunk(97);
  fill_stream("x", 1003, {chunk.data(), chunk.size()});
  for (std::size_t i = 0; i < chunk.size(); ++i) {
    EXPECT_EQ(static_cast<std::uint8_t>(chunk[i]),
              stream_byte("x", 1003 + i));
  }
}

TEST(StreamContentTest, UnalignedFillsAgree) {
  // Property: filling [0,100) in one go equals filling in odd pieces.
  Bytes whole(100);
  fill_stream("frag", 0, {whole.data(), whole.size()});
  Bytes pieces(100);
  std::size_t offset = 0;
  for (const std::size_t piece : {3u, 17u, 1u, 42u, 37u}) {
    fill_stream("frag", offset, {pieces.data() + offset, piece});
    offset += piece;
  }
  EXPECT_EQ(whole, pieces);
}

class RunAppTest : public ::testing::Test {
 protected:
  RunAppTest()
      : dir_(*TempDir::create("apps-test")),
        testbed_(0.001, dir_.path().string()) {}

  TempDir dir_;
  testbed::TestbedRuntime testbed_;
};

TEST_F(RunAppTest, ProducesAndConsumesDeterministicContent) {
  auto machine = testbed_.machine("brecca");
  ASSERT_TRUE(machine.is_ok());
  auto dir = testbed_.machine_dir("brecca");
  ASSERT_TRUE(dir.is_ok());
  auto transport = testbed_.transport("brecca");

  core::FileMultiplexer::Options options;
  options.host = "brecca";
  options.local_root = *dir;
  core::FileMultiplexer fm(options);

  AppKernel writer;
  writer.name = "writer";
  writer.work_units = 0.5;
  writer.timesteps = 4;
  writer.outputs = {{"data.bin", 100000}};
  auto report = run_app(writer, fm, **machine, testbed_.clock());
  ASSERT_TRUE(report.is_ok()) << report.status();
  EXPECT_EQ(report->bytes_written, 100000u);
  EXPECT_GT(report->elapsed_seconds(), 0.0);

  AppKernel reader;
  reader.name = "reader";
  reader.work_units = 0.5;
  reader.timesteps = 4;
  reader.inputs = {{"data.bin", 100000}};
  reader.verify_inputs = true;  // checks every byte against the generator
  auto read_report = run_app(reader, fm, **machine, testbed_.clock());
  ASSERT_TRUE(read_report.is_ok()) << read_report.status();
  EXPECT_EQ(read_report->bytes_read, 100000u);
}

TEST_F(RunAppTest, PrematureEofIsAnError) {
  auto machine = testbed_.machine("brecca");
  auto dir = testbed_.machine_dir("brecca");
  core::FileMultiplexer::Options options;
  options.host = "brecca";
  options.local_root = *dir;
  core::FileMultiplexer fm(options);

  AppKernel writer;
  writer.name = "short-writer";
  writer.outputs = {{"short.bin", 1000}};
  ASSERT_TRUE(run_app(writer, fm, **machine, testbed_.clock()).is_ok());

  AppKernel reader;
  reader.name = "greedy-reader";
  reader.inputs = {{"short.bin", 2000}};  // expects more than exists
  auto report = run_app(reader, fm, **machine, testbed_.clock());
  EXPECT_FALSE(report.is_ok());
  EXPECT_EQ(report.status().code(), ErrorCode::kIoError);
}

TEST_F(RunAppTest, RereadVerifiesFromStart) {
  auto machine = testbed_.machine("brecca");
  auto dir = testbed_.machine_dir("brecca");
  core::FileMultiplexer::Options options;
  options.host = "brecca";
  options.local_root = *dir;
  core::FileMultiplexer fm(options);

  AppKernel writer;
  writer.name = "w";
  writer.outputs = {{"rr.bin", 50000}};
  ASSERT_TRUE(run_app(writer, fm, **machine, testbed_.clock()).is_ok());

  AppKernel reader;
  reader.name = "r";
  reader.inputs = {{"rr.bin", 50000}};
  reader.reread_bytes = 20000;
  reader.verify_inputs = true;
  auto report = run_app(reader, fm, **machine, testbed_.clock());
  ASSERT_TRUE(report.is_ok()) << report.status();
  EXPECT_EQ(report->bytes_read, 70000u);  // full pass + re-read
}

TEST(PaperKernelsTest, CalibrationAnchors) {
  const auto climate = climate_pipeline();
  auto ccam = kernel_named(climate, "ccam");
  ASSERT_TRUE(ccam.is_ok());
  EXPECT_DOUBLE_EQ(ccam->work_units, 2800);  // the speed anchor
  auto darlam = kernel_named(climate, "darlam");
  ASSERT_TRUE(darlam.is_ok());
  EXPECT_GT(darlam->reread_bytes, 0u);  // §5.3's cache re-read

  // Calibration identity: C-CAM work / brecca speed == Table 3 time.
  auto brecca = testbed::find_machine("brecca");
  ASSERT_TRUE(brecca.is_ok());
  EXPECT_NEAR(ccam->work_units / brecca->speed, 994.0, 1.0);

  const auto durability = durability_pipeline();
  double total_work = 0;
  for (const auto& kernel : durability) total_work += kernel.work_units;
  auto jagan = testbed::find_machine("jagan");
  // Table 2 exp2 (pure pipelined compute on jagan) is ~89 minutes.
  EXPECT_NEAR(total_work / jagan->speed, 89 * 60 + 17, 400);
}

TEST(PaperKernelsTest, ByteScaleDividesSizes) {
  const auto full = climate_pipeline(1.0);
  const auto scaled = climate_pipeline(64.0);
  EXPECT_EQ(full[0].outputs[0].bytes / 64, scaled[0].outputs[0].bytes);
  // Work and steps unchanged.
  EXPECT_DOUBLE_EQ(full[0].work_units, scaled[0].work_units);
  EXPECT_EQ(full[0].timesteps, scaled[0].timesteps);
}

TEST(TestbedTest, PaperMachinesComplete) {
  EXPECT_EQ(testbed::paper_machines().size(), 7u);
  for (const char* name : {"dione", "jagan", "vpac27", "brecca", "freak",
                           "bouscat", "koume00"}) {
    auto machine = testbed::find_machine(name);
    ASSERT_TRUE(machine.is_ok()) << name;
    EXPECT_GT(machine->speed, 0) << name;
    EXPECT_GT(machine->disk_mb_per_s, 0) << name;
  }
  EXPECT_FALSE(testbed::find_machine("hal9000").is_ok());
}

TEST(TestbedTest, LinksAreSymmetricAndTiered) {
  auto dione = *testbed::find_machine("dione");   // Monash, AU
  auto jagan = *testbed::find_machine("jagan");   // Monash, AU
  auto brecca = *testbed::find_machine("brecca"); // VPAC, AU
  auto bouscat = *testbed::find_machine("bouscat");  // UK

  const auto lan = testbed::link_between(dione, jagan);
  const auto metro = testbed::link_between(dione, brecca);
  const auto wan = testbed::link_between(dione, bouscat);
  EXPECT_LT(lan.latency_s, metro.latency_s);
  EXPECT_LT(metro.latency_s, wan.latency_s);
  EXPECT_GT(lan.mb_per_s, metro.mb_per_s);
  EXPECT_GT(metro.mb_per_s, wan.mb_per_s);
  // Symmetry.
  const auto reverse = testbed::link_between(bouscat, dione);
  EXPECT_DOUBLE_EQ(wan.latency_s, reverse.latency_s);
}

TEST(TestbedTest, ProcessorSharingStretchesUnderLoad) {
  auto dir = TempDir::create("testbed-ps");
  testbed::TestbedRuntime testbed(0.001, dir->path().string());
  auto machine = *testbed.machine("brecca");

  // Solo: ~2 model seconds of work.
  const double work = machine->spec().speed * 2.0;
  const Duration solo_start = testbed.clock().now();
  machine->compute(work);
  const double solo = to_seconds_d(testbed.clock().now() - solo_start);
  EXPECT_NEAR(solo, 2.0, 0.5);

  // Two concurrent computations share the CPU: each takes ~2x as long.
  const Duration pair_start = testbed.clock().now();
  std::thread other([&] { machine->compute(work); });
  machine->compute(work);
  other.join();
  const double pair = to_seconds_d(testbed.clock().now() - pair_start);
  EXPECT_GT(pair, solo * 1.5);
  EXPECT_LT(pair, solo * 3.0);
}

TEST(TestbedTest, DiskSerializes) {
  auto dir = TempDir::create("testbed-disk");
  testbed::TestbedRuntime testbed(0.001, dir->path().string());
  auto machine = *testbed.machine("bouscat");  // 1.6 MB/s
  const Duration start = testbed.clock().now();
  // Transfers well above the sleep-batching threshold (2 model s at this
  // compression): 3 model seconds each.
  std::thread other([&] { machine->disk_transfer(1600 * 3000); });
  machine->disk_transfer(1600 * 3000);
  other.join();
  // Two 3-second transfers through one serial disk: ~6 model seconds.
  const double elapsed = to_seconds_d(testbed.clock().now() - start);
  EXPECT_GT(elapsed, 4.5);
}

TEST(TestbedTest, ByteScaleKeepsModelTimesInvariant) {
  auto dir = TempDir::create("testbed-scale");
  testbed::TestbedRuntime unscaled(0.001, dir->path().string(), 1.0);
  testbed::TestbedRuntime scaled(0.001, dir->path().string(), 64.0);
  auto m1 = *unscaled.machine("dione");
  auto m64 = *scaled.machine("dione");
  // Transferring scaled-down bytes costs the same model time.
  const Duration start1 = unscaled.clock().now();
  m1->disk_transfer(64 * 1000 * 1000);
  const double t1 = to_seconds_d(unscaled.clock().now() - start1);
  const Duration start64 = scaled.clock().now();
  m64->disk_transfer(1000 * 1000);
  const double t64 = to_seconds_d(scaled.clock().now() - start64);
  EXPECT_NEAR(t1, t64, 0.35 * t1);
}

}  // namespace
}  // namespace griddles::apps
