// Tests for the coupling-aware scheduler (the paper's §6 future work).
#include <gtest/gtest.h>

#include "src/apps/paper_apps.h"
#include "src/desim/predict.h"
#include "src/sched/scheduler.h"

namespace griddles::workflow {
namespace {

apps::AppKernel make_kernel(const std::string& name, double work,
                            std::vector<apps::StreamSpec> inputs,
                            std::vector<apps::StreamSpec> outputs) {
  apps::AppKernel kernel;
  kernel.name = name;
  kernel.work_units = work;
  kernel.timesteps = 10;
  kernel.inputs = std::move(inputs);
  kernel.outputs = std::move(outputs);
  return kernel;
}

TEST(SchedulerTest, SingleHeavyTaskGoesToFastestMachine) {
  std::vector<apps::AppKernel> pipeline = {
      make_kernel("solver", 1000, {}, {{"out", 1000}})};
  Scheduler::Options options;
  options.runner.mode = CouplingMode::kSequentialFiles;
  auto result = Scheduler::schedule(
      "one", pipeline, {"jagan", "vpac27", "brecca", "bouscat"}, options);
  ASSERT_TRUE(result.is_ok()) << result.status();
  EXPECT_EQ(result->machines, std::vector<std::string>{"brecca"});
}

TEST(SchedulerTest, CouplingChangesTheAssignment) {
  // A compute-light stage pair moving a huge intermediate: with buffers,
  // spreading across a WAN pays the latency-bound stream; with
  // sequential+copy it pays a bulk copy. The scheduler must recognize
  // that placing both stages on one fast machine avoids the WAN
  // entirely whenever the movement dominates.
  constexpr std::uint64_t kBig = 400u * 1000 * 1000;
  std::vector<apps::AppKernel> pipeline = {
      make_kernel("produce", 200, {}, {{"big.dat", kBig}}),
      make_kernel("consume", 200, {{"big.dat", kBig}}, {{"tiny", 1000}}),
  };
  Scheduler::Options options;
  options.runner.mode = CouplingMode::kGridBuffers;
  auto buffered = Scheduler::schedule("b", pipeline, {"brecca", "freak"},
                                      options);
  ASSERT_TRUE(buffered.is_ok()) << buffered.status();
  // Both stages land on brecca: streaming 400 MB across the AU-US link
  // at a latency-bound ~50 KB/s would take hours.
  EXPECT_EQ(buffered->machines[0], "brecca");
  EXPECT_EQ(buffered->machines[1], "brecca");
  EXPECT_EQ(buffered->candidates_scored, 4u);  // exhaustive 2^2
}

TEST(SchedulerTest, DistributionWinsWhenComputeDominates) {
  // Table 2 exp3's lesson: with cheap links and heavy unequal stages,
  // spreading across machines beats any single machine.
  std::vector<apps::AppKernel> pipeline = {
      make_kernel("a", 2000, {}, {{"x", 1000 * 1000}}),
      make_kernel("b", 2000, {{"x", 1000 * 1000}}, {{"y", 1000 * 1000}}),
  };
  Scheduler::Options options;
  options.runner.mode = CouplingMode::kGridBuffers;
  // dione and brecca share cheap AU links.
  auto result =
      Scheduler::schedule("d", pipeline, {"dione", "brecca"}, options);
  ASSERT_TRUE(result.is_ok()) << result.status();
  // Two equal heavy stages: the schedule uses BOTH machines.
  EXPECT_NE(result->machines[0], result->machines[1]);
}

TEST(SchedulerTest, GreedyFallbackOnLargeSpaces) {
  // 5 stages x 7 machines = 16807 combos; with a tiny exhaustive limit
  // the greedy path must still produce a valid, scored schedule.
  auto pipeline = apps::durability_pipeline(1000.0);
  Scheduler::Options options;
  options.runner.mode = CouplingMode::kGridBuffers;
  options.exhaustive_limit = 100;
  std::vector<std::string> all = {"dione", "jagan", "vpac27", "brecca",
                                  "freak", "bouscat", "koume00"};
  auto result = Scheduler::schedule("g", pipeline, all, options);
  ASSERT_TRUE(result.is_ok()) << result.status();
  EXPECT_EQ(result->machines.size(), 5u);
  EXPECT_LT(result->predicted_seconds,
            std::numeric_limits<double>::infinity());
  EXPECT_LE(result->candidates_scored, 5u * 7u);
}

TEST(SchedulerTest, RejectsBadInputs) {
  Scheduler::Options options;
  EXPECT_FALSE(Scheduler::schedule("x", {}, {"brecca"}, options).is_ok());
  auto pipeline = apps::climate_pipeline(1000.0);
  EXPECT_FALSE(Scheduler::schedule("x", pipeline, {}, options).is_ok());
  EXPECT_FALSE(
      Scheduler::schedule("x", pipeline, {"skynet"}, options).is_ok());
}

TEST(SchedulerTest, BeatsTheWorstAssignmentForClimate) {
  auto pipeline = apps::climate_pipeline(1.0);
  Scheduler::Options options;
  options.runner.mode = CouplingMode::kGridBuffers;
  auto best = Scheduler::schedule(
      "c", pipeline, {"brecca", "bouscat", "vpac27"}, options);
  ASSERT_TRUE(best.is_ok()) << best.status();
  // Compare with an intentionally poor choice: everything on bouscat.
  auto spec = WorkflowSpec::from_pipeline("c", pipeline, {"bouscat"});
  ASSERT_TRUE(spec.is_ok());
  auto poor = desim::predict(*spec, options.runner);
  ASSERT_TRUE(poor.is_ok());
  EXPECT_LT(best->predicted_seconds, poor->total_seconds);
}

}  // namespace
}  // namespace griddles::workflow
