// Tests for the multicast distribution subsystem (DESIGN.md §12): the
// spanning-tree planner, the relay wire format, FileCopier::copy_to_many
// through recruited FileServer relays (including relay deaths repaired
// mid-transfer), Grid Buffer broadcast channels, and the workflow
// runner's use of both.
#include <gtest/gtest.h>

#include <filesystem>

#include "src/apps/paper_apps.h"
#include "src/common/tempfile.h"
#include "src/fault/plan.h"
#include "src/gridbuffer/client.h"
#include "src/gridbuffer/server.h"
#include "src/multicast/dist_tree.h"
#include "src/multicast/relay.h"
#include "src/net/inproc.h"
#include "src/obs/metrics.h"
#include "src/remote/copier.h"
#include "src/remote/file_server.h"
#include "src/vfs/local_client.h"
#include "src/workflow/checkpoint.h"
#include "src/workflow/runner.h"

namespace griddles {
namespace {

std::uint64_t counter_value(const char* name) {
  return obs::MetricsRegistry::global().counter(name).value();
}

/// Arms a fault plan for the test body and disarms on scope exit.
struct ArmedPlan {
  std::shared_ptr<fault::Plan> plan;

  explicit ArmedPlan(const std::string& spec) {
    auto parsed = fault::Plan::parse(spec);
    EXPECT_TRUE(parsed.is_ok()) << parsed.status();
    if (parsed.is_ok()) {
      plan = *parsed;
      fault::arm(plan);
    }
  }
  ~ArmedPlan() { fault::disarm(); }
};

/// Every pair looks the same: planning degenerates to balanced
/// level-filling with deterministic name tie-breaks.
multicast::PairEstimator flat_estimator() {
  return [](const std::string&, const std::string&)
             -> Result<nws::LinkEstimate> {
    return nws::LinkEstimate{0.001, 1e8};
  };
}

Bytes pattern(std::size_t n) {
  Bytes out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<std::byte>(i * 131 + 7);
  }
  return out;
}

// ---------------------------------------------------------------------
// Planner.

TEST(DistTreeTest, FanoutBoundsRespected) {
  std::vector<std::string> dests;
  for (int i = 0; i < 20; ++i) dests.push_back("h" + std::to_string(i));
  multicast::TreeOptions options;
  options.root_fanout = 2;
  options.max_fanout = 3;
  auto tree = multicast::plan_tree("src", dests, flat_estimator(), options);
  ASSERT_TRUE(tree.is_ok()) << tree.status();
  ASSERT_EQ(tree->nodes.size(), 21u);
  EXPECT_LE(tree->source().children.size(), 2u);
  std::set<std::string> placed;
  for (std::size_t i = 1; i < tree->nodes.size(); ++i) {
    const multicast::TreeNode& node = tree->nodes[i];
    EXPECT_LE(node.children.size(), 3u);
    EXPECT_GE(node.parent, 0);
    EXPECT_TRUE(placed.insert(node.host).second) << node.host;
  }
  EXPECT_EQ(placed.size(), dests.size());
  EXPECT_GE(tree->depth, 2);
}

TEST(DistTreeTest, DeterministicReplanning) {
  std::vector<std::string> dests = {"e", "a", "d", "b", "c", "g", "f"};
  multicast::TreeOptions options;
  options.max_fanout = 2;
  auto first = multicast::plan_tree("src", dests, flat_estimator(), options);
  auto second =
      multicast::plan_tree("src", dests, flat_estimator(), options);
  ASSERT_TRUE(first.is_ok());
  ASSERT_TRUE(second.is_ok());
  ASSERT_EQ(first->nodes.size(), second->nodes.size());
  for (std::size_t i = 0; i < first->nodes.size(); ++i) {
    EXPECT_EQ(first->nodes[i].host, second->nodes[i].host);
    EXPECT_EQ(first->nodes[i].parent, second->nodes[i].parent);
    EXPECT_EQ(first->nodes[i].children, second->nodes[i].children);
  }
}

TEST(DistTreeTest, CheapLinkBecomesFirstHop) {
  // One destination with a far better link from the source should be
  // recruited as a root child, not buried under a slow peer.
  auto estimator = [](const std::string& src, const std::string& dst)
      -> Result<nws::LinkEstimate> {
    if (src == "src" && dst == "near") {
      return nws::LinkEstimate{0.0001, 1e9};
    }
    return nws::LinkEstimate{0.2, 1e6};
  };
  multicast::TreeOptions options;
  options.root_fanout = 1;
  auto tree = multicast::plan_tree("src", {"far1", "far2", "near"},
                                   estimator, options);
  ASSERT_TRUE(tree.is_ok());
  ASSERT_EQ(tree->source().children.size(), 1u);
  EXPECT_EQ(tree->nodes[tree->source().children[0]].host, "near");
}

TEST(DistTreeTest, EstimatorFailureDegradesToUniform) {
  const std::uint64_t before = counter_value("multicast.plan.uniform");
  auto broken = [](const std::string&, const std::string&)
      -> Result<nws::LinkEstimate> {
    return unavailable("all sensors down");
  };
  auto tree = multicast::plan_tree("src", {"a", "b", "c"}, broken,
                                   multicast::TreeOptions{});
  ASSERT_TRUE(tree.is_ok()) << tree.status();
  EXPECT_TRUE(tree->uniform_fallback);
  EXPECT_EQ(tree->nodes.size(), 4u);
  EXPECT_EQ(counter_value("multicast.plan.uniform"), before + 1);
}

TEST(DistTreeTest, RejectsSourceAndDuplicateDestinations) {
  auto with_source = multicast::plan_tree("src", {"a", "src"},
                                          flat_estimator(), {});
  EXPECT_EQ(with_source.status().code(), ErrorCode::kInvalidArgument);
  auto with_dup =
      multicast::plan_tree("src", {"a", "a"}, flat_estimator(), {});
  EXPECT_EQ(with_dup.status().code(), ErrorCode::kInvalidArgument);
  multicast::TreeOptions bad;
  bad.root_fanout = 0;
  EXPECT_EQ(multicast::plan_tree("src", {"a"}, flat_estimator(), bad)
                .status()
                .code(),
            ErrorCode::kInvalidArgument);
}

TEST(DistTreeTest, EmptyDestinationsYieldSourceOnlyTree) {
  auto tree = multicast::plan_tree("src", {}, flat_estimator(), {});
  ASSERT_TRUE(tree.is_ok());
  EXPECT_EQ(tree->nodes.size(), 1u);
  EXPECT_EQ(tree->depth, 0);
  EXPECT_TRUE(tree->relay_hosts().empty());
}

// ---------------------------------------------------------------------
// Relay wire format.

TEST(RelayWireTest, NodeRoundTrip) {
  multicast::RelayNode leaf{"c1", "inproc://c1/fs", "out/f.bin", 2, {}};
  multicast::RelayNode node{"b", "inproc://b/fs", "out/f.bin", 0, {leaf}};
  xdr::Encoder enc;
  multicast::encode_node(enc, node);
  xdr::Decoder dec(enc.buffer());
  auto back = multicast::decode_node(dec);
  ASSERT_TRUE(back.is_ok()) << back.status();
  EXPECT_EQ(back->host, "b");
  EXPECT_EQ(back->path, "out/f.bin");
  ASSERT_EQ(back->children.size(), 1u);
  EXPECT_EQ(back->children[0].host, "c1");
  EXPECT_EQ(back->children[0].readers, 2u);
  EXPECT_EQ(back->subtree_size(), 2u);
}

TEST(RelayWireTest, DepthBombRejected) {
  // A chain deeper than kMaxRelayDepth must fail to decode rather than
  // recurse without bound.
  multicast::RelayNode chain{"h0", "e", "p", 0, {}};
  for (int i = 1; i < multicast::kMaxRelayDepth + 4; ++i) {
    multicast::RelayNode next{"h" + std::to_string(i), "e", "p", 0, {}};
    next.children.push_back(std::move(chain));
    chain = std::move(next);
  }
  xdr::Encoder enc;
  multicast::encode_node(enc, chain);
  xdr::Decoder dec(enc.buffer());
  EXPECT_FALSE(multicast::decode_node(dec).is_ok());
}

// ---------------------------------------------------------------------
// copy_to_many through FileServer relays.

class MulticastCopyTest : public ::testing::Test {
 protected:
  static constexpr int kHosts = 8;

  MulticastCopyTest()
      : dir_(*TempDir::create("mcast-test")), network_(clock_) {
    source_transport_ = network_.transport("src");
    for (int i = 0; i < kHosts; ++i) {
      const std::string host = host_name(i);
      transports_.push_back(network_.transport(host));
      servers_.push_back(std::make_unique<remote::FileServer>(
          dir_.file("export-" + host), *transports_.back(),
          net::inproc_endpoint(host, "fs")));
      EXPECT_TRUE(servers_.back()->start().is_ok());
    }
  }
  ~MulticastCopyTest() override {
    for (auto& server : servers_) server->stop();
  }

  static std::string host_name(int i) {
    return "n" + std::to_string(i);
  }

  std::vector<remote::MultiCopyTarget> targets(int n) const {
    std::vector<remote::MultiCopyTarget> out;
    for (int i = 0; i < n; ++i) {
      out.push_back({host_name(i), servers_[i]->endpoint(),
                     "stage/pay.bin"});
    }
    return out;
  }

  /// Path where host i's FileServer materialized the staged file.
  std::string delivered(int i) const {
    return (servers_[i]->root() / "stage/pay.bin").string();
  }

  std::string make_source(std::size_t bytes) {
    const std::string path = dir_.file("pay.bin").string();
    EXPECT_TRUE(vfs::write_file(path, pattern(bytes)).is_ok());
    return path;
  }

  TempDir dir_;
  RealClock clock_;
  net::InProcNetwork network_;
  std::unique_ptr<net::Transport> source_transport_;
  std::vector<std::unique_ptr<net::Transport>> transports_;
  std::vector<std::unique_ptr<remote::FileServer>> servers_;
};

TEST_F(MulticastCopyTest, DeliversToEveryDestinationThroughRelays) {
  constexpr std::size_t kSize = 1024 * 1024 + 7;
  const std::string local = make_source(kSize);
  remote::FileCopier::Options options;
  options.chunk_size = 128 * 1024;
  remote::FileCopier copier(*source_transport_, clock_, options);
  auto stats = copier.copy_to_many(local, targets(kHosts), {},
                                   flat_estimator());
  ASSERT_TRUE(stats.is_ok()) << stats.status();
  EXPECT_EQ(stats->bytes, kSize);
  EXPECT_EQ(stats->destinations, kHosts);
  EXPECT_GE(stats->tree_depth, 2);
  EXPECT_EQ(stats->reparents, 0);
  // The multicast headline: the source pushes each block once per root
  // child (root_fanout = 2), not once per destination.
  EXPECT_EQ(stats->source_bytes_sent, 2 * kSize);
  const std::uint64_t want = *workflow::hash_file(local);
  for (int i = 0; i < kHosts; ++i) {
    EXPECT_EQ(*workflow::hash_file(delivered(i)), want) << host_name(i);
  }
}

TEST_F(MulticastCopyTest, EmptyDestinationListIsNoOp) {
  const std::string local = make_source(1000);
  const std::uint64_t bytes_before = counter_value("remote.copy.bytes");
  remote::FileCopier copier(*source_transport_, clock_);
  auto stats = copier.copy_to_many(local, {}, {}, flat_estimator());
  ASSERT_TRUE(stats.is_ok());
  EXPECT_EQ(stats->destinations, 0);
  EXPECT_EQ(stats->bytes, 0u);
  EXPECT_EQ(counter_value("remote.copy.bytes"), bytes_before);
}

TEST_F(MulticastCopyTest, SingleDestinationMatchesPlainPush) {
  constexpr std::size_t kSize = 300 * 1000;
  const std::string local = make_source(kSize);
  const std::uint64_t bytes_before = counter_value("remote.copy.bytes");
  const std::uint64_t advice_before =
      counter_value("advisor.decisions.copy") +
      counter_value("advisor.decisions.proxy");
  remote::FileCopier copier(*source_transport_, clock_);
  auto stats = copier.copy_to_many(local, targets(1), {}, flat_estimator());
  ASSERT_TRUE(stats.is_ok()) << stats.status();
  EXPECT_EQ(stats->destinations, 1);
  EXPECT_EQ(stats->bytes, kSize);
  EXPECT_EQ(stats->source_bytes_sent, kSize);
  // Exactly the telemetry a plain push() would record: one copy sample,
  // no advisor decision.
  EXPECT_EQ(counter_value("remote.copy.bytes"), bytes_before + kSize);
  EXPECT_EQ(counter_value("advisor.decisions.copy") +
                counter_value("advisor.decisions.proxy"),
            advice_before);
  EXPECT_EQ(*workflow::hash_file(delivered(0)),
            *workflow::hash_file(local));
}

TEST_F(MulticastCopyTest, DuplicateDestinationsCollapse) {
  const std::string local = make_source(50 * 1000);
  const std::uint64_t dups_before = counter_value("multicast.duplicates");
  auto dests = targets(1);
  dests.push_back(dests.front());
  remote::FileCopier copier(*source_transport_, clock_);
  auto stats = copier.copy_to_many(local, dests, {}, flat_estimator());
  ASSERT_TRUE(stats.is_ok()) << stats.status();
  EXPECT_EQ(stats->destinations, 1);
  EXPECT_EQ(counter_value("multicast.duplicates"), dups_before + 1);
  EXPECT_EQ(*workflow::hash_file(delivered(0)),
            *workflow::hash_file(local));
}

TEST_F(MulticastCopyTest, SameHostDifferentPathRejected) {
  const std::string local = make_source(1000);
  auto dests = targets(1);
  auto conflicting = dests.front();
  conflicting.remote_path = "stage/other.bin";
  dests.push_back(conflicting);
  remote::FileCopier copier(*source_transport_, clock_);
  auto stats = copier.copy_to_many(local, dests, {}, flat_estimator());
  EXPECT_EQ(stats.status().code(), ErrorCode::kInvalidArgument);
}

TEST_F(MulticastCopyTest, OneAdvisorDecisionPerDistribution) {
  const std::string local = make_source(400 * 1000);
  const std::uint64_t copy_before = counter_value("advisor.decisions.copy");
  const std::uint64_t proxy_before =
      counter_value("advisor.decisions.proxy");
  const std::uint64_t bytes_before = counter_value("remote.copy.bytes");
  remote::FileCopier copier(*source_transport_, clock_);
  auto stats = copier.copy_to_many(local, targets(4), {}, flat_estimator());
  ASSERT_TRUE(stats.is_ok()) << stats.status();
  // Four destinations, ONE logical decision and ONE copy sample — the
  // N-fold double-count this API exists to prevent.
  EXPECT_EQ(counter_value("advisor.decisions.copy") +
                counter_value("advisor.decisions.proxy") - copy_before -
                proxy_before,
            1u);
  EXPECT_EQ(counter_value("remote.copy.bytes"),
            bytes_before + 400 * 1000);
}

TEST_F(MulticastCopyTest, KillingEachInteriorRelayStillDelivers) {
  constexpr std::size_t kSize = 512 * 1024 + 11;
  const std::string local = make_source(kSize);
  const std::uint64_t want = *workflow::hash_file(local);

  // Plan the same tree copy_to_many will (same inputs, deterministic
  // planner) to learn which hosts serve as interior relays.
  multicast::TreeOptions tree_options;
  tree_options.root_fanout = 2;
  tree_options.max_fanout = 2;
  std::vector<std::string> hosts;
  for (int i = 0; i < kHosts; ++i) hosts.push_back(host_name(i));
  auto planned =
      multicast::plan_tree("src", hosts, flat_estimator(), tree_options);
  ASSERT_TRUE(planned.is_ok());
  const std::vector<std::string> relays = planned->relay_hosts();
  ASSERT_GE(relays.size(), 2u) << "fanout 2 over 8 hosts needs relays";

  remote::FileCopier::Options options;
  options.chunk_size = 64 * 1024;
  for (std::size_t k = 0; k < relays.size(); ++k) {
    SCOPED_TRACE("dead relay " + relays[k]);
    const std::uint64_t reparents_before =
        counter_value("multicast.reparents");
    ArmedPlan armed("seed=" + std::to_string(7 + k) + ";die@relay:" +
                    relays[k]);
    remote::FileCopier copier(*source_transport_, clock_, options);
    auto stats = copier.copy_to_many(local, targets(kHosts), tree_options,
                                     flat_estimator());
    ASSERT_TRUE(stats.is_ok()) << stats.status();
    EXPECT_GE(stats->reparents, 1);
    EXPECT_GT(counter_value("multicast.reparents"), reparents_before);
    // Every destination — including the dead relay itself, repaired with
    // a direct push — holds the full file.
    for (int i = 0; i < kHosts; ++i) {
      EXPECT_EQ(*workflow::hash_file(delivered(i)), want) << host_name(i);
    }
  }
}

// ---------------------------------------------------------------------
// Grid Buffer broadcast channels.

class BroadcastBufferTest : public ::testing::Test {
 protected:
  static constexpr int kMachines = 3;

  BroadcastBufferTest()
      : dir_(*TempDir::create("bcast-test")), network_(clock_) {
    client_transport_ = network_.transport("client");
    for (int i = 0; i < kMachines; ++i) {
      const std::string host = "m" + std::to_string(i);
      transports_.push_back(network_.transport(host));
      servers_.push_back(std::make_unique<gridbuffer::GridBufferServer>(
          dir_.file("cache-" + host).string(), *transports_.back(),
          net::inproc_endpoint(host, "gbuf")));
      EXPECT_TRUE(servers_.back()->start().is_ok());
    }
  }
  ~BroadcastBufferTest() override {
    for (auto& server : servers_) server->stop();
  }

  /// Chains m0 -> m1 -> m2: writes into m0 relay through m1 to m2.
  void install_chain(const std::string& channel) {
    gridbuffer::ChannelConfig config;
    config.expected_readers = 1;
    multicast::RelayNode m2{"m2", servers_[2]->endpoint().to_string(),
                            channel, 1, {}};
    multicast::RelayNode m1{"m1", servers_[1]->endpoint().to_string(),
                            channel, 1, {m2}};
    servers_[0]->set_broadcast(channel, config, {m1});
  }

  Bytes read_all_from(int machine, const std::string& channel) {
    auto reader = gridbuffer::GridBufferReader::open(
        *client_transport_, servers_[machine]->endpoint(), channel);
    EXPECT_TRUE(reader.is_ok()) << reader.status();
    Bytes out;
    Bytes buffer(8192);
    while (true) {
      auto n = (*reader)->read({buffer.data(), buffer.size()});
      EXPECT_TRUE(n.is_ok()) << n.status();
      if (!n.is_ok() || *n == 0) break;
      out.insert(out.end(), buffer.begin(),
                 buffer.begin() + static_cast<std::ptrdiff_t>(*n));
    }
    EXPECT_TRUE((*reader)->close().is_ok());
    return out;
  }

  TempDir dir_;
  RealClock clock_;
  net::InProcNetwork network_;
  std::unique_ptr<net::Transport> client_transport_;
  std::vector<std::unique_ptr<net::Transport>> transports_;
  std::vector<std::unique_ptr<gridbuffer::GridBufferServer>> servers_;
};

TEST_F(BroadcastBufferTest, ChainDeliversWholeStreamToEveryMachine) {
  install_chain("bc");
  const Bytes data = pattern(3 * 4096 + 1000);
  auto writer = gridbuffer::GridBufferWriter::open(
      *client_transport_, servers_[0]->endpoint(), "bc");
  ASSERT_TRUE(writer.is_ok()) << writer.status();
  ASSERT_TRUE((*writer)->write(data).is_ok());
  ASSERT_TRUE((*writer)->close().is_ok());
  // Every machine's local channel saw the full stream and the EOF.
  for (int machine = 0; machine < kMachines; ++machine) {
    SCOPED_TRACE("machine m" + std::to_string(machine));
    EXPECT_EQ(read_all_from(machine, "bc"), data);
  }
}

TEST_F(BroadcastBufferTest, DeadRelayMachineIsAdoptedByParent) {
  install_chain("bd");
  const std::uint64_t dead_before = counter_value("multicast.relay.dead");
  ArmedPlan armed("seed=11;die@relay:m1");
  const Bytes data = pattern(2 * 4096 + 77);
  auto writer = gridbuffer::GridBufferWriter::open(
      *client_transport_, servers_[0]->endpoint(), "bd");
  ASSERT_TRUE(writer.is_ok()) << writer.status();
  ASSERT_TRUE((*writer)->write(data).is_ok());
  ASSERT_TRUE((*writer)->close().is_ok());
  // m1 is dead as a relay, so m0 adopts its child: m2 still sees the
  // full stream (m1's own readers are the documented loss).
  EXPECT_EQ(read_all_from(0, "bd"), data);
  EXPECT_EQ(read_all_from(2, "bd"), data);
  EXPECT_GT(counter_value("multicast.relay.dead"), dead_before);
}

// ---------------------------------------------------------------------
// Workflow runner integration.

apps::AppKernel make_kernel(const std::string& name, double work,
                            std::vector<apps::StreamSpec> inputs,
                            std::vector<apps::StreamSpec> outputs) {
  apps::AppKernel kernel;
  kernel.name = name;
  kernel.work_units = work;
  kernel.timesteps = 8;
  kernel.inputs = std::move(inputs);
  kernel.outputs = std::move(outputs);
  kernel.verify_inputs = true;  // every consumer checks content integrity
  return kernel;
}

/// One producer on brecca fanning one file out to consumers on other
/// paper machines.
workflow::WorkflowSpec fan_spec(const std::vector<std::string>& machines,
                                std::uint64_t bytes) {
  workflow::WorkflowSpec spec;
  spec.name = "mfan";
  spec.tasks.push_back(workflow::TaskSpec{
      make_kernel("src", 3, {}, {{"shared.dat", bytes}}), "brecca"});
  for (std::size_t i = 0; i < machines.size(); ++i) {
    const std::string name = "sink" + std::to_string(i);
    spec.tasks.push_back(workflow::TaskSpec{
        make_kernel(name, 2, {{"shared.dat", bytes}},
                    {{name + ".out", 100}}),
        machines[i]});
  }
  return spec;
}

class RunnerMulticastTest : public ::testing::Test {
 protected:
  RunnerMulticastTest() : dir_(*TempDir::create("wf-mcast")) {}

  testbed::TestbedRuntime make_testbed() {
    return testbed::TestbedRuntime(0.0002, dir_.path().string(),
                                   /*byte_scale=*/1.0);
  }

  TempDir dir_;
};

TEST_F(RunnerMulticastTest, SequentialStagingUsesOneTreeForTwoConsumers) {
  auto testbed = make_testbed();
  workflow::WorkflowRunner runner(testbed);
  const auto spec = fan_spec({"dione", "freak"}, 120 * 1000);
  workflow::WorkflowRunner::Options options;
  options.mode = workflow::CouplingMode::kSequentialFiles;
  auto report = runner.run(spec, options);
  ASSERT_TRUE(report.is_ok()) << report.status();
  EXPECT_EQ(report->tasks.size(), 3u);
  // One CopyResult per destination, both finishing with the tree.
  ASSERT_EQ(report->copies.size(), 2u);
  std::set<std::string> to;
  for (const auto& copy : report->copies) {
    EXPECT_EQ(copy.path, "shared.dat");
    EXPECT_EQ(copy.from, "brecca");
    to.insert(copy.to);
  }
  EXPECT_EQ(to, (std::set<std::string>{"dione", "freak"}));
}

TEST_F(RunnerMulticastTest, FanoutZeroFallsBackToPointToPoint) {
  auto testbed = make_testbed();
  workflow::WorkflowRunner runner(testbed);
  const auto spec = fan_spec({"dione", "freak"}, 80 * 1000);
  workflow::WorkflowRunner::Options options;
  options.mode = workflow::CouplingMode::kSequentialFiles;
  options.multicast_fanout = 0;
  auto report = runner.run(spec, options);
  ASSERT_TRUE(report.is_ok()) << report.status();
  EXPECT_EQ(report->copies.size(), 2u);
}

TEST_F(RunnerMulticastTest, SequentialStagingSurvivesRelayDeaths) {
  // Kill EVERY relay: each consumer refuses to forward (and even to
  // accept) relay chunks, so the source repairs all of them with direct
  // pushes — verify_inputs then proves every byte still arrived.
  auto testbed = make_testbed();
  ArmedPlan armed("seed=3;die@relay:*");
  const std::uint64_t reparents_before =
      counter_value("multicast.reparents");
  workflow::WorkflowRunner runner(testbed);
  const auto spec = fan_spec({"dione", "freak", "bouscat"}, 90 * 1000);
  workflow::WorkflowRunner::Options options;
  options.mode = workflow::CouplingMode::kSequentialFiles;
  auto report = runner.run(spec, options);
  ASSERT_TRUE(report.is_ok()) << report.status();
  EXPECT_EQ(report->tasks.size(), 4u);
  EXPECT_EQ(report->copies.size(), 3u);
  EXPECT_GT(counter_value("multicast.reparents"), reparents_before);
}

TEST_F(RunnerMulticastTest, GridBufferBroadcastAcrossThreeMachines) {
  auto testbed = make_testbed();
  workflow::WorkflowRunner runner(testbed);
  const auto spec = fan_spec({"dione", "freak", "bouscat"}, 60 * 1000);
  workflow::WorkflowRunner::Options options;
  options.mode = workflow::CouplingMode::kGridBuffers;
  auto report = runner.run(spec, options);
  ASSERT_TRUE(report.is_ok()) << report.status();
  EXPECT_EQ(report->tasks.size(), 4u);
  EXPECT_TRUE(report->copies.empty());
  // verify_inputs=true on every sink already proved the broadcast
  // delivered identical bytes to all three consumer machines.
}

}  // namespace
}  // namespace griddles
