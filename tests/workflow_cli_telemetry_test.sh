#!/usr/bin/env bash
# Exit-code contract of workflow_cli's telemetry flags (workflow_cli.cpp):
#   2  unwritable --metrics/--trace/--spans path, probed before the run
#   3  the run succeeded but a telemetry dump failed
#   0  run and all requested dumps succeeded
# Usage: workflow_cli_telemetry_test.sh <workflow_cli-binary> <repo-root>
set -u
cli="$(realpath "$1")"
repo="$(realpath "$2")"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

fail() { echo "FAIL: $*" >&2; exit 1; }

# An unwritable telemetry path must be rejected up front with exit 2 and
# a message naming the path — not a successful run with a lost report.
"$cli" --demo --metrics="$tmp/no-such-dir/m.json" \
    >/dev/null 2>"$tmp/err" && fail "unwritable --metrics exited 0"
code=$?
[ "$code" -eq 2 ] || fail "unwritable --metrics: expected exit 2, got $code"
grep -q "no-such-dir/m.json" "$tmp/err" \
    || fail "stderr does not name the bad path: $(cat "$tmp/err")"

"$cli" --demo --spans="$tmp/no-such-dir/s.json" >/dev/null 2>&1
[ $? -eq 2 ] || fail "unwritable --spans: expected exit 2"

# Happy path: all three telemetry files land and parse.
(cd "$tmp" && "$cli" --demo --metrics=m.json --trace=t.jsonl \
    --spans=s.json >/dev/null 2>&1) || fail "demo run failed"
for f in m.json t.jsonl s.json; do
  [ -s "$tmp/$f" ] || fail "$f missing or empty"
done
python3 -c "import json,sys; json.load(open(sys.argv[1]))" "$tmp/m.json" \
    || fail "metrics json does not parse"
python3 -c "
import json, sys
doc = json.load(open(sys.argv[1]))
events = doc['traceEvents']
assert events, 'no spans in demo run'
assert any(e['cat'] == 'workflow' for e in events), 'no workflow root span'
" "$tmp/s.json" || fail "spans json malformed"

# The analyzer must accept a real span file end to end.
python3 "$repo/tools/tracepath.py" "$tmp/s.json" >/dev/null \
    || fail "tracepath.py rejected the demo spans"

echo "workflow_cli telemetry contract OK"
