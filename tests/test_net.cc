// Tests for endpoints, transports (in-process and TCP), link shaping,
// RPC, and the SOAP codec.
#include <gtest/gtest.h>

#include <thread>

#include "src/common/clock.h"
#include "src/net/endpoint.h"
#include "src/net/inproc.h"
#include "src/net/rpc.h"
#include "src/net/soap.h"
#include "src/net/tcp.h"
#include "src/xdr/codec.h"
#include "tests/test_scaling.h"

namespace griddles::net {
namespace {

TEST(EndpointTest, ParsesInproc) {
  auto ep = Endpoint::parse("inproc://dione/gns");
  ASSERT_TRUE(ep.is_ok());
  EXPECT_EQ(ep->scheme, "inproc");
  EXPECT_EQ(ep->host, "dione");
  EXPECT_EQ(ep->service, "gns");
  EXPECT_EQ(ep->to_string(), "inproc://dione/gns");
}

TEST(EndpointTest, ParsesTcp) {
  auto ep = Endpoint::parse("tcp://127.0.0.1:9031");
  ASSERT_TRUE(ep.is_ok());
  EXPECT_TRUE(ep->is_tcp());
  EXPECT_EQ(ep->port().value(), 9031);
  EXPECT_EQ(ep->to_string(), "tcp://127.0.0.1:9031");
}

TEST(EndpointTest, RejectsMalformed) {
  EXPECT_FALSE(Endpoint::parse("dione/gns").is_ok());
  EXPECT_FALSE(Endpoint::parse("inproc://nohost").is_ok());
  EXPECT_FALSE(Endpoint::parse("tcp://1.2.3.4").is_ok());
  EXPECT_FALSE(Endpoint::parse("tcp://h:99999").is_ok());
}

TEST(InProcTest, ConnectSendReceive) {
  RealClock clock;
  InProcNetwork network(clock);
  auto server_t = network.transport("dione");
  auto client_t = network.transport("jagan");

  auto listener = server_t->listen(inproc_endpoint("dione", "echo"));
  ASSERT_TRUE(listener.is_ok());

  std::thread server([&] {
    auto conn = (*listener)->accept();
    ASSERT_TRUE(conn.is_ok());
    auto msg = (*conn)->recv();
    ASSERT_TRUE(msg.is_ok());
    ASSERT_TRUE((*conn)->send(*msg).is_ok());
  });

  auto conn = client_t->connect(inproc_endpoint("dione", "echo"));
  ASSERT_TRUE(conn.is_ok());
  ASSERT_TRUE((*conn)->send(as_bytes_view("ping")).is_ok());
  auto reply = (*conn)->recv();
  ASSERT_TRUE(reply.is_ok());
  EXPECT_EQ(to_string(*reply), "ping");
  server.join();
}

TEST(InProcTest, ConnectToMissingServiceFails) {
  RealClock clock;
  InProcNetwork network(clock);
  auto transport = network.transport("dione");
  auto conn = transport->connect(inproc_endpoint("dione", "ghost"));
  EXPECT_FALSE(conn.is_ok());
  EXPECT_EQ(conn.status().code(), ErrorCode::kUnavailable);
}

TEST(InProcTest, DuplicateBindRejected) {
  RealClock clock;
  InProcNetwork network(clock);
  auto transport = network.transport("dione");
  auto first = transport->listen(inproc_endpoint("dione", "svc"));
  ASSERT_TRUE(first.is_ok());
  auto second = transport->listen(inproc_endpoint("dione", "svc"));
  EXPECT_FALSE(second.is_ok());
  (*first)->close();
}

TEST(InProcTest, RecvTimesOut) {
  RealClock clock;
  InProcNetwork network(clock);
  auto transport = network.transport("dione");
  auto listener = transport->listen(inproc_endpoint("dione", "slow"));
  ASSERT_TRUE(listener.is_ok());
  auto conn = transport->connect(inproc_endpoint("dione", "slow"));
  ASSERT_TRUE(conn.is_ok());
  auto got = (*conn)->recv_until(WallClock::now() +
                                 std::chrono::milliseconds(30));
  EXPECT_FALSE(got.is_ok());
  EXPECT_EQ(got.status().code(), ErrorCode::kTimeout);
}

TEST(InProcTest, CloseUnblocksReceiver) {
  RealClock clock;
  InProcNetwork network(clock);
  auto transport = network.transport("dione");
  auto listener = transport->listen(inproc_endpoint("dione", "c"));
  ASSERT_TRUE(listener.is_ok());
  auto client = transport->connect(inproc_endpoint("dione", "c"));
  ASSERT_TRUE(client.is_ok());
  auto server = (*listener)->accept();
  ASSERT_TRUE(server.is_ok());
  std::thread closer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    (*client)->close();
  });
  auto got = (*server)->recv();
  EXPECT_FALSE(got.is_ok());
  EXPECT_EQ(got.status().code(), ErrorCode::kClosed);
  closer.join();
}

TEST(LinkModelTest, TransmitTimeScalesWithSize) {
  LinkModel model;
  model.bandwidth_bytes_per_sec = 1e6;
  model.latency = std::chrono::milliseconds(10);
  EXPECT_EQ(model.transmit_time(1000000), std::chrono::seconds(1));
}

TEST(LinkModelTest, ShaperSerializesMessages) {
  LinkModel model;
  model.bandwidth_bytes_per_sec = 1000;  // 1 KB/s
  model.latency = from_seconds_d(0.5);
  LinkShaper shaper(model);
  // Two 1000-byte messages sent at t=0: first arrives at 1.5s, second
  // queues behind it and arrives at 2.5s.
  const Duration first = shaper.arrival_time(Duration::zero(), 1000);
  const Duration second = shaper.arrival_time(Duration::zero(), 1000);
  EXPECT_NEAR(to_seconds_d(first), 1.5, 1e-9);
  EXPECT_NEAR(to_seconds_d(second), 2.5, 1e-9);
}

TEST(LinkTableTest, SymmetricAndDefault) {
  LinkTable table;
  LinkModel wan;
  wan.latency = from_seconds_d(0.1);
  table.set_link("a", "b", wan);
  EXPECT_EQ(table.lookup("a", "b").latency, from_seconds_d(0.1));
  EXPECT_EQ(table.lookup("b", "a").latency, from_seconds_d(0.1));
  EXPECT_EQ(table.lookup("a", "c").latency, Duration::zero());
  EXPECT_EQ(table.lookup("a", "a").latency, Duration::zero());
}

TEST(InProcTest, ScaledLinkDelaysDelivery) {
  // 1 model second = 5 wall ms. Link latency 2 model seconds.
  ScaledClock clock(0.005);
  InProcNetwork network(clock);
  LinkModel model;
  model.latency = std::chrono::seconds(2);
  network.links().set_link("a", "b", model);
  auto ta = network.transport("a");
  auto tb = network.transport("b");
  auto listener = tb->listen(inproc_endpoint("b", "svc"));
  ASSERT_TRUE(listener.is_ok());
  auto client = ta->connect(inproc_endpoint("b", "svc"));
  ASSERT_TRUE(client.is_ok());
  auto server = (*listener)->accept();
  ASSERT_TRUE(server.is_ok());

  const Duration sent_at = clock.now();
  ASSERT_TRUE((*client)->send(as_bytes_view("x")).is_ok());
  auto got = (*server)->recv();
  ASSERT_TRUE(got.is_ok());
  const double elapsed_model = to_seconds_d(clock.now() - sent_at);
  EXPECT_GE(elapsed_model, 1.9);
  EXPECT_LT(elapsed_model, 10.0);
}

TEST(InProcTest, ParallelConnectionsShareOneLink) {
  // Two concurrent bulk sends between the same host pair must divide
  // the link's bandwidth, not each get a full copy of it (this is what
  // keeps GridFTP-style parallel streams honest on a modelled WAN).
  // 1 model s = 10 wall ms, so connect/thread overhead (~2 ms wall)
  // stays small against the 2-model-second transfers under test
  // (sanitizer builds run the clock slower for the same reason).
  ScaledClock clock(0.01 * test_support::kClockScale);
  InProcNetwork network(clock);
  LinkModel model;
  model.bandwidth_bytes_per_sec = 1e6;  // 1 MB/s
  network.links().set_link("a", "b", model);
  auto ta = network.transport("a");
  auto tb = network.transport("b");
  auto listener = tb->listen(inproc_endpoint("b", "bulk"));
  ASSERT_TRUE(listener.is_ok());

  auto run_transfer = [&](Bytes payload) {
    auto client = ta->connect(inproc_endpoint("b", "bulk"));
    ASSERT_TRUE(client.is_ok());
    auto server = (*listener)->accept();
    ASSERT_TRUE(server.is_ok());
    std::thread sender([&, payload = std::move(payload)] {
      ASSERT_TRUE((*client)->send(payload).is_ok());
    });
    auto got = (*server)->recv();
    ASSERT_TRUE(got.is_ok());
    sender.join();
  };

  // Single 2 MB transfer: ~2 model seconds.
  const Duration solo_start = clock.now();
  run_transfer(Bytes(2000000));
  const double solo = to_seconds_d(clock.now() - solo_start);
  EXPECT_NEAR(solo, 2.0, 1.0);

  // Two concurrent 2 MB transfers: the shared link serializes them to
  // ~4 model seconds total (per-connection shapers would finish in ~2).
  const Duration pair_start = clock.now();
  std::thread other([&] { run_transfer(Bytes(2000000)); });
  run_transfer(Bytes(2000000));
  other.join();
  const double pair = to_seconds_d(clock.now() - pair_start);
  EXPECT_GT(pair, 3.2);
}

TEST(InProcTest, LinkWeatherChangeAffectsLiveConnections) {
  ScaledClock clock(0.001);
  InProcNetwork network(clock);
  LinkModel fast;
  fast.bandwidth_bytes_per_sec = 100e6;
  network.links().set_link("a", "b", fast);
  auto ta = network.transport("a");
  auto tb = network.transport("b");
  auto listener = tb->listen(inproc_endpoint("b", "w"));
  ASSERT_TRUE(listener.is_ok());
  auto client = ta->connect(inproc_endpoint("b", "w"));
  ASSERT_TRUE(client.is_ok());
  auto server = (*listener)->accept();
  ASSERT_TRUE(server.is_ok());

  // Fast round first.
  ASSERT_TRUE((*client)->send(Bytes(1000000)).is_ok());
  ASSERT_TRUE((*server)->recv().is_ok());

  // The link degrades mid-connection; the SAME connection slows down.
  LinkModel slow;
  slow.bandwidth_bytes_per_sec = 0.5e6;  // 2 model s for 1 MB
  network.links().set_link("a", "b", slow);
  const Duration start = clock.now();
  std::thread sender([&] { ASSERT_TRUE((*client)->send(Bytes(1000000)).is_ok()); });
  ASSERT_TRUE((*server)->recv().is_ok());
  sender.join();
  EXPECT_GT(to_seconds_d(clock.now() - start), 1.2);
}

TEST(LinkTableTest, VersionBumpsOnMutation) {
  LinkTable table;
  const auto v0 = table.version();
  table.set_link("a", "b", LinkModel{});
  EXPECT_GT(table.version(), v0);
  const auto v1 = table.version();
  table.set_default(LinkModel{});
  EXPECT_GT(table.version(), v1);
}

TEST(TcpTest, LoopbackEcho) {
  TcpTransport transport;
  auto listener = transport.listen(tcp_endpoint("127.0.0.1", 0));
  ASSERT_TRUE(listener.is_ok());
  const Endpoint bound = (*listener)->bound_endpoint();
  EXPECT_GT(bound.port().value(), 0);

  std::thread server([&] {
    auto conn = (*listener)->accept();
    ASSERT_TRUE(conn.is_ok());
    auto msg = (*conn)->recv();
    ASSERT_TRUE(msg.is_ok());
    ASSERT_TRUE((*conn)->send(*msg).is_ok());
  });

  auto conn = transport.connect(bound);
  ASSERT_TRUE(conn.is_ok());
  Bytes big(100000, std::byte{0x5A});
  ASSERT_TRUE((*conn)->send(big).is_ok());
  auto reply = (*conn)->recv();
  ASSERT_TRUE(reply.is_ok());
  EXPECT_EQ(*reply, big);
  server.join();
}

TEST(TcpTest, RecvTimesOut) {
  TcpTransport transport;
  auto listener = transport.listen(tcp_endpoint("127.0.0.1", 0));
  ASSERT_TRUE(listener.is_ok());
  auto conn = transport.connect((*listener)->bound_endpoint());
  ASSERT_TRUE(conn.is_ok());
  auto got = (*conn)->recv_until(WallClock::now() +
                                 std::chrono::milliseconds(50));
  EXPECT_FALSE(got.is_ok());
  EXPECT_EQ(got.status().code(), ErrorCode::kTimeout);
}

TEST(TcpTest, ConnectRefused) {
  TcpTransport transport;
  // Grab an ephemeral port, close it, then dial it.
  auto listener = transport.listen(tcp_endpoint("127.0.0.1", 0));
  ASSERT_TRUE(listener.is_ok());
  const Endpoint bound = (*listener)->bound_endpoint();
  (*listener)->close();
  auto conn = transport.connect(bound);
  EXPECT_FALSE(conn.is_ok());
}

TEST(SoapTest, Base64RoundTrip) {
  for (const std::string text :
       {"", "a", "ab", "abc", "abcd", "hello grid world"}) {
    auto decoded = base64_decode(base64_encode(as_bytes_view(text)));
    ASSERT_TRUE(decoded.is_ok());
    EXPECT_EQ(to_string(*decoded), text);
  }
  EXPECT_FALSE(base64_decode("not*base64!").is_ok());
}

TEST(SoapTest, FrameRoundTrip) {
  RpcFrame frame;
  frame.kind = FrameKind::kResponse;
  frame.id = 12345;
  frame.method = 7;
  frame.status = not_found("no <such> & channel");
  frame.payload = to_bytes("binary \x01\x02 payload");
  auto decoded = soap_decode(soap_encode(frame));
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded->kind, frame.kind);
  EXPECT_EQ(decoded->id, frame.id);
  EXPECT_EQ(decoded->method, frame.method);
  EXPECT_EQ(decoded->status.code(), ErrorCode::kNotFound);
  EXPECT_EQ(decoded->status.message(), "no <such> & channel");
  EXPECT_EQ(decoded->payload, frame.payload);
}

TEST(SoapTest, RejectsMalformedEnvelope) {
  EXPECT_FALSE(soap_decode(as_bytes_view("<xml>nope</xml>")).is_ok());
}

TEST(RpcFrameTest, BinaryRoundTrip) {
  RpcFrame frame;
  frame.kind = FrameKind::kRequest;
  frame.id = 99;
  frame.method = 3;
  frame.payload = to_bytes("req");
  auto decoded = decode_frame(encode_frame(frame, WireFormat::kBinary),
                              WireFormat::kBinary);
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded->id, 99u);
  EXPECT_EQ(decoded->method, 3);
  EXPECT_EQ(to_string(decoded->payload), "req");
}

class RpcTest : public ::testing::TestWithParam<WireFormat> {};

TEST_P(RpcTest, CallAndHandlerError) {
  RealClock clock;
  InProcNetwork network(clock);
  auto server_t = network.transport("dione");
  auto client_t = network.transport("jagan");

  RpcServer server(*server_t, inproc_endpoint("dione", "svc"), GetParam());
  server.register_method(1, [](ByteSpan request, const RpcContext&)
                                -> Result<Bytes> {
    Bytes out(request.begin(), request.end());
    std::reverse(out.begin(), out.end());
    return out;
  });
  server.register_method(2, [](ByteSpan, const RpcContext&)
                                -> Result<Bytes> {
    return not_found("nothing here");
  });
  ASSERT_TRUE(server.start().is_ok());

  RpcClient client(*client_t, server.endpoint(), GetParam());
  auto reply = client.call(1, as_bytes_view("abc"));
  ASSERT_TRUE(reply.is_ok());
  EXPECT_EQ(to_string(*reply), "cba");

  auto error = client.call(2, {});
  EXPECT_FALSE(error.is_ok());
  EXPECT_EQ(error.status().code(), ErrorCode::kNotFound);
  EXPECT_EQ(error.status().message(), "nothing here");

  auto missing = client.call(42, {});
  EXPECT_FALSE(missing.is_ok());
  EXPECT_EQ(missing.status().code(), ErrorCode::kUnimplemented);

  server.stop();
}

INSTANTIATE_TEST_SUITE_P(WireFormats, RpcTest,
                         ::testing::Values(WireFormat::kBinary,
                                           WireFormat::kSoap),
                         [](const auto& info) {
                           return info.param == WireFormat::kBinary
                                      ? "Binary"
                                      : "Soap";
                         });

TEST(RpcServerTest, ManyConcurrentClients) {
  RealClock clock;
  InProcNetwork network(clock);
  auto server_t = network.transport("dione");
  RpcServer server(*server_t, inproc_endpoint("dione", "adder"));
  server.register_method(1, [](ByteSpan request, const RpcContext&)
                                -> Result<Bytes> {
    xdr::Decoder dec(request);
    GL_ASSIGN_OR_RETURN(const std::uint64_t v, dec.u64());
    xdr::Encoder enc;
    enc.put_u64(v + 1);
    return std::move(enc).take();
  });
  ASSERT_TRUE(server.start().is_ok());

  constexpr int kThreads = 8;
  constexpr int kCalls = 50;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto transport = network.transport("jagan");
      RpcClient client(*transport, server.endpoint());
      for (int i = 0; i < kCalls; ++i) {
        xdr::Encoder enc;
        enc.put_u64(static_cast<std::uint64_t>(t * kCalls + i));
        auto reply = client.call(1, enc.buffer());
        if (!reply.is_ok()) {
          ++failures;
          continue;
        }
        xdr::Decoder dec(*reply);
        if (dec.u64().value() !=
            static_cast<std::uint64_t>(t * kCalls + i) + 1) {
          ++failures;
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures, 0);
  server.stop();
}

TEST(RpcServerTest, StopUnblocksAndRejects) {
  RealClock clock;
  InProcNetwork network(clock);
  auto server_t = network.transport("dione");
  auto client_t = network.transport("jagan");
  auto server = std::make_unique<RpcServer>(
      *server_t, inproc_endpoint("dione", "stoppable"));
  server->register_method(1, [](ByteSpan, const RpcContext&)
                                 -> Result<Bytes> { return Bytes{}; });
  ASSERT_TRUE(server->start().is_ok());
  RpcClient client(*client_t, server->endpoint());
  ASSERT_TRUE(client.call(1, {}).is_ok());
  server->stop();
  auto after = client.call(1, {});
  EXPECT_FALSE(after.is_ok());
}

TEST(RpcOverTcpTest, EndToEnd) {
  TcpTransport transport;
  RpcServer server(transport, tcp_endpoint("127.0.0.1", 0));
  server.register_method(9, [](ByteSpan request, const RpcContext&)
                                -> Result<Bytes> {
    return Bytes(request.begin(), request.end());
  });
  ASSERT_TRUE(server.start().is_ok());
  RpcClient client(transport, server.endpoint());
  auto reply = client.call(9, as_bytes_view("over tcp"));
  ASSERT_TRUE(reply.is_ok());
  EXPECT_EQ(to_string(*reply), "over tcp");
  server.stop();
}

}  // namespace
}  // namespace griddles::net
