// Unit tests for src/common: Status/Result, strings, config, clocks,
// bounded queue, temp dirs, log-level parsing.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <thread>

#include "src/common/bytes.h"
#include "src/common/clock.h"
#include "src/common/config.h"
#include "src/common/logging.h"
#include "src/common/queue.h"
#include "src/common/status.h"
#include "src/common/strings.h"
#include "src/common/tempfile.h"

namespace griddles {
namespace {

TEST(StatusTest, OkByDefault) {
  Status status;
  EXPECT_TRUE(status.is_ok());
  EXPECT_EQ(status.code(), ErrorCode::kOk);
  EXPECT_EQ(status.to_string(), "OK");
}

TEST(StatusTest, CarriesCodeAndMessage) {
  const Status status = not_found("missing thing");
  EXPECT_FALSE(status.is_ok());
  EXPECT_EQ(status.code(), ErrorCode::kNotFound);
  EXPECT_EQ(status.to_string(), "NOT_FOUND: missing thing");
}

TEST(StatusTest, EveryConstructorMapsToItsCode) {
  EXPECT_EQ(invalid_argument("x").code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(already_exists("x").code(), ErrorCode::kAlreadyExists);
  EXPECT_EQ(permission_denied("x").code(), ErrorCode::kPermissionDenied);
  EXPECT_EQ(unavailable("x").code(), ErrorCode::kUnavailable);
  EXPECT_EQ(timeout_error("x").code(), ErrorCode::kTimeout);
  EXPECT_EQ(closed_error("x").code(), ErrorCode::kClosed);
  EXPECT_EQ(io_error("x").code(), ErrorCode::kIoError);
  EXPECT_EQ(out_of_range("x").code(), ErrorCode::kOutOfRange);
  EXPECT_EQ(resource_exhausted("x").code(), ErrorCode::kResourceExhausted);
  EXPECT_EQ(failed_precondition("x").code(), ErrorCode::kFailedPrecondition);
  EXPECT_EQ(aborted_error("x").code(), ErrorCode::kAborted);
  EXPECT_EQ(unimplemented("x").code(), ErrorCode::kUnimplemented);
  EXPECT_EQ(internal_error("x").code(), ErrorCode::kInternal);
}

Result<int> half(int v) {
  if (v % 2 != 0) return invalid_argument("odd");
  return v / 2;
}

Result<int> quarter(int v) {
  GL_ASSIGN_OR_RETURN(const int h, half(v));
  return half(h);
}

TEST(ResultTest, ValueAndError) {
  auto ok = half(4);
  ASSERT_TRUE(ok.is_ok());
  EXPECT_EQ(*ok, 2);
  auto err = half(3);
  EXPECT_FALSE(err.is_ok());
  EXPECT_EQ(err.status().code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(err.value_or(-1), -1);
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*quarter(8), 2);
  EXPECT_FALSE(quarter(6).is_ok());  // 6/2 = 3 is odd
}

TEST(StringsTest, SplitPreservesEmptyTokens) {
  const auto parts = strings::split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(strings::trim("  x y\t\n"), "x y");
  EXPECT_EQ(strings::trim(""), "");
  EXPECT_EQ(strings::trim("   "), "");
}

TEST(StringsTest, Cat) {
  EXPECT_EQ(strings::cat("a", 1, "-", 2.5), "a1-2.5");
  EXPECT_EQ(strings::cat(), "");
}

TEST(StringsTest, GlobMatch) {
  EXPECT_TRUE(strings::glob_match("*", "anything"));
  EXPECT_TRUE(strings::glob_match("JOB.*", "JOB.SF"));
  EXPECT_FALSE(strings::glob_match("JOB.*", "RESULT.DAT"));
  EXPECT_TRUE(strings::glob_match("/work/*/JOB.?F", "/work/x/JOB.SF"));
  EXPECT_FALSE(strings::glob_match("/work/*/JOB.?F", "/work/x/JOB.SSF"));
  EXPECT_TRUE(strings::glob_match("a*b*c", "axxbyyc"));
  EXPECT_FALSE(strings::glob_match("a*b*c", "axxbyy"));
  EXPECT_TRUE(strings::glob_match("", ""));
  EXPECT_FALSE(strings::glob_match("", "x"));
}

TEST(StringsTest, ParseInt) {
  EXPECT_EQ(strings::parse_int("42").value(), 42);
  EXPECT_EQ(strings::parse_int(" -7 ").value(), -7);
  EXPECT_FALSE(strings::parse_int("4x").has_value());
  EXPECT_FALSE(strings::parse_int("").has_value());
}

TEST(StringsTest, ParseDouble) {
  EXPECT_DOUBLE_EQ(strings::parse_double("2.5").value(), 2.5);
  EXPECT_FALSE(strings::parse_double("2.5.1").has_value());
}

TEST(StringsTest, ParseBool) {
  EXPECT_TRUE(strings::parse_bool("true").value());
  EXPECT_TRUE(strings::parse_bool("Yes").value());
  EXPECT_FALSE(strings::parse_bool("off").value());
  EXPECT_FALSE(strings::parse_bool("maybe").has_value());
}

TEST(StringsTest, FormatHms) {
  EXPECT_EQ(strings::format_hms(0), "00:00:00");
  EXPECT_EQ(strings::format_hms(3661), "01:01:01");
  EXPECT_EQ(strings::format_ms(5957), "99:17");
}

TEST(ConfigTest, ParsesSectionsAndTypes) {
  auto config = Config::parse(R"(
top = 1
[machine]
name = dione   ; the melbourne P4
speed = 1.65
fast = yes
# comment
[mapping:a]
path = /x/y
)");
  ASSERT_TRUE(config.is_ok());
  EXPECT_EQ(config->get_int("top").value(), 1);
  EXPECT_EQ(config->get("machine.name").value(), "dione");
  EXPECT_DOUBLE_EQ(config->get_double("machine.speed").value(), 1.65);
  EXPECT_TRUE(config->get_bool("machine.fast").value());
  EXPECT_EQ(config->get("mapping:a.path").value(), "/x/y");
  EXPECT_FALSE(config->has("machine.missing"));
  EXPECT_EQ(config->get_or("machine.missing", "dflt"), "dflt");
  const auto sections = config->sections();
  ASSERT_EQ(sections.size(), 2u);
  EXPECT_EQ(sections[0], "machine");
}

TEST(ConfigTest, RejectsMalformedLines) {
  EXPECT_FALSE(Config::parse("just a line").is_ok());
  EXPECT_FALSE(Config::parse("[unclosed").is_ok());
  EXPECT_FALSE(Config::parse("= value").is_ok());
}

TEST(ConfigTest, TypeErrors) {
  auto config = Config::parse("x = notanumber");
  ASSERT_TRUE(config.is_ok());
  EXPECT_FALSE(config->get_int("x").is_ok());
  EXPECT_FALSE(config->get_bool("x").is_ok());
  EXPECT_EQ(config->get_int_or("x", 9), 9);
}

TEST(ClockTest, RealClockAdvances) {
  RealClock clock;
  const Duration a = clock.now();
  clock.sleep_for(std::chrono::milliseconds(5));
  EXPECT_GE(clock.now() - a, std::chrono::milliseconds(4));
}

TEST(ClockTest, ScaledClockCompressesTime) {
  // 1 model second passes in 10 wall milliseconds.
  ScaledClock clock(0.01);
  const auto wall_start = WallClock::now();
  clock.sleep_for(std::chrono::seconds(1));
  const auto wall_elapsed = WallClock::now() - wall_start;
  EXPECT_GE(wall_elapsed, std::chrono::milliseconds(9));
  EXPECT_LT(wall_elapsed, std::chrono::milliseconds(200));
  EXPECT_GE(clock.now(), std::chrono::milliseconds(900));
}

TEST(ClockTest, ManualClockReleasesSleepers) {
  ManualClock clock;
  std::atomic<bool> woke{false};
  std::thread sleeper([&] {
    clock.sleep_for(std::chrono::seconds(5));
    woke = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(woke);
  clock.advance(std::chrono::seconds(5));
  sleeper.join();
  EXPECT_TRUE(woke);
  EXPECT_EQ(clock.now(), Duration(std::chrono::seconds(5)));
}

TEST(BoundedQueueTest, FifoOrder) {
  BoundedQueue<int> queue;
  queue.push(1);
  queue.push(2);
  EXPECT_EQ(queue.pop().value(), 1);
  EXPECT_EQ(queue.pop().value(), 2);
}

TEST(BoundedQueueTest, CloseDrainsThenEnds) {
  BoundedQueue<int> queue;
  queue.push(7);
  queue.close();
  EXPECT_FALSE(queue.push(8));
  EXPECT_EQ(queue.pop().value(), 7);
  EXPECT_FALSE(queue.pop().has_value());
}

TEST(BoundedQueueTest, CapacityBlocksProducer) {
  BoundedQueue<int> queue(2);
  EXPECT_TRUE(queue.try_push(1));
  EXPECT_TRUE(queue.try_push(2));
  EXPECT_FALSE(queue.try_push(3));  // full
  EXPECT_EQ(queue.pop().value(), 1);
  EXPECT_TRUE(queue.try_push(3));
}

TEST(BoundedQueueTest, BlockedPushReleasedByPop) {
  BoundedQueue<int> queue(1);
  queue.push(1);
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    queue.push(2);
    pushed = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed);
  EXPECT_EQ(queue.pop().value(), 1);
  producer.join();
  EXPECT_TRUE(pushed);
}

TEST(BoundedQueueTest, PopUntilTimesOut) {
  BoundedQueue<int> queue;
  const auto deadline = WallClock::now() + std::chrono::milliseconds(30);
  EXPECT_FALSE(queue.pop_until(deadline).has_value());
}

TEST(BoundedQueueTest, ManyProducersManyConsumers) {
  BoundedQueue<int> queue(16);
  constexpr int kPerProducer = 500;
  constexpr int kProducers = 4;
  std::atomic<long long> sum{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) queue.push(p * kPerProducer + i);
    });
  }
  std::vector<std::thread> consumers;
  for (int c = 0; c < 3; ++c) {
    consumers.emplace_back([&] {
      while (auto v = queue.pop()) sum += *v;
    });
  }
  for (auto& t : threads) t.join();
  queue.close();
  for (auto& t : consumers) t.join();
  const long long n = kPerProducer * kProducers;
  EXPECT_EQ(sum, n * (n - 1) / 2);
}

TEST(TempDirTest, CreatesAndCleansUp) {
  std::filesystem::path kept;
  {
    auto dir = TempDir::create("gl-test");
    ASSERT_TRUE(dir.is_ok());
    kept = dir->path();
    EXPECT_TRUE(std::filesystem::exists(kept));
    std::ofstream(dir->file("x.txt")) << "hello";
    EXPECT_TRUE(std::filesystem::exists(dir->file("x.txt")));
  }
  EXPECT_FALSE(std::filesystem::exists(kept));
}

TEST(TempDirTest, MoveTransfersOwnership) {
  auto dir = TempDir::create("gl-move");
  ASSERT_TRUE(dir.is_ok());
  const std::filesystem::path path = dir->path();
  TempDir moved = std::move(*dir);
  EXPECT_EQ(moved.path(), path);
  EXPECT_TRUE(std::filesystem::exists(path));
}

TEST(BytesTest, Fnv1aIsStable) {
  EXPECT_EQ(fnv1a(as_bytes_view("")), 0xcbf29ce484222325ULL);
  EXPECT_NE(fnv1a(as_bytes_view("a")), fnv1a(as_bytes_view("b")));
  EXPECT_EQ(to_string(to_bytes("round trip")), "round trip");
}

TEST(LoggingTest, ParseLevelMapsEveryName) {
  EXPECT_EQ(log::parse_level("trace"), log::Level::kTrace);
  EXPECT_EQ(log::parse_level("debug"), log::Level::kDebug);
  EXPECT_EQ(log::parse_level("info"), log::Level::kInfo);
  EXPECT_EQ(log::parse_level("warn"), log::Level::kWarn);
  EXPECT_EQ(log::parse_level("error"), log::Level::kError);
  EXPECT_EQ(log::parse_level("off"), log::Level::kOff);
}

TEST(LoggingTest, ParseLevelDefaultsUnknownToWarn) {
  EXPECT_EQ(log::parse_level(""), log::Level::kWarn);
  EXPECT_EQ(log::parse_level("verbose"), log::Level::kWarn);
  EXPECT_EQ(log::parse_level("DEBUG"), log::Level::kWarn);  // case matters
  EXPECT_EQ(log::parse_level("warning"), log::Level::kWarn);
}

}  // namespace
}  // namespace griddles
