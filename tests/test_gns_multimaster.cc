// Tests for the multi-master GNS: vector clocks, the rendezvous shard
// map, deterministic conflict resolution, the partition divergence
// drill (write both sides, heal, anti-entropy converges), and
// lease-safe runtime replica add/remove with zero lost lookups.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <thread>

#include "src/common/strings.h"
#include "src/fault/plan.h"
#include "src/gns/antientropy.h"
#include "src/gns/multimaster.h"
#include "src/gns/replicated.h"
#include "src/gns/shard_map.h"
#include "src/gns/store.h"
#include "src/gns/vclock.h"
#include "src/net/inproc.h"
#include "src/obs/metrics.h"

namespace griddles::gns {
namespace {

std::uint64_t counter_value(const char* name) {
  return obs::MetricsRegistry::global().counter(name).value();
}

/// Arms a plan for the test body and disarms on scope exit.
struct ArmedPlan {
  std::shared_ptr<fault::Plan> plan;

  explicit ArmedPlan(const std::string& spec) {
    auto parsed = fault::Plan::parse(spec);
    EXPECT_TRUE(parsed.is_ok()) << parsed.status();
    if (parsed.is_ok()) {
      plan = *parsed;
      fault::arm(plan, nullptr);
    }
  }
  ~ArmedPlan() { fault::disarm(); }
};

// ---------------------------------------------------------------------
// Vector clocks.

TEST(VClockTest, BumpJoinAndCompare) {
  VClock a;
  EXPECT_TRUE(a.empty());
  a.bump("n0");
  a.bump("n0");
  EXPECT_EQ(a.count("n0"), 2u);
  EXPECT_EQ(a.count("n1"), 0u);

  VClock b = a;
  EXPECT_EQ(a.compare(b), VOrder::kEqual);
  b.bump("n0");
  EXPECT_EQ(a.compare(b), VOrder::kBefore);
  EXPECT_EQ(b.compare(a), VOrder::kAfter);

  // Writes coordinated on different replicas during a partition
  // dominate in neither direction: divergence is detectable.
  VClock c = a;
  c.bump("n1");
  EXPECT_EQ(b.compare(c), VOrder::kConcurrent);
  EXPECT_EQ(c.compare(b), VOrder::kConcurrent);

  // The join is a semilattice: commutative and absorbing both sides.
  VClock joined_bc = b;
  joined_bc.join(c);
  VClock joined_cb = c;
  joined_cb.join(b);
  EXPECT_EQ(joined_bc, joined_cb);
  EXPECT_EQ(joined_bc.compare(b), VOrder::kAfter);
  EXPECT_EQ(joined_bc.compare(c), VOrder::kAfter);
  EXPECT_EQ(joined_bc.count("n0"), 3u);
  EXPECT_EQ(joined_bc.count("n1"), 1u);
  EXPECT_EQ(joined_bc.height(), 4u);
}

TEST(VClockTest, EncodeDecodeRoundTrips) {
  VClock clock;
  clock.bump("gns-0");
  clock.bump("gns-2");
  clock.bump("gns-2");
  xdr::Encoder enc;
  clock.encode(enc);
  xdr::Decoder dec(enc.buffer());
  auto decoded = VClock::decode(dec);
  ASSERT_TRUE(decoded.is_ok()) << decoded.status();
  EXPECT_EQ(*decoded, clock);
  EXPECT_EQ(clock.to_string(), "{gns-0:1,gns-2:2}");
}

// ---------------------------------------------------------------------
// Shard map.

ShardMap three_node_map() {
  ShardMap map;
  map.epoch = 1;
  map.num_shards = 8;
  map.replication = 2;
  map.replicas = {"gns-0", "gns-1", "gns-2"};
  return map;
}

TEST(ShardMapTest, KeysHashDeterministicallyAndGlobsBroadcast) {
  const ShardMap map = three_node_map();
  const std::uint32_t shard = map.shard_of("jagan", "/work/a.dat");
  EXPECT_EQ(shard, map.shard_of("jagan", "/work/a.dat"));
  EXPECT_LT(shard, map.num_shards);
  EXPECT_EQ(map.shard_of_rule("jagan", "/work/a.dat"), shard);
  // Any glob in either pattern routes the rule to the broadcast shard,
  // which every replica owns.
  EXPECT_EQ(map.shard_of_rule("jagan", "*.dat"), kGlobalShard);
  EXPECT_EQ(map.shard_of_rule("j?gan", "/work/a.dat"), kGlobalShard);
  EXPECT_EQ(map.owners(kGlobalShard).size(), 3u);
}

TEST(ShardMapTest, RendezvousRemapsOnlyTheLeaversShards) {
  const ShardMap before = three_node_map();
  ShardMap after = before;
  after.epoch = 2;
  after.replicas = {"gns-0", "gns-2"};  // gns-1 left

  for (std::uint32_t shard = 0; shard < before.num_shards; ++shard) {
    const std::vector<std::string> old_owners = before.owners(shard);
    EXPECT_EQ(old_owners.size(), 2u);
    // Survivors that owned the shard keep it (the consistent-hash
    // property): only slots the leaver held get reassigned.
    for (const std::string& owner : old_owners) {
      if (owner != "gns-1") {
        EXPECT_TRUE(after.owns(owner, shard));
      }
    }
    EXPECT_FALSE(after.owns("gns-1", shard));
  }
}

TEST(ShardMapTest, ShardsOfPartitionsTheKeyspace) {
  const ShardMap map = three_node_map();
  std::set<std::uint32_t> covered;
  for (const std::string& replica : map.replicas) {
    for (const std::uint32_t shard : map.shards_of(replica)) {
      covered.insert(shard);
    }
  }
  // Every shard (and the broadcast shard) has at least one owner.
  EXPECT_EQ(covered.size(), map.num_shards + 1u);
  EXPECT_TRUE(covered.contains(kGlobalShard));
  EXPECT_EQ(map.effective_replication(), 2u);
}

// ---------------------------------------------------------------------
// Versioned store: deterministic conflict join.

MappingRule make_rule(const std::string& host, const std::string& path,
                      IoMode mode) {
  MappingRule rule;
  rule.host_pattern = host;
  rule.path_pattern = path;
  rule.mapping.mode = mode;
  return rule;
}

TEST(ReplicaStoreTest, ConcurrentWritesJoinDeterministically) {
  obs::MetricsRegistry::global().reset();
  ReplicaStore a("gns-a");
  ReplicaStore b("gns-b");
  const std::uint32_t shard = 3;

  // The same key written on both sides of a partition.
  const VersionedRule wrote_a = a.coordinate(
      shard, make_rule("jagan", "/d/k.dat", IoMode::kLocal), false);
  const VersionedRule wrote_b = b.coordinate(
      shard, make_rule("jagan", "/d/k.dat", IoMode::kGridBuffer), false);
  EXPECT_EQ(wrote_a.version.compare(wrote_b.version), VOrder::kConcurrent);

  // Heal: each side applies the other's entry — in opposite orders.
  EXPECT_EQ(a.apply(shard, wrote_b), ReplicaStore::Applied::kConflict);
  EXPECT_EQ(b.apply(shard, wrote_a), ReplicaStore::Applied::kConflict);
  EXPECT_EQ(counter_value("gns.conflict.detected"), 2u);
  EXPECT_EQ(counter_value("gns.conflict.resolved"), 2u);

  // Both replicas converge to identical bytes: same winner (priority
  // tie broken by the greater writer id), same joined version.
  EXPECT_EQ(a.digest(shard), b.digest(shard));
  const auto via_a = a.lookup(shard, "jagan", "/d/k.dat");
  const auto via_b = b.lookup(shard, "jagan", "/d/k.dat");
  ASSERT_TRUE(via_a.has_value());
  ASSERT_TRUE(via_b.has_value());
  EXPECT_EQ(via_a->mode, via_b->mode);
  EXPECT_EQ(via_a->mode, IoMode::kGridBuffer);  // "gns-b" > "gns-a"

  // Re-applying after the join is idempotent (kStale/kEqual, no new
  // conflict): anti-entropy can re-send without flapping.
  EXPECT_NE(a.apply(shard, wrote_b), ReplicaStore::Applied::kConflict);
  EXPECT_EQ(counter_value("gns.conflict.detected"), 2u);
}

TEST(ReplicaStoreTest, TombstoneShadowsTheRule) {
  ReplicaStore store("gns-a");
  const std::uint32_t shard = 1;
  store.coordinate(shard, make_rule("h", "/p", IoMode::kLocal), false);
  EXPECT_TRUE(store.lookup(shard, "h", "/p").has_value());
  EXPECT_EQ(store.live_count(shard), 1u);
  store.coordinate(shard, make_rule("h", "/p", IoMode::kLocal), true);
  EXPECT_FALSE(store.lookup(shard, "h", "/p").has_value());
  EXPECT_EQ(store.live_count(shard), 0u);
}

// ---------------------------------------------------------------------
// Cluster-level: divergence drill and runtime reconfiguration.

class GnsClusterTest : public ::testing::Test {
 protected:
  GnsClusterTest() : network_(clock_), transport_(network_.transport("gh")) {
    obs::MetricsRegistry::global().reset();
  }
  ~GnsClusterTest() override { fault::disarm(); }

  /// A started cluster of `n` replicas with manual anti-entropy ticks.
  std::unique_ptr<GnsCluster> make_cluster(int n,
                                           GnsCluster::Options options) {
    options.ae_interval = std::chrono::milliseconds(0);
    auto cluster = std::make_unique<GnsCluster>(*transport_, options);
    for (int i = 0; i < n; ++i) {
      const std::string name = strings::cat("gns-", i);
      EXPECT_TRUE(
          cluster
              ->add_replica(name, net::inproc_endpoint("gh", name))
              .is_ok());
    }
    EXPECT_TRUE(cluster->start().is_ok());
    return cluster;
  }
  std::unique_ptr<GnsCluster> make_cluster(int n) {
    return make_cluster(n, GnsCluster::Options{});
  }

  std::unique_ptr<ReplicatedNameService> make_service(
      GnsCluster& cluster, ReplicatedNameService::Options options = {}) {
    auto service =
        std::make_unique<ReplicatedNameService>(*transport_, options);
    for (const ReplicaAddress& replica : cluster.endpoints()) {
      service->add_replica(replica.name, replica.endpoint);
    }
    return service;
  }

  RealClock clock_;
  net::InProcNetwork network_;
  std::unique_ptr<net::Transport> transport_;
};

TEST_F(GnsClusterTest, WritesReplicateAndLookupsResolve) {
  auto cluster = make_cluster(3);
  ASSERT_TRUE(
      cluster->add_rule(make_rule("jagan", "/w/a.dat", IoMode::kLocal))
          .is_ok());
  ASSERT_TRUE(
      cluster->add_rule(make_rule("jagan", "*.buf", IoMode::kGridBuffer))
          .is_ok());
  EXPECT_TRUE(cluster->converged());

  auto service = make_service(*cluster);
  auto exact = service->lookup("jagan", "/w/a.dat");
  ASSERT_TRUE(exact.is_ok()) << exact.status();
  ASSERT_TRUE(exact->has_value());
  EXPECT_EQ((*exact)->mode, IoMode::kLocal);
  // Glob rules live in the broadcast shard and match from any replica.
  auto globbed = service->lookup("jagan", "/other/x.buf");
  ASSERT_TRUE(globbed.is_ok()) << globbed.status();
  ASSERT_TRUE(globbed->has_value());
  EXPECT_EQ((*globbed)->mode, IoMode::kGridBuffer);
  EXPECT_GT(service->map_epoch(), 0u);

  // Tombstones replicate too: the removal is visible immediately.
  ASSERT_TRUE(service->remove_rule("jagan", "/w/a.dat").is_ok());
  auto removed = service->lookup("jagan", "/w/a.dat");
  ASSERT_TRUE(removed.is_ok()) << removed.status();
  EXPECT_FALSE(removed->has_value());
}

TEST_F(GnsClusterTest, DivergenceDrillHealsDeterministically) {
  auto cluster = make_cluster(3);
  const std::string host = "jagan";
  const std::string path = "/drill/k.dat";
  const ShardMap map = cluster->map();
  const std::vector<std::string> owners =
      map.owners(map.shard_of_rule(host, path));
  ASSERT_EQ(owners.size(), 3u);  // replication=0: everyone owns it
  const std::string& primary = owners[0];
  const std::string& secondary = owners[1];

  {
    // Phase 1: all sync links severed; the write lands on the primary
    // owner only (replication to co-owners fails and is tolerated).
    ArmedPlan part("partition@gns:*");
    ASSERT_TRUE(
        cluster->add_rule(make_rule(host, path, IoMode::kLocal)).is_ok());
    EXPECT_GE(counter_value("gns.replicate.failed"), 2u);
    EXPECT_FALSE(cluster->converged());
  }
  {
    // Phase 2: the primary is also dead; the same key written again
    // coordinates on the next owner — a genuinely concurrent version.
    ArmedPlan part(strings::cat("partition@gns:*;die@gns:", primary));
    ASSERT_TRUE(
        cluster->add_rule(make_rule(host, path, IoMode::kGridBuffer))
            .is_ok());
  }
  // Fault healed (disarmed). Anti-entropy must detect the concurrent
  // pair, join it deterministically, and converge every digest.
  ASSERT_TRUE(cluster->converge(4).is_ok());
  EXPECT_GE(counter_value("gns.antientropy.rounds"), 1u);
  EXPECT_GE(counter_value("gns.antientropy.repaired"), 1u);
  EXPECT_GE(counter_value("gns.conflict.detected"), 1u);
  EXPECT_GE(counter_value("gns.conflict.resolved"), 1u);

  // Both writes had Lamport priority 1 on their coordinator, so the
  // deterministic tie-break is the greater writer id.
  const std::string winner = std::max(primary, secondary);
  const IoMode expect_mode =
      winner == primary ? IoMode::kLocal : IoMode::kGridBuffer;
  auto service = make_service(*cluster);
  for (const ReplicaAddress& replica : cluster->endpoints()) {
    const auto node = cluster->node(replica.name);
    ASSERT_NE(node, nullptr);
    const auto direct =
        node->store().lookup(map.shard_of(host, path), host, path);
    ASSERT_TRUE(direct.has_value()) << replica.name;
    EXPECT_EQ(direct->mode, expect_mode) << replica.name;
  }
  auto resolved = service->lookup(host, path);
  ASSERT_TRUE(resolved.is_ok()) << resolved.status();
  ASSERT_TRUE(resolved->has_value());
  EXPECT_EQ((*resolved)->mode, expect_mode);
}

TEST_F(GnsClusterTest, PartitionedPairStaysDivergentUntilHeal) {
  auto cluster = make_cluster(2);
  ArmedPlan part("partition@gns:gns-0-gns-1");
  ASSERT_TRUE(
      cluster->add_rule(make_rule("h", "/p/q.dat", IoMode::kLocal))
          .is_ok());
  // Rounds run while the pair is severed repair nothing.
  EXPECT_EQ(cluster->run_antientropy_round(), 0u);
  EXPECT_FALSE(cluster->converged());
  EXPECT_GE(counter_value("fault.injected.partition"), 1u);
  fault::disarm();
  EXPECT_GE(cluster->run_antientropy_round(), 1u);
  EXPECT_TRUE(cluster->converged());
}

TEST_F(GnsClusterTest, ReplicaAddAndRemoveLoseNoLookups) {
  GnsCluster::Options options;
  options.num_shards = 8;
  options.replication = 2;  // real handoffs: shards move between owners
  options.handoff_lease = std::chrono::milliseconds(1500);
  auto cluster = make_cluster(3, options);
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(cluster
                    ->add_rule(make_rule(
                        "jagan", strings::cat("/cfg/f", i, ".dat"),
                        IoMode::kLocal))
                    .is_ok());
  }

  ReplicatedNameService::Options service_options;
  service_options.map_refresh = std::chrono::milliseconds(100);
  auto service = make_service(*cluster, service_options);

  std::atomic<bool> stop{false};
  std::atomic<int> lookups{0};
  std::atomic<int> failures{0};
  std::thread reader([&] {
    int i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const std::string path = strings::cat("/cfg/f", i % 16, ".dat");
      auto result = service->lookup("jagan", path);
      if (!result.is_ok() || !result->has_value() ||
          (*result)->mode != IoMode::kLocal) {
        failures.fetch_add(1, std::memory_order_relaxed);
      }
      lookups.fetch_add(1, std::memory_order_relaxed);
      ++i;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  // Live reconfiguration under the reader: grow, then shrink. The map
  // refresh TTL (100ms) sits well inside the handoff lease (1500ms), so
  // stale-map reads still land on an owner that serves the shard.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ASSERT_TRUE(
      cluster->add_replica("gns-3", net::inproc_endpoint("gh", "gns-3"))
          .is_ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  ASSERT_TRUE(cluster->remove_replica("gns-0").is_ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  stop.store(true, std::memory_order_relaxed);
  reader.join();

  EXPECT_GE(lookups.load(), 50);
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(cluster->replica_count(), 3u);
  EXPECT_EQ(cluster->map().epoch, 5u);  // 3 adds + 1 add + 1 remove

  // New writes coordinate under the new membership and still resolve.
  ASSERT_TRUE(
      cluster->add_rule(make_rule("jagan", "/cfg/late.dat", IoMode::kLocal))
          .is_ok());
  auto late = service->lookup("jagan", "/cfg/late.dat");
  ASSERT_TRUE(late.is_ok()) << late.status();
  EXPECT_TRUE(late->has_value());
}

TEST_F(GnsClusterTest, WriteThroughInvalidationClosesStaleReadWindow) {
  auto cluster = make_cluster(3);
  ASSERT_TRUE(
      cluster->add_rule(make_rule("jagan", "/inv/k.dat", IoMode::kLocal))
          .is_ok());

  // Long client cache + lease TTLs: without write-through invalidation
  // the remap below would stay invisible for the full 30s TTL.
  ReplicatedNameService::Options options;
  options.client_cache_ttl = std::chrono::seconds(30);
  options.lease_ttl = std::chrono::seconds(30);
  auto service = make_service(*cluster, options);
  auto before = service->lookup("jagan", "/inv/k.dat");
  ASSERT_TRUE(before.is_ok()) << before.status();
  ASSERT_TRUE(before->has_value());
  EXPECT_EQ((*before)->mode, IoMode::kLocal);
  EXPECT_EQ(service->lease_count(), 1u);

  ASSERT_TRUE(
      service->add_rule(make_rule("jagan", "/inv/k.dat",
                                  IoMode::kGridBuffer))
          .is_ok());
  auto after = service->lookup("jagan", "/inv/k.dat");
  ASSERT_TRUE(after.is_ok()) << after.status();
  ASSERT_TRUE(after->has_value());
  EXPECT_EQ((*after)->mode, IoMode::kGridBuffer);

  ASSERT_TRUE(service->remove_rule("jagan", "/inv/k.dat").is_ok());
  auto removed = service->lookup("jagan", "/inv/k.dat");
  ASSERT_TRUE(removed.is_ok()) << removed.status();
  EXPECT_FALSE(removed->has_value());
}

}  // namespace
}  // namespace griddles::gns
