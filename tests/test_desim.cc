// Tests for the analytic predictor, including agreement between the
// fluid model and the real scaled-clock runner.
#include <gtest/gtest.h>

#include "src/apps/paper_apps.h"
#include "src/common/tempfile.h"
#include "src/desim/predict.h"

namespace griddles::desim {
namespace {

using workflow::CouplingMode;
using workflow::WorkflowRunner;
using workflow::WorkflowSpec;

TEST(ClosedFormTest, BufferStreamThroughputLatencyBound) {
  testbed::LinkSpec wan{0.165, 0.40};  // AU-UK
  // 4 flushers x 4 KiB blocks: throughput is latency-bound, way below
  // the 400 KB/s the pipe could carry — the paper's §5.3 observation.
  const double bps = buffer_stream_bps(wan, 4096, 4);
  EXPECT_LT(bps, 100e3);
  EXPECT_GT(bps, 10e3);
  // Wider windows / bigger blocks recover bandwidth (ablation C's point).
  EXPECT_GT(buffer_stream_bps(wan, 65536, 16), 350e3);
  // Loopback streams are effectively unbounded.
  EXPECT_GT(buffer_stream_bps({0, 0}, 4096, 4), 1e15);
}

TEST(ClosedFormTest, CopyIsBandwidthBound) {
  testbed::LinkSpec wan{0.165, 0.40};
  const double copy_s = staged_copy_seconds(wan, 180u * 1000 * 1000);
  EXPECT_NEAR(copy_s, 180e6 / 0.4e6, 5.0);
  // Copy moves the same bytes far faster than a 4 KiB buffer stream.
  EXPECT_LT(copy_s, 180e6 / buffer_stream_bps(wan, 4096, 4) / 3);
}

apps::AppKernel make_kernel(const std::string& name, double work,
                            std::vector<apps::StreamSpec> inputs,
                            std::vector<apps::StreamSpec> outputs) {
  apps::AppKernel kernel;
  kernel.name = name;
  kernel.work_units = work;
  kernel.timesteps = 10;
  kernel.inputs = std::move(inputs);
  kernel.outputs = std::move(outputs);
  return kernel;
}

std::vector<apps::AppKernel> test_pipeline() {
  constexpr std::uint64_t kBytes = 2 * 1000 * 1000;
  return {
      make_kernel("a", 10, {}, {{"x.dat", kBytes}}),
      make_kernel("b", 4, {{"x.dat", kBytes}}, {{"y.dat", kBytes}}),
      make_kernel("c", 8, {{"y.dat", kBytes}}, {{"z.dat", 1000}}),
  };
}

TEST(PredictTest, SequentialMatchesHandComputation) {
  auto spec =
      WorkflowSpec::from_pipeline("p", test_pipeline(), {"brecca"});
  ASSERT_TRUE(spec.is_ok());
  WorkflowRunner::Options options;
  options.mode = CouplingMode::kSequentialFiles;
  auto prediction = predict(*spec, options);
  ASSERT_TRUE(prediction.is_ok());
  auto brecca = testbed::find_machine("brecca");
  // a: work + 2MB write; b: work + 4MB IO; c: work + ~2MB.
  const double disk = brecca->disk_mb_per_s * 1e6;
  const double expected = (10 + 4 + 8) / brecca->speed +
                          (2e6 * 4 + 2000) / disk;
  EXPECT_NEAR(prediction->total_seconds, expected, 0.5);
}

TEST(PredictTest, BuffersBeatSequentialOnFastDiskMachine) {
  auto spec =
      WorkflowSpec::from_pipeline("p", test_pipeline(), {"brecca"});
  WorkflowRunner::Options sequential;
  sequential.mode = CouplingMode::kSequentialFiles;
  WorkflowRunner::Options buffered;
  buffered.mode = CouplingMode::kGridBuffers;
  auto seq = predict(*spec, sequential);
  auto buf = predict(*spec, buffered);
  ASSERT_TRUE(seq.is_ok());
  ASSERT_TRUE(buf.is_ok());
  EXPECT_LT(buf->total_seconds, seq->total_seconds);
}

TEST(PredictTest, DistributedSequentialIncludesCopies) {
  auto spec = WorkflowSpec::from_pipeline("p", test_pipeline(),
                                          {"brecca", "brecca", "bouscat"});
  WorkflowRunner::Options options;
  options.mode = CouplingMode::kSequentialFiles;
  auto prediction = predict(*spec, options);
  ASSERT_TRUE(prediction.is_ok());
  EXPECT_GT(prediction->copy_seconds, 0.5);  // 0.4 MB over the AU-UK link
}

TEST(PredictTest, AgreesWithRealScaledRun) {
  // The fluid model and the real threaded runner should land within
  // ~35% of each other on a distributed buffered pipeline. The clock
  // must run slow enough that per-RPC wall overhead stays small in
  // model units: at 0.02 wall-s per model-s, 1 ms of scheduler noise is
  // only 0.05 model seconds (at 0.004 it was 0.25, which made the
  // measured side blow through the tolerance whenever ctest ran suites
  // in parallel on a loaded machine).
  auto scratch = TempDir::create("desim-agree");
  testbed::TestbedRuntime testbed(0.02, scratch->path().string());
  WorkflowRunner runner(testbed);
  auto spec = WorkflowSpec::from_pipeline("agree", test_pipeline(),
                                          {"brecca", "dione", "freak"});
  ASSERT_TRUE(spec.is_ok());
  WorkflowRunner::Options options;
  options.mode = CouplingMode::kGridBuffers;
  auto measured = runner.run(*spec, options);
  ASSERT_TRUE(measured.is_ok()) << measured.status();
  auto predicted = predict(*spec, options);
  ASSERT_TRUE(predicted.is_ok());
  EXPECT_NEAR(measured->total_seconds, predicted->total_seconds,
              0.5 * std::max(measured->total_seconds,
                              predicted->total_seconds));
}

TEST(PredictTest, SequentialAgreesWithRealRun) {
  auto scratch = TempDir::create("desim-seq");
  testbed::TestbedRuntime testbed(0.02, scratch->path().string());
  WorkflowRunner runner(testbed);
  auto spec =
      WorkflowSpec::from_pipeline("agree2", test_pipeline(), {"vpac27"});
  ASSERT_TRUE(spec.is_ok());
  WorkflowRunner::Options options;
  options.mode = CouplingMode::kSequentialFiles;
  auto measured = runner.run(*spec, options);
  ASSERT_TRUE(measured.is_ok()) << measured.status();
  auto predicted = predict(*spec, options);
  ASSERT_TRUE(predicted.is_ok());
  EXPECT_NEAR(measured->total_seconds, predicted->total_seconds,
              0.5 * std::max(measured->total_seconds,
                             predicted->total_seconds));
}

TEST(PredictTest, PaperClimatePredictionsHavePaperShape) {
  // Without running anything: the predictor alone should reproduce the
  // Table 4/5 *shape* from the calibrated constants.
  auto climate = apps::climate_pipeline();

  // Table 4 shape: buffers beat concurrent-files on every machine.
  for (const std::string machine :
       {"dione", "brecca", "freak", "bouscat", "vpac27"}) {
    auto spec = WorkflowSpec::from_pipeline("t4", climate, {machine});
    WorkflowRunner::Options files;
    files.mode = CouplingMode::kConcurrentFiles;
    WorkflowRunner::Options buffers;
    buffers.mode = CouplingMode::kGridBuffers;
    auto files_p = predict(*spec, files);
    auto buffers_p = predict(*spec, buffers);
    ASSERT_TRUE(files_p.is_ok());
    ASSERT_TRUE(buffers_p.is_ok());
    EXPECT_LT(buffers_p->total_seconds, files_p->total_seconds)
        << machine;
  }

  // Table 5 shape: buffers win on the metro link, sequential+copy wins
  // on the high-latency AU-UK pairing.
  {
    auto spec = WorkflowSpec::from_pipeline(
        "t5a", climate, {"brecca", "brecca", "dione"});
    WorkflowRunner::Options files;
    files.mode = CouplingMode::kSequentialFiles;
    WorkflowRunner::Options buffers;
    buffers.mode = CouplingMode::kGridBuffers;
    EXPECT_LT(predict(*spec, buffers)->total_seconds,
              predict(*spec, files)->total_seconds);
  }
  {
    auto spec = WorkflowSpec::from_pipeline(
        "t5b", climate, {"brecca", "brecca", "bouscat"});
    WorkflowRunner::Options files;
    files.mode = CouplingMode::kSequentialFiles;
    WorkflowRunner::Options buffers;
    buffers.mode = CouplingMode::kGridBuffers;
    EXPECT_GT(predict(*spec, buffers)->total_seconds,
              predict(*spec, files)->total_seconds);
  }
}

}  // namespace
}  // namespace griddles::desim
