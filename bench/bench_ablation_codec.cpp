// Ablation A: the Web-Services envelope tax.
//
// The paper implemented the Grid Buffer service over SOAP "leveraging the
// enormous effort in Web Services" and noting firewall traversal (§4).
// This bench quantifies what that choice costs on the wire: frame
// encode/decode and full RPC round trips under binary vs SOAP framing.
#include <benchmark/benchmark.h>

#include "src/common/clock.h"
#include "src/net/inproc.h"
#include "src/net/rpc.h"

namespace {

using namespace griddles;

void BM_FrameEncode(benchmark::State& state) {
  const auto format = static_cast<net::WireFormat>(state.range(0));
  const std::size_t payload = static_cast<std::size_t>(state.range(1));
  net::RpcFrame frame;
  frame.kind = net::FrameKind::kRequest;
  frame.id = 7;
  frame.method = 2;
  frame.payload = Bytes(payload, std::byte{0x42});
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::encode_frame(frame, format));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(payload));
  state.SetLabel(format == net::WireFormat::kBinary ? "binary" : "soap");
}
BENCHMARK(BM_FrameEncode)
    ->Args({0, 4096})
    ->Args({1, 4096})
    ->Args({0, 65536})
    ->Args({1, 65536});

void BM_FrameDecode(benchmark::State& state) {
  const auto format = static_cast<net::WireFormat>(state.range(0));
  const std::size_t payload = static_cast<std::size_t>(state.range(1));
  net::RpcFrame frame;
  frame.payload = Bytes(payload, std::byte{0x42});
  const Bytes wire = net::encode_frame(frame, format);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::decode_frame(wire, format));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(payload));
  state.SetLabel(format == net::WireFormat::kBinary ? "binary" : "soap");
}
BENCHMARK(BM_FrameDecode)
    ->Args({0, 4096})
    ->Args({1, 4096})
    ->Args({0, 65536})
    ->Args({1, 65536});

struct RpcEnv {
  RpcEnv(net::WireFormat format)
      : network(clock), server_transport(network.transport("dione")),
        client_transport(network.transport("jagan")),
        server(*server_transport, net::inproc_endpoint("dione", "svc"),
               format),
        client(*client_transport, net::inproc_endpoint("dione", "svc"),
               format) {
    server.register_method(
        1, [](ByteSpan request, const net::RpcContext&) -> Result<Bytes> {
          return Bytes(request.begin(), request.end());
        });
    (void)server.start();
  }
  RealClock clock;
  net::InProcNetwork network;
  std::unique_ptr<net::Transport> server_transport;
  std::unique_ptr<net::Transport> client_transport;
  net::RpcServer server;
  net::RpcClient client;
};

void BM_RpcRoundTrip(benchmark::State& state) {
  const auto format = static_cast<net::WireFormat>(state.range(0));
  const std::size_t payload = static_cast<std::size_t>(state.range(1));
  RpcEnv env(format);
  const Bytes request(payload, std::byte{0x17});
  for (auto _ : state) {
    auto reply = env.client.call(1, request);
    if (!reply.is_ok()) state.SkipWithError("rpc failed");
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(payload));
  state.SetLabel(format == net::WireFormat::kBinary ? "binary" : "soap");
}
BENCHMARK(BM_RpcRoundTrip)
    ->Args({0, 4096})
    ->Args({1, 4096})
    ->Args({0, 65536})
    ->Args({1, 65536});

}  // namespace
