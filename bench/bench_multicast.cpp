// Multicast distribution bench (DESIGN.md §12): stage one file from a
// source to N=100 consumers, naively (N point-to-point pushes) and
// through the bounded-fanout relay tree, on a modelled WAN where every
// host pair shares a 10 MB/s, 10 ms link.
//
// The headline is source-side egress: naive sends the file N times from
// the source's uplink; the tree sends it root_fanout (= 2) times and
// lets the relays' links carry the rest. `BENCH_multicast.json` records
// both ratios (exact, deterministic) and both model-time makespans.
//
//   ./bench_multicast [--fast] [--spans=<file|->]
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/table_common.h"
#include "src/common/tempfile.h"
#include "src/multicast/dist_tree.h"
#include "src/net/inproc.h"
#include "src/remote/copier.h"
#include "src/remote/file_server.h"
#include "src/vfs/local_client.h"

using namespace griddles;

namespace {

Bytes pattern(std::size_t n) {
  Bytes out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<std::byte>(i * 131 + 7);
  }
  return out;
}

std::string host_name(int i) {
  char buffer[8];
  std::snprintf(buffer, sizeof buffer, "n%03d", i);
  return buffer;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::TableConfig config =
      bench::TableConfig::from_args(argc, argv);
  bool fast = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--fast") == 0) fast = true;
  }

  constexpr int kDestinations = 100;
  const std::size_t file_bytes = fast ? 64 * 1024 : 4 * 1024 * 1024;
  const std::uint32_t chunk = fast ? 16 * 1024 : 256 * 1024;
  // Model seconds run this much faster than wall: the full-size naive
  // leg (~40 model seconds of WAN transmit) finishes in tens of ms.
  ScaledClock clock(fast ? 1.0 / 4000.0 : 1.0 / 1000.0);

  struct ModelClockScope {
    explicit ModelClockScope(const Clock* model_clock) {
      if (obs::SpanCollector::global().enabled()) {
        obs::SpanCollector::global().set_model_clock(model_clock);
      }
    }
    ~ModelClockScope() {
      obs::SpanCollector::global().set_model_clock(nullptr);
    }
  } model_clock_scope(&clock);

  net::InProcNetwork network(clock);
  net::LinkModel wan;
  wan.latency = std::chrono::milliseconds(10);
  wan.bandwidth_bytes_per_sec = 10e6;
  network.links().set_default(wan);

  auto scratch = TempDir::create("bench-multicast");
  if (!scratch.is_ok()) {
    std::fprintf(stderr, "scratch: %s\n",
                 scratch.status().to_string().c_str());
    return 1;
  }

  auto source_transport = network.transport("src");
  std::vector<std::unique_ptr<net::Transport>> transports;
  std::vector<std::unique_ptr<remote::FileServer>> servers;
  std::vector<remote::MultiCopyTarget> targets;
  for (int i = 0; i < kDestinations; ++i) {
    const std::string host = host_name(i);
    transports.push_back(network.transport(host));
    servers.push_back(std::make_unique<remote::FileServer>(
        scratch->file("export-" + host), *transports.back(),
        net::inproc_endpoint(host, "fs")));
    if (!servers.back()->start().is_ok()) {
      std::fprintf(stderr, "cannot start file server on %s\n",
                   host.c_str());
      return 1;
    }
    targets.push_back(
        {host, servers.back()->endpoint(), "stage/pay.bin"});
  }

  const std::string local = scratch->file("pay.bin").string();
  if (!vfs::write_file(local, pattern(file_bytes)).is_ok()) {
    std::fprintf(stderr, "cannot write source file\n");
    return 1;
  }

  // Every pair shares the same WAN model, so the estimator is flat; the
  // tree's shape comes from the fanout bounds.
  const multicast::PairEstimator estimator =
      [](const std::string&, const std::string&)
      -> Result<nws::LinkEstimate> {
    return nws::LinkEstimate{0.01, 10e6};
  };

  remote::FileCopier::Options copier_options;
  copier_options.chunk_size = chunk;
  remote::FileCopier copier(*source_transport, clock, copier_options);

  bench::print_header("Multicast", "1 source -> 100 consumers");
  std::printf("(%zu KiB file, %u KiB chunks, 10 MB/s / 10 ms links)\n\n",
              file_bytes / 1024, chunk / 1024);

  // Naive: one push per destination, back to back — N x file_bytes off
  // the source's uplink.
  const Duration naive_start = clock.now();
  for (const remote::MultiCopyTarget& target : targets) {
    auto stats = copier.push(local, target.endpoint, target.remote_path);
    if (!stats.is_ok()) {
      std::fprintf(stderr, "naive push to %s: %s\n", target.host.c_str(),
                   stats.status().to_string().c_str());
      return 1;
    }
  }
  const double naive_s = to_seconds_d(clock.now() - naive_start);
  const double naive_ratio = kDestinations;

  // Tree: same destinations through copy_to_many.
  const Duration tree_start = clock.now();
  auto stats = copier.copy_to_many(local, targets, {}, estimator);
  if (!stats.is_ok()) {
    std::fprintf(stderr, "copy_to_many: %s\n",
                 stats.status().to_string().c_str());
    return 1;
  }
  const double multicast_s = to_seconds_d(clock.now() - tree_start);
  const double multicast_ratio =
      static_cast<double>(stats->source_bytes_sent) /
      static_cast<double>(file_bytes);

  std::printf("%-22s %12s %18s\n", "", "model time", "source egress");
  std::printf("%-22s %10.2f s %15.1f x file\n", "naive (100 pushes)",
              naive_s, naive_ratio);
  std::printf("%-22s %10.2f s %15.1f x file\n", "multicast tree",
              multicast_s, multicast_ratio);
  std::printf("\ntree depth %d, %d destinations, %d re-parents\n",
              stats->tree_depth, stats->destinations, stats->reparents);

  bench::BenchJson json("multicast");
  json.add_time("naive_s", naive_s);
  json.add_time("multicast_s", multicast_s);
  json.add_time("naive_source_ratio", naive_ratio);
  json.add_time("multicast_source_ratio", multicast_ratio);
  const bool wrote_json = json.write();
  const bool wrote_spans = bench::write_spans(config);

  for (auto& server : servers) server->stop();
  return wrote_json && wrote_spans ? 0 : 1;
}
