// Table 5 reproduction: C-CAM and cc2lam on machine A, DARLAM on machine
// B, for the paper's six pairings — either run sequentially with a
// GridFTP-style file copy between them, or all-concurrent over Grid
// Buffers.
//
// Shape to reproduce: buffers win when the A-B link is fast/low-latency
// (intra-Melbourne pairs); sequential+copy wins on the high-latency
// international links (brecca->bouscat, brecca->freak).
//
//   ./bench_table5_distributed [--fast|--exact|--scale=N|--spans=F]
#include "bench/table_common.h"

using namespace griddles;
using namespace griddles::bench;

namespace {
struct PaperRow {
  const char* a;  // runs C-CAM + cc2lam
  const char* b;  // runs DARLAM
  double files_total_s;    // cumulative incl. file copy
  double buffers_total_s;
  bool paper_buffers_win;
};
// Table 5 rows, converted to seconds (DARLAM row = total).
constexpr PaperRow kPaper[] = {
    {"dione", "vpac27", 3629, 2927, true},
    {"brecca", "dione", 1848, 1510, true},
    {"brecca", "bouscat", 3364, 4221, false},
    {"dione", "brecca", 2225, 2364, false},
    {"brecca", "vpac27", 2877, 2443, true},
    {"brecca", "freak", 2035, 2505, false},
};
}  // namespace

int main(int argc, char** argv) {
  const TableConfig config = TableConfig::from_args(argc, argv);
  print_header("Table 5",
               "C-CAM+cc2lam on A, DARLAM on B: sequential+copy vs "
               "buffers");
  std::printf("%-8s>%-8s| %-19s | %-19s | %-19s | winner (paper)\n", "A",
              "B", "paper files/buf", "measured files/buf",
              "predicted files/buf");
  std::printf("%.106s\n",
              "-----------------------------------------------------------"
              "-----------------------------------------------");

  bool all_ok = true;
  BenchJson bench_json("table5");
  int crossover_matches = 0;
  for (const PaperRow& row : kPaper) {
    const std::vector<std::string> machines = {row.a, row.a, row.b};
    auto files = run_experiment(
        strings::cat("t5f-", row.a, "-", row.b), apps::climate_pipeline,
        machines, workflow::CouplingMode::kSequentialFiles, config);
    auto buffers = run_experiment(
        strings::cat("t5b-", row.a, "-", row.b), apps::climate_pipeline,
        machines, workflow::CouplingMode::kGridBuffers, config);
    if (!files.is_ok() || !buffers.is_ok()) {
      std::fprintf(stderr, "%s->%s: files=%s buffers=%s\n", row.a, row.b,
                   files.status().to_string().c_str(),
                   buffers.status().to_string().c_str());
      all_ok = false;
      continue;
    }
    const double files_s = files->measured.total_seconds;
    const double buffers_s = buffers->measured.total_seconds;
    bench_json.add_time(strings::cat(row.a, "-", row.b, ".files"), files_s);
    bench_json.add_time(strings::cat(row.a, "-", row.b, ".buffers"),
                        buffers_s);
    const bool buffers_win = buffers_s < files_s;
    if (buffers_win == row.paper_buffers_win) ++crossover_matches;
    std::printf("%-8s>%-8s| %8s / %8s | %8s / %8s | %8s / %8s | %s (%s)%s\n",
                row.a, row.b, hms(row.files_total_s).c_str(),
                hms(row.buffers_total_s).c_str(), hms(files_s).c_str(),
                hms(buffers_s).c_str(),
                hms(files->predicted.total_seconds).c_str(),
                hms(buffers->predicted.total_seconds).c_str(),
                buffers_win ? "buffers" : "files  ",
                row.paper_buffers_win ? "buffers" : "files",
                buffers_win == row.paper_buffers_win ? "" : "  <-- MISMATCH");
  }
  std::printf("\nCrossover agreement with the paper: %d/6 pairings.\n",
              crossover_matches);
  std::printf(
      "(Paper's conclusion: fast, low-latency links favour buffers; "
      "high-latency WAN links favour sequential runs with bulk file "
      "copies, because the copy \"sends larger blocks\".)\n");
  if (!bench_json.write()) all_ok = false;
  if (!write_spans(config)) all_ok = false;
  return all_ok && crossover_matches >= 5 ? 0 : 1;
}
