// Table 2 reproduction: the mechanical-engineering durability pipeline
// (CHAMMY -> PAFEC -> MAKE_SF_FILES -> FAST -> OBJECTIVE, Figure 5).
//
//   exp 1: all programs on jagan, conventional files          (99:17)
//   exp 2: all programs on jagan, GridFiles (buffer channels) (89:17)
//   exp 3: distributed across koume00/jagan/dione/vpac27/freak (55:11)
//
//   ./bench_table2_durability [--fast|--exact|--scale=N|--spans=F]
#include "bench/table_common.h"

using namespace griddles;
using namespace griddles::bench;

int main(int argc, char** argv) {
  const TableConfig config = TableConfig::from_args(argc, argv);
  print_header("Table 2", "durability pipeline experiments");

  struct Experiment {
    const char* label;
    std::vector<std::string> machines;
    workflow::CouplingMode mode;
    double paper_total_s;
  };
  const Experiment experiments[] = {
      {"exp1: all on jagan, files",
       {"jagan"},
       workflow::CouplingMode::kSequentialFiles,
       99 * 60 + 17},
      {"exp2: all on jagan, GridFiles",
       {"jagan"},
       workflow::CouplingMode::kGridBuffers,
       89 * 60 + 17},
      // Paper assignment: Chammy on koume00, Pafec on jagan,
      // Make_sf_file on dione, Fast on vpac27, Objective on freak.
      {"exp3: distributed, GridFiles",
       {"koume00", "jagan", "dione", "vpac27", "freak"},
       workflow::CouplingMode::kGridBuffers,
       55 * 60 + 11},
  };

  std::printf("%-30s | %-7s | %-8s | %-9s | stage completions (model s)\n",
              "experiment", "paper", "measured", "predicted");
  std::printf("%.110s\n",
              "-----------------------------------------------------------"
              "---------------------------------------------------");

  bool all_ok = true;
  BenchJson bench_json("table2");
  std::vector<double> totals;
  int exp_index = 0;
  for (const Experiment& experiment : experiments) {
    ++exp_index;
    auto result = run_experiment("t2", apps::durability_pipeline,
                                 experiment.machines, experiment.mode,
                                 config);
    if (!result.is_ok()) {
      std::fprintf(stderr, "%s: %s\n", experiment.label,
                   result.status().to_string().c_str());
      all_ok = false;
      totals.push_back(0);
      continue;
    }
    std::string stages;
    for (const auto& task : result->measured.tasks) {
      stages += strings::cat(task.name, "@", task.machine, "=",
                             static_cast<long long>(task.finished_s + 0.5),
                             " ");
    }
    std::printf("%-30s | %7s | %8s | %9s | %s\n", experiment.label,
                mmss(experiment.paper_total_s).c_str(),
                mmss(result->measured.total_seconds).c_str(),
                mmss(result->predicted.total_seconds).c_str(),
                stages.c_str());
    totals.push_back(result->measured.total_seconds);
    const std::string key = strings::cat("exp", exp_index);
    bench_json.add_time(key + ".total", result->measured.total_seconds);
    bench_json.add_time(key + ".predicted",
                        result->predicted.total_seconds);
  }

  if (totals.size() == 3 && totals[0] > 0) {
    const bool shape = totals[1] < totals[0] && totals[2] < totals[1];
    std::printf("\nShape (exp3 < exp2 < exp1): %s\n",
                shape ? "OK" : "BROKEN");
    std::printf(
        "(Paper: buffers pipeline the stages for a ~10%% saving on one "
        "machine; distributing to faster machines nearly halves the "
        "total.)\n");
    if (!shape) all_ok = false;
  }
  if (!bench_json.write()) all_ok = false;
  if (!write_spans(config)) all_ok = false;
  return all_ok ? 0 : 1;
}
