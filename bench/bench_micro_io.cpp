// Micro benchmarks of the IO mechanisms behind §3/§4: local files, remote
// proxy reads, staged copies, and Grid Buffer streams (async vs
// synchronous writers, binary vs SOAP framing appears in
// bench_ablation_codec).
#include <benchmark/benchmark.h>

#include <thread>

#include "src/common/tempfile.h"
#include "src/gridbuffer/client.h"
#include "src/gridbuffer/server.h"
#include "src/net/inproc.h"
#include "src/remote/copier.h"
#include "src/remote/file_server.h"
#include "src/remote/remote_client.h"
#include "src/vfs/local_client.h"

namespace {

using namespace griddles;

struct Env {
  Env()
      : scratch(*TempDir::create("bench-micro")), network(clock),
        transport(network.transport("dione")),
        server_transport(network.transport("dione")),
        file_server(scratch.file("export"), *server_transport,
                    net::inproc_endpoint("dione", "fs")),
        buffer_server(scratch.file("gbuf").string(), *server_transport,
                      net::inproc_endpoint("dione", "gbuf")) {
    (void)file_server.start();
    (void)buffer_server.start();
  }

  TempDir scratch;
  RealClock clock;
  net::InProcNetwork network;
  std::unique_ptr<net::Transport> transport;
  std::unique_ptr<net::Transport> server_transport;
  remote::FileServer file_server;
  gridbuffer::GridBufferServer buffer_server;
};

Env& env() {
  static Env instance;
  return instance;
}

void BM_LocalFileWrite(benchmark::State& state) {
  const std::size_t total = 1 << 20;
  const std::size_t chunk = static_cast<std::size_t>(state.range(0));
  Bytes data(chunk, std::byte{0x42});
  const std::string path = env().scratch.file("local.bin").string();
  for (auto _ : state) {
    auto file = vfs::LocalFileClient::open(path, vfs::OpenFlags::output());
    for (std::size_t done = 0; done < total; done += chunk) {
      benchmark::DoNotOptimize(file.value()->write(data));
    }
    (void)file.value()->close();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(total));
}
BENCHMARK(BM_LocalFileWrite)->Arg(4096)->Arg(65536);

void BM_RemoteProxyRead(benchmark::State& state) {
  const std::size_t total = 1 << 20;
  Bytes payload(total, std::byte{0x17});
  (void)vfs::write_file(
      (env().file_server.root() / "proxy.bin").string(), payload);
  Bytes buffer(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto file = remote::RemoteFileClient::open(
        *env().transport, env().file_server.endpoint(), "proxy.bin",
        vfs::OpenFlags::input());
    std::size_t done = 0;
    while (done < total) {
      auto got = file.value()->read({buffer.data(), buffer.size()});
      if (!got.is_ok() || *got == 0) break;
      done += *got;
    }
    (void)file.value()->close();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(total));
}
BENCHMARK(BM_RemoteProxyRead)->Arg(4096)->Arg(65536);

void BM_StagedCopyFetch(benchmark::State& state) {
  const std::size_t total = 4 << 20;
  Bytes payload(total, std::byte{0x31});
  (void)vfs::write_file(
      (env().file_server.root() / "copy.bin").string(), payload);
  const std::string local = env().scratch.file("staged.bin").string();
  const int streams = static_cast<int>(state.range(0));
  for (auto _ : state) {
    remote::FileCopier::Options options;
    options.parallel_streams = streams;
    remote::FileCopier copier(*env().transport, env().clock, options);
    auto stats =
        copier.fetch(env().file_server.endpoint(), "copy.bin", local);
    benchmark::DoNotOptimize(stats);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(total));
}
BENCHMARK(BM_StagedCopyFetch)->Arg(1)->Arg(4);

void BM_GridBufferStream(benchmark::State& state) {
  const std::size_t total = 1 << 20;
  const bool synchronous = state.range(0) != 0;
  static int run = 0;
  Bytes chunk(65536, std::byte{0x66});
  for (auto _ : state) {
    const std::string channel = "bench/stream-" + std::to_string(run++);
    gridbuffer::GridBufferWriter::Options writer_options;
    writer_options.synchronous = synchronous;
    writer_options.channel.cache_enabled = false;
    auto writer = gridbuffer::GridBufferWriter::open(
        *env().transport, env().buffer_server.endpoint(), channel,
        writer_options);
    std::thread reader_thread([&] {
      gridbuffer::GridBufferReader::Options reader_options;
      reader_options.channel.cache_enabled = false;
      auto reader = gridbuffer::GridBufferReader::open(
          *env().transport, env().buffer_server.endpoint(), channel,
          reader_options);
      Bytes buffer(65536);
      while (true) {
        auto got = reader.value()->read({buffer.data(), buffer.size()});
        if (!got.is_ok() || *got == 0) break;
      }
      (void)reader.value()->close();
    });
    for (std::size_t done = 0; done < total; done += chunk.size()) {
      (void)writer.value()->write(chunk);
    }
    (void)writer.value()->close();
    reader_thread.join();
    (void)env().buffer_server.store().remove(channel);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(total));
  state.SetLabel(synchronous ? "synchronous" : "async-pipelined");
}
BENCHMARK(BM_GridBufferStream)->Arg(0)->Arg(1);

}  // namespace
