// Ablation C: Grid Buffer latency sensitivity vs block size and window.
//
// The paper observed that buffer streams lose to bulk file copies on
// high-latency links because "the file copy sends larger blocks of data,
// and thus the performance is less sensitive to network latency", and
// closed by "investigating whether we can produce a version of the
// buffer code that is less sensitive to network latency". This bench IS
// that investigation: it streams a fixed payload over modelled links
// while sweeping the block size and the number of flusher streams
// (in-flight window), with the closed-form prediction alongside.
//
//   ./bench_ablation_blocksize [--fast]
#include <cstdio>
#include <cstring>
#include <thread>

#include "src/common/tempfile.h"
#include "src/desim/predict.h"
#include "src/gridbuffer/client.h"
#include "src/gridbuffer/server.h"
#include "src/net/inproc.h"

using namespace griddles;

namespace {

struct LinkCase {
  const char* name;
  testbed::LinkSpec spec;
};

}  // namespace

int main(int argc, char** argv) {
  bool fast = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--fast") == 0) fast = true;
  }
  // A gentle 500x compression keeps the real per-RPC wall cost small
  // against the modelled per-block round trips on WAN links; rows with
  // sub-millisecond modelled latency are inherently bounded by the real
  // RPC stack instead (see the note under each table).
  const double wall_per_model = fast ? 1.0 / 2000 : 1.0 / 500;
  const double byte_scale = 64.0;
  const std::uint64_t payload_model = 5u * 1000 * 1000;  // 5 MB stream

  const LinkCase links[] = {
      {"metro (2ms, 3.6MB/s)", {0.002, 3.6}},
      {"AU-US (90ms, 0.84MB/s)", {0.090, 0.84}},
      {"AU-UK (165ms, 0.40MB/s)", {0.165, 0.40}},
  };
  const std::uint32_t block_sizes[] = {1024, 4096, 16384, 65536};
  const int flusher_counts[] = {1, 4, 16};

  std::printf(
      "\n=== Ablation C: buffer stream throughput vs block size and "
      "window ===\n(5 MB stream; measured = real Grid Buffer stack on "
      "the modelled link; predicted = closed form; KB/s in model units. "
      "On links with sub-ms latency the measured column is bounded by "
      "the real RPC stack, not the model — compare trends, and the WAN "
      "rows, against the prediction.)\n\n");

  for (const LinkCase& link : links) {
    std::printf("--- %s ---\n", link.name);
    std::printf("%-10s %-9s %12s %12s\n", "block", "flushers",
                "measured", "predicted");
    for (const std::uint32_t block : block_sizes) {
      for (const int flushers : flusher_counts) {
        // Model-time prediction at paper scale.
        const double predicted_bps =
            desim::buffer_stream_bps(link.spec, block, flushers);

        // Real run, scaled: bytes and block size divided by byte_scale,
        // link bandwidth divided likewise (latency unchanged).
        ScaledClock clock(wall_per_model);
        net::InProcNetwork network(clock);
        net::LinkModel model;
        model.latency = from_seconds_d(link.spec.latency_s);
        model.bandwidth_bytes_per_sec =
            link.spec.mb_per_s * 1e6 / byte_scale;
        network.links().set_link("a", "b", model);
        auto scratch = TempDir::create("abl-c");
        auto server_transport = network.transport("b");
        gridbuffer::GridBufferServer server(
            scratch->file("cache").string(), *server_transport,
            net::inproc_endpoint("b", "gbuf"));
        if (!server.start().is_ok()) return 1;
        auto writer_transport = network.transport("a");
        auto reader_transport = network.transport("b");

        const std::uint64_t payload_real =
            payload_model / static_cast<std::uint64_t>(byte_scale);
        const std::uint32_t block_real = static_cast<std::uint32_t>(
            std::max<std::uint64_t>(16, block / byte_scale));

        gridbuffer::GridBufferWriter::Options writer_options;
        writer_options.channel.block_size = block_real;
        writer_options.channel.cache_enabled = false;
        writer_options.flusher_threads = flushers;
        writer_options.window_blocks =
            static_cast<std::size_t>(flushers) * 4;

        const Duration start = clock.now();
        std::thread producer([&] {
          auto writer = gridbuffer::GridBufferWriter::open(
              *writer_transport, server.endpoint(), "abl", writer_options);
          if (!writer.is_ok()) return;
          Bytes chunk(block_real * 8, std::byte{0x7e});
          std::uint64_t sent = 0;
          while (sent < payload_real) {
            const std::size_t n = static_cast<std::size_t>(
                std::min<std::uint64_t>(chunk.size(), payload_real - sent));
            if (!(*writer)->write({chunk.data(), n}).is_ok()) return;
            sent += n;
          }
          (void)(*writer)->close();
        });
        gridbuffer::GridBufferReader::Options reader_options;
        reader_options.channel.block_size = block_real;
        reader_options.channel.cache_enabled = false;
        auto reader = gridbuffer::GridBufferReader::open(
            *reader_transport, server.endpoint(), "abl", reader_options);
        std::uint64_t received = 0;
        if (reader.is_ok()) {
          Bytes buffer(block_real * 8);
          while (true) {
            auto n = (*reader)->read({buffer.data(), buffer.size()});
            if (!n.is_ok() || *n == 0) break;
            received += *n;
          }
          (void)(*reader)->close();
        }
        producer.join();
        const double elapsed = to_seconds_d(clock.now() - start);
        server.stop();
        const double measured_bps =
            received > 0 ? static_cast<double>(payload_model) / elapsed : 0;

        std::printf("%-10u %-9d %10.0f/s %10.0f/s\n", block, flushers,
                    measured_bps / 1000, predicted_bps / 1000);
      }
    }
    std::printf("\n");
  }
  std::printf(
      "(Small blocks + few streams collapse on high-latency links — the "
      "paper's Table 5 buffer losses; bigger blocks or wider windows "
      "restore bandwidth-bound behaviour, the paper's proposed fix.)\n");
  return 0;
}
