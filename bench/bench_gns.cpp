// Multi-master GNS bench (DESIGN.md §13): a 3-replica cluster behind
// the ReplicatedNameService on a modelled WAN (20 MB/s, 25 ms links).
//
// Three legs:
//   full      — replication=0 (every replica owns every shard): each
//               write coordinates locally then pushes 2 replicate RPCs.
//   sharded   — replication=1 over 64 shards: a write lands on its
//               rendezvous owner only, no replication fan-out.
//   repair    — full replication again, but every peer link severed by
//               partition@gns:* while the writes land; after the heal,
//               anti-entropy converges the divergent stores. Every
//               divergent write must be repaired onto exactly the 2
//               replicas that missed it, so repaired/write == 2 exactly
//               (the deterministic metric the perf gate holds).
//
// `BENCH_gns.json` records the two write+lookup model times and the
// repair invariants; repair model time is printed but not gated (its
// RPC count is large yet cheap, so CPU scaling noise dominates it).
//
//   ./bench_gns [--fast] [--spans=<file|->]
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/table_common.h"
#include "src/fault/plan.h"
#include "src/gns/antientropy.h"
#include "src/gns/replicated.h"
#include "src/net/inproc.h"
#include "src/obs/metrics.h"

using namespace griddles;

namespace {

constexpr int kReplicas = 3;

std::uint64_t counter_value(const char* name) {
  return obs::MetricsRegistry::global().counter(name).value();
}

gns::MappingRule exact_rule(int i) {
  gns::MappingRule rule;
  rule.host_pattern = "jagan";
  rule.path_pattern = strings::cat("/data/f", i, ".dat");
  rule.mapping.mode = gns::IoMode::kLocal;
  return rule;
}

/// One cluster + client-service deployment on its own network slice.
struct Deployment {
  net::InProcNetwork network;
  std::unique_ptr<net::Transport> cluster_transport;
  std::unique_ptr<net::Transport> client_transport;
  std::unique_ptr<gns::GnsCluster> cluster;
  std::unique_ptr<gns::ReplicatedNameService> service;

  Deployment(Clock& clock, std::uint32_t shards,
             std::uint32_t replication)
      : network(clock) {
    net::LinkModel wan;
    wan.latency = std::chrono::milliseconds(25);
    wan.bandwidth_bytes_per_sec = 20e6;
    network.links().set_default(wan);
    cluster_transport = network.transport("hub");
    client_transport = network.transport("jagan");

    gns::GnsCluster::Options options;
    options.num_shards = shards;
    options.replication = replication;
    options.ae_interval = std::chrono::milliseconds(0);  // manual ticks
    cluster = std::make_unique<gns::GnsCluster>(*cluster_transport,
                                                options);
    for (int i = 0; i < kReplicas; ++i) {
      const std::string name = strings::cat("gns-", i);
      const Status added = cluster->add_replica(
          name, net::inproc_endpoint(strings::cat("g", i), "gns"));
      if (!added.is_ok()) {
        std::fprintf(stderr, "add_replica: %s\n",
                     added.to_string().c_str());
        std::exit(1);
      }
    }
    if (const Status started = cluster->start(); !started.is_ok()) {
      std::fprintf(stderr, "cluster start: %s\n",
                   started.to_string().c_str());
      std::exit(1);
    }

    gns::ReplicatedNameService::Options service_options;
    // One map fetch up front, none mid-leg: keeps the RPC schedule
    // identical from run to run.
    service_options.map_refresh = std::chrono::seconds(60);
    service = std::make_unique<gns::ReplicatedNameService>(
        *client_transport, service_options);
    for (const gns::ReplicaAddress& replica : cluster->endpoints()) {
      service->add_replica(replica.name, replica.endpoint);
    }
  }

  ~Deployment() { cluster->stop(); }
};

/// N rule writes through the cluster, then one lookup per rule through
/// the replicated service. Returns model seconds.
double write_lookup_leg(ScaledClock& clock, std::uint32_t shards,
                        std::uint32_t replication, int n) {
  Deployment deploy(clock, shards, replication);
  const Duration start = clock.now();
  for (int i = 0; i < n; ++i) {
    const Status written = deploy.cluster->add_rule(exact_rule(i));
    if (!written.is_ok()) {
      std::fprintf(stderr, "add_rule: %s\n", written.to_string().c_str());
      std::exit(1);
    }
  }
  for (int i = 0; i < n; ++i) {
    auto found = deploy.service->lookup(
        "jagan", strings::cat("/data/f", i, ".dat"));
    if (!found.is_ok() || !found->has_value()) {
      std::fprintf(stderr, "lookup %d failed\n", i);
      std::exit(1);
    }
  }
  return to_seconds_d(clock.now() - start);
}

}  // namespace

int main(int argc, char** argv) {
  const bench::TableConfig config =
      bench::TableConfig::from_args(argc, argv);
  bool fast = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--fast") == 0) fast = true;
  }
  (void)config;

  const int n = fast ? 200 : 2000;
  // Model seconds dominated by RPC latency sleeps (wall-scaled), so the
  // scale is mild enough that CPU time stays a small additive bias.
  ScaledClock clock(fast ? 1.0 / 500.0 : 1.0 / 250.0);

  struct ModelClockScope {
    explicit ModelClockScope(const Clock* model_clock) {
      if (obs::SpanCollector::global().enabled()) {
        obs::SpanCollector::global().set_model_clock(model_clock);
      }
    }
    ~ModelClockScope() {
      obs::SpanCollector::global().set_model_clock(nullptr);
    }
  } model_clock_scope(&clock);

  bench::print_header("Multi-master GNS",
                      "3 replicas, 20 MB/s / 25 ms links");
  std::printf("(%d rule writes + %d lookups per leg)\n\n", n, n);

  const double full_s =
      write_lookup_leg(clock, /*shards=*/8, /*replication=*/0, n);
  const double sharded_s =
      write_lookup_leg(clock, /*shards=*/64, /*replication=*/1, n);

  // Repair leg: land every write while all peer links are severed, then
  // heal and let anti-entropy converge the replicas.
  double repair_s = 0;
  std::uint64_t repaired = 0;
  std::uint64_t rounds = 0;
  std::uint64_t severed = 0;
  {
    Deployment deploy(clock, /*shards=*/64, /*replication=*/0);
    auto plan = fault::Plan::parse("partition@gns:*");
    if (!plan.is_ok()) {
      std::fprintf(stderr, "plan: %s\n",
                   plan.status().to_string().c_str());
      return 1;
    }
    fault::arm(*plan, nullptr);
    for (int i = 0; i < n; ++i) {
      if (!deploy.cluster->add_rule(exact_rule(i)).is_ok()) {
        std::fprintf(stderr, "partitioned add_rule %d failed\n", i);
        fault::disarm();
        return 1;
      }
    }
    severed = counter_value("gns.replicate.failed");
    fault::disarm();

    const std::uint64_t repaired_before =
        counter_value("gns.antientropy.repaired");
    const std::uint64_t rounds_before =
        counter_value("gns.antientropy.rounds");
    const Duration start = clock.now();
    if (const Status st = deploy.cluster->converge(8); !st.is_ok()) {
      std::fprintf(stderr, "converge: %s\n", st.to_string().c_str());
      return 1;
    }
    repair_s = to_seconds_d(clock.now() - start);
    repaired = counter_value("gns.antientropy.repaired") - repaired_before;
    rounds = counter_value("gns.antientropy.rounds") - rounds_before;
  }
  const double repaired_per_write =
      static_cast<double>(repaired) / static_cast<double>(n);

  std::printf("%-28s %14s\n", "", "model time");
  std::printf("%-28s %12.2f s\n", "full replication (r=3)", full_s);
  std::printf("%-28s %12.2f s\n", "sharded ownership (r=1)", sharded_s);
  std::printf("%-28s %12.2f s\n", "anti-entropy repair", repair_s);
  std::printf(
      "\npartition severed %llu replicate pushes; repair applied %llu "
      "entries\nin %llu round(s) — %.2f repairs/write (2 exact: each "
      "write missed\nboth peers)\n",
      static_cast<unsigned long long>(severed),
      static_cast<unsigned long long>(repaired),
      static_cast<unsigned long long>(rounds), repaired_per_write);

  bench::BenchJson json("gns");
  json.add_time("full_s", full_s);
  json.add_time("sharded_s", sharded_s);
  json.add_time("repaired_per_divergent_write", repaired_per_write);
  json.add_time("repair_rounds", static_cast<double>(rounds));
  const bool wrote_json = json.write();
  const bool wrote_spans = bench::write_spans(config);
  return wrote_json && wrote_spans ? 0 : 1;
}
