// Table 3 reproduction: the climate pipeline (C-CAM -> cc2lam -> DARLAM)
// run *sequentially* with conventional local files on each of the five
// machines, reporting per-model wall times.
//
//   ./bench_table3_sequential [--fast|--exact|--scale=N|--spans=F]
#include "bench/table_common.h"

using namespace griddles;
using namespace griddles::bench;

namespace {
struct PaperRow {
  const char* machine;
  double ccam_s, cc2lam_s, darlam_s, total_s;
};
// Table 3, converted to seconds.
constexpr PaperRow kPaper[] = {
    {"dione", 1701, 8, 796, 2505},    {"brecca", 994, 8, 466, 1464},
    {"freak", 1831, 30, 818, 2679},   {"bouscat", 4049, 12, 1912, 5973},
    {"vpac27", 3922, 11, 1860, 5793},
};
}  // namespace

int main(int argc, char** argv) {
  const TableConfig config = TableConfig::from_args(argc, argv);
  print_header("Table 3", "sequential climate runs per machine");
  std::printf("%-9s | %-27s | %-27s | %s\n", "machine",
              "paper  (ccam/cc2lam/darlam)", "measured (same)",
              "predicted total");
  std::printf("%.96s\n",
              "-----------------------------------------------------------"
              "---------------------------------------");

  bool all_ok = true;
  BenchJson bench_json("table3");
  for (const PaperRow& row : kPaper) {
    auto result = run_experiment(
        std::string("t3-") + row.machine, apps::climate_pipeline,
        {row.machine}, workflow::CouplingMode::kSequentialFiles, config);
    if (!result.is_ok()) {
      std::fprintf(stderr, "%s: %s\n", row.machine,
                   result.status().to_string().c_str());
      all_ok = false;
      continue;
    }
    const auto* ccam = result->measured.task("ccam");
    const auto* cc2lam = result->measured.task("cc2lam");
    const auto* darlam = result->measured.task("darlam");
    bench_json.add_time(std::string(row.machine) + ".ccam",
                        ccam->finished_s);
    bench_json.add_time(std::string(row.machine) + ".cc2lam",
                        cc2lam->finished_s);
    bench_json.add_time(std::string(row.machine) + ".darlam",
                        darlam->finished_s);
    bench_json.add_time(std::string(row.machine) + ".total",
                        result->measured.total_seconds);
    bench_json.add_time(std::string(row.machine) + ".predicted",
                        result->predicted.total_seconds);
    std::printf("%-9s | %8s %8s %8s | %8s %8s %8s | %8s\n", row.machine,
                hms(row.ccam_s).c_str(), hms(row.cc2lam_s).c_str(),
                hms(row.total_s).c_str(), hms(ccam->finished_s).c_str(),
                hms(cc2lam->finished_s).c_str(),
                hms(darlam->finished_s).c_str(),
                hms(result->predicted.total_seconds).c_str());
    // Shape check: measured within 25% of the paper total.
    const double ratio = result->measured.total_seconds / row.total_s;
    if (ratio < 0.75 || ratio > 1.25) {
      std::printf("          ^ WARNING: total off paper by %.0f%%\n",
                  (ratio - 1) * 100);
    }
  }
  std::printf(
      "\n(The cc2lam column is cumulative, as in the paper; 'measured' "
      "shows ccam / cc2lam / darlam completion.)\n");
  if (!bench_json.write()) all_ok = false;
  if (!write_spans(config)) all_ok = false;
  return all_ok ? 0 : 1;
}
