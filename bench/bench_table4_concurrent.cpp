// Table 4 reproduction: all three climate models launched concurrently on
// the SAME machine, coupled either by conventional files (tail-reading
// with poll-and-retry) or by Grid Buffers. Cumulative completion times;
// the DARLAM row is the total.
//
// Shape to reproduce: buffers beat files on every machine; most buffer
// runs also beat the Table 3 sequential totals, EXCEPT dione and vpac27.
//
//   ./bench_table4_concurrent [--fast|--exact|--scale=N|--spans=F]
#include "bench/table_common.h"

using namespace griddles;
using namespace griddles::bench;

namespace {
struct PaperRow {
  const char* machine;
  double files_total_s, buffers_total_s, sequential_total_s;
};
// Table 4 DARLAM rows (totals) + Table 3 sequential totals, in seconds.
constexpr PaperRow kPaper[] = {
    {"dione", 4097, 2952, 2505},   {"brecca", 1678, 1377, 1464},
    {"freak", 3159, 2430, 2679},   {"bouscat", 6927, 5399, 5973},
    {"vpac27", 9889, 8115, 5793},
};
}  // namespace

int main(int argc, char** argv) {
  const TableConfig config = TableConfig::from_args(argc, argv);
  print_header("Table 4",
               "concurrent climate models on one machine: files vs "
               "buffers (cumulative totals)");
  std::printf("%-9s | %-19s | %-19s | %-19s | shape\n", "machine",
              "paper files/buffers", "measured files/buf",
              "predicted files/buf");
  std::printf("%.100s\n",
              "-----------------------------------------------------------"
              "---------------------------------------------");

  bool all_ok = true;
  BenchJson bench_json("table4");
  for (const PaperRow& row : kPaper) {
    auto files = run_experiment(
        std::string("t4f-") + row.machine, apps::climate_pipeline,
        {row.machine}, workflow::CouplingMode::kConcurrentFiles, config);
    auto buffers = run_experiment(
        std::string("t4b-") + row.machine, apps::climate_pipeline,
        {row.machine}, workflow::CouplingMode::kGridBuffers, config);
    // The buffers-vs-sequential comparison is apples-to-apples: measure
    // the sequential run in the same harness rather than trusting the
    // paper's absolute seconds.
    auto sequential = run_experiment(
        std::string("t4s-") + row.machine, apps::climate_pipeline,
        {row.machine}, workflow::CouplingMode::kSequentialFiles, config);
    if (!files.is_ok() || !buffers.is_ok() || !sequential.is_ok()) {
      std::fprintf(stderr, "%s: files=%s buffers=%s seq=%s\n", row.machine,
                   files.status().to_string().c_str(),
                   buffers.status().to_string().c_str(),
                   sequential.status().to_string().c_str());
      all_ok = false;
      continue;
    }
    const double files_s = files->measured.total_seconds;
    const double buffers_s = buffers->measured.total_seconds;
    bench_json.add_time(std::string(row.machine) + ".files", files_s);
    bench_json.add_time(std::string(row.machine) + ".buffers", buffers_s);
    bench_json.add_time(std::string(row.machine) + ".sequential",
                        sequential->measured.total_seconds);
    const bool buffers_win = buffers_s < files_s;
    const bool paper_exception =
        std::string(row.machine) == "dione" ||
        std::string(row.machine) == "vpac27";
    const bool beats_sequential =
        buffers_s < sequential->measured.total_seconds;
    std::printf("%-9s | %8s / %8s | %8s / %8s | %8s / %8s | %s%s\n",
                row.machine, hms(row.files_total_s).c_str(),
                hms(row.buffers_total_s).c_str(), hms(files_s).c_str(),
                hms(buffers_s).c_str(),
                hms(files->predicted.total_seconds).c_str(),
                hms(buffers->predicted.total_seconds).c_str(),
                buffers_win ? "buffers<files OK" : "buffers<files BROKEN",
                paper_exception == !beats_sequential
                    ? ""
                    : " (seq-exception mismatch)");
    if (!buffers_win) all_ok = false;
  }
  std::printf(
      "\n(Paper shape: buffers always beat files; buffer runs beat the "
      "sequential totals except on dione and vpac27.)\n");
  if (!bench_json.write()) all_ok = false;
  if (!write_spans(config)) all_ok = false;
  return all_ok ? 0 : 1;
}
