// Ablation B: where the copy-vs-proxy crossover falls (paper §3.1's
// heuristic). Prints the advised strategy over a grid of access
// fractions and link latencies for a 100 MB file, plus the predicted
// costs along the crossover.
//
//   ./bench_ablation_advisor
#include <cstdio>

#include "src/remote/advisor.h"

using namespace griddles;

int main() {
  constexpr std::uint64_t kFileSize = 100u << 20;
  const double fractions[] = {0.001, 0.005, 0.01, 0.05, 0.1,
                              0.25,  0.5,   0.75, 1.0};
  const double latencies_ms[] = {0.2, 1, 5, 20, 90, 165, 330};
  const double bandwidth = 1e6;  // 1 MB/s WAN

  std::printf(
      "\n=== Ablation B: copy-vs-proxy advisor crossover ===\n"
      "(100 MB remote file, 1 MB/s link; C = stage whole copy, "
      "p = proxy block access)\n\n");
  std::printf("%-14s", "access\\lat");
  for (const double lat : latencies_ms) std::printf("%7.1fms", lat);
  std::printf("\n");
  for (const double fraction : fractions) {
    std::printf("%-14.3f", fraction);
    for (const double lat : latencies_ms) {
      const nws::LinkEstimate link{lat / 1000.0, bandwidth};
      const remote::Advice advice =
          remote::advise(kFileSize, fraction, link);
      std::printf("%9s",
                  advice.strategy == remote::RemoteStrategy::kCopy ? "C"
                                                                   : "p");
    }
    std::printf("\n");
  }

  std::printf("\nCosts along the 90 ms row (seconds):\n");
  std::printf("%-10s %12s %12s %s\n", "fraction", "copy", "proxy",
              "advice");
  for (const double fraction : fractions) {
    const nws::LinkEstimate link{0.09, bandwidth};
    const remote::Advice advice = remote::advise(kFileSize, fraction, link);
    std::printf("%-10.3f %12.1f %12.1f %s\n", fraction,
                advice.copy_cost_seconds, advice.proxy_cost_seconds,
                advice.strategy == remote::RemoteStrategy::kCopy
                    ? "copy"
                    : "proxy");
  }
  std::printf(
      "\n(Paper: \"if an application reads a small fraction of the "
      "remote file, it may not warrant copying it\"; \"if a file is "
      "small and the latency ... high, then it is more efficient to "
      "copy\".)\n");
  return 0;
}
