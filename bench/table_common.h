// Shared harness for the Table 2-5 reproduction benches.
//
// Each bench replays the paper experiment on the modelled testbed with a
// scaled clock (default: 1 model second = 1/1500 wall seconds, i.e. a
// 99-minute experiment in ~4 wall seconds) and scaled byte counts
// (default 64x smaller real files, with link/disk rates rescaled so model
// times are preserved; the Grid Buffer block size shrinks by the same
// factor so streams keep the paper's latency sensitivity).
//
// Flags: --fast (coarser scale for smoke runs), --exact (1:1 bytes),
//        --scale=<wall_per_model denominator>,
//        --spans=<file|-> (causal trace as Chrome trace-event JSON;
//        feed it to tools/tracepath.py for critical-path analysis).
#pragma once

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/apps/paper_apps.h"
#include "src/common/strings.h"
#include "src/common/tempfile.h"
#include "src/desim/predict.h"
#include "src/obs/export.h"
#include "src/obs/span.h"
#include "src/workflow/runner.h"

namespace griddles::bench {

struct TableConfig {
  double wall_per_model = 1.0 / 800.0;
  double byte_scale = 64.0;
  std::string spans_path;  // empty = causal tracing off

  static TableConfig from_args(int argc, char** argv) {
    TableConfig config;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--fast") {
        config.wall_per_model = 1.0 / 4000.0;
        config.byte_scale = 256.0;
      } else if (arg == "--exact") {
        config.byte_scale = 1.0;
      } else if (strings::starts_with(arg, "--scale=")) {
        const auto denom = strings::parse_double(arg.substr(8));
        if (denom && *denom > 0) config.wall_per_model = 1.0 / *denom;
      } else if (strings::starts_with(arg, "--spans=")) {
        config.spans_path = arg.substr(8);
      }
    }
    if (!config.spans_path.empty()) {
      obs::SpanCollector::global().enable(true);
    }
    return config;
  }
};

/// Drains the collected spans to `config.spans_path` after the bench's
/// experiments have run. Returns false (after a stderr note) only when
/// a requested file cannot be written.
inline bool write_spans(const TableConfig& config) {
  if (config.spans_path.empty()) return true;
  const Status wrote = obs::write_text_file(
      config.spans_path, obs::SpanCollector::global().drain_chrome_json());
  if (!wrote.is_ok()) {
    std::fprintf(stderr, "cannot write spans: %s\n",
                 wrote.to_string().c_str());
    return false;
  }
  if (config.spans_path != "-") {
    std::printf("wrote %s\n", config.spans_path.c_str());
  }
  return true;
}

/// Runner options matching the paper's Grid Buffer deployment: 4 KiB
/// blocks (scaled), a small in-flight window — the latency-sensitive
/// configuration of §5.3.
inline workflow::WorkflowRunner::Options paper_options(
    workflow::CouplingMode mode, const TableConfig& config) {
  workflow::WorkflowRunner::Options options;
  options.mode = mode;
  options.buffer_block = static_cast<std::uint32_t>(
      std::max(64.0, 4096.0 / config.byte_scale));
  // Low-latency edges carry large blocks: far from the latency-bound
  // regime, block size only sets the RPC/wakeup count, so this removes
  // measurement overhead without touching modelled time.
  options.buffer_block_fast_link = 65536;
  options.flusher_threads = 4;
  options.writer_window = 16;
  options.read_deadline_ms = 120000;
  return options;
}

/// The same options in *model* units, for the analytic predictor.
inline workflow::WorkflowRunner::Options predict_options(
    workflow::CouplingMode mode) {
  workflow::WorkflowRunner::Options options;
  options.mode = mode;
  options.buffer_block = 4096;
  options.flusher_threads = 4;
  return options;
}

/// One measured experiment: run the real stack at scale and predict
/// analytically at paper scale.
struct ExperimentResult {
  workflow::WorkflowReport measured;  // model seconds
  desim::Prediction predicted;        // model seconds
};

/// Builds a pipeline at a given byte scale (climate_pipeline or
/// durability_pipeline fit directly).
using PipelineFactory = std::vector<apps::AppKernel> (*)(double);

inline Result<ExperimentResult> run_experiment(
    const std::string& name, PipelineFactory factory,
    const std::vector<std::string>& machines, workflow::CouplingMode mode,
    const TableConfig& config) {
  GL_ASSIGN_OR_RETURN(auto scratch, TempDir::create("bench-" + name));
  testbed::TestbedRuntime testbed(config.wall_per_model,
                                  scratch.path().string(),
                                  config.byte_scale);
  // Span model timestamps come from this experiment's scaled clock; the
  // scope resets on exit so a later experiment never reads a destroyed
  // testbed's clock.
  struct ModelClockScope {
    explicit ModelClockScope(const Clock* clock) {
      if (obs::SpanCollector::global().enabled()) {
        obs::SpanCollector::global().set_model_clock(clock);
      }
    }
    ~ModelClockScope() {
      obs::SpanCollector::global().set_model_clock(nullptr);
    }
  } model_clock_scope(&testbed.clock());
  workflow::WorkflowRunner runner(testbed);

  // Scaled pipeline for the real run; paper-scale spec for prediction.
  GL_ASSIGN_OR_RETURN(const workflow::WorkflowSpec scaled_spec,
                      workflow::WorkflowSpec::from_pipeline(
                          name, factory(config.byte_scale), machines));
  GL_ASSIGN_OR_RETURN(const workflow::WorkflowSpec paper_spec,
                      workflow::WorkflowSpec::from_pipeline(
                          name, factory(1.0), machines));

  ExperimentResult result;
  GL_ASSIGN_OR_RETURN(result.measured,
                      runner.run(scaled_spec, paper_options(mode, config)));
  GL_ASSIGN_OR_RETURN(result.predicted,
                      desim::predict(paper_spec, predict_options(mode)));
  return result;
}

/// Collects a bench's headline timings and writes them, plus a full
/// metrics snapshot (per-mode open counts, byte counters, histograms),
/// as `BENCH_<name>.json` in the working directory. CI uploads these as
/// artifacts; compare runs with `diff <(jq -S . a.json) <(jq -S . b.json)`.
class BenchJson {
 public:
  explicit BenchJson(std::string name) : name_(std::move(name)) {}

  void add_time(std::string key, double seconds) {
    times_.emplace_back(std::move(key), seconds);
  }

  /// Writes BENCH_<name>.json; returns false (after a stderr note) if
  /// the file cannot be created.
  bool write() const {
    std::string json = "{\"bench\":";
    json += obs::json_quote(name_);
    json += ",\"times\":{";
    for (std::size_t i = 0; i < times_.size(); ++i) {
      if (i > 0) json.push_back(',');
      json += obs::json_quote(times_[i].first);
      json.push_back(':');
      json += obs::json_number(times_[i].second);
    }
    json += "},\"metrics\":";
    json += obs::to_json(obs::snapshot());
    json.push_back('}');
    const std::string path = "BENCH_" + name_ + ".json";
    std::FILE* out = std::fopen(path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return false;
    }
    std::fwrite(json.data(), 1, json.size(), out);
    std::fputc('\n', out);
    std::fclose(out);
    std::printf("wrote %s\n", path.c_str());
    return true;
  }

 private:
  std::string name_;
  std::vector<std::pair<std::string, double>> times_;
};

inline std::string hms(double seconds) {
  return strings::format_hms(static_cast<long long>(seconds + 0.5));
}

inline std::string mmss(double seconds) {
  return strings::format_ms(static_cast<long long>(seconds + 0.5));
}

inline void print_header(const char* table, const char* caption) {
  std::printf("\n=== %s: %s ===\n", table, caption);
  std::printf(
      "(real GriddLeS stack on the modelled testbed; times in model "
      "units)\n\n");
}

}  // namespace griddles::bench
