// Overload robustness bench (DESIGN.md §14): goodput and tail latency
// at 2x offered load, with and without deadline propagation + admission
// control.
//
// One RPC server with a single unit of service capacity (a handler that
// holds a lock for a fixed service time) is driven by closed-loop
// clients, each wanting its reply within a fixed deadline:
//
//   peak      — sustainable load (clients sized so every request beats
//               its deadline) with shedding on: the goodput ceiling.
//   control   — 2x the sustainable client count, shedding OFF and no
//               deadline on the wire. Clients give up at the deadline
//               (call_until) and immediately re-offer, but the server —
//               never told about the budget — still executes every
//               abandoned request. Wasted capacity compounds: the
//               backlog grows without bound and goodput collapses.
//   shedded   — the same 2x load with deadlines propagated and a
//               bounded admission queue: excess requests are rejected
//               up front (kResourceExhausted, reject-newest), admitted
//               ones finish inside the budget, and goodput stays at
//               the peak-arm ceiling.
//
// `BENCH_overload.json` records everything; the committed baseline
// gates only the lower-is-better invariants (shedded p99, peak/shedded
// goodput ratio). The bench itself asserts the acceptance criterion:
// shedded goodput >= 80% of peak while the control arm degrades.
//
//   ./bench_overload [--fast]
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

#include "bench/table_common.h"
#include "src/common/deadline.h"
#include "src/net/inproc.h"
#include "src/net/rpc.h"
#include "src/obs/metrics.h"

using namespace griddles;
using std::chrono::milliseconds;

namespace {

constexpr std::uint16_t kMethod = 1;
constexpr auto kService = milliseconds(5);   // per-request capacity cost
constexpr auto kDeadline = milliseconds(30); // client budget per request
constexpr int kPeakClients = 4;              // 4 * 5ms = 20ms < 30ms
constexpr int kOverloadClients = 8;          // 2x the sustainable load

std::uint64_t counter_value(const char* name) {
  return obs::MetricsRegistry::global().counter(name).value();
}

struct ArmResult {
  double goodput_rps = 0;  // replies that beat their deadline, per sec
  double p99_ms = 0;       // p99 latency of completed (OK) replies
  std::uint64_t ok = 0;
  std::uint64_t late = 0;     // completed but past the budget / timed out
  std::uint64_t shed = 0;     // kResourceExhausted from admission
  std::uint64_t expired = 0;  // kDeadlineExceeded along the chain
};

double percentile_ms(std::vector<double>& samples, double q) {
  if (samples.empty()) return 0;
  std::sort(samples.begin(), samples.end());
  const auto index = static_cast<std::size_t>(
      q * static_cast<double>(samples.size() - 1));
  return samples[index];
}

/// Drives `clients` closed-loop callers against a 1-unit-capacity server
/// for `duration` wall time. `shedding` selects the whole §14 stack
/// (propagated deadlines + bounded admission) vs the control.
ArmResult run_arm(bool shedding, int clients, milliseconds duration) {
  RealClock clock;
  net::InProcNetwork network(clock);
  auto server_transport = network.transport("dione");

  // The service bottleneck: one request's work at a time, kService each.
  std::mutex work_mu;
  net::RpcServer server(*server_transport,
                        net::inproc_endpoint("dione", "svc"));
  server.register_method(
      kMethod, [&](ByteSpan, const net::RpcContext&) -> Result<Bytes> {
        std::lock_guard<std::mutex> lock(work_mu);
        std::this_thread::sleep_for(kService);
        return Bytes{};
      });
  net::AdmissionController::Options admission;
  if (shedding) {
    admission.capacity = 1;   // mirrors the real service capacity
    admission.max_queued = 3; // 3 * 5ms queued + 5ms service < 30ms
  } else {
    // Control: admission present but effectively infinite — nothing is
    // ever shed, every request runs no matter how stale.
    admission.capacity = 1u << 20;
    admission.max_queued = 1u << 20;
  }
  server.set_admission(admission);
  if (const Status started = server.start(); !started.is_ok()) {
    std::fprintf(stderr, "server start: %s\n",
                 started.to_string().c_str());
    std::exit(1);
  }

  std::mutex merge_mu;
  ArmResult total;
  std::vector<double> ok_latencies_ms;
  std::atomic<bool> running{true};

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  for (int i = 0; i < clients; ++i) {
    threads.emplace_back([&, i] {
      auto transport = network.transport(strings::cat("client", i));
      net::RpcClient client(*transport, server.endpoint());
      ArmResult local;
      std::vector<double> latencies;
      while (running.load(std::memory_order_relaxed)) {
        const WallClock::time_point sent = WallClock::now();
        Result<Bytes> reply = [&] {
          if (shedding) {
            // The §14 path: the budget rides the frame; the server
            // rejects work it cannot finish in time.
            ScopedDeadline budget(sent + kDeadline);
            return client.call(kMethod, {});
          }
          // Control: the client gives up at the deadline but the server
          // is never told — abandoned work still burns capacity.
          return client.call_until(kMethod, {}, sent + kDeadline);
        }();
        const double elapsed_ms =
            to_seconds_d(WallClock::now() - sent) * 1e3;
        if (reply.is_ok()) {
          latencies.push_back(elapsed_ms);
          if (elapsed_ms <= static_cast<double>(kDeadline.count())) {
            ++local.ok;
          } else {
            ++local.late;
          }
          continue;
        }
        switch (reply.status().code()) {
          case ErrorCode::kResourceExhausted:
            ++local.shed;
            break;
          case ErrorCode::kDeadlineExceeded:
            ++local.expired;
            break;
          default:
            ++local.late;
            // The abandoned request is still in flight server-side; a
            // fresh connection keeps this client's offered load up.
            client.reset_connection();
            break;
        }
        // Back off one tick so rejected callers poll, not busy-spin.
        std::this_thread::sleep_for(milliseconds(1));
      }
      std::lock_guard<std::mutex> lock(merge_mu);
      total.ok += local.ok;
      total.late += local.late;
      total.shed += local.shed;
      total.expired += local.expired;
      ok_latencies_ms.insert(ok_latencies_ms.end(), latencies.begin(),
                             latencies.end());
    });
  }

  std::this_thread::sleep_for(duration);
  running = false;
  for (auto& thread : threads) thread.join();
  server.stop();

  total.goodput_rps = static_cast<double>(total.ok) /
                      (static_cast<double>(duration.count()) * 1e-3);
  total.p99_ms = percentile_ms(ok_latencies_ms, 0.99);
  return total;
}

void print_arm(const char* name, const ArmResult& arm) {
  std::printf(
      "%-22s %8.1f rps   p99 %6.2f ms   ok %6llu  late %5llu  "
      "shed %6llu  expired %5llu\n",
      name, arm.goodput_rps, arm.p99_ms,
      static_cast<unsigned long long>(arm.ok),
      static_cast<unsigned long long>(arm.late),
      static_cast<unsigned long long>(arm.shed),
      static_cast<unsigned long long>(arm.expired));
}

}  // namespace

int main(int argc, char** argv) {
  bool fast = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--fast") == 0) fast = true;
  }
  const auto duration = milliseconds(fast ? 500 : 2000);

  bench::print_header(
      "Overload robustness",
      "1-unit service, 5ms/req, 30ms budgets, 2x offered load");
  std::printf("(%d clients sustainable; overload arms run %d; %lld ms "
              "per arm)\n\n",
              kPeakClients, kOverloadClients,
              static_cast<long long>(duration.count()));

  const std::uint64_t shed_before = counter_value("overload.shed");
  const std::uint64_t expired_before = counter_value("deadline.expired");

  const ArmResult peak = run_arm(/*shedding=*/true, kPeakClients, duration);
  const ArmResult control =
      run_arm(/*shedding=*/false, kOverloadClients, duration);
  const ArmResult shedded =
      run_arm(/*shedding=*/true, kOverloadClients, duration);

  print_arm("peak (1x, shedding)", peak);
  print_arm("2x load, control", control);
  print_arm("2x load, shedding", shedded);

  const double ratio =
      shedded.goodput_rps > 0 ? peak.goodput_rps / shedded.goodput_rps
                              : 1e9;
  std::printf(
      "\n2x-load goodput: shedding keeps %.0f%% of peak; control keeps "
      "%.0f%%\n(shed %llu requests, expired %llu along the chain)\n",
      100.0 * shedded.goodput_rps / std::max(1.0, peak.goodput_rps),
      100.0 * control.goodput_rps / std::max(1.0, peak.goodput_rps),
      static_cast<unsigned long long>(counter_value("overload.shed") -
                                      shed_before),
      static_cast<unsigned long long>(counter_value("deadline.expired") -
                                      expired_before));

  bench::BenchJson json("overload");
  // Gated (committed baseline): lower is better for both.
  json.add_time("shedded_p99_ms", shedded.p99_ms);
  json.add_time("peak_over_shedded_goodput", ratio);
  // Informational (no baseline entry, never gated).
  json.add_time("peak_goodput_rps", peak.goodput_rps);
  json.add_time("control_goodput_rps", control.goodput_rps);
  json.add_time("shedded_goodput_rps", shedded.goodput_rps);
  json.add_time("control_p99_ms", control.p99_ms);
  const bool wrote = json.write();

  // Acceptance: shedding + deadlines hold >= 80% of peak goodput at 2x
  // load while the control arm degrades below the shedded arm.
  if (shedded.goodput_rps < 0.8 * peak.goodput_rps) {
    std::fprintf(stderr,
                 "FAIL: shedded goodput %.1f rps < 80%% of peak %.1f rps\n",
                 shedded.goodput_rps, peak.goodput_rps);
    return 1;
  }
  if (control.goodput_rps >= shedded.goodput_rps) {
    std::fprintf(stderr,
                 "FAIL: control goodput %.1f rps did not degrade below "
                 "the shedded arm's %.1f rps\n",
                 control.goodput_rps, shedded.goodput_rps);
    return 1;
  }
  return wrote ? 0 : 1;
}
