file(REMOVE_RECURSE
  "CMakeFiles/durability_pipeline.dir/durability_pipeline.cpp.o"
  "CMakeFiles/durability_pipeline.dir/durability_pipeline.cpp.o.d"
  "durability_pipeline"
  "durability_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/durability_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
