# Empty compiler generated dependencies file for durability_pipeline.
# This may be replaced when dependencies are built.
