# Empty dependencies file for remote_file.
# This may be replaced when dependencies are built.
