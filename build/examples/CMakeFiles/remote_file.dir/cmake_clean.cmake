file(REMOVE_RECURSE
  "CMakeFiles/remote_file.dir/remote_file.cpp.o"
  "CMakeFiles/remote_file.dir/remote_file.cpp.o.d"
  "remote_file"
  "remote_file.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/remote_file.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
