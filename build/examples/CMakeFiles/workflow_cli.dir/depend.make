# Empty dependencies file for workflow_cli.
# This may be replaced when dependencies are built.
