# Empty dependencies file for griddles_replica.
# This may be replaced when dependencies are built.
