file(REMOVE_RECURSE
  "CMakeFiles/griddles_replica.dir/catalog.cc.o"
  "CMakeFiles/griddles_replica.dir/catalog.cc.o.d"
  "CMakeFiles/griddles_replica.dir/replicated_client.cc.o"
  "CMakeFiles/griddles_replica.dir/replicated_client.cc.o.d"
  "libgriddles_replica.a"
  "libgriddles_replica.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/griddles_replica.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
