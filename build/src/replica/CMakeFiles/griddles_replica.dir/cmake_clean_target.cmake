file(REMOVE_RECURSE
  "libgriddles_replica.a"
)
