file(REMOVE_RECURSE
  "CMakeFiles/griddles_apps.dir/kernel.cc.o"
  "CMakeFiles/griddles_apps.dir/kernel.cc.o.d"
  "CMakeFiles/griddles_apps.dir/paper_apps.cc.o"
  "CMakeFiles/griddles_apps.dir/paper_apps.cc.o.d"
  "libgriddles_apps.a"
  "libgriddles_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/griddles_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
