file(REMOVE_RECURSE
  "libgriddles_apps.a"
)
