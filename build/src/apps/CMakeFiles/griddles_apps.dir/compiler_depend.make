# Empty compiler generated dependencies file for griddles_apps.
# This may be replaced when dependencies are built.
