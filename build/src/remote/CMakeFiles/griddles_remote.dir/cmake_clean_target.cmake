file(REMOVE_RECURSE
  "libgriddles_remote.a"
)
