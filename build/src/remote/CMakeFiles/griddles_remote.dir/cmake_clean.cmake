file(REMOVE_RECURSE
  "CMakeFiles/griddles_remote.dir/advisor.cc.o"
  "CMakeFiles/griddles_remote.dir/advisor.cc.o.d"
  "CMakeFiles/griddles_remote.dir/copier.cc.o"
  "CMakeFiles/griddles_remote.dir/copier.cc.o.d"
  "CMakeFiles/griddles_remote.dir/file_server.cc.o"
  "CMakeFiles/griddles_remote.dir/file_server.cc.o.d"
  "CMakeFiles/griddles_remote.dir/remote_client.cc.o"
  "CMakeFiles/griddles_remote.dir/remote_client.cc.o.d"
  "libgriddles_remote.a"
  "libgriddles_remote.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/griddles_remote.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
