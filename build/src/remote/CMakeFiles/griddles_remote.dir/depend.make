# Empty dependencies file for griddles_remote.
# This may be replaced when dependencies are built.
