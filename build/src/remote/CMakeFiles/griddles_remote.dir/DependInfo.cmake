
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/remote/advisor.cc" "src/remote/CMakeFiles/griddles_remote.dir/advisor.cc.o" "gcc" "src/remote/CMakeFiles/griddles_remote.dir/advisor.cc.o.d"
  "/root/repo/src/remote/copier.cc" "src/remote/CMakeFiles/griddles_remote.dir/copier.cc.o" "gcc" "src/remote/CMakeFiles/griddles_remote.dir/copier.cc.o.d"
  "/root/repo/src/remote/file_server.cc" "src/remote/CMakeFiles/griddles_remote.dir/file_server.cc.o" "gcc" "src/remote/CMakeFiles/griddles_remote.dir/file_server.cc.o.d"
  "/root/repo/src/remote/remote_client.cc" "src/remote/CMakeFiles/griddles_remote.dir/remote_client.cc.o" "gcc" "src/remote/CMakeFiles/griddles_remote.dir/remote_client.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/griddles_common.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/griddles_net.dir/DependInfo.cmake"
  "/root/repo/build/src/xdr/CMakeFiles/griddles_xdr.dir/DependInfo.cmake"
  "/root/repo/build/src/vfs/CMakeFiles/griddles_vfs.dir/DependInfo.cmake"
  "/root/repo/build/src/nws/CMakeFiles/griddles_nws.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
