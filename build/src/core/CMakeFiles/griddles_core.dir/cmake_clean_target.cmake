file(REMOVE_RECURSE
  "libgriddles_core.a"
)
