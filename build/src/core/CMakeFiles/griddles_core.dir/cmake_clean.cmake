file(REMOVE_RECURSE
  "CMakeFiles/griddles_core.dir/multiplexer.cc.o"
  "CMakeFiles/griddles_core.dir/multiplexer.cc.o.d"
  "CMakeFiles/griddles_core.dir/posix_shim.cc.o"
  "CMakeFiles/griddles_core.dir/posix_shim.cc.o.d"
  "CMakeFiles/griddles_core.dir/staged_client.cc.o"
  "CMakeFiles/griddles_core.dir/staged_client.cc.o.d"
  "CMakeFiles/griddles_core.dir/stream.cc.o"
  "CMakeFiles/griddles_core.dir/stream.cc.o.d"
  "CMakeFiles/griddles_core.dir/tailing_client.cc.o"
  "CMakeFiles/griddles_core.dir/tailing_client.cc.o.d"
  "CMakeFiles/griddles_core.dir/transcode_client.cc.o"
  "CMakeFiles/griddles_core.dir/transcode_client.cc.o.d"
  "libgriddles_core.a"
  "libgriddles_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/griddles_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
