# Empty dependencies file for griddles_core.
# This may be replaced when dependencies are built.
