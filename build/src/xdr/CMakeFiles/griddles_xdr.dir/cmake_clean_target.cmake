file(REMOVE_RECURSE
  "libgriddles_xdr.a"
)
