file(REMOVE_RECURSE
  "CMakeFiles/griddles_xdr.dir/codec.cc.o"
  "CMakeFiles/griddles_xdr.dir/codec.cc.o.d"
  "CMakeFiles/griddles_xdr.dir/record.cc.o"
  "CMakeFiles/griddles_xdr.dir/record.cc.o.d"
  "libgriddles_xdr.a"
  "libgriddles_xdr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/griddles_xdr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
