# Empty dependencies file for griddles_xdr.
# This may be replaced when dependencies are built.
