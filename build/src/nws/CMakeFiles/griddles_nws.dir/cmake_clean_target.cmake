file(REMOVE_RECURSE
  "libgriddles_nws.a"
)
