file(REMOVE_RECURSE
  "CMakeFiles/griddles_nws.dir/forecast.cc.o"
  "CMakeFiles/griddles_nws.dir/forecast.cc.o.d"
  "CMakeFiles/griddles_nws.dir/monitor.cc.o"
  "CMakeFiles/griddles_nws.dir/monitor.cc.o.d"
  "libgriddles_nws.a"
  "libgriddles_nws.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/griddles_nws.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
