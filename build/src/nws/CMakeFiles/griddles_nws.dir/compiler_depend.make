# Empty compiler generated dependencies file for griddles_nws.
# This may be replaced when dependencies are built.
