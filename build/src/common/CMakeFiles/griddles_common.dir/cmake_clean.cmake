file(REMOVE_RECURSE
  "CMakeFiles/griddles_common.dir/clock.cc.o"
  "CMakeFiles/griddles_common.dir/clock.cc.o.d"
  "CMakeFiles/griddles_common.dir/config.cc.o"
  "CMakeFiles/griddles_common.dir/config.cc.o.d"
  "CMakeFiles/griddles_common.dir/logging.cc.o"
  "CMakeFiles/griddles_common.dir/logging.cc.o.d"
  "CMakeFiles/griddles_common.dir/status.cc.o"
  "CMakeFiles/griddles_common.dir/status.cc.o.d"
  "CMakeFiles/griddles_common.dir/strings.cc.o"
  "CMakeFiles/griddles_common.dir/strings.cc.o.d"
  "CMakeFiles/griddles_common.dir/tempfile.cc.o"
  "CMakeFiles/griddles_common.dir/tempfile.cc.o.d"
  "libgriddles_common.a"
  "libgriddles_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/griddles_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
