# Empty dependencies file for griddles_common.
# This may be replaced when dependencies are built.
