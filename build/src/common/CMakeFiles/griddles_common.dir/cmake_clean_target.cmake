file(REMOVE_RECURSE
  "libgriddles_common.a"
)
