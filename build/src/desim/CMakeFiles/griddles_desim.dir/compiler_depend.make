# Empty compiler generated dependencies file for griddles_desim.
# This may be replaced when dependencies are built.
