file(REMOVE_RECURSE
  "libgriddles_desim.a"
)
