file(REMOVE_RECURSE
  "CMakeFiles/griddles_desim.dir/predict.cc.o"
  "CMakeFiles/griddles_desim.dir/predict.cc.o.d"
  "libgriddles_desim.a"
  "libgriddles_desim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/griddles_desim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
