file(REMOVE_RECURSE
  "CMakeFiles/griddles_gridbuffer.dir/channel.cc.o"
  "CMakeFiles/griddles_gridbuffer.dir/channel.cc.o.d"
  "CMakeFiles/griddles_gridbuffer.dir/client.cc.o"
  "CMakeFiles/griddles_gridbuffer.dir/client.cc.o.d"
  "CMakeFiles/griddles_gridbuffer.dir/file_client.cc.o"
  "CMakeFiles/griddles_gridbuffer.dir/file_client.cc.o.d"
  "CMakeFiles/griddles_gridbuffer.dir/server.cc.o"
  "CMakeFiles/griddles_gridbuffer.dir/server.cc.o.d"
  "libgriddles_gridbuffer.a"
  "libgriddles_gridbuffer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/griddles_gridbuffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
