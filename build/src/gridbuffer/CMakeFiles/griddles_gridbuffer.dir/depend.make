# Empty dependencies file for griddles_gridbuffer.
# This may be replaced when dependencies are built.
