file(REMOVE_RECURSE
  "libgriddles_gridbuffer.a"
)
