
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gridbuffer/channel.cc" "src/gridbuffer/CMakeFiles/griddles_gridbuffer.dir/channel.cc.o" "gcc" "src/gridbuffer/CMakeFiles/griddles_gridbuffer.dir/channel.cc.o.d"
  "/root/repo/src/gridbuffer/client.cc" "src/gridbuffer/CMakeFiles/griddles_gridbuffer.dir/client.cc.o" "gcc" "src/gridbuffer/CMakeFiles/griddles_gridbuffer.dir/client.cc.o.d"
  "/root/repo/src/gridbuffer/file_client.cc" "src/gridbuffer/CMakeFiles/griddles_gridbuffer.dir/file_client.cc.o" "gcc" "src/gridbuffer/CMakeFiles/griddles_gridbuffer.dir/file_client.cc.o.d"
  "/root/repo/src/gridbuffer/server.cc" "src/gridbuffer/CMakeFiles/griddles_gridbuffer.dir/server.cc.o" "gcc" "src/gridbuffer/CMakeFiles/griddles_gridbuffer.dir/server.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/griddles_common.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/griddles_net.dir/DependInfo.cmake"
  "/root/repo/build/src/xdr/CMakeFiles/griddles_xdr.dir/DependInfo.cmake"
  "/root/repo/build/src/vfs/CMakeFiles/griddles_vfs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
