file(REMOVE_RECURSE
  "libgriddles_gns.a"
)
