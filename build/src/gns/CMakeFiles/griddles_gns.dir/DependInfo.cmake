
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gns/database.cc" "src/gns/CMakeFiles/griddles_gns.dir/database.cc.o" "gcc" "src/gns/CMakeFiles/griddles_gns.dir/database.cc.o.d"
  "/root/repo/src/gns/mapping.cc" "src/gns/CMakeFiles/griddles_gns.dir/mapping.cc.o" "gcc" "src/gns/CMakeFiles/griddles_gns.dir/mapping.cc.o.d"
  "/root/repo/src/gns/service.cc" "src/gns/CMakeFiles/griddles_gns.dir/service.cc.o" "gcc" "src/gns/CMakeFiles/griddles_gns.dir/service.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/griddles_common.dir/DependInfo.cmake"
  "/root/repo/build/src/xdr/CMakeFiles/griddles_xdr.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/griddles_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
