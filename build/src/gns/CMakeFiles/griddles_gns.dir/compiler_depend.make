# Empty compiler generated dependencies file for griddles_gns.
# This may be replaced when dependencies are built.
