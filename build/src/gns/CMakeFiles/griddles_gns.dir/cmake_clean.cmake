file(REMOVE_RECURSE
  "CMakeFiles/griddles_gns.dir/database.cc.o"
  "CMakeFiles/griddles_gns.dir/database.cc.o.d"
  "CMakeFiles/griddles_gns.dir/mapping.cc.o"
  "CMakeFiles/griddles_gns.dir/mapping.cc.o.d"
  "CMakeFiles/griddles_gns.dir/service.cc.o"
  "CMakeFiles/griddles_gns.dir/service.cc.o.d"
  "libgriddles_gns.a"
  "libgriddles_gns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/griddles_gns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
