# Empty compiler generated dependencies file for griddles_net.
# This may be replaced when dependencies are built.
