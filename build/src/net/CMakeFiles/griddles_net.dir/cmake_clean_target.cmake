file(REMOVE_RECURSE
  "libgriddles_net.a"
)
