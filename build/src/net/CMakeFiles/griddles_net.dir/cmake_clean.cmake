file(REMOVE_RECURSE
  "CMakeFiles/griddles_net.dir/endpoint.cc.o"
  "CMakeFiles/griddles_net.dir/endpoint.cc.o.d"
  "CMakeFiles/griddles_net.dir/inproc.cc.o"
  "CMakeFiles/griddles_net.dir/inproc.cc.o.d"
  "CMakeFiles/griddles_net.dir/link_model.cc.o"
  "CMakeFiles/griddles_net.dir/link_model.cc.o.d"
  "CMakeFiles/griddles_net.dir/rpc.cc.o"
  "CMakeFiles/griddles_net.dir/rpc.cc.o.d"
  "CMakeFiles/griddles_net.dir/soap.cc.o"
  "CMakeFiles/griddles_net.dir/soap.cc.o.d"
  "CMakeFiles/griddles_net.dir/tcp.cc.o"
  "CMakeFiles/griddles_net.dir/tcp.cc.o.d"
  "libgriddles_net.a"
  "libgriddles_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/griddles_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
