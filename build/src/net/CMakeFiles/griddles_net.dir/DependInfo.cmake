
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/endpoint.cc" "src/net/CMakeFiles/griddles_net.dir/endpoint.cc.o" "gcc" "src/net/CMakeFiles/griddles_net.dir/endpoint.cc.o.d"
  "/root/repo/src/net/inproc.cc" "src/net/CMakeFiles/griddles_net.dir/inproc.cc.o" "gcc" "src/net/CMakeFiles/griddles_net.dir/inproc.cc.o.d"
  "/root/repo/src/net/link_model.cc" "src/net/CMakeFiles/griddles_net.dir/link_model.cc.o" "gcc" "src/net/CMakeFiles/griddles_net.dir/link_model.cc.o.d"
  "/root/repo/src/net/rpc.cc" "src/net/CMakeFiles/griddles_net.dir/rpc.cc.o" "gcc" "src/net/CMakeFiles/griddles_net.dir/rpc.cc.o.d"
  "/root/repo/src/net/soap.cc" "src/net/CMakeFiles/griddles_net.dir/soap.cc.o" "gcc" "src/net/CMakeFiles/griddles_net.dir/soap.cc.o.d"
  "/root/repo/src/net/tcp.cc" "src/net/CMakeFiles/griddles_net.dir/tcp.cc.o" "gcc" "src/net/CMakeFiles/griddles_net.dir/tcp.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/griddles_common.dir/DependInfo.cmake"
  "/root/repo/build/src/xdr/CMakeFiles/griddles_xdr.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
