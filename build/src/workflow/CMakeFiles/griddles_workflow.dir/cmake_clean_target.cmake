file(REMOVE_RECURSE
  "libgriddles_workflow.a"
)
