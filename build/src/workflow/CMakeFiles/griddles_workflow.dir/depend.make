# Empty dependencies file for griddles_workflow.
# This may be replaced when dependencies are built.
