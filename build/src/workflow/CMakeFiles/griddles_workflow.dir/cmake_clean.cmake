file(REMOVE_RECURSE
  "CMakeFiles/griddles_workflow.dir/runner.cc.o"
  "CMakeFiles/griddles_workflow.dir/runner.cc.o.d"
  "CMakeFiles/griddles_workflow.dir/spec.cc.o"
  "CMakeFiles/griddles_workflow.dir/spec.cc.o.d"
  "libgriddles_workflow.a"
  "libgriddles_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/griddles_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
