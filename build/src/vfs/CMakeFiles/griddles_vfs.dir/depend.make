# Empty dependencies file for griddles_vfs.
# This may be replaced when dependencies are built.
