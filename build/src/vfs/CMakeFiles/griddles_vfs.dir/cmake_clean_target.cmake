file(REMOVE_RECURSE
  "libgriddles_vfs.a"
)
