file(REMOVE_RECURSE
  "CMakeFiles/griddles_vfs.dir/file_client.cc.o"
  "CMakeFiles/griddles_vfs.dir/file_client.cc.o.d"
  "CMakeFiles/griddles_vfs.dir/local_client.cc.o"
  "CMakeFiles/griddles_vfs.dir/local_client.cc.o.d"
  "libgriddles_vfs.a"
  "libgriddles_vfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/griddles_vfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
