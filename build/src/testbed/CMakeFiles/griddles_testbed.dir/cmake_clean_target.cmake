file(REMOVE_RECURSE
  "libgriddles_testbed.a"
)
