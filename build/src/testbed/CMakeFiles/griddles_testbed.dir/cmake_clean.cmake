file(REMOVE_RECURSE
  "CMakeFiles/griddles_testbed.dir/testbed.cc.o"
  "CMakeFiles/griddles_testbed.dir/testbed.cc.o.d"
  "libgriddles_testbed.a"
  "libgriddles_testbed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/griddles_testbed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
