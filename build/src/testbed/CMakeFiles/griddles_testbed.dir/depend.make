# Empty dependencies file for griddles_testbed.
# This may be replaced when dependencies are built.
