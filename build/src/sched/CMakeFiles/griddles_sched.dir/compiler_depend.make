# Empty compiler generated dependencies file for griddles_sched.
# This may be replaced when dependencies are built.
