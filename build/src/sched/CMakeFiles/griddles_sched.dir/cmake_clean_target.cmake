file(REMOVE_RECURSE
  "libgriddles_sched.a"
)
