file(REMOVE_RECURSE
  "CMakeFiles/griddles_sched.dir/scheduler.cc.o"
  "CMakeFiles/griddles_sched.dir/scheduler.cc.o.d"
  "libgriddles_sched.a"
  "libgriddles_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/griddles_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
