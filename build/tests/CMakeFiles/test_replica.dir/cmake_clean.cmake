file(REMOVE_RECURSE
  "CMakeFiles/test_replica.dir/test_replica.cc.o"
  "CMakeFiles/test_replica.dir/test_replica.cc.o.d"
  "test_replica"
  "test_replica.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_replica.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
