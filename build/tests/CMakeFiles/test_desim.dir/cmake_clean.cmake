file(REMOVE_RECURSE
  "CMakeFiles/test_desim.dir/test_desim.cc.o"
  "CMakeFiles/test_desim.dir/test_desim.cc.o.d"
  "test_desim"
  "test_desim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_desim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
