# Empty compiler generated dependencies file for test_gns.
# This may be replaced when dependencies are built.
