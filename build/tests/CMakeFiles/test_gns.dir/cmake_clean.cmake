file(REMOVE_RECURSE
  "CMakeFiles/test_gns.dir/test_gns.cc.o"
  "CMakeFiles/test_gns.dir/test_gns.cc.o.d"
  "test_gns"
  "test_gns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
