file(REMOVE_RECURSE
  "CMakeFiles/test_property_io.dir/test_property_io.cc.o"
  "CMakeFiles/test_property_io.dir/test_property_io.cc.o.d"
  "test_property_io"
  "test_property_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_property_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
