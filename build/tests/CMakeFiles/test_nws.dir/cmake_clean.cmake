file(REMOVE_RECURSE
  "CMakeFiles/test_nws.dir/test_nws.cc.o"
  "CMakeFiles/test_nws.dir/test_nws.cc.o.d"
  "test_nws"
  "test_nws.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nws.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
