file(REMOVE_RECURSE
  "CMakeFiles/test_fuzzish.dir/test_fuzzish.cc.o"
  "CMakeFiles/test_fuzzish.dir/test_fuzzish.cc.o.d"
  "test_fuzzish"
  "test_fuzzish.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fuzzish.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
