# Empty compiler generated dependencies file for test_fuzzish.
# This may be replaced when dependencies are built.
