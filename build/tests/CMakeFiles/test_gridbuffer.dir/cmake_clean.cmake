file(REMOVE_RECURSE
  "CMakeFiles/test_gridbuffer.dir/test_gridbuffer.cc.o"
  "CMakeFiles/test_gridbuffer.dir/test_gridbuffer.cc.o.d"
  "test_gridbuffer"
  "test_gridbuffer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gridbuffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
