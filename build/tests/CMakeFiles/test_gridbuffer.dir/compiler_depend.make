# Empty compiler generated dependencies file for test_gridbuffer.
# This may be replaced when dependencies are built.
