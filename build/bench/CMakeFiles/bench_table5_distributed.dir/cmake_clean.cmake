file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_distributed.dir/bench_table5_distributed.cpp.o"
  "CMakeFiles/bench_table5_distributed.dir/bench_table5_distributed.cpp.o.d"
  "bench_table5_distributed"
  "bench_table5_distributed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_distributed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
