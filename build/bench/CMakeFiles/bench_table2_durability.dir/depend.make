# Empty dependencies file for bench_table2_durability.
# This may be replaced when dependencies are built.
