file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_durability.dir/bench_table2_durability.cpp.o"
  "CMakeFiles/bench_table2_durability.dir/bench_table2_durability.cpp.o.d"
  "bench_table2_durability"
  "bench_table2_durability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_durability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
