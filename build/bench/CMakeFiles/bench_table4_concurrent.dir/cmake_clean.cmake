file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_concurrent.dir/bench_table4_concurrent.cpp.o"
  "CMakeFiles/bench_table4_concurrent.dir/bench_table4_concurrent.cpp.o.d"
  "bench_table4_concurrent"
  "bench_table4_concurrent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_concurrent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
