# Empty dependencies file for bench_micro_io.
# This may be replaced when dependencies are built.
