# Empty dependencies file for bench_ablation_advisor.
# This may be replaced when dependencies are built.
