file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_advisor.dir/bench_ablation_advisor.cpp.o"
  "CMakeFiles/bench_ablation_advisor.dir/bench_ablation_advisor.cpp.o.d"
  "bench_ablation_advisor"
  "bench_ablation_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
