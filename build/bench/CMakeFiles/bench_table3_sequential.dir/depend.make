# Empty dependencies file for bench_table3_sequential.
# This may be replaced when dependencies are built.
