
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table3_sequential.cpp" "bench/CMakeFiles/bench_table3_sequential.dir/bench_table3_sequential.cpp.o" "gcc" "bench/CMakeFiles/bench_table3_sequential.dir/bench_table3_sequential.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sched/CMakeFiles/griddles_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/desim/CMakeFiles/griddles_desim.dir/DependInfo.cmake"
  "/root/repo/build/src/workflow/CMakeFiles/griddles_workflow.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/griddles_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/griddles_core.dir/DependInfo.cmake"
  "/root/repo/build/src/gns/CMakeFiles/griddles_gns.dir/DependInfo.cmake"
  "/root/repo/build/src/gridbuffer/CMakeFiles/griddles_gridbuffer.dir/DependInfo.cmake"
  "/root/repo/build/src/replica/CMakeFiles/griddles_replica.dir/DependInfo.cmake"
  "/root/repo/build/src/remote/CMakeFiles/griddles_remote.dir/DependInfo.cmake"
  "/root/repo/build/src/vfs/CMakeFiles/griddles_vfs.dir/DependInfo.cmake"
  "/root/repo/build/src/nws/CMakeFiles/griddles_nws.dir/DependInfo.cmake"
  "/root/repo/build/src/testbed/CMakeFiles/griddles_testbed.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/griddles_net.dir/DependInfo.cmake"
  "/root/repo/build/src/xdr/CMakeFiles/griddles_xdr.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/griddles_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
