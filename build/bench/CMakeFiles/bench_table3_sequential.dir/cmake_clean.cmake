file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_sequential.dir/bench_table3_sequential.cpp.o"
  "CMakeFiles/bench_table3_sequential.dir/bench_table3_sequential.cpp.o.d"
  "bench_table3_sequential"
  "bench_table3_sequential.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_sequential.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
