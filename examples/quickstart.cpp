// Quickstart: one program, three IO configurations, zero code changes.
//
// A tiny "legacy application" writes a result file and a second one reads
// it back — through the File Multiplexer's C-style shim (glio_*), exactly
// the calls an LD_PRELOAD interposer would redirect. We run the pair
// three times:
//
//   1. plain local files (no GNS rule at all),
//   2. rerouted to a Grid Buffer stream (reader overlaps the writer),
//   3. rerouted to a remote file server (staged copy).
//
// Only the GNS mapping changes between runs — the paper's core claim.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>
#include <cstring>
#include <thread>

#include "src/common/tempfile.h"
#include "src/core/multiplexer.h"
#include "src/core/posix_shim.h"
#include "src/gns/service.h"
#include "src/gridbuffer/server.h"
#include "src/net/inproc.h"
#include "src/remote/file_server.h"

using namespace griddles;

namespace {

// ---- The "legacy application": knows nothing about the grid. ----------
bool legacy_writer(const char* path) {
  const int fd = core::glio_open(path, "w");
  if (fd < 0) return false;
  for (int i = 0; i < 1000; ++i) {
    char line[64];
    const int n = std::snprintf(line, sizeof(line),
                                "timestep %04d: stress=%.3f\n", i,
                                i * 0.25);
    if (core::glio_write(fd, line, static_cast<std::size_t>(n)) != n) {
      return false;
    }
  }
  return core::glio_close(fd) == 0;
}

bool legacy_reader(const char* path, int* lines_out) {
  const int fd = core::glio_open(path, "r");
  if (fd < 0) return false;
  int lines = 0;
  char buffer[4096];
  while (true) {
    const std::int64_t n = core::glio_read(fd, buffer, sizeof(buffer));
    if (n < 0) return false;
    if (n == 0) break;
    for (std::int64_t i = 0; i < n; ++i) {
      if (buffer[i] == '\n') ++lines;
    }
  }
  *lines_out = lines;
  return core::glio_close(fd) == 0;
}
// -----------------------------------------------------------------------

int fail(const char* what) {
  std::fprintf(stderr, "FAILED: %s (%s)\n", what, core::glio_last_error());
  return 1;
}

}  // namespace

int main() {
  auto scratch = TempDir::create("quickstart");
  if (!scratch.is_ok()) return 1;
  RealClock clock;
  net::InProcNetwork network(clock);

  // Shared services: a GNS, a Grid Buffer server, a remote file server.
  gns::Database db;
  auto gns_transport = network.transport("dione");
  gns::GnsServer gns_server(db, *gns_transport,
                            net::inproc_endpoint("dione", "gns"));
  if (!gns_server.start().is_ok()) return 1;

  gridbuffer::GridBufferServer buffer_server(
      scratch->file("gbuf").string(), *gns_transport,
      net::inproc_endpoint("dione", "gbuf"));
  if (!buffer_server.start().is_ok()) return 1;

  remote::FileServer file_server(scratch->file("export"), *gns_transport,
                                 net::inproc_endpoint("dione", "fs"));
  if (!file_server.start().is_ok()) return 1;

  const std::string work = scratch->file("work").string();
  auto run_pair = [&](const char* label, bool concurrent) -> bool {
    auto transport = network.transport("jagan");
    gns::GnsClient gns_client(*transport, gns_server.endpoint());
    core::FileMultiplexer::Options options;
    options.host = "jagan";
    options.local_root = work;
    options.scratch_dir = scratch->file("stage").string();
    options.gns = &gns_client;
    options.transport = transport.get();
    core::FileMultiplexer fm(options);
    core::glio_install(&fm);

    int lines = 0;
    bool write_ok = true, read_ok = true;
    if (concurrent) {
      std::thread writer([&] { write_ok = legacy_writer("result.dat"); });
      read_ok = legacy_reader("result.dat", &lines);
      writer.join();
    } else {
      write_ok = legacy_writer("result.dat");
      read_ok = legacy_reader("result.dat", &lines);
    }
    core::glio_install(nullptr);
    if (!write_ok || !read_ok || lines != 1000) {
      std::fprintf(stderr, "  %s: write=%d read=%d lines=%d\n", label,
                   write_ok, read_ok, lines);
      return false;
    }
    auto stats = fm.stats();
    std::printf(
        "  %-28s read %d lines  [local=%llu staged=%llu buffer=%llu]\n",
        label, lines, (unsigned long long)stats.local_opens,
        (unsigned long long)stats.staged_opens,
        (unsigned long long)stats.buffer_opens);
    return true;
  };

  std::printf("GriddLeS quickstart: same binary, three IO routings\n");

  // 1. No mapping: plain local file.
  if (!run_pair("local files", false)) return fail("local run");

  // 2. Reroute result.dat to a Grid Buffer (writer and reader overlap).
  {
    gns::MappingRule rule;
    rule.host_pattern = "jagan";
    rule.path_pattern = "*result.dat";
    rule.mapping.mode = gns::IoMode::kGridBuffer;
    rule.mapping.channel = "quickstart/result";
    rule.mapping.buffer_endpoint =
        buffer_server.endpoint().to_string();
    db.add_rule(rule);
  }
  if (!run_pair("grid buffer stream", true)) return fail("buffer run");

  // 3. Reroute to the remote file server (staged copy in/out).
  {
    db.set_rules({});
    gns::MappingRule rule;
    rule.host_pattern = "jagan";
    rule.path_pattern = "*result.dat";
    rule.mapping.mode = gns::IoMode::kRemoteCopy;
    rule.mapping.remote_endpoint = file_server.endpoint().to_string();
    rule.mapping.remote_path = "result.dat";
    db.add_rule(rule);
  }
  if (!run_pair("remote file (staged copy)", false)) {
    return fail("remote run");
  }

  buffer_server.stop();
  file_server.stop();
  gns_server.stop();
  std::printf("All three configurations produced identical results.\n");
  return 0;
}
