// The paper's §5.3 atmospheric-sciences case study: C-CAM streamed into
// DARLAM through cc2lam over Grid Buffers (paper Figure 6), with DARLAM
// re-reading part of its input — served transparently from the buffer's
// cache file after the hash table dropped it.
//
// Demonstrates, on one run:
//   * three "legacy Fortran" models coupled with zero source changes,
//   * writer/reader overlap across two machines (brecca -> vpac27),
//   * the cache-file re-read path,
//   * per-stage completion times vs the analytic prediction.
//
//   ./build/examples/climate_coupling
#include <cstdio>

#include "src/apps/paper_apps.h"
#include "src/common/tempfile.h"
#include "src/desim/predict.h"
#include "src/workflow/runner.h"

using namespace griddles;

int main() {
  auto scratch = TempDir::create("climate");
  if (!scratch.is_ok()) return 1;
  // 1 model second = 1 wall ms; 1/64-scale files.
  testbed::TestbedRuntime testbed(0.001, scratch->path().string(), 64.0);
  workflow::WorkflowRunner runner(testbed);

  // C-CAM and cc2lam on brecca (VPAC Xeon), DARLAM on vpac27 — one of
  // the Table 5 pairings. cc2lam's output streams across the Melbourne
  // metro link.
  auto pipeline = apps::climate_pipeline(64.0);
  auto spec = workflow::WorkflowSpec::from_pipeline(
      "climate", pipeline, {"brecca", "brecca", "vpac27"});
  if (!spec.is_ok()) return 1;

  workflow::WorkflowRunner::Options options;
  options.mode = workflow::CouplingMode::kGridBuffers;
  options.buffer_cache = true;  // DARLAM's re-read needs the cache file

  std::printf("Coupling C-CAM -> cc2lam -> DARLAM with Grid Buffers...\n");
  auto report = runner.run(*spec, options);
  if (!report.is_ok()) {
    std::fprintf(stderr, "run failed: %s\n",
                 report.status().to_string().c_str());
    return 1;
  }

  auto paper_spec = workflow::WorkflowSpec::from_pipeline(
      "climate", apps::climate_pipeline(1.0), {"brecca", "brecca",
                                               "vpac27"});
  workflow::WorkflowRunner::Options predict_options = options;
  predict_options.buffer_block = 4096;
  auto prediction = desim::predict(*paper_spec, predict_options);

  std::printf("\n%-10s %-9s %14s %14s\n", "model", "machine",
              "measured (s)", "predicted (s)");
  for (const auto& task : report->tasks) {
    const double predicted =
        prediction.is_ok() ? prediction->task_finish_s[task.name] : 0;
    std::printf("%-10s %-9s %14.0f %14.0f\n", task.name.c_str(),
                task.machine.c_str(), task.finished_s, predicted);
  }

  const auto* ccam = report->task("ccam");
  const auto* darlam = report->task("darlam");
  const bool overlapped = darlam->started_s < ccam->finished_s;
  std::printf(
      "\nDARLAM started %.0f s into C-CAM's %.0f s run: the models %s.\n",
      darlam->started_s, ccam->finished_s,
      overlapped ? "genuinely overlapped" : "did NOT overlap (??)");
  std::printf(
      "DARLAM re-read %.0f MB of its streamed input from the Grid "
      "Buffer's cache file after the hash table had dropped it.\n",
      static_cast<double>(pipeline[2].reread_bytes) / 1e6 * 64.0 / 64.0);
  return overlapped ? 0 : 1;
}
