// The paper's §5.2 mechanical-engineering case study, end to end.
//
// Runs the five-stage durability pipeline (CHAMMY -> PAFEC ->
// MAKE_SF_FILES -> FAST -> OBJECTIVE, wired per Figure 5) on the modelled
// Table 1 testbed in the paper's three configurations and prints a
// Table 2-style summary. The stage programs are identical in all three
// runs; only the GNS rules the workflow runner installs change.
//
//   ./build/examples/durability_pipeline
#include <cstdio>

#include "src/apps/paper_apps.h"
#include "src/common/strings.h"
#include "src/common/tempfile.h"
#include "src/workflow/runner.h"

using namespace griddles;

namespace {
int run_configuration(const char* label,
                      const std::vector<std::string>& machines,
                      workflow::CouplingMode mode, double* total_out) {
  auto scratch = TempDir::create("durability");
  if (!scratch.is_ok()) return 1;
  // 1 model second = 1 wall millisecond; files at 1/64 scale.
  testbed::TestbedRuntime testbed(0.001, scratch->path().string(), 64.0);
  workflow::WorkflowRunner runner(testbed);

  auto spec = workflow::WorkflowSpec::from_pipeline(
      "durability", apps::durability_pipeline(64.0), machines);
  if (!spec.is_ok()) {
    std::fprintf(stderr, "spec: %s\n", spec.status().to_string().c_str());
    return 1;
  }
  workflow::WorkflowRunner::Options options;
  options.mode = mode;
  auto report = runner.run(*spec, options);
  if (!report.is_ok()) {
    std::fprintf(stderr, "%s: %s\n", label,
                 report.status().to_string().c_str());
    return 1;
  }
  std::printf("%-34s total %s\n", label,
              strings::format_ms(
                  static_cast<long long>(report->total_seconds + 0.5))
                  .c_str());
  for (const auto& task : report->tasks) {
    std::printf("    %-14s on %-8s done at %7.0f s\n", task.name.c_str(),
                task.machine.c_str(), task.finished_s);
  }
  *total_out = report->total_seconds;
  return 0;
}
}  // namespace

int main() {
  std::printf(
      "Durability pipeline (paper Table 2), model times on the Table 1 "
      "testbed:\n\n");
  double exp1 = 0, exp2 = 0, exp3 = 0;
  if (run_configuration("exp1: jagan, local files",
                        {"jagan"},
                        workflow::CouplingMode::kSequentialFiles,
                        &exp1) != 0) {
    return 1;
  }
  if (run_configuration("exp2: jagan, GridFiles (buffers)",
                        {"jagan"},
                        workflow::CouplingMode::kGridBuffers, &exp2) != 0) {
    return 1;
  }
  if (run_configuration(
          "exp3: distributed (5 machines)",
          {"koume00", "jagan", "dione", "vpac27", "freak"},
          workflow::CouplingMode::kGridBuffers, &exp3) != 0) {
    return 1;
  }
  std::printf("\nPaper:     exp1 99:17, exp2 89:17, exp3 55:11\n");
  std::printf("Shape %s: buffers beat files (%.0f < %.0f) and "
              "distribution wins again (%.0f < %.0f).\n",
              exp2 < exp1 && exp3 < exp2 ? "reproduced" : "NOT reproduced",
              exp2, exp1, exp3, exp2);
  return exp2 < exp1 && exp3 < exp2 ? 0 : 1;
}
