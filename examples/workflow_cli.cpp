// griddles-run: compose and run a Grid workflow from a config file —
// the "tools ... for specifying and composing a new Grid application"
// the paper's conclusion calls for.
//
// Usage:
//   ./build/examples/workflow_cli <workflow.ini>
//   ./build/examples/workflow_cli --demo      (writes & runs an example)
//
// Telemetry (see DESIGN.md "Observability" and §11 "Causal tracing"):
//   --metrics=<file|->   dump a JSON metrics snapshot after the run
//   --trace=<file|->     record per-file IO spans, dump as JSON lines
//   --spans=<file|->     record causal spans, dump as Chrome
//                        trace-event/Perfetto JSON (load in
//                        chrome://tracing, or analyze with
//                        tools/tracepath.py)
//
// Telemetry output paths are probed up front (a bad path exits 2 before
// any work runs), reports are dumped even when the run itself fails
// (chaos runs still produce a timeline), and a failed dump exits 3 with
// a typed error instead of silently losing the report.
//
// Fault injection (see DESIGN.md §7, README "Fault injection"):
//   --faults=<spec>      arm a deterministic fault plan for the run,
//                        e.g. --faults='seed=7;drop@rpc:*>vpac27:p=0.2'
//                        or an overload burst: 'burst@rpc:*:factor=8'
//
// Overload robustness (see DESIGN.md §14):
//   --deadline=<model s> end-to-end budget for the run; it propagates
//                        across every RPC hop, and expired work is
//                        rejected with DEADLINE_EXCEEDED instead of
//                        executing late. (Also `deadline =` in
//                        [workflow].) 0 = no budget.
//
// Crash restart (see DESIGN.md "Control-plane resilience"):
//   --checkpoint=<file>  journal completed stages/copies; rerunning with
//                        the same file resumes, skipping finished work
//                        (sequential-files mode only)
//   --scratch=<dir>      stable scratch root instead of a fresh temp dir
//                        (required for a checkpoint resume to find the
//                        previous run's outputs)
//
// [workflow] also accepts `gns_replicas = N` (multi-master replicated
// name service with failover; default 1) and `gns_shards = N` (buckets
// the namespace is rendezvous-hashed into; default 8). `--gns-shards=N`
// on the command line beats the ini key.
//
// Config format:
//   [workflow]
//   name = demo
//   mode = grid-buffers        ; sequential-files|concurrent-files|...
//   scale = 800                ; model seconds per wall second
//   byte_scale = 64            ; shrink real files, keep model times
//   schedule = auto            ; optional: pick machines automatically
//
//   [task:ccam]
//   machine = brecca
//   work = 2800
//   timesteps = 240
//   outputs = CCAM_OUT.DAT:180000000
//
//   [task:darlam]
//   machine = vpac27
//   work = 1310
//   inputs = CCAM_OUT.DAT:180000000
//   outputs = OUT.DAT:60000000
//   reread = 30000000
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <optional>

#include "src/common/strings.h"
#include "src/common/tempfile.h"
#include "src/desim/predict.h"
#include "src/fault/plan.h"
#include "src/obs/export.h"
#include "src/obs/span.h"
#include "src/obs/trace.h"
#include "src/sched/scheduler.h"
#include "src/workflow/runner.h"

using namespace griddles;

namespace {

Result<std::vector<apps::StreamSpec>> parse_streams(
    const std::string& text) {
  std::vector<apps::StreamSpec> streams;
  if (strings::trim(text).empty()) return streams;
  for (const std::string& token : strings::split(text, ',')) {
    const auto parts = strings::split(std::string(strings::trim(token)),
                                      ':');
    if (parts.size() != 2) {
      return invalid_argument(
          strings::cat("stream '", token, "' is not path:bytes"));
    }
    const auto bytes = strings::parse_int(parts[1]);
    if (!bytes || *bytes < 0) {
      return invalid_argument(
          strings::cat("bad byte count in '", token, "'"));
    }
    streams.push_back(
        {parts[0], static_cast<std::uint64_t>(*bytes)});
  }
  return streams;
}

Result<workflow::CouplingMode> parse_mode(const std::string& name) {
  if (name == "sequential-files") {
    return workflow::CouplingMode::kSequentialFiles;
  }
  if (name == "concurrent-files") {
    return workflow::CouplingMode::kConcurrentFiles;
  }
  if (name == "grid-buffers") return workflow::CouplingMode::kGridBuffers;
  return invalid_argument(strings::cat("unknown mode '", name, "'"));
}

struct CliOptions {
  std::string fault_spec;
  std::string checkpoint_path;
  std::string scratch_dir;
  int fanout = -1;  // --fanout= override; -1 defers to workflow.fanout
  int gns_shards = -1;  // --gns-shards= override; -1 defers to the ini
  double deadline_s = -1;  // --deadline= (model s); -1 defers to the ini
};

Result<int> run_from_config(const Config& config, const CliOptions& cli) {
  GL_ASSIGN_OR_RETURN(const std::string name,
                      config.get_required("workflow.name"));
  GL_ASSIGN_OR_RETURN(
      const workflow::CouplingMode mode,
      parse_mode(config.get_or("workflow.mode", "grid-buffers")));
  const double scale = config.get_double_or("workflow.scale", 800);
  const double byte_scale =
      config.get_double_or("workflow.byte_scale", 64);
  const bool auto_schedule =
      config.get_or("workflow.schedule", "") == "auto";

  // Collect tasks in section order.
  std::vector<apps::AppKernel> pipeline;
  std::vector<std::string> machines;
  for (const std::string& section : config.sections()) {
    if (!strings::starts_with(section, "task:")) continue;
    auto key = [&](const char* k) { return strings::cat(section, ".", k); };
    apps::AppKernel kernel;
    kernel.name = section.substr(5);
    kernel.work_units = config.get_double_or(key("work"), 1);
    kernel.timesteps = static_cast<int>(
        config.get_int_or(key("timesteps"), 50));
    GL_ASSIGN_OR_RETURN(kernel.inputs,
                        parse_streams(config.get_or(key("inputs"), "")));
    GL_ASSIGN_OR_RETURN(kernel.outputs,
                        parse_streams(config.get_or(key("outputs"), "")));
    kernel.reread_bytes = static_cast<std::uint64_t>(
        config.get_int_or(key("reread"), 0));
    // Scale real byte counts.
    for (auto& stream : kernel.inputs) {
      stream.bytes = std::max<std::uint64_t>(
          1, static_cast<std::uint64_t>(stream.bytes / byte_scale));
    }
    for (auto& stream : kernel.outputs) {
      stream.bytes = std::max<std::uint64_t>(
          1, static_cast<std::uint64_t>(stream.bytes / byte_scale));
    }
    kernel.reread_bytes = static_cast<std::uint64_t>(
        kernel.reread_bytes / byte_scale);
    pipeline.push_back(kernel);
    machines.push_back(config.get_or(key("machine"), "brecca"));
  }
  if (pipeline.empty()) {
    return Result<int>(invalid_argument("no [task:*] sections"));
  }

  double predicted_total = -1;
  if (auto_schedule) {
    // Let the coupling-aware scheduler place the stages.
    workflow::Scheduler::Options sched_options;
    sched_options.runner.mode = mode;
    std::vector<std::string> candidates;
    for (const auto& machine : testbed::paper_machines()) {
      candidates.push_back(machine.name);
    }
    GL_ASSIGN_OR_RETURN(const workflow::ScheduleResult schedule,
                        workflow::Scheduler::schedule(
                            name, pipeline, candidates, sched_options));
    machines = schedule.machines;
    std::printf("scheduler chose:");
    for (std::size_t i = 0; i < machines.size(); ++i) {
      std::printf(" %s->%s", pipeline[i].name.c_str(),
                  machines[i].c_str());
    }
    std::printf("  (predicted %.0f s over %zu candidates)\n",
                schedule.predicted_seconds, schedule.candidates_scored);
    predicted_total = schedule.predicted_seconds;
  }

  // A --scratch dir is stable across runs (checkpoint resumes need the
  // previous run's outputs in place); otherwise use a fresh temp dir.
  std::optional<TempDir> temp_scratch;
  std::string scratch_root = cli.scratch_dir;
  if (scratch_root.empty()) {
    GL_ASSIGN_OR_RETURN(temp_scratch, TempDir::create("griddles-run"));
    scratch_root = temp_scratch->path().string();
  } else {
    std::error_code ec;
    std::filesystem::create_directories(scratch_root, ec);
    if (ec) {
      return io_error(strings::cat("cannot create scratch dir ",
                                   scratch_root, ": ", ec.message()));
    }
  }
  testbed::TestbedRuntime testbed(1.0 / scale, scratch_root, byte_scale);
  // With --spans= active, stamp spans with model time from this run's
  // testbed clock; the guard unhooks it before the testbed dies.
  struct ModelClockScope {
    explicit ModelClockScope(const Clock* clock) {
      if (obs::SpanCollector::global().enabled()) {
        obs::SpanCollector::global().set_model_clock(clock);
      }
    }
    ~ModelClockScope() { obs::SpanCollector::global().set_model_clock(nullptr); }
  } model_clock_scope(&testbed.clock());
  std::shared_ptr<fault::Plan> plan;
  if (!cli.fault_spec.empty()) {
    GL_ASSIGN_OR_RETURN(plan, fault::Plan::parse(cli.fault_spec));
    fault::arm(plan, &testbed.clock());
    std::printf("fault plan armed: %zu rule(s), seed %llu\n",
                plan->rules().size(), (unsigned long long)plan->seed());
  }
  workflow::WorkflowRunner runner(testbed);
  GL_ASSIGN_OR_RETURN(
      const workflow::WorkflowSpec spec,
      workflow::WorkflowSpec::from_pipeline(name, pipeline, machines));
  workflow::WorkflowRunner::Options options;
  options.mode = mode;
  options.gns_replicas = static_cast<int>(
      config.get_int_or("workflow.gns_replicas", 1));
  // Namespace shard count: --gns-shards= beats the ini key.
  options.gns_shards =
      cli.gns_shards > 0
          ? cli.gns_shards
          : static_cast<int>(config.get_int_or("workflow.gns_shards",
                                               options.gns_shards));
  // Multicast relay fanout: --fanout= beats the ini key; 0 disables.
  options.multicast_fanout =
      cli.fanout >= 0
          ? cli.fanout
          : static_cast<int>(config.get_int_or(
                "workflow.fanout", options.multicast_fanout));
  options.checkpoint_path = cli.checkpoint_path;
  // End-to-end run deadline in model seconds: --deadline= beats the ini
  // key; 0 (the default) runs without a budget.
  options.deadline_s =
      cli.deadline_s >= 0
          ? cli.deadline_s
          : config.get_double_or("workflow.deadline", 0);

  std::printf("running '%s' (%s, %.0fx time compression)...\n",
              name.c_str(),
              std::string(workflow::coupling_mode_name(mode)).c_str(),
              scale);
  auto run_result = runner.run(spec, options);
  if (plan) {
    fault::disarm();
    std::printf("faults injected: %llu\n",
                (unsigned long long)plan->injection_count());
  }
  GL_ASSIGN_OR_RETURN(const workflow::WorkflowReport report,
                      std::move(run_result));
  for (const auto& task : report.tasks) {
    std::printf("  %-16s on %-9s finished at %8.0f model s "
                "(read %llu, wrote %llu bytes)\n",
                task.name.c_str(), task.machine.c_str(), task.finished_s,
                (unsigned long long)task.bytes_read,
                (unsigned long long)task.bytes_written);
  }
  for (const auto& copy : report.copies) {
    std::printf("  copy %-12s %s->%s: %.0f s\n", copy.path.c_str(),
                copy.from.c_str(), copy.to.c_str(), copy.seconds);
  }
  std::printf("total: %.0f model seconds\n", report.total_seconds);
  if (predicted_total > 0) {
    desim::record_accuracy(predicted_total, report.total_seconds);
    std::printf("prediction accuracy: %.2fx actual/predicted\n",
                report.total_seconds / predicted_total);
  }
  return 0;
}

constexpr const char* kDemoConfig = R"(# auto-generated demo workflow
[workflow]
name = demo-climate
mode = grid-buffers
scale = 2000
byte_scale = 256
schedule = auto

[task:ccam]
work = 2800
timesteps = 120
outputs = CCAM_OUT.DAT:180000000

[task:cc2lam]
work = 15
timesteps = 120
inputs = CCAM_OUT.DAT:180000000
outputs = LAM_IN.DAT:180000000

[task:darlam]
work = 1310
timesteps = 120
inputs = LAM_IN.DAT:180000000
outputs = DARLAM_OUT.DAT:60000000
reread = 30000000
)";

/// Dumps every requested telemetry report. Returns the first failure but
/// still attempts the rest — a broken metrics path must not also lose
/// the span timeline.
Status dump_telemetry(const std::string& metrics_path,
                      const std::string& trace_path,
                      const std::string& spans_path) {
  Status first = Status::ok();
  const auto note = [&first](Status status) {
    if (!status.is_ok()) {
      std::fprintf(stderr, "telemetry: %s\n", status.to_string().c_str());
      if (first.is_ok()) first = std::move(status);
    }
  };
  if (!metrics_path.empty()) {
    note(obs::write_json_file(metrics_path, obs::snapshot()));
  }
  if (!trace_path.empty()) {
    note(obs::write_text_file(trace_path,
                              obs::IoTracer::global().drain_json_lines()));
  }
  if (!spans_path.empty()) {
    note(obs::write_text_file(
        spans_path, obs::SpanCollector::global().drain_chrome_json()));
  }
  return first;
}

}  // namespace

int main(int argc, char** argv) {
  std::string metrics_path;
  std::string trace_path;
  std::string spans_path;
  CliOptions cli;
  std::string input;
  bool usage_error = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (strings::starts_with(arg, "--metrics=")) {
      metrics_path = arg.substr(10);
    } else if (strings::starts_with(arg, "--trace=")) {
      trace_path = arg.substr(8);
    } else if (strings::starts_with(arg, "--spans=")) {
      spans_path = arg.substr(8);
    } else if (strings::starts_with(arg, "--faults=")) {
      cli.fault_spec = arg.substr(9);
    } else if (strings::starts_with(arg, "--checkpoint=")) {
      cli.checkpoint_path = arg.substr(13);
    } else if (strings::starts_with(arg, "--fanout=")) {
      cli.fanout = std::atoi(arg.c_str() + 9);
    } else if (strings::starts_with(arg, "--gns-shards=")) {
      cli.gns_shards = std::atoi(arg.c_str() + 13);
    } else if (strings::starts_with(arg, "--scratch=")) {
      cli.scratch_dir = arg.substr(10);
    } else if (strings::starts_with(arg, "--deadline=")) {
      cli.deadline_s = std::atof(arg.c_str() + 11);
    } else if (input.empty()) {
      input = arg;
    } else {
      usage_error = true;
    }
  }
  if (input.empty() || usage_error) {
    std::fprintf(stderr,
                 "usage: %s [--metrics=<file|->] [--trace=<file|->] "
                 "[--spans=<file|->] [--faults=<spec>] "
                 "[--checkpoint=<file>] [--scratch=<dir>] "
                 "[--fanout=<n>] [--gns-shards=<n>] "
                 "[--deadline=<model s>] "
                 "<workflow.ini> | --demo\n",
                 argv[0]);
    return 2;
  }
  // Fail fast on an unwritable telemetry path: better a usage error now
  // than a minutes-long run whose report cannot be written at the end.
  for (const std::string* path : {&metrics_path, &trace_path, &spans_path}) {
    if (path->empty()) continue;
    if (const Status s = obs::probe_writable(*path); !s.is_ok()) {
      std::fprintf(stderr, "telemetry: %s\n", s.to_string().c_str());
      return 2;
    }
  }
  if (!trace_path.empty()) obs::IoTracer::global().enable(true);
  if (!spans_path.empty()) obs::SpanCollector::global().enable(true);

  Result<Config> config = invalid_argument("unset");
  if (input == "--demo") {
    std::printf("demo workflow config:\n%s\n", kDemoConfig);
    config = Config::parse(kDemoConfig);
  } else {
    config = Config::load(input);
  }
  if (!config.is_ok()) {
    std::fprintf(stderr, "config: %s\n",
                 config.status().to_string().c_str());
    return 1;
  }
  auto result = run_from_config(*config, cli);
  // Telemetry is dumped whether the run succeeded or not: a faulted or
  // crashed run's metrics and span timeline are exactly what a chaos
  // investigation needs.
  const Status dumped = dump_telemetry(metrics_path, trace_path, spans_path);
  if (!result.is_ok()) {
    std::fprintf(stderr, "error: %s\n",
                 result.status().to_string().c_str());
    return 1;
  }
  if (!dumped.is_ok()) return 3;
  return *result;
}
