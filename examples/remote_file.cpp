// Remote file access (paper modes 2/3) and the run-time copy-vs-proxy
// decision (kAuto): the same application opens two files on a remote
// server; the FM stages the one it will scan completely and proxies the
// one it only samples — decided at OPEN time from file size, the mapping's
// access-fraction hint, and the (modelled) link weather.
//
//   ./build/examples/remote_file
#include <cstdio>

#include "src/common/tempfile.h"
#include "src/core/multiplexer.h"
#include "src/gns/service.h"
#include "src/net/inproc.h"
#include "src/remote/file_server.h"
#include "src/vfs/local_client.h"

using namespace griddles;

int main() {
  auto scratch = TempDir::create("remote-example");
  if (!scratch.is_ok()) return 1;
  ScaledClock clock(0.002);  // 1 model s = 2 wall ms
  net::InProcNetwork network(clock);
  // jagan <-> freak: trans-Pacific link.
  net::LinkModel wan;
  wan.latency = from_seconds_d(0.090);
  wan.bandwidth_bytes_per_sec = 0.84e6;
  network.links().set_link("jagan", "freak", wan);

  // The remote archive on freak.
  auto server_transport = network.transport("freak");
  remote::FileServer file_server(scratch->file("archive"),
                                 *server_transport,
                                 net::inproc_endpoint("freak", "fs"));
  if (!file_server.start().is_ok()) return 1;
  Bytes small_config(200 * 1000);   // scanned fully
  Bytes big_archive(20 * 1000 * 1000);  // sampled sparsely
  for (std::size_t i = 0; i < small_config.size(); ++i) {
    small_config[i] = static_cast<std::byte>('A' + i % 26);
  }
  for (std::size_t i = 0; i < big_archive.size(); ++i) {
    big_archive[i] = static_cast<std::byte>(i % 256);
  }
  if (!vfs::write_file((file_server.root() / "config.dat").string(),
                       small_config)
           .is_ok() ||
      !vfs::write_file((file_server.root() / "archive.bin").string(),
                       big_archive)
           .is_ok()) {
    return 1;
  }

  // GNS rules: both files are remote with mode=auto; the archive carries
  // an access-fraction hint of 1% (the app samples it).
  gns::Database db;
  auto gns_transport = network.transport("jagan");
  gns::GnsServer gns_server(db, *gns_transport,
                            net::inproc_endpoint("jagan", "gns"));
  if (!gns_server.start().is_ok()) return 1;
  {
    gns::MappingRule rule;
    rule.host_pattern = "jagan";
    rule.path_pattern = "*config.dat";
    rule.mapping.mode = gns::IoMode::kAuto;
    rule.mapping.remote_endpoint = file_server.endpoint().to_string();
    rule.mapping.remote_path = "config.dat";
    rule.mapping.access_fraction = 1.0;
    db.add_rule(rule);
    rule.path_pattern = "*archive.bin";
    rule.mapping.remote_path = "archive.bin";
    rule.mapping.access_fraction = 0.01;
    db.add_rule(rule);
  }

  // Static link estimate standing in for NWS (see replica_selection for
  // the live-probing variant).
  nws::StaticLinkEstimator estimator;
  estimator.set("freak", {0.090, 0.84e6});

  auto app_transport = network.transport("jagan");
  gns::GnsClient gns_client(*app_transport, gns_server.endpoint());
  core::FileMultiplexer::Options options;
  options.host = "jagan";
  options.local_root = scratch->file("work").string();
  options.scratch_dir = scratch->file("stage").string();
  options.gns = &gns_client;
  options.transport = app_transport.get();
  options.estimator = &estimator;
  options.clock = &clock;
  core::FileMultiplexer fm(options);

  // --- The application ---------------------------------------------
  // Full scan of config.dat:
  auto config_fd = fm.open("config.dat", vfs::OpenFlags::input());
  if (!config_fd.is_ok()) return 1;
  Bytes buffer(64 * 1024);
  std::uint64_t config_bytes = 0;
  while (true) {
    auto n = fm.read(*config_fd, {buffer.data(), buffer.size()});
    if (!n.is_ok() || *n == 0) break;
    config_bytes += *n;
  }
  std::printf("config.dat: scanned %llu bytes via [%s]\n",
              (unsigned long long)config_bytes,
              fm.describe(*config_fd)->c_str());

  // Sparse sampling of archive.bin (every ~2 MB):
  auto archive_fd = fm.open("archive.bin", vfs::OpenFlags::input());
  if (!archive_fd.is_ok()) return 1;
  std::uint64_t sampled = 0;
  for (std::uint64_t offset = 0; offset < big_archive.size();
       offset += 2 * 1000 * 1000) {
    if (!fm.seek(*archive_fd, static_cast<std::int64_t>(offset),
                 vfs::Whence::kSet)
             .is_ok()) {
      return 1;
    }
    auto n = fm.read(*archive_fd, {buffer.data(), 4096});
    if (!n.is_ok()) return 1;
    sampled += *n;
  }
  std::printf("archive.bin: sampled %llu bytes via [%s]\n",
              (unsigned long long)sampled,
              fm.describe(*archive_fd)->c_str());
  // -------------------------------------------------------------------

  const auto stats = fm.stats();
  std::printf(
      "\nFM routing decisions: %llu staged copy, %llu remote proxy.\n",
      (unsigned long long)stats.staged_opens,
      (unsigned long long)stats.proxy_opens);
  std::printf(
      "(Paper §3.1: the access pattern and link weather decide, per "
      "OPEN, whether to copy the file or touch it remotely.)\n");
  if (fm.close_all().is_ok() && stats.staged_opens == 1 &&
      stats.proxy_opens == 1) {
    return 0;
  }
  return 1;
}
