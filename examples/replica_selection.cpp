// Replicated remote IO (paper modes 4/5): a logical file with copies on
// three machines, chosen via live NWS measurements of the modelled WAN —
// and remapped mid-read when the network weather changes.
//
//   ./build/examples/replica_selection
#include <cstdio>

#include "src/common/tempfile.h"
#include "src/net/inproc.h"
#include "src/nws/monitor.h"
#include "src/remote/file_server.h"
#include "src/replica/replicated_client.h"
#include "src/vfs/local_client.h"

using namespace griddles;

int main() {
  auto scratch = TempDir::create("replica-example");
  if (!scratch.is_ok()) return 1;
  // 1 model second = 2 wall ms.
  ScaledClock clock(0.002);
  net::InProcNetwork network(clock);

  // WAN: freak (US) is far, brecca (AU, same metro as the client) near,
  // koume00 (JP) in between.
  auto set_link = [&](const char* host, double latency_s, double mbps) {
    net::LinkModel model;
    model.latency = from_seconds_d(latency_s);
    model.bandwidth_bytes_per_sec = mbps * 1e6;
    network.links().set_link("vpac27", host, model);
  };
  set_link("freak", 0.090, 0.84);
  set_link("brecca", 0.002, 3.6);
  set_link("koume00", 0.060, 0.90);

  // The replicated dataset: 8 MB of reanalysis data on three servers.
  Bytes data(8 * 1000 * 1000);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::byte>(i % 251);
  }
  replica::Catalog catalog;
  std::vector<std::unique_ptr<net::Transport>> transports;
  std::vector<std::unique_ptr<remote::FileServer>> servers;
  std::vector<std::unique_ptr<nws::Responder>> responders;
  for (const char* host : {"freak", "brecca", "koume00"}) {
    auto transport = network.transport(host);
    auto server = std::make_unique<remote::FileServer>(
        scratch->file(std::string("export-") + host), *transport,
        net::inproc_endpoint(host, "fs"));
    if (!server->start().is_ok()) return 1;
    if (!vfs::write_file((server->root() / "reanalysis.nc").string(), data)
             .is_ok()) {
      return 1;
    }
    catalog.add("climate/reanalysis-2003",
                {host, server->endpoint().to_string(), "reanalysis.nc",
                 data.size(), fnv1a(data)});
    auto responder = std::make_unique<nws::Responder>(
        *transport, net::inproc_endpoint(host, "nws"));
    if (!responder->start().is_ok()) return 1;
    transports.push_back(std::move(transport));
    servers.push_back(std::move(server));
    responders.push_back(std::move(responder));
  }

  auto catalog_transport = network.transport("vpac27");
  replica::CatalogServer catalog_server(
      catalog, *catalog_transport, net::inproc_endpoint("vpac27", "rc"));
  if (!catalog_server.start().is_ok()) return 1;

  // NWS measures the links from the client machine.
  auto client_transport = network.transport("vpac27");
  nws::Monitor::Options monitor_options;
  monitor_options.bulk_bytes = 64 * 1024;
  nws::Monitor monitor(*client_transport, clock, monitor_options);
  const std::vector<std::string> hosts = {"freak", "brecca", "koume00"};
  for (std::size_t i = 0; i < servers.size(); ++i) {
    monitor.add_target(hosts[i], responders[i]->endpoint());
  }
  std::printf("Probing the grid (NWS)...\n");
  if (!monitor.probe_all().is_ok()) return 1;
  for (const char* host : {"freak", "brecca", "koume00"}) {
    auto estimate = monitor.estimate(host);
    if (estimate.is_ok()) {
      std::printf("  vpac27 -> %-8s latency %5.1f ms, bandwidth %5.2f "
                  "MB/s\n",
                  host, estimate->latency_seconds * 1000,
                  estimate->bandwidth_bytes_per_sec / 1e6);
    }
  }

  replica::CatalogClient catalog_client(*client_transport,
                                        catalog_server.endpoint());
  replica::ReplicatedFileClient::Options options;
  options.reselect_interval_bytes = 2 * 1000 * 1000;
  auto file = replica::ReplicatedFileClient::open(
      *client_transport, catalog_client, "climate/reanalysis-2003",
      monitor, options);
  if (!file.is_ok()) {
    std::fprintf(stderr, "open: %s\n", file.status().to_string().c_str());
    return 1;
  }
  std::printf("\nOpened logical file; reading from '%s'.\n",
              (*file)->current_host().c_str());

  Bytes buffer(256 * 1024);
  std::uint64_t total = 0;
  bool degraded = false;
  while (total < data.size()) {
    auto n = (*file)->read({buffer.data(), buffer.size()});
    if (!n.is_ok() || *n == 0) break;
    for (std::size_t i = 0; i < *n; ++i) {
      if (buffer[i] != data[total + i]) {
        std::fprintf(stderr, "corrupt byte at %llu!\n",
                     static_cast<unsigned long long>(total + i));
        return 1;
      }
    }
    total += *n;
    if (!degraded && total > data.size() / 2) {
      // Melbourne link congests mid-transfer; re-probe sees it.
      std::printf(
          "...half way (%llu bytes, from %s); brecca's link degrades, "
          "re-probing...\n",
          static_cast<unsigned long long>(total),
          (*file)->current_host().c_str());
      set_link("brecca", 0.4, 0.05);
      if (!monitor.probe_all().is_ok()) return 1;
      degraded = true;
    }
  }
  std::printf(
      "Read all %llu bytes intact; source switched %d time(s), ending on "
      "'%s'.\n",
      static_cast<unsigned long long>(total), (*file)->switch_count(),
      (*file)->current_host().c_str());
  std::printf(
      "(Paper §3.1: read-only replicated files may be remapped "
      "dynamically as network conditions change.)\n");
  return total == data.size() ? 0 : 1;
}
