#!/bin/sh
# Runs every benchmark binary sequentially (timing benches must not
# compete for the CPU) and prints one labelled section per binary.
set -u
BUILD=${1:-build}
for b in \
    "$BUILD/bench/bench_table2_durability" \
    "$BUILD/bench/bench_table3_sequential" \
    "$BUILD/bench/bench_table4_concurrent" \
    "$BUILD/bench/bench_table5_distributed" \
    "$BUILD/bench/bench_ablation_advisor" \
    "$BUILD/bench/bench_ablation_blocksize" ; do
  echo "===== $b"
  "$b"
  echo
done
echo "===== $BUILD/bench/bench_micro_io"
"$BUILD/bench/bench_micro_io" --benchmark_min_time=0.05
echo
echo "===== $BUILD/bench/bench_ablation_codec"
"$BUILD/bench/bench_ablation_codec" --benchmark_min_time=0.05
