// XDR-style canonical serialization (RFC 1014 in spirit): every value is
// written big-endian so peers with different byte orders interoperate.
// This codec carries all GriddLeS RPC payloads (GNS, Grid Buffer, remote
// file server, replica catalog, NWS).
#pragma once

#include <bit>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/status.h"

namespace griddles::xdr {

/// Appends canonically-encoded values to a growing byte buffer.
class Encoder {
 public:
  Encoder() = default;

  void put_u8(std::uint8_t v);
  void put_u16(std::uint16_t v);
  void put_u32(std::uint32_t v);
  void put_u64(std::uint64_t v);
  void put_i32(std::int32_t v) { put_u32(static_cast<std::uint32_t>(v)); }
  void put_i64(std::int64_t v) { put_u64(static_cast<std::uint64_t>(v)); }
  void put_f32(float v);
  void put_f64(double v);
  void put_bool(bool v) { put_u8(v ? 1 : 0); }

  /// Length-prefixed (u32) byte string.
  void put_string(std::string_view v);
  void put_bytes(ByteSpan v);

  /// Encodes a vector via a u32 count and a per-element callback.
  template <typename T, typename Fn>
  void put_vector(const std::vector<T>& items, Fn&& encode_item) {
    put_u32(static_cast<std::uint32_t>(items.size()));
    for (const T& item : items) encode_item(*this, item);
  }

  const Bytes& buffer() const noexcept { return buffer_; }
  Bytes take() && { return std::move(buffer_); }

 private:
  Bytes buffer_;
};

/// Reads canonically-encoded values; every accessor validates bounds.
class Decoder {
 public:
  explicit Decoder(ByteSpan data) : data_(data) {}

  Result<std::uint8_t> u8();
  Result<std::uint16_t> u16();
  Result<std::uint32_t> u32();
  Result<std::uint64_t> u64();
  Result<std::int32_t> i32();
  Result<std::int64_t> i64();
  Result<float> f32();
  Result<double> f64();
  Result<bool> boolean();
  Result<std::string> string();
  Result<Bytes> bytes();

  /// Decodes a u32-count-prefixed vector via a per-element callback.
  template <typename T, typename Fn>
  Result<std::vector<T>> vector(Fn&& decode_item) {
    GL_ASSIGN_OR_RETURN(const std::uint32_t count, u32());
    std::vector<T> items;
    items.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      GL_ASSIGN_OR_RETURN(T item, decode_item(*this));
      items.push_back(std::move(item));
    }
    return items;
  }

  /// Bytes not yet consumed.
  std::size_t remaining() const noexcept { return data_.size() - pos_; }
  bool done() const noexcept { return remaining() == 0; }

 private:
  Result<ByteSpan> take(std::size_t n);
  ByteSpan data_;
  std::size_t pos_ = 0;
};

/// Encodes a Status for transport (code + message).
void encode_status(Encoder& enc, const Status& status);

/// Decodes a transported Status into *out (which may itself be non-OK);
/// the returned Status reports decode failures only.
Status decode_status(Decoder& dec, Status* out);

}  // namespace griddles::xdr
