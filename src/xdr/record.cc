#include "src/xdr/record.h"

#include <algorithm>

#include "src/common/strings.h"

namespace griddles::xdr {

std::size_t field_width(FieldType type) noexcept {
  switch (type) {
    case FieldType::kChar8: return 1;
    case FieldType::kInt16: return 2;
    case FieldType::kInt32: return 4;
    case FieldType::kInt64: return 8;
    case FieldType::kFloat32: return 4;
    case FieldType::kFloat64: return 8;
  }
  return 1;
}

std::string_view field_type_name(FieldType type) noexcept {
  switch (type) {
    case FieldType::kChar8: return "c8";
    case FieldType::kInt16: return "i16";
    case FieldType::kInt32: return "i32";
    case FieldType::kInt64: return "i64";
    case FieldType::kFloat32: return "f32";
    case FieldType::kFloat64: return "f64";
  }
  return "c8";
}

RecordSchema::RecordSchema(std::vector<Field> fields)
    : fields_(std::move(fields)) {
  for (const Field& f : fields_) record_size_ += f.byte_size();
}

Result<RecordSchema> RecordSchema::parse(std::string_view text) {
  std::vector<Field> fields;
  for (const std::string& token_raw : strings::split(text, ',')) {
    const std::string_view token = strings::trim(token_raw);
    if (token.empty()) {
      return invalid_argument("record schema: empty field token");
    }
    std::string_view type_text = token;
    std::size_t count = 1;
    const std::size_t bracket = token.find('[');
    if (bracket != std::string_view::npos) {
      if (token.back() != ']') {
        return invalid_argument(
            strings::cat("record schema: malformed array '", token, "'"));
      }
      type_text = strings::trim(token.substr(0, bracket));
      const auto parsed = strings::parse_int(
          token.substr(bracket + 1, token.size() - bracket - 2));
      if (!parsed || *parsed <= 0) {
        return invalid_argument(
            strings::cat("record schema: bad array length in '", token, "'"));
      }
      count = static_cast<std::size_t>(*parsed);
    }
    FieldType type;
    if (type_text == "c8") {
      type = FieldType::kChar8;
    } else if (type_text == "i16") {
      type = FieldType::kInt16;
    } else if (type_text == "i32") {
      type = FieldType::kInt32;
    } else if (type_text == "i64") {
      type = FieldType::kInt64;
    } else if (type_text == "f32") {
      type = FieldType::kFloat32;
    } else if (type_text == "f64") {
      type = FieldType::kFloat64;
    } else {
      return invalid_argument(
          strings::cat("record schema: unknown type '", type_text, "'"));
    }
    fields.push_back(Field{type, count});
  }
  if (fields.empty()) {
    return invalid_argument("record schema: no fields");
  }
  return RecordSchema(std::move(fields));
}

std::string RecordSchema::to_string() const {
  std::string out;
  for (const Field& f : fields_) {
    if (!out.empty()) out += ", ";
    out += field_type_name(f.type);
    if (f.count != 1) {
      out += strings::cat("[", f.count, "]");
    }
  }
  return out;
}

Status RecordSchema::swap_records(MutableByteSpan data) const {
  if (record_size_ == 0) {
    return failed_precondition("record schema is empty");
  }
  if (data.size() % record_size_ != 0) {
    return invalid_argument(strings::cat(
        "buffer of ", data.size(), " bytes is not a whole number of ",
        record_size_, "-byte records"));
  }
  for (std::size_t record = 0; record < data.size(); record += record_size_) {
    std::size_t offset = record;
    for (const Field& f : fields_) {
      const std::size_t width = field_width(f.type);
      if (width == 1) {
        offset += f.byte_size();
        continue;
      }
      for (std::size_t i = 0; i < f.count; ++i) {
        std::reverse(data.begin() + offset, data.begin() + offset + width);
        offset += width;
      }
    }
  }
  return Status::ok();
}

}  // namespace griddles::xdr
