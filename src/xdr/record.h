// Record schemas for legacy binary files (paper §3.3, "Handling
// Heterogeneity").
//
// Legacy Fortran/C codes write fixed-layout binary records. When the two
// endpoints of a GriddLeS channel have different byte orders, the File
// Multiplexer reorders the bytes of each field in flight, guided by a
// schema such as "f64[3], i32, c8[16]". A schema can be attached to a GNS
// mapping so reordering happens transparently to the application.
#pragma once

#include <bit>
#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/status.h"

namespace griddles::xdr {

enum class FieldType : std::uint8_t {
  kChar8,    // opaque bytes, never reordered
  kInt16,
  kInt32,
  kInt64,
  kFloat32,
  kFloat64,
};

/// Width of one element of the field type, in bytes.
std::size_t field_width(FieldType type) noexcept;

/// Short name ("f64", "i32", "c8").
std::string_view field_type_name(FieldType type) noexcept;

struct Field {
  FieldType type;
  std::size_t count = 1;  // array length; 1 for scalars

  std::size_t byte_size() const noexcept { return field_width(type) * count; }
  friend bool operator==(const Field&, const Field&) = default;
};

/// The fixed layout of one record.
class RecordSchema {
 public:
  RecordSchema() = default;
  explicit RecordSchema(std::vector<Field> fields);

  /// Parses "f64[3], i32, c8[16]" (whitespace optional).
  static Result<RecordSchema> parse(std::string_view text);

  /// Inverse of parse().
  std::string to_string() const;

  const std::vector<Field>& fields() const noexcept { return fields_; }
  std::size_t record_size() const noexcept { return record_size_; }

  /// Byte-swaps every multi-byte field of every record in `data`, in
  /// place. `data` must be a whole number of records. Swapping is an
  /// involution: applying it twice restores the input.
  Status swap_records(MutableByteSpan data) const;

  /// Reorders from one endianness to another (no-op when equal).
  Status reorder(MutableByteSpan data, std::endian from,
                 std::endian to) const {
    if (from == to) return Status::ok();
    return swap_records(data);
  }

  friend bool operator==(const RecordSchema&, const RecordSchema&) = default;

 private:
  std::vector<Field> fields_;
  std::size_t record_size_ = 0;
};

}  // namespace griddles::xdr
