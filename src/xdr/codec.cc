#include "src/xdr/codec.h"

#include <cstring>

namespace griddles::xdr {

namespace {
template <typename T>
void append_be(Bytes& buffer, T value) {
  static_assert(std::is_unsigned_v<T>);
  for (int shift = static_cast<int>(sizeof(T)) * 8 - 8; shift >= 0;
       shift -= 8) {
    buffer.push_back(static_cast<std::byte>((value >> shift) & 0xFF));
  }
}

template <typename T>
T read_be(ByteSpan bytes) {
  T value = 0;
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    value = static_cast<T>((value << 8) | static_cast<T>(bytes[i]));
  }
  return value;
}
}  // namespace

void Encoder::put_u8(std::uint8_t v) {
  buffer_.push_back(static_cast<std::byte>(v));
}
void Encoder::put_u16(std::uint16_t v) { append_be(buffer_, v); }
void Encoder::put_u32(std::uint32_t v) { append_be(buffer_, v); }
void Encoder::put_u64(std::uint64_t v) { append_be(buffer_, v); }

void Encoder::put_f32(float v) {
  std::uint32_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  put_u32(bits);
}

void Encoder::put_f64(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(bits);
}

void Encoder::put_string(std::string_view v) {
  put_u32(static_cast<std::uint32_t>(v.size()));
  const auto* data = reinterpret_cast<const std::byte*>(v.data());
  buffer_.insert(buffer_.end(), data, data + v.size());
}

void Encoder::put_bytes(ByteSpan v) {
  put_u32(static_cast<std::uint32_t>(v.size()));
  buffer_.insert(buffer_.end(), v.begin(), v.end());
}

Result<ByteSpan> Decoder::take(std::size_t n) {
  if (remaining() < n) {
    return out_of_range("xdr decode past end of buffer");
  }
  ByteSpan out = data_.subspan(pos_, n);
  pos_ += n;
  return out;
}

Result<std::uint8_t> Decoder::u8() {
  GL_ASSIGN_OR_RETURN(ByteSpan b, take(1));
  return static_cast<std::uint8_t>(b[0]);
}

Result<std::uint16_t> Decoder::u16() {
  GL_ASSIGN_OR_RETURN(ByteSpan b, take(2));
  return read_be<std::uint16_t>(b);
}

Result<std::uint32_t> Decoder::u32() {
  GL_ASSIGN_OR_RETURN(ByteSpan b, take(4));
  return read_be<std::uint32_t>(b);
}

Result<std::uint64_t> Decoder::u64() {
  GL_ASSIGN_OR_RETURN(ByteSpan b, take(8));
  return read_be<std::uint64_t>(b);
}

Result<std::int32_t> Decoder::i32() {
  GL_ASSIGN_OR_RETURN(const std::uint32_t v, u32());
  return static_cast<std::int32_t>(v);
}

Result<std::int64_t> Decoder::i64() {
  GL_ASSIGN_OR_RETURN(const std::uint64_t v, u64());
  return static_cast<std::int64_t>(v);
}

Result<float> Decoder::f32() {
  GL_ASSIGN_OR_RETURN(const std::uint32_t bits, u32());
  float v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

Result<double> Decoder::f64() {
  GL_ASSIGN_OR_RETURN(const std::uint64_t bits, u64());
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

Result<bool> Decoder::boolean() {
  GL_ASSIGN_OR_RETURN(const std::uint8_t v, u8());
  return v != 0;
}

Result<std::string> Decoder::string() {
  GL_ASSIGN_OR_RETURN(const std::uint32_t size, u32());
  GL_ASSIGN_OR_RETURN(ByteSpan b, take(size));
  return to_string(b);
}

Result<Bytes> Decoder::bytes() {
  GL_ASSIGN_OR_RETURN(const std::uint32_t size, u32());
  GL_ASSIGN_OR_RETURN(ByteSpan b, take(size));
  return Bytes(b.begin(), b.end());
}

void encode_status(Encoder& enc, const Status& status) {
  enc.put_u32(static_cast<std::uint32_t>(status.code()));
  enc.put_string(status.message());
}

Status decode_status(Decoder& dec, Status* out) {
  GL_ASSIGN_OR_RETURN(const std::uint32_t code, dec.u32());
  GL_ASSIGN_OR_RETURN(std::string message, dec.string());
  if (code == 0) {
    *out = Status::ok();
    return Status::ok();
  }
  if (code > static_cast<std::uint32_t>(ErrorCode::kDeadlineExceeded)) {
    return invalid_argument("unknown status code on the wire");
  }
  *out = Status(static_cast<ErrorCode>(code), std::move(message));
  return Status::ok();
}

}  // namespace griddles::xdr
