#include "src/net/endpoint.h"

#include "src/common/strings.h"

namespace griddles::net {

Result<Endpoint> Endpoint::parse(std::string_view text) {
  const std::size_t scheme_end = text.find("://");
  if (scheme_end == std::string_view::npos || scheme_end == 0) {
    return invalid_argument(
        strings::cat("endpoint '", text, "': missing scheme://"));
  }
  Endpoint ep;
  ep.scheme = std::string(text.substr(0, scheme_end));
  std::string_view rest = text.substr(scheme_end + 3);
  if (ep.scheme == "tcp") {
    const std::size_t colon = rest.rfind(':');
    if (colon == std::string_view::npos) {
      return invalid_argument(
          strings::cat("tcp endpoint '", text, "': missing :port"));
    }
    ep.host = std::string(rest.substr(0, colon));
    ep.service = std::string(rest.substr(colon + 1));
  } else {
    const std::size_t slash = rest.find('/');
    if (slash == std::string_view::npos) {
      return invalid_argument(
          strings::cat("endpoint '", text, "': expected host/service"));
    }
    ep.host = std::string(rest.substr(0, slash));
    ep.service = std::string(rest.substr(slash + 1));
  }
  if (ep.host.empty() || ep.service.empty()) {
    return invalid_argument(
        strings::cat("endpoint '", text, "': empty host or service"));
  }
  if (ep.is_tcp()) {
    GL_RETURN_IF_ERROR(ep.port().status());
  }
  return ep;
}

std::string Endpoint::to_string() const {
  if (is_tcp()) return strings::cat(scheme, "://", host, ":", service);
  return strings::cat(scheme, "://", host, "/", service);
}

Result<int> Endpoint::port() const {
  const auto p = strings::parse_int(service);
  if (!p || *p < 0 || *p > 65535) {
    return invalid_argument(
        strings::cat("endpoint ", to_string(), ": bad port"));
  }
  return static_cast<int>(*p);
}

Endpoint inproc_endpoint(std::string host, std::string service) {
  return Endpoint{"inproc", std::move(host), std::move(service)};
}

Endpoint tcp_endpoint(std::string host, int port) {
  return Endpoint{"tcp", std::move(host), std::to_string(port)};
}

}  // namespace griddles::net
