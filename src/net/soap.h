// SOAP-style XML envelope codec.
//
// The paper implemented the Grid Buffer service over Web Services/SOAP to
// leverage that ecosystem and traverse firewalls (§4). We reproduce the
// *cost structure* of that decision: frames can optionally be wrapped in
// an XML envelope with a base64 body. The codec ablation bench
// (bench_ablation_codec) quantifies the envelope's throughput/latency tax
// against raw binary framing.
#pragma once

#include <cstdint>
#include <string>

#include "src/common/bytes.h"
#include "src/common/status.h"

namespace griddles::net {

/// RPC frame kinds shared by the binary and SOAP codecs.
enum class FrameKind : std::uint8_t { kRequest = 0, kResponse = 1 };

/// The canonical RPC frame, independent of wire format.
struct RpcFrame {
  FrameKind kind = FrameKind::kRequest;
  std::uint64_t id = 0;
  std::uint16_t method = 0;
  // Causal-trace propagation metadata (obs::TraceContext of the caller's
  // active span; both 0 when the caller is untraced). The server installs
  // this as the handler thread's context, so server-side spans parent to
  // the remote caller across the hop.
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  // Remaining end-to-end budget in microseconds at send time (0 = no
  // deadline). The server re-anchors it against its own clock, so each
  // hop's queueing and service time shrinks the budget for the next.
  std::uint64_t deadline_us = 0;
  Status status;  // meaningful on responses only
  Bytes payload;
};

std::string base64_encode(ByteSpan data);
Result<Bytes> base64_decode(std::string_view text);

/// Serializes a frame as a SOAP-style XML envelope.
Bytes soap_encode(const RpcFrame& frame);

/// Parses an envelope produced by soap_encode (tolerates whitespace).
Result<RpcFrame> soap_decode(ByteSpan data);

}  // namespace griddles::net
