// Endpoint naming: "scheme://host/service".
//
//   inproc://dione/gns          — in-process network, host "dione"
//   tcp://127.0.0.1:9310        — real loopback TCP (service is the port)
//
// The in-process network models the paper's testbed: hosts are the Table 1
// machine names, and host pairs carry a LinkModel (latency/bandwidth).
#pragma once

#include <string>
#include <string_view>

#include "src/common/status.h"

namespace griddles::net {

struct Endpoint {
  std::string scheme;   // "inproc" or "tcp"
  std::string host;     // machine name, or IP for tcp
  std::string service;  // service name, or decimal port for tcp

  /// Parses "scheme://host/service" or "tcp://host:port".
  static Result<Endpoint> parse(std::string_view text);

  std::string to_string() const;

  bool is_tcp() const noexcept { return scheme == "tcp"; }
  bool is_inproc() const noexcept { return scheme == "inproc"; }

  /// TCP port, when is_tcp().
  Result<int> port() const;

  friend bool operator==(const Endpoint&, const Endpoint&) = default;
  friend bool operator<(const Endpoint& a, const Endpoint& b) {
    return a.to_string() < b.to_string();
  }
};

/// Convenience constructors.
Endpoint inproc_endpoint(std::string host, std::string service);
Endpoint tcp_endpoint(std::string host, int port);

}  // namespace griddles::net
