#include "src/net/link_model.h"

namespace griddles::net {

void LinkTable::set_default(LinkModel model) {
  MutexLock lock(mu_);
  default_model_ = model;
  ++version_;
}

void LinkTable::set_link(const std::string& a, const std::string& b,
                         LinkModel model) {
  MutexLock lock(mu_);
  links_[{a, b}] = model;
  links_[{b, a}] = model;
  ++version_;
}

std::uint64_t LinkTable::version() const {
  MutexLock lock(mu_);
  return version_;
}

LinkModel LinkTable::lookup(const std::string& src,
                            const std::string& dst) const {
  MutexLock lock(mu_);
  if (src == dst) return LinkModel::unlimited();  // loopback
  const auto it = links_.find({src, dst});
  return it == links_.end() ? default_model_ : it->second;
}

}  // namespace griddles::net
