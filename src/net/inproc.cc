#include "src/net/inproc.h"

#include <deque>
#include <thread>

#include "src/common/queue.h"
#include "src/common/thread_annotations.h"

#include "src/common/logging.h"
#include "src/common/strings.h"

namespace griddles::net {
namespace internal {

namespace {
std::string listener_key(const Endpoint& ep) {
  return strings::cat(ep.host, "/", ep.service);
}
}  // namespace

/// One direction of an in-process connection: a bounded FIFO whose
/// messages carry a modelled arrival time computed by the sender's
/// LinkShaper.
class InProcChannel {
 public:
  InProcChannel(Clock& clock, std::shared_ptr<LinkShaper> shaper,
                std::size_t capacity)
      : clock_(clock), shaper_(std::move(shaper)), capacity_(capacity) {}

  Status send(ByteSpan message) {
    const Duration arrival =
        shaper_->arrival_time(clock_.now(), message.size());
    MutexLock lock(mu_);
    // lint: blocking-ok (monitor wait: releases mu_ until space or close)
    not_full_.wait(mu_, [&]() REQUIRES(mu_) {
      return closed_ || queue_.size() < capacity_;
    });
    if (closed_) return closed_error("inproc channel closed");
    queue_.push_back(Msg{arrival, Bytes(message.begin(), message.end())});
    lock.unlock();
    not_empty_.notify_one();
    return Status::ok();
  }

  Result<Bytes> recv(const WallClock::time_point* deadline) {
    MutexLock lock(mu_);
    while (true) {
      if (deadline == nullptr) {
        // lint: blocking-ok (monitor wait: releases mu_ until msg or close)
        not_empty_.wait(mu_, [&]() REQUIRES(mu_) {
          return closed_ || !queue_.empty();
        });
        // lint: blocking-ok (monitor wait, deadline-bounded: releases mu_)
      } else if (!not_empty_.wait_until(mu_, *deadline, [&]() REQUIRES(mu_) {
                   return closed_ || !queue_.empty();
                 })) {
        return timeout_error("inproc recv timed out");
      }
      if (queue_.empty()) return closed_error("inproc channel closed");
      const Duration arrival = queue_.front().arrival;
      const Duration now = clock_.now();
      if (now >= arrival) {
        Bytes data = std::move(queue_.front().data);
        queue_.pop_front();
        lock.unlock();
        not_full_.notify_one();
        return data;
      }
      // The head message is still "in flight" under the link model: wait
      // out the remaining model time, bounded by the caller's deadline.
      const Duration wait = arrival - now;
      const WallClock::time_point wall_arrival = clock_.wall_deadline(wait);
      if (deadline != nullptr && *deadline < wall_arrival) {
        lock.unlock();
        std::this_thread::sleep_until(*deadline);
        return timeout_error("inproc recv timed out in flight");
      }
      lock.unlock();
      std::this_thread::sleep_until(wall_arrival);
      lock.lock();
    }
  }

  void close() {
    {
      MutexLock lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

 private:
  struct Msg {
    Duration arrival;
    Bytes data;
  };

  Clock& clock_;
  std::shared_ptr<LinkShaper> shaper_;
  const std::size_t capacity_;
  Mutex mu_;
  CondVar not_empty_;
  CondVar not_full_;
  std::deque<Msg> queue_ GUARDED_BY(mu_);
  bool closed_ GUARDED_BY(mu_) = false;
};

/// A connection endpoint: sends into one channel, receives from another.
class InProcConnection final : public Connection {
 public:
  InProcConnection(std::shared_ptr<InProcChannel> tx,
                   std::shared_ptr<InProcChannel> rx, std::string peer)
      : tx_(std::move(tx)), rx_(std::move(rx)), peer_(std::move(peer)) {}

  ~InProcConnection() override { close(); }

  Status send(ByteSpan message) override { return tx_->send(message); }
  Result<Bytes> recv() override { return rx_->recv(nullptr); }
  Result<Bytes> recv_until(WallClock::time_point deadline) override {
    return rx_->recv(&deadline);
  }

  void close() override {
    tx_->close();
    rx_->close();
  }

  std::string peer() const override { return peer_; }

 private:
  std::shared_ptr<InProcChannel> tx_;
  std::shared_ptr<InProcChannel> rx_;
  std::string peer_;
};

class InProcListenerState {
 public:
  InProcListenerState(InProcNetwork& network, Endpoint endpoint)
      : network_(network),
        endpoint_(std::move(endpoint)),
        pending_(/*capacity=*/64) {}

  InProcNetwork& network_;
  Endpoint endpoint_;
  BoundedQueue<std::unique_ptr<Connection>> pending_;
};

class InProcListener final : public Listener {
 public:
  explicit InProcListener(std::shared_ptr<InProcListenerState> state)
      : state_(std::move(state)) {}

  ~InProcListener() override { close(); }

  Result<std::unique_ptr<Connection>> accept() override {
    auto conn = state_->pending_.pop();
    if (!conn) return closed_error("inproc listener closed");
    return std::move(*conn);
  }

  Endpoint bound_endpoint() const override { return state_->endpoint_; }

  void close() override {
    state_->pending_.close();
    state_->network_.unregister_listener(listener_key(state_->endpoint_));
  }

 private:
  std::shared_ptr<InProcListenerState> state_;
};

}  // namespace internal

InProcNetwork::InProcNetwork(Clock& clock) : clock_(clock) {}
InProcNetwork::~InProcNetwork() = default;

std::unique_ptr<Transport> InProcNetwork::transport(std::string host) {
  return std::make_unique<InProcTransport>(*this, std::move(host));
}

void InProcNetwork::set_channel_capacity(std::size_t messages) {
  MutexLock lock(mu_);
  channel_capacity_ = messages;
}

Result<std::shared_ptr<internal::InProcListenerState>>
InProcNetwork::register_listener(const Endpoint& endpoint) {
  const std::string key = internal::listener_key(endpoint);
  MutexLock lock(mu_);
  const auto it = listeners_.find(key);
  if (it != listeners_.end() && !it->second.expired()) {
    return already_exists(
        strings::cat("inproc service already bound: ", endpoint.to_string()));
  }
  auto state = std::make_shared<internal::InProcListenerState>(*this,
                                                               endpoint);
  listeners_[key] = state;
  return state;
}

void InProcNetwork::unregister_listener(const std::string& key) {
  MutexLock lock(mu_);
  const auto it = listeners_.find(key);
  if (it != listeners_.end() && it->second.expired()) listeners_.erase(it);
  // A live entry is left in place: close() may race with a fresh bind to
  // the same name, which register_listener already arbitrates.
}

std::shared_ptr<LinkShaper> InProcNetwork::shaper_for(
    const std::string& src, const std::string& dst) {
  MutexLock lock(mu_);
  auto& slot = shapers_[{src, dst}];
  if (!slot) {
    slot = std::make_shared<LinkShaper>(links_, src, dst);
  }
  return slot;
}

Result<std::shared_ptr<internal::InProcListenerState>>
InProcNetwork::find_listener(const Endpoint& endpoint) {
  const std::string key = internal::listener_key(endpoint);
  MutexLock lock(mu_);
  const auto it = listeners_.find(key);
  if (it == listeners_.end()) {
    return unavailable(
        strings::cat("no inproc service at ", endpoint.to_string()));
  }
  auto state = it->second.lock();
  if (!state) {
    return unavailable(
        strings::cat("inproc service at ", endpoint.to_string(), " is gone"));
  }
  return state;
}

Result<std::unique_ptr<Connection>> InProcTransport::connect(
    const Endpoint& remote) {
  if (!remote.is_inproc()) {
    return invalid_argument(strings::cat("inproc transport cannot reach ",
                                         remote.to_string()));
  }
  GL_ASSIGN_OR_RETURN(auto listener, network_.find_listener(remote));

  std::size_t capacity;
  {
    MutexLock lock(network_.mu_);
    capacity = network_.channel_capacity_;
  }
  auto client_to_server = std::make_shared<internal::InProcChannel>(
      network_.clock(), network_.shaper_for(host_, remote.host), capacity);
  auto server_to_client = std::make_shared<internal::InProcChannel>(
      network_.clock(), network_.shaper_for(remote.host, host_), capacity);

  auto server_side = std::make_unique<internal::InProcConnection>(
      server_to_client, client_to_server,
      strings::cat("inproc://", host_, "/<client>"));
  auto client_side = std::make_unique<internal::InProcConnection>(
      client_to_server, server_to_client, remote.to_string());

  if (!listener->pending_.push(std::move(server_side))) {
    return unavailable(
        strings::cat("inproc service at ", remote.to_string(), " closed"));
  }
  GL_LOG(kDebug, "inproc connect ", host_, " -> ", remote.to_string());
  return std::unique_ptr<Connection>(std::move(client_side));
}

Result<std::unique_ptr<Listener>> InProcTransport::listen(
    const Endpoint& local) {
  if (!local.is_inproc()) {
    return invalid_argument(
        strings::cat("inproc transport cannot bind ", local.to_string()));
  }
  GL_ASSIGN_OR_RETURN(auto state, network_.register_listener(local));
  return std::unique_ptr<Listener>(
      std::make_unique<internal::InProcListener>(std::move(state)));
}

}  // namespace griddles::net
