// Minimal request/response RPC over any Transport.
//
// Frames are either raw binary (default) or SOAP/XML envelopes
// (WireFormat::kSoap) — the services are oblivious to the choice.
// A server runs one thread per connection; handlers may block (the Grid
// Buffer's read-blocks-until-written semantics depend on this).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/status.h"
#include "src/common/thread_annotations.h"
#include "src/net/admission.h"
#include "src/net/soap.h"
#include "src/net/transport.h"

namespace griddles::net {

enum class WireFormat { kBinary, kSoap };

/// Per-call server-side context.
struct RpcContext {
  std::string peer;
};

/// A handler consumes the request payload and produces a response payload
/// (or an error Status, which travels back to the caller).
using RpcHandler = std::function<Result<Bytes>(ByteSpan, const RpcContext&)>;

class RpcServer {
 public:
  /// Does not start serving until start().
  RpcServer(Transport& transport, Endpoint bind,
            WireFormat format = WireFormat::kBinary);
  ~RpcServer();

  RpcServer(const RpcServer&) = delete;
  RpcServer& operator=(const RpcServer&) = delete;

  /// Registers a handler; must happen before start(). Admitted: the
  /// request acquires `cost` units from the admission controller (and
  /// may be shed with kResourceExhausted under overload) before the
  /// handler runs.
  void register_method(std::uint16_t method, RpcHandler handler,
                       std::uint32_t cost = 1);

  /// Registers a handler that bypasses admission control. Reserved for
  /// handlers that block server-side for application reasons (Grid
  /// Buffer read-blocks-until-written) and would starve the admission
  /// queue if they held capacity; tools/lint.py flags every call site
  /// without a `// lint: no-admission (<why>)` excuse.
  void register_method_unadmitted(std::uint16_t method, RpcHandler handler);

  /// Replaces the default admission configuration; before start().
  void set_admission(AdmissionController::Options options);

  /// The server's admission controller (introspection for tests).
  AdmissionController* admission();

  /// Binds and spawns the accept loop.
  Status start();

  /// The endpoint clients should dial (resolves ephemeral TCP ports).
  Endpoint endpoint() const;

  /// Stops accepting, closes live connections, joins all threads.
  void stop();

  /// Number of currently connected clients (for tests).
  std::size_t live_connections() const;

 private:
  struct Method {
    RpcHandler handler;
    std::uint32_t cost = 1;
    bool admitted = true;
  };

  void accept_loop();
  void serve_connection(std::shared_ptr<Connection> conn);

  Transport& transport_;
  Endpoint bind_;
  WireFormat format_;

  mutable Mutex mu_;
  std::map<std::uint16_t, Method> handlers_ GUARDED_BY(mu_);
  AdmissionController::Options admission_options_ GUARDED_BY(mu_);
  std::unique_ptr<AdmissionController> admission_ GUARDED_BY(mu_);
  std::unique_ptr<Listener> listener_ GUARDED_BY(mu_);
  std::thread accept_thread_ GUARDED_BY(mu_);
  std::vector<std::thread> workers_ GUARDED_BY(mu_);
  std::vector<std::weak_ptr<Connection>> connections_ GUARDED_BY(mu_);
  bool started_ GUARDED_BY(mu_) = false;
  std::atomic<bool> stopping_{false};
};

/// Synchronous RPC client. One outstanding call at a time per client;
/// create several clients for concurrency. Reconnects once on a broken
/// connection.
class RpcClient {
 public:
  RpcClient(Transport& transport, Endpoint server,
            WireFormat format = WireFormat::kBinary);
  ~RpcClient();

  RpcClient(const RpcClient&) = delete;
  RpcClient& operator=(const RpcClient&) = delete;

  /// Calls `method`; the returned bytes are the handler's response
  /// payload. Handler errors come back as their original Status.
  Result<Bytes> call(std::uint16_t method, ByteSpan request);

  /// As call(), failing with kTimeout at the wall deadline.
  Result<Bytes> call_until(std::uint16_t method, ByteSpan request,
                           WallClock::time_point deadline);

  const Endpoint& server() const noexcept { return server_; }

  /// Drops the cached connection (next call reconnects).
  void reset_connection();

 private:
  Result<Bytes> call_impl(std::uint16_t method, ByteSpan request,
                          const WallClock::time_point* deadline);
  Result<Bytes> call_once(std::uint16_t method, ByteSpan request,
                          const WallClock::time_point* deadline) REQUIRES(mu_);
  Status ensure_connected() REQUIRES(mu_);

  Transport& transport_;
  Endpoint server_;
  WireFormat format_;
  std::string fault_key_;  // "src>dst" host pair for fault-plan consults
  // call_impl() consults the armed fault plan and bumps retry metrics
  // under the client lock (backoff sleeps release it).
  Mutex mu_ ACQUIRED_BEFORE("Plan::mu_", "MetricsRegistry::mu_");
  std::unique_ptr<Connection> conn_ GUARDED_BY(mu_);
  std::uint64_t next_id_ GUARDED_BY(mu_) = 1;
};

/// Encodes/decodes RPC frames for the given wire format (exposed for the
/// codec ablation bench and fuzz-style tests).
Bytes encode_frame(const RpcFrame& frame, WireFormat format);
Result<RpcFrame> decode_frame(ByteSpan data, WireFormat format);

}  // namespace griddles::net
