// Link models: the latency/bandwidth behaviour of a (src, dst) host pair.
//
// The in-process transport delays message delivery according to the link
// model, turning a laptop into a scaled replica of the paper's
// AU/US/UK/JP testbed. A LinkShaper serializes messages over the link
// (back-to-back messages queue behind one another) and adds propagation
// latency, which is exactly the behaviour that makes small-block Grid
// Buffer streams latency-sensitive while bulk file copies are not
// (paper §5.3).
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "src/common/clock.h"
#include "src/common/thread_annotations.h"
#include "src/fault/plan.h"
#include "src/obs/metrics.h"

namespace griddles::net {

struct LinkModel {
  Duration latency = Duration::zero();      // one-way propagation delay
  double bandwidth_bytes_per_sec = 0;       // 0 = infinite
  Duration per_message_overhead = Duration::zero();  // protocol cost

  static LinkModel unlimited() { return {}; }

  /// Time for `bytes` to serialize onto the wire (excludes latency).
  Duration transmit_time(std::size_t bytes) const {
    if (bandwidth_bytes_per_sec <= 0) return per_message_overhead;
    return per_message_overhead +
           from_seconds_d(static_cast<double>(bytes) /
                          bandwidth_bytes_per_sec);
  }
};

/// Symmetric table of link models keyed by (src host, dst host); falls
/// back to a default (unlimited) model for unknown pairs. Thread-safe.
class LinkTable {
 public:
  LinkTable() = default;

  void set_default(LinkModel model);
  /// Installs the model in both directions.
  void set_link(const std::string& a, const std::string& b, LinkModel model);

  LinkModel lookup(const std::string& src, const std::string& dst) const;

  /// Bumped by every mutation; lets cached shapers detect weather
  /// changes (e.g. an NWS-visible degradation installed mid-run).
  std::uint64_t version() const;

 private:
  mutable Mutex mu_;
  LinkModel default_model_ GUARDED_BY(mu_){};
  std::map<std::pair<std::string, std::string>, LinkModel> links_
      GUARDED_BY(mu_);
  std::uint64_t version_ GUARDED_BY(mu_) = 0;
};

/// Computes per-message delivery times over one shared serial link:
/// every connection between a host pair prices its messages through the
/// same shaper, so N parallel streams divide the link instead of
/// multiplying it. A table-backed shaper re-reads its model whenever the
/// table changes, so link "weather" updates apply to live connections.
class LinkShaper {
 public:
  explicit LinkShaper(LinkModel model) : model_(model) {}

  LinkShaper(const LinkTable& table, std::string src, std::string dst)
      : model_(table.lookup(src, dst)), table_(&table),
        src_(std::move(src)), dst_(std::move(dst)),
        fault_key_(src_ + ">" + dst_), seen_version_(table.version()) {}

  /// Returns the model time at which a message of `bytes` sent at
  /// `send_time` arrives, accounting for messages already in flight.
  Duration arrival_time(Duration send_time, std::size_t bytes) {
    MutexLock lock(mu_);
    if (table_ != nullptr) {
      const std::uint64_t version = table_->version();
      if (version != seen_version_) {
        model_ = table_->lookup(src_, dst_);
        seen_version_ = version;
      }
    }
    const Duration depart = std::max(send_time, link_free_at_);
    const Duration transmit = model_.transmit_time(bytes);
    link_free_at_ = depart + transmit;
    Duration arrival = link_free_at_ + model_.latency;
    // Injected link weather: delay@link adds propagation time without
    // occupying the link (loss is modelled as drop@rpc instead, since a
    // reliable transport cannot un-deliver a message).
    if (fault::Plan* plan = fault::armed();
        plan != nullptr && !fault_key_.empty()) {
      const fault::Decision verdict =
          plan->consult(fault::Site::kLink, fault_key_, bytes);
      if (verdict.action == fault::Decision::Action::kDelay) {
        arrival += verdict.delay;
      }
    }
    // Modelled delivery delay (queueing + transmit + propagation).
    auto& registry = obs::MetricsRegistry::global();
    static obs::Histogram& delay_s = registry.histogram(
        "net.link.delay_s", obs::exponential_bounds(1e-4, 10.0, 7));
    static obs::Counter& link_bytes = registry.counter("net.link.bytes");
    delay_s.observe(to_seconds_d(arrival - send_time));
    link_bytes.add(bytes);
    return arrival;
  }

  LinkModel model() const {
    MutexLock lock(mu_);
    return model_;
  }

 private:
  // arrival_time() refreshes from the table, consults the fault plan and
  // records metrics, all without dropping the shaper lock.
  mutable Mutex mu_ ACQUIRED_BEFORE("LinkTable::mu_", "Plan::mu_",
                                    "MetricsRegistry::mu_");
  LinkModel model_ GUARDED_BY(mu_);
  const LinkTable* table_ = nullptr;
  std::string src_;
  std::string dst_;
  std::string fault_key_;  // "src>dst"; empty for table-less shapers
  std::uint64_t seen_version_ GUARDED_BY(mu_) = 0;
  Duration link_free_at_ GUARDED_BY(mu_){0};
};

}  // namespace griddles::net
