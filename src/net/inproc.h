// In-process network: a modelled multi-host network inside one process.
//
// An InProcNetwork owns a registry of listening services and a LinkTable.
// Each InProcTransport is bound to a *host identity* (one of the testbed
// machine names); messages between two hosts are delayed according to the
// link model for that pair, using the network's Clock. Under a
// ScaledClock this replays WAN behaviour at laptop speed; under a
// RealClock with unlimited links it is just a fast intra-process channel.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "src/common/clock.h"
#include "src/common/thread_annotations.h"
#include "src/net/link_model.h"
#include "src/net/transport.h"

namespace griddles::net {

namespace internal {
class InProcListenerState;
class InProcListener;
}  // namespace internal

class InProcNetwork {
 public:
  /// `clock` must outlive the network and every transport created on it.
  explicit InProcNetwork(Clock& clock);
  ~InProcNetwork();

  InProcNetwork(const InProcNetwork&) = delete;
  InProcNetwork& operator=(const InProcNetwork&) = delete;

  Clock& clock() noexcept { return clock_; }
  LinkTable& links() noexcept { return links_; }

  /// Creates a transport that originates traffic from `host`.
  std::unique_ptr<Transport> transport(std::string host);

  /// Messages queued per connection direction before send() blocks.
  void set_channel_capacity(std::size_t messages);

 private:
  friend class InProcTransport;
  friend class internal::InProcListener;

  Result<std::shared_ptr<internal::InProcListenerState>> register_listener(
      const Endpoint& endpoint);
  void unregister_listener(const std::string& key);
  Result<std::shared_ptr<internal::InProcListenerState>> find_listener(
      const Endpoint& endpoint);

  /// The shaper for a directed host pair. Shared by every connection
  /// between the two hosts, so N parallel streams divide one link's
  /// bandwidth instead of multiplying it.
  std::shared_ptr<LinkShaper> shaper_for(const std::string& src,
                                         const std::string& dst);

  Clock& clock_;
  LinkTable links_;
  Mutex mu_;
  std::map<std::string, std::weak_ptr<internal::InProcListenerState>>
      listeners_ GUARDED_BY(mu_);
  std::map<std::pair<std::string, std::string>,
           std::shared_ptr<LinkShaper>>
      shapers_ GUARDED_BY(mu_);
  std::size_t channel_capacity_ GUARDED_BY(mu_) = 256;
};

/// Transport bound to one host identity on an InProcNetwork.
class InProcTransport final : public Transport {
 public:
  InProcTransport(InProcNetwork& network, std::string host)
      : network_(network), host_(std::move(host)) {}

  Result<std::unique_ptr<Connection>> connect(const Endpoint& remote) override;
  Result<std::unique_ptr<Listener>> listen(const Endpoint& local) override;
  const std::string& local_host() const override { return host_; }

 private:
  InProcNetwork& network_;
  std::string host_;
};

}  // namespace griddles::net
