#include "src/net/tcp.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>

#include "src/common/strings.h"
#include "src/common/thread_annotations.h"

namespace griddles::net {
namespace {

Status errno_status(const char* what) {
  return io_error(strings::cat(what, ": ", strings::errno_message(errno)));
}

/// RAII file descriptor.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  Fd(Fd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  ~Fd() { reset(); }

  int get() const noexcept { return fd_; }
  bool valid() const noexcept { return fd_ >= 0; }

  void reset() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

 private:
  int fd_ = -1;
};

Status send_all(int fd, const std::byte* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return errno_status("send");
    }
    sent += static_cast<std::size_t>(n);
  }
  return Status::ok();
}

/// Receives exactly `size` bytes; kClosed on orderly EOF at a frame edge.
Status recv_all(int fd, std::byte* data, std::size_t size, bool* eof_at_start,
                const WallClock::time_point* deadline) {
  std::size_t got = 0;
  while (got < size) {
    if (deadline != nullptr) {
      const auto now = WallClock::now();
      if (now >= *deadline) return timeout_error("tcp recv timed out");
      const auto remaining_ms =
          std::chrono::duration_cast<std::chrono::milliseconds>(*deadline -
                                                                now)
              .count();
      struct pollfd pfd {};
      pfd.fd = fd;
      pfd.events = POLLIN;
      const int pr =
          ::poll(&pfd, 1, static_cast<int>(std::max<long long>(
                              1, std::min<long long>(remaining_ms, 60000))));
      if (pr < 0) {
        if (errno == EINTR) continue;
        return errno_status("poll");
      }
      if (pr == 0) continue;  // re-check the deadline
    }
    const ssize_t n = ::recv(fd, data + got, size - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return errno_status("recv");
    }
    if (n == 0) {
      if (eof_at_start != nullptr && got == 0) *eof_at_start = true;
      return closed_error("tcp connection closed by peer");
    }
    got += static_cast<std::size_t>(n);
  }
  return Status::ok();
}

class TcpConnection final : public Connection {
 public:
  TcpConnection(Fd fd, std::string peer)
      : fd_(std::move(fd)), peer_(std::move(peer)) {
    int one = 1;
    ::setsockopt(fd_.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }

  ~TcpConnection() override { close(); }

  Status send(ByteSpan message) override {
    if (message.size() > kMaxTcpMessageBytes) {
      return invalid_argument("tcp message exceeds frame cap");
    }
    MutexLock lock(send_mu_);
    if (closed_.load() || !fd_.valid()) {
      return closed_error("tcp connection closed");
    }
    std::byte header[4];
    const std::uint32_t size = static_cast<std::uint32_t>(message.size());
    header[0] = static_cast<std::byte>((size >> 24) & 0xFF);
    header[1] = static_cast<std::byte>((size >> 16) & 0xFF);
    header[2] = static_cast<std::byte>((size >> 8) & 0xFF);
    header[3] = static_cast<std::byte>(size & 0xFF);
    GL_RETURN_IF_ERROR(send_all(fd_.get(), header, sizeof(header)));
    return send_all(fd_.get(), message.data(), message.size());
  }

  Result<Bytes> recv() override { return recv_impl(nullptr); }

  Result<Bytes> recv_until(WallClock::time_point deadline) override {
    return recv_impl(&deadline);
  }

  void close() override {
    // Deliberately lock-free: a receiver may be blocked inside ::recv
    // holding recv_mu_, and shutdown() is what wakes it (the fd itself
    // stays open until destruction, so no descriptor reuse race).
    if (fd_.valid() && !closed_.exchange(true)) {
      ::shutdown(fd_.get(), SHUT_RDWR);
    }
  }

  std::string peer() const override { return peer_; }

 private:
  Result<Bytes> recv_impl(const WallClock::time_point* deadline) {
    MutexLock lock(recv_mu_);
    if (closed_.load() || !fd_.valid()) {
      return closed_error("tcp connection closed");
    }
    std::byte header[4];
    bool eof = false;
    GL_RETURN_IF_ERROR(recv_all(fd_.get(), header, sizeof(header), &eof,
                                deadline));
    const std::uint32_t size = (static_cast<std::uint32_t>(header[0]) << 24) |
                               (static_cast<std::uint32_t>(header[1]) << 16) |
                               (static_cast<std::uint32_t>(header[2]) << 8) |
                               static_cast<std::uint32_t>(header[3]);
    if (size > kMaxTcpMessageBytes) {
      return io_error("tcp frame larger than cap; stream corrupt");
    }
    Bytes payload(size);
    GL_RETURN_IF_ERROR(
        recv_all(fd_.get(), payload.data(), size, nullptr, deadline));
    return payload;
  }

  Fd fd_;
  std::string peer_;
  Mutex send_mu_;  // lint: guards the send half of fd_ (whole frames)
  Mutex recv_mu_;  // lint: guards the recv half of fd_ (whole frames)
  std::atomic<bool> closed_{false};
};

class TcpListener final : public Listener {
 public:
  TcpListener(Fd fd, Endpoint bound) : fd_(std::move(fd)), bound_(bound) {}

  ~TcpListener() override { close(); }

  Result<std::unique_ptr<Connection>> accept() override {
    sockaddr_in addr{};
    socklen_t addr_len = sizeof(addr);
    while (true) {
      const int conn_fd = ::accept(
          fd_.get(), reinterpret_cast<sockaddr*>(&addr), &addr_len);
      if (conn_fd >= 0) {
        char ip[INET_ADDRSTRLEN] = "?";
        ::inet_ntop(AF_INET, &addr.sin_addr, ip, sizeof(ip));
        return std::unique_ptr<Connection>(std::make_unique<TcpConnection>(
            Fd(conn_fd),
            strings::cat("tcp://", ip, ":", ntohs(addr.sin_port))));
      }
      if (errno == EINTR) continue;
      if (errno == EBADF || errno == EINVAL) {
        return closed_error("tcp listener closed");
      }
      return errno_status("accept");
    }
  }

  Endpoint bound_endpoint() const override { return bound_; }

  void close() override {
    // shutdown() wakes a blocked accept(); the fd is released at
    // destruction, after every accept() caller has returned.
    if (fd_.valid() && !closed_.exchange(true)) {
      ::shutdown(fd_.get(), SHUT_RDWR);
    }
  }

 private:
  Fd fd_;
  Endpoint bound_;
  std::atomic<bool> closed_{false};
};

}  // namespace

Result<std::unique_ptr<Connection>> TcpTransport::connect(
    const Endpoint& remote) {
  if (!remote.is_tcp()) {
    return invalid_argument(
        strings::cat("tcp transport cannot reach ", remote.to_string()));
  }
  GL_ASSIGN_OR_RETURN(const int port, remote.port());
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return errno_status("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, remote.host.c_str(), &addr.sin_addr) != 1) {
    return invalid_argument(
        strings::cat("tcp endpoint host must be an IPv4 address, got ",
                     remote.host));
  }
  if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return unavailable(strings::cat("connect ", remote.to_string(), ": ",
                                    strings::errno_message(errno)));
  }
  return std::unique_ptr<Connection>(
      std::make_unique<TcpConnection>(std::move(fd), remote.to_string()));
}

Result<std::unique_ptr<Listener>> TcpTransport::listen(const Endpoint& local) {
  if (!local.is_tcp()) {
    return invalid_argument(
        strings::cat("tcp transport cannot bind ", local.to_string()));
  }
  GL_ASSIGN_OR_RETURN(const int port, local.port());
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return errno_status("socket");
  int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return errno_status("bind");
  }
  if (::listen(fd.get(), 64) != 0) return errno_status("listen");
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) != 0) {
    return errno_status("getsockname");
  }
  const Endpoint bound_ep = tcp_endpoint("127.0.0.1", ntohs(bound.sin_port));
  return std::unique_ptr<Listener>(
      std::make_unique<TcpListener>(std::move(fd), bound_ep));
}

}  // namespace griddles::net
