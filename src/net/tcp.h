// Real TCP transport (loopback-oriented) with length-prefixed framing.
//
// Used by the integration tests and micro benchmarks to run the exact
// same services over genuine sockets. The host identity is informational
// here; no link shaping is applied (the kernel's loopback is the link).
#pragma once

#include <string>

#include "src/net/transport.h"

namespace griddles::net {

/// Hard cap on a single framed message (guards against corrupt frames).
inline constexpr std::size_t kMaxTcpMessageBytes = 64u << 20;

class TcpTransport final : public Transport {
 public:
  explicit TcpTransport(std::string host_label = "localhost")
      : host_(std::move(host_label)) {}

  Result<std::unique_ptr<Connection>> connect(const Endpoint& remote) override;

  /// Binds 127.0.0.1:<port>; port 0 selects an ephemeral port, visible
  /// via Listener::bound_endpoint().
  Result<std::unique_ptr<Listener>> listen(const Endpoint& local) override;

  const std::string& local_host() const override { return host_; }

 private:
  std::string host_;
};

}  // namespace griddles::net
