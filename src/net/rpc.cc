#include "src/net/rpc.h"

#include <algorithm>
#include <chrono>
#include <optional>

#include "src/common/deadline.h"
#include "src/common/logging.h"
#include "src/common/strings.h"
#include "src/fault/plan.h"
#include "src/fault/retry.h"
#include "src/obs/metrics.h"
#include "src/obs/span.h"
#include "src/xdr/codec.h"

namespace griddles::net {

namespace {
/// Process-wide RPC metrics (handles cached once).
struct RpcMetrics {
  obs::Counter& client_calls;
  obs::Counter& client_errors;  // calls that returned a non-ok Status
  obs::Counter& client_bytes_sent;
  obs::Counter& client_bytes_received;
  obs::Counter& server_requests;
  obs::Counter& server_bytes_in;
  obs::Counter& server_bytes_out;
  obs::Counter& deadline_expired;  // work rejected/abandoned on expiry

  static RpcMetrics& get() {
    auto& registry = obs::MetricsRegistry::global();
    static RpcMetrics metrics{
        registry.counter("rpc.client.calls"),
        registry.counter("rpc.client.errors"),
        registry.counter("rpc.client.bytes.sent"),
        registry.counter("rpc.client.bytes.received"),
        registry.counter("rpc.server.requests"),
        registry.counter("rpc.server.bytes.in"),
        registry.counter("rpc.server.bytes.out"),
        registry.counter("deadline.expired"),
    };
    return metrics;
  }
};
}  // namespace

Bytes encode_frame(const RpcFrame& frame, WireFormat format) {
  if (format == WireFormat::kSoap) return soap_encode(frame);
  xdr::Encoder enc;
  enc.put_u8(static_cast<std::uint8_t>(frame.kind));
  enc.put_u64(frame.id);
  enc.put_u16(frame.method);
  enc.put_u64(frame.trace_id);
  enc.put_u64(frame.span_id);
  enc.put_u64(frame.deadline_us);
  xdr::encode_status(enc, frame.status);
  enc.put_bytes(frame.payload);
  return std::move(enc).take();
}

Result<RpcFrame> decode_frame(ByteSpan data, WireFormat format) {
  if (format == WireFormat::kSoap) return soap_decode(data);
  xdr::Decoder dec(data);
  RpcFrame frame;
  GL_ASSIGN_OR_RETURN(const std::uint8_t kind, dec.u8());
  if (kind > 1) return invalid_argument("rpc frame: bad kind");
  frame.kind = static_cast<FrameKind>(kind);
  GL_ASSIGN_OR_RETURN(frame.id, dec.u64());
  GL_ASSIGN_OR_RETURN(frame.method, dec.u16());
  GL_ASSIGN_OR_RETURN(frame.trace_id, dec.u64());
  GL_ASSIGN_OR_RETURN(frame.span_id, dec.u64());
  GL_ASSIGN_OR_RETURN(frame.deadline_us, dec.u64());
  GL_RETURN_IF_ERROR(xdr::decode_status(dec, &frame.status));
  GL_ASSIGN_OR_RETURN(frame.payload, dec.bytes());
  return frame;
}

RpcServer::RpcServer(Transport& transport, Endpoint bind, WireFormat format)
    : transport_(transport), bind_(std::move(bind)), format_(format) {}

RpcServer::~RpcServer() { stop(); }

void RpcServer::register_method(std::uint16_t method, RpcHandler handler,
                                std::uint32_t cost) {
  MutexLock lock(mu_);
  handlers_[method] = Method{std::move(handler), cost, /*admitted=*/true};
}

void RpcServer::register_method_unadmitted(std::uint16_t method,
                                           RpcHandler handler) {
  MutexLock lock(mu_);
  handlers_[method] = Method{std::move(handler), 0, /*admitted=*/false};
}

void RpcServer::set_admission(AdmissionController::Options options) {
  MutexLock lock(mu_);
  admission_options_ = options;
}

AdmissionController* RpcServer::admission() {
  MutexLock lock(mu_);
  return admission_.get();
}

Status RpcServer::start() {
  MutexLock lock(mu_);
  if (started_) return failed_precondition("rpc server already started");
  GL_ASSIGN_OR_RETURN(listener_, transport_.listen(bind_));
  // Admission is on by default: the default capacity dwarfs anything a
  // well-behaved workload queues, so only genuine overload ever sheds.
  // The site key is "<host>/<service>" so burst@rpc globs can single out
  // one service class on a machine (e.g. "*/gbuf-*" hits only Grid
  // Buffer servers, leaving the staged-file path admissible).
  admission_ = std::make_unique<AdmissionController>(
      bind_.service.empty() ? bind_.host
                            : strings::cat(bind_.host, "/", bind_.service),
      admission_options_);
  started_ = true;
  accept_thread_ = std::thread([this] { accept_loop(); });
  return Status::ok();
}

Endpoint RpcServer::endpoint() const {
  MutexLock lock(mu_);
  return listener_ ? listener_->bound_endpoint() : bind_;
}

void RpcServer::stop() {
  std::thread accept_thread;
  std::vector<std::thread> workers;
  AdmissionController* admission = nullptr;
  {
    MutexLock lock(mu_);
    if (!started_ || stopping_.exchange(true)) {
      // Not started, or another stop() already in progress.
      if (!started_) return;
    }
    if (listener_) listener_->close();
    for (auto& weak_conn : connections_) {
      if (auto conn = weak_conn.lock()) conn->close();
    }
    admission = admission_.get();
    accept_thread = std::move(accept_thread_);
    workers = std::move(workers_);
  }
  // Unblock workers parked in the admission queue before joining them.
  if (admission != nullptr) admission->close();
  if (accept_thread.joinable()) accept_thread.join();
  for (std::thread& worker : workers) {
    if (worker.joinable()) worker.join();
  }
  MutexLock lock(mu_);
  started_ = false;
  stopping_ = false;
  listener_.reset();
  admission_.reset();  // a restarted server gets a fresh controller
  connections_.clear();
}

std::size_t RpcServer::live_connections() const {
  MutexLock lock(mu_);
  std::size_t live = 0;
  for (const auto& weak_conn : connections_) {
    if (!weak_conn.expired()) ++live;
  }
  return live;
}

void RpcServer::accept_loop() {
  // The listener outlives this loop: stop() closes it under the lock
  // (which unblocks accept()) and only resets the pointer after this
  // thread has been joined, so one snapshot up front is safe.
  Listener* listener = nullptr;
  {
    MutexLock lock(mu_);
    listener = listener_.get();
  }
  while (!stopping_) {
    auto accepted = listener->accept();
    if (!accepted.is_ok()) {
      if (accepted.status().code() == ErrorCode::kClosed || stopping_) return;
      GL_LOG(kWarn, "rpc accept failed: ", accepted.status());
      continue;
    }
    std::shared_ptr<Connection> conn = std::move(*accepted);
    MutexLock lock(mu_);
    if (stopping_) {
      conn->close();
      return;
    }
    connections_.push_back(conn);
    workers_.emplace_back(
        [this, conn = std::move(conn)]() mutable { serve_connection(conn); });
  }
}

void RpcServer::serve_connection(std::shared_ptr<Connection> conn) {
  const RpcContext context{conn->peer()};
  while (!stopping_) {
    auto message = conn->recv();
    if (!message.is_ok()) {
      if (message.status().code() != ErrorCode::kClosed) {
        GL_LOG(kDebug, "rpc connection error from ", context.peer, ": ",
               message.status());
      }
      return;
    }
    RpcMetrics::get().server_bytes_in.add(message->size());
    auto frame = decode_frame(*message, format_);
    if (!frame.is_ok()) {
      GL_LOG(kWarn, "rpc bad frame from ", context.peer, ": ",
             frame.status());
      return;  // framing is broken; drop the connection
    }
    if (frame->kind != FrameKind::kRequest) {
      GL_LOG(kWarn, "rpc unexpected response frame from ", context.peer);
      return;
    }
    RpcMetrics::get().server_requests.add();

    RpcFrame reply;
    reply.kind = FrameKind::kResponse;
    reply.id = frame->id;
    reply.method = frame->method;

    const Method* entry = nullptr;
    AdmissionController* admission = nullptr;
    {
      MutexLock lock(mu_);
      const auto it = handlers_.find(frame->method);
      if (it != handlers_.end()) entry = &it->second;
      admission = admission_.get();
    }
    if (entry == nullptr) {
      reply.status = unimplemented(
          strings::cat("no handler for method ", frame->method));
    } else {
      // Adopt the caller's trace for the handler's duration: spans the
      // handler opens (and nested RPC hops it makes) parent to the
      // remote caller's span. Untraced requests get no server span —
      // otherwise every request would mint a fresh root trace.
      obs::ScopedTraceContext trace_scope(
          obs::TraceContext{frame->trace_id, frame->span_id});
      std::optional<obs::Span> rpc_span;
      if (frame->trace_id != 0) {
        rpc_span.emplace(obs::SpanKind::kRpc,
                         strings::cat("rpc:", frame->method));
        rpc_span->add_attr("peer", context.peer);
      }
      // Re-anchor the caller's remaining budget on this server's clock.
      // Admission queueing and handler service both burn it, and nested
      // hops the handler makes forward whatever is left.
      std::optional<WallClock::time_point> hop_deadline;
      if (frame->deadline_us != 0) {
        hop_deadline = WallClock::now() +
                       std::chrono::microseconds(frame->deadline_us);
      }
      ScopedDeadline deadline_scope(hop_deadline);

      Status gate = Status::ok();
      AdmissionController::Permit permit;
      if (deadline_expired()) {
        gate = deadline_exceeded(strings::cat(
            "rpc ", frame->method, ": budget exhausted on arrival"));
      } else if (entry->admitted && admission != nullptr) {
        auto admitted = admission->admit(entry->cost, frame->method);
        if (admitted.is_ok()) {
          permit = std::move(*admitted);
          if (deadline_expired()) {
            gate = deadline_exceeded(strings::cat(
                "rpc ", frame->method, ": budget exhausted while queued"));
          }
        } else {
          gate = admitted.status();
        }
      }
      if (!gate.is_ok()) {
        // Expired or shed work is rejected *before* the handler runs —
        // executing it anyway would spend capacity on a reply nobody is
        // waiting for.
        if (gate.code() == ErrorCode::kDeadlineExceeded) {
          RpcMetrics::get().deadline_expired.add();
          obs::Span expired(obs::SpanKind::kDeadlineExpired,
                            strings::cat("rpc.expired:", frame->method));
          expired.add_attr("peer", context.peer);
        }
        reply.status = gate;
        if (rpc_span) rpc_span->add_attr("error", gate.message());
      } else {
        auto result = (entry->handler)(frame->payload, context);
        if (result.is_ok()) {
          reply.payload = std::move(*result);
        } else {
          reply.status = result.status();
          if (rpc_span) rpc_span->add_attr("error", result.status().message());
        }
      }
    }
    const Bytes encoded = encode_frame(reply, format_);
    RpcMetrics::get().server_bytes_out.add(encoded.size());
    if (const Status sent = conn->send(encoded); !sent.is_ok()) {
      if (sent.code() != ErrorCode::kClosed) {
        GL_LOG(kDebug, "rpc reply send failed: ", sent);
      }
      return;
    }
  }
}

RpcClient::RpcClient(Transport& transport, Endpoint server, WireFormat format)
    : transport_(transport), server_(std::move(server)), format_(format),
      fault_key_(strings::cat(transport.local_host(), ">", server_.host)) {}

RpcClient::~RpcClient() {
  MutexLock lock(mu_);
  if (conn_) conn_->close();
}

Status RpcClient::ensure_connected() {
  if (conn_) return Status::ok();
  GL_ASSIGN_OR_RETURN(conn_, transport_.connect(server_));
  return Status::ok();
}

void RpcClient::reset_connection() {
  MutexLock lock(mu_);
  if (conn_) conn_->close();
  conn_.reset();
}

Result<Bytes> RpcClient::call(std::uint16_t method, ByteSpan request) {
  RpcMetrics::get().client_calls.add();
  auto result = call_impl(method, request, nullptr);
  if (!result.is_ok()) RpcMetrics::get().client_errors.add();
  return result;
}

Result<Bytes> RpcClient::call_until(std::uint16_t method, ByteSpan request,
                                    WallClock::time_point deadline) {
  RpcMetrics::get().client_calls.add();
  auto result = call_impl(method, request, &deadline);
  if (!result.is_ok()) RpcMetrics::get().client_errors.add();
  return result;
}

Result<Bytes> RpcClient::call_impl(std::uint16_t method, ByteSpan request,
                                   const WallClock::time_point* deadline) {
  // Every fresh call earns its peer retry-budget tokens (taken before
  // the client lock: the budget has its own).
  const std::uint64_t key_hash = fnv1a(as_bytes_view(fault_key_));
  fault::RetryBudget::global().note_fresh(key_hash);

  MutexLock lock(mu_);
  if (fault::armed() == nullptr) return call_once(method, request, deadline);

  // Fault-tolerant path: consult the armed plan before each attempt and
  // retry transient failures (injected or organic) with deterministic
  // backoff. Injected drops fail *before* any bytes leave the client, so
  // a retried request is never a duplicate on the server.
  const fault::RetryPolicy policy;
  // Each retry becomes a child span covering its backoff plus the
  // re-attempt: emplace() records the previous attempt's span and opens
  // the next, so injected chaos shows up on the exported timeline.
  std::optional<obs::Span> retry_span;
  for (int attempt = 1;; ++attempt) {
    Result<Bytes> result = unavailable("rpc: no attempt made");
    fault::Plan* plan = fault::armed();
    fault::Decision decision;
    if (plan != nullptr) {
      decision = plan->consult(fault::Site::kRpc, fault_key_);
    }
    if (decision.action == fault::Decision::Action::kFail) {
      result = unavailable(strings::cat("injected fault: rpc ", fault_key_));
    } else {
      if (decision.action == fault::Decision::Action::kDelay) {
        // Injected latency must not serialize unrelated callers behind
        // this client's sleep: release the client lock for the duration.
        lock.unlock();
        fault::sleep_for_model(decision.delay);
        lock.lock();
      }
      result = call_once(method, request, deadline);
    }
    if (result.is_ok()) return result;

    // kTimeout only arises under a caller deadline, which retrying would
    // overrun — surface it. Everything else follows the shared policy.
    const ErrorCode code = result.status().code();
    if (!fault::RetryPolicy::retryable(code) ||
        code == ErrorCode::kTimeout || attempt >= policy.max_attempts) {
      return result;
    }
    // A dry per-peer token bucket turns the retry away — the original
    // error surfaces instead of joining a retry storm.
    if (!fault::RetryBudget::global().acquire(key_hash)) return result;
    fault::note_retry_attempt();
    retry_span.emplace(obs::SpanKind::kRetry,
                       strings::cat("rpc.retry:", fault_key_));
    retry_span->add_attr("attempt", strings::cat(attempt + 1));
    retry_span->add_attr("error", result.status().message());
    lock.unlock();
    fault::sleep_for_model(policy.backoff(attempt, key_hash));
    lock.lock();
  }
}

Result<Bytes> RpcClient::call_once(std::uint16_t method, ByteSpan request,
                                   const WallClock::time_point* deadline) {
  for (int attempt = 0; attempt < 2; ++attempt) {
    // Fail fast while the ambient budget is already spent: sending would
    // only make the server reject the work after a wasted round trip.
    const std::optional<Duration> budget = remaining_budget();
    if (budget && *budget <= Duration::zero()) {
      RpcMetrics::get().deadline_expired.add();
      obs::Span expired(obs::SpanKind::kDeadlineExpired,
                        strings::cat("rpc.expired:", method));
      expired.add_attr("where", "client.pre-send");
      return deadline_exceeded(
          strings::cat("rpc ", method, ": budget exhausted before send"));
    }
    GL_RETURN_IF_ERROR(ensure_connected());

    RpcFrame frame;
    frame.kind = FrameKind::kRequest;
    frame.id = next_id_++;
    frame.method = method;
    // Propagate the caller's active trace across the hop; zeros (no
    // active span on this thread) travel as "untraced".
    const obs::TraceContext trace = obs::current_context();
    frame.trace_id = trace.trace_id;
    frame.span_id = trace.span_id;
    if (budget) {
      // The remaining end-to-end budget travels as microseconds and is
      // re-anchored on the server's clock. Clamped to >= 1 so "almost
      // out" never reads as "no deadline" on the wire.
      frame.deadline_us = static_cast<std::uint64_t>(std::max<std::int64_t>(
          1, std::chrono::duration_cast<std::chrono::microseconds>(*budget)
                 .count()));
    }
    frame.payload.assign(request.begin(), request.end());

    const Bytes encoded = encode_frame(frame, format_);
    RpcMetrics::get().client_bytes_sent.add(encoded.size());
    const Status sent = conn_->send(encoded);
    if (!sent.is_ok()) {
      conn_.reset();
      if (attempt == 0 && sent.code() == ErrorCode::kClosed) continue;
      return sent;
    }

    // The reply wait honours whichever bound is tighter: the explicit
    // call_until deadline or the ambient end-to-end budget.
    const std::optional<WallClock::time_point> ambient = current_deadline();
    const WallClock::time_point* recv_deadline = deadline;
    if (ambient && (recv_deadline == nullptr || *ambient < *recv_deadline)) {
      recv_deadline = &*ambient;
    }
    auto message = recv_deadline != nullptr ? conn_->recv_until(*recv_deadline)
                                            : conn_->recv();
    if (!message.is_ok()) {
      const ErrorCode code = message.status().code();
      if (code == ErrorCode::kTimeout) {
        if (ambient && recv_deadline == &*ambient) {
          // The budget, not an explicit timeout, cut the wait short.
          RpcMetrics::get().deadline_expired.add();
          obs::Span expired(obs::SpanKind::kDeadlineExpired,
                            strings::cat("rpc.expired:", method));
          expired.add_attr("where", "client.await-reply");
          return deadline_exceeded(strings::cat(
              "rpc ", method, ": budget exhausted awaiting reply"));
        }
        return message.status();
      }
      conn_.reset();
      if (attempt == 0 && code == ErrorCode::kClosed) continue;
      return message.status();
    }
    RpcMetrics::get().client_bytes_received.add(message->size());
    GL_ASSIGN_OR_RETURN(RpcFrame reply, decode_frame(*message, format_));
    if (reply.kind != FrameKind::kResponse || reply.id != frame.id) {
      conn_.reset();
      return internal_error("rpc response out of sequence");
    }
    if (!reply.status.is_ok()) return reply.status;
    return std::move(reply.payload);
  }
  return unavailable(strings::cat("rpc to ", server_.to_string(),
                                  " failed after reconnect"));
}

}  // namespace griddles::net
