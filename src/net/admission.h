// Server-side admission control and load shedding (DESIGN.md §14).
//
// Every admitted RPC request acquires `cost` units of a fixed service
// capacity before its handler runs; requests beyond capacity wait in a
// bounded queue. A request is *shed* — rejected up front with a typed
// kResourceExhausted, reject-newest — when the queue is full or the
// estimated queue delay (queued cost × EMA service time / capacity)
// crosses the configured limit. Queue waits are additionally bounded by
// the request's end-to-end deadline (src/common/deadline.h) and by
// `max_wait`, so an overloaded server turns excess work away quickly
// instead of buffering it into a timeout cascade.
//
// The `burst@rpc:<key>` fault op (src/fault/plan.h) injects
// deterministic overload here: while a burst rule fires, every admit
// accounts its cost multiplied by the rule's factor, so shedding and
// deadline expiry trigger without any real extra traffic.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "src/common/clock.h"
#include "src/common/status.h"
#include "src/common/thread_annotations.h"

namespace griddles::net {

class AdmissionController {
 public:
  struct Options {
    // Cost units servable concurrently. Each admitted request holds its
    // method's cost (default 1) from admit() until Permit release.
    std::uint32_t capacity = 64;
    // Cost units allowed to wait beyond capacity before reject-newest.
    std::uint32_t max_queued = 256;
    // Shed when (queued + incoming) * ema_service / capacity exceeds
    // this estimated queue delay.
    Duration max_queue_delay = std::chrono::seconds(1);
    // Queue-wait bound for requests that carry no deadline of their own.
    Duration max_wait = std::chrono::seconds(2);
  };

  /// RAII admission slot: releases its cost units and feeds the
  /// service-time estimate when destroyed.
  class Permit {
   public:
    Permit() = default;
    Permit(Permit&& other) noexcept : Permit() { swap(other); }
    Permit& operator=(Permit&& other) noexcept {
      swap(other);
      return *this;
    }
    ~Permit() { release(); }

    void release();

   private:
    friend class AdmissionController;
    Permit(AdmissionController* owner, std::uint32_t cost,
           WallClock::time_point admitted_at)
        : owner_(owner), cost_(cost), admitted_at_(admitted_at) {}
    void swap(Permit& other) noexcept {
      std::swap(owner_, other.owner_);
      std::swap(cost_, other.cost_);
      std::swap(admitted_at_, other.admitted_at_);
    }

    AdmissionController* owner_ = nullptr;
    std::uint32_t cost_ = 0;
    WallClock::time_point admitted_at_{};
  };

  /// `site_key` names this server in fault-plan consults (burst rules
  /// match it by glob) and in shed span labels. RpcServer passes
  /// "<host>/<service>" so a glob can target one service class on a
  /// machine (e.g. "*/gbuf-*" for Grid Buffer servers only).
  explicit AdmissionController(std::string site_key)
      : AdmissionController(std::move(site_key), Options()) {}
  AdmissionController(std::string site_key, Options options);

  /// Admits `cost` units, waiting in the bounded queue if capacity is
  /// busy. Sheds with kResourceExhausted (reject-newest) on overflow or
  /// estimated-delay breach; kDeadlineExceeded when the caller's budget
  /// expires while queued; kUnavailable after close(). A cost of 0
  /// admits immediately without occupying capacity (for handlers that
  /// block server-side and must not starve the queue).
  Result<Permit> admit(std::uint32_t cost, std::uint16_t method);

  /// Unblocks every queued waiter; subsequent admits fail kUnavailable.
  void close();

  // Introspection for tests and benches.
  std::uint32_t in_flight() const;
  std::uint32_t queued() const;
  double ema_service_seconds() const;

 private:
  friend class Permit;
  void release(std::uint32_t cost, WallClock::time_point admitted_at);
  /// Cost multiplier from an armed burst rule (1 when none fires).
  double burst_factor() const;

  const std::string site_key_;
  const Options options_;

  mutable Mutex mu_ ACQUIRED_BEFORE("MetricsRegistry::mu_");
  CondVar slot_free_;
  std::uint32_t in_flight_ GUARDED_BY(mu_) = 0;
  std::uint32_t queued_ GUARDED_BY(mu_) = 0;
  double ema_service_s_ GUARDED_BY(mu_) = 1e-3;
  bool closed_ GUARDED_BY(mu_) = false;
};

}  // namespace griddles::net
