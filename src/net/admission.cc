#include "src/net/admission.h"

#include <algorithm>
#include <cmath>

#include "src/common/deadline.h"
#include "src/common/strings.h"
#include "src/fault/plan.h"
#include "src/obs/metrics.h"
#include "src/obs/span.h"

namespace griddles::net {

namespace {
/// Process-wide overload metrics (handles cached once).
struct AdmissionMetrics {
  obs::Counter& shed;      // requests rejected by admission control
  obs::Counter& admitted;  // requests that acquired capacity
  obs::Histogram& queue_delay_s;  // admit-call to admitted wait

  static AdmissionMetrics& get() {
    auto& registry = obs::MetricsRegistry::global();
    static AdmissionMetrics metrics{
        registry.counter("overload.shed"),
        registry.counter("admission.admitted"),
        registry.histogram("admission.queue.delay_s",
                           obs::exponential_bounds(1e-5, 10.0, 12)),
    };
    return metrics;
  }
};
}  // namespace

AdmissionController::AdmissionController(std::string site_key,
                                         Options options)
    : site_key_(std::move(site_key)), options_(options) {}

double AdmissionController::burst_factor() const {
  fault::Plan* plan = fault::armed();
  if (plan == nullptr) return 1.0;
  const fault::Decision verdict =
      plan->consult(fault::Site::kAdmission, site_key_);
  if (verdict.action == fault::Decision::Action::kBurst) {
    return std::max(1.0, verdict.factor);
  }
  return 1.0;
}

Result<AdmissionController::Permit> AdmissionController::admit(
    std::uint32_t cost, std::uint16_t method) {
  if (cost == 0) return Permit(this, 0, WallClock::now());

  // An armed burst rule inflates the cost this request *accounts for*,
  // simulating factor-times the offered load deterministically.
  const auto effective = static_cast<std::uint32_t>(
      std::max(1.0, std::ceil(static_cast<double>(cost) * burst_factor())));

  const auto shed = [&](const char* why) -> Status {
    AdmissionMetrics::get().shed.add();
    obs::Span span(obs::SpanKind::kShed,
                   strings::cat("shed:", site_key_, ":", method));
    span.add_attr("why", why);
    return resource_exhausted(strings::cat("admission: ", site_key_,
                                           " method ", method, " shed (",
                                           why, ")"));
  };

  const WallClock::time_point arrived = WallClock::now();
  const std::optional<WallClock::time_point> budget = current_deadline();
  WallClock::time_point wait_deadline = arrived + options_.max_wait;
  if (budget && *budget < wait_deadline) wait_deadline = *budget;

  MutexLock lock(mu_);
  if (closed_) return unavailable("admission: controller closed");
  if (in_flight_ + effective > options_.capacity) {
    // Reject-newest: the request at the back of the line is the one
    // turned away, never work already queued or in flight.
    if (queued_ + effective > options_.max_queued) {
      lock.unlock();
      return shed("queue full");
    }
    const double est_delay_s =
        static_cast<double>(queued_ + effective) * ema_service_s_ /
        static_cast<double>(std::max<std::uint32_t>(1, options_.capacity));
    if (est_delay_s > to_seconds_d(options_.max_queue_delay)) {
      lock.unlock();
      return shed("estimated queue delay");
    }
    queued_ += effective;
    // lint: blocking-ok (monitor wait: releases mu_; bounded by deadline)
    const bool freed =
        slot_free_.wait_until(mu_, wait_deadline, [&]() REQUIRES(mu_) {
          return closed_ || in_flight_ + effective <= options_.capacity;
        });
    queued_ -= effective;
    if (closed_) return unavailable("admission: controller closed");
    if (!freed) {
      lock.unlock();
      if (budget && WallClock::now() >= *budget) {
        return deadline_exceeded(
            strings::cat("admission: ", site_key_,
                         " budget exhausted while queued"));
      }
      return shed("queue wait timed out");
    }
  }
  in_flight_ += effective;
  lock.unlock();
  AdmissionMetrics::get().admitted.add();
  AdmissionMetrics::get().queue_delay_s.observe(
      to_seconds_d(WallClock::now() - arrived));
  return Permit(this, effective, WallClock::now());
}

void AdmissionController::Permit::release() {
  AdmissionController* owner = owner_;
  owner_ = nullptr;
  if (owner != nullptr && cost_ != 0) owner->release(cost_, admitted_at_);
  cost_ = 0;
}

void AdmissionController::release(std::uint32_t cost,
                                  WallClock::time_point admitted_at) {
  const double service_s = to_seconds_d(WallClock::now() - admitted_at);
  {
    MutexLock lock(mu_);
    in_flight_ -= std::min(cost, in_flight_);
    ema_service_s_ = 0.8 * ema_service_s_ + 0.2 * service_s;
  }
  slot_free_.notify_all();
}

void AdmissionController::close() {
  {
    MutexLock lock(mu_);
    closed_ = true;
  }
  slot_free_.notify_all();
}

std::uint32_t AdmissionController::in_flight() const {
  MutexLock lock(mu_);
  return in_flight_;
}

std::uint32_t AdmissionController::queued() const {
  MutexLock lock(mu_);
  return queued_;
}

double AdmissionController::ema_service_seconds() const {
  MutexLock lock(mu_);
  return ema_service_s_;
}

}  // namespace griddles::net
