#include "src/net/soap.h"

#include <array>

#include "src/common/strings.h"

namespace griddles::net {

namespace {
constexpr char kBase64Chars[] =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

std::array<std::int8_t, 256> build_reverse_table() {
  std::array<std::int8_t, 256> table{};
  table.fill(-1);
  for (int i = 0; i < 64; ++i) {
    table[static_cast<unsigned char>(kBase64Chars[i])] =
        static_cast<std::int8_t>(i);
  }
  return table;
}
}  // namespace

std::string base64_encode(ByteSpan data) {
  std::string out;
  out.reserve((data.size() + 2) / 3 * 4);
  std::size_t i = 0;
  while (i + 3 <= data.size()) {
    const std::uint32_t n = (static_cast<std::uint32_t>(data[i]) << 16) |
                            (static_cast<std::uint32_t>(data[i + 1]) << 8) |
                            static_cast<std::uint32_t>(data[i + 2]);
    out.push_back(kBase64Chars[(n >> 18) & 63]);
    out.push_back(kBase64Chars[(n >> 12) & 63]);
    out.push_back(kBase64Chars[(n >> 6) & 63]);
    out.push_back(kBase64Chars[n & 63]);
    i += 3;
  }
  const std::size_t rest = data.size() - i;
  if (rest == 1) {
    const std::uint32_t n = static_cast<std::uint32_t>(data[i]) << 16;
    out.push_back(kBase64Chars[(n >> 18) & 63]);
    out.push_back(kBase64Chars[(n >> 12) & 63]);
    out.push_back('=');
    out.push_back('=');
  } else if (rest == 2) {
    const std::uint32_t n = (static_cast<std::uint32_t>(data[i]) << 16) |
                            (static_cast<std::uint32_t>(data[i + 1]) << 8);
    out.push_back(kBase64Chars[(n >> 18) & 63]);
    out.push_back(kBase64Chars[(n >> 12) & 63]);
    out.push_back(kBase64Chars[(n >> 6) & 63]);
    out.push_back('=');
  }
  return out;
}

Result<Bytes> base64_decode(std::string_view text) {
  static const std::array<std::int8_t, 256> reverse = build_reverse_table();
  Bytes out;
  out.reserve(text.size() / 4 * 3);
  std::uint32_t acc = 0;
  int bits = 0;
  for (const char c : text) {
    if (c == '=' || c == '\n' || c == '\r' || c == ' ') continue;
    const std::int8_t v = reverse[static_cast<unsigned char>(c)];
    if (v < 0) {
      return invalid_argument(strings::cat("bad base64 character '", c, "'"));
    }
    acc = (acc << 6) | static_cast<std::uint32_t>(v);
    bits += 6;
    if (bits >= 8) {
      bits -= 8;
      out.push_back(static_cast<std::byte>((acc >> bits) & 0xFF));
    }
  }
  return out;
}

namespace {

/// Extracts the text between <tag> and </tag>; nullopt when absent.
std::optional<std::string_view> extract_tag(std::string_view xml,
                                            std::string_view tag) {
  const std::string open = strings::cat("<", tag, ">");
  const std::string close = strings::cat("</", tag, ">");
  const std::size_t start = xml.find(open);
  if (start == std::string_view::npos) return std::nullopt;
  const std::size_t body = start + open.size();
  const std::size_t end = xml.find(close, body);
  if (end == std::string_view::npos) return std::nullopt;
  return xml.substr(body, end - body);
}

std::string xml_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

std::string xml_unescape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  std::size_t i = 0;
  while (i < text.size()) {
    if (text[i] == '&') {
      if (text.substr(i, 5) == "&amp;") {
        out.push_back('&');
        i += 5;
        continue;
      }
      if (text.substr(i, 4) == "&lt;") {
        out.push_back('<');
        i += 4;
        continue;
      }
      if (text.substr(i, 4) == "&gt;") {
        out.push_back('>');
        i += 4;
        continue;
      }
    }
    out.push_back(text[i++]);
  }
  return out;
}

}  // namespace

Bytes soap_encode(const RpcFrame& frame) {
  std::string xml = strings::cat(
      "<?xml version=\"1.0\"?>"
      "<soap:Envelope xmlns:soap=\"http://schemas.xmlsoap.org/soap/"
      "envelope/\" xmlns:gl=\"urn:griddles\">"
      "<soap:Header>"
      "<gl:kind>",
      frame.kind == FrameKind::kRequest ? "request" : "response",
      "</gl:kind>"
      "<gl:id>",
      frame.id,
      "</gl:id>"
      "<gl:method>",
      frame.method,
      "</gl:method>"
      "<gl:trace>",
      frame.trace_id,
      "</gl:trace>"
      "<gl:span>",
      frame.span_id,
      "</gl:span>"
      "<gl:deadline>",
      frame.deadline_us,
      "</gl:deadline>"
      "<gl:status>",
      static_cast<std::uint32_t>(frame.status.code()),
      "</gl:status>"
      "<gl:statusText>",
      xml_escape(frame.status.message()),
      "</gl:statusText>"
      "</soap:Header>"
      "<soap:Body><gl:payload>",
      base64_encode(frame.payload),
      "</gl:payload></soap:Body>"
      "</soap:Envelope>");
  return to_bytes(xml);
}

Result<RpcFrame> soap_decode(ByteSpan data) {
  const std::string xml = to_string(data);
  RpcFrame frame;

  const auto kind = extract_tag(xml, "gl:kind");
  if (!kind) return invalid_argument("soap frame: missing gl:kind");
  if (*kind == "request") {
    frame.kind = FrameKind::kRequest;
  } else if (*kind == "response") {
    frame.kind = FrameKind::kResponse;
  } else {
    return invalid_argument("soap frame: bad gl:kind");
  }

  const auto id = extract_tag(xml, "gl:id");
  const auto method = extract_tag(xml, "gl:method");
  const auto status_code = extract_tag(xml, "gl:status");
  const auto status_text = extract_tag(xml, "gl:statusText");
  const auto payload = extract_tag(xml, "gl:payload");
  if (!id || !method || !status_code || !payload) {
    return invalid_argument("soap frame: missing header fields");
  }
  const auto id_v = strings::parse_int(*id);
  const auto method_v = strings::parse_int(*method);
  const auto code_v = strings::parse_int(*status_code);
  if (!id_v || !method_v || !code_v || *method_v < 0 || *method_v > 0xFFFF ||
      *code_v < 0 ||
      *code_v > static_cast<int>(ErrorCode::kDeadlineExceeded)) {
    return invalid_argument("soap frame: malformed numeric header");
  }
  frame.id = static_cast<std::uint64_t>(*id_v);
  frame.method = static_cast<std::uint16_t>(*method_v);
  // Trace metadata is optional: envelopes from before the tracing layer
  // (or hand-written fixtures) simply decode as untraced.
  if (const auto trace = extract_tag(xml, "gl:trace")) {
    if (const auto trace_v = strings::parse_int(*trace); trace_v && *trace_v >= 0) {
      frame.trace_id = static_cast<std::uint64_t>(*trace_v);
    }
  }
  if (const auto span = extract_tag(xml, "gl:span")) {
    if (const auto span_v = strings::parse_int(*span); span_v && *span_v >= 0) {
      frame.span_id = static_cast<std::uint64_t>(*span_v);
    }
  }
  // Deadline budget is optional like the trace tags: pre-deadline
  // envelopes decode as "no deadline".
  if (const auto budget = extract_tag(xml, "gl:deadline")) {
    if (const auto budget_v = strings::parse_int(*budget);
        budget_v && *budget_v >= 0) {
      frame.deadline_us = static_cast<std::uint64_t>(*budget_v);
    }
  }
  if (*code_v != 0) {
    frame.status =
        Status(static_cast<ErrorCode>(*code_v),
               status_text ? xml_unescape(*status_text) : std::string{});
  }
  GL_ASSIGN_OR_RETURN(frame.payload, base64_decode(*payload));
  return frame;
}

}  // namespace griddles::net
