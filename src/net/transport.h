// Message-oriented transport abstraction.
//
// Every GriddLeS service (GNS, Grid Buffer, remote file server, replica
// catalog, NWS) speaks over these interfaces, so a workflow can run on
// real loopback TCP sockets or on the modelled in-process network without
// any service code changing.
#pragma once

#include <memory>
#include <string>

#include "src/common/bytes.h"
#include "src/common/clock.h"
#include "src/common/status.h"
#include "src/net/endpoint.h"

namespace griddles::net {

/// A bidirectional, message-framed, reliable, ordered byte channel.
/// send() and recv() are each internally serialized; one thread may send
/// while another receives.
class Connection {
 public:
  virtual ~Connection() = default;

  /// Enqueues one message; blocks on flow control. kClosed after close.
  virtual Status send(ByteSpan message) = 0;

  /// Blocks for the next message; kClosed on orderly shutdown.
  virtual Result<Bytes> recv() = 0;

  /// As recv(), but fails with kTimeout at the wall deadline.
  virtual Result<Bytes> recv_until(WallClock::time_point deadline) = 0;

  /// Half-closes for sending and unblocks local receivers.
  virtual void close() = 0;

  /// Diagnostic description of the remote end.
  virtual std::string peer() const = 0;
};

class Listener {
 public:
  virtual ~Listener() = default;

  /// Blocks for the next inbound connection; kClosed once shut down.
  virtual Result<std::unique_ptr<Connection>> accept() = 0;

  /// The endpoint clients should connect to (resolves ephemeral ports).
  virtual Endpoint bound_endpoint() const = 0;

  /// Stops accepting and unblocks accept().
  virtual void close() = 0;
};

class Transport {
 public:
  virtual ~Transport() = default;

  virtual Result<std::unique_ptr<Connection>> connect(
      const Endpoint& remote) = 0;

  virtual Result<std::unique_ptr<Listener>> listen(const Endpoint& local) = 0;

  /// The host identity this transport connects *from* (used to pick the
  /// link model for the in-process network; informational for TCP).
  virtual const std::string& local_host() const = 0;
};

}  // namespace griddles::net
