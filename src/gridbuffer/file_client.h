// GridBufferFileClient: adapts a Grid Buffer channel to the FileClient
// interface, so the File Multiplexer can swap a local file for a direct
// writer->reader stream without the application noticing (paper Fig. 3).
//
// The open flags decide the role: write-only opens become the channel's
// writer, read-only opens become a reader. Read-write opens are rejected
// — a stream has one direction, exactly as in the paper.
#pragma once

#include <memory>

#include "src/gridbuffer/client.h"
#include "src/vfs/file_client.h"

namespace griddles::gridbuffer {

class GridBufferFileClient final : public vfs::FileClient {
 public:
  /// Tuning beyond the channel config itself.
  struct Tuning {
    std::size_t writer_window_blocks = 32;
    int writer_flusher_threads = 4;
    std::uint64_t read_deadline_ms = 120000;
  };

  static Result<std::unique_ptr<GridBufferFileClient>> open(
      net::Transport& transport, const net::Endpoint& server,
      const std::string& channel, vfs::OpenFlags flags,
      const ChannelConfig& config, const Tuning& tuning);
  static Result<std::unique_ptr<GridBufferFileClient>> open(
      net::Transport& transport, const net::Endpoint& server,
      const std::string& channel, vfs::OpenFlags flags,
      const ChannelConfig& config) {
    return open(transport, server, channel, flags, config, Tuning{});
  }

  Result<std::size_t> read(MutableByteSpan out) override;
  Result<std::size_t> write(ByteSpan data) override;
  Result<std::uint64_t> seek(std::int64_t offset, vfs::Whence whence) override;
  std::uint64_t tell() const override;
  Result<std::uint64_t> size() override;
  Status flush() override;
  Status close() override;
  std::string describe() const override;

 private:
  GridBufferFileClient(std::unique_ptr<GridBufferWriter> writer,
                       std::unique_ptr<GridBufferReader> reader,
                       std::string channel)
      : writer_(std::move(writer)), reader_(std::move(reader)),
        channel_(std::move(channel)) {}

  std::unique_ptr<GridBufferWriter> writer_;  // exactly one of these
  std::unique_ptr<GridBufferReader> reader_;  // two is set
  std::string channel_;
};

}  // namespace griddles::gridbuffer
