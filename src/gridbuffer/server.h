// GridBufferServer: the RPC face of a ChannelStore (paper Figure 4's
// "Grid Buffer Server").
//
// The paper implemented this as a Web Service reached by SOAP messages;
// construct with WireFormat::kSoap to reproduce that wire format, or the
// default binary framing for the fast path (the ablation bench compares
// the two).
#pragma once

#include <cstdint>

#include "src/gridbuffer/channel.h"
#include "src/net/rpc.h"
#include "src/xdr/codec.h"

namespace griddles::gridbuffer {

enum class Method : std::uint16_t {
  kOpenWrite = 1,   // (channel, block_size, cache, readers, max_bytes)
  kWrite = 2,       // (channel, offset, bytes)
  kCloseWrite = 3,  // (channel)
  kOpenRead = 4,    // (channel, block_size, cache, readers, max_bytes)
                    //   -> reader_id
  kRead = 5,        // (channel, reader_id, offset, length, deadline_ms)
                    //   -> eof, frontier, bytes
  kCloseRead = 6,   // (channel, reader_id)
  kStat = 7,        // (channel, wait_for_eof, deadline_ms) -> eof, frontier
  kRemove = 8,      // (channel)
};

constexpr std::uint16_t method_id(Method m) {
  return static_cast<std::uint16_t>(m);
}

void encode_channel_config(xdr::Encoder& enc, const ChannelConfig& config);
Result<ChannelConfig> decode_channel_config(xdr::Decoder& dec);

class GridBufferServer {
 public:
  /// `cache_dir` holds per-channel cache files.
  GridBufferServer(std::string cache_dir, net::Transport& transport,
                   net::Endpoint bind,
                   net::WireFormat format = net::WireFormat::kBinary);
  ~GridBufferServer();

  Status start() { return rpc_.start(); }

  /// Wakes blocked readers/writers, then stops the RPC server.
  void stop();

  net::Endpoint endpoint() const { return rpc_.endpoint(); }
  ChannelStore& store() noexcept { return store_; }

 private:
  void register_handlers();

  ChannelStore store_;
  net::RpcServer rpc_;
};

}  // namespace griddles::gridbuffer
