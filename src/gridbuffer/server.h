// GridBufferServer: the RPC face of a ChannelStore (paper Figure 4's
// "Grid Buffer Server").
//
// The paper implemented this as a Web Service reached by SOAP messages;
// construct with WireFormat::kSoap to reproduce that wire format, or the
// default binary framing for the fast path (the ablation bench compares
// the two).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/common/thread_annotations.h"
#include "src/gridbuffer/channel.h"
#include "src/multicast/relay.h"
#include "src/net/rpc.h"
#include "src/xdr/codec.h"

namespace griddles::gridbuffer {

enum class Method : std::uint16_t {
  kOpenWrite = 1,   // (channel, block_size, cache, readers, max_bytes)
  kWrite = 2,       // (channel, offset, bytes)
  kCloseWrite = 3,  // (channel)
  kOpenRead = 4,    // (channel, block_size, cache, readers, max_bytes)
                    //   -> reader_id
  kRead = 5,        // (channel, reader_id, offset, length, deadline_ms)
                    //   -> eof, frontier, bytes
  kCloseRead = 6,   // (channel, reader_id)
  kStat = 7,        // (channel, wait_for_eof, deadline_ms) -> eof, frontier
  kRemove = 8,      // (channel)
  kRelayWrite = 9,  // (subtree, config, offset, bytes) -> dead hosts:
                    // open+write the block locally, forward it down the
                    // subtree (broadcast relay hop, DESIGN.md §12)
  kRelayClose = 10, // (subtree, config) -> dead hosts: close the local
                    // writer, forward the close down the subtree
};

constexpr std::uint16_t method_id(Method m) {
  return static_cast<std::uint16_t>(m);
}

void encode_channel_config(xdr::Encoder& enc, const ChannelConfig& config);
Result<ChannelConfig> decode_channel_config(xdr::Decoder& dec);

class GridBufferServer {
 public:
  /// `cache_dir` holds per-channel cache files.
  GridBufferServer(std::string cache_dir, net::Transport& transport,
                   net::Endpoint bind,
                   net::WireFormat format = net::WireFormat::kBinary);
  ~GridBufferServer();

  Status start() { return rpc_.start(); }

  /// Wakes blocked readers/writers, then stops the RPC server.
  void stop();

  net::Endpoint endpoint() const { return rpc_.endpoint(); }
  ChannelStore& store() noexcept { return store_; }

  /// Turns `channel` into a broadcast channel on this server: every
  /// kWrite is also fanned out to `children` (kRelayWrite hops carrying
  /// the subtree in-band) and kCloseWrite closes the whole tree. Each
  /// subtree node opens the channel locally with `config`, overriding
  /// expected_readers with its own node-local reader count.
  void set_broadcast(const std::string& channel,
                     const ChannelConfig& config,
                     std::vector<multicast::RelayNode> children);

 private:
  struct Broadcast {
    ChannelConfig config;
    std::vector<multicast::RelayNode> children;
  };

  void register_handlers();

  ChannelStore store_;
  net::RpcServer rpc_;
  multicast::RelayForwarder forwarder_;
  /// Cumulative bytes this server forwarded as a relay — the `after=`
  /// high-water mark of `die@relay:<host>` fault rules.
  // lint: not-a-metric (fault-site high-water mark)
  std::atomic<std::uint64_t> relayed_bytes_{0};
  mutable Mutex mu_;
  std::map<std::string, Broadcast> broadcast_ GUARDED_BY(mu_);
};

}  // namespace griddles::gridbuffer
