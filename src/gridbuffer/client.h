// Grid Buffer clients (paper Figure 4's "Grid Buffer Client").
//
// The writer pipelines blocks through a bounded queue drained by a
// background flusher thread, so application WRITE calls return as soon as
// the block is queued — the asynchronous-write latency masking of §3.1.
// The reader issues blocking reads; its cursor is purely local, so SEEK
// costs nothing until the next read.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>

#include "src/common/queue.h"
#include "src/common/thread_annotations.h"
#include "src/gridbuffer/server.h"
#include "src/net/rpc.h"

namespace griddles::gridbuffer {

class GridBufferWriter {
 public:
  struct Options {
    ChannelConfig channel;
    /// Blocks in flight before write() exerts backpressure.
    std::size_t window_blocks = 32;
    /// Concurrent flusher connections. Because each flusher RPCs
    /// synchronously, this bounds the blocks concurrently in flight on
    /// the wire — the knob that makes small-block buffer streams
    /// latency-limited (~threads * block / RTT), as the paper observed
    /// on WAN links (§5.3). Out-of-order arrival is what the server's
    /// hash table exists for (§4).
    int flusher_threads = 4;
    /// Synchronous mode: every write RPCs inline (for ablation benches).
    bool synchronous = false;
    /// Wire format — kSoap reproduces the paper's Web-Services transport
    /// (must match the server's).
    net::WireFormat wire = net::WireFormat::kBinary;
  };

  /// Opens (creating if needed) `channel` for writing.
  static Result<std::unique_ptr<GridBufferWriter>> open(
      net::Transport& transport, const net::Endpoint& server,
      const std::string& channel, Options options);
  static Result<std::unique_ptr<GridBufferWriter>> open(
      net::Transport& transport, const net::Endpoint& server,
      const std::string& channel) {
    return open(transport, server, channel, Options{});
  }

  ~GridBufferWriter();

  GridBufferWriter(const GridBufferWriter&) = delete;
  GridBufferWriter& operator=(const GridBufferWriter&) = delete;

  /// Appends bytes to the stream (buffered into block_size blocks).
  Status write(ByteSpan data);

  /// Sends any buffered partial block and waits for the pipeline to
  /// drain.
  Status flush();

  /// Flushes and publishes end-of-stream. Idempotent.
  Status close();

  std::uint64_t bytes_written() const noexcept { return cursor_; }
  const std::string& channel() const noexcept { return channel_; }

 private:
  GridBufferWriter(net::Transport& transport, net::Endpoint server,
                   std::string channel, Options options);

  Status send_block(std::uint64_t offset, Bytes data);
  void flusher_main();
  Status pipeline_error() const;

  net::Transport& transport_;
  net::Endpoint server_;
  std::string channel_;
  Options options_;

  net::RpcClient control_;  // open/close + synchronous writes

  Bytes pending_;              // partial block being assembled
  std::uint64_t block_start_ = 0;  // stream offset of pending_[0]
  std::uint64_t cursor_ = 0;       // total bytes accepted
  bool closed_ = false;

  struct QueuedBlock {
    std::uint64_t offset;
    Bytes data;
  };
  BoundedQueue<QueuedBlock> queue_;
  std::vector<std::thread> flushers_;
  // lint: not-a-metric (flow control)
  std::atomic<std::uint64_t> acked_blocks_{0};
  // lint: not-a-metric (flow control)
  std::atomic<std::uint64_t> queued_blocks_{0};
  mutable Mutex error_mu_;
  Status flusher_status_ GUARDED_BY(error_mu_);
};

class GridBufferReader {
 public:
  struct Options {
    ChannelConfig channel;
    /// Per-read server-side blocking budget (wall ms; 0 = forever).
    std::uint64_t read_deadline_ms = 120000;
    /// Wire format (must match the server's).
    net::WireFormat wire = net::WireFormat::kBinary;
  };

  /// Registers as a reader of `channel` (creating it if the writer has
  /// not opened it yet).
  static Result<std::unique_ptr<GridBufferReader>> open(
      net::Transport& transport, const net::Endpoint& server,
      const std::string& channel, Options options);
  static Result<std::unique_ptr<GridBufferReader>> open(
      net::Transport& transport, const net::Endpoint& server,
      const std::string& channel) {
    return open(transport, server, channel, Options{});
  }

  ~GridBufferReader();

  GridBufferReader(const GridBufferReader&) = delete;
  GridBufferReader& operator=(const GridBufferReader&) = delete;

  /// Reads at the cursor; blocks until data or EOF. 0 = end of stream.
  Result<std::size_t> read(MutableByteSpan out);

  /// Moves the cursor. kEnd blocks until the writer closes (the final
  /// size is unknowable earlier).
  Result<std::uint64_t> seek(std::int64_t offset, std::uint8_t whence);

  std::uint64_t tell() const noexcept { return cursor_; }

  /// Final stream size; blocks until the writer closes.
  Result<std::uint64_t> size();

  Status close();

  const std::string& channel() const noexcept { return channel_; }

 private:
  GridBufferReader(net::Transport& transport, net::Endpoint server,
                   std::string channel, Options options);

  net::RpcClient rpc_;
  std::string channel_;
  Options options_;
  std::uint64_t reader_id_ = 0;
  std::uint64_t cursor_ = 0;
  bool closed_ = false;
};

}  // namespace griddles::gridbuffer
