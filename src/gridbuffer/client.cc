#include "src/gridbuffer/client.h"

#include "src/common/deadline.h"
#include "src/common/logging.h"
#include "src/common/strings.h"
#include "src/obs/span.h"
#include "src/xdr/codec.h"

namespace griddles::gridbuffer {

namespace {
Bytes encode_open(const std::string& channel, const ChannelConfig& config) {
  xdr::Encoder enc;
  enc.put_string(channel);
  encode_channel_config(enc, config);
  return std::move(enc).take();
}
}  // namespace

Result<std::unique_ptr<GridBufferWriter>> GridBufferWriter::open(
    net::Transport& transport, const net::Endpoint& server,
    const std::string& channel, Options options) {
  auto writer = std::unique_ptr<GridBufferWriter>(
      new GridBufferWriter(transport, server, channel, options));
  GL_ASSIGN_OR_RETURN(
      const Bytes reply,
      writer->control_.call(method_id(Method::kOpenWrite),
                            encode_open(channel, options.channel)));
  (void)reply;
  if (!options.synchronous) {
    const int threads = std::max(1, options.flusher_threads);
    writer->flushers_.reserve(static_cast<std::size_t>(threads));
    // Hand the opener's trace context to the flusher threads so their
    // write RPCs (and any server-side backpressure stalls) parent to
    // the stage that opened this writer instead of surfacing as
    // orphan root traces. The opener's end-to-end budget rides along
    // the same way, so flushed writes still carry its deadline.
    const obs::TraceContext trace_parent = obs::current_context();
    const std::optional<WallClock::time_point> budget = current_deadline();
    for (int i = 0; i < threads; ++i) {
      writer->flushers_.emplace_back([w = writer.get(), trace_parent,
                                      budget] {
        obs::ScopedTraceContext trace_scope(trace_parent);
        ScopedDeadline deadline_scope(budget);
        w->flusher_main();
      });
    }
  }
  return writer;
}

GridBufferWriter::GridBufferWriter(net::Transport& transport,
                                   net::Endpoint server, std::string channel,
                                   Options options)
    : transport_(transport), server_(std::move(server)),
      channel_(std::move(channel)), options_(options),
      control_(transport, server_, options.wire),
      queue_(options.window_blocks == 0 ? 1 : options.window_blocks) {
  pending_.reserve(options_.channel.block_size);
}

GridBufferWriter::~GridBufferWriter() {
  if (const Status s = close(); !s.is_ok()) {
    GL_LOG(kWarn, "grid buffer writer close on destruct: ", s);
  }
}

Status GridBufferWriter::pipeline_error() const {
  MutexLock lock(error_mu_);
  return flusher_status_;
}

Status GridBufferWriter::send_block(std::uint64_t offset, Bytes data) {
  xdr::Encoder enc;
  enc.put_string(channel_);
  enc.put_u64(offset);
  enc.put_bytes(data);
  auto reply = control_.call(method_id(Method::kWrite), enc.buffer());
  return reply.status();
}

void GridBufferWriter::flusher_main() {
  net::RpcClient rpc(transport_, server_, options_.wire);
  while (true) {
    auto item = queue_.pop();
    if (!item) return;  // queue closed and drained
    xdr::Encoder enc;
    enc.put_string(channel_);
    enc.put_u64(item->offset);
    enc.put_bytes(item->data);
    auto reply = rpc.call(method_id(Method::kWrite), enc.buffer());
    if (!reply.is_ok()) {
      MutexLock lock(error_mu_);
      if (flusher_status_.is_ok()) flusher_status_ = reply.status();
      // Keep draining so close() does not hang, but drop the data.
    }
    acked_blocks_.fetch_add(1);
  }
}

Status GridBufferWriter::write(ByteSpan data) {
  if (closed_) return failed_precondition("write on closed grid buffer");
  GL_RETURN_IF_ERROR(pipeline_error());
  const std::uint32_t bs = options_.channel.block_size;
  while (!data.empty()) {
    const std::size_t room = bs - pending_.size();
    const std::size_t take = std::min(room, data.size());
    pending_.insert(pending_.end(), data.begin(),
                    data.begin() + static_cast<std::ptrdiff_t>(take));
    data = data.subspan(take);
    cursor_ += take;
    if (pending_.size() == bs) {
      Bytes block = std::move(pending_);
      pending_.clear();
      pending_.reserve(bs);
      const std::uint64_t offset = block_start_;
      block_start_ += bs;
      if (options_.synchronous) {
        GL_RETURN_IF_ERROR(send_block(offset, std::move(block)));
      } else {
        queued_blocks_.fetch_add(1);
        if (!queue_.push(QueuedBlock{offset, std::move(block)})) {
          return closed_error("grid buffer write pipeline closed");
        }
      }
    }
  }
  return Status::ok();
}

Status GridBufferWriter::flush() {
  if (closed_) return Status::ok();
  if (!pending_.empty()) {
    // Send the partial block; the stream may extend it later (the server
    // accepts extending rewrites at the same offset).
    Bytes block = pending_;  // keep pending_: later writes extend the block
    if (options_.synchronous) {
      GL_RETURN_IF_ERROR(send_block(block_start_, std::move(block)));
    } else {
      queued_blocks_.fetch_add(1);
      if (!queue_.push(QueuedBlock{block_start_, std::move(block)})) {
        return closed_error("grid buffer write pipeline closed");
      }
    }
  }
  // Drain the pipeline.
  if (!options_.synchronous) {
    while (acked_blocks_.load() < queued_blocks_.load()) {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  }
  return pipeline_error();
}

Status GridBufferWriter::close() {
  if (closed_) return Status::ok();
  const Status flushed = flush();
  closed_ = true;
  queue_.close();
  for (std::thread& flusher : flushers_) {
    if (flusher.joinable()) flusher.join();
  }

  xdr::Encoder enc;
  enc.put_string(channel_);
  auto reply = control_.call(method_id(Method::kCloseWrite), enc.buffer());
  GL_RETURN_IF_ERROR(flushed);
  GL_RETURN_IF_ERROR(pipeline_error());
  return reply.status();
}

Result<std::unique_ptr<GridBufferReader>> GridBufferReader::open(
    net::Transport& transport, const net::Endpoint& server,
    const std::string& channel, Options options) {
  auto reader = std::unique_ptr<GridBufferReader>(
      new GridBufferReader(transport, server, channel, options));
  GL_ASSIGN_OR_RETURN(
      const Bytes reply,
      reader->rpc_.call(method_id(Method::kOpenRead),
                        encode_open(channel, options.channel)));
  xdr::Decoder dec(reply);
  GL_ASSIGN_OR_RETURN(reader->reader_id_, dec.u64());
  return reader;
}

GridBufferReader::GridBufferReader(net::Transport& transport,
                                   net::Endpoint server, std::string channel,
                                   Options options)
    : rpc_(transport, std::move(server), options.wire),
      channel_(std::move(channel)), options_(options) {}

GridBufferReader::~GridBufferReader() {
  if (const Status s = close(); !s.is_ok()) {
    GL_LOG(kWarn, "grid buffer reader close on destruct: ", s);
  }
}

Result<std::size_t> GridBufferReader::read(MutableByteSpan out) {
  if (closed_) return failed_precondition("read on closed grid buffer");
  std::size_t got = 0;
  while (got < out.size()) {
    xdr::Encoder enc;
    enc.put_string(channel_);
    enc.put_u64(reader_id_);
    enc.put_u64(cursor_);
    enc.put_u32(static_cast<std::uint32_t>(out.size() - got));
    enc.put_u64(options_.read_deadline_ms);
    GL_ASSIGN_OR_RETURN(const Bytes reply,
                        rpc_.call(method_id(Method::kRead), enc.buffer()));
    xdr::Decoder dec(reply);
    GL_ASSIGN_OR_RETURN(const bool eof, dec.boolean());
    GL_ASSIGN_OR_RETURN(const std::uint64_t frontier, dec.u64());
    (void)frontier;
    GL_ASSIGN_OR_RETURN(const Bytes data, dec.bytes());
    std::copy(data.begin(), data.end(),
              out.begin() + static_cast<std::ptrdiff_t>(got));
    got += data.size();
    cursor_ += data.size();
    if (eof && data.empty()) break;
    if (data.empty() && !eof) {
      return internal_error("grid buffer read returned no data without eof");
    }
    if (eof) break;
  }
  return got;
}

Result<std::uint64_t> GridBufferReader::seek(std::int64_t offset,
                                             std::uint8_t whence) {
  if (closed_) return failed_precondition("seek on closed grid buffer");
  std::int64_t base = 0;
  switch (whence) {
    case 0: base = 0; break;
    case 1: base = static_cast<std::int64_t>(cursor_); break;
    case 2: {
      GL_ASSIGN_OR_RETURN(const std::uint64_t total, size());
      base = static_cast<std::int64_t>(total);
      break;
    }
    default: return invalid_argument("bad whence");
  }
  const std::int64_t target = base + offset;
  if (target < 0) return invalid_argument("seek before start of stream");
  cursor_ = static_cast<std::uint64_t>(target);
  return cursor_;
}

Result<std::uint64_t> GridBufferReader::size() {
  xdr::Encoder enc;
  enc.put_string(channel_);
  enc.put_bool(true);  // wait for eof
  enc.put_u64(options_.read_deadline_ms);
  GL_ASSIGN_OR_RETURN(const Bytes reply,
                      rpc_.call(method_id(Method::kStat), enc.buffer()));
  xdr::Decoder dec(reply);
  GL_ASSIGN_OR_RETURN(const bool eof, dec.boolean());
  GL_ASSIGN_OR_RETURN(const std::uint64_t frontier, dec.u64());
  if (!eof) return unavailable("stream still being written");
  return frontier;
}

Status GridBufferReader::close() {
  if (closed_) return Status::ok();
  closed_ = true;
  xdr::Encoder enc;
  enc.put_string(channel_);
  enc.put_u64(reader_id_);
  auto reply = rpc_.call(method_id(Method::kCloseRead), enc.buffer());
  return reply.status();
}

}  // namespace griddles::gridbuffer
