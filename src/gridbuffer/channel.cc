#include "src/gridbuffer/channel.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <optional>

#include "src/common/deadline.h"
#include "src/common/logging.h"
#include "src/common/strings.h"
#include "src/fault/plan.h"
#include "src/obs/metrics.h"
#include "src/obs/span.h"

namespace griddles::gridbuffer {

namespace {
/// Process-wide Grid Buffer metrics (handles cached once).
struct GbMetrics {
  obs::Gauge& bytes_buffered;   // sum of resident block bytes, all channels
  obs::Gauge& blocks_buffered;  // resident block count, all channels
  obs::Histogram& read_wait_s;  // wall time a reader blocked on the writer
  obs::Counter& cache_hits;     // reads served from the spill cache file
  obs::Counter& blocks_evicted;
  obs::Counter& readers_added;
  obs::Counter& backpressure_waits;  // writes stalled on the unread bound

  static GbMetrics& get() {
    auto& registry = obs::MetricsRegistry::global();
    static GbMetrics metrics{
        registry.gauge("gridbuffer.bytes.buffered"),
        registry.gauge("gridbuffer.blocks.buffered"),
        registry.histogram("gridbuffer.read.wait_s",
                           obs::exponential_bounds(1e-4, 10.0, 7)),
        registry.counter("gridbuffer.cache.hits"),
        registry.counter("gridbuffer.blocks.evicted"),
        registry.counter("gridbuffer.readers.added"),
        registry.counter("gridbuffer.backpressure.waits"),
    };
    return metrics;
  }
};
}  // namespace

Channel::Channel(std::string name, ChannelConfig config,
                 std::string cache_path)
    : name_(std::move(name)), config_(config),
      cache_path_(std::move(cache_path)) {}

Channel::~Channel() {
  if (cache_fd_ >= 0) {
    ::close(cache_fd_);
    std::error_code ec;
    std::filesystem::remove(cache_path_, ec);  // cache is scratch state
  }
}

std::uint64_t Channel::add_reader() {
  MutexLock lock(mu_);
  const std::uint64_t id = next_reader_id_++;
  readers_[id] = Reader{};
  ++readers_seen_;
  GbMetrics::get().readers_added.add();
  cv_.notify_all();  // eviction gating may have changed
  return id;
}

void Channel::remove_reader(std::uint64_t reader_id) {
  MutexLock lock(mu_);
  readers_.erase(reader_id);
  evict_locked();
  cv_.notify_all();
}

std::uint64_t Channel::min_consumed_locked() const {
  if (readers_seen_ < config_.expected_readers) return 0;
  if (readers_.empty()) {
    // Every expected reader came and went: nothing will read again.
    return std::numeric_limits<std::uint64_t>::max();
  }
  std::uint64_t lowest = std::numeric_limits<std::uint64_t>::max();
  for (const auto& [id, reader] : readers_) {
    lowest = std::min(lowest, reader.consumed_upto);
  }
  return lowest;
}

void Channel::evict_locked() {
  const std::uint64_t safe = min_consumed_locked();
  auto it = block_sizes_.lower_bound(evicted_upto_);
  while (it != block_sizes_.end() &&
         it->first + it->second <= safe) {
    const auto block = blocks_.find(it->first);
    if (block != blocks_.end()) {
      table_bytes_ -= block->second.size();
      GbMetrics::get().bytes_buffered.sub(
          static_cast<std::int64_t>(block->second.size()));
      GbMetrics::get().blocks_buffered.sub(1);
      GbMetrics::get().blocks_evicted.add();
      blocks_.erase(block);
    }
    evicted_upto_ = it->first + it->second;
    ++it;
  }
}

Status Channel::cache_write_locked(std::uint64_t offset, ByteSpan data) {
  if (cache_fd_ < 0) {
    cache_fd_ = ::open(cache_path_.c_str(), O_RDWR | O_CREAT | O_TRUNC,
                       0644);
    if (cache_fd_ < 0) {
      return io_error(strings::cat("grid buffer cache ", cache_path_, ": ",
                                   strings::errno_message(errno)));
    }
  }
  std::size_t put = 0;
  while (put < data.size()) {
    const ssize_t n = ::pwrite(cache_fd_, data.data() + put,
                               data.size() - put,
                               static_cast<off_t>(offset + put));
    if (n < 0) {
      if (errno == EINTR) continue;
      return io_error(strings::cat("grid buffer cache write: ",
                                   strings::errno_message(errno)));
    }
    put += static_cast<std::size_t>(n);
  }
  return Status::ok();
}

Result<Bytes> Channel::cache_read_locked(std::uint64_t offset,
                                         std::uint32_t length) const {
  if (cache_fd_ < 0) {
    return out_of_range(
        strings::cat("channel ", name_, ": block evicted and no cache file"));
  }
  Bytes out(length);
  std::size_t got = 0;
  while (got < length) {
    const ssize_t n = ::pread(cache_fd_, out.data() + got, length - got,
                              static_cast<off_t>(offset + got));
    if (n < 0) {
      if (errno == EINTR) continue;
      return io_error(strings::cat("grid buffer cache read: ",
                                   strings::errno_message(errno)));
    }
    if (n == 0) break;
    got += static_cast<std::size_t>(n);
  }
  out.resize(got);
  return out;
}

Status Channel::write(std::uint64_t offset, ByteSpan data) {
  // Lazily opened on the first backpressure stall (see read()).
  std::optional<obs::Span> wait_span;
  MutexLock lock(mu_);
  if (shutdown_) return aborted_error("grid buffer shutting down");
  if (writer_failed_) {
    return data_loss(
        strings::cat("channel ", name_, ": writer died mid-stream"));
  }
  if (writer_closed_) {
    return failed_precondition(
        strings::cat("channel ", name_, ": writer already closed"));
  }
  if (offset % config_.block_size != 0) {
    return invalid_argument("grid buffer write not block-aligned");
  }
  if (data.size() > config_.block_size) {
    return invalid_argument("grid buffer write larger than block size");
  }
  // Injected peer death: the producer "dies" once the stream frontier
  // would pass the rule's `after=` mark. The block is NOT stored — the
  // reader can drain only what a real dead writer had already flushed.
  if (fault::Plan* plan = fault::armed(); plan != nullptr) {
    const std::uint64_t would_be =
        std::max(frontier_, offset + data.size());
    const fault::Decision verdict =
        plan->consult(fault::Site::kPeer, name_, would_be);
    if (verdict.action == fault::Decision::Action::kKill) {
      writer_failed_ = true;
      lock.unlock();
      cv_.notify_all();
      return data_loss(strings::cat("injected fault: channel ", name_,
                                    " writer died at frontier ", frontier_));
    }
  }

  // Any blocked stall below is additionally bounded by the ambient
  // end-to-end budget (src/common/deadline.h): an expired writer gives
  // up with kDeadlineExceeded instead of buffering into a stall.
  const std::optional<WallClock::time_point> budget = current_deadline();

  // Opt-in backpressure on *unread* data: even when the spill cache
  // would absorb table overflow, the frontier may not outrun the
  // slowest reader by more than max_unread_bytes.
  while (config_.max_unread_bytes > 0 && !shutdown_ && !writer_failed_ &&
         !writer_closed_) {
    const std::uint64_t consumed = min_consumed_locked();
    const std::uint64_t would_be = std::max(frontier_, offset + data.size());
    if (would_be <= consumed ||
        would_be - consumed <= config_.max_unread_bytes) {
      break;
    }
    if (!wait_span) {
      wait_span.emplace(obs::SpanKind::kBufferWait,
                        strings::cat("gbuf.write_wait:", name_));
      GbMetrics::get().backpressure_waits.add();
    }
    if (budget) {
      // lint: blocking-ok (backpressure monitor wait: releases mu_; deadline-bounded)
      if (cv_.wait_until(mu_, *budget) == std::cv_status::timeout) {
        return deadline_exceeded(strings::cat(
            "channel ", name_, ": budget exhausted under backpressure"));
      }
    } else {
      // lint: blocking-ok (backpressure monitor wait: releases mu_)
      cv_.wait(mu_);
    }
  }
  if (shutdown_) return aborted_error("grid buffer shutting down");
  if (writer_failed_) {
    return data_loss(
        strings::cat("channel ", name_, ": writer died mid-stream"));
  }
  if (writer_closed_) {
    return failed_precondition("writer closed while blocked");
  }

  // Backpressure / spill when the table is at capacity.
  while (table_bytes_ + data.size() > config_.max_buffered_bytes &&
         !blocks_.empty() && !shutdown_) {
    if (config_.cache_enabled) {
      // Every resident block is already in the cache (write-through);
      // drop the lowest-offset resident block from the table.
      const auto oldest = std::min_element(
          blocks_.begin(), blocks_.end(),
          [](const auto& a, const auto& b) { return a.first < b.first; });
      table_bytes_ -= oldest->second.size();
      GbMetrics::get().bytes_buffered.sub(
          static_cast<std::int64_t>(oldest->second.size()));
      GbMetrics::get().blocks_buffered.sub(1);
      GbMetrics::get().blocks_evicted.add();
      blocks_.erase(oldest);
    } else {
      evict_locked();
      if (table_bytes_ + data.size() <= config_.max_buffered_bytes) break;
      if (!wait_span) {
        wait_span.emplace(obs::SpanKind::kBufferWait,
                          strings::cat("gbuf.write_wait:", name_));
        GbMetrics::get().backpressure_waits.add();
      }
      if (budget) {
        // lint: blocking-ok (backpressure monitor wait: releases mu_; deadline-bounded)
        if (cv_.wait_until(mu_, *budget) == std::cv_status::timeout) {
          return deadline_exceeded(strings::cat(
              "channel ", name_, ": budget exhausted under backpressure"));
        }
      } else {
        // lint: blocking-ok (backpressure monitor wait: releases mu_)
        cv_.wait(mu_);
      }
      if (writer_closed_) {
        return failed_precondition("writer closed while blocked");
      }
    }
  }
  if (shutdown_) return aborted_error("grid buffer shutting down");

  if (config_.cache_enabled) {
    GL_RETURN_IF_ERROR(cache_write_locked(offset, data));
  }

  const auto size_it = block_sizes_.find(offset);
  if (size_it != block_sizes_.end()) {
    if (data.size() < size_it->second) {
      return invalid_argument(
          "grid buffer block rewrite must extend the block");
    }
    const auto existing = blocks_.find(offset);
    if (existing != blocks_.end()) {
      table_bytes_ -= existing->second.size();
      GbMetrics::get().bytes_buffered.sub(
          static_cast<std::int64_t>(existing->second.size()));
      GbMetrics::get().blocks_buffered.sub(1);
    }
    size_it->second = static_cast<std::uint32_t>(data.size());
  } else {
    block_sizes_[offset] = static_cast<std::uint32_t>(data.size());
  }
  blocks_[offset] = Bytes(data.begin(), data.end());
  table_bytes_ += data.size();
  GbMetrics::get().bytes_buffered.add(
      static_cast<std::int64_t>(data.size()));
  GbMetrics::get().blocks_buffered.add(1);
  frontier_ = std::max(frontier_, offset + data.size());

  lock.unlock();
  cv_.notify_all();
  return Status::ok();
}

void Channel::close_writer() {
  {
    MutexLock lock(mu_);
    writer_closed_ = true;
  }
  cv_.notify_all();
}

bool Channel::writer_closed() const {
  MutexLock lock(mu_);
  return writer_closed_;
}

void Channel::fail_writer(const std::string& reason) {
  {
    MutexLock lock(mu_);
    writer_failed_ = true;
    GL_LOG(kDebug, "channel ", name_, ": writer failed: ", reason);
  }
  cv_.notify_all();
}

bool Channel::writer_failed() const {
  MutexLock lock(mu_);
  return writer_failed_;
}

Result<ReadResult> Channel::read(std::uint64_t reader_id,
                                 std::uint64_t offset, std::uint32_t length,
                                 std::uint64_t deadline_ms) {
  const auto deadline =
      WallClock::now() + std::chrono::milliseconds(
                             deadline_ms == 0 ? 0 : deadline_ms);
  // Lazily opened on the first blocked wait, so a read served straight
  // from the table emits no span; ends when the read returns, covering
  // the whole stall. Span recording never blocks, so creating it under
  // mu_ is safe.
  std::optional<obs::Span> wait_span;
  MutexLock lock(mu_);
  if (readers_.find(reader_id) == readers_.end()) {
    return not_found(strings::cat("channel ", name_, ": unknown reader"));
  }

  while (true) {
    if (shutdown_) return aborted_error("grid buffer shutting down");
    if (length == 0) {
      return ReadResult{{}, writer_closed_ && offset >= frontier_, frontier_};
    }

    const std::uint64_t bs = config_.block_size;
    const std::uint64_t start = offset / bs * bs;
    const auto size_it = block_sizes_.find(start);
    const bool covered = size_it != block_sizes_.end() &&
                         offset - start < size_it->second;
    if (covered) {
      // Serve as much contiguous data as is already available, crossing
      // block boundaries, up to `length` — one RPC can drain a whole
      // run of blocks instead of one block per round trip.
      ReadResult result;
      result.frontier = frontier_;
      std::uint64_t position = offset;
      while (result.data.size() < length) {
        const std::uint64_t block_start = position / bs * bs;
        const auto run_it = block_sizes_.find(block_start);
        if (run_it == block_sizes_.end() ||
            position - block_start >= run_it->second) {
          break;  // next block not (fully enough) written yet
        }
        const std::uint64_t in_block = position - block_start;
        const std::uint32_t take = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(length - result.data.size(),
                                    run_it->second - in_block));
        const auto block = blocks_.find(block_start);
        if (block != blocks_.end()) {
          result.data.insert(
              result.data.end(),
              block->second.begin() + static_cast<std::ptrdiff_t>(in_block),
              block->second.begin() +
                  static_cast<std::ptrdiff_t>(in_block + take));
        } else if (config_.cache_enabled) {
          GL_ASSIGN_OR_RETURN(const Bytes cached,
                              cache_read_locked(position, take));
          GbMetrics::get().cache_hits.add();
          result.data.insert(result.data.end(), cached.begin(),
                             cached.end());
          if (cached.size() < take) break;  // short cache read: stop here
        } else {
          if (!result.data.empty()) break;  // serve what we have
          return out_of_range(strings::cat(
              "channel ", name_,
              ": block consumed and re-read needs a cache file (offset ",
              position, ")"));
        }
        position += take;
      }
      // Re-find: remove_reader may have erased this reader while the loop
      // waited on cv_ (operator[] here would silently resurrect it and
      // stall eviction forever).
      const auto reader_it = readers_.find(reader_id);
      if (reader_it == readers_.end()) {
        return not_found(
            strings::cat("channel ", name_, ": reader removed mid-read"));
      }
      reader_it->second.consumed_upto = std::max(
          reader_it->second.consumed_upto, offset + result.data.size());
      evict_locked();
      lock.unlock();
      cv_.notify_all();  // space may have been freed for the writer
      return result;
    }

    // Drained everything a dead writer produced: surface the loss rather
    // than blocking for data that will never arrive. (Covered offsets
    // above still serve normally — that is the cache-drain recovery.)
    // Checked before the EOF branch: a failed writer's teardown may still
    // send a clean close, which must not turn truncation into EOF.
    if (writer_failed_) {
      return data_loss(strings::cat("channel ", name_,
                                    ": writer died; stream ends at ",
                                    frontier_, ", read at ", offset));
    }

    if (offset >= frontier_) {
      if (writer_closed_) {
        return ReadResult{{}, true, frontier_};
      }
    } else if (writer_closed_) {
      // A hole below the frontier that can never be filled: sparse
      // semantics, serve zeros up to the next written extent.
      const auto next = block_sizes_.upper_bound(offset);
      const std::uint64_t zeros_end =
          std::min(frontier_, next == block_sizes_.end()
                                  ? frontier_
                                  : next->first);
      const std::uint32_t take = static_cast<std::uint32_t>(
          std::min<std::uint64_t>(length, zeros_end - offset));
      if (take > 0) {
        ReadResult result;
        result.frontier = frontier_;
        result.data.assign(take, std::byte{0});
        const auto reader_it = readers_.find(reader_id);
        if (reader_it == readers_.end()) {
          return not_found(
              strings::cat("channel ", name_, ": reader removed mid-read"));
        }
        reader_it->second.consumed_upto =
            std::max(reader_it->second.consumed_upto, offset + take);
        evict_locked();
        return result;
      }
      // zeros_end == offset: offset sits exactly at a written block start
      // that was already handled above; fall through to wait (should not
      // happen once the writer is closed).
      return internal_error("grid buffer read stuck at written block");
    }

    // Wait for the writer (or for an out-of-order block to land).
    if (!wait_span) {
      wait_span.emplace(obs::SpanKind::kBufferWait,
                        strings::cat("gbuf.read_wait:", name_));
    }
    const auto wait_start = WallClock::now();
    if (deadline_ms == 0) {
      // lint: blocking-ok (monitor wait: releases mu_ until writer progress)
      cv_.wait(mu_);
      // lint: blocking-ok (monitor wait, deadline-bounded: releases mu_)
    } else if (cv_.wait_until(mu_, deadline) == std::cv_status::timeout) {
      GbMetrics::get().read_wait_s.observe(
          to_seconds_d(WallClock::now() - wait_start));
      return timeout_error(strings::cat("channel ", name_,
                                        ": read timed out at offset ",
                                        offset));
    }
    GbMetrics::get().read_wait_s.observe(
        to_seconds_d(WallClock::now() - wait_start));
  }
}

Result<ReadResult> Channel::stat(bool wait_for_eof,
                                 std::uint64_t deadline_ms) {
  const auto deadline =
      WallClock::now() + std::chrono::milliseconds(
                             deadline_ms == 0 ? 0 : deadline_ms);
  MutexLock lock(mu_);
  while (wait_for_eof && !writer_closed_ && !writer_failed_ && !shutdown_) {
    if (deadline_ms == 0) {
      // lint: blocking-ok (monitor wait: releases mu_ until eof or shutdown)
      cv_.wait(mu_);
      // lint: blocking-ok (monitor wait, deadline-bounded: releases mu_)
    } else if (cv_.wait_until(mu_, deadline) == std::cv_status::timeout) {
      return timeout_error(
          strings::cat("channel ", name_, ": stat timed out awaiting eof"));
    }
  }
  if (shutdown_) return aborted_error("grid buffer shutting down");
  if (writer_failed_) {
    return data_loss(
        strings::cat("channel ", name_, ": writer died mid-stream"));
  }
  return ReadResult{{}, writer_closed_, frontier_};
}

void Channel::shutdown() {
  {
    MutexLock lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
}

std::uint64_t Channel::buffered_bytes() const {
  MutexLock lock(mu_);
  return table_bytes_;
}

std::size_t Channel::buffered_blocks() const {
  MutexLock lock(mu_);
  return blocks_.size();
}

ChannelStore::ChannelStore(std::string cache_dir)
    : cache_dir_(std::move(cache_dir)) {
  std::error_code ec;
  std::filesystem::create_directories(cache_dir_, ec);
}

namespace {
std::string sanitize_for_filename(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    if (c == '/' || c == '\\' || c == ':') c = '_';
  }
  return out;
}
}  // namespace

Result<std::shared_ptr<Channel>> ChannelStore::open(
    const std::string& name, const ChannelConfig& config) {
  MutexLock lock(mu_);
  const auto it = channels_.find(name);
  if (it != channels_.end()) {
    const ChannelConfig& existing = it->second->config();
    if (existing.block_size != config.block_size ||
        existing.cache_enabled != config.cache_enabled) {
      return failed_precondition(
          strings::cat("channel ", name,
                       " already exists with different parameters"));
    }
    return it->second;
  }
  const std::string cache_path =
      (std::filesystem::path(cache_dir_) /
       (sanitize_for_filename(name) + ".cache"))
          .string();
  auto channel = std::make_shared<Channel>(name, config, cache_path);
  channels_[name] = channel;
  GL_LOG(kDebug, "grid buffer channel created: ", name);
  return channel;
}

Result<std::shared_ptr<Channel>> ChannelStore::find(const std::string& name) {
  MutexLock lock(mu_);
  const auto it = channels_.find(name);
  if (it == channels_.end()) {
    return not_found(strings::cat("no grid buffer channel ", name));
  }
  return it->second;
}

Status ChannelStore::remove(const std::string& name) {
  // Never call into a channel (Channel::mu_) with the store lock held:
  // lockgraph would record ChannelStore::mu_ -> Channel::mu_, and any
  // future channel-side path back into the store would deadlock. Check
  // the writer outside the lock — writer_closed is monotonic once true —
  // and re-look-up before erasing in case of a concurrent remove/create.
  std::shared_ptr<Channel> channel;
  {
    MutexLock lock(mu_);
    const auto it = channels_.find(name);
    if (it == channels_.end()) {
      return not_found(strings::cat("no grid buffer channel ", name));
    }
    channel = it->second;
  }
  if (!channel->writer_closed()) {
    return failed_precondition(
        strings::cat("channel ", name, " still has an active writer"));
  }
  MutexLock lock(mu_);
  const auto it = channels_.find(name);
  if (it != channels_.end() && it->second == channel) {
    channels_.erase(it);
  }
  return Status::ok();
}

void ChannelStore::shutdown_all() {
  // Snapshot under the store lock, shut down outside it: Channel::
  // shutdown() takes Channel::mu_ and wakes blocked readers/writers,
  // which must not happen under ChannelStore::mu_ (see remove()).
  std::vector<std::shared_ptr<Channel>> snapshot;
  {
    MutexLock lock(mu_);
    snapshot.reserve(channels_.size());
    for (auto& [name, channel] : channels_) snapshot.push_back(channel);
  }
  for (auto& channel : snapshot) channel->shutdown();
}

std::vector<std::string> ChannelStore::channel_names() const {
  MutexLock lock(mu_);
  std::vector<std::string> names;
  names.reserve(channels_.size());
  for (const auto& [name, channel] : channels_) names.push_back(name);
  return names;
}

}  // namespace griddles::gridbuffer
