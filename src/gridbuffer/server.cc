#include "src/gridbuffer/server.h"

#include <algorithm>
#include <chrono>

#include "src/common/deadline.h"
#include "src/common/logging.h"
#include "src/common/strings.h"
#include "src/obs/span.h"
#include "src/xdr/codec.h"

namespace griddles::gridbuffer {

namespace {
/// One kRelayWrite request: the receiver's subtree, the channel config
/// its machine opens locally, and the block.
Bytes relay_write_request(const multicast::RelayNode& node,
                          const ChannelConfig& config, std::uint64_t offset,
                          ByteSpan data) {
  xdr::Encoder enc;
  multicast::encode_node(enc, node);
  encode_channel_config(enc, config);
  enc.put_u64(offset);
  enc.put_bytes(data);
  return std::move(enc).take();
}

Bytes relay_close_request(const multicast::RelayNode& node,
                          const ChannelConfig& config) {
  xdr::Encoder enc;
  multicast::encode_node(enc, node);
  encode_channel_config(enc, config);
  return std::move(enc).take();
}

/// Caps a blocking wait (ms; 0 = forever) to the ambient end-to-end
/// budget so an expired request never parks past its caller's patience.
std::uint64_t clamp_to_budget_ms(std::uint64_t deadline_ms) {
  const std::optional<Duration> left = remaining_budget();
  if (!left) return deadline_ms;
  const auto left_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(*left).count();
  const std::uint64_t budget_ms =
      left_ms <= 0 ? 1 : static_cast<std::uint64_t>(left_ms);
  return deadline_ms == 0 ? budget_ms : std::min(deadline_ms, budget_ms);
}
}  // namespace

void encode_channel_config(xdr::Encoder& enc, const ChannelConfig& config) {
  enc.put_u32(config.block_size);
  enc.put_bool(config.cache_enabled);
  enc.put_u32(config.expected_readers);
  enc.put_u64(config.max_buffered_bytes);
  enc.put_u64(config.max_unread_bytes);
}

Result<ChannelConfig> decode_channel_config(xdr::Decoder& dec) {
  ChannelConfig config;
  GL_ASSIGN_OR_RETURN(config.block_size, dec.u32());
  GL_ASSIGN_OR_RETURN(config.cache_enabled, dec.boolean());
  GL_ASSIGN_OR_RETURN(config.expected_readers, dec.u32());
  GL_ASSIGN_OR_RETURN(config.max_buffered_bytes, dec.u64());
  GL_ASSIGN_OR_RETURN(config.max_unread_bytes, dec.u64());
  if (config.block_size == 0) {
    return invalid_argument("channel block size must be positive");
  }
  return config;
}

GridBufferServer::GridBufferServer(std::string cache_dir,
                                   net::Transport& transport,
                                   net::Endpoint bind,
                                   net::WireFormat format)
    : store_(std::move(cache_dir)),
      rpc_(transport, std::move(bind), format),
      forwarder_(transport) {
  register_handlers();
}

void GridBufferServer::set_broadcast(
    const std::string& channel, const ChannelConfig& config,
    std::vector<multicast::RelayNode> children) {
  MutexLock lock(mu_);
  broadcast_[channel] = Broadcast{config, std::move(children)};
}

GridBufferServer::~GridBufferServer() { stop(); }

void GridBufferServer::stop() {
  store_.shutdown_all();
  rpc_.stop();
}

void GridBufferServer::register_handlers() {
  rpc_.register_method(
      method_id(Method::kOpenWrite),
      [this](ByteSpan request, const net::RpcContext&) -> Result<Bytes> {
        xdr::Decoder dec(request);
        GL_ASSIGN_OR_RETURN(const std::string channel, dec.string());
        GL_ASSIGN_OR_RETURN(const ChannelConfig config,
                            decode_channel_config(dec));
        GL_ASSIGN_OR_RETURN(auto chan, store_.open(channel, config));
        if (chan->writer_closed()) {
          return failed_precondition(
              strings::cat("channel ", channel, " was already closed"));
        }
        return Bytes{};
      });
  rpc_.register_method(
      method_id(Method::kWrite),
      [this](ByteSpan request, const net::RpcContext&) -> Result<Bytes> {
        xdr::Decoder dec(request);
        GL_ASSIGN_OR_RETURN(const std::string channel, dec.string());
        GL_ASSIGN_OR_RETURN(const std::uint64_t offset, dec.u64());
        GL_ASSIGN_OR_RETURN(const Bytes data, dec.bytes());
        GL_ASSIGN_OR_RETURN(auto chan, store_.find(channel));
        GL_RETURN_IF_ERROR(chan->write(offset, data));
        // Broadcast channels also fan the block out down the relay tree.
        // The route is copied under the lock; the forwards block outside.
        std::vector<multicast::RelayNode> children;
        ChannelConfig fan_config;
        {
          MutexLock lock(mu_);
          const auto it = broadcast_.find(channel);
          if (it != broadcast_.end()) {
            children = it->second.children;
            fan_config = it->second.config;
          }
        }
        if (!children.empty()) {
          std::vector<std::string> dead;
          multicast::relay_block(
              forwarder_, children, method_id(Method::kRelayWrite),
              [&](const multicast::RelayNode& child) {
                return relay_write_request(child, fan_config, offset, data);
              },
              dead);
          if (!dead.empty()) {
            GL_LOG(kWarn, "grid buffer broadcast ", channel, ": ",
                   dead.size(), " machine(s) unreachable; their local ",
                   "readers will miss this block");
          }
        }
        return Bytes{};
      });
  rpc_.register_method(
      method_id(Method::kCloseWrite),
      [this](ByteSpan request, const net::RpcContext&) -> Result<Bytes> {
        xdr::Decoder dec(request);
        GL_ASSIGN_OR_RETURN(const std::string channel, dec.string());
        GL_ASSIGN_OR_RETURN(auto chan, store_.find(channel));
        chan->close_writer();
        std::vector<multicast::RelayNode> children;
        ChannelConfig fan_config;
        {
          MutexLock lock(mu_);
          const auto it = broadcast_.find(channel);
          if (it != broadcast_.end()) {
            children = it->second.children;
            fan_config = it->second.config;
          }
        }
        if (!children.empty()) {
          std::vector<std::string> dead;
          multicast::relay_block(
              forwarder_, children, method_id(Method::kRelayClose),
              [&](const multicast::RelayNode& child) {
                return relay_close_request(child, fan_config);
              },
              dead);
          if (!dead.empty()) {
            GL_LOG(kWarn, "grid buffer broadcast ", channel, ": close did ",
                   "not reach ", dead.size(), " machine(s)");
          }
        }
        return Bytes{};
      });
  rpc_.register_method(
      method_id(Method::kOpenRead),
      [this](ByteSpan request, const net::RpcContext&) -> Result<Bytes> {
        xdr::Decoder dec(request);
        GL_ASSIGN_OR_RETURN(const std::string channel, dec.string());
        GL_ASSIGN_OR_RETURN(const ChannelConfig config,
                            decode_channel_config(dec));
        GL_ASSIGN_OR_RETURN(auto chan, store_.open(channel, config));
        xdr::Encoder enc;
        enc.put_u64(chan->add_reader());
        return std::move(enc).take();
      });
  // lint: no-admission (read-blocks-until-written: a reader legitimately
  // parks here until its writer produces data; holding admission capacity
  // for the stall would starve the very writes that unblock it)
  rpc_.register_method_unadmitted(
      method_id(Method::kRead),
      [this](ByteSpan request, const net::RpcContext&) -> Result<Bytes> {
        xdr::Decoder dec(request);
        GL_ASSIGN_OR_RETURN(const std::string channel, dec.string());
        GL_ASSIGN_OR_RETURN(const std::uint64_t reader_id, dec.u64());
        GL_ASSIGN_OR_RETURN(const std::uint64_t offset, dec.u64());
        GL_ASSIGN_OR_RETURN(const std::uint32_t length, dec.u32());
        GL_ASSIGN_OR_RETURN(const std::uint64_t deadline_ms, dec.u64());
        GL_ASSIGN_OR_RETURN(auto chan, store_.find(channel));
        auto result = chan->read(reader_id, offset, length,
                                 clamp_to_budget_ms(deadline_ms));
        if (!result.is_ok() &&
            result.status().code() == ErrorCode::kTimeout &&
            deadline_expired()) {
          return deadline_exceeded(strings::cat(
              "channel ", channel, ": budget exhausted blocked at offset ",
              offset));
        }
        GL_RETURN_IF_ERROR(result.status());
        xdr::Encoder enc;
        enc.put_bool(result->eof);
        enc.put_u64(result->frontier);
        enc.put_bytes(result->data);
        return std::move(enc).take();
      });
  rpc_.register_method(
      method_id(Method::kCloseRead),
      [this](ByteSpan request, const net::RpcContext&) -> Result<Bytes> {
        xdr::Decoder dec(request);
        GL_ASSIGN_OR_RETURN(const std::string channel, dec.string());
        GL_ASSIGN_OR_RETURN(const std::uint64_t reader_id, dec.u64());
        GL_ASSIGN_OR_RETURN(auto chan, store_.find(channel));
        chan->remove_reader(reader_id);
        return Bytes{};
      });
  // lint: no-admission (wait_for_eof parks until the writer closes — the
  // same read-blocks-until-written semantics as kRead)
  rpc_.register_method_unadmitted(
      method_id(Method::kStat),
      [this](ByteSpan request, const net::RpcContext&) -> Result<Bytes> {
        xdr::Decoder dec(request);
        GL_ASSIGN_OR_RETURN(const std::string channel, dec.string());
        GL_ASSIGN_OR_RETURN(const bool wait_for_eof, dec.boolean());
        GL_ASSIGN_OR_RETURN(const std::uint64_t deadline_ms, dec.u64());
        GL_ASSIGN_OR_RETURN(auto chan, store_.find(channel));
        auto result = chan->stat(wait_for_eof, clamp_to_budget_ms(deadline_ms));
        if (!result.is_ok() &&
            result.status().code() == ErrorCode::kTimeout &&
            deadline_expired()) {
          return deadline_exceeded(strings::cat(
              "channel ", channel, ": budget exhausted awaiting eof"));
        }
        GL_RETURN_IF_ERROR(result.status());
        xdr::Encoder enc;
        enc.put_bool(result->eof);
        enc.put_u64(result->frontier);
        return std::move(enc).take();
      });
  rpc_.register_method(
      method_id(Method::kRemove),
      [this](ByteSpan request, const net::RpcContext&) -> Result<Bytes> {
        xdr::Decoder dec(request);
        GL_ASSIGN_OR_RETURN(const std::string channel, dec.string());
        GL_RETURN_IF_ERROR(store_.remove(channel));
        return Bytes{};
      });
  rpc_.register_method(
      method_id(Method::kRelayWrite),
      [this](ByteSpan request, const net::RpcContext&) -> Result<Bytes> {
        xdr::Decoder dec(request);
        GL_ASSIGN_OR_RETURN(const multicast::RelayNode node,
                            multicast::decode_node(dec));
        GL_ASSIGN_OR_RETURN(ChannelConfig config,
                            decode_channel_config(dec));
        GL_ASSIGN_OR_RETURN(const std::uint64_t offset, dec.u64());
        GL_ASSIGN_OR_RETURN(const Bytes data, dec.bytes());

        const std::string host = rpc_.endpoint().host;
        obs::Span span(obs::SpanKind::kRelay, strings::cat("relay:", host));
        span.add_attr("channel", node.path);
        span.add_attr("children", strings::cat(node.children.size()));

        const std::uint64_t cumulative =
            relayed_bytes_.fetch_add(data.size(),
                                     std::memory_order_relaxed) +
            data.size();
        GL_RETURN_IF_ERROR(
            multicast::consult_relay_fault(host, cumulative));

        // Same channel, node-local reader count: the store only requires
        // block_size/cache agreement across machines.
        if (node.readers != 0) config.expected_readers = node.readers;
        GL_ASSIGN_OR_RETURN(auto chan, store_.open(node.path, config));
        GL_RETURN_IF_ERROR(chan->write(offset, data));

        std::vector<std::string> dead;
        multicast::relay_block(
            forwarder_, node.children, method_id(Method::kRelayWrite),
            [&](const multicast::RelayNode& child) {
              return relay_write_request(child, config, offset, data);
            },
            dead);
        xdr::Encoder enc;
        multicast::encode_dead_hosts(enc, dead);
        return std::move(enc).take();
      });
  rpc_.register_method(
      method_id(Method::kRelayClose),
      [this](ByteSpan request, const net::RpcContext&) -> Result<Bytes> {
        xdr::Decoder dec(request);
        GL_ASSIGN_OR_RETURN(const multicast::RelayNode node,
                            multicast::decode_node(dec));
        GL_ASSIGN_OR_RETURN(ChannelConfig config,
                            decode_channel_config(dec));

        const std::string host = rpc_.endpoint().host;
        GL_RETURN_IF_ERROR(multicast::consult_relay_fault(
            host, relayed_bytes_.load(std::memory_order_relaxed)));

        if (node.readers != 0) config.expected_readers = node.readers;
        GL_ASSIGN_OR_RETURN(auto chan, store_.open(node.path, config));
        chan->close_writer();

        std::vector<std::string> dead;
        multicast::relay_block(
            forwarder_, node.children, method_id(Method::kRelayClose),
            [&](const multicast::RelayNode& child) {
              return relay_close_request(child, config);
            },
            dead);
        xdr::Encoder enc;
        multicast::encode_dead_hosts(enc, dead);
        return std::move(enc).take();
      });
}

}  // namespace griddles::gridbuffer
