#include "src/gridbuffer/server.h"

#include "src/common/strings.h"
#include "src/xdr/codec.h"

namespace griddles::gridbuffer {

void encode_channel_config(xdr::Encoder& enc, const ChannelConfig& config) {
  enc.put_u32(config.block_size);
  enc.put_bool(config.cache_enabled);
  enc.put_u32(config.expected_readers);
  enc.put_u64(config.max_buffered_bytes);
}

Result<ChannelConfig> decode_channel_config(xdr::Decoder& dec) {
  ChannelConfig config;
  GL_ASSIGN_OR_RETURN(config.block_size, dec.u32());
  GL_ASSIGN_OR_RETURN(config.cache_enabled, dec.boolean());
  GL_ASSIGN_OR_RETURN(config.expected_readers, dec.u32());
  GL_ASSIGN_OR_RETURN(config.max_buffered_bytes, dec.u64());
  if (config.block_size == 0) {
    return invalid_argument("channel block size must be positive");
  }
  return config;
}

GridBufferServer::GridBufferServer(std::string cache_dir,
                                   net::Transport& transport,
                                   net::Endpoint bind,
                                   net::WireFormat format)
    : store_(std::move(cache_dir)),
      rpc_(transport, std::move(bind), format) {
  register_handlers();
}

GridBufferServer::~GridBufferServer() { stop(); }

void GridBufferServer::stop() {
  store_.shutdown_all();
  rpc_.stop();
}

void GridBufferServer::register_handlers() {
  rpc_.register_method(
      method_id(Method::kOpenWrite),
      [this](ByteSpan request, const net::RpcContext&) -> Result<Bytes> {
        xdr::Decoder dec(request);
        GL_ASSIGN_OR_RETURN(const std::string channel, dec.string());
        GL_ASSIGN_OR_RETURN(const ChannelConfig config,
                            decode_channel_config(dec));
        GL_ASSIGN_OR_RETURN(auto chan, store_.open(channel, config));
        if (chan->writer_closed()) {
          return failed_precondition(
              strings::cat("channel ", channel, " was already closed"));
        }
        return Bytes{};
      });
  rpc_.register_method(
      method_id(Method::kWrite),
      [this](ByteSpan request, const net::RpcContext&) -> Result<Bytes> {
        xdr::Decoder dec(request);
        GL_ASSIGN_OR_RETURN(const std::string channel, dec.string());
        GL_ASSIGN_OR_RETURN(const std::uint64_t offset, dec.u64());
        GL_ASSIGN_OR_RETURN(const Bytes data, dec.bytes());
        GL_ASSIGN_OR_RETURN(auto chan, store_.find(channel));
        GL_RETURN_IF_ERROR(chan->write(offset, data));
        return Bytes{};
      });
  rpc_.register_method(
      method_id(Method::kCloseWrite),
      [this](ByteSpan request, const net::RpcContext&) -> Result<Bytes> {
        xdr::Decoder dec(request);
        GL_ASSIGN_OR_RETURN(const std::string channel, dec.string());
        GL_ASSIGN_OR_RETURN(auto chan, store_.find(channel));
        chan->close_writer();
        return Bytes{};
      });
  rpc_.register_method(
      method_id(Method::kOpenRead),
      [this](ByteSpan request, const net::RpcContext&) -> Result<Bytes> {
        xdr::Decoder dec(request);
        GL_ASSIGN_OR_RETURN(const std::string channel, dec.string());
        GL_ASSIGN_OR_RETURN(const ChannelConfig config,
                            decode_channel_config(dec));
        GL_ASSIGN_OR_RETURN(auto chan, store_.open(channel, config));
        xdr::Encoder enc;
        enc.put_u64(chan->add_reader());
        return std::move(enc).take();
      });
  rpc_.register_method(
      method_id(Method::kRead),
      [this](ByteSpan request, const net::RpcContext&) -> Result<Bytes> {
        xdr::Decoder dec(request);
        GL_ASSIGN_OR_RETURN(const std::string channel, dec.string());
        GL_ASSIGN_OR_RETURN(const std::uint64_t reader_id, dec.u64());
        GL_ASSIGN_OR_RETURN(const std::uint64_t offset, dec.u64());
        GL_ASSIGN_OR_RETURN(const std::uint32_t length, dec.u32());
        GL_ASSIGN_OR_RETURN(const std::uint64_t deadline_ms, dec.u64());
        GL_ASSIGN_OR_RETURN(auto chan, store_.find(channel));
        GL_ASSIGN_OR_RETURN(const ReadResult result,
                            chan->read(reader_id, offset, length,
                                       deadline_ms));
        xdr::Encoder enc;
        enc.put_bool(result.eof);
        enc.put_u64(result.frontier);
        enc.put_bytes(result.data);
        return std::move(enc).take();
      });
  rpc_.register_method(
      method_id(Method::kCloseRead),
      [this](ByteSpan request, const net::RpcContext&) -> Result<Bytes> {
        xdr::Decoder dec(request);
        GL_ASSIGN_OR_RETURN(const std::string channel, dec.string());
        GL_ASSIGN_OR_RETURN(const std::uint64_t reader_id, dec.u64());
        GL_ASSIGN_OR_RETURN(auto chan, store_.find(channel));
        chan->remove_reader(reader_id);
        return Bytes{};
      });
  rpc_.register_method(
      method_id(Method::kStat),
      [this](ByteSpan request, const net::RpcContext&) -> Result<Bytes> {
        xdr::Decoder dec(request);
        GL_ASSIGN_OR_RETURN(const std::string channel, dec.string());
        GL_ASSIGN_OR_RETURN(const bool wait_for_eof, dec.boolean());
        GL_ASSIGN_OR_RETURN(const std::uint64_t deadline_ms, dec.u64());
        GL_ASSIGN_OR_RETURN(auto chan, store_.find(channel));
        GL_ASSIGN_OR_RETURN(const ReadResult result,
                            chan->stat(wait_for_eof, deadline_ms));
        xdr::Encoder enc;
        enc.put_bool(result.eof);
        enc.put_u64(result.frontier);
        return std::move(enc).take();
      });
  rpc_.register_method(
      method_id(Method::kRemove),
      [this](ByteSpan request, const net::RpcContext&) -> Result<Bytes> {
        xdr::Decoder dec(request);
        GL_ASSIGN_OR_RETURN(const std::string channel, dec.string());
        GL_RETURN_IF_ERROR(store_.remove(channel));
        return Bytes{};
      });
}

}  // namespace griddles::gridbuffer
