#include "src/gridbuffer/file_client.h"

#include "src/common/strings.h"

namespace griddles::gridbuffer {

Result<std::unique_ptr<GridBufferFileClient>> GridBufferFileClient::open(
    net::Transport& transport, const net::Endpoint& server,
    const std::string& channel, vfs::OpenFlags flags,
    const ChannelConfig& config, const Tuning& tuning) {
  if (flags.read && flags.write) {
    return unimplemented(
        "grid buffer channels are unidirectional; open read xor write");
  }
  if (flags.write) {
    GridBufferWriter::Options options;
    options.channel = config;
    options.window_blocks = tuning.writer_window_blocks;
    options.flusher_threads = tuning.writer_flusher_threads;
    GL_ASSIGN_OR_RETURN(auto writer, GridBufferWriter::open(
                                         transport, server, channel,
                                         options));
    return std::unique_ptr<GridBufferFileClient>(new GridBufferFileClient(
        std::move(writer), nullptr, channel));
  }
  GridBufferReader::Options options;
  options.channel = config;
  options.read_deadline_ms = tuning.read_deadline_ms;
  GL_ASSIGN_OR_RETURN(auto reader,
                      GridBufferReader::open(transport, server, channel,
                                             options));
  return std::unique_ptr<GridBufferFileClient>(new GridBufferFileClient(
      nullptr, std::move(reader), channel));
}

Result<std::size_t> GridBufferFileClient::read(MutableByteSpan out) {
  if (!reader_) return permission_denied("channel open for writing only");
  return reader_->read(out);
}

Result<std::size_t> GridBufferFileClient::write(ByteSpan data) {
  if (!writer_) return permission_denied("channel open for reading only");
  GL_RETURN_IF_ERROR(writer_->write(data));
  return data.size();
}

Result<std::uint64_t> GridBufferFileClient::seek(std::int64_t offset,
                                                 vfs::Whence whence) {
  if (reader_) {
    return reader_->seek(offset, static_cast<std::uint8_t>(whence));
  }
  // Writers are sequential streams; only a no-op seek is allowed.
  const std::uint64_t pos = writer_->bytes_written();
  if ((whence == vfs::Whence::kCurrent && offset == 0) ||
      (whence == vfs::Whence::kSet &&
       offset == static_cast<std::int64_t>(pos))) {
    return pos;
  }
  return unimplemented("grid buffer writers are sequential; cannot seek");
}

std::uint64_t GridBufferFileClient::tell() const {
  return reader_ ? reader_->tell() : writer_->bytes_written();
}

Result<std::uint64_t> GridBufferFileClient::size() {
  if (reader_) return reader_->size();
  return writer_->bytes_written();
}

Status GridBufferFileClient::flush() {
  return writer_ ? writer_->flush() : Status::ok();
}

Status GridBufferFileClient::close() {
  return writer_ ? writer_->close() : reader_->close();
}

std::string GridBufferFileClient::describe() const {
  return strings::cat("gridbuffer:", channel_,
                      writer_ ? " (writer)" : " (reader)");
}

}  // namespace griddles::gridbuffer
