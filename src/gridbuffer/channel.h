// Grid Buffer channel store: the server-side state of the paper's direct
// writer->reader coupling (§3.1, §4).
//
// Data blocks live in a hash table ("data is stored in a hash table
// rather than a sequential buffer") so writes and reads may be out of
// order. As every registered reader consumes a block it is deleted from
// the table; when the channel has a cache file, consumed (or overflowed)
// blocks survive there, which is what lets a reader seek backwards and
// re-read an already-streamed region — transparently, as DARLAM does in
// §5.3. Reads past the written frontier block until the writer produces
// the data or closes the channel.
#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/clock.h"
#include "src/common/status.h"
#include "src/common/thread_annotations.h"

namespace griddles::gridbuffer {

/// Channel parameters, fixed at creation (first open).
struct ChannelConfig {
  std::uint32_t block_size = 4096;   // the paper's typical write size
  bool cache_enabled = true;
  std::uint32_t expected_readers = 1;
  /// Hash-table occupancy (bytes) above which blocks spill to the cache
  /// file (cache on) or the writer blocks (cache off).
  std::uint64_t max_buffered_bytes = 16u << 20;
  /// Opt-in writer backpressure (DESIGN.md §14): when nonzero, a write
  /// that would put the frontier more than this many bytes ahead of the
  /// slowest reader blocks until readers catch up (even when the spill
  /// cache would absorb the table overflow). 0 = unbounded. Off by
  /// default: the bound only engages once every expected reader has
  /// registered, and pure write-then-read workloads would deadlock.
  std::uint64_t max_unread_bytes = 0;
};

/// Result of a read: data (possibly shorter than asked), or EOF.
struct ReadResult {
  Bytes data;
  bool eof = false;
  std::uint64_t frontier = 0;  // bytes written so far (high-water mark)
};

/// One writer-to-readers stream. Thread-safe; reads block.
class Channel {
 public:
  Channel(std::string name, ChannelConfig config, std::string cache_path);
  ~Channel();

  const std::string& name() const noexcept { return name_; }
  const ChannelConfig& config() const noexcept { return config_; }

  /// Registers a reader; the id scopes consumption tracking.
  std::uint64_t add_reader();
  void remove_reader(std::uint64_t reader_id);

  /// Stores one block. `offset` must be block-aligned and `data` no
  /// longer than block_size. Blocks (backpressure) when the table is full
  /// and nothing can spill. Rewriting a block with more data extends it.
  Status write(std::uint64_t offset, ByteSpan data);

  /// Declares end-of-stream; wakes blocked readers.
  void close_writer();
  bool writer_closed() const;

  /// Marks the writer as dead mid-stream (injected peer death or a real
  /// producer crash): further writes fail with kDataLoss, and readers may
  /// drain everything already written — table and cache — before reads
  /// past the frontier fail with kDataLoss instead of blocking.
  void fail_writer(const std::string& reason);
  bool writer_failed() const;

  /// Reads up to `length` bytes at `offset` for `reader_id`, blocking
  /// until data exists, the writer closes (eof), `deadline_ms` wall
  /// milliseconds elapse (kTimeout; 0 = wait forever), or shutdown().
  Result<ReadResult> read(std::uint64_t reader_id, std::uint64_t offset,
                          std::uint32_t length, std::uint64_t deadline_ms);

  /// Stream status; with `wait_for_eof` blocks until the writer closes.
  Result<ReadResult> stat(bool wait_for_eof, std::uint64_t deadline_ms);

  /// Wakes every blocked operation with kAborted (service shutdown).
  void shutdown();

  /// Bytes currently resident in the hash table (tests/metrics).
  std::uint64_t buffered_bytes() const;
  /// Blocks currently resident in the hash table.
  std::size_t buffered_blocks() const;

 private:
  struct Reader {
    std::uint64_t consumed_upto = 0;  // stream offset fully consumed
  };

  /// Lowest offset any present-or-future reader still needs. Zero until
  /// expected_readers have registered (so an early writer can't outrun
  /// late-joining readers).
  std::uint64_t min_consumed_locked() const REQUIRES(mu_);

  /// Drops fully-consumed blocks from the table; spills to cache first
  /// when enabled.
  void evict_locked() REQUIRES(mu_);

  /// Appends `data` at `offset` in the cache file.
  Status cache_write_locked(std::uint64_t offset, ByteSpan data)
      REQUIRES(mu_);
  /// Reads `length` bytes at `offset` from the cache file.
  Result<Bytes> cache_read_locked(std::uint64_t offset,
                                  std::uint32_t length) const REQUIRES(mu_);

  const std::string name_;
  const ChannelConfig config_;
  const std::string cache_path_;

  // Held while consulting the armed fault plan on the write path; never
  // acquire Channel::mu_ from inside fault-plan machinery.
  mutable Mutex mu_ ACQUIRED_BEFORE("Plan::mu_");
  CondVar cv_;

  // block start -> data
  std::unordered_map<std::uint64_t, Bytes> blocks_ GUARDED_BY(mu_);
  // every write, ordered
  std::map<std::uint64_t, std::uint32_t> block_sizes_ GUARDED_BY(mu_);
  std::uint64_t table_bytes_ GUARDED_BY(mu_) = 0;
  std::uint64_t evicted_upto_ GUARDED_BY(mu_) = 0;  // eviction resume point
  std::uint64_t frontier_ GUARDED_BY(mu_) = 0;
  bool writer_closed_ GUARDED_BY(mu_) = false;
  bool writer_failed_ GUARDED_BY(mu_) = false;
  bool shutdown_ GUARDED_BY(mu_) = false;

  std::map<std::uint64_t, Reader> readers_ GUARDED_BY(mu_);
  std::uint64_t next_reader_id_ GUARDED_BY(mu_) = 1;
  std::uint32_t readers_seen_ GUARDED_BY(mu_) = 0;

  mutable int cache_fd_ GUARDED_BY(mu_) = -1;  // lazily opened
};

/// The channel registry a Grid Buffer server owns.
class ChannelStore {
 public:
  /// `cache_dir`: directory for per-channel cache files.
  explicit ChannelStore(std::string cache_dir);

  /// Finds or creates a channel. The first creator's config sticks; a
  /// later open with a different block size fails.
  Result<std::shared_ptr<Channel>> open(const std::string& name,
                                        const ChannelConfig& config);

  /// Finds an existing channel.
  Result<std::shared_ptr<Channel>> find(const std::string& name);

  /// Removes a drained channel (writer closed, no readers) to reclaim
  /// memory; kFailedPrecondition if still active.
  Status remove(const std::string& name);

  /// Shuts every channel down (wakes all blocked ops).
  void shutdown_all();

  std::vector<std::string> channel_names() const;

 private:
  const std::string cache_dir_;
  mutable Mutex mu_;
  std::map<std::string, std::shared_ptr<Channel>> channels_ GUARDED_BY(mu_);
};

}  // namespace griddles::gridbuffer
