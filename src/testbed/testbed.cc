#include "src/testbed/testbed.h"

#include <algorithm>
#include <filesystem>

#include "src/common/strings.h"

namespace griddles::testbed {

const std::vector<MachineSpec>& paper_machines() {
  // Speeds: C-CAM = 2800 work units over the Table 3 C-CAM seconds.
  //   dione 1701 s, brecca 994 s, freak 1831 s, bouscat 4049 s,
  //   vpac27 3922 s. jagan/koume00 scaled by clock within the P3 family.
  // Disk rates: dione and vpac27 get slow effective disks — the paper
  // singles them out as the machines where concurrent runs lose to
  // sequential ones "because of the relative speed of the computation
  // and the IO on these two machines" (§5.3).
  static const std::vector<MachineSpec> machines = {
      {"dione", "monash", "AU", 2800.0 / 1701, 4.0, 0.0039,
       "Pentium 4, 1500 MHz, 256 MB, Redhat Linux 7.3"},
      {"jagan", "monash", "AU", 0.35, 0.9, 0.0003,
       "Pentium 3, 350 MHz, 128 MB, Redhat Linux 7.3"},
      {"vpac27", "vpac", "AU", 2800.0 / 3922, 2.5, 0.0048,
       "Pentium 3, 997 MHz, 256 MB, Red Hat Linux 7.3"},
      {"brecca", "vpac", "AU", 2800.0 / 994, 9.0, 0.0002,
       "Intel Xeon, 2.8 GHz, 2048 MB, Redhat Linux 7.3"},
      {"freak", "ucsd", "US", 2800.0 / 1831, 3.5, 0.0005,
       "Athlon, 700 MHz, 256 MB, i386, Debian"},
      {"bouscat", "cardiff", "UK", 2800.0 / 4049, 1.6, 0.0005,
       "Pentium 3, 1 GHz, 1544 MB, Red Hat Linux 7.2"},
      {"koume00", "hpcc-jp", "JP", 0.97, 5.0, 0.0020,
       "Pentium 3, 1400 MHz, 1024 MB, Red Hat Linux 7.3"},
  };
  return machines;
}

Result<MachineSpec> find_machine(const std::string& name) {
  for (const MachineSpec& machine : paper_machines()) {
    if (machine.name == name) return machine;
  }
  return not_found(strings::cat("no testbed machine named '", name, "'"));
}

LinkSpec link_between(const MachineSpec& a, const MachineSpec& b) {
  if (a.name == b.name) return {0, 0};  // loopback: unconstrained
  if (a.site == b.site) return {0.0002, 12.0};  // 100 Mbit LAN
  // Both Melbourne: Monash <-> VPAC metro link.
  const bool metro = (a.site == "monash" && b.site == "vpac") ||
                     (a.site == "vpac" && b.site == "monash");
  if (metro) return {0.002, 3.6};
  // International, one-way latency (2003-era AARNet paths).
  auto intl = [](const std::string& ca, const std::string& cb) -> LinkSpec {
    auto pair_is = [&](const char* x, const char* y) {
      return (ca == x && cb == y) || (ca == y && cb == x);
    };
    if (pair_is("AU", "US")) return {0.090, 0.84};
    if (pair_is("AU", "UK")) return {0.165, 0.40};
    if (pair_is("AU", "JP")) return {0.060, 0.90};
    if (pair_is("US", "UK")) return {0.045, 1.2};
    if (pair_is("US", "JP")) return {0.060, 1.0};
    if (pair_is("UK", "JP")) return {0.140, 0.5};
    return {0.150, 0.5};
  };
  return intl(a.country, b.country);
}

void install_paper_links(net::LinkTable& links) {
  const auto& machines = paper_machines();
  for (std::size_t i = 0; i < machines.size(); ++i) {
    for (std::size_t j = i + 1; j < machines.size(); ++j) {
      const LinkSpec spec = link_between(machines[i], machines[j]);
      net::LinkModel model;
      model.latency = from_seconds_d(spec.latency_s);
      model.bandwidth_bytes_per_sec =
          spec.mb_per_s > 0 ? spec.mb_per_s * 1e6 : 0;
      links.set_link(machines[i].name, machines[j].name, model);
    }
  }
}

Result<nws::LinkEstimate> StaticModelEstimator::estimate(
    const std::string& dst_host) {
  GL_ASSIGN_OR_RETURN(const MachineSpec origin, find_machine(origin_));
  GL_ASSIGN_OR_RETURN(const MachineSpec dst, find_machine(dst_host));
  const LinkSpec spec = link_between(origin, dst);
  // Configured model numbers, not measurements: trusted less than a
  // fresh probe, but they never decay.
  return nws::LinkEstimate{spec.latency_s,
                           spec.mb_per_s > 0 ? spec.mb_per_s * 1e6 : 0.0,
                           0.5};
}

MachineRuntime::MachineRuntime(MachineSpec spec, Clock& clock)
    : spec_(std::move(spec)), clock_(clock) {}

void MachineRuntime::compute(double work_units) {
  load_.fetch_add(1);
  double remaining = work_units;
  // One quantum is nominally one model second of *solo* compute; the
  // wait stretches by the instantaneous multiprogramming level,
  // approximating processor sharing at quantum granularity. Under a
  // heavily compressed clock the quantum grows so each sleep is at least
  // ~2 ms of wall time (shorter sleeps are dominated by timer overhead),
  // and sleeping to an absolute target stops overshoot accumulating.
  const double min_quantum_s =
      std::max(1.0, 0.002 / clock_.wall_seconds_per_model_second());
  const double quantum_units = spec_.speed * min_quantum_s;
  Duration target = clock_.now();
  while (remaining > 0) {
    const double step = std::min(remaining, quantum_units);
    const int load = std::max(1, load_.load());
    target += from_seconds_d(step / spec_.speed *
                             static_cast<double>(load));
    clock_.sleep_until(target);
    remaining -= step;
  }
  load_.fetch_sub(1);
}

void MachineRuntime::disk_transfer(std::uint64_t bytes) {
  if (bytes == 0 || spec_.disk_mb_per_s <= 0) return;
  const Duration cost =
      from_seconds_d(static_cast<double>(bytes) /
                     (spec_.disk_mb_per_s * 1e6));
  Duration done;
  {
    MutexLock lock(disk_mu_);
    const Duration start = std::max(clock_.now(), disk_free_at_);
    disk_free_at_ = start + cost;
    done = disk_free_at_;
  }
  // Only block once the accumulated disk debt is worth a real sleep;
  // disk_free_at_ keeps exact books, so short debts are paid (slept)
  // by whichever later transfer pushes them past the threshold.
  const Duration threshold = from_seconds_d(
      0.002 / clock_.wall_seconds_per_model_second());
  if (done - clock_.now() > threshold) clock_.sleep_until(done);
}

TestbedRuntime::TestbedRuntime(double wall_per_model, std::string work_root,
                               double byte_scale)
    : clock_(wall_per_model), network_(clock_),
      work_root_(std::move(work_root)), byte_scale_(byte_scale) {
  install_paper_links(network_.links());
  if (byte_scale_ != 1.0) {
    // Scaled-down real data must see scaled-down bandwidth so transfers
    // take the same model time.
    const auto& machines = paper_machines();
    for (std::size_t i = 0; i < machines.size(); ++i) {
      for (std::size_t j = i + 1; j < machines.size(); ++j) {
        const LinkSpec spec = link_between(machines[i], machines[j]);
        net::LinkModel model;
        model.latency = from_seconds_d(spec.latency_s);
        model.bandwidth_bytes_per_sec =
            spec.mb_per_s > 0 ? spec.mb_per_s * 1e6 / byte_scale_ : 0;
        network_.links().set_link(machines[i].name, machines[j].name, model);
      }
    }
  }
  std::error_code ec;
  std::filesystem::create_directories(work_root_, ec);
}

Result<MachineRuntime*> TestbedRuntime::machine(const std::string& name) {
  MutexLock lock(mu_);
  auto& slot = machines_[name];
  if (!slot) {
    GL_ASSIGN_OR_RETURN(MachineSpec spec, find_machine(name));
    // Keep model-time costs invariant under byte scaling.
    spec.disk_mb_per_s /= byte_scale_;
    spec.ipc_units_per_block *= byte_scale_;
    slot = std::make_unique<MachineRuntime>(spec, clock_);
  }
  return slot.get();
}

Result<std::string> TestbedRuntime::machine_dir(const std::string& name) {
  GL_RETURN_IF_ERROR(find_machine(name).status());
  const std::filesystem::path dir = std::filesystem::path(work_root_) / name;
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return io_error(strings::cat("machine dir ", dir.string(), ": ",
                                 ec.message()));
  }
  return dir.string();
}

}  // namespace griddles::testbed
