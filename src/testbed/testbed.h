// The paper's Table 1 testbed, as a model.
//
// Machine compute speeds are calibrated from Table 3 (the C-CAM column):
// speed = C-CAM work units / measured seconds, with C-CAM fixed at 2800
// units. Machines absent from Table 3 (jagan, koume00) are extrapolated
// from their clock speeds relative to same-family machines. Disk rates
// and WAN link parameters are fitted so Table 4's file-vs-buffer gaps and
// Table 5's file-copy durations land near the paper's (see DESIGN.md §5).
//
// MachineRuntime executes synthetic app kernels against a model Clock:
// compute time-shares the CPU among concurrent processes (which is what
// produces Table 4's multiprogramming behaviour) and local file traffic
// serializes through a modelled disk.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/clock.h"
#include "src/common/thread_annotations.h"
#include "src/net/inproc.h"
#include "src/nws/forecast.h"

namespace griddles::testbed {

struct MachineSpec {
  std::string name;
  std::string site;     // machines at one site share a LAN
  std::string country;
  double speed = 1.0;          // work units per model second
  double disk_mb_per_s = 20;   // effective local file streaming rate
  /// CPU cost (work units) of pushing one 4 KiB block through the Grid
  /// Buffer service stack on this machine — the SOAP/Web-Services tax of
  /// §4, fitted per machine so Table 4's dione/vpac27 exceptions appear.
  double ipc_units_per_block = 0.001;
  std::string description;     // the Table 1 hardware line
};

/// The seven Table 1 machines with calibrated parameters.
const std::vector<MachineSpec>& paper_machines();

Result<MachineSpec> find_machine(const std::string& name);

/// One-way latency and bandwidth between two sites (2003-era WAN fits).
struct LinkSpec {
  double latency_s = 0;
  double mb_per_s = 0;
};

LinkSpec link_between(const MachineSpec& a, const MachineSpec& b);

/// Installs every machine-pair link of the paper testbed into a table.
void install_paper_links(net::LinkTable& links);

/// LinkEstimator over the static paper link table, as seen from
/// `origin`: configured model numbers, no measurements. This is the
/// NWS-outage fallback (nws::FallbackLinkEstimator) and the estimator
/// of record when no Monitor runs at all. Stateless and thread-safe.
class StaticModelEstimator final : public nws::LinkEstimator {
 public:
  explicit StaticModelEstimator(std::string origin)
      : origin_(std::move(origin)) {}

  Result<nws::LinkEstimate> estimate(const std::string& dst_host) override;

 private:
  const std::string origin_;
};

/// Real-mode execution resource for one machine.
class MachineRuntime {
 public:
  MachineRuntime(MachineSpec spec, Clock& clock);

  /// Burns `work_units` of CPU under processor sharing: with N runnable
  /// processes each proceeds at speed/N.
  void compute(double work_units);

  /// Charges `bytes` of local disk traffic (serialized per machine).
  void disk_transfer(std::uint64_t bytes);

  const MachineSpec& spec() const noexcept { return spec_; }
  int current_load() const noexcept { return load_.load(); }

 private:
  MachineSpec spec_;
  Clock& clock_;
  std::atomic<int> load_{0};  // lint: not-a-metric (scheduler load probe)
  Mutex disk_mu_;
  Duration disk_free_at_ GUARDED_BY(disk_mu_){0};
};

/// A whole scaled-time testbed: clock, modelled network, machine
/// runtimes, and per-machine scratch directories.
class TestbedRuntime {
 public:
  /// `wall_per_model`: wall seconds per model second (e.g. 1/600.0 runs
  /// ten model minutes per wall second). `work_root`: directory that
  /// receives one subdirectory per machine. `byte_scale`: divide every
  /// real byte count by this factor while keeping model times identical
  /// (machine disk rates and per-block costs are rescaled to match), so a
  /// 180 MB paper file can be replayed as 180/byte_scale MB of real data.
  TestbedRuntime(double wall_per_model, std::string work_root,
                 double byte_scale = 1.0);

  double byte_scale() const noexcept { return byte_scale_; }

  Clock& clock() noexcept { return clock_; }
  net::InProcNetwork& network() noexcept { return network_; }

  /// Lazily creates the runtime for a paper machine.
  Result<MachineRuntime*> machine(const std::string& name);

  /// The machine's working directory (created on first use).
  Result<std::string> machine_dir(const std::string& name);

  /// A transport originating from the machine.
  std::unique_ptr<net::Transport> transport(const std::string& name) {
    return network_.transport(name);
  }

 private:
  ScaledClock clock_;
  net::InProcNetwork network_;
  std::string work_root_;
  double byte_scale_;
  Mutex mu_;
  std::map<std::string, std::unique_ptr<MachineRuntime>> machines_
      GUARDED_BY(mu_);
};

}  // namespace griddles::testbed
