#include "src/remote/advisor.h"

#include <algorithm>
#include <cmath>

#include "src/obs/metrics.h"

namespace griddles::remote {

Advice advise_quiet(std::uint64_t file_size, double access_fraction,
                    const nws::LinkEstimate& link,
                    const AdvisorPolicy& policy) {
  Advice advice;
  const double size = static_cast<double>(file_size);
  const double fraction = std::clamp(access_fraction, 0.0, 1.0);
  const double bandwidth = std::max(1.0, link.bandwidth_bytes_per_sec);
  const double latency = std::max(0.0, link.latency_seconds);

  // Copy plan: chunks flow down `copy_streams` pipelined connections, so
  // round trips overlap with data; cost ≈ startup handshakes + bulk time.
  const double startup_round_trips = 2.0;  // stat + first chunk request
  advice.copy_cost_seconds =
      startup_round_trips * 2.0 * latency + size / bandwidth;

  // Proxy plan: each touched block is a synchronous request/response.
  const double block = static_cast<double>(policy.proxy_block_size);
  const double touched_blocks =
      file_size == 0 ? 0.0 : std::ceil(size * fraction / block);
  advice.proxy_cost_seconds =
      touched_blocks * (2.0 * latency + block / bandwidth);

  const bool copy_forbidden =
      policy.max_copy_bytes != 0 && file_size > policy.max_copy_bytes;
  advice.strategy =
      (!copy_forbidden &&
       advice.copy_cost_seconds <= advice.proxy_cost_seconds)
          ? RemoteStrategy::kCopy
          : RemoteStrategy::kProxy;
  return advice;
}

void record_advice(const Advice& advice) {
  // Decision telemetry: counts per strategy plus the predicted costs, so
  // predicted-vs-actual can be compared against `remote.copy.seconds`.
  // One logical transfer records exactly one decision — a multicast copy
  // to N destinations must not inflate these N-fold.
  auto& registry = obs::MetricsRegistry::global();
  static obs::Counter& copy_decisions =
      registry.counter("advisor.decisions.copy");
  static obs::Counter& proxy_decisions =
      registry.counter("advisor.decisions.proxy");
  static obs::Histogram& predicted_copy_s = registry.histogram(
      "advisor.predicted.copy_s", obs::exponential_bounds(1e-3, 10.0, 8));
  static obs::Histogram& predicted_proxy_s = registry.histogram(
      "advisor.predicted.proxy_s", obs::exponential_bounds(1e-3, 10.0, 8));
  (advice.strategy == RemoteStrategy::kCopy ? copy_decisions
                                            : proxy_decisions)
      .add();
  predicted_copy_s.observe(advice.copy_cost_seconds);
  predicted_proxy_s.observe(advice.proxy_cost_seconds);
}

Advice advise(std::uint64_t file_size, double access_fraction,
              const nws::LinkEstimate& link, const AdvisorPolicy& policy) {
  const Advice advice =
      advise_quiet(file_size, access_fraction, link, policy);
  record_advice(advice);
  return advice;
}

}  // namespace griddles::remote
