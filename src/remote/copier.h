// FileCopier: staged whole-file transfers with parallel streams, the
// GridFTP-style bulk path (paper modes 2 and 5).
//
// Copies move large chunks over several concurrent connections, so their
// cost is dominated by bandwidth rather than round trips — the property
// that makes "run sequentially and copy" beat Grid Buffers on
// high-latency links in Table 5.
#pragma once

#include <cstdint>
#include <string>

#include "src/common/clock.h"
#include "src/net/transport.h"

namespace griddles::remote {

struct CopyStats {
  std::uint64_t bytes = 0;
  double seconds = 0;      // model time
  int streams_used = 0;

  double bytes_per_second() const {
    return seconds > 0 ? static_cast<double>(bytes) / seconds : 0;
  }
};

class FileCopier {
 public:
  struct Options {
    std::uint32_t chunk_size = 1u << 20;
    int parallel_streams = 4;
  };

  FileCopier(net::Transport& transport, Clock& clock, Options options);
  FileCopier(net::Transport& transport, Clock& clock)
      : FileCopier(transport, clock, Options{}) {}

  /// Remote -> local (stage in). Chunks are retried at the same offset on
  /// transient or verifiably-short delivery; when a fault plan is armed
  /// the whole file is checksum-verified against the server and
  /// re-fetched on mismatch, so an injected corruption never reaches the
  /// consumer. Fails with typed codes: kUnavailable (transient exhausted),
  /// kDataLoss (verification kept failing), kNotFound.
  Result<CopyStats> fetch(const net::Endpoint& server,
                          const std::string& remote_path,
                          const std::string& local_path);

  /// Local -> remote (stage out / copy between pipeline stages). Same
  /// retry and verification discipline as fetch().
  Result<CopyStats> push(const std::string& local_path,
                         const net::Endpoint& server,
                         const std::string& remote_path);

 private:
  /// One whole-file attempt; `bytes_out` reports the payload size.
  Status fetch_attempt(const net::Endpoint& server,
                       const std::string& remote_path,
                       const std::string& local_path,
                       std::uint64_t* bytes_out, int* streams_out);
  Status push_attempt(const std::string& local_path,
                      const net::Endpoint& server,
                      const std::string& remote_path,
                      std::uint64_t* bytes_out, int* streams_out);

  net::Transport& transport_;
  Clock& clock_;
  Options options_;
};

}  // namespace griddles::remote
