// FileCopier: staged whole-file transfers with parallel streams, the
// GridFTP-style bulk path (paper modes 2 and 5).
//
// Copies move large chunks over several concurrent connections, so their
// cost is dominated by bandwidth rather than round trips — the property
// that makes "run sequentially and copy" beat Grid Buffers on
// high-latency links in Table 5.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/clock.h"
#include "src/multicast/dist_tree.h"
#include "src/net/transport.h"

namespace griddles::remote {

struct CopyStats {
  std::uint64_t bytes = 0;
  double seconds = 0;      // model time
  int streams_used = 0;

  double bytes_per_second() const {
    return seconds > 0 ? static_cast<double>(bytes) / seconds : 0;
  }
};

/// One destination of a multi-destination staged copy.
struct MultiCopyTarget {
  std::string host;          // machine name (tree/fault vocabulary)
  net::Endpoint endpoint;    // that machine's remote::FileServer
  std::string remote_path;   // server-relative write target
};

struct MultiCopyStats {
  std::uint64_t bytes = 0;   // file size (delivered to every destination)
  double seconds = 0;        // model time for the whole distribution
  int destinations = 0;      // after deduplication
  /// Payload bytes that left the source itself — the multicast headline:
  /// ~root_fanout * bytes for a tree vs destinations * bytes naive.
  std::uint64_t source_bytes_sent = 0;
  int tree_depth = 0;
  /// Relay hosts that died mid-transfer and were repaired by a direct
  /// re-push from the source.
  int reparents = 0;
  int streams_used = 0;
};

class FileCopier {
 public:
  struct Options {
    std::uint32_t chunk_size = 1u << 20;
    int parallel_streams = 4;
  };

  FileCopier(net::Transport& transport, Clock& clock, Options options);
  FileCopier(net::Transport& transport, Clock& clock)
      : FileCopier(transport, clock, Options{}) {}

  /// Remote -> local (stage in). Chunks are retried at the same offset on
  /// transient or verifiably-short delivery; when a fault plan is armed
  /// the whole file is checksum-verified against the server and
  /// re-fetched on mismatch, so an injected corruption never reaches the
  /// consumer. Fails with typed codes: kUnavailable (transient exhausted),
  /// kDataLoss (verification kept failing), kNotFound.
  Result<CopyStats> fetch(const net::Endpoint& server,
                          const std::string& remote_path,
                          const std::string& local_path);

  /// Local -> remote (stage out / copy between pipeline stages). Same
  /// retry and verification discipline as fetch().
  Result<CopyStats> push(const std::string& local_path,
                         const net::Endpoint& server,
                         const std::string& remote_path);

  /// Local -> N remotes through a bounded-fanout relay tree (DESIGN.md
  /// §12): plans a spanning tree over `estimator` link costs, streams
  /// chunks to the root's children, and each recruited FileServer writes
  /// the chunk locally and forwards it down its subtree. Relay deaths are
  /// adopted by their parent mid-transfer and the affected hosts repaired
  /// with a direct re-push, so delivery is all-or-error.
  ///
  /// Degenerate inputs match single-copy behavior exactly: an empty list
  /// is a no-op success (no metrics), one destination delegates to
  /// push(), and exact duplicates are deduplicated with a warning. The
  /// same host with two different paths is kInvalidArgument.
  ///
  /// Telemetry: one `remote.copy.*` sample and one advisor decision for
  /// the whole distribution, never one per destination.
  Result<MultiCopyStats> copy_to_many(
      const std::string& local_path,
      const std::vector<MultiCopyTarget>& destinations,
      const multicast::TreeOptions& tree_options,
      const multicast::PairEstimator& estimator);

 private:
  /// One whole-file attempt; `bytes_out` reports the payload size.
  Status fetch_attempt(const net::Endpoint& server,
                       const std::string& remote_path,
                       const std::string& local_path,
                       std::uint64_t* bytes_out, int* streams_out);
  Status push_attempt(const std::string& local_path,
                      const net::Endpoint& server,
                      const std::string& remote_path,
                      std::uint64_t* bytes_out, int* streams_out);
  /// push()'s whole-file retry loop without the copy span or metrics —
  /// shared with copy_to_many's dead-host repair path, which must not
  /// double-count `remote.copy.*` for the same logical transfer.
  Status push_with_retries(const std::string& local_path,
                           const net::Endpoint& server,
                           const std::string& remote_path,
                           std::uint64_t* bytes_out, int* streams_out);

  net::Transport& transport_;
  Clock& clock_;
  Options options_;
};

}  // namespace griddles::remote
