#include "src/remote/copier.h"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <thread>
#include <vector>

#include "src/common/strings.h"
#include "src/net/rpc.h"
#include "src/obs/metrics.h"
#include "src/remote/protocol.h"
#include "src/vfs/local_client.h"
#include "src/xdr/codec.h"

namespace griddles::remote {

namespace {
Status errno_status(const char* op, const std::string& path) {
  return io_error(strings::cat(op, " ", path, ": ", std::strerror(errno)));
}

/// Actual whole-file copy cost; the advisor's predictions live under
/// `advisor.predicted.*` for comparison.
void record_copy(const CopyStats& stats) {
  auto& registry = obs::MetricsRegistry::global();
  static obs::Counter& copy_bytes = registry.counter("remote.copy.bytes");
  static obs::Histogram& copy_seconds = registry.histogram(
      "remote.copy.seconds", obs::exponential_bounds(1e-3, 10.0, 8));
  copy_bytes.add(stats.bytes);
  copy_seconds.observe(stats.seconds);
}

Result<std::uint64_t> remote_size(net::RpcClient& rpc,
                                  const std::string& path) {
  xdr::Encoder enc;
  enc.put_string(path);
  GL_ASSIGN_OR_RETURN(const Bytes reply,
                      rpc.call(method_id(Method::kStat), enc.buffer()));
  xdr::Decoder dec(reply);
  GL_ASSIGN_OR_RETURN(const bool exists, dec.boolean());
  GL_ASSIGN_OR_RETURN(const std::uint64_t size, dec.u64());
  if (!exists) return not_found(strings::cat("remote file missing: ", path));
  return size;
}
}  // namespace

FileCopier::FileCopier(net::Transport& transport, Clock& clock,
                       Options options)
    : transport_(transport), clock_(clock), options_(options) {}

Result<CopyStats> FileCopier::fetch(const net::Endpoint& server,
                                    const std::string& remote_path,
                                    const std::string& local_path) {
  const Duration start = clock_.now();
  net::RpcClient control(transport_, server);
  GL_ASSIGN_OR_RETURN(const std::uint64_t size,
                      remote_size(control, remote_path));

  {
    const std::filesystem::path parent =
        std::filesystem::path(local_path).parent_path();
    if (!parent.empty()) {
      std::error_code ec;
      std::filesystem::create_directories(parent, ec);
    }
  }
  const int fd = ::open(local_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC,
                        0644);
  if (fd < 0) return errno_status("open", local_path);
  if (::ftruncate(fd, static_cast<off_t>(size)) != 0) {
    ::close(fd);
    return errno_status("ftruncate", local_path);
  }

  const std::uint64_t chunk = options_.chunk_size;
  const std::uint64_t num_chunks = size == 0 ? 0 : (size + chunk - 1) / chunk;
  const int streams = static_cast<int>(std::min<std::uint64_t>(
      std::max(1, options_.parallel_streams), std::max<std::uint64_t>(
                                                  1, num_chunks)));

  // lint: not-a-metric (work distribution)
  std::atomic<std::uint64_t> next_chunk{0};
  std::vector<Status> stream_status(static_cast<std::size_t>(streams),
                                    Status::ok());
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(streams));
  for (int s = 0; s < streams; ++s) {
    workers.emplace_back([&, s] {
      net::RpcClient rpc(transport_, server);
      while (true) {
        const std::uint64_t index = next_chunk.fetch_add(1);
        if (index >= num_chunks) return;
        const std::uint64_t offset = index * chunk;
        const std::uint32_t length = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(chunk, size - offset));
        xdr::Encoder enc;
        enc.put_string(remote_path);
        enc.put_u64(offset);
        enc.put_u32(length);
        auto reply = rpc.call(method_id(Method::kGetChunk), enc.buffer());
        if (!reply.is_ok()) {
          stream_status[static_cast<std::size_t>(s)] = reply.status();
          return;
        }
        xdr::Decoder dec(*reply);
        auto data = dec.bytes();
        if (!data.is_ok() || data->size() != length) {
          stream_status[static_cast<std::size_t>(s)] =
              io_error("fetch: short or malformed chunk");
          return;
        }
        std::size_t put = 0;
        while (put < data->size()) {
          const ssize_t n =
              ::pwrite(fd, data->data() + put, data->size() - put,
                       static_cast<off_t>(offset + put));
          if (n < 0) {
            if (errno == EINTR) continue;
            stream_status[static_cast<std::size_t>(s)] =
                errno_status("pwrite", local_path);
            return;
          }
          put += static_cast<std::size_t>(n);
        }
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  ::close(fd);
  for (const Status& status : stream_status) GL_RETURN_IF_ERROR(status);

  const CopyStats stats{size, to_seconds_d(clock_.now() - start), streams};
  record_copy(stats);
  return stats;
}

Result<CopyStats> FileCopier::push(const std::string& local_path,
                                   const net::Endpoint& server,
                                   const std::string& remote_path) {
  const Duration start = clock_.now();
  GL_ASSIGN_OR_RETURN(const std::uint64_t size, vfs::file_size(local_path));
  const int fd = ::open(local_path.c_str(), O_RDONLY);
  if (fd < 0) return errno_status("open", local_path);

  // Create/truncate the destination before the parallel phase.
  {
    net::RpcClient control(transport_, server);
    xdr::Encoder enc;
    enc.put_string(remote_path);
    enc.put_u64(0);
    enc.put_bool(true);  // truncate to offset 0
    enc.put_bytes({});
    auto reply = control.call(method_id(Method::kPutChunk), enc.buffer());
    if (!reply.is_ok()) {
      ::close(fd);
      return reply.status();
    }
  }

  const std::uint64_t chunk = options_.chunk_size;
  const std::uint64_t num_chunks = size == 0 ? 0 : (size + chunk - 1) / chunk;
  const int streams = static_cast<int>(std::min<std::uint64_t>(
      std::max(1, options_.parallel_streams), std::max<std::uint64_t>(
                                                  1, num_chunks)));

  // lint: not-a-metric (work distribution)
  std::atomic<std::uint64_t> next_chunk{0};
  std::vector<Status> stream_status(static_cast<std::size_t>(streams),
                                    Status::ok());
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(streams));
  for (int s = 0; s < streams; ++s) {
    workers.emplace_back([&, s] {
      net::RpcClient rpc(transport_, server);
      Bytes buffer(chunk);
      while (true) {
        const std::uint64_t index = next_chunk.fetch_add(1);
        if (index >= num_chunks) return;
        const std::uint64_t offset = index * chunk;
        const std::size_t length = static_cast<std::size_t>(
            std::min<std::uint64_t>(chunk, size - offset));
        std::size_t got = 0;
        while (got < length) {
          const ssize_t n = ::pread(fd, buffer.data() + got, length - got,
                                    static_cast<off_t>(offset + got));
          if (n < 0) {
            if (errno == EINTR) continue;
            stream_status[static_cast<std::size_t>(s)] =
                errno_status("pread", local_path);
            return;
          }
          if (n == 0) break;
          got += static_cast<std::size_t>(n);
        }
        xdr::Encoder enc;
        enc.put_string(remote_path);
        enc.put_u64(offset);
        enc.put_bool(false);
        enc.put_bytes({buffer.data(), got});
        auto reply = rpc.call(method_id(Method::kPutChunk), enc.buffer());
        if (!reply.is_ok()) {
          stream_status[static_cast<std::size_t>(s)] = reply.status();
          return;
        }
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  ::close(fd);
  for (const Status& status : stream_status) GL_RETURN_IF_ERROR(status);

  const CopyStats stats{size, to_seconds_d(clock_.now() - start), streams};
  record_copy(stats);
  return stats;
}

}  // namespace griddles::remote
