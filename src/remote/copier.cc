#include "src/remote/copier.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <optional>
#include <thread>
#include <vector>

#include <map>
#include <set>

#include "src/common/bytes.h"
#include "src/common/deadline.h"
#include "src/common/logging.h"
#include "src/common/strings.h"
#include "src/fault/plan.h"
#include "src/fault/retry.h"
#include "src/multicast/relay.h"
#include "src/net/rpc.h"
#include "src/obs/metrics.h"
#include "src/obs/span.h"
#include "src/remote/advisor.h"
#include "src/remote/protocol.h"
#include "src/vfs/local_client.h"
#include "src/xdr/codec.h"

namespace griddles::remote {

namespace {
Status errno_status(const char* op, const std::string& path) {
  return io_error(
      strings::cat(op, " ", path, ": ", strings::errno_message(errno)));
}

/// Actual whole-file copy cost; the advisor's predictions live under
/// `advisor.predicted.*` for comparison.
void record_copy(const CopyStats& stats) {
  auto& registry = obs::MetricsRegistry::global();
  static obs::Counter& copy_bytes = registry.counter("remote.copy.bytes");
  static obs::Histogram& copy_seconds = registry.histogram(
      "remote.copy.seconds", obs::exponential_bounds(1e-3, 10.0, 8));
  copy_bytes.add(stats.bytes);
  copy_seconds.observe(stats.seconds);
}

Result<std::uint64_t> remote_size(net::RpcClient& rpc,
                                  const std::string& path) {
  xdr::Encoder enc;
  enc.put_string(path);
  GL_ASSIGN_OR_RETURN(const Bytes reply,
                      rpc.call(method_id(Method::kStat), enc.buffer()));
  xdr::Decoder dec(reply);
  GL_ASSIGN_OR_RETURN(const bool exists, dec.boolean());
  GL_ASSIGN_OR_RETURN(const std::uint64_t size, dec.u64());
  if (!exists) return not_found(strings::cat("remote file missing: ", path));
  return size;
}

/// Applies any injected copy-site fault to a chunk in flight. Truncation
/// is caught right away by the length check; corruption survives until
/// the whole-file checksum pass. Returns non-OK only for drop-style
/// injections that should fail the chunk outright.
Status apply_copy_fault(const std::string& remote_path, Bytes& data) {
  fault::Plan* plan = fault::armed();
  if (plan == nullptr) return Status::ok();
  const fault::Decision verdict =
      plan->consult(fault::Site::kCopy, remote_path, data.size());
  switch (verdict.action) {
    case fault::Decision::Action::kNone:
      return Status::ok();
    case fault::Decision::Action::kDelay:
      fault::sleep_for_model(verdict.delay);
      return Status::ok();
    case fault::Decision::Action::kTruncate:
      data.resize(data.size() / 2);
      return Status::ok();
    case fault::Decision::Action::kCorrupt: {
      // Flip the rule's byte range, clamped to this chunk, so mid-chunk
      // (non-aligned) damage exercises the whole-file checksum pass and
      // not just the per-chunk length check.
      const std::uint64_t begin =
          std::min<std::uint64_t>(verdict.corrupt_offset, data.size());
      const std::uint64_t end =
          std::min<std::uint64_t>(begin + verdict.corrupt_len, data.size());
      for (std::uint64_t i = begin; i < end; ++i) {
        data[static_cast<std::size_t>(i)] ^= std::byte{0xff};
      }
      return Status::ok();
    }
    case fault::Decision::Action::kFail:
    case fault::Decision::Action::kKill:
      return unavailable(
          strings::cat("injected fault: copy ", remote_path));
  }
  return Status::ok();
}

/// Converts a planned subtree rooted at tree node `index` into the
/// wire-level RelayNode carrying each host's server endpoint and write
/// target in-band.
multicast::RelayNode build_relay_node(
    const multicast::DistTree& tree, int index,
    const std::map<std::string, const MultiCopyTarget*>& targets) {
  const multicast::TreeNode& planned =
      tree.nodes[static_cast<std::size_t>(index)];
  const MultiCopyTarget& target = *targets.at(planned.host);
  multicast::RelayNode node;
  node.host = target.host;
  node.endpoint = target.endpoint.to_string();
  node.path = target.remote_path;
  node.children.reserve(planned.children.size());
  for (const int child : planned.children) {
    node.children.push_back(build_relay_node(tree, child, targets));
  }
  return node;
}

/// Encodes one kRelayChunk request: the receiver's subtree plus the block.
Bytes relay_chunk_request(const multicast::RelayNode& node,
                          std::uint64_t offset, bool truncate_to_offset,
                          ByteSpan data) {
  xdr::Encoder enc;
  multicast::encode_node(enc, node);
  enc.put_u64(offset);
  enc.put_bool(truncate_to_offset);
  enc.put_bytes(data);
  return std::move(enc).take();
}

/// A chunk failure worth re-requesting at the same offset: transient
/// transport trouble, or a verifiably short/mangled delivery. Inherits
/// RetryPolicy's deliberate exclusions — kResourceExhausted (a shed
/// response; retrying feeds the overload) and kDeadlineExceeded (the
/// budget is gone) both surface to the stage level instead.
bool chunk_retryable(ErrorCode code) {
  return fault::RetryPolicy::retryable(code) ||
         code == ErrorCode::kDataLoss;
}

/// Streaming FNV-1a of a local file (matches the server's kChecksum).
Result<std::uint64_t> local_checksum(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return errno_status("open", path);
  std::uint64_t hash = kFnv1aSeed;
  Bytes buffer(1u << 20);
  while (true) {
    const ssize_t n = ::read(fd, buffer.data(), buffer.size());
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return errno_status("read", path);
    }
    if (n == 0) break;
    hash = fnv1a_update(hash, {buffer.data(), static_cast<std::size_t>(n)});
  }
  ::close(fd);
  return hash;
}

/// Compares the local copy against the server's checksum; kDataLoss on
/// any divergence. Only run while a fault plan is armed, keeping the
/// fault-free path free of the extra read-back.
Status verify_transfer(net::RpcClient& rpc, const std::string& remote_path,
                       const std::string& local_path) {
  xdr::Encoder enc;
  enc.put_string(remote_path);
  GL_ASSIGN_OR_RETURN(const Bytes reply,
                      rpc.call(method_id(Method::kChecksum), enc.buffer()));
  xdr::Decoder dec(reply);
  GL_ASSIGN_OR_RETURN(const std::uint64_t remote_hash, dec.u64());
  GL_ASSIGN_OR_RETURN(const std::uint64_t remote_bytes, dec.u64());
  GL_ASSIGN_OR_RETURN(const std::uint64_t local_bytes,
                      vfs::file_size(local_path));
  GL_ASSIGN_OR_RETURN(const std::uint64_t local_hash,
                      local_checksum(local_path));
  if (local_bytes != remote_bytes || local_hash != remote_hash) {
    return data_loss(strings::cat(
        "copy verification failed for ", remote_path, ": local ",
        local_bytes, "B/", local_hash, " vs remote ", remote_bytes, "B/",
        remote_hash));
  }
  return Status::ok();
}
}  // namespace

FileCopier::FileCopier(net::Transport& transport, Clock& clock,
                       Options options)
    : transport_(transport), clock_(clock), options_(options) {}

Result<CopyStats> FileCopier::fetch(const net::Endpoint& server,
                                    const std::string& remote_path,
                                    const std::string& local_path) {
  obs::Span copy_span(obs::SpanKind::kCopy,
                      strings::cat("copy.fetch:", remote_path));
  const Duration start = clock_.now();
  const fault::RetryPolicy policy;
  const std::uint64_t jitter_key = fnv1a(as_bytes_view(remote_path));
  std::uint64_t bytes = 0;
  int streams = 0;
  // Whole-file re-fetches become child retry spans: emplace() records
  // the previous attempt's span and opens the next (backoff + attempt).
  std::optional<obs::Span> retry_span;
  for (int attempt = 1;; ++attempt) {
    const Status status =
        fetch_attempt(server, remote_path, local_path, &bytes, &streams);
    if (status.is_ok()) break;
    // A failed verification (kDataLoss) is recoverable by re-fetching:
    // the file is still intact on the server.
    if (!chunk_retryable(status.code()) || attempt >= policy.max_attempts) {
      return status;
    }
    GL_RETURN_IF_ERROR(check_deadline("copy.fetch retry"));
    if (!fault::RetryBudget::global().acquire(jitter_key)) return status;
    fault::note_retry_attempt();
    retry_span.emplace(obs::SpanKind::kRetry,
                       strings::cat("copy.retry:", remote_path));
    retry_span->add_attr("attempt", strings::cat(attempt + 1));
    retry_span->add_attr("error", status.message());
    fault::sleep_for_model(policy.backoff(attempt, jitter_key));
  }
  const CopyStats stats{bytes, to_seconds_d(clock_.now() - start), streams};
  copy_span.add_attr("bytes", strings::cat(stats.bytes));
  copy_span.add_attr("streams", strings::cat(stats.streams_used));
  record_copy(stats);
  return stats;
}

Status FileCopier::fetch_attempt(const net::Endpoint& server,
                                 const std::string& remote_path,
                                 const std::string& local_path,
                                 std::uint64_t* bytes_out,
                                 int* streams_out) {
  net::RpcClient control(transport_, server);
  GL_ASSIGN_OR_RETURN(const std::uint64_t size,
                      remote_size(control, remote_path));

  {
    const std::filesystem::path parent =
        std::filesystem::path(local_path).parent_path();
    if (!parent.empty()) {
      std::error_code ec;
      std::filesystem::create_directories(parent, ec);
    }
  }
  const int fd = ::open(local_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC,
                        0644);
  if (fd < 0) return errno_status("open", local_path);
  if (::ftruncate(fd, static_cast<off_t>(size)) != 0) {
    ::close(fd);
    return errno_status("ftruncate", local_path);
  }

  const std::uint64_t chunk = options_.chunk_size;
  const std::uint64_t num_chunks = size == 0 ? 0 : (size + chunk - 1) / chunk;
  const int streams = static_cast<int>(std::min<std::uint64_t>(
      std::max(1, options_.parallel_streams), std::max<std::uint64_t>(
                                                  1, num_chunks)));

  // lint: not-a-metric (work distribution)
  std::atomic<std::uint64_t> next_chunk{0};
  std::vector<Status> stream_status(static_cast<std::size_t>(streams),
                                    Status::ok());
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(streams));
  const fault::RetryPolicy policy;
  const std::uint64_t jitter_key = fnv1a(as_bytes_view(remote_path));
  // Stream workers inherit the copy span so their chunk spans (and the
  // RPC hops under them) land on this transfer's subtree; the ambient
  // end-to-end budget rides along so chunk RPCs keep the deadline.
  const obs::TraceContext trace_parent = obs::current_context();
  const std::optional<WallClock::time_point> budget = current_deadline();
  for (int s = 0; s < streams; ++s) {
    workers.emplace_back([&, s, trace_parent, budget] {
      obs::ScopedTraceContext trace_scope(trace_parent);
      ScopedDeadline deadline_scope(budget);
      net::RpcClient rpc(transport_, server);
      const auto fetch_chunk = [&](std::uint64_t offset,
                                   std::uint32_t length) -> Status {
        xdr::Encoder enc;
        enc.put_string(remote_path);
        enc.put_u64(offset);
        enc.put_u32(length);
        GL_ASSIGN_OR_RETURN(
            const Bytes reply,
            rpc.call(method_id(Method::kGetChunk), enc.buffer()));
        xdr::Decoder dec(reply);
        auto data = dec.bytes();
        if (!data.is_ok()) return data_loss("fetch: malformed chunk");
        GL_RETURN_IF_ERROR(apply_copy_fault(remote_path, *data));
        if (data->size() != length) {
          return data_loss(strings::cat("fetch ", remote_path,
                                        ": truncated chunk at offset ",
                                        offset));
        }
        std::size_t put = 0;
        while (put < data->size()) {
          const ssize_t n =
              ::pwrite(fd, data->data() + put, data->size() - put,
                       static_cast<off_t>(offset + put));
          if (n < 0) {
            if (errno == EINTR) continue;
            return errno_status("pwrite", local_path);
          }
          put += static_cast<std::size_t>(n);
        }
        return Status::ok();
      };
      while (true) {
        const std::uint64_t index = next_chunk.fetch_add(1);
        if (index >= num_chunks) return;
        const std::uint64_t offset = index * chunk;
        const std::uint32_t length = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(chunk, size - offset));
        obs::Span chunk_span(obs::SpanKind::kChunk,
                             strings::cat("chunk.fetch:", remote_path));
        chunk_span.add_attr("offset", strings::cat(offset));
        fault::RetryBudget::global().note_fresh(jitter_key);
        // Offset-resumable: a bad chunk is simply re-requested (while
        // the budget holds out and the peer's retry tokens last).
        Status status = fetch_chunk(offset, length);
        for (int attempt = 1;
             !status.is_ok() && chunk_retryable(status.code()) &&
             !deadline_expired() && attempt < policy.max_attempts &&
             fault::RetryBudget::global().acquire(jitter_key);
             ++attempt) {
          fault::note_retry_attempt();
          fault::sleep_for_model(policy.backoff(attempt, jitter_key + index));
          status = fetch_chunk(offset, length);
        }
        if (!status.is_ok()) {
          stream_status[static_cast<std::size_t>(s)] = status;
          return;
        }
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  ::close(fd);
  for (const Status& status : stream_status) GL_RETURN_IF_ERROR(status);
  if (fault::armed() != nullptr) {
    GL_RETURN_IF_ERROR(verify_transfer(control, remote_path, local_path));
  }
  *bytes_out = size;
  *streams_out = streams;
  return Status::ok();
}

Result<CopyStats> FileCopier::push(const std::string& local_path,
                                   const net::Endpoint& server,
                                   const std::string& remote_path) {
  obs::Span copy_span(obs::SpanKind::kCopy,
                      strings::cat("copy.push:", remote_path));
  const Duration start = clock_.now();
  std::uint64_t bytes = 0;
  int streams = 0;
  GL_RETURN_IF_ERROR(
      push_with_retries(local_path, server, remote_path, &bytes, &streams));
  const CopyStats stats{bytes, to_seconds_d(clock_.now() - start), streams};
  copy_span.add_attr("bytes", strings::cat(stats.bytes));
  copy_span.add_attr("streams", strings::cat(stats.streams_used));
  record_copy(stats);
  return stats;
}

Status FileCopier::push_with_retries(const std::string& local_path,
                                     const net::Endpoint& server,
                                     const std::string& remote_path,
                                     std::uint64_t* bytes_out,
                                     int* streams_out) {
  const fault::RetryPolicy policy;
  const std::uint64_t jitter_key = fnv1a(as_bytes_view(remote_path));
  std::optional<obs::Span> retry_span;  // see fetch()
  for (int attempt = 1;; ++attempt) {
    const Status status = push_attempt(local_path, server, remote_path,
                                       bytes_out, streams_out);
    if (status.is_ok()) return status;
    if (!chunk_retryable(status.code()) || attempt >= policy.max_attempts) {
      return status;
    }
    GL_RETURN_IF_ERROR(check_deadline("copy.push retry"));
    if (!fault::RetryBudget::global().acquire(jitter_key)) return status;
    fault::note_retry_attempt();
    retry_span.emplace(obs::SpanKind::kRetry,
                       strings::cat("copy.retry:", remote_path));
    retry_span->add_attr("attempt", strings::cat(attempt + 1));
    retry_span->add_attr("error", status.message());
    fault::sleep_for_model(policy.backoff(attempt, jitter_key));
  }
}

Result<MultiCopyStats> FileCopier::copy_to_many(
    const std::string& local_path,
    const std::vector<MultiCopyTarget>& destinations,
    const multicast::TreeOptions& tree_options,
    const multicast::PairEstimator& estimator) {
  MultiCopyStats stats;
  if (destinations.empty()) return stats;

  // Exact duplicates collapse with a warning; the same host asked to
  // receive two different files is a caller bug, not a dedup case.
  static obs::Counter& duplicates =
      obs::MetricsRegistry::global().counter("multicast.duplicates");
  std::vector<MultiCopyTarget> targets;
  {
    std::map<std::string, std::size_t> index_of;
    for (const MultiCopyTarget& dest : destinations) {
      const auto it = index_of.find(dest.host);
      if (it == index_of.end()) {
        index_of.emplace(dest.host, targets.size());
        targets.push_back(dest);
        continue;
      }
      const MultiCopyTarget& prior = targets[it->second];
      if (prior.remote_path != dest.remote_path ||
          prior.endpoint.to_string() != dest.endpoint.to_string()) {
        return invalid_argument(strings::cat(
            "copy_to_many: host ", dest.host,
            " listed twice with different targets (", prior.remote_path,
            " vs ", dest.remote_path, ")"));
      }
      duplicates.add();
      GL_LOG(kWarn, "copy_to_many: duplicate destination ", dest.host, " (",
             dest.remote_path, ") deduplicated");
    }
  }

  if (targets.size() == 1) {
    // Degenerate case: behave exactly like the single copy it is — same
    // status, same spans, same one `remote.copy.*` sample.
    GL_ASSIGN_OR_RETURN(const CopyStats single,
                        push(local_path, targets.front().endpoint,
                             targets.front().remote_path));
    stats.bytes = single.bytes;
    stats.seconds = single.seconds;
    stats.destinations = 1;
    stats.source_bytes_sent = single.bytes;
    stats.tree_depth = 1;
    stats.streams_used = single.streams_used;
    return stats;
  }

  const Duration start = clock_.now();
  GL_ASSIGN_OR_RETURN(const std::uint64_t size, vfs::file_size(local_path));
  const std::string source_host = transport_.local_host();
  std::vector<std::string> hosts;
  hosts.reserve(targets.size());
  std::map<std::string, const MultiCopyTarget*> by_host;
  for (const MultiCopyTarget& target : targets) {
    hosts.push_back(target.host);
    by_host.emplace(target.host, &target);
  }
  GL_ASSIGN_OR_RETURN(
      const multicast::DistTree tree,
      multicast::plan_tree(source_host, hosts, estimator, tree_options));

  // One logical advisor decision for the whole distribution: price every
  // leg, record the bottleneck. The strategy is kCopy by construction (a
  // staged multicast IS a copy), so only the predicted cost varies.
  {
    AdvisorPolicy policy;
    policy.copy_chunk_size = options_.chunk_size;
    policy.copy_streams = options_.parallel_streams;
    Advice bottleneck;
    bool scored = false;
    if (estimator) {
      for (const MultiCopyTarget& target : targets) {
        const auto estimate = estimator(source_host, target.host);
        if (!estimate.is_ok()) continue;
        const Advice leg = advise_quiet(size, 1.0, *estimate, policy);
        if (!scored ||
            leg.copy_cost_seconds > bottleneck.copy_cost_seconds) {
          bottleneck = leg;
          scored = true;
        }
      }
    }
    if (!scored) {
      bottleneck = advise_quiet(size, 1.0, nws::LinkEstimate{}, policy);
    }
    bottleneck.strategy = RemoteStrategy::kCopy;
    record_advice(bottleneck);
  }

  // The wire subtrees the root's children receive in-band.
  std::vector<multicast::RelayNode> first_hops;
  first_hops.reserve(tree.source().children.size());
  for (const int child : tree.source().children) {
    first_hops.push_back(build_relay_node(tree, child, by_host));
  }

  obs::Span copy_span(obs::SpanKind::kCopy,
                      strings::cat("copy.multicast:", local_path));
  copy_span.add_attr("destinations", strings::cat(targets.size()));
  copy_span.add_attr("depth", strings::cat(tree.depth));

  // lint: not-a-metric (per-transfer stat reported via MultiCopyStats)
  std::atomic<std::uint64_t> source_bytes{0};
  std::set<std::string> dead_hosts;

  // Create/truncate every destination file down the tree before the
  // parallel phase — and learn which relays are already dead.
  {
    multicast::RelayForwarder forwarder(transport_);
    std::vector<std::string> dead;
    multicast::relay_block(
        forwarder, first_hops, method_id(Method::kRelayChunk),
        [&](const multicast::RelayNode& child) {
          return relay_chunk_request(child, 0, true, {});
        },
        dead);
    dead_hosts.insert(dead.begin(), dead.end());
  }

  const int fd = ::open(local_path.c_str(), O_RDONLY);
  if (fd < 0) return errno_status("open", local_path);
  const std::uint64_t chunk = options_.chunk_size;
  const std::uint64_t num_chunks = size == 0 ? 0 : (size + chunk - 1) / chunk;
  const int streams = static_cast<int>(std::min<std::uint64_t>(
      std::max(1, options_.parallel_streams), std::max<std::uint64_t>(
                                                  1, num_chunks)));

  // lint: not-a-metric (work distribution)
  std::atomic<std::uint64_t> next_chunk{0};
  std::vector<Status> stream_status(static_cast<std::size_t>(streams),
                                    Status::ok());
  std::vector<std::vector<std::string>> stream_dead(
      static_cast<std::size_t>(streams));
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(streams));
  const obs::TraceContext trace_parent = obs::current_context();
  const std::optional<WallClock::time_point> budget = current_deadline();
  for (int s = 0; s < streams; ++s) {
    workers.emplace_back([&, s, trace_parent, budget] {
      obs::ScopedTraceContext trace_scope(trace_parent);
      ScopedDeadline deadline_scope(budget);
      // One forwarder — one connection per tree edge — per stream keeps
      // the streams parallel, as with push()'s per-stream RpcClient.
      multicast::RelayForwarder forwarder(transport_);
      Bytes buffer(chunk);
      while (true) {
        const std::uint64_t index = next_chunk.fetch_add(1);
        if (index >= num_chunks) return;
        const std::uint64_t offset = index * chunk;
        const std::size_t length = static_cast<std::size_t>(
            std::min<std::uint64_t>(chunk, size - offset));
        std::size_t got = 0;
        while (got < length) {
          const ssize_t n = ::pread(fd, buffer.data() + got, length - got,
                                    static_cast<off_t>(offset + got));
          if (n < 0) {
            if (errno == EINTR) continue;
            stream_status[static_cast<std::size_t>(s)] =
                errno_status("pread", local_path);
            return;
          }
          if (n == 0) break;
          got += static_cast<std::size_t>(n);
        }
        const ByteSpan data{buffer.data(), got};
        obs::Span chunk_span(obs::SpanKind::kChunk,
                             strings::cat("chunk.multicast:", local_path));
        chunk_span.add_attr("offset", strings::cat(offset));
        multicast::relay_block(
            forwarder, first_hops, method_id(Method::kRelayChunk),
            [&](const multicast::RelayNode& child) {
              source_bytes.fetch_add(got, std::memory_order_relaxed);
              return relay_chunk_request(child, offset, false, data);
            },
            stream_dead[static_cast<std::size_t>(s)]);
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  ::close(fd);
  for (const Status& status : stream_status) GL_RETURN_IF_ERROR(status);
  for (const std::vector<std::string>& dead : stream_dead) {
    dead_hosts.insert(dead.begin(), dead.end());
  }

  // Every destination a dead relay left behind gets the whole file
  // directly from the source — the tree already saved the bytes for
  // everyone else, so correctness wins over elegance here.
  for (const std::string& host : dead_hosts) {
    const auto it = by_host.find(host);
    if (it == by_host.end()) continue;
    const MultiCopyTarget& target = *it->second;
    GL_LOG(kWarn, "copy_to_many: relay path to ", host,
           " failed; repairing with a direct re-push");
    std::uint64_t repaired_bytes = 0;
    int repaired_streams = 0;
    GL_RETURN_IF_ERROR(push_with_retries(local_path, target.endpoint,
                                         target.remote_path, &repaired_bytes,
                                         &repaired_streams));
    source_bytes.fetch_add(size, std::memory_order_relaxed);
    ++stats.reparents;
  }

  // Same discipline as fetch()/push(): with a fault plan armed, every
  // destination is checksum-verified and re-pushed on divergence.
  if (fault::armed() != nullptr) {
    for (const MultiCopyTarget& target : targets) {
      net::RpcClient control(transport_, target.endpoint);
      const Status verified =
          verify_transfer(control, target.remote_path, local_path);
      if (verified.is_ok()) continue;
      std::uint64_t repaired_bytes = 0;
      int repaired_streams = 0;
      GL_RETURN_IF_ERROR(push_with_retries(local_path, target.endpoint,
                                           target.remote_path,
                                           &repaired_bytes,
                                           &repaired_streams));
      source_bytes.fetch_add(size, std::memory_order_relaxed);
      GL_RETURN_IF_ERROR(
          verify_transfer(control, target.remote_path, local_path));
    }
  }

  stats.bytes = size;
  stats.seconds = to_seconds_d(clock_.now() - start);
  stats.destinations = static_cast<int>(targets.size());
  stats.source_bytes_sent = source_bytes.load(std::memory_order_relaxed);
  stats.tree_depth = tree.depth;
  stats.streams_used = streams;
  copy_span.add_attr("bytes", strings::cat(size));
  copy_span.add_attr("source_bytes", strings::cat(stats.source_bytes_sent));
  copy_span.add_attr("reparents", strings::cat(stats.reparents));
  // ONE logical copy: one bytes/seconds sample for the whole fan-out.
  record_copy(CopyStats{size, stats.seconds, streams});
  return stats;
}

Status FileCopier::push_attempt(const std::string& local_path,
                                const net::Endpoint& server,
                                const std::string& remote_path,
                                std::uint64_t* bytes_out, int* streams_out) {
  GL_ASSIGN_OR_RETURN(const std::uint64_t size, vfs::file_size(local_path));
  const int fd = ::open(local_path.c_str(), O_RDONLY);
  if (fd < 0) return errno_status("open", local_path);

  // Create/truncate the destination before the parallel phase.
  net::RpcClient control(transport_, server);
  {
    xdr::Encoder enc;
    enc.put_string(remote_path);
    enc.put_u64(0);
    enc.put_bool(true);  // truncate to offset 0
    enc.put_bytes({});
    auto reply = control.call(method_id(Method::kPutChunk), enc.buffer());
    if (!reply.is_ok()) {
      ::close(fd);
      return reply.status();
    }
  }

  const std::uint64_t chunk = options_.chunk_size;
  const std::uint64_t num_chunks = size == 0 ? 0 : (size + chunk - 1) / chunk;
  const int streams = static_cast<int>(std::min<std::uint64_t>(
      std::max(1, options_.parallel_streams), std::max<std::uint64_t>(
                                                  1, num_chunks)));

  // lint: not-a-metric (work distribution)
  std::atomic<std::uint64_t> next_chunk{0};
  std::vector<Status> stream_status(static_cast<std::size_t>(streams),
                                    Status::ok());
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(streams));
  const fault::RetryPolicy policy;
  const std::uint64_t jitter_key = fnv1a(as_bytes_view(remote_path));
  const obs::TraceContext trace_parent = obs::current_context();
  const std::optional<WallClock::time_point> budget = current_deadline();
  for (int s = 0; s < streams; ++s) {
    workers.emplace_back([&, s, trace_parent, budget] {
      obs::ScopedTraceContext trace_scope(trace_parent);
      ScopedDeadline deadline_scope(budget);
      net::RpcClient rpc(transport_, server);
      Bytes buffer(chunk);
      const auto push_chunk = [&](std::uint64_t offset,
                                  std::size_t length) -> Status {
        std::size_t got = 0;
        while (got < length) {
          const ssize_t n = ::pread(fd, buffer.data() + got, length - got,
                                    static_cast<off_t>(offset + got));
          if (n < 0) {
            if (errno == EINTR) continue;
            return errno_status("pread", local_path);
          }
          if (n == 0) break;
          got += static_cast<std::size_t>(n);
        }
        Bytes data(buffer.begin(),
                   buffer.begin() + static_cast<std::ptrdiff_t>(got));
        GL_RETURN_IF_ERROR(apply_copy_fault(remote_path, data));
        xdr::Encoder enc;
        enc.put_string(remote_path);
        enc.put_u64(offset);
        enc.put_bool(false);
        enc.put_bytes(data);
        GL_ASSIGN_OR_RETURN(
            const Bytes reply,
            rpc.call(method_id(Method::kPutChunk), enc.buffer()));
        (void)reply;
        // A mutated payload leaves a hole or garbage at this offset; the
        // post-push verification pass catches it and re-pushes.
        if (data.size() != got) {
          return data_loss(strings::cat("push ", remote_path,
                                        ": truncated chunk at offset ",
                                        offset));
        }
        return Status::ok();
      };
      while (true) {
        const std::uint64_t index = next_chunk.fetch_add(1);
        if (index >= num_chunks) return;
        const std::uint64_t offset = index * chunk;
        const std::size_t length = static_cast<std::size_t>(
            std::min<std::uint64_t>(chunk, size - offset));
        obs::Span chunk_span(obs::SpanKind::kChunk,
                             strings::cat("chunk.push:", remote_path));
        chunk_span.add_attr("offset", strings::cat(offset));
        fault::RetryBudget::global().note_fresh(jitter_key);
        Status status = push_chunk(offset, length);
        for (int attempt = 1;
             !status.is_ok() && chunk_retryable(status.code()) &&
             !deadline_expired() && attempt < policy.max_attempts &&
             fault::RetryBudget::global().acquire(jitter_key);
             ++attempt) {
          fault::note_retry_attempt();
          fault::sleep_for_model(policy.backoff(attempt, jitter_key + index));
          status = push_chunk(offset, length);
        }
        if (!status.is_ok()) {
          stream_status[static_cast<std::size_t>(s)] = status;
          return;
        }
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  ::close(fd);
  for (const Status& status : stream_status) GL_RETURN_IF_ERROR(status);
  if (fault::armed() != nullptr) {
    GL_RETURN_IF_ERROR(verify_transfer(control, remote_path, local_path));
  }
  *bytes_out = size;
  *streams_out = streams;
  return Status::ok();
}

}  // namespace griddles::remote
