#include "src/remote/file_server.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/strings.h"
#include "src/obs/span.h"
#include "src/vfs/local_client.h"
#include "src/xdr/codec.h"

namespace griddles::remote {

namespace fs = std::filesystem;

namespace {
Status errno_status(const char* op, const std::string& path) {
  return io_error(
      strings::cat(op, " ", path, ": ", strings::errno_message(errno)));
}
}  // namespace

FileServer::FileServer(fs::path root, net::Transport& transport,
                       net::Endpoint bind, net::WireFormat format)
    : root_(std::move(root)),
      rpc_(transport, std::move(bind), format),
      forwarder_(transport) {
  register_handlers();
}

FileServer::~FileServer() { stop(); }

Status FileServer::start() {
  std::error_code ec;
  fs::create_directories(root_, ec);
  if (ec) {
    return io_error(strings::cat("file server root ", root_.string(), ": ",
                                 ec.message()));
  }
  return rpc_.start();
}

void FileServer::stop() {
  rpc_.stop();
  MutexLock lock(mu_);
  for (auto& [handle, file] : handles_) {
    if (file.fd >= 0) ::close(file.fd);
  }
  handles_.clear();
}

std::size_t FileServer::open_handles() const {
  MutexLock lock(mu_);
  return handles_.size();
}

Result<fs::path> FileServer::resolve(const std::string& path) const {
  // Server paths are always relative to the exported root; reject any
  // component that would climb out.
  const fs::path rel(path);
  if (rel.is_absolute()) {
    return permission_denied(
        strings::cat("absolute server path rejected: ", path));
  }
  for (const auto& part : rel) {
    if (part == "..") {
      return permission_denied(
          strings::cat("path escapes the export root: ", path));
    }
  }
  return root_ / rel;
}

void FileServer::register_handlers() {
  auto bind = [this](Method m, Result<Bytes> (FileServer::*fn)(ByteSpan)) {
    rpc_.register_method(
        method_id(m),
        [this, fn](ByteSpan request, const net::RpcContext&) {
          return (this->*fn)(request);
        });
  };
  bind(Method::kOpen, &FileServer::handle_open);
  bind(Method::kClose, &FileServer::handle_close);
  bind(Method::kPread, &FileServer::handle_pread);
  bind(Method::kPwrite, &FileServer::handle_pwrite);
  bind(Method::kStat, &FileServer::handle_stat);
  bind(Method::kGetChunk, &FileServer::handle_get_chunk);
  bind(Method::kPutChunk, &FileServer::handle_put_chunk);
  bind(Method::kTruncate, &FileServer::handle_truncate);
  bind(Method::kRemove, &FileServer::handle_remove);
  bind(Method::kList, &FileServer::handle_list);
  bind(Method::kChecksum, &FileServer::handle_checksum);
  bind(Method::kRelayChunk, &FileServer::handle_relay_chunk);
}

Result<Bytes> FileServer::handle_open(ByteSpan request) {
  xdr::Decoder dec(request);
  GL_ASSIGN_OR_RETURN(const std::string path, dec.string());
  GL_ASSIGN_OR_RETURN(const bool read, dec.boolean());
  GL_ASSIGN_OR_RETURN(const bool write, dec.boolean());
  GL_ASSIGN_OR_RETURN(const bool create, dec.boolean());
  GL_ASSIGN_OR_RETURN(const bool truncate, dec.boolean());
  GL_ASSIGN_OR_RETURN(const fs::path full, resolve(path));

  int oflags = 0;
  if (read && write) {
    oflags = O_RDWR;
  } else if (write) {
    oflags = O_WRONLY;
  } else {
    oflags = O_RDONLY;
  }
  if (create) {
    oflags |= O_CREAT;
    std::error_code ec;
    fs::create_directories(full.parent_path(), ec);
  }
  if (truncate) oflags |= O_TRUNC;
  const int fd = ::open(full.c_str(), oflags, 0644);
  if (fd < 0) {
    if (errno == ENOENT) {
      return not_found(strings::cat("remote file not found: ", path));
    }
    return errno_status("open", path);
  }
  const off_t size = ::lseek(fd, 0, SEEK_END);
  if (size < 0) {
    ::close(fd);
    return errno_status("lseek", path);
  }

  std::uint64_t handle;
  {
    MutexLock lock(mu_);
    handle = next_handle_++;
    handles_[handle] = OpenFile{fd, write, path};
  }
  xdr::Encoder enc;
  enc.put_u64(handle);
  enc.put_u64(static_cast<std::uint64_t>(size));
  return std::move(enc).take();
}

Result<Bytes> FileServer::handle_close(ByteSpan request) {
  xdr::Decoder dec(request);
  GL_ASSIGN_OR_RETURN(const std::uint64_t handle, dec.u64());
  MutexLock lock(mu_);
  const auto it = handles_.find(handle);
  if (it == handles_.end()) {
    return not_found(strings::cat("no such handle ", handle));
  }
  if (it->second.fd >= 0) ::close(it->second.fd);
  handles_.erase(it);
  return Bytes{};
}

Result<Bytes> FileServer::handle_pread(ByteSpan request) {
  xdr::Decoder dec(request);
  GL_ASSIGN_OR_RETURN(const std::uint64_t handle, dec.u64());
  GL_ASSIGN_OR_RETURN(const std::uint64_t offset, dec.u64());
  GL_ASSIGN_OR_RETURN(const std::uint32_t length, dec.u32());
  int fd = -1;
  {
    MutexLock lock(mu_);
    const auto it = handles_.find(handle);
    if (it == handles_.end()) {
      return not_found(strings::cat("no such handle ", handle));
    }
    fd = it->second.fd;
  }
  Bytes buffer(length);
  std::size_t got = 0;
  while (got < length) {
    const ssize_t n = ::pread(fd, buffer.data() + got, length - got,
                              static_cast<off_t>(offset + got));
    if (n < 0) {
      if (errno == EINTR) continue;
      return errno_status("pread", strings::cat("handle ", handle));
    }
    if (n == 0) break;
    got += static_cast<std::size_t>(n);
  }
  buffer.resize(got);
  xdr::Encoder enc;
  enc.put_bytes(buffer);
  return std::move(enc).take();
}

Result<Bytes> FileServer::handle_pwrite(ByteSpan request) {
  xdr::Decoder dec(request);
  GL_ASSIGN_OR_RETURN(const std::uint64_t handle, dec.u64());
  GL_ASSIGN_OR_RETURN(const std::uint64_t offset, dec.u64());
  GL_ASSIGN_OR_RETURN(const Bytes data, dec.bytes());
  int fd = -1;
  {
    MutexLock lock(mu_);
    const auto it = handles_.find(handle);
    if (it == handles_.end()) {
      return not_found(strings::cat("no such handle ", handle));
    }
    if (!it->second.writable) {
      return permission_denied("handle not open for writing");
    }
    fd = it->second.fd;
  }
  std::size_t put = 0;
  while (put < data.size()) {
    const ssize_t n = ::pwrite(fd, data.data() + put, data.size() - put,
                               static_cast<off_t>(offset + put));
    if (n < 0) {
      if (errno == EINTR) continue;
      return errno_status("pwrite", strings::cat("handle ", handle));
    }
    put += static_cast<std::size_t>(n);
  }
  xdr::Encoder enc;
  enc.put_u64(put);
  return std::move(enc).take();
}

Result<Bytes> FileServer::handle_stat(ByteSpan request) {
  xdr::Decoder dec(request);
  GL_ASSIGN_OR_RETURN(const std::string path, dec.string());
  GL_ASSIGN_OR_RETURN(const fs::path full, resolve(path));
  xdr::Encoder enc;
  std::error_code ec;
  const auto size = fs::file_size(full, ec);
  if (ec) {
    enc.put_bool(false);
    enc.put_u64(0);
  } else {
    enc.put_bool(true);
    enc.put_u64(size);
  }
  return std::move(enc).take();
}

Result<Bytes> FileServer::handle_get_chunk(ByteSpan request) {
  xdr::Decoder dec(request);
  GL_ASSIGN_OR_RETURN(const std::string path, dec.string());
  GL_ASSIGN_OR_RETURN(const std::uint64_t offset, dec.u64());
  GL_ASSIGN_OR_RETURN(const std::uint32_t length, dec.u32());
  GL_ASSIGN_OR_RETURN(const fs::path full, resolve(path));
  const int fd = ::open(full.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) {
      return not_found(strings::cat("remote file not found: ", path));
    }
    return errno_status("open", path);
  }
  Bytes buffer(length);
  std::size_t got = 0;
  Status status = Status::ok();
  while (got < length) {
    const ssize_t n = ::pread(fd, buffer.data() + got, length - got,
                              static_cast<off_t>(offset + got));
    if (n < 0) {
      if (errno == EINTR) continue;
      status = errno_status("pread", path);
      break;
    }
    if (n == 0) break;
    got += static_cast<std::size_t>(n);
  }
  ::close(fd);
  GL_RETURN_IF_ERROR(status);
  buffer.resize(got);
  xdr::Encoder enc;
  enc.put_bytes(buffer);
  return std::move(enc).take();
}

Status FileServer::write_chunk(const std::string& path, std::uint64_t offset,
                               bool truncate_to_offset, ByteSpan data) {
  GL_ASSIGN_OR_RETURN(const fs::path full, resolve(path));
  std::error_code ec;
  fs::create_directories(full.parent_path(), ec);
  const int fd = ::open(full.c_str(), O_WRONLY | O_CREAT, 0644);
  if (fd < 0) return errno_status("open", path);
  Status status = Status::ok();
  if (truncate_to_offset &&
      ::ftruncate(fd, static_cast<off_t>(offset)) != 0) {
    status = errno_status("ftruncate", path);
  }
  std::size_t put = 0;
  while (status.is_ok() && put < data.size()) {
    const ssize_t n = ::pwrite(fd, data.data() + put, data.size() - put,
                               static_cast<off_t>(offset + put));
    if (n < 0) {
      if (errno == EINTR) continue;
      status = errno_status("pwrite", path);
      break;
    }
    put += static_cast<std::size_t>(n);
  }
  ::close(fd);
  return status;
}

Result<Bytes> FileServer::handle_put_chunk(ByteSpan request) {
  xdr::Decoder dec(request);
  GL_ASSIGN_OR_RETURN(const std::string path, dec.string());
  GL_ASSIGN_OR_RETURN(const std::uint64_t offset, dec.u64());
  GL_ASSIGN_OR_RETURN(const bool truncate_to_offset, dec.boolean());
  GL_ASSIGN_OR_RETURN(const Bytes data, dec.bytes());
  GL_RETURN_IF_ERROR(write_chunk(path, offset, truncate_to_offset, data));
  return Bytes{};
}

Result<Bytes> FileServer::handle_relay_chunk(ByteSpan request) {
  xdr::Decoder dec(request);
  GL_ASSIGN_OR_RETURN(const multicast::RelayNode node,
                      multicast::decode_node(dec));
  GL_ASSIGN_OR_RETURN(const std::uint64_t offset, dec.u64());
  GL_ASSIGN_OR_RETURN(const bool truncate_to_offset, dec.boolean());
  GL_ASSIGN_OR_RETURN(const Bytes data, dec.bytes());

  const std::string host = rpc_.endpoint().host;
  obs::Span span(obs::SpanKind::kRelay, strings::cat("relay:", host));
  span.add_attr("path", node.path);
  span.add_attr("children", strings::cat(node.children.size()));

  // An injected die@relay:<host> keys on the cumulative bytes this server
  // has relayed; once it fires the hop fails and the parent adopts.
  const std::uint64_t cumulative =
      relayed_bytes_.fetch_add(data.size(), std::memory_order_relaxed) +
      data.size();
  GL_RETURN_IF_ERROR(multicast::consult_relay_fault(host, cumulative));

  GL_RETURN_IF_ERROR(
      write_chunk(node.path, offset, truncate_to_offset, data));

  std::vector<std::string> dead;
  multicast::relay_block(
      forwarder_, node.children, method_id(Method::kRelayChunk),
      [&](const multicast::RelayNode& child) {
        xdr::Encoder enc;
        multicast::encode_node(enc, child);
        enc.put_u64(offset);
        enc.put_bool(truncate_to_offset);
        enc.put_bytes(data);
        return std::move(enc).take();
      },
      dead);

  xdr::Encoder enc;
  multicast::encode_dead_hosts(enc, dead);
  return std::move(enc).take();
}

Result<Bytes> FileServer::handle_truncate(ByteSpan request) {
  xdr::Decoder dec(request);
  GL_ASSIGN_OR_RETURN(const std::string path, dec.string());
  GL_ASSIGN_OR_RETURN(const std::uint64_t size, dec.u64());
  GL_ASSIGN_OR_RETURN(const fs::path full, resolve(path));
  if (::truncate(full.c_str(), static_cast<off_t>(size)) != 0) {
    return errno_status("truncate", path);
  }
  return Bytes{};
}

Result<Bytes> FileServer::handle_remove(ByteSpan request) {
  xdr::Decoder dec(request);
  GL_ASSIGN_OR_RETURN(const std::string path, dec.string());
  GL_ASSIGN_OR_RETURN(const fs::path full, resolve(path));
  std::error_code ec;
  fs::remove(full, ec);
  if (ec) return io_error(strings::cat("remove ", path, ": ", ec.message()));
  return Bytes{};
}

Result<Bytes> FileServer::handle_list(ByteSpan request) {
  xdr::Decoder dec(request);
  GL_ASSIGN_OR_RETURN(const std::string path, dec.string());
  GL_ASSIGN_OR_RETURN(const fs::path full, resolve(path));
  std::error_code ec;
  std::vector<std::string> names;
  for (const auto& entry : fs::directory_iterator(full, ec)) {
    names.push_back(entry.path().filename().string());
  }
  if (ec) return io_error(strings::cat("list ", path, ": ", ec.message()));
  xdr::Encoder enc;
  enc.put_vector(names, [](xdr::Encoder& e, const std::string& name) {
    e.put_string(name);
  });
  return std::move(enc).take();
}

Result<Bytes> FileServer::handle_checksum(ByteSpan request) {
  xdr::Decoder dec(request);
  GL_ASSIGN_OR_RETURN(const std::string path, dec.string());
  GL_ASSIGN_OR_RETURN(const fs::path full, resolve(path));
  GL_ASSIGN_OR_RETURN(const Bytes contents, vfs::read_file(full.string()));
  xdr::Encoder enc;
  enc.put_u64(fnv1a(contents));
  enc.put_u64(contents.size());
  return std::move(enc).take();
}

}  // namespace griddles::remote
