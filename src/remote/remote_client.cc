#include "src/remote/remote_client.h"

#include <algorithm>

#include "src/common/strings.h"
#include "src/xdr/codec.h"

namespace griddles::remote {

Result<std::unique_ptr<RemoteFileClient>> RemoteFileClient::open(
    net::Transport& transport, const net::Endpoint& server_endpoint,
    const std::string& remote_path, vfs::OpenFlags flags, Options options) {
  if (options.block_size == 0) {
    return invalid_argument("remote client block size must be positive");
  }
  auto rpc = std::make_unique<net::RpcClient>(transport, server_endpoint);
  xdr::Encoder enc;
  enc.put_string(remote_path);
  enc.put_bool(flags.read);
  enc.put_bool(flags.write);
  enc.put_bool(flags.create);
  enc.put_bool(flags.truncate);
  GL_ASSIGN_OR_RETURN(const Bytes reply,
                      rpc->call(method_id(Method::kOpen), enc.buffer()));
  xdr::Decoder dec(reply);
  GL_ASSIGN_OR_RETURN(const std::uint64_t handle, dec.u64());
  GL_ASSIGN_OR_RETURN(std::uint64_t size, dec.u64());
  if (flags.truncate) size = 0;
  std::uint64_t cursor = flags.append ? size : 0;
  auto client = std::unique_ptr<RemoteFileClient>(
      new RemoteFileClient(std::move(rpc), handle, size, remote_path, flags,
                           options));
  client->cursor_ = cursor;
  return client;
}

RemoteFileClient::RemoteFileClient(std::unique_ptr<net::RpcClient> rpc,
                                   std::uint64_t handle, std::uint64_t size,
                                   std::string remote_path,
                                   vfs::OpenFlags flags, Options options)
    : rpc_(std::move(rpc)), handle_(handle), size_(size),
      remote_path_(std::move(remote_path)), flags_(flags),
      options_(options) {}

RemoteFileClient::~RemoteFileClient() { (void)close(); }

void RemoteFileClient::cache_insert(std::uint64_t block_start, Bytes data) {
  const auto existing = lru_index_.find(block_start);
  if (existing != lru_index_.end()) {
    lru_.erase(existing->second);
    lru_index_.erase(existing);
  }
  lru_.push_front(block_start);
  lru_index_[block_start] = lru_.begin();
  cache_[block_start] = std::move(data);
  while (cache_.size() > options_.cache_blocks && !lru_.empty()) {
    const std::uint64_t victim = lru_.back();
    lru_.pop_back();
    lru_index_.erase(victim);
    cache_.erase(victim);
  }
}

void RemoteFileClient::cache_invalidate_range(std::uint64_t offset,
                                              std::size_t length) {
  if (length == 0) return;
  const std::uint64_t block = options_.block_size;
  const std::uint64_t first = offset / block * block;
  const std::uint64_t last = (offset + length - 1) / block * block;
  for (std::uint64_t start = first; start <= last; start += block) {
    const auto it = cache_.find(start);
    if (it != cache_.end()) {
      cache_.erase(it);
      const auto lru_it = lru_index_.find(start);
      if (lru_it != lru_index_.end()) {
        lru_.erase(lru_it->second);
        lru_index_.erase(lru_it);
      }
    }
  }
}

Result<const Bytes*> RemoteFileClient::block_at(std::uint64_t block_start) {
  const auto hit = cache_.find(block_start);
  if (hit != cache_.end()) {
    ++cache_hits_;
    const auto lru_it = lru_index_.find(block_start);
    lru_.splice(lru_.begin(), lru_, lru_it->second);
    return &hit->second;
  }
  ++cache_misses_;
  xdr::Encoder enc;
  enc.put_u64(handle_);
  enc.put_u64(block_start);
  enc.put_u32(options_.block_size);
  GL_ASSIGN_OR_RETURN(const Bytes reply,
                      rpc_->call(method_id(Method::kPread), enc.buffer()));
  xdr::Decoder dec(reply);
  GL_ASSIGN_OR_RETURN(Bytes data, dec.bytes());
  bytes_fetched_ += data.size();
  cache_insert(block_start, std::move(data));
  return &cache_[block_start];
}

Result<std::size_t> RemoteFileClient::read(MutableByteSpan out) {
  if (closed_) return failed_precondition("read on closed remote file");
  if (!flags_.read) return permission_denied("file not open for reading");
  std::size_t got = 0;
  while (got < out.size()) {
    const std::uint64_t block_start =
        cursor_ / options_.block_size * options_.block_size;
    auto block_or = block_at(block_start);
    if (!block_or.is_ok()) {
      // Surface the error only if nothing was delivered; otherwise the
      // caller gets the partial data and hits the error on its next read
      // (cursor_ still points at the undelivered byte).
      if (got > 0) return got;
      return block_or.status();
    }
    const Bytes* block = *block_or;
    const std::uint64_t in_block = cursor_ - block_start;
    if (in_block >= block->size()) break;  // EOF (short block)
    const std::size_t take = std::min<std::size_t>(
        out.size() - got, block->size() - in_block);
    std::copy_n(block->begin() + static_cast<std::ptrdiff_t>(in_block), take,
                out.begin() + static_cast<std::ptrdiff_t>(got));
    cursor_ += take;
    got += take;
    // A block shorter than block_size marks the end of the file, unless
    // the file grew; stop here and let the caller re-read for more.
    if (block->size() < options_.block_size &&
        in_block + take >= block->size()) {
      break;
    }
  }
  return got;
}

Result<std::size_t> RemoteFileClient::write(ByteSpan data) {
  if (closed_) return failed_precondition("write on closed remote file");
  if (!flags_.write) return permission_denied("file not open for writing");
  xdr::Encoder enc;
  enc.put_u64(handle_);
  enc.put_u64(cursor_);
  enc.put_bytes(data);
  GL_ASSIGN_OR_RETURN(const Bytes reply,
                      rpc_->call(method_id(Method::kPwrite), enc.buffer()));
  xdr::Decoder dec(reply);
  GL_ASSIGN_OR_RETURN(const std::uint64_t written, dec.u64());
  cache_invalidate_range(cursor_, data.size());
  cursor_ += written;
  size_ = std::max(size_, cursor_);
  return static_cast<std::size_t>(written);
}

Result<std::uint64_t> RemoteFileClient::seek(std::int64_t offset,
                                             vfs::Whence whence) {
  if (closed_) return failed_precondition("seek on closed remote file");
  std::int64_t base = 0;
  switch (whence) {
    case vfs::Whence::kSet: base = 0; break;
    case vfs::Whence::kCurrent: base = static_cast<std::int64_t>(cursor_);
      break;
    case vfs::Whence::kEnd: base = static_cast<std::int64_t>(size_); break;
  }
  const std::int64_t target = base + offset;
  if (target < 0) return invalid_argument("seek before start of file");
  cursor_ = static_cast<std::uint64_t>(target);
  return cursor_;
}

std::uint64_t RemoteFileClient::tell() const { return cursor_; }

Result<std::uint64_t> RemoteFileClient::size() {
  if (closed_) return failed_precondition("size of closed remote file");
  return size_;
}

Status RemoteFileClient::flush() { return Status::ok(); }

Status RemoteFileClient::close() {
  if (closed_) return Status::ok();
  closed_ = true;
  xdr::Encoder enc;
  enc.put_u64(handle_);
  auto reply = rpc_->call(method_id(Method::kClose), enc.buffer());
  return reply.status();
}

std::string RemoteFileClient::describe() const {
  return strings::cat("remote:", rpc_->server().to_string(), "!",
                      remote_path_);
}

}  // namespace griddles::remote
