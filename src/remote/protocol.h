// Wire protocol of the remote file service (the GridFTP substitute).
//
// Two access styles coexist, mirroring the two remote modes of §3.1:
//  - stateful handles (kOpen/kPread/kPwrite/kClose) for proxy access,
//  - stateless chunk transfers (kGetChunk/kPutChunk) for staged copies,
//    which the FileCopier drives over several parallel connections the
//    way GridFTP uses parallel streams.
#pragma once

#include <cstdint>

namespace griddles::remote {

enum class Method : std::uint16_t {
  kOpen = 1,      // (path, read, write, create, truncate) -> handle, size
  kClose = 2,     // (handle)
  kPread = 3,     // (handle, offset, length) -> bytes (short read at EOF)
  kPwrite = 4,    // (handle, offset, bytes) -> bytes written
  kStat = 5,      // (path) -> exists, size
  kGetChunk = 6,  // (path, offset, length) -> bytes
  kPutChunk = 7,  // (path, offset, truncate_to_offset, bytes)
  kTruncate = 8,  // (path, size)
  kRemove = 9,    // (path)
  kList = 10,     // (path) -> names
  kChecksum = 11, // (path) -> fnv1a of contents (replica verification)
  kRelayChunk = 12,  // (subtree, offset, truncate, bytes) -> dead hosts:
                     // write the chunk locally, forward it to every child
                     // subtree (multicast relay hop, DESIGN.md §12)
};

constexpr std::uint16_t method_id(Method m) {
  return static_cast<std::uint16_t>(m);
}

/// Default chunk size for staged copies. Large chunks are the reason a
/// file copy tolerates latency better than a 4 KiB buffer stream
/// (paper §5.3).
inline constexpr std::uint32_t kDefaultCopyChunk = 1u << 20;

/// Default block size for proxy reads (client-side cache granularity).
inline constexpr std::uint32_t kDefaultProxyBlock = 64u << 10;

}  // namespace griddles::remote
