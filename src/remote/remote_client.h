// RemoteFileClient: proxy-mode access to a file on a remote FileServer
// (the paper's "Remote File Client", Figure 4).
//
// Reads go through a client-side LRU block cache with sequential
// read-ahead sizing; writes are write-through (and invalidate overlapping
// cached blocks) so a reopened file always observes its own writes.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <memory>

#include "src/net/rpc.h"
#include "src/remote/protocol.h"
#include "src/vfs/file_client.h"

namespace griddles::remote {

class RemoteFileClient final : public vfs::FileClient {
 public:
  struct Options {
    std::uint32_t block_size = kDefaultProxyBlock;
    std::size_t cache_blocks = 64;  // LRU capacity
  };

  /// Opens `remote_path` on the server at `server_endpoint`.
  static Result<std::unique_ptr<RemoteFileClient>> open(
      net::Transport& transport, const net::Endpoint& server_endpoint,
      const std::string& remote_path, vfs::OpenFlags flags, Options options);
  static Result<std::unique_ptr<RemoteFileClient>> open(
      net::Transport& transport, const net::Endpoint& server_endpoint,
      const std::string& remote_path, vfs::OpenFlags flags) {
    return open(transport, server_endpoint, remote_path, flags, Options{});
  }

  ~RemoteFileClient() override;

  Result<std::size_t> read(MutableByteSpan out) override;
  Result<std::size_t> write(ByteSpan data) override;
  Result<std::uint64_t> seek(std::int64_t offset, vfs::Whence whence) override;
  std::uint64_t tell() const override;
  Result<std::uint64_t> size() override;
  Status flush() override;
  Status close() override;
  std::string describe() const override;

  /// Cache statistics, for tests and the advisor ablation.
  std::uint64_t cache_hits() const noexcept { return cache_hits_; }
  std::uint64_t cache_misses() const noexcept { return cache_misses_; }
  std::uint64_t bytes_fetched() const noexcept { return bytes_fetched_; }

 private:
  RemoteFileClient(std::unique_ptr<net::RpcClient> rpc, std::uint64_t handle,
                   std::uint64_t size, std::string remote_path,
                   vfs::OpenFlags flags, Options options);

  /// Returns the cached block starting at block_start, fetching on miss.
  Result<const Bytes*> block_at(std::uint64_t block_start);
  void cache_insert(std::uint64_t block_start, Bytes data);
  void cache_invalidate_range(std::uint64_t offset, std::size_t length);

  std::unique_ptr<net::RpcClient> rpc_;
  std::uint64_t handle_;
  std::uint64_t size_;
  std::string remote_path_;
  vfs::OpenFlags flags_;
  Options options_;
  std::uint64_t cursor_ = 0;
  bool closed_ = false;

  // LRU block cache: block start offset -> payload.
  std::map<std::uint64_t, Bytes> cache_;
  std::list<std::uint64_t> lru_;  // front = most recent
  std::map<std::uint64_t, std::list<std::uint64_t>::iterator> lru_index_;
  std::uint64_t cache_hits_ = 0;
  std::uint64_t cache_misses_ = 0;
  std::uint64_t bytes_fetched_ = 0;
};

}  // namespace griddles::remote
