// The remote file server: GriddLeS' stand-in for a GridFTP server.
//
// Serves one exported directory tree over RPC. Paths are validated so a
// client can never escape the root. Positioned reads/writes (pread/
// pwrite) make concurrent handles and parallel copy streams safe.
#pragma once

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <string>

#include "src/multicast/relay.h"
#include "src/net/rpc.h"
#include "src/common/thread_annotations.h"
#include "src/remote/protocol.h"

namespace griddles::remote {

class FileServer {
 public:
  /// Exports `root` (created if missing) at `bind`.
  FileServer(std::filesystem::path root, net::Transport& transport,
             net::Endpoint bind,
             net::WireFormat format = net::WireFormat::kBinary);
  ~FileServer();

  Status start();
  void stop();
  net::Endpoint endpoint() const { return rpc_.endpoint(); }
  const std::filesystem::path& root() const noexcept { return root_; }

  /// Open handles currently held by clients (for leak tests).
  std::size_t open_handles() const;

 private:
  struct OpenFile {
    int fd = -1;
    bool writable = false;
    std::string path;
  };

  void register_handlers();
  Result<std::filesystem::path> resolve(const std::string& path) const;
  Result<Bytes> handle_open(ByteSpan request);
  Result<Bytes> handle_close(ByteSpan request);
  Result<Bytes> handle_pread(ByteSpan request);
  Result<Bytes> handle_pwrite(ByteSpan request);
  Result<Bytes> handle_stat(ByteSpan request);
  Result<Bytes> handle_get_chunk(ByteSpan request);
  Result<Bytes> handle_put_chunk(ByteSpan request);
  Result<Bytes> handle_truncate(ByteSpan request);
  Result<Bytes> handle_remove(ByteSpan request);
  Result<Bytes> handle_list(ByteSpan request);
  Result<Bytes> handle_checksum(ByteSpan request);
  Result<Bytes> handle_relay_chunk(ByteSpan request);

  /// Shared pwrite body of kPutChunk and kRelayChunk.
  Status write_chunk(const std::string& path, std::uint64_t offset,
                     bool truncate_to_offset, ByteSpan data);

  std::filesystem::path root_;
  net::RpcServer rpc_;
  multicast::RelayForwarder forwarder_;
  /// Cumulative bytes this server forwarded as a relay — the `after=`
  /// high-water mark of `die@relay:<host>` fault rules.
  // lint: not-a-metric (fault-site high-water mark)
  std::atomic<std::uint64_t> relayed_bytes_{0};
  mutable Mutex mu_;
  std::map<std::uint64_t, OpenFile> handles_ GUARDED_BY(mu_);
  std::uint64_t next_handle_ GUARDED_BY(mu_) = 1;
};

}  // namespace griddles::remote
