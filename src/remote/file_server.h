// The remote file server: GriddLeS' stand-in for a GridFTP server.
//
// Serves one exported directory tree over RPC. Paths are validated so a
// client can never escape the root. Positioned reads/writes (pread/
// pwrite) make concurrent handles and parallel copy streams safe.
#pragma once

#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <string>

#include "src/net/rpc.h"
#include "src/common/thread_annotations.h"
#include "src/remote/protocol.h"

namespace griddles::remote {

class FileServer {
 public:
  /// Exports `root` (created if missing) at `bind`.
  FileServer(std::filesystem::path root, net::Transport& transport,
             net::Endpoint bind,
             net::WireFormat format = net::WireFormat::kBinary);
  ~FileServer();

  Status start();
  void stop();
  net::Endpoint endpoint() const { return rpc_.endpoint(); }
  const std::filesystem::path& root() const noexcept { return root_; }

  /// Open handles currently held by clients (for leak tests).
  std::size_t open_handles() const;

 private:
  struct OpenFile {
    int fd = -1;
    bool writable = false;
    std::string path;
  };

  void register_handlers();
  Result<std::filesystem::path> resolve(const std::string& path) const;
  Result<Bytes> handle_open(ByteSpan request);
  Result<Bytes> handle_close(ByteSpan request);
  Result<Bytes> handle_pread(ByteSpan request);
  Result<Bytes> handle_pwrite(ByteSpan request);
  Result<Bytes> handle_stat(ByteSpan request);
  Result<Bytes> handle_get_chunk(ByteSpan request);
  Result<Bytes> handle_put_chunk(ByteSpan request);
  Result<Bytes> handle_truncate(ByteSpan request);
  Result<Bytes> handle_remove(ByteSpan request);
  Result<Bytes> handle_list(ByteSpan request);
  Result<Bytes> handle_checksum(ByteSpan request);

  std::filesystem::path root_;
  net::RpcServer rpc_;
  mutable Mutex mu_;
  std::map<std::uint64_t, OpenFile> handles_ GUARDED_BY(mu_);
  std::uint64_t next_handle_ GUARDED_BY(mu_) = 1;
};

}  // namespace griddles::remote
