// AccessAdvisor: the copy-vs-proxy heuristic of paper §3.1.
//
//   "If an application reads a small fraction of the remote file, it may
//    not warrant copying it to the local file system. Further, if the
//    file is very large, it may not be possible to copy it [...]. On the
//    other hand, if a file is small and the latency to the remote system
//    is high, then it is more efficient to copy the file."
//
// The advisor turns that prose into a cost model over (file size,
// expected access fraction, link estimate) and picks the cheaper plan.
#pragma once

#include <cstdint>

#include "src/nws/forecast.h"

namespace griddles::remote {

enum class RemoteStrategy : std::uint8_t { kCopy = 0, kProxy = 1 };

struct AdvisorPolicy {
  std::uint32_t proxy_block_size = 64u << 10;  // per-request proxy payload
  std::uint32_t copy_chunk_size = 1u << 20;
  int copy_streams = 4;
  /// Files larger than this are never copied (0 = no cap) — the paper's
  /// "may not be possible to copy it".
  std::uint64_t max_copy_bytes = 0;
};

struct Advice {
  RemoteStrategy strategy = RemoteStrategy::kCopy;
  double copy_cost_seconds = 0;
  double proxy_cost_seconds = 0;
};

/// Estimates both plans and picks the cheaper one. Pure scoring — no
/// telemetry; use it to price candidate legs of a multi-destination copy
/// without each leg counting as a separate advisor decision.
Advice advise_quiet(std::uint64_t file_size, double access_fraction,
                    const nws::LinkEstimate& link,
                    const AdvisorPolicy& policy);

/// Records one logical decision into `advisor.decisions.*` and the
/// predicted-cost histograms. A multi-destination copy scores every leg
/// with advise_quiet() and records the bottleneck leg exactly once.
void record_advice(const Advice& advice);

/// Estimates both plans and picks the cheaper one, recording the
/// decision (advise_quiet + record_advice).
///
/// Copy: parallel-stream bulk transfer — a handful of round trips plus
/// size/bandwidth. Proxy: one request/response round trip per touched
/// block, of which access_fraction * size / block_size are expected.
Advice advise(std::uint64_t file_size, double access_fraction,
              const nws::LinkEstimate& link, const AdvisorPolicy& policy);

inline Advice advise(std::uint64_t file_size, double access_fraction,
                     const nws::LinkEstimate& link) {
  return advise(file_size, access_fraction, link, AdvisorPolicy{});
}

}  // namespace griddles::remote
