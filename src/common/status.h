// Status and Result<T>: the error-handling vocabulary used across GriddLeS.
//
// All fallible operations return either a Status (for void results) or a
// Result<T>. gcc 12 ships no <expected>, so this is a minimal, allocation-
// free equivalent tailored to what the library needs.
#pragma once

#include <cassert>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace griddles {

/// Canonical error categories, loosely mirroring POSIX/absl codes.
enum class ErrorCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kPermissionDenied,
  kUnavailable,    // transient: endpoint unreachable, retry may help
  kTimeout,
  kClosed,         // stream/channel closed by peer
  kIoError,
  kOutOfRange,
  kResourceExhausted,
  kFailedPrecondition,
  kAborted,
  kUnimplemented,
  kInternal,
  kDataLoss,       // payload verifiably wrong/incomplete: checksum
                   // mismatch, truncated transfer, dead stream peer
  kDeadlineExceeded,  // the caller's end-to-end budget ran out; the
                      // work was rejected or abandoned, not attempted
};

/// Human-readable name for an error code ("NOT_FOUND", ...).
std::string_view error_code_name(ErrorCode code) noexcept;

/// A success-or-error value carrying a code and a diagnostic message.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() noexcept : code_(ErrorCode::kOk) {}
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    assert(code != ErrorCode::kOk && "use Status::ok() for success");
  }

  static Status ok() noexcept { return Status(); }

  bool is_ok() const noexcept { return code_ == ErrorCode::kOk; }
  ErrorCode code() const noexcept { return code_; }
  const std::string& message() const noexcept { return message_; }

  /// "NOT_FOUND: no mapping for /data/job.sf" (or "OK").
  std::string to_string() const;

  friend bool operator==(const Status& a, const Status& b) noexcept {
    return a.code_ == b.code_;
  }

 private:
  ErrorCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& s);

// Convenience constructors, e.g. `return not_found("no such channel");`.
Status invalid_argument(std::string msg);
Status not_found(std::string msg);
Status already_exists(std::string msg);
Status permission_denied(std::string msg);
Status unavailable(std::string msg);
Status timeout_error(std::string msg);
Status closed_error(std::string msg);
Status io_error(std::string msg);
Status out_of_range(std::string msg);
Status resource_exhausted(std::string msg);
Status failed_precondition(std::string msg);
Status aborted_error(std::string msg);
Status unimplemented(std::string msg);
Status internal_error(std::string msg);
Status data_loss(std::string msg);
Status deadline_exceeded(std::string msg);

/// Either a value of type T or an error Status. Never holds an OK status.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : rep_(std::in_place_index<0>, std::move(value)) {}  // NOLINT
  Result(Status status)                                                // NOLINT
      : rep_(std::in_place_index<1>, std::move(status)) {
    assert(!std::get<1>(rep_).is_ok() && "Result error must not be OK");
  }

  bool is_ok() const noexcept { return rep_.index() == 0; }
  explicit operator bool() const noexcept { return is_ok(); }

  /// The error status; OK when the result holds a value.
  Status status() const {
    return is_ok() ? Status::ok() : std::get<1>(rep_);
  }

  T& value() & {
    assert(is_ok());
    return std::get<0>(rep_);
  }
  const T& value() const& {
    assert(is_ok());
    return std::get<0>(rep_);
  }
  T&& value() && {
    assert(is_ok());
    return std::get<0>(std::move(rep_));
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  T value_or(T fallback) const& {
    return is_ok() ? std::get<0>(rep_) : std::move(fallback);
  }

 private:
  std::variant<T, Status> rep_;
};

namespace internal {
inline Status as_status(Status s) { return s; }
template <typename T>
Status as_status(const Result<T>& r) {
  return r.status();
}
}  // namespace internal

}  // namespace griddles

/// Propagates a non-OK Status / Result from the current function.
#define GL_RETURN_IF_ERROR(expr)                                   \
  do {                                                             \
    if (auto gl_status_ = ::griddles::internal::as_status((expr)); \
        !gl_status_.is_ok()) {                                     \
      return gl_status_;                                           \
    }                                                              \
  } while (false)

#define GL_CONCAT_INNER_(a, b) a##b
#define GL_CONCAT_(a, b) GL_CONCAT_INNER_(a, b)

/// `GL_ASSIGN_OR_RETURN(auto v, compute());` — unwraps or propagates.
#define GL_ASSIGN_OR_RETURN(lhs, expr)                      \
  auto GL_CONCAT_(gl_result_, __LINE__) = (expr);           \
  if (!GL_CONCAT_(gl_result_, __LINE__).is_ok()) {          \
    return GL_CONCAT_(gl_result_, __LINE__).status();       \
  }                                                         \
  lhs = std::move(GL_CONCAT_(gl_result_, __LINE__)).value()
