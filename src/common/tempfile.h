// RAII temporary directories, used for Grid Buffer cache files, staged
// remote copies, and test fixtures.
#pragma once

#include <filesystem>
#include <string>

#include "src/common/status.h"

namespace griddles {

/// Creates a unique directory under the system temp root and removes it
/// (recursively) on destruction.
class TempDir {
 public:
  /// `tag` becomes part of the directory name for debuggability.
  static Result<TempDir> create(const std::string& tag = "griddles");

  TempDir(TempDir&& other) noexcept;
  TempDir& operator=(TempDir&& other) noexcept;
  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;
  ~TempDir();

  const std::filesystem::path& path() const noexcept { return path_; }

  /// Joins a relative name onto the directory.
  std::filesystem::path file(const std::string& name) const {
    return path_ / name;
  }

 private:
  explicit TempDir(std::filesystem::path path) : path_(std::move(path)) {}
  std::filesystem::path path_;
};

}  // namespace griddles
