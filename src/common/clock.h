// Time abstraction so every GriddLeS component can run at real speed, at a
// scaled speed (laptop reproduction of the paper's minutes-long WAN runs),
// or under manual control in unit tests.
//
// All components express *model time* as a Duration since the clock's
// origin. A ScaledClock maps model time onto wall time by a constant
// factor, so a 99-minute paper experiment replays in a few wall seconds
// while preserving every ordering and ratio.
#pragma once

#include <chrono>

#include "src/common/thread_annotations.h"

namespace griddles {

using Duration = std::chrono::nanoseconds;
using WallClock = std::chrono::steady_clock;

constexpr Duration from_seconds_d(double seconds) {
  return std::chrono::duration_cast<Duration>(
      std::chrono::duration<double>(seconds));
}

constexpr double to_seconds_d(Duration d) {
  return std::chrono::duration<double>(d).count();
}

/// Model-time clock interface.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Model time elapsed since the clock's origin.
  virtual Duration now() const = 0;

  /// Blocks the calling thread for the given model duration.
  virtual void sleep_for(Duration d) = 0;

  /// Maps a model-time timeout into a wall-clock deadline, for use with
  /// condition_variable::wait_until inside blocking primitives.
  virtual WallClock::time_point wall_deadline(Duration model_timeout) const = 0;

  /// Wall seconds per model second (1.0 for real time). Lets callers
  /// batch many tiny model-time waits into sleeps long enough to be
  /// accurate on a real OS timer.
  virtual double wall_seconds_per_model_second() const { return 1.0; }

  void sleep_until(Duration model_time) {
    const Duration current = now();
    if (model_time > current) sleep_for(model_time - current);
  }
};

/// Model time == wall time.
class RealClock final : public Clock {
 public:
  RealClock() : origin_(WallClock::now()) {}

  Duration now() const override { return WallClock::now() - origin_; }
  void sleep_for(Duration d) override;
  WallClock::time_point wall_deadline(Duration model_timeout) const override {
    return WallClock::now() + model_timeout;
  }

 private:
  WallClock::time_point origin_;
};

/// Model time runs `1/scale` times faster than wall time: with
/// scale = 0.001, one model minute passes in 60 wall milliseconds.
class ScaledClock final : public Clock {
 public:
  /// `wall_per_model`: wall seconds elapsing per model second. Must be > 0.
  explicit ScaledClock(double wall_per_model);

  Duration now() const override;
  void sleep_for(Duration d) override;
  WallClock::time_point wall_deadline(Duration model_timeout) const override;
  double wall_seconds_per_model_second() const override {
    return wall_per_model_;
  }

  double wall_per_model() const noexcept { return wall_per_model_; }

 private:
  Duration to_wall(Duration model) const;
  double wall_per_model_;
  WallClock::time_point origin_;
};

/// Test clock: time advances only via advance(); sleepers are woken when
/// their model deadline is reached.
class ManualClock final : public Clock {
 public:
  ManualClock() = default;

  Duration now() const override;
  void sleep_for(Duration d) override;
  WallClock::time_point wall_deadline(Duration model_timeout) const override;

  /// Moves model time forward, releasing any sleeps that have matured.
  void advance(Duration d);

 private:
  mutable Mutex mu_;
  CondVar cv_;
  Duration now_ GUARDED_BY(mu_){0};
};

}  // namespace griddles
