#include "src/common/clock.h"

#include <cassert>
#include <thread>

namespace griddles {

void RealClock::sleep_for(Duration d) {
  if (d > Duration::zero()) std::this_thread::sleep_for(d);
}

ScaledClock::ScaledClock(double wall_per_model)
    : wall_per_model_(wall_per_model), origin_(WallClock::now()) {
  assert(wall_per_model > 0.0);
}

Duration ScaledClock::to_wall(Duration model) const {
  return std::chrono::duration_cast<Duration>(
      std::chrono::duration<double>(to_seconds_d(model) * wall_per_model_));
}

Duration ScaledClock::now() const {
  const Duration wall = WallClock::now() - origin_;
  return std::chrono::duration_cast<Duration>(
      std::chrono::duration<double>(to_seconds_d(wall) / wall_per_model_));
}

void ScaledClock::sleep_for(Duration d) {
  const Duration wall = to_wall(d);
  if (wall > Duration::zero()) std::this_thread::sleep_for(wall);
}

WallClock::time_point ScaledClock::wall_deadline(
    Duration model_timeout) const {
  return WallClock::now() + to_wall(model_timeout);
}

Duration ManualClock::now() const {
  MutexLock lock(mu_);
  return now_;
}

void ManualClock::sleep_for(Duration d) {
  MutexLock lock(mu_);
  const Duration deadline = now_ + d;
  // lint: blocking-ok (monitor wait: releases mu_ until advance())
  cv_.wait(mu_, [&]() REQUIRES(mu_) { return now_ >= deadline; });
}

WallClock::time_point ManualClock::wall_deadline(
    Duration model_timeout) const {
  // Blocking primitives polled under a ManualClock treat the model timeout
  // as a wall timeout; tests that exercise timeouts use short durations.
  return WallClock::now() + model_timeout;
}

void ManualClock::advance(Duration d) {
  {
    MutexLock lock(mu_);
    now_ += d;
  }
  cv_.notify_all();
}

}  // namespace griddles
