// Byte-buffer vocabulary types and conversions.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace griddles {

using Bytes = std::vector<std::byte>;
using ByteSpan = std::span<const std::byte>;
using MutableByteSpan = std::span<std::byte>;

inline Bytes to_bytes(std::string_view text) {
  Bytes out(text.size());
  std::memcpy(out.data(), text.data(), text.size());
  return out;
}

inline std::string to_string(ByteSpan bytes) {
  return {reinterpret_cast<const char*>(bytes.data()), bytes.size()};
}

inline ByteSpan as_bytes_view(std::string_view text) {
  return {reinterpret_cast<const std::byte*>(text.data()), text.size()};
}

/// 64-bit FNV-1a; used for content checksums in tests and replica etags.
inline std::uint64_t fnv1a(ByteSpan bytes) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const std::byte b : bytes) {
    hash ^= static_cast<std::uint64_t>(b);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

}  // namespace griddles
