// Byte-buffer vocabulary types and conversions.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace griddles {

using Bytes = std::vector<std::byte>;
using ByteSpan = std::span<const std::byte>;
using MutableByteSpan = std::span<std::byte>;

inline Bytes to_bytes(std::string_view text) {
  Bytes out(text.size());
  std::memcpy(out.data(), text.data(), text.size());
  return out;
}

inline std::string to_string(ByteSpan bytes) {
  return {reinterpret_cast<const char*>(bytes.data()), bytes.size()};
}

inline ByteSpan as_bytes_view(std::string_view text) {
  return {reinterpret_cast<const std::byte*>(text.data()), text.size()};
}

/// 64-bit FNV-1a; used for content checksums in tests, replica etags and
/// copy verification. The incremental form hashes a stream chunk by
/// chunk: seed with kFnv1aSeed, fold each chunk through fnv1a_update.
constexpr std::uint64_t kFnv1aSeed = 0xcbf29ce484222325ULL;

inline std::uint64_t fnv1a_update(std::uint64_t hash, ByteSpan bytes) {
  for (const std::byte b : bytes) {
    hash ^= static_cast<std::uint64_t>(b);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

inline std::uint64_t fnv1a(ByteSpan bytes) {
  return fnv1a_update(kFnv1aSeed, bytes);
}

}  // namespace griddles
