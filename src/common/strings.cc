#include "src/common/strings.h"

#include <string.h>  // strerror_r (POSIX declaration)

#include <algorithm>
#include <cctype>

namespace griddles::strings {

std::vector<std::string> split(std::string_view text, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view trim(std::string_view text) {
  while (!text.empty() &&
         std::isspace(static_cast<unsigned char>(text.front()))) {
    text.remove_prefix(1);
  }
  while (!text.empty() &&
         std::isspace(static_cast<unsigned char>(text.back()))) {
    text.remove_suffix(1);
  }
  return text;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

bool glob_match(std::string_view pattern, std::string_view text) {
  // Iterative matcher with backtracking over the most recent '*'.
  std::size_t p = 0, t = 0;
  std::size_t star = std::string_view::npos, star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '?' || pattern[p] == text[t])) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      star_t = t;
    } else if (star != std::string_view::npos) {
      p = star + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

std::optional<long long> parse_int(std::string_view text) {
  text = trim(text);
  long long value = 0;
  const auto* begin = text.data();
  const auto* end = text.data() + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end || text.empty()) return std::nullopt;
  return value;
}

std::optional<double> parse_double(std::string_view text) {
  text = trim(text);
  if (text.empty()) return std::nullopt;
  // gcc 12 lacks from_chars for double in some configs; use strtod.
  std::string owned(text);
  char* end = nullptr;
  const double value = std::strtod(owned.c_str(), &end);
  if (end != owned.c_str() + owned.size()) return std::nullopt;
  return value;
}

std::optional<bool> parse_bool(std::string_view text) {
  std::string lower(trim(text));
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (lower == "true" || lower == "yes" || lower == "on" || lower == "1") {
    return true;
  }
  if (lower == "false" || lower == "no" || lower == "off" || lower == "0") {
    return false;
  }
  return std::nullopt;
}

namespace {
std::string two_digits(long long v) {
  std::string s = std::to_string(v);
  return s.size() < 2 ? "0" + s : s;
}
}  // namespace

std::string format_hms(long long seconds) {
  const long long h = seconds / 3600;
  const long long m = (seconds % 3600) / 60;
  const long long s = seconds % 60;
  return two_digits(h) + ":" + two_digits(m) + ":" + two_digits(s);
}

std::string format_ms(long long seconds) {
  const long long m = seconds / 60;
  const long long s = seconds % 60;
  return two_digits(m) + ":" + two_digits(s);
}

namespace {
// Disambiguates the two strerror_r flavours: glibc's GNU variant returns
// the message pointer (possibly ignoring the buffer), the XSI variant
// returns an int and always fills the buffer.
const char* strerror_result(const char* returned, const char*) {
  return returned;
}
const char* strerror_result(int, const char* buffer) { return buffer; }
}  // namespace

std::string errno_message(int errnum) {
  char buffer[256] = {};
  return strerror_result(::strerror_r(errnum, buffer, sizeof(buffer)),
                         buffer);
}

}  // namespace griddles::strings
