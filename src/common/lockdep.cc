#include "src/common/lockdep.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace griddles::lockdep {

namespace internal {
std::atomic<bool> g_enabled{false};
}  // namespace internal

namespace {

// The detector's own state is guarded by a raw std::mutex on purpose:
// routing it through griddles::Mutex would re-enter the hooks.
struct State {
  std::mutex mu;
  // Adjacency: A -> set of B ever acquired while A was held.
  std::unordered_map<const void*, std::unordered_set<const void*>> edges;
  std::uint64_t edge_count = 0;
  std::uint64_t violation_count = 0;
  std::string last_violation;
};

State& state() {
  static State* s = new State();  // leaked: outlives every static Mutex
  return *s;
}

std::atomic<ViolationPolicy> g_policy{ViolationPolicy::kAbort};

// Per-thread stack of held lock addresses, outermost first.
thread_local std::vector<const void*> t_held;

std::string describe_lock(const void* mu) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%p", mu);
  return buf;
}

/// True if `target` is reachable from `from` in the edge graph.
/// Caller holds state().mu.
bool reachable(State& s, const void* from, const void* target) {
  std::vector<const void*> stack{from};
  std::unordered_set<const void*> seen;
  while (!stack.empty()) {
    const void* node = stack.back();
    stack.pop_back();
    if (node == target) return true;
    if (!seen.insert(node).second) continue;
    const auto it = s.edges.find(node);
    if (it == s.edges.end()) continue;
    for (const void* next : it->second) stack.push_back(next);
  }
  return false;
}

void report_violation(State& s, std::string message) {
  ++s.violation_count;
  s.last_violation = message;
  if (g_policy.load(std::memory_order_relaxed) == ViolationPolicy::kAbort) {
    std::fprintf(stderr, "lockdep: FATAL: %s\n", message.c_str());
    std::abort();
  }
}

const bool g_env_init = [] {
  const char* env = std::getenv("GRIDDLES_LOCKDEP");
  if (env != nullptr && env[0] != '\0' && std::strcmp(env, "0") != 0) {
    internal::g_enabled.store(true, std::memory_order_relaxed);
  }
  return true;
}();

}  // namespace

void set_enabled(bool on) noexcept {
  internal::g_enabled.store(on, std::memory_order_relaxed);
}

void set_violation_policy(ViolationPolicy policy) noexcept {
  g_policy.store(policy, std::memory_order_relaxed);
}

ViolationPolicy violation_policy() noexcept {
  return g_policy.load(std::memory_order_relaxed);
}

void acquiring(const void* mu) {
  // Self-deadlock: this thread already holds `mu`.
  for (const void* held : t_held) {
    if (held == mu) {
      State& s = state();
      std::lock_guard<std::mutex> guard(s.mu);
      report_violation(
          s, "recursive acquisition of lock " + describe_lock(mu) +
                 " (self-deadlock: thread already holds it)");
      // kCount mode: fall through and track the nested hold anyway so the
      // matching release keeps the stack balanced.
      break;
    }
  }
  if (!t_held.empty()) {
    State& s = state();
    std::lock_guard<std::mutex> guard(s.mu);
    for (const void* held : t_held) {
      if (held == mu) continue;
      auto& out = s.edges[held];
      if (!out.insert(mu).second) continue;  // edge already known: cheap
      ++s.edge_count;
      // New edge held -> mu: a path mu ->* held closes a cycle. The check
      // runs only on first sighting, so steady-state nesting stays cheap.
      if (reachable(s, mu, held)) {
        report_violation(
            s, "lock-order inversion: acquiring " + describe_lock(mu) +
                   " while holding " + describe_lock(held) +
                   ", but the reverse order was already observed (edge " +
                   describe_lock(mu) + " ->* " + describe_lock(held) + ")");
      }
    }
  }
  t_held.push_back(mu);
}

void released(const void* mu) {
  // MutexLock::unlock() permits out-of-order release: pop from wherever.
  for (auto it = t_held.rbegin(); it != t_held.rend(); ++it) {
    if (*it == mu) {
      t_held.erase(std::next(it).base());
      return;
    }
  }
  // Release of a lock the detector never saw acquired: the detector was
  // enabled mid-critical-section. Ignore.
}

void destroyed(const void* mu) {
  State& s = state();
  std::lock_guard<std::mutex> guard(s.mu);
  const auto it = s.edges.find(mu);
  if (it != s.edges.end()) {
    s.edge_count -= it->second.size();
    s.edges.erase(it);
  }
  for (auto& [from, targets] : s.edges) {
    s.edge_count -= targets.erase(mu);
  }
}

std::uint64_t edges() {
  State& s = state();
  std::lock_guard<std::mutex> guard(s.mu);
  return s.edge_count;
}

std::uint64_t violations() {
  State& s = state();
  std::lock_guard<std::mutex> guard(s.mu);
  return s.violation_count;
}

std::string last_violation() {
  State& s = state();
  std::lock_guard<std::mutex> guard(s.mu);
  return s.last_violation;
}

std::size_t held_depth() { return t_held.size(); }

void reset() {
  State& s = state();
  std::lock_guard<std::mutex> guard(s.mu);
  s.edges.clear();
  s.edge_count = 0;
  s.violation_count = 0;
  s.last_violation.clear();
}

}  // namespace griddles::lockdep
