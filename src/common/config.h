// INI-style configuration files, used for GNS mapping databases and
// testbed definitions.
//
//   [section]
//   key = value        ; comment
//   # comment
//
// Keys are addressed as "section.key"; keys before any section header live
// in the "" section and are addressed by bare name.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"

namespace griddles {

class Config {
 public:
  Config() = default;

  /// Parses from text; returns a line-numbered error on malformed input.
  static Result<Config> parse(std::string_view text);

  /// Reads and parses a file.
  static Result<Config> load(const std::string& path);

  bool has(std::string_view key) const;

  std::optional<std::string> get(std::string_view key) const;
  std::string get_or(std::string_view key, std::string fallback) const;
  Result<std::string> get_required(std::string_view key) const;

  Result<long long> get_int(std::string_view key) const;
  Result<double> get_double(std::string_view key) const;
  Result<bool> get_bool(std::string_view key) const;

  long long get_int_or(std::string_view key, long long fallback) const;
  double get_double_or(std::string_view key, double fallback) const;
  bool get_bool_or(std::string_view key, bool fallback) const;

  void set(std::string key, std::string value);

  /// All section names, in insertion order.
  std::vector<std::string> sections() const;

  /// All "section.key" keys belonging to a section.
  std::vector<std::string> keys_in(std::string_view section) const;

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> section_order_;
};

}  // namespace griddles
