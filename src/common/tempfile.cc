#include "src/common/tempfile.h"

#include <atomic>
#include <random>

#include "src/common/strings.h"

namespace griddles {

namespace {
std::uint64_t unique_suffix() {
  // lint: not-a-metric (name uniquifier)
  static std::atomic<std::uint64_t> counter{0};
  static const std::uint64_t seed = std::random_device{}();
  return seed ^ (counter.fetch_add(1) + 0x9e3779b97f4a7c15ULL);
}
}  // namespace

Result<TempDir> TempDir::create(const std::string& tag) {
  namespace fs = std::filesystem;
  std::error_code ec;
  const fs::path root = fs::temp_directory_path(ec);
  if (ec) return io_error("no temp directory: " + ec.message());
  for (int attempt = 0; attempt < 16; ++attempt) {
    fs::path candidate =
        root / strings::cat(tag, "-", std::hex, unique_suffix());
    if (fs::create_directory(candidate, ec) && !ec) {
      return TempDir(std::move(candidate));
    }
  }
  return io_error("could not create unique temp directory under " +
                  root.string());
}

TempDir::TempDir(TempDir&& other) noexcept : path_(std::move(other.path_)) {
  other.path_.clear();
}

TempDir& TempDir::operator=(TempDir&& other) noexcept {
  if (this != &other) {
    this->~TempDir();
    path_ = std::move(other.path_);
    other.path_.clear();
  }
  return *this;
}

TempDir::~TempDir() {
  if (!path_.empty()) {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);  // best-effort cleanup
  }
}

}  // namespace griddles
