#include "src/common/logging.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>

namespace griddles::log {

Level parse_level(std::string_view text) noexcept {
  if (text == "trace") return Level::kTrace;
  if (text == "debug") return Level::kDebug;
  if (text == "info") return Level::kInfo;
  if (text == "warn") return Level::kWarn;
  if (text == "error") return Level::kError;
  if (text == "off") return Level::kOff;
  return Level::kWarn;
}

namespace {
Level level_from_env() {
  // Read once at startup before any thread could call setenv.
  const char* env = std::getenv("GRIDDLES_LOG");  // NOLINT(concurrency-mt-unsafe)
  return env == nullptr ? Level::kWarn : parse_level(env);
}

const char* level_tag(Level level) {
  switch (level) {
    case Level::kTrace: return "T";
    case Level::kDebug: return "D";
    case Level::kInfo: return "I";
    case Level::kWarn: return "W";
    case Level::kError: return "E";
    case Level::kOff: return "?";
  }
  return "?";
}

std::string_view basename_of(std::string_view file) {
  const std::size_t pos = file.find_last_of('/');
  return pos == std::string_view::npos ? file : file.substr(pos + 1);
}
}  // namespace

Logger::Logger() : level_(level_from_env()) {}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::write(Level level, std::string_view file, int line,
                   const std::string& message) {
  const auto now = std::chrono::system_clock::now().time_since_epoch();
  const auto us =
      std::chrono::duration_cast<std::chrono::microseconds>(now).count();
  const std::string base(basename_of(file));
  MutexLock lock(mu_);
  std::fprintf(stderr, "[%s %lld.%06lld %s:%d] %s\n", level_tag(level),
               static_cast<long long>(us / 1000000),
               static_cast<long long>(us % 1000000), base.c_str(), line,
               message.c_str());
}

}  // namespace griddles::log
