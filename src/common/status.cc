#include "src/common/status.h"

namespace griddles {

std::string_view error_code_name(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kOk: return "OK";
    case ErrorCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case ErrorCode::kNotFound: return "NOT_FOUND";
    case ErrorCode::kAlreadyExists: return "ALREADY_EXISTS";
    case ErrorCode::kPermissionDenied: return "PERMISSION_DENIED";
    case ErrorCode::kUnavailable: return "UNAVAILABLE";
    case ErrorCode::kTimeout: return "TIMEOUT";
    case ErrorCode::kClosed: return "CLOSED";
    case ErrorCode::kIoError: return "IO_ERROR";
    case ErrorCode::kOutOfRange: return "OUT_OF_RANGE";
    case ErrorCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case ErrorCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case ErrorCode::kAborted: return "ABORTED";
    case ErrorCode::kUnimplemented: return "UNIMPLEMENTED";
    case ErrorCode::kInternal: return "INTERNAL";
    case ErrorCode::kDataLoss: return "DATA_LOSS";
    case ErrorCode::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
  }
  return "UNKNOWN";
}

std::string Status::to_string() const {
  if (is_ok()) return "OK";
  std::string out(error_code_name(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.to_string();
}

Status invalid_argument(std::string msg) {
  return {ErrorCode::kInvalidArgument, std::move(msg)};
}
Status not_found(std::string msg) {
  return {ErrorCode::kNotFound, std::move(msg)};
}
Status already_exists(std::string msg) {
  return {ErrorCode::kAlreadyExists, std::move(msg)};
}
Status permission_denied(std::string msg) {
  return {ErrorCode::kPermissionDenied, std::move(msg)};
}
Status unavailable(std::string msg) {
  return {ErrorCode::kUnavailable, std::move(msg)};
}
Status timeout_error(std::string msg) {
  return {ErrorCode::kTimeout, std::move(msg)};
}
Status closed_error(std::string msg) {
  return {ErrorCode::kClosed, std::move(msg)};
}
Status io_error(std::string msg) {
  return {ErrorCode::kIoError, std::move(msg)};
}
Status out_of_range(std::string msg) {
  return {ErrorCode::kOutOfRange, std::move(msg)};
}
Status resource_exhausted(std::string msg) {
  return {ErrorCode::kResourceExhausted, std::move(msg)};
}
Status failed_precondition(std::string msg) {
  return {ErrorCode::kFailedPrecondition, std::move(msg)};
}
Status aborted_error(std::string msg) {
  return {ErrorCode::kAborted, std::move(msg)};
}
Status unimplemented(std::string msg) {
  return {ErrorCode::kUnimplemented, std::move(msg)};
}
Status internal_error(std::string msg) {
  return {ErrorCode::kInternal, std::move(msg)};
}
Status data_loss(std::string msg) {
  return {ErrorCode::kDataLoss, std::move(msg)};
}
Status deadline_exceeded(std::string msg) {
  return {ErrorCode::kDeadlineExceeded, std::move(msg)};
}

}  // namespace griddles
