// Clang thread-safety annotations and the annotated locking vocabulary
// used across GriddLeS.
//
// Every lock in the codebase is a griddles::Mutex held through a
// griddles::MutexLock; data it protects is declared GUARDED_BY(mu_) and
// helpers that expect the lock held are marked REQUIRES(mu_). Under
// Clang, `-Wthread-safety -Werror=thread-safety-analysis` (wired up in
// the top-level CMakeLists when the compiler supports it) turns any
// missed-lock access into a compile error; under GCC the macros expand
// to nothing and the wrappers cost the same as the std primitives they
// wrap. tools/lint.py enforces that no raw std::mutex sneaks back in.
//
// The macro set follows the Clang documentation's canonical mutex.h
// (the same convention Abseil exposes as ABSL_GUARDED_BY et al.).
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "src/common/lockdep.h"

#if defined(__clang__) && (!defined(SWIG))
#define GL_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define GL_THREAD_ANNOTATION_(x)  // no-op on GCC/MSVC
#endif

#ifndef CAPABILITY
#define CAPABILITY(x) GL_THREAD_ANNOTATION_(capability(x))
#endif

#ifndef SCOPED_CAPABILITY
#define SCOPED_CAPABILITY GL_THREAD_ANNOTATION_(scoped_lockable)
#endif

#ifndef GUARDED_BY
#define GUARDED_BY(x) GL_THREAD_ANNOTATION_(guarded_by(x))
#endif

#ifndef PT_GUARDED_BY
#define PT_GUARDED_BY(x) GL_THREAD_ANNOTATION_(pt_guarded_by(x))
#endif

#ifndef REQUIRES
#define REQUIRES(...) \
  GL_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#endif

#ifndef ACQUIRE
#define ACQUIRE(...) \
  GL_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#endif

#ifndef RELEASE
#define RELEASE(...) \
  GL_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#endif

#ifndef TRY_ACQUIRE
#define TRY_ACQUIRE(...) \
  GL_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))
#endif

#ifndef EXCLUDES
#define EXCLUDES(...) GL_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))
#endif

// Documented lock ordering. Clang parses these (enforcement is reserved
// for a future -Wthread-safety-beta); today tools/lockgraph.py reads the
// string arguments ("Class::mu_" node names from its own graph) and fails
// the build if the extracted edge set contradicts a declared order, and
// the runtime detector in src/common/lockdep.h catches violations live.
#ifndef ACQUIRED_BEFORE
#define ACQUIRED_BEFORE(...) \
  GL_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#endif

#ifndef ACQUIRED_AFTER
#define ACQUIRED_AFTER(...) \
  GL_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))
#endif

#ifndef ASSERT_CAPABILITY
#define ASSERT_CAPABILITY(x) GL_THREAD_ANNOTATION_(assert_capability(x))
#endif

#ifndef RETURN_CAPABILITY
#define RETURN_CAPABILITY(x) GL_THREAD_ANNOTATION_(lock_returned(x))
#endif

#ifndef NO_THREAD_SAFETY_ANALYSIS
#define NO_THREAD_SAFETY_ANALYSIS \
  GL_THREAD_ANNOTATION_(no_thread_safety_analysis)
#endif

namespace griddles {

class CondVar;

/// The only mutex type in the codebase: a std::mutex the analysis can
/// see. Locking goes through MutexLock (scoped) — the raw lock()/
/// unlock() are private so a naked `.lock()` is a compile error, not
/// just a lint finding.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  ~Mutex() {
    if (lockdep::enabled()) lockdep::destroyed(this);
  }
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

 private:
  friend class MutexLock;
  friend class CondVar;

  // The lockdep hooks cost one relaxed load when the detector is off
  // (GRIDDLES_LOCKDEP=1 or lockdep::set_enabled turns it on). The
  // acquiring() hook runs *before* blocking so an about-to-deadlock
  // acquisition is still reported.
  void lock() ACQUIRE() {
    if (lockdep::enabled()) lockdep::acquiring(this);
    mu_.lock();
  }
  void unlock() RELEASE() {
    if (lockdep::enabled()) lockdep::released(this);
    mu_.unlock();
  }

  std::mutex mu_;
};

/// Scoped lock over a Mutex, with explicit unlock()/lock() for the
/// notify-outside-the-lock pattern. The destructor releases only if the
/// lock is still held.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  ~MutexLock() RELEASE() {
    if (held_) mu_.unlock();
  }

  /// Releases early (e.g. to notify a CondVar without the lock held).
  void unlock() RELEASE() {
    mu_.unlock();
    held_ = false;
  }

  /// Re-acquires after an explicit unlock().
  void lock() ACQUIRE() {
    mu_.lock();
    held_ = true;
  }

 private:
  Mutex& mu_;
  bool held_ = true;
};

/// Condition variable bound to Mutex. Callers hold the mutex (via a
/// MutexLock) across every wait; like Abseil's CondVar, the internal
/// release/reacquire is invisible to the analysis, so GUARDED_BY data
/// may be touched on either side of a wait without ceremony.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Blocks until notified. The caller must hold `mu`.
  void wait(Mutex& mu) REQUIRES(mu) NO_THREAD_SAFETY_ANALYSIS {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  /// Blocks until `pred()` is true, re-checking after each wake-up.
  template <typename Pred>
  void wait(Mutex& mu, Pred pred) REQUIRES(mu) {
    while (!pred()) wait(mu);
  }

  /// As wait(), giving up at `deadline` (returns std::cv_status::timeout).
  template <typename ClockT, typename DurationT>
  std::cv_status wait_until(
      Mutex& mu, const std::chrono::time_point<ClockT, DurationT>& deadline)
      REQUIRES(mu) NO_THREAD_SAFETY_ANALYSIS {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_until(lock, deadline);
    lock.release();
    return status;
  }

  /// Blocks until `pred()` or the deadline; returns pred()'s final value.
  template <typename ClockT, typename DurationT, typename Pred>
  bool wait_until(Mutex& mu,
                  const std::chrono::time_point<ClockT, DurationT>& deadline,
                  Pred pred) REQUIRES(mu) {
    while (!pred()) {
      if (wait_until(mu, deadline) == std::cv_status::timeout) return pred();
    }
    return true;
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace griddles
