// Runtime lock-order checker (the pthread-lockdep / absl deadlock-detector
// idiom), wired into griddles::Mutex by src/common/thread_annotations.h.
//
// Every Mutex acquisition pushes onto a per-thread held-lock stack; the
// first time lock B is acquired while lock A is held, the directed edge
// A -> B is recorded in a process-global edge table and checked for a
// cycle (incremental DFS). The moment two locks are ever taken in both
// orders — even on a single thread, even if the deadly interleaving never
// actually happens — the cycle is reported. That catches orderings the
// static pass (tools/lockgraph.py) cannot see: locks reached through
// pointers, replica arrays, or data-dependent call paths.
//
// Off by default: the hooks cost one relaxed atomic load per lock/unlock.
// Enable with the environment variable GRIDDLES_LOCKDEP=1 (the CI gate
// runs the whole test suite this way) or programmatically via
// set_enabled(). Acquisitions that nest (rare outside teardown paths)
// touch a global table under an internal mutex; single-lock critical
// sections only touch the thread-local stack.
//
// A violation (cycle or recursive self-acquisition) aborts the process by
// default so tests fail loudly; tests that provoke violations on purpose
// switch to ViolationPolicy::kCount and read violations()/last_violation().
// The counters are exported as `lockorder.edges` / `lockorder.violations`
// through obs::snapshot() on the global metrics registry.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace griddles::lockdep {

namespace internal {
extern std::atomic<bool> g_enabled;
}  // namespace internal

/// True when the detector is recording. Checked inline on every Mutex
/// lock/unlock, so this must stay one relaxed load.
inline bool enabled() noexcept {
  return internal::g_enabled.load(std::memory_order_relaxed);
}

/// Turns the detector on or off at runtime. Locks already held when the
/// detector turns on are invisible to it (stacks start empty), so enable
/// early — GRIDDLES_LOCKDEP=1 enables before main().
void set_enabled(bool on) noexcept;

enum class ViolationPolicy {
  kAbort,  // print the cycle and abort (default: tests fail loudly)
  kCount,  // record and keep going (tests that provoke violations)
};

void set_violation_policy(ViolationPolicy policy) noexcept;
ViolationPolicy violation_policy() noexcept;

/// Called by Mutex immediately before blocking on the underlying lock:
/// records held -> mu edges, checks for cycles and self-deadlock, then
/// pushes mu onto the calling thread's held stack.
void acquiring(const void* mu);

/// Called by Mutex right before releasing: pops mu from the held stack
/// (wherever it sits — MutexLock::unlock() allows out-of-order release).
void released(const void* mu);

/// Called by ~Mutex: forgets the address so a recycled allocation cannot
/// inherit the dead lock's edges.
void destroyed(const void* mu);

/// Distinct ordered pairs (A held while acquiring B) observed so far.
std::uint64_t edges();

/// Violations observed so far (cycles + recursive acquisitions).
std::uint64_t violations();

/// Human-readable description of the most recent violation ("" if none).
std::string last_violation();

/// Held-lock stack depth of the calling thread (tests).
std::size_t held_depth();

/// Clears the edge table, violation count and message (test isolation).
/// Held stacks are per-thread state and are left alone.
void reset();

}  // namespace griddles::lockdep
