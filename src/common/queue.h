// BoundedQueue<T>: a blocking MPMC queue with close semantics.
//
// Used as the spine of the in-process transport channels and the Grid
// Buffer writer's asynchronous send pipeline.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace griddles {

template <typename T>
class BoundedQueue {
 public:
  /// `capacity == 0` means unbounded.
  explicit BoundedQueue(std::size_t capacity = 0) : capacity_(capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks while full; returns false if the queue was closed.
  bool push(T item) {
    std::unique_lock lock(mu_);
    not_full_.wait(lock, [&] { return closed_ || !full_locked(); });
    if (closed_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push; false when full or closed.
  bool try_push(T item) {
    {
      std::scoped_lock lock(mu_);
      if (closed_ || full_locked()) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks while empty; nullopt once the queue is closed and drained.
  std::optional<T> pop() {
    std::unique_lock lock(mu_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    return pop_locked(lock);
  }

  /// As pop(), but gives up at the wall deadline (nullopt; queue intact).
  std::optional<T> pop_until(std::chrono::steady_clock::time_point deadline) {
    std::unique_lock lock(mu_);
    if (!not_empty_.wait_until(
            lock, deadline, [&] { return closed_ || !items_.empty(); })) {
      return std::nullopt;
    }
    return pop_locked(lock);
  }

  /// Non-blocking pop.
  std::optional<T> try_pop() {
    std::unique_lock lock(mu_);
    if (items_.empty()) return std::nullopt;
    return pop_locked(lock);
  }

  /// Wakes all waiters; subsequent pushes fail, pops drain then end.
  void close() {
    {
      std::scoped_lock lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::scoped_lock lock(mu_);
    return closed_;
  }

  std::size_t size() const {
    std::scoped_lock lock(mu_);
    return items_.size();
  }

 private:
  bool full_locked() const {
    return capacity_ != 0 && items_.size() >= capacity_;
  }

  std::optional<T> pop_locked(std::unique_lock<std::mutex>& lock) {
    if (items_.empty()) return std::nullopt;  // closed and drained
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace griddles
