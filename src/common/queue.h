// BoundedQueue<T>: a blocking MPMC queue with close semantics.
//
// Used as the spine of the in-process transport channels and the Grid
// Buffer writer's asynchronous send pipeline.
#pragma once

#include <chrono>
#include <cstddef>
#include <deque>
#include <optional>
#include <utility>

#include "src/common/thread_annotations.h"

namespace griddles {

template <typename T>
class BoundedQueue {
 public:
  /// `capacity == 0` means unbounded.
  explicit BoundedQueue(std::size_t capacity = 0) : capacity_(capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks while full; returns false if the queue was closed.
  bool push(T item) {
    MutexLock lock(mu_);
    // lint: blocking-ok (monitor wait: releases mu_ until space or close)
    not_full_.wait(mu_, [&]() REQUIRES(mu_) {
      return closed_ || !full_locked();
    });
    if (closed_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// As push(), but gives up at the wall deadline: false when the queue
  /// stayed full through the deadline or was closed (item not enqueued).
  bool push_until(T item, std::chrono::steady_clock::time_point deadline) {
    {
      MutexLock lock(mu_);
      // lint: blocking-ok (monitor wait: releases mu_; bounded by deadline)
      if (!not_full_.wait_until(mu_, deadline, [&]() REQUIRES(mu_) {
            return closed_ || !full_locked();
          })) {
        return false;
      }
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push; false when full or closed.
  bool try_push(T item) {
    {
      MutexLock lock(mu_);
      if (closed_ || full_locked()) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks while empty; nullopt once the queue is closed and drained.
  std::optional<T> pop() {
    std::optional<T> item;
    {
      MutexLock lock(mu_);
      // lint: blocking-ok (monitor wait: releases mu_ until item or close)
      not_empty_.wait(mu_, [&]() REQUIRES(mu_) {
        return closed_ || !items_.empty();
      });
      item = pop_locked();
    }
    if (item) not_full_.notify_one();
    return item;
  }

  /// As pop(), but gives up at the wall deadline (nullopt; queue intact).
  std::optional<T> pop_until(std::chrono::steady_clock::time_point deadline) {
    std::optional<T> item;
    {
      MutexLock lock(mu_);
      // lint: blocking-ok (monitor wait: releases mu_; bounded by deadline)
      if (!not_empty_.wait_until(mu_, deadline, [&]() REQUIRES(mu_) {
            return closed_ || !items_.empty();
          })) {
        return std::nullopt;
      }
      item = pop_locked();
    }
    if (item) not_full_.notify_one();
    return item;
  }

  /// Non-blocking pop.
  std::optional<T> try_pop() {
    std::optional<T> item;
    {
      MutexLock lock(mu_);
      if (items_.empty()) return std::nullopt;
      item = pop_locked();
    }
    if (item) not_full_.notify_one();
    return item;
  }

  /// Wakes all waiters; subsequent pushes fail, pops drain then end.
  void close() {
    {
      MutexLock lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    MutexLock lock(mu_);
    return closed_;
  }

  std::size_t size() const {
    MutexLock lock(mu_);
    return items_.size();
  }

 private:
  bool full_locked() const REQUIRES(mu_) {
    return capacity_ != 0 && items_.size() >= capacity_;
  }

  std::optional<T> pop_locked() REQUIRES(mu_) {
    if (items_.empty()) return std::nullopt;  // closed and drained
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  const std::size_t capacity_;
  mutable Mutex mu_;
  CondVar not_empty_;
  CondVar not_full_;
  std::deque<T> items_ GUARDED_BY(mu_);
  bool closed_ GUARDED_BY(mu_) = false;
};

}  // namespace griddles
