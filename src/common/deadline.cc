#include "src/common/deadline.h"

#include <algorithm>

#include "src/common/strings.h"

namespace griddles {

namespace {
thread_local std::optional<WallClock::time_point> tls_deadline;
}  // namespace

std::optional<WallClock::time_point> current_deadline() noexcept {
  return tls_deadline;
}

std::optional<Duration> remaining_budget() noexcept {
  if (!tls_deadline) return std::nullopt;
  return *tls_deadline - WallClock::now();
}

bool deadline_expired() noexcept {
  return tls_deadline && WallClock::now() >= *tls_deadline;
}

Status check_deadline(const char* what) {
  if (deadline_expired()) {
    return deadline_exceeded(strings::cat(what, ": budget exhausted"));
  }
  return Status::ok();
}

ScopedDeadline::ScopedDeadline(
    std::optional<WallClock::time_point> deadline) noexcept
    : saved_(tls_deadline) {
  if (deadline) {
    tls_deadline = saved_ ? std::min(*saved_, *deadline) : *deadline;
  }
}

ScopedDeadline::~ScopedDeadline() { tls_deadline = saved_; }

}  // namespace griddles
