#include "src/common/config.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "src/common/strings.h"

namespace griddles {

Result<Config> Config::parse(std::string_view text) {
  Config config;
  std::string section;
  int line_no = 0;
  for (const std::string& raw : strings::split(text, '\n')) {
    ++line_no;
    std::string_view line = strings::trim(raw);
    if (line.empty() || line.front() == '#' || line.front() == ';') continue;
    if (line.front() == '[') {
      if (line.back() != ']' || line.size() < 3) {
        return invalid_argument(
            strings::cat("config line ", line_no, ": malformed section '",
                         line, "'"));
      }
      section = std::string(strings::trim(line.substr(1, line.size() - 2)));
      if (std::find(config.section_order_.begin(),
                    config.section_order_.end(),
                    section) == config.section_order_.end()) {
        config.section_order_.push_back(section);
      }
      continue;
    }
    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      return invalid_argument(
          strings::cat("config line ", line_no, ": expected key=value, got '",
                       line, "'"));
    }
    std::string key(strings::trim(line.substr(0, eq)));
    std::string_view value = line.substr(eq + 1);
    // Strip trailing inline comments introduced by " ;".
    const std::size_t comment = value.find(" ;");
    if (comment != std::string_view::npos) value = value.substr(0, comment);
    if (key.empty()) {
      return invalid_argument(
          strings::cat("config line ", line_no, ": empty key"));
    }
    const std::string full_key =
        section.empty() ? key : strings::cat(section, ".", key);
    config.values_[full_key] = std::string(strings::trim(value));
  }
  return config;
}

Result<Config> Config::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) return not_found(strings::cat("cannot open config file ", path));
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse(buffer.str());
}

bool Config::has(std::string_view key) const {
  return values_.find(std::string(key)) != values_.end();
}

std::optional<std::string> Config::get(std::string_view key) const {
  const auto it = values_.find(std::string(key));
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string Config::get_or(std::string_view key, std::string fallback) const {
  auto v = get(key);
  return v ? *v : std::move(fallback);
}

Result<std::string> Config::get_required(std::string_view key) const {
  auto v = get(key);
  if (!v) return not_found(strings::cat("missing config key '", key, "'"));
  return *v;
}

Result<long long> Config::get_int(std::string_view key) const {
  GL_ASSIGN_OR_RETURN(const std::string text, get_required(key));
  const auto v = strings::parse_int(text);
  if (!v) {
    return invalid_argument(
        strings::cat("config key '", key, "': '", text, "' is not an int"));
  }
  return *v;
}

Result<double> Config::get_double(std::string_view key) const {
  GL_ASSIGN_OR_RETURN(const std::string text, get_required(key));
  const auto v = strings::parse_double(text);
  if (!v) {
    return invalid_argument(
        strings::cat("config key '", key, "': '", text, "' is not a number"));
  }
  return *v;
}

Result<bool> Config::get_bool(std::string_view key) const {
  GL_ASSIGN_OR_RETURN(const std::string text, get_required(key));
  const auto v = strings::parse_bool(text);
  if (!v) {
    return invalid_argument(
        strings::cat("config key '", key, "': '", text, "' is not a bool"));
  }
  return *v;
}

long long Config::get_int_or(std::string_view key, long long fallback) const {
  auto r = get_int(key);
  return r.is_ok() ? *r : fallback;
}

double Config::get_double_or(std::string_view key, double fallback) const {
  auto r = get_double(key);
  return r.is_ok() ? *r : fallback;
}

bool Config::get_bool_or(std::string_view key, bool fallback) const {
  auto r = get_bool(key);
  return r.is_ok() ? *r : fallback;
}

void Config::set(std::string key, std::string value) {
  const std::size_t dot = key.find('.');
  if (dot != std::string::npos) {
    const std::string section = key.substr(0, dot);
    if (std::find(section_order_.begin(), section_order_.end(), section) ==
        section_order_.end()) {
      section_order_.push_back(section);
    }
  }
  values_[std::move(key)] = std::move(value);
}

std::vector<std::string> Config::sections() const { return section_order_; }

std::vector<std::string> Config::keys_in(std::string_view section) const {
  std::vector<std::string> out;
  const std::string prefix = strings::cat(section, ".");
  for (const auto& [key, value] : values_) {
    if (strings::starts_with(key, prefix)) out.push_back(key);
  }
  return out;
}

}  // namespace griddles
