// Ambient end-to-end deadlines (DESIGN.md §14).
//
// A workflow operation carries one wall-clock deadline from the top of
// the call tree down through every hop: the runner installs it, the RPC
// client stamps the remaining budget into each outgoing frame, and the
// RPC server re-installs the (decremented) budget around the handler so
// nested hops shrink it further. The context is thread-local — threads
// spawned mid-operation (copier streams, Grid Buffer flushers, workflow
// stages) must capture `current_deadline()` and re-install it, exactly
// like the obs::TraceContext they already carry.
#pragma once

#include <optional>

#include "src/common/clock.h"
#include "src/common/status.h"

namespace griddles {

/// The calling thread's ambient wall-clock deadline, if any.
std::optional<WallClock::time_point> current_deadline() noexcept;

/// Wall time left until the ambient deadline (negative once expired);
/// nullopt when no deadline is installed.
std::optional<Duration> remaining_budget() noexcept;

/// True when an ambient deadline exists and has already passed.
bool deadline_expired() noexcept;

/// kDeadlineExceeded naming `what` when the ambient deadline has
/// passed; OK otherwise (including when no deadline is installed).
Status check_deadline(const char* what);

/// Installs a deadline for the current scope. Never *extends* an
/// enclosing deadline: the effective deadline is the minimum of the
/// enclosing one and the one given, so a downstream hop can only
/// shrink the budget. A nullopt argument leaves the context unchanged.
class ScopedDeadline {
 public:
  explicit ScopedDeadline(
      std::optional<WallClock::time_point> deadline) noexcept;
  explicit ScopedDeadline(WallClock::time_point deadline) noexcept
      : ScopedDeadline(std::optional<WallClock::time_point>(deadline)) {}
  ~ScopedDeadline();

  ScopedDeadline(const ScopedDeadline&) = delete;
  ScopedDeadline& operator=(const ScopedDeadline&) = delete;

 private:
  std::optional<WallClock::time_point> saved_;
};

}  // namespace griddles
