// Small string utilities: concatenation, splitting, trimming, parsing.
#pragma once

#include <charconv>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace griddles::strings {

namespace internal {
inline void cat_one(std::ostringstream& os) { (void)os; }
template <typename T, typename... Rest>
void cat_one(std::ostringstream& os, const T& v, const Rest&... rest) {
  os << v;
  cat_one(os, rest...);
}
}  // namespace internal

/// Stream-concatenates all arguments into one string.
template <typename... Args>
std::string cat(const Args&... args) {
  std::ostringstream os;
  internal::cat_one(os, args...);
  return os.str();
}

/// Splits on a delimiter character; empty tokens are preserved.
std::vector<std::string> split(std::string_view text, char delim);

/// Strips ASCII whitespace from both ends.
std::string_view trim(std::string_view text);

bool starts_with(std::string_view text, std::string_view prefix);
bool ends_with(std::string_view text, std::string_view suffix);

/// Simple glob match supporting '*' (any run) and '?' (any one char).
bool glob_match(std::string_view pattern, std::string_view text);

/// Parses a decimal integer; nullopt on any non-numeric residue.
std::optional<long long> parse_int(std::string_view text);
std::optional<double> parse_double(std::string_view text);
std::optional<bool> parse_bool(std::string_view text);

/// Formats "hh:mm:ss" from whole seconds (used by the table benches).
std::string format_hms(long long seconds);
/// Formats "mm:ss" from whole seconds.
std::string format_ms(long long seconds);

/// Thread-safe strerror: message text for `errnum` (strerror_r under the
/// hood, so concurrent IO error paths never share libc's static buffer).
std::string errno_message(int errnum);

}  // namespace griddles::strings
