// Leveled, thread-safe logging to stderr.
//
// Usage: GL_LOG(kInfo, "grid buffer channel ", name, " opened");
// The default level is kWarn so tests and benches stay quiet; set
// GRIDDLES_LOG=debug (or trace/info/warn/error/off) to change it.
#pragma once

#include <atomic>
#include <string>
#include <string_view>

#include "src/common/strings.h"
#include "src/common/thread_annotations.h"

namespace griddles::log {

enum class Level { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Parses a $GRIDDLES_LOG value ("trace", "debug", "info", "warn",
/// "error", "off"); anything else — including empty — is kWarn.
Level parse_level(std::string_view text) noexcept;

class Logger {
 public:
  /// Process-wide logger; level initialised from $GRIDDLES_LOG.
  static Logger& instance();

  void set_level(Level level) noexcept {
    level_.store(level, std::memory_order_relaxed);
  }
  Level level() const noexcept {
    return level_.load(std::memory_order_relaxed);
  }
  bool enabled(Level level) const noexcept { return level >= this->level(); }

  /// Writes one formatted line; thread-safe.
  void write(Level level, std::string_view file, int line,
             const std::string& message);

 private:
  Logger();
  std::atomic<Level> level_;
  Mutex mu_;  // lint: guards stderr (serializes whole log lines)
};

}  // namespace griddles::log

#define GL_LOG(level_suffix, ...)                                           \
  do {                                                                      \
    auto& gl_logger_ = ::griddles::log::Logger::instance();                 \
    if (gl_logger_.enabled(::griddles::log::Level::level_suffix)) {         \
      gl_logger_.write(::griddles::log::Level::level_suffix, __FILE__,      \
                       __LINE__, ::griddles::strings::cat(__VA_ARGS__));    \
    }                                                                       \
  } while (false)
