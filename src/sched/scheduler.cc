#include "src/sched/scheduler.h"

#include <cmath>
#include <limits>

#include "src/common/clock.h"
#include "src/common/strings.h"
#include "src/desim/predict.h"
#include "src/obs/metrics.h"
#include "src/obs/span.h"

namespace griddles::workflow {

namespace {

struct SchedMetrics {
  obs::Counter& candidates_scored;
  obs::Gauge& pipeline_depth;
  obs::Histogram& dispatch_latency_s;

  static SchedMetrics& get() {
    static SchedMetrics metrics = [] {
      auto& registry = obs::MetricsRegistry::global();
      return SchedMetrics{
          registry.counter("sched.candidates.scored"),
          registry.gauge("sched.pipeline.depth"),
          registry.histogram("sched.dispatch.latency_s",
                             obs::exponential_bounds(1e-4, 4.0, 10)),
      };
    }();
    return metrics;
  }
};

Result<double> score(const std::string& name,
                     const std::vector<apps::AppKernel>& pipeline,
                     const std::vector<std::string>& machines,
                     const WorkflowRunner::Options& options) {
  GL_ASSIGN_OR_RETURN(
      const WorkflowSpec spec,
      WorkflowSpec::from_pipeline(name, pipeline, machines));
  GL_ASSIGN_OR_RETURN(const desim::Prediction prediction,
                      desim::predict(spec, options));
  SchedMetrics::get().candidates_scored.add();
  return prediction.total_seconds;
}

}  // namespace

Result<ScheduleResult> Scheduler::schedule(
    const std::string& name, const std::vector<apps::AppKernel>& pipeline,
    const std::vector<std::string>& candidates, const Options& options) {
  if (pipeline.empty()) return invalid_argument("empty pipeline");
  if (candidates.empty()) return invalid_argument("no candidate machines");
  for (const std::string& machine : candidates) {
    GL_RETURN_IF_ERROR(testbed::find_machine(machine).status());
  }
  obs::Span schedule_span(obs::SpanKind::kSchedule,
                          strings::cat("schedule:", name));
  schedule_span.add_attr("candidates", strings::cat(candidates.size()));
  schedule_span.add_attr("depth", strings::cat(pipeline.size()));
  SchedMetrics::get().pipeline_depth.set(
      static_cast<std::int64_t>(pipeline.size()));
  const WallClock::time_point dispatch_start = WallClock::now();

  const double combos =
      std::pow(static_cast<double>(candidates.size()),
               static_cast<double>(pipeline.size()));

  ScheduleResult best;
  best.predicted_seconds = std::numeric_limits<double>::infinity();

  if (combos <= static_cast<double>(options.exhaustive_limit)) {
    // Exhaustive: enumerate candidate^tasks assignments.
    std::vector<std::size_t> index(pipeline.size(), 0);
    while (true) {
      std::vector<std::string> machines;
      machines.reserve(pipeline.size());
      for (const std::size_t i : index) machines.push_back(candidates[i]);
      GL_ASSIGN_OR_RETURN(const double predicted,
                          score(name, pipeline, machines,
                                options.runner));
      ++best.candidates_scored;
      if (predicted < best.predicted_seconds) {
        best.predicted_seconds = predicted;
        best.machines = std::move(machines);
      }
      // Advance the mixed-radix counter.
      std::size_t position = 0;
      while (position < index.size() &&
             ++index[position] == candidates.size()) {
        index[position++] = 0;
      }
      if (position == index.size()) break;
    }
    SchedMetrics::get().dispatch_latency_s.observe(
        to_seconds_d(WallClock::now() - dispatch_start));
    return best;
  }

  // Greedy: assign stages in order, each to the machine minimizing the
  // predicted time of the prefix (unassigned stages pinned to the
  // current best single machine as a placeholder).
  std::vector<std::string> machines(pipeline.size(), candidates.front());
  for (std::size_t stage = 0; stage < pipeline.size(); ++stage) {
    double best_stage = std::numeric_limits<double>::infinity();
    std::string best_machine = candidates.front();
    for (const std::string& machine : candidates) {
      machines[stage] = machine;
      GL_ASSIGN_OR_RETURN(const double predicted,
                          score(name, pipeline, machines, options.runner));
      ++best.candidates_scored;
      if (predicted < best_stage) {
        best_stage = predicted;
        best_machine = machine;
      }
    }
    machines[stage] = best_machine;
    best.predicted_seconds = best_stage;
  }
  best.machines = machines;
  SchedMetrics::get().dispatch_latency_s.observe(
      to_seconds_d(WallClock::now() - dispatch_start));
  return best;
}

}  // namespace griddles::workflow
