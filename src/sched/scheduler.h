// Coupling-aware workflow scheduling (the paper's future work, §6):
//
//   "the scheduler needs to take account of whether the workflow is
//    configured to copy files or use direct connections, since both
//    impose different scheduling constraints."
//
// The scheduler searches machine assignments for a pipeline and scores
// each candidate with the analytic predictor under the *chosen coupling
// discipline* — so the same pipeline lands on different machines when
// coupled by buffers (favouring links that stream well) than when
// coupled by copies (favouring raw speed, paying bulk copies between
// stages). Exhaustive for small problems, greedy stage-by-stage beyond
// that.
#pragma once

#include <string>
#include <vector>

#include "src/workflow/runner.h"

namespace griddles::workflow {

struct ScheduleResult {
  std::vector<std::string> machines;  // one per task
  double predicted_seconds = 0;
  std::size_t candidates_scored = 0;
};

class Scheduler {
 public:
  struct Options {
    /// Coupling discipline the schedule will run under.
    WorkflowRunner::Options runner;
    /// Above this many assignment combinations, fall back to greedy.
    std::size_t exhaustive_limit = 20000;
  };

  /// Picks a machine (from `candidates`) for every task of `pipeline`
  /// to minimize the predicted completion time.
  static Result<ScheduleResult> schedule(
      const std::string& name,
      const std::vector<apps::AppKernel>& pipeline,
      const std::vector<std::string>& candidates, const Options& options);
};

}  // namespace griddles::workflow
