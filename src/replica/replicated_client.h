// Replica selection and the dynamically-remapping replicated file client
// (paper §3.1: "if a file is opened in read-only mode, then the FM can
// actually change the mapping dynamically during the execution, allowing
// it to adapt to changing network conditions").
#pragma once

#include <memory>
#include <vector>

#include "src/nws/forecast.h"
#include "src/remote/remote_client.h"
#include "src/replica/catalog.h"
#include "src/vfs/file_client.h"

namespace griddles::replica {

/// Picks the cheapest replica under the given link estimates. Replicas
/// without an estimate are costed pessimistically but remain eligible
/// (better an unknown copy than no copy).
struct Selection {
  PhysicalReplica replica;
  double cost_seconds = 0;
};

Result<Selection> select_replica(const std::vector<PhysicalReplica>& copies,
                                 nws::LinkEstimator& estimator);

/// A read-only FileClient over a replicated logical file. Every
/// `reselect_interval_bytes` of consumed data it re-runs replica
/// selection; if a different copy is now cheaper by `switch_margin`, it
/// reopens there at the same cursor — invisible to the application.
class ReplicatedFileClient final : public vfs::FileClient {
 public:
  struct Options {
    std::uint64_t reselect_interval_bytes = 4u << 20;
    double switch_margin = 1.25;  // new cost must beat current by 25%
    remote::RemoteFileClient::Options remote;
  };

  static Result<std::unique_ptr<ReplicatedFileClient>> open(
      net::Transport& transport, CatalogClient& catalog,
      const std::string& logical_name, nws::LinkEstimator& estimator,
      Options options);
  static Result<std::unique_ptr<ReplicatedFileClient>> open(
      net::Transport& transport, CatalogClient& catalog,
      const std::string& logical_name, nws::LinkEstimator& estimator) {
    return open(transport, catalog, logical_name, estimator, Options{});
  }

  Result<std::size_t> read(MutableByteSpan out) override;
  Result<std::size_t> write(ByteSpan data) override;
  Result<std::uint64_t> seek(std::int64_t offset, vfs::Whence whence) override;
  std::uint64_t tell() const override;
  Result<std::uint64_t> size() override;
  Status flush() override;
  Status close() override;
  std::string describe() const override;

  /// Host currently being read from (for tests and the example).
  const std::string& current_host() const noexcept {
    return current_.host;
  }
  /// How many times the source replica changed mid-read.
  int switch_count() const noexcept { return switch_count_; }

 private:
  ReplicatedFileClient(net::Transport& transport,
                       std::string logical_name,
                       nws::LinkEstimator& estimator, Options options,
                       std::vector<PhysicalReplica> copies);

  /// Reopens `replica` at the current cursor.
  Status attach(const PhysicalReplica& replica);
  /// Re-runs selection if due; may switch sources.
  void maybe_reselect();

  net::Transport& transport_;
  std::string logical_name_;
  nws::LinkEstimator& estimator_;
  Options options_;
  std::vector<PhysicalReplica> copies_;

  PhysicalReplica current_;
  std::unique_ptr<remote::RemoteFileClient> source_;
  std::uint64_t bytes_since_reselect_ = 0;
  int switch_count_ = 0;
};

}  // namespace griddles::replica
