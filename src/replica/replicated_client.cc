#include "src/replica/replicated_client.h"

#include <algorithm>
#include <limits>

#include "src/common/logging.h"
#include "src/common/strings.h"
#include "src/obs/metrics.h"

namespace griddles::replica {

Result<Selection> select_replica(const std::vector<PhysicalReplica>& copies,
                                 nws::LinkEstimator& estimator) {
  if (copies.empty()) return not_found("no replicas to select from");
  Selection best;
  double best_cost = std::numeric_limits<double>::infinity();
  for (const PhysicalReplica& replica : copies) {
    double cost;
    auto estimate = estimator.estimate(replica.host);
    if (estimate.is_ok()) {
      cost = estimate->transfer_seconds(replica.size);
    } else {
      // Unknown link: pessimistic, but finite so lone replicas still win.
      cost = 3600.0 + static_cast<double>(replica.size) / 1e6;
    }
    if (cost < best_cost) {
      best_cost = cost;
      best = Selection{replica, cost};
    }
  }
  return best;
}

Result<std::unique_ptr<ReplicatedFileClient>> ReplicatedFileClient::open(
    net::Transport& transport, CatalogClient& catalog,
    const std::string& logical_name, nws::LinkEstimator& estimator,
    Options options) {
  GL_ASSIGN_OR_RETURN(std::vector<PhysicalReplica> copies,
                      catalog.lookup(logical_name));
  auto client = std::unique_ptr<ReplicatedFileClient>(
      new ReplicatedFileClient(transport, logical_name, estimator, options,
                               std::move(copies)));
  // Attach cheapest-first; a copy whose host is down just moves us to the
  // next-best candidate instead of failing the open.
  std::vector<PhysicalReplica> candidates = client->copies_;
  Status last = not_found("no replicas to select from");
  while (!candidates.empty()) {
    GL_ASSIGN_OR_RETURN(const Selection chosen,
                        select_replica(candidates, estimator));
    last = client->attach(chosen.replica);
    if (last.is_ok()) return client;
    GL_LOG(kWarn, "replica open on ", chosen.replica.host, " failed: ",
           last);
    const std::string host = chosen.replica.host;
    candidates.erase(
        std::remove_if(candidates.begin(), candidates.end(),
                       [&host](const PhysicalReplica& r) {
                         return r.host == host;
                       }),
        candidates.end());
  }
  return last;
}

ReplicatedFileClient::ReplicatedFileClient(
    net::Transport& transport, std::string logical_name,
    nws::LinkEstimator& estimator, Options options,
    std::vector<PhysicalReplica> copies)
    : transport_(transport), logical_name_(std::move(logical_name)),
      estimator_(estimator), options_(options), copies_(std::move(copies)) {}

Status ReplicatedFileClient::attach(const PhysicalReplica& replica) {
  GL_ASSIGN_OR_RETURN(const net::Endpoint endpoint,
                      net::Endpoint::parse(replica.server_endpoint));
  const std::uint64_t cursor = source_ ? source_->tell() : 0;
  GL_ASSIGN_OR_RETURN(
      auto next,
      remote::RemoteFileClient::open(transport_, endpoint, replica.path,
                                     vfs::OpenFlags::input(),
                                     options_.remote));
  GL_ASSIGN_OR_RETURN(const std::uint64_t pos,
                      next->seek(static_cast<std::int64_t>(cursor),
                                 vfs::Whence::kSet));
  (void)pos;
  if (source_) {
    (void)source_->close();
    ++switch_count_;
    GL_LOG(kInfo, "replica '", logical_name_, "' remapped ", current_.host,
           " -> ", replica.host);
  }
  source_ = std::move(next);
  current_ = replica;
  bytes_since_reselect_ = 0;
  return Status::ok();
}

void ReplicatedFileClient::maybe_reselect() {
  if (bytes_since_reselect_ < options_.reselect_interval_bytes) return;
  bytes_since_reselect_ = 0;
  auto chosen = select_replica(copies_, estimator_);
  if (!chosen.is_ok()) return;
  if (chosen->replica.host == current_.host) return;
  auto current_estimate = estimator_.estimate(current_.host);
  if (current_estimate.is_ok()) {
    const double current_cost =
        current_estimate->transfer_seconds(current_.size);
    if (chosen->cost_seconds * options_.switch_margin >= current_cost) {
      return;  // not enough of an improvement to pay for a reconnect
    }
  }
  if (const Status s = attach(chosen->replica); !s.is_ok()) {
    GL_LOG(kWarn, "replica remap failed, staying on ", current_.host, ": ",
           s);
  }
}

Result<std::size_t> ReplicatedFileClient::read(MutableByteSpan out) {
  if (!source_) return failed_precondition("read on closed replica client");
  maybe_reselect();
  auto got = source_->read(out);
  if (!got.is_ok()) {
    // The chosen copy failed mid-read (host down?): fail over, trying
    // the surviving replicas cheapest-first under the current NWS
    // estimates rather than in catalog order.
    GL_LOG(kWarn, "replica read from ", current_.host, " failed: ",
           got.status());
    auto& registry = obs::MetricsRegistry::global();
    static obs::Counter& failover_attempts =
        registry.counter("failover.attempts");
    static obs::Counter& failover_switches =
        registry.counter("failover.switches");
    std::vector<PhysicalReplica> candidates;
    for (const PhysicalReplica& candidate : copies_) {
      if (candidate.host != current_.host) candidates.push_back(candidate);
    }
    while (!candidates.empty()) {
      const auto chosen = select_replica(candidates, estimator_);
      if (!chosen.is_ok()) break;
      failover_attempts.add();
      const std::string host = chosen->replica.host;
      if (attach(chosen->replica).is_ok()) {
        failover_switches.add();
        got = source_->read(out);
        if (got.is_ok()) {
          bytes_since_reselect_ += *got;
          return got;
        }
        GL_LOG(kWarn, "replica failover read from ", host, " failed: ",
               got.status());
      }
      candidates.erase(
          std::remove_if(candidates.begin(), candidates.end(),
                         [&host](const PhysicalReplica& r) {
                           return r.host == host;
                         }),
          candidates.end());
    }
    return got.status();
  }
  bytes_since_reselect_ += *got;
  return got;
}

Result<std::size_t> ReplicatedFileClient::write(ByteSpan) {
  return permission_denied(
      "replicated files are read-only (writes would fork the replicas)");
}

Result<std::uint64_t> ReplicatedFileClient::seek(std::int64_t offset,
                                                 vfs::Whence whence) {
  if (!source_) return failed_precondition("seek on closed replica client");
  return source_->seek(offset, whence);
}

std::uint64_t ReplicatedFileClient::tell() const {
  return source_ ? source_->tell() : 0;
}

Result<std::uint64_t> ReplicatedFileClient::size() {
  if (!source_) return failed_precondition("size of closed replica client");
  return source_->size();
}

Status ReplicatedFileClient::flush() { return Status::ok(); }

Status ReplicatedFileClient::close() {
  if (!source_) return Status::ok();
  const Status s = source_->close();
  source_.reset();
  return s;
}

std::string ReplicatedFileClient::describe() const {
  return strings::cat("replica:", logical_name_, "@", current_.host);
}

}  // namespace griddles::replica
