// Replica catalog: the stand-in for the Globus Replica Catalogue / SRB.
//
// Maps a logical file name to the set of physical copies on the grid.
// The File Multiplexer resolves replicated opens here, then picks a copy
// using NWS link estimates (selector.h).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/net/rpc.h"
#include "src/common/thread_annotations.h"
#include "src/xdr/codec.h"

namespace griddles::replica {

/// One physical copy of a logical file.
struct PhysicalReplica {
  std::string host;             // machine holding the copy
  std::string server_endpoint;  // file server serving it
  std::string path;             // path on that server
  std::uint64_t size = 0;
  std::uint64_t checksum = 0;   // fnv1a of contents (0 = unknown)

  friend bool operator==(const PhysicalReplica&,
                         const PhysicalReplica&) = default;
};

void encode_replica(xdr::Encoder& enc, const PhysicalReplica& replica);
Result<PhysicalReplica> decode_replica(xdr::Decoder& dec);

/// In-memory catalog (thread-safe).
class Catalog {
 public:
  /// Registers (or refreshes) a copy; keyed by (logical, host).
  void add(const std::string& logical_name, PhysicalReplica replica);

  /// Removes the copy held by `host`; returns whether one existed.
  bool remove(const std::string& logical_name, const std::string& host);

  /// All copies of a logical file (kNotFound when none).
  Result<std::vector<PhysicalReplica>> lookup(
      const std::string& logical_name) const;

  std::vector<std::string> logical_names() const;

 private:
  mutable Mutex mu_;
  std::map<std::string, std::vector<PhysicalReplica>> replicas_
      GUARDED_BY(mu_);
};

enum class Method : std::uint16_t {
  kLookup = 1,
  kAdd = 2,
  kRemove = 3,
  kList = 4,
};

/// Serves a Catalog over RPC.
class CatalogServer {
 public:
  CatalogServer(Catalog& catalog, net::Transport& transport,
                net::Endpoint bind);

  Status start() { return rpc_.start(); }
  void stop() { rpc_.stop(); }
  net::Endpoint endpoint() const { return rpc_.endpoint(); }

 private:
  Catalog& catalog_;
  net::RpcServer rpc_;
};

class CatalogClient {
 public:
  CatalogClient(net::Transport& transport, net::Endpoint server);

  Result<std::vector<PhysicalReplica>> lookup(
      const std::string& logical_name);
  Status add(const std::string& logical_name,
             const PhysicalReplica& replica);
  Status remove(const std::string& logical_name, const std::string& host);
  Result<std::vector<std::string>> list();

 private:
  net::RpcClient rpc_;
};

}  // namespace griddles::replica
