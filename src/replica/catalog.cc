#include "src/replica/catalog.h"

#include <algorithm>

#include "src/common/strings.h"

namespace griddles::replica {

void encode_replica(xdr::Encoder& enc, const PhysicalReplica& replica) {
  enc.put_string(replica.host);
  enc.put_string(replica.server_endpoint);
  enc.put_string(replica.path);
  enc.put_u64(replica.size);
  enc.put_u64(replica.checksum);
}

Result<PhysicalReplica> decode_replica(xdr::Decoder& dec) {
  PhysicalReplica replica;
  GL_ASSIGN_OR_RETURN(replica.host, dec.string());
  GL_ASSIGN_OR_RETURN(replica.server_endpoint, dec.string());
  GL_ASSIGN_OR_RETURN(replica.path, dec.string());
  GL_ASSIGN_OR_RETURN(replica.size, dec.u64());
  GL_ASSIGN_OR_RETURN(replica.checksum, dec.u64());
  return replica;
}

void Catalog::add(const std::string& logical_name, PhysicalReplica replica) {
  MutexLock lock(mu_);
  auto& copies = replicas_[logical_name];
  const auto it = std::find_if(
      copies.begin(), copies.end(),
      [&](const PhysicalReplica& r) { return r.host == replica.host; });
  if (it != copies.end()) {
    *it = std::move(replica);
  } else {
    copies.push_back(std::move(replica));
  }
}

bool Catalog::remove(const std::string& logical_name,
                     const std::string& host) {
  MutexLock lock(mu_);
  const auto entry = replicas_.find(logical_name);
  if (entry == replicas_.end()) return false;
  auto& copies = entry->second;
  const auto it = std::remove_if(
      copies.begin(), copies.end(),
      [&](const PhysicalReplica& r) { return r.host == host; });
  const bool removed = it != copies.end();
  copies.erase(it, copies.end());
  if (copies.empty()) replicas_.erase(entry);
  return removed;
}

Result<std::vector<PhysicalReplica>> Catalog::lookup(
    const std::string& logical_name) const {
  MutexLock lock(mu_);
  const auto it = replicas_.find(logical_name);
  if (it == replicas_.end() || it->second.empty()) {
    return not_found(
        strings::cat("no replicas registered for '", logical_name, "'"));
  }
  return it->second;
}

std::vector<std::string> Catalog::logical_names() const {
  MutexLock lock(mu_);
  std::vector<std::string> names;
  names.reserve(replicas_.size());
  for (const auto& [name, copies] : replicas_) names.push_back(name);
  return names;
}

namespace {
constexpr std::uint16_t method_id(Method m) {
  return static_cast<std::uint16_t>(m);
}
}  // namespace

CatalogServer::CatalogServer(Catalog& catalog, net::Transport& transport,
                             net::Endpoint bind)
    : catalog_(catalog), rpc_(transport, std::move(bind)) {
  rpc_.register_method(
      method_id(Method::kLookup),
      [this](ByteSpan request, const net::RpcContext&) -> Result<Bytes> {
        xdr::Decoder dec(request);
        GL_ASSIGN_OR_RETURN(const std::string logical, dec.string());
        GL_ASSIGN_OR_RETURN(const std::vector<PhysicalReplica> copies,
                            catalog_.lookup(logical));
        xdr::Encoder enc;
        enc.put_vector(copies,
                       [](xdr::Encoder& e, const PhysicalReplica& r) {
                         encode_replica(e, r);
                       });
        return std::move(enc).take();
      });
  rpc_.register_method(
      method_id(Method::kAdd),
      [this](ByteSpan request, const net::RpcContext&) -> Result<Bytes> {
        xdr::Decoder dec(request);
        GL_ASSIGN_OR_RETURN(const std::string logical, dec.string());
        GL_ASSIGN_OR_RETURN(PhysicalReplica replica, decode_replica(dec));
        catalog_.add(logical, std::move(replica));
        return Bytes{};
      });
  rpc_.register_method(
      method_id(Method::kRemove),
      [this](ByteSpan request, const net::RpcContext&) -> Result<Bytes> {
        xdr::Decoder dec(request);
        GL_ASSIGN_OR_RETURN(const std::string logical, dec.string());
        GL_ASSIGN_OR_RETURN(const std::string host, dec.string());
        xdr::Encoder enc;
        enc.put_bool(catalog_.remove(logical, host));
        return std::move(enc).take();
      });
  rpc_.register_method(
      method_id(Method::kList),
      [this](ByteSpan, const net::RpcContext&) -> Result<Bytes> {
        xdr::Encoder enc;
        enc.put_vector(catalog_.logical_names(),
                       [](xdr::Encoder& e, const std::string& name) {
                         e.put_string(name);
                       });
        return std::move(enc).take();
      });
}

CatalogClient::CatalogClient(net::Transport& transport, net::Endpoint server)
    : rpc_(transport, std::move(server)) {}

Result<std::vector<PhysicalReplica>> CatalogClient::lookup(
    const std::string& logical_name) {
  xdr::Encoder enc;
  enc.put_string(logical_name);
  GL_ASSIGN_OR_RETURN(const Bytes reply,
                      rpc_.call(method_id(Method::kLookup), enc.buffer()));
  xdr::Decoder dec(reply);
  return dec.vector<PhysicalReplica>(
      [](xdr::Decoder& d) { return decode_replica(d); });
}

Status CatalogClient::add(const std::string& logical_name,
                          const PhysicalReplica& replica) {
  xdr::Encoder enc;
  enc.put_string(logical_name);
  encode_replica(enc, replica);
  return rpc_.call(method_id(Method::kAdd), enc.buffer()).status();
}

Status CatalogClient::remove(const std::string& logical_name,
                             const std::string& host) {
  xdr::Encoder enc;
  enc.put_string(logical_name);
  enc.put_string(host);
  return rpc_.call(method_id(Method::kRemove), enc.buffer()).status();
}

Result<std::vector<std::string>> CatalogClient::list() {
  GL_ASSIGN_OR_RETURN(const Bytes reply,
                      rpc_.call(method_id(Method::kList), {}));
  xdr::Decoder dec(reply);
  return dec.vector<std::string>(
      [](xdr::Decoder& d) { return d.string(); });
}

}  // namespace griddles::replica
