#include "src/core/multiplexer.h"

#include <filesystem>

#include "src/common/logging.h"
#include "src/common/strings.h"
#include "src/core/staged_client.h"
#include "src/core/tailing_client.h"
#include "src/core/transcode_client.h"
#include "src/gridbuffer/file_client.h"
#include "src/obs/span.h"
#include "src/remote/remote_client.h"
#include "src/replica/replicated_client.h"
#include "src/vfs/local_client.h"

namespace griddles::core {

namespace {
Result<net::Endpoint> parse_endpoint(const std::string& text,
                                     const char* what) {
  if (text.empty()) {
    return invalid_argument(
        strings::cat("mapping is missing its ", what, " endpoint"));
  }
  return net::Endpoint::parse(text);
}

/// Process-wide FM metrics (handles cached once; increments lock-free).
struct FmMetrics {
  obs::Counter& open_local;
  obs::Counter& open_staged;
  obs::Counter& open_proxy;
  obs::Counter& open_replicated;
  obs::Counter& open_buffer;
  obs::Counter& bytes_read;
  obs::Counter& bytes_written;
  obs::Histogram& open_latency_s;  // wall time of the OPEN decision+build

  static FmMetrics& get() {
    auto& registry = obs::MetricsRegistry::global();
    static FmMetrics metrics{
        registry.counter("fm.open.local"),
        registry.counter("fm.open.staged"),
        registry.counter("fm.open.proxy"),
        registry.counter("fm.open.replicated"),
        registry.counter("fm.open.buffer"),
        registry.counter("fm.bytes.read"),
        registry.counter("fm.bytes.written"),
        registry.histogram("fm.open.latency_s",
                           obs::exponential_bounds(1e-5, 10.0, 7)),
    };
    return metrics;
  }
};
}  // namespace

FileMultiplexer::FileMultiplexer(Options options)
    : options_(std::move(options)) {
  if (options_.estimator != nullptr &&
      options_.fallback_estimator != nullptr) {
    estimator_chain_ = std::make_unique<nws::FallbackLinkEstimator>(
        *options_.estimator, *options_.fallback_estimator);
  }
}

nws::LinkEstimator* FileMultiplexer::link_estimator() const {
  if (estimator_chain_) return estimator_chain_.get();
  if (options_.estimator != nullptr) return options_.estimator;
  return options_.fallback_estimator;
}

FileMultiplexer::~FileMultiplexer() {
  if (const Status s = close_all(); !s.is_ok()) {
    GL_LOG(kWarn, "file multiplexer close_all on destruct: ", s);
  }
}

Clock& FileMultiplexer::clock() const {
  if (options_.clock != nullptr) return *options_.clock;
  static RealClock real_clock;
  return real_clock;
}

std::string FileMultiplexer::canonical_path(const std::string& path) const {
  // The GNS matches "the full path name of the file in the OPEN call":
  // relative names are anchored at the application's working root.
  if (!path.empty() && path.front() == '/') return path;
  return (std::filesystem::path(options_.local_root) / path)
      .lexically_normal()
      .string();
}

std::string FileMultiplexer::staging_path_for(
    const std::string& canonical) const {
  return (std::filesystem::path(options_.scratch_dir) /
          strings::cat("stage-", std::hex, fnv1a(as_bytes_view(canonical))))
      .string();
}

Result<int> FileMultiplexer::open(const std::string& path,
                                  vfs::OpenFlags flags) {
  if (!flags.read && !flags.write) {
    return invalid_argument("open selects neither read nor write");
  }
  const WallClock::time_point decision_start = WallClock::now();
  const std::string canonical = canonical_path(path);
  obs::Span open_span(obs::SpanKind::kOpen,
                      strings::cat("open:", canonical));

  gns::FileMapping mapping;  // defaults to plain local IO
  if (options_.gns != nullptr) {
    GL_ASSIGN_OR_RETURN(const std::optional<gns::FileMapping> found,
                        options_.gns->lookup(options_.host, canonical));
    if (found) mapping = *found;
  }

  GL_ASSIGN_OR_RETURN(BuiltClient built,
                      build_client(canonical, mapping, flags));

  // Heterogeneity: a record schema on the mapping inserts the XDR-style
  // transcoder (paper §3.3).
  if (!mapping.record_schema.empty()) {
    GL_ASSIGN_OR_RETURN(const xdr::RecordSchema schema,
                        xdr::RecordSchema::parse(mapping.record_schema));
    GL_ASSIGN_OR_RETURN(built.client, RecordTranscodingClient::wrap(
                                          std::move(built.client), schema));
  }
  FmMetrics::get().open_latency_s.observe(
      to_seconds_d(WallClock::now() - decision_start));

  OpenFile file;
  file.span.host = options_.host;
  file.span.path = canonical;
  file.span.mode = built.mode;
  file.span.open_s = to_seconds_d(clock().now());
  file.span.wall_open_s = obs::SpanCollector::global().wall_now_s();
  file.client = std::move(built.client);
  open_span.add_attr("host", options_.host);
  open_span.add_attr("mode", built.mode);

  MutexLock lock(mu_);
  const int fd = next_fd_++;
  GL_LOG(kDebug, "fm open host=", options_.host, " path=", canonical,
         " -> fd ", fd, " [", file.client->describe(), "]");
  files_[fd] = std::move(file);
  return fd;
}

Result<FileMultiplexer::BuiltClient> FileMultiplexer::build_client(
    const std::string& canonical, const gns::FileMapping& mapping,
    vfs::OpenFlags flags) {
  switch (mapping.mode) {
    case gns::IoMode::kLocal: {
      const std::string& target =
          mapping.local_path.empty() ? canonical : mapping.local_path;
      if (mapping.tail && flags.read && !flags.write) {
        GL_ASSIGN_OR_RETURN(
            auto tailing,
            TailingLocalFileClient::open(target, clock(),
                                         options_.poll_wait,
                                         options_.tail_poll_interval));
        counters_.local_opens.add();
        FmMetrics::get().open_local.add();
        return BuiltClient{std::move(tailing), "tail"};
      }
      GL_ASSIGN_OR_RETURN(auto local,
                          vfs::LocalFileClient::open(target, flags));
      counters_.local_opens.add();
      FmMetrics::get().open_local.add();
      return BuiltClient{std::move(local), "local"};
    }

    case gns::IoMode::kGridBuffer: {
      if (options_.transport == nullptr) {
        return failed_precondition(
            "grid buffer mapping but the FM has no transport");
      }
      GL_ASSIGN_OR_RETURN(
          const net::Endpoint server,
          parse_endpoint(mapping.buffer_endpoint, "grid buffer"));
      const std::string channel =
          mapping.channel.empty() ? canonical : mapping.channel;
      gridbuffer::ChannelConfig config;
      config.block_size = mapping.block_size;
      config.cache_enabled = mapping.cache_enabled;
      config.expected_readers = mapping.reader_count;
      GL_ASSIGN_OR_RETURN(
          auto client,
          gridbuffer::GridBufferFileClient::open(
              *options_.transport, server, channel, flags, config,
              options_.buffer));
      counters_.buffer_opens.add();
      FmMetrics::get().open_buffer.add();
      return BuiltClient{std::move(client), "buffer"};
    }

    case gns::IoMode::kRemoteProxy: {
      if (options_.transport == nullptr) {
        return failed_precondition(
            "remote mapping but the FM has no transport");
      }
      GL_ASSIGN_OR_RETURN(const net::Endpoint server,
                          parse_endpoint(mapping.remote_endpoint, "remote"));
      GL_ASSIGN_OR_RETURN(
          auto client,
          remote::RemoteFileClient::open(*options_.transport, server,
                                         mapping.remote_path, flags));
      counters_.proxy_opens.add();
      FmMetrics::get().open_proxy.add();
      return BuiltClient{std::move(client), "proxy"};
    }

    case gns::IoMode::kRemoteCopy: {
      if (options_.transport == nullptr) {
        return failed_precondition(
            "remote mapping but the FM has no transport");
      }
      GL_ASSIGN_OR_RETURN(const net::Endpoint server,
                          parse_endpoint(mapping.remote_endpoint, "remote"));
      const std::string staging = mapping.local_path.empty()
                                      ? staging_path_for(canonical)
                                      : mapping.local_path;
      GL_ASSIGN_OR_RETURN(
          auto client,
          StagedFileClient::open(*options_.transport, clock(), server,
                                 mapping.remote_path, staging, flags,
                                 options_.copier));
      counters_.staged_opens.add();
      FmMetrics::get().open_staged.add();
      return BuiltClient{std::move(client), "staged"};
    }

    case gns::IoMode::kAuto:
      return build_remote_auto(canonical, mapping, flags);

    case gns::IoMode::kReplicated:
      return build_replicated(canonical, mapping, flags);
  }
  return internal_error("unhandled io mode");
}

Result<FileMultiplexer::BuiltClient> FileMultiplexer::build_remote_auto(
    const std::string& canonical, const gns::FileMapping& mapping,
    vfs::OpenFlags flags) {
  if (options_.transport == nullptr) {
    return failed_precondition("auto mapping but the FM has no transport");
  }
  GL_ASSIGN_OR_RETURN(const net::Endpoint server,
                      parse_endpoint(mapping.remote_endpoint, "remote"));

  // Writable opens stage (the copy-out discipline); the advisor only
  // arbitrates reads.
  remote::RemoteStrategy strategy = remote::RemoteStrategy::kCopy;
  if (!flags.write) {
    // Ask the server for the size, then cost both plans.
    std::uint64_t file_size = 0;
    {
      net::RpcClient stat_rpc(*options_.transport, server);
      xdr::Encoder enc;
      enc.put_string(mapping.remote_path);
      GL_ASSIGN_OR_RETURN(
          const Bytes reply,
          stat_rpc.call(remote::method_id(remote::Method::kStat),
                        enc.buffer()));
      xdr::Decoder dec(reply);
      GL_ASSIGN_OR_RETURN(const bool exists, dec.boolean());
      GL_ASSIGN_OR_RETURN(file_size, dec.u64());
      if (!exists) {
        return not_found(
            strings::cat("remote file missing: ", mapping.remote_path));
      }
    }
    nws::LinkEstimate link{0.05, 1e6};  // conservative default
    if (nws::LinkEstimator* estimator = link_estimator();
        estimator != nullptr) {
      if (auto estimate = estimator->estimate(server.host);
          estimate.is_ok()) {
        link = *estimate;
      }
    }
    const remote::Advice advice =
        remote::advise(file_size, mapping.access_fraction, link,
                       options_.advisor);
    strategy = advice.strategy;
    GL_LOG(kDebug, "fm auto ", canonical, ": copy=",
           advice.copy_cost_seconds, "s proxy=", advice.proxy_cost_seconds,
           "s -> ",
           strategy == remote::RemoteStrategy::kCopy ? "copy" : "proxy");
  }

  gns::FileMapping resolved = mapping;
  resolved.mode = strategy == remote::RemoteStrategy::kCopy
                      ? gns::IoMode::kRemoteCopy
                      : gns::IoMode::kRemoteProxy;
  return build_client(canonical, resolved, flags);
}

Result<FileMultiplexer::BuiltClient> FileMultiplexer::build_replicated(
    const std::string& canonical, const gns::FileMapping& mapping,
    vfs::OpenFlags flags) {
  if (options_.transport == nullptr) {
    return failed_precondition(
        "replicated mapping but the FM has no transport");
  }
  if (flags.write) {
    return permission_denied(
        strings::cat(canonical, " is replicated and therefore read-only"));
  }
  nws::LinkEstimator* estimator = link_estimator();
  if (estimator == nullptr) {
    return failed_precondition(
        "replicated mapping needs a link estimator (NWS)");
  }
  GL_ASSIGN_OR_RETURN(
      const net::Endpoint catalog_endpoint,
      parse_endpoint(mapping.catalog_endpoint, "replica catalog"));
  const std::string logical =
      mapping.logical_name.empty() ? canonical : mapping.logical_name;

  replica::CatalogClient* catalog;
  {
    MutexLock lock(mu_);
    auto& slot = catalogs_[catalog_endpoint.to_string()];
    if (!slot) {
      slot = std::make_unique<replica::CatalogClient>(*options_.transport,
                                                      catalog_endpoint);
    }
    catalog = slot.get();
  }

  GL_ASSIGN_OR_RETURN(
      auto client,
      replica::ReplicatedFileClient::open(*options_.transport, *catalog,
                                          logical, *estimator));
  counters_.replicated_opens.add();
  FmMetrics::get().open_replicated.add();
  return BuiltClient{std::move(client), "replicated"};
}

Result<std::size_t> FileMultiplexer::read(int fd, MutableByteSpan out) {
  vfs::FileClient* file;
  {
    MutexLock lock(mu_);
    const auto it = files_.find(fd);
    if (it == files_.end()) {
      return invalid_argument(strings::cat("bad descriptor ", fd));
    }
    file = it->second.client.get();
  }
  const bool tracing = obs::IoTracer::global().enabled();
  const WallClock::time_point start =
      tracing ? WallClock::now() : WallClock::time_point{};
  auto got = file->read(out);
  if (got.is_ok()) {
    counters_.bytes_read.add(*got);
    FmMetrics::get().bytes_read.add(*got);
    if (tracing) {
      const double waited = to_seconds_d(WallClock::now() - start);
      MutexLock lock(mu_);
      const auto it = files_.find(fd);
      if (it != files_.end()) {
        it->second.span.reads += 1;
        it->second.span.bytes_read += *got;
        it->second.span.read_wait_s += waited;
      }
    }
  } else if (tracing && (got.status().code() == ErrorCode::kUnavailable ||
                         got.status().code() == ErrorCode::kDataLoss)) {
    MutexLock lock(mu_);
    const auto it = files_.find(fd);
    if (it != files_.end()) it->second.span.faults += 1;
  }
  return got;
}

Result<std::size_t> FileMultiplexer::write(int fd, ByteSpan data) {
  vfs::FileClient* file;
  {
    MutexLock lock(mu_);
    const auto it = files_.find(fd);
    if (it == files_.end()) {
      return invalid_argument(strings::cat("bad descriptor ", fd));
    }
    file = it->second.client.get();
  }
  auto put = file->write(data);
  if (put.is_ok()) {
    counters_.bytes_written.add(*put);
    FmMetrics::get().bytes_written.add(*put);
    if (obs::IoTracer::global().enabled()) {
      MutexLock lock(mu_);
      const auto it = files_.find(fd);
      if (it != files_.end()) {
        it->second.span.writes += 1;
        it->second.span.bytes_written += *put;
      }
    }
  } else if (obs::IoTracer::global().enabled() &&
             (put.status().code() == ErrorCode::kUnavailable ||
              put.status().code() == ErrorCode::kDataLoss)) {
    MutexLock lock(mu_);
    const auto it = files_.find(fd);
    if (it != files_.end()) it->second.span.faults += 1;
  }
  return put;
}

Result<std::uint64_t> FileMultiplexer::seek(int fd, std::int64_t offset,
                                            vfs::Whence whence) {
  MutexLock lock(mu_);
  const auto it = files_.find(fd);
  if (it == files_.end()) {
    return invalid_argument(strings::cat("bad descriptor ", fd));
  }
  vfs::FileClient* file = it->second.client.get();
  it->second.span.seeks += 1;
  lock.unlock();  // seeks on buffer streams can block awaiting EOF
  return file->seek(offset, whence);
}

Result<std::uint64_t> FileMultiplexer::tell(int fd) const {
  MutexLock lock(mu_);
  const auto it = files_.find(fd);
  if (it == files_.end()) {
    return invalid_argument(strings::cat("bad descriptor ", fd));
  }
  return it->second.client->tell();
}

Result<std::uint64_t> FileMultiplexer::size(int fd) {
  MutexLock lock(mu_);
  const auto it = files_.find(fd);
  if (it == files_.end()) {
    return invalid_argument(strings::cat("bad descriptor ", fd));
  }
  vfs::FileClient* file = it->second.client.get();
  lock.unlock();  // stream sizes block until the writer closes
  return file->size();
}

Status FileMultiplexer::flush(int fd) {
  MutexLock lock(mu_);
  const auto it = files_.find(fd);
  if (it == files_.end()) {
    return invalid_argument(strings::cat("bad descriptor ", fd));
  }
  vfs::FileClient* file = it->second.client.get();
  lock.unlock();
  return file->flush();
}

Status FileMultiplexer::finish_file(OpenFile file) {
  // Closing outside the lock: staged files copy back, buffers drain.
  const Status closed = file.client->close();
  file.span.close_s = to_seconds_d(clock().now());
  file.span.wall_close_s = obs::SpanCollector::global().wall_now_s();
  obs::IoTracer::global().record(std::move(file.span));
  return closed;
}

Status FileMultiplexer::close(int fd) {
  OpenFile file;
  {
    MutexLock lock(mu_);
    const auto it = files_.find(fd);
    if (it == files_.end()) {
      return invalid_argument(strings::cat("bad descriptor ", fd));
    }
    file = std::move(it->second);
    files_.erase(it);
  }
  return finish_file(std::move(file));
}

Status FileMultiplexer::close_all() {
  std::map<int, OpenFile> files;
  {
    MutexLock lock(mu_);
    files = std::move(files_);
    files_.clear();
  }
  Status first_error = Status::ok();
  for (auto& [fd, file] : files) {
    if (const Status s = finish_file(std::move(file));
        !s.is_ok() && first_error.is_ok()) {
      first_error = s;
    }
  }
  return first_error;
}

Result<std::string> FileMultiplexer::describe(int fd) const {
  MutexLock lock(mu_);
  const auto it = files_.find(fd);
  if (it == files_.end()) {
    return invalid_argument(strings::cat("bad descriptor ", fd));
  }
  return it->second.client->describe();
}

FmStats FileMultiplexer::stats() const {
  FmStats stats;
  stats.local_opens = counters_.local_opens.value();
  stats.staged_opens = counters_.staged_opens.value();
  stats.proxy_opens = counters_.proxy_opens.value();
  stats.replicated_opens = counters_.replicated_opens.value();
  stats.buffer_opens = counters_.buffer_opens.value();
  stats.bytes_read = counters_.bytes_read.value();
  stats.bytes_written = counters_.bytes_written.value();
  return stats;
}

}  // namespace griddles::core
