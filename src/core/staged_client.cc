#include "src/core/staged_client.h"

#include "src/common/strings.h"

namespace griddles::core {

Result<std::unique_ptr<StagedFileClient>> StagedFileClient::open(
    net::Transport& transport, Clock& clock, const net::Endpoint& server,
    const std::string& remote_path, const std::string& staging_path,
    vfs::OpenFlags flags, remote::FileCopier::Options copy_options) {
  auto client = std::unique_ptr<StagedFileClient>(new StagedFileClient(
      transport, clock, server, remote_path, staging_path, flags,
      copy_options));

  const bool need_existing_content = flags.read && !flags.truncate;
  if (need_existing_content) {
    remote::FileCopier copier(transport, clock, copy_options);
    GL_ASSIGN_OR_RETURN(client->fetch_stats_,
                        copier.fetch(server, remote_path, staging_path));
  }

  vfs::OpenFlags local_flags = flags;
  if (!need_existing_content) {
    local_flags.create = true;
    local_flags.truncate = true;
  }
  GL_ASSIGN_OR_RETURN(client->local_,
                      vfs::LocalFileClient::open(staging_path, local_flags));
  return client;
}

StagedFileClient::StagedFileClient(net::Transport& transport, Clock& clock,
                                   net::Endpoint server,
                                   std::string remote_path,
                                   std::string staging_path,
                                   vfs::OpenFlags flags,
                                   remote::FileCopier::Options copy_options)
    : transport_(transport), clock_(clock), server_(std::move(server)),
      remote_path_(std::move(remote_path)),
      staging_path_(std::move(staging_path)), flags_(flags),
      copy_options_(copy_options) {}

StagedFileClient::~StagedFileClient() { (void)close(); }

Result<std::size_t> StagedFileClient::read(MutableByteSpan out) {
  if (closed_) return failed_precondition("read on closed staged file");
  return local_->read(out);
}

Result<std::size_t> StagedFileClient::write(ByteSpan data) {
  if (closed_) return failed_precondition("write on closed staged file");
  auto put = local_->write(data);
  if (put.is_ok() && *put > 0) dirty_ = true;
  return put;
}

Result<std::uint64_t> StagedFileClient::seek(std::int64_t offset,
                                             vfs::Whence whence) {
  if (closed_) return failed_precondition("seek on closed staged file");
  return local_->seek(offset, whence);
}

std::uint64_t StagedFileClient::tell() const {
  return local_ ? local_->tell() : 0;
}

Result<std::uint64_t> StagedFileClient::size() {
  if (closed_) return failed_precondition("size of closed staged file");
  return local_->size();
}

Status StagedFileClient::flush() {
  if (closed_) return Status::ok();
  return local_->flush();
}

Status StagedFileClient::close() {
  if (closed_) return Status::ok();
  closed_ = true;
  GL_RETURN_IF_ERROR(local_->close());
  if (dirty_) {
    remote::FileCopier copier(transport_, clock_, copy_options_);
    GL_ASSIGN_OR_RETURN(push_stats_,
                        copier.push(staging_path_, server_, remote_path_));
  }
  return Status::ok();
}

std::string StagedFileClient::describe() const {
  return strings::cat("staged:", server_.to_string(), "!", remote_path_,
                      " via ", staging_path_);
}

}  // namespace griddles::core
