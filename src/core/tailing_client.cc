#include "src/core/tailing_client.h"

#include <filesystem>

#include "src/common/strings.h"

namespace griddles::core {

std::string TailingLocalFileClient::done_marker(const std::string& path) {
  return path + ".done";
}

Result<std::unique_ptr<TailingLocalFileClient>> TailingLocalFileClient::open(
    const std::string& path, Clock& clock, PollWait poll_wait,
    Duration poll_interval) {
  auto client = std::unique_ptr<TailingLocalFileClient>(
      new TailingLocalFileClient(nullptr, path, clock, std::move(poll_wait),
                                 poll_interval));
  // Wait for the producer to create the file.
  int polls = 0;
  while (true) {
    auto inner = vfs::LocalFileClient::open(path, vfs::OpenFlags::input());
    if (inner.is_ok()) {
      client->inner_ = std::move(*inner);
      return client;
    }
    if (inner.status().code() != ErrorCode::kNotFound) {
      return inner.status();
    }
    if (client->producer_done()) {
      // Producer finished without ever creating the file.
      return not_found(strings::cat("tail: producer finished but ", path,
                                    " was never created"));
    }
    if (++polls > kMaxIdlePolls) {
      return timeout_error(strings::cat("tail: gave up waiting for ", path));
    }
    client->wait_one_poll();
  }
}

TailingLocalFileClient::TailingLocalFileClient(
    std::unique_ptr<vfs::LocalFileClient> inner, std::string path,
    Clock& clock, PollWait poll_wait, Duration poll_interval)
    : inner_(std::move(inner)), path_(std::move(path)), clock_(clock),
      poll_wait_(std::move(poll_wait)), poll_interval_(poll_interval) {}

bool TailingLocalFileClient::producer_done() const {
  std::error_code ec;
  return std::filesystem::exists(done_marker(path_), ec);
}

void TailingLocalFileClient::wait_one_poll() {
  if (poll_wait_) {
    poll_wait_(poll_interval_);
  } else {
    clock_.sleep_for(poll_interval_);
  }
}

Result<std::size_t> TailingLocalFileClient::read(MutableByteSpan out) {
  int idle_polls = 0;
  while (true) {
    GL_ASSIGN_OR_RETURN(const std::size_t got, inner_->read(out));
    if (got > 0) return got;
    if (producer_done()) {
      // One more read after the marker: data written between our read
      // and the marker check must not be lost.
      GL_ASSIGN_OR_RETURN(const std::size_t final_got, inner_->read(out));
      return final_got;
    }
    if (++idle_polls > kMaxIdlePolls) {
      return timeout_error(
          strings::cat("tail: no growth on ", path_, "; producer stuck?"));
    }
    wait_one_poll();
  }
}

Result<std::size_t> TailingLocalFileClient::write(ByteSpan) {
  return permission_denied("tailing files are read-only");
}

Result<std::uint64_t> TailingLocalFileClient::seek(std::int64_t offset,
                                                   vfs::Whence whence) {
  if (whence == vfs::Whence::kEnd) {
    // The end is only defined once the producer finished.
    GL_ASSIGN_OR_RETURN(const std::uint64_t total, size());
    return inner_->seek(static_cast<std::int64_t>(total) + offset,
                        vfs::Whence::kSet);
  }
  return inner_->seek(offset, whence);
}

std::uint64_t TailingLocalFileClient::tell() const { return inner_->tell(); }

Result<std::uint64_t> TailingLocalFileClient::size() {
  int idle_polls = 0;
  while (!producer_done()) {
    if (++idle_polls > kMaxIdlePolls) {
      return timeout_error(
          strings::cat("tail: size of ", path_, " never finalized"));
    }
    wait_one_poll();
  }
  return inner_->size();
}

Status TailingLocalFileClient::flush() { return Status::ok(); }

Status TailingLocalFileClient::close() { return inner_->close(); }

std::string TailingLocalFileClient::describe() const {
  return strings::cat("tail:", path_);
}

}  // namespace griddles::core
