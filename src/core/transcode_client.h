// RecordTranscodingClient: transparent byte reordering for heterogeneous
// endpoints (paper §3.3).
//
// When a GNS mapping carries a record schema, the writer-side FM converts
// records from host order to the canonical (big-endian) wire order, and
// the reader-side FM converts back to its host order. On a little-endian
// pair both swaps happen (and cancel); on a mixed pair exactly the right
// one does — the XDR discipline, applied to legacy record files without
// touching the application.
#pragma once

#include <bit>
#include <memory>

#include "src/vfs/file_client.h"
#include "src/xdr/record.h"

namespace griddles::core {

class RecordTranscodingClient final : public vfs::FileClient {
 public:
  /// Wraps `inner`. Writes are host->canonical; reads canonical->host.
  /// `host_order` is exposed for tests; defaults to the real host.
  static Result<std::unique_ptr<RecordTranscodingClient>> wrap(
      std::unique_ptr<vfs::FileClient> inner, const xdr::RecordSchema& schema,
      std::endian host_order = std::endian::native);

  Result<std::size_t> read(MutableByteSpan out) override;
  Result<std::size_t> write(ByteSpan data) override;

  /// Seeks must land on record boundaries and not strand partial data.
  Result<std::uint64_t> seek(std::int64_t offset, vfs::Whence whence) override;
  std::uint64_t tell() const override;
  Result<std::uint64_t> size() override;
  Status flush() override;
  Status close() override;
  std::string describe() const override;

 private:
  RecordTranscodingClient(std::unique_ptr<vfs::FileClient> inner,
                          xdr::RecordSchema schema, bool swap_needed)
      : inner_(std::move(inner)), schema_(std::move(schema)),
        swap_needed_(swap_needed) {}

  std::unique_ptr<vfs::FileClient> inner_;
  xdr::RecordSchema schema_;
  bool swap_needed_;  // host order != canonical big-endian

  Bytes write_buffer_;  // bytes awaiting a whole record (app -> wire)
  Bytes read_buffer_;   // decoded bytes awaiting the app
  std::size_t read_buffer_pos_ = 0;
  std::uint64_t logical_cursor_ = 0;  // app-visible position
};

}  // namespace griddles::core
