#include "src/core/posix_shim.h"

#include <atomic>
#include <cstring>

namespace griddles::core {

namespace {
std::atomic<FileMultiplexer*> g_fm{nullptr};
thread_local std::string t_last_error;

void set_error(const Status& status) { t_last_error = status.to_string(); }
void clear_error() { t_last_error.clear(); }

Result<vfs::OpenFlags> parse_mode(const char* mode) {
  if (mode == nullptr) return invalid_argument("null open mode");
  const std::string_view m(mode);
  if (m == "r" || m == "rb") return vfs::OpenFlags::input();
  if (m == "w" || m == "wb") return vfs::OpenFlags::output();
  if (m == "r+" || m == "rb+" || m == "r+b") return vfs::OpenFlags::update();
  if (m == "a" || m == "ab") return vfs::OpenFlags::appending();
  return invalid_argument(std::string("unsupported open mode '") +
                          mode + "'");
}
}  // namespace

void glio_install(FileMultiplexer* fm) { g_fm.store(fm); }

FileMultiplexer* glio_current() { return g_fm.load(); }

int glio_open(const char* path, const char* mode) {
  FileMultiplexer* fm = g_fm.load();
  if (fm == nullptr || path == nullptr) {
    set_error(failed_precondition("no file multiplexer installed"));
    return -1;
  }
  auto flags = parse_mode(mode);
  if (!flags.is_ok()) {
    set_error(flags.status());
    return -1;
  }
  auto fd = fm->open(path, *flags);
  if (!fd.is_ok()) {
    set_error(fd.status());
    return -1;
  }
  clear_error();
  return *fd;
}

std::int64_t glio_read(int fd, void* buffer, std::size_t size) {
  FileMultiplexer* fm = g_fm.load();
  if (fm == nullptr) {
    set_error(failed_precondition("no file multiplexer installed"));
    return -1;
  }
  auto got = fm->read(fd, {static_cast<std::byte*>(buffer), size});
  if (!got.is_ok()) {
    set_error(got.status());
    return -1;
  }
  clear_error();
  return static_cast<std::int64_t>(*got);
}

std::int64_t glio_write(int fd, const void* buffer, std::size_t size) {
  FileMultiplexer* fm = g_fm.load();
  if (fm == nullptr) {
    set_error(failed_precondition("no file multiplexer installed"));
    return -1;
  }
  auto put = fm->write(fd, {static_cast<const std::byte*>(buffer), size});
  if (!put.is_ok()) {
    set_error(put.status());
    return -1;
  }
  clear_error();
  return static_cast<std::int64_t>(*put);
}

std::int64_t glio_lseek(int fd, std::int64_t offset, int whence) {
  FileMultiplexer* fm = g_fm.load();
  if (fm == nullptr || whence < 0 || whence > 2) {
    set_error(invalid_argument("bad lseek arguments"));
    return -1;
  }
  auto pos = fm->seek(fd, offset, static_cast<vfs::Whence>(whence));
  if (!pos.is_ok()) {
    set_error(pos.status());
    return -1;
  }
  clear_error();
  return static_cast<std::int64_t>(*pos);
}

int glio_flush(int fd) {
  FileMultiplexer* fm = g_fm.load();
  if (fm == nullptr) {
    set_error(failed_precondition("no file multiplexer installed"));
    return -1;
  }
  if (const Status s = fm->flush(fd); !s.is_ok()) {
    set_error(s);
    return -1;
  }
  clear_error();
  return 0;
}

int glio_close(int fd) {
  FileMultiplexer* fm = g_fm.load();
  if (fm == nullptr) {
    set_error(failed_precondition("no file multiplexer installed"));
    return -1;
  }
  if (const Status s = fm->close(fd); !s.is_ok()) {
    set_error(s);
    return -1;
  }
  clear_error();
  return 0;
}

const char* glio_last_error() { return t_last_error.c_str(); }

}  // namespace griddles::core
