// C-style interposition shim over a process-global File Multiplexer.
//
// This is the surface an LD_PRELOAD layer (Bypass, in the paper) binds
// to: the functions mirror the classic open/read/write/lseek/close unit
// so legacy C/Fortran IO can be redirected with no source change. The
// examples use it to show that the *same* application code runs in every
// IO configuration.
#pragma once

#include <cstddef>
#include <cstdint>

#include "src/core/multiplexer.h"

namespace griddles::core {

/// Installs the process-global FM (not owned). Pass nullptr to uninstall.
void glio_install(FileMultiplexer* fm);

/// The currently installed FM (null if none).
FileMultiplexer* glio_current();

/// fopen-style mode strings: "r", "w", "r+", "a".
/// Returns a descriptor >= 3, or -1 (see glio_last_error()).
int glio_open(const char* path, const char* mode);

/// Returns bytes read, 0 at EOF, or -1 on error.
std::int64_t glio_read(int fd, void* buffer, std::size_t size);

/// Returns bytes written or -1 on error.
std::int64_t glio_write(int fd, const void* buffer, std::size_t size);

/// whence: 0 = SET, 1 = CUR, 2 = END. Returns new offset or -1.
std::int64_t glio_lseek(int fd, std::int64_t offset, int whence);

/// Returns 0 on success, -1 on error.
int glio_flush(int fd);
int glio_close(int fd);

/// The Status message of the most recent failing glio_* call on this
/// thread ("" when the last call succeeded).
const char* glio_last_error();

}  // namespace griddles::core
