#include "src/core/transcode_client.h"

#include <algorithm>

#include "src/common/strings.h"

namespace griddles::core {

Result<std::unique_ptr<RecordTranscodingClient>>
RecordTranscodingClient::wrap(std::unique_ptr<vfs::FileClient> inner,
                              const xdr::RecordSchema& schema,
                              std::endian host_order) {
  if (schema.record_size() == 0) {
    return invalid_argument("transcoding needs a non-empty record schema");
  }
  const bool swap_needed = host_order != std::endian::big;
  return std::unique_ptr<RecordTranscodingClient>(
      new RecordTranscodingClient(std::move(inner), schema, swap_needed));
}

Result<std::size_t> RecordTranscodingClient::read(MutableByteSpan out) {
  std::size_t served = 0;
  while (served < out.size()) {
    // Serve from the decoded buffer first.
    if (read_buffer_pos_ < read_buffer_.size()) {
      const std::size_t take = std::min(out.size() - served,
                                        read_buffer_.size() -
                                            read_buffer_pos_);
      std::copy_n(read_buffer_.begin() +
                      static_cast<std::ptrdiff_t>(read_buffer_pos_),
                  take,
                  out.begin() + static_cast<std::ptrdiff_t>(served));
      read_buffer_pos_ += take;
      served += take;
      logical_cursor_ += take;
      continue;
    }
    // Refill: read a batch of whole records from the wire.
    const std::size_t record = schema_.record_size();
    const std::size_t want =
        std::max<std::size_t>(record,
                              (out.size() - served) / record * record);
    read_buffer_.assign(want, std::byte{0});
    read_buffer_pos_ = 0;
    std::size_t got = 0;
    while (got < want) {
      GL_ASSIGN_OR_RETURN(
          const std::size_t n,
          inner_->read({read_buffer_.data() + got, want - got}));
      if (n == 0) break;
      got += n;
    }
    if (got == 0) {
      read_buffer_.clear();
      return served;  // clean EOF
    }
    if (got % record != 0) {
      return io_error(strings::cat(
          "stream ends mid-record (", got % record, " trailing bytes of a ",
          record, "-byte record)"));
    }
    read_buffer_.resize(got);
    if (swap_needed_) {
      GL_RETURN_IF_ERROR(schema_.swap_records(
          {read_buffer_.data(), read_buffer_.size()}));
    }
  }
  return served;
}

Result<std::size_t> RecordTranscodingClient::write(ByteSpan data) {
  const std::size_t accepted = data.size();
  write_buffer_.insert(write_buffer_.end(), data.begin(), data.end());
  const std::size_t record = schema_.record_size();
  const std::size_t whole = write_buffer_.size() / record * record;
  if (whole > 0) {
    if (swap_needed_) {
      GL_RETURN_IF_ERROR(schema_.swap_records({write_buffer_.data(), whole}));
    }
    GL_RETURN_IF_ERROR(
        vfs::write_all(*inner_, {write_buffer_.data(), whole}));
    write_buffer_.erase(write_buffer_.begin(),
                        write_buffer_.begin() +
                            static_cast<std::ptrdiff_t>(whole));
  }
  logical_cursor_ += accepted;
  return accepted;
}

Result<std::uint64_t> RecordTranscodingClient::seek(std::int64_t offset,
                                                    vfs::Whence whence) {
  if (!write_buffer_.empty()) {
    return failed_precondition(
        "seek with a partial record pending write; finish the record first");
  }
  GL_ASSIGN_OR_RETURN(const std::uint64_t pos, inner_->seek(offset, whence));
  if (pos % schema_.record_size() != 0) {
    return invalid_argument(
        strings::cat("seek target ", pos, " is not record-aligned (",
                     schema_.record_size(), "-byte records)"));
  }
  read_buffer_.clear();
  read_buffer_pos_ = 0;
  logical_cursor_ = pos;
  return pos;
}

std::uint64_t RecordTranscodingClient::tell() const {
  return logical_cursor_;
}

Result<std::uint64_t> RecordTranscodingClient::size() {
  return inner_->size();
}

Status RecordTranscodingClient::flush() {
  if (!write_buffer_.empty()) {
    return failed_precondition(
        "flush with a partial record buffered; records must be whole");
  }
  return inner_->flush();
}

Status RecordTranscodingClient::close() {
  if (!write_buffer_.empty()) {
    return io_error(strings::cat("closing with ", write_buffer_.size(),
                                 " bytes of an unfinished record"));
  }
  return inner_->close();
}

std::string RecordTranscodingClient::describe() const {
  return strings::cat("xdr[", schema_.to_string(), "]:",
                      inner_->describe());
}

}  // namespace griddles::core
