// TailingLocalFileClient: reads a local file that a concurrent process is
// still writing.
//
// A conventional-files workflow that launches all stages at once (Table 4
// "With Files") has downstream programs hitting EOF on half-written
// files. The FM handles this by poll-and-retry: EOF is only final once
// the producer's completion marker ("<path>.done") exists. Each poll
// passes model time through the FM's poll_wait hook, which the workflow
// runner wires to the machine model so polling burns CPU — the effect
// that makes concurrent-with-files runs slower than buffered ones.
#pragma once

#include <functional>
#include <memory>

#include "src/common/clock.h"
#include "src/vfs/local_client.h"

namespace griddles::core {

/// Passes model time while a tailing reader waits for the producer.
using PollWait = std::function<void(Duration)>;

class TailingLocalFileClient final : public vfs::FileClient {
 public:
  /// Waits (polling) until `path` exists, then opens it for reading.
  static Result<std::unique_ptr<TailingLocalFileClient>> open(
      const std::string& path, Clock& clock, PollWait poll_wait,
      Duration poll_interval);

  Result<std::size_t> read(MutableByteSpan out) override;
  Result<std::size_t> write(ByteSpan data) override;
  Result<std::uint64_t> seek(std::int64_t offset, vfs::Whence whence) override;
  std::uint64_t tell() const override;

  /// Final size: polls until the producer's done marker, then stats.
  Result<std::uint64_t> size() override;
  Status flush() override;
  Status close() override;
  std::string describe() const override;

  /// "<path>.done", the completion marker a workflow runner creates when
  /// the producing task finishes.
  static std::string done_marker(const std::string& path);

 private:
  TailingLocalFileClient(std::unique_ptr<vfs::LocalFileClient> inner,
                         std::string path, Clock& clock, PollWait poll_wait,
                         Duration poll_interval);

  bool producer_done() const;
  void wait_one_poll();

  std::unique_ptr<vfs::LocalFileClient> inner_;
  std::string path_;
  Clock& clock_;
  PollWait poll_wait_;
  Duration poll_interval_;
  /// Gives up after this many consecutive empty polls (deadlock guard).
  static constexpr int kMaxIdlePolls = 100000;
};

}  // namespace griddles::core
