#include "src/core/stream.h"

#include <cstdarg>
#include <cstdio>

#include "src/common/logging.h"

namespace griddles::core {

Result<GlStream> GlStream::open(FileMultiplexer& fm, const std::string& path,
                                const char* mode) {
  vfs::OpenFlags flags;
  const std::string_view m(mode == nullptr ? "" : mode);
  if (m == "r") {
    flags = vfs::OpenFlags::input();
  } else if (m == "w") {
    flags = vfs::OpenFlags::output();
  } else if (m == "a") {
    flags = vfs::OpenFlags::appending();
  } else if (m == "r+") {
    flags = vfs::OpenFlags::update();
  } else {
    return invalid_argument(std::string("bad stream mode '") +
                            (mode ? mode : "(null)") + "'");
  }
  GL_ASSIGN_OR_RETURN(const int fd, fm.open(path, flags));
  return GlStream(&fm, fd);
}

GlStream::GlStream(GlStream&& other) noexcept
    : fm_(other.fm_), fd_(other.fd_),
      read_buffer_(std::move(other.read_buffer_)),
      read_pos_(other.read_pos_),
      write_buffer_(std::move(other.write_buffer_)),
      eof_seen_(other.eof_seen_) {
  other.fm_ = nullptr;
  other.fd_ = -1;
}

GlStream& GlStream::operator=(GlStream&& other) noexcept {
  if (this != &other) {
    (void)close();
    fm_ = other.fm_;
    fd_ = other.fd_;
    read_buffer_ = std::move(other.read_buffer_);
    read_pos_ = other.read_pos_;
    write_buffer_ = std::move(other.write_buffer_);
    eof_seen_ = other.eof_seen_;
    other.fm_ = nullptr;
    other.fd_ = -1;
  }
  return *this;
}

GlStream::~GlStream() {
  if (const Status s = close(); !s.is_ok()) {
    GL_LOG(kWarn, "GlStream close on destruct: ", s);
  }
}

Status GlStream::fill_read_buffer() {
  if (eof_seen_) return Status::ok();
  // Compact consumed prefix.
  if (read_pos_ > 0) {
    read_buffer_.erase(read_buffer_.begin(),
                       read_buffer_.begin() +
                           static_cast<std::ptrdiff_t>(read_pos_));
    read_pos_ = 0;
  }
  const std::size_t old_size = read_buffer_.size();
  read_buffer_.resize(old_size + kReadChunk);
  GL_ASSIGN_OR_RETURN(
      const std::size_t got,
      fm_->read(fd_, {read_buffer_.data() + old_size, kReadChunk}));
  read_buffer_.resize(old_size + got);
  if (got == 0) eof_seen_ = true;
  return Status::ok();
}

Result<std::optional<std::string>> GlStream::read_line() {
  if (fm_ == nullptr) return failed_precondition("stream is closed");
  GL_RETURN_IF_ERROR(flush());
  while (true) {
    for (std::size_t i = read_pos_; i < read_buffer_.size(); ++i) {
      if (read_buffer_[i] == std::byte{'\n'}) {
        std::string line(
            reinterpret_cast<const char*>(read_buffer_.data() + read_pos_),
            i - read_pos_);
        read_pos_ = i + 1;
        return std::optional<std::string>(std::move(line));
      }
    }
    if (eof_seen_) {
      if (read_pos_ >= read_buffer_.size()) {
        return std::optional<std::string>();  // clean EOF
      }
      // Final line without a newline.
      std::string line(
          reinterpret_cast<const char*>(read_buffer_.data() + read_pos_),
          read_buffer_.size() - read_pos_);
      read_pos_ = read_buffer_.size();
      return std::optional<std::string>(std::move(line));
    }
    GL_RETURN_IF_ERROR(fill_read_buffer());
  }
}

Status GlStream::write_line(std::string_view line) {
  GL_RETURN_IF_ERROR(write(as_bytes_view(line)));
  const char newline = '\n';
  return write({reinterpret_cast<const std::byte*>(&newline), 1});
}

Status GlStream::printf(const char* format, ...) {
  char stack_buffer[512];
  va_list args;
  va_start(args, format);
  const int needed =
      std::vsnprintf(stack_buffer, sizeof(stack_buffer), format, args);
  va_end(args);
  if (needed < 0) return invalid_argument("bad printf format");
  if (static_cast<std::size_t>(needed) < sizeof(stack_buffer)) {
    return write({reinterpret_cast<const std::byte*>(stack_buffer),
                  static_cast<std::size_t>(needed)});
  }
  std::string heap_buffer(static_cast<std::size_t>(needed) + 1, '\0');
  va_start(args, format);
  std::vsnprintf(heap_buffer.data(), heap_buffer.size(), format, args);
  va_end(args);
  return write({reinterpret_cast<const std::byte*>(heap_buffer.data()),
                static_cast<std::size_t>(needed)});
}

Result<std::size_t> GlStream::read(MutableByteSpan out) {
  if (fm_ == nullptr) return failed_precondition("stream is closed");
  GL_RETURN_IF_ERROR(flush());
  // Serve buffered bytes first.
  if (read_pos_ < read_buffer_.size()) {
    const std::size_t take =
        std::min(out.size(), read_buffer_.size() - read_pos_);
    std::copy_n(read_buffer_.begin() +
                    static_cast<std::ptrdiff_t>(read_pos_),
                take, out.begin());
    read_pos_ += take;
    return take;
  }
  return fm_->read(fd_, out);
}

Status GlStream::write(ByteSpan data) {
  if (fm_ == nullptr) return failed_precondition("stream is closed");
  write_buffer_.insert(write_buffer_.end(), data.begin(), data.end());
  if (write_buffer_.size() >= kWriteFlushAt) return flush();
  return Status::ok();
}

Status GlStream::flush() {
  if (fm_ == nullptr || write_buffer_.empty()) return Status::ok();
  GL_ASSIGN_OR_RETURN(const std::size_t put,
                      fm_->write(fd_, write_buffer_));
  if (put != write_buffer_.size()) {
    return io_error("short write through the multiplexer");
  }
  write_buffer_.clear();
  return Status::ok();
}

Status GlStream::close() {
  if (fm_ == nullptr) return Status::ok();
  const Status flushed = flush();
  const Status closed = fm_->close(fd_);
  fm_ = nullptr;
  fd_ = -1;
  GL_RETURN_IF_ERROR(flushed);
  return closed;
}

}  // namespace griddles::core
