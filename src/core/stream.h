// GlStream: a buffered, fgets/fprintf-style convenience layer over an FM
// descriptor — the shape of IO most legacy Fortran/C codes actually do
// (formatted ASCII records, line by line; paper §3.3 notes formatted
// ASCII is the traditional portable format).
#pragma once

#include <optional>
#include <string>

#include "src/core/multiplexer.h"

namespace griddles::core {

class GlStream {
 public:
  /// Opens `path` through the multiplexer with fopen-style `mode`
  /// ("r", "w", "a", "r+").
  static Result<GlStream> open(FileMultiplexer& fm, const std::string& path,
                               const char* mode);

  GlStream(GlStream&& other) noexcept;
  GlStream& operator=(GlStream&& other) noexcept;
  GlStream(const GlStream&) = delete;
  GlStream& operator=(const GlStream&) = delete;
  ~GlStream();

  /// Reads up to (and including) the next '\n'; nullopt at EOF.
  /// The trailing newline is stripped.
  Result<std::optional<std::string>> read_line();

  /// Writes a line, appending '\n'.
  Status write_line(std::string_view line);

  /// printf-style formatted write.
  Status printf(const char* format, ...)
      __attribute__((format(printf, 2, 3)));

  /// Unbuffered raw access (flushes pending writes first).
  Result<std::size_t> read(MutableByteSpan out);
  Status write(ByteSpan data);

  /// Pushes buffered writes to the FM.
  Status flush();

  /// Flushes and closes the descriptor. Idempotent.
  Status close();

  int fd() const noexcept { return fd_; }

 private:
  GlStream(FileMultiplexer* fm, int fd) : fm_(fm), fd_(fd) {}

  Status fill_read_buffer();

  FileMultiplexer* fm_ = nullptr;
  int fd_ = -1;
  Bytes read_buffer_;
  std::size_t read_pos_ = 0;
  Bytes write_buffer_;
  bool eof_seen_ = false;

  static constexpr std::size_t kReadChunk = 16 * 1024;
  static constexpr std::size_t kWriteFlushAt = 16 * 1024;
};

}  // namespace griddles::core
