// StagedFileClient: remote file accessed by whole-file copy (paper
// modes 2 and 5).
//
// At open the remote file is fetched into a local staging path (readable
// opens only); all IO then runs at local speed; if the file was written,
// close() pushes it back to the remote server — exactly the Legion /
// Nimrod copy-in/copy-out discipline the paper contrasts with proxy
// access.
#pragma once

#include <memory>
#include <string>

#include "src/remote/copier.h"
#include "src/vfs/local_client.h"

namespace griddles::core {

class StagedFileClient final : public vfs::FileClient {
 public:
  /// Fetches `remote_path` from `server` into `staging_path` (unless the
  /// open is write-only/truncating) and opens it locally.
  static Result<std::unique_ptr<StagedFileClient>> open(
      net::Transport& transport, Clock& clock, const net::Endpoint& server,
      const std::string& remote_path, const std::string& staging_path,
      vfs::OpenFlags flags, remote::FileCopier::Options copy_options);

  ~StagedFileClient() override;

  Result<std::size_t> read(MutableByteSpan out) override;
  Result<std::size_t> write(ByteSpan data) override;
  Result<std::uint64_t> seek(std::int64_t offset, vfs::Whence whence) override;
  std::uint64_t tell() const override;
  Result<std::uint64_t> size() override;
  Status flush() override;

  /// Closes the local file and, if it was opened writable, pushes the
  /// staged copy back to the remote server.
  Status close() override;

  std::string describe() const override;

  /// Copy statistics (zeroed when the phase did not run).
  const remote::CopyStats& fetch_stats() const noexcept {
    return fetch_stats_;
  }
  const remote::CopyStats& push_stats() const noexcept {
    return push_stats_;
  }

 private:
  StagedFileClient(net::Transport& transport, Clock& clock,
                   net::Endpoint server, std::string remote_path,
                   std::string staging_path, vfs::OpenFlags flags,
                   remote::FileCopier::Options copy_options);

  net::Transport& transport_;
  Clock& clock_;
  net::Endpoint server_;
  std::string remote_path_;
  std::string staging_path_;
  vfs::OpenFlags flags_;
  remote::FileCopier::Options copy_options_;
  std::unique_ptr<vfs::LocalFileClient> local_;
  bool dirty_ = false;
  bool closed_ = false;
  remote::CopyStats fetch_stats_;
  remote::CopyStats push_stats_;
};

}  // namespace griddles::core
