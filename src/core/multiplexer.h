// The File Multiplexer (paper §3, Figure 2): GriddLeS' primary
// contribution.
//
// The FM intercepts the legacy application's file operations. At every
// OPEN it consults the GriddLeS Name Service for a mapping of (host,
// path) and routes the file to one of the six IO mechanisms — local file,
// staged copy, remote proxy, replicated file, or a Grid Buffer stream —
// choosing copy-vs-proxy at run time from file size, expected access
// fraction and NWS link forecasts. Each OPEN decides independently, so
// one file of a program can be local while its neighbour is a live socket
// to a downstream model.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "src/common/clock.h"
#include "src/common/thread_annotations.h"
#include "src/gns/service.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/gridbuffer/file_client.h"
#include "src/net/transport.h"
#include "src/nws/forecast.h"
#include "src/remote/advisor.h"
#include "src/remote/copier.h"
#include "src/replica/catalog.h"
#include "src/vfs/file_client.h"

namespace griddles::core {

/// Per-mode open counters (observable routing decisions). A value
/// snapshot of this multiplexer's atomic counters; the same events also
/// feed the process-wide registry under `fm.*` (see DESIGN.md
/// "Observability").
struct FmStats {
  std::uint64_t local_opens = 0;
  std::uint64_t staged_opens = 0;       // whole-file copies (modes 2/5)
  std::uint64_t proxy_opens = 0;        // remote block access (mode 3)
  std::uint64_t replicated_opens = 0;   // catalog-resolved (modes 4/5)
  std::uint64_t buffer_opens = 0;       // grid buffer streams (mode 6)
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
};

class FileMultiplexer {
 public:
  struct Options {
    /// Host identity used in GNS lookups (a Table 1 machine name).
    std::string host = "localhost";
    /// Directory that anchors relative application paths.
    std::string local_root = ".";
    /// Directory for staged copies.
    std::string scratch_dir = "/tmp";
    /// Name service (single client or replicated front end); null means
    /// every open is plain local IO.
    gns::NameService* gns = nullptr;
    /// Transport for the remote/buffer/replica modes.
    net::Transport* transport = nullptr;
    /// Model clock for copy timing; null uses a process-wide RealClock.
    Clock* clock = nullptr;
    /// Link forecasts for kAuto and replica selection; optional.
    nws::LinkEstimator* estimator = nullptr;
    /// Static-model estimator consulted when `estimator` is unset or
    /// fails (NWS sensor outage); see nws::FallbackLinkEstimator.
    nws::LinkEstimator* fallback_estimator = nullptr;
    /// Copy-vs-proxy policy for kAuto mappings.
    remote::AdvisorPolicy advisor;
    /// Parallel-stream options for staged copies.
    remote::FileCopier::Options copier;
    /// Hook that passes model time while a tailing reader polls a
    /// growing file (the workflow runner charges machine CPU here).
    std::function<void(Duration)> poll_wait;
    /// Poll period for tailing reads.
    Duration tail_poll_interval = std::chrono::milliseconds(200);
    /// Grid Buffer client tuning (window, flusher streams, deadlines).
    gridbuffer::GridBufferFileClient::Tuning buffer;
  };

  explicit FileMultiplexer(Options options);
  ~FileMultiplexer();

  FileMultiplexer(const FileMultiplexer&) = delete;
  FileMultiplexer& operator=(const FileMultiplexer&) = delete;

  /// Intercepted OPEN: resolves the mapping and builds the right client.
  /// Returns a descriptor (>= 3).
  Result<int> open(const std::string& path, vfs::OpenFlags flags);

  Result<std::size_t> read(int fd, MutableByteSpan out);
  Result<std::size_t> write(int fd, ByteSpan data);
  Result<std::uint64_t> seek(int fd, std::int64_t offset, vfs::Whence whence);
  Result<std::uint64_t> tell(int fd) const;
  Result<std::uint64_t> size(int fd);
  Status flush(int fd);
  Status close(int fd);

  /// Closes every open descriptor (end of the application).
  Status close_all();

  /// Diagnostic description of an open descriptor's routing.
  Result<std::string> describe(int fd) const;

  FmStats stats() const;
  const Options& options() const noexcept { return options_; }

  /// The canonical (GNS-key) form of an application path.
  std::string canonical_path(const std::string& path) const;

 private:
  /// A routed client plus the mode label its mapping resolved to
  /// ("local", "tail", "staged", "proxy", "replicated", "buffer").
  struct BuiltClient {
    std::unique_ptr<vfs::FileClient> client;
    const char* mode = "local";
  };
  /// An open descriptor: the client and its in-progress trace span.
  struct OpenFile {
    std::unique_ptr<vfs::FileClient> client;
    obs::IoSpan span;
  };
  /// This multiplexer's routing counters (atomic, lock-free); stats()
  /// snapshots them. The same increments also land in the process-wide
  /// registry so exporters see every FM instance aggregated.
  struct ModeCounters {
    obs::Counter local_opens;
    obs::Counter staged_opens;
    obs::Counter proxy_opens;
    obs::Counter replicated_opens;
    obs::Counter buffer_opens;
    obs::Counter bytes_read;
    obs::Counter bytes_written;
  };

  Result<BuiltClient> build_client(const std::string& canonical,
                                   const gns::FileMapping& mapping,
                                   vfs::OpenFlags flags);
  Result<BuiltClient> build_remote_auto(const std::string& canonical,
                                        const gns::FileMapping& mapping,
                                        vfs::OpenFlags flags);
  Result<BuiltClient> build_replicated(const std::string& canonical,
                                       const gns::FileMapping& mapping,
                                       vfs::OpenFlags flags);
  std::string staging_path_for(const std::string& canonical) const;
  Clock& clock() const;
  /// The estimator opens consult: primary chained with the static
  /// fallback when both are set, otherwise whichever one exists (null
  /// if neither).
  nws::LinkEstimator* link_estimator() const;
  /// Closes the client and emits its trace span (caller dropped it from
  /// files_ already).
  Status finish_file(OpenFile file);

  Options options_;
  std::unique_ptr<nws::FallbackLinkEstimator> estimator_chain_;
  mutable Mutex mu_;
  std::map<int, OpenFile> files_ GUARDED_BY(mu_);
  int next_fd_ GUARDED_BY(mu_) = 3;
  ModeCounters counters_;
  std::map<std::string, std::unique_ptr<replica::CatalogClient>> catalogs_
      GUARDED_BY(mu_);
};

}  // namespace griddles::core
