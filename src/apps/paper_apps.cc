#include "src/apps/paper_apps.h"

#include "src/common/strings.h"

namespace griddles::apps {

namespace {
constexpr std::uint64_t MB = 1000 * 1000;

std::uint64_t scaled(double bytes, double byte_scale) {
  const double value = bytes / byte_scale;
  return value < 1 ? 1 : static_cast<std::uint64_t>(value);
}
}  // namespace

std::vector<AppKernel> durability_pipeline(double s) {
  std::vector<AppKernel> pipeline;

  AppKernel chammy;
  chammy.name = "chammy";
  chammy.work_units = 70;
  chammy.timesteps = 20;
  chammy.outputs = {{"PROFILE_COORD.DAT", scaled(2.0 * MB, s)}};
  pipeline.push_back(chammy);

  AppKernel pafec;
  pafec.name = "pafec";
  pafec.work_units = 975;  // the finite-element stress solve dominates
  pafec.timesteps = 100;
  pafec.inputs = {{"PROFILE_COORD.DAT", scaled(2.0 * MB, s)}};
  pafec.outputs = {{"JOB.O02", scaled(40.0 * MB, s)},
                   {"JOB.O04", scaled(40.0 * MB, s)},
                   {"JOB.O07", scaled(20.0 * MB, s)},
                   {"JOB.SF", scaled(60.0 * MB, s)},
                   {"JOB.2DISP", scaled(30.0 * MB, s)},
                   {"JOB.TH", scaled(10.0 * MB, s)}};
  pipeline.push_back(pafec);

  AppKernel make_sf;
  make_sf.name = "make_sf_files";
  make_sf.work_units = 100;
  make_sf.timesteps = 50;
  make_sf.inputs = {{"JOB.O02", scaled(40.0 * MB, s)},
                    {"JOB.O04", scaled(40.0 * MB, s)},
                    {"JOB.O07", scaled(20.0 * MB, s)}};
  make_sf.outputs = {{"JOB.KL", scaled(30.0 * MB, s)},
                     {"JOB.DAT", scaled(10.0 * MB, s)}};
  pipeline.push_back(make_sf);

  AppKernel fast;
  fast.name = "fast";
  fast.work_units = 630;  // crack-propagation cycle counting
  fast.timesteps = 100;
  fast.inputs = {{"JOB.SF", scaled(60.0 * MB, s)},
                 {"JOB.2DISP", scaled(30.0 * MB, s)},
                 {"JOB.TH", scaled(10.0 * MB, s)},
                 {"JOB.KL", scaled(30.0 * MB, s)},
                 {"JOB.DAT", scaled(10.0 * MB, s)}};
  fast.outputs = {{"JOB.PROP", scaled(10.0 * MB, s)},
                  {"JOB.LIFE", scaled(10.0 * MB, s)},
                  {"JOB.GROWTH", scaled(20.0 * MB, s)}};
  pipeline.push_back(fast);

  AppKernel objective;
  objective.name = "objective";
  objective.work_units = 100;
  objective.timesteps = 20;
  objective.inputs = {{"JOB.PROP", scaled(10.0 * MB, s)},
                      {"JOB.LIFE", scaled(10.0 * MB, s)},
                      {"JOB.GROWTH", scaled(20.0 * MB, s)}};
  objective.outputs = {{"RESULT.DAT", scaled(0.1 * MB, s)}};
  pipeline.push_back(objective);

  return pipeline;
}

std::vector<AppKernel> climate_pipeline(double s) {
  std::vector<AppKernel> pipeline;

  AppKernel ccam;
  ccam.name = "ccam";
  ccam.work_units = 2800;  // the calibration anchor (Table 3)
  ccam.timesteps = 240;
  ccam.outputs = {{"CCAM_OUT.DAT", scaled(180.0 * MB, s)}};
  pipeline.push_back(ccam);

  AppKernel cc2lam;
  cc2lam.name = "cc2lam";
  cc2lam.work_units = 15;  // "simple data manipulation and filtering"
  cc2lam.timesteps = 240;
  cc2lam.inputs = {{"CCAM_OUT.DAT", scaled(180.0 * MB, s)}};
  cc2lam.outputs = {{"LAM_IN.DAT", scaled(180.0 * MB, s)}};
  pipeline.push_back(cc2lam);

  AppKernel darlam;
  darlam.name = "darlam";
  darlam.work_units = 1310;
  darlam.timesteps = 240;
  darlam.inputs = {{"LAM_IN.DAT", scaled(180.0 * MB, s)}};
  darlam.outputs = {{"DARLAM_OUT.DAT", scaled(60.0 * MB, s)}};
  darlam.reread_bytes = scaled(30.0 * MB, s);  // §5.3's cache-file re-read
  pipeline.push_back(darlam);

  return pipeline;
}

Result<AppKernel> kernel_named(const std::vector<AppKernel>& pipeline,
                               const std::string& name) {
  for (const AppKernel& kernel : pipeline) {
    if (kernel.name == name) return kernel;
  }
  return not_found(strings::cat("no kernel named '", name, "'"));
}

}  // namespace griddles::apps
