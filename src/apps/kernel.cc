#include "src/apps/kernel.h"

#include <algorithm>

#include "src/common/strings.h"

namespace griddles::apps {

namespace {
/// splitmix64: cheap, high-quality mixing for deterministic content.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}
}  // namespace

std::uint8_t stream_byte(const std::string& path, std::uint64_t index) {
  const std::uint64_t seed = fnv1a(as_bytes_view(path));
  // One mix per 8-byte lane keeps generation fast while staying
  // byte-addressable.
  const std::uint64_t lane = mix64(seed ^ (index / 8));
  return static_cast<std::uint8_t>(lane >> ((index % 8) * 8));
}

void fill_stream(const std::string& path, std::uint64_t offset,
                 MutableByteSpan out) {
  const std::uint64_t seed = fnv1a(as_bytes_view(path));
  for (std::size_t i = 0; i < out.size(); ++i) {
    const std::uint64_t index = offset + i;
    const std::uint64_t lane = mix64(seed ^ (index / 8));
    out[i] = static_cast<std::byte>(
        static_cast<std::uint8_t>(lane >> ((index % 8) * 8)));
  }
}

namespace {

struct OpenStream {
  int fd = -1;
  const StreamSpec* spec = nullptr;
  std::uint64_t position = 0;   // bytes moved so far
  bool via_disk = false;        // routed to local/staged storage
  bool via_buffer = false;      // routed to a grid buffer channel
};

/// Classifies an FM route for cost charging.
void classify(core::FileMultiplexer& fm, OpenStream& stream) {
  auto description = fm.describe(stream.fd);
  if (!description.is_ok()) return;
  stream.via_disk = strings::starts_with(*description, "local:") ||
                    strings::starts_with(*description, "staged:") ||
                    strings::starts_with(*description, "tail:");
  stream.via_buffer =
      description->find("gridbuffer:") != std::string::npos;
}

/// Charges the machine for one IO operation according to its route.
void charge_io(testbed::MachineRuntime& machine, const OpenStream& stream,
               std::size_t bytes) {
  if (bytes == 0) return;
  if (stream.via_disk) {
    machine.disk_transfer(bytes);
  } else if (stream.via_buffer) {
    const double blocks = static_cast<double>(bytes) / 4096.0;
    machine.compute(blocks * machine.spec().ipc_units_per_block);
  }
}

}  // namespace

Result<AppReport> run_app(const AppKernel& kernel, core::FileMultiplexer& fm,
                          testbed::MachineRuntime& machine, Clock& clock) {
  AppReport report;
  report.name = kernel.name;
  report.started = clock.now();

  std::vector<OpenStream> inputs(kernel.inputs.size());
  std::vector<OpenStream> outputs(kernel.outputs.size());
  for (std::size_t i = 0; i < kernel.inputs.size(); ++i) {
    GL_ASSIGN_OR_RETURN(inputs[i].fd, fm.open(kernel.inputs[i].path,
                                              vfs::OpenFlags::input()));
    inputs[i].spec = &kernel.inputs[i];
    classify(fm, inputs[i]);
  }
  for (std::size_t i = 0; i < kernel.outputs.size(); ++i) {
    GL_ASSIGN_OR_RETURN(outputs[i].fd, fm.open(kernel.outputs[i].path,
                                               vfs::OpenFlags::output()));
    outputs[i].spec = &kernel.outputs[i];
    classify(fm, outputs[i]);
  }

  const int steps = std::max(1, kernel.timesteps);
  Bytes io_buffer(kAppIoChunk);
  for (int step = 0; step < steps; ++step) {
    // Read this step's slice of every input.
    for (OpenStream& input : inputs) {
      const std::uint64_t target =
          input.spec->bytes * static_cast<std::uint64_t>(step + 1) /
          static_cast<std::uint64_t>(steps);
      while (input.position < target) {
        const std::size_t want = static_cast<std::size_t>(
            std::min<std::uint64_t>(io_buffer.size(),
                                    target - input.position));
        GL_ASSIGN_OR_RETURN(const std::size_t got,
                            fm.read(input.fd, {io_buffer.data(), want}));
        if (got == 0) {
          return io_error(strings::cat(
              kernel.name, ": premature EOF on ", input.spec->path, " at ",
              input.position, " of ", input.spec->bytes));
        }
        if (kernel.verify_inputs) {
          Bytes expected(got);
          fill_stream(input.spec->path, input.position,
                      {expected.data(), got});
          if (!std::equal(expected.begin(), expected.end(),
                          io_buffer.begin())) {
            return io_error(strings::cat(kernel.name,
                                         ": corrupt data in ",
                                         input.spec->path, " near offset ",
                                         input.position));
          }
        }
        charge_io(machine, input, got);
        input.position += got;
        report.bytes_read += got;
      }
    }

    // Compute this step's share.
    machine.compute(kernel.work_units / steps);

    // Write this step's slice of every output.
    for (OpenStream& output : outputs) {
      const std::uint64_t target =
          output.spec->bytes * static_cast<std::uint64_t>(step + 1) /
          static_cast<std::uint64_t>(steps);
      while (output.position < target) {
        const std::size_t want = static_cast<std::size_t>(
            std::min<std::uint64_t>(io_buffer.size(),
                                    target - output.position));
        fill_stream(output.spec->path, output.position,
                    {io_buffer.data(), want});
        GL_ASSIGN_OR_RETURN(const std::size_t put,
                            fm.write(output.fd, {io_buffer.data(), want}));
        if (put != want) {
          return io_error(strings::cat(kernel.name, ": short write on ",
                                       output.spec->path));
        }
        charge_io(machine, output, put);
        output.position += put;
        report.bytes_written += put;
      }
    }
  }

  // Optional re-read of the first input (DARLAM's §5.3 behaviour): seek
  // back to the start and consume `reread_bytes` again, which a Grid
  // Buffer serves from its cache file.
  if (kernel.reread_bytes > 0 && !inputs.empty()) {
    OpenStream& input = inputs.front();
    GL_ASSIGN_OR_RETURN(const std::uint64_t pos,
                        fm.seek(input.fd, 0, vfs::Whence::kSet));
    (void)pos;
    std::uint64_t remaining =
        std::min<std::uint64_t>(kernel.reread_bytes, input.spec->bytes);
    std::uint64_t offset = 0;
    while (remaining > 0) {
      const std::size_t want = static_cast<std::size_t>(
          std::min<std::uint64_t>(io_buffer.size(), remaining));
      GL_ASSIGN_OR_RETURN(const std::size_t got,
                          fm.read(input.fd, {io_buffer.data(), want}));
      if (got == 0) break;
      if (kernel.verify_inputs) {
        Bytes expected(got);
        fill_stream(input.spec->path, offset, {expected.data(), got});
        if (!std::equal(expected.begin(), expected.end(),
                        io_buffer.begin())) {
          return io_error(strings::cat(kernel.name,
                                       ": corrupt re-read data in ",
                                       input.spec->path));
        }
      }
      charge_io(machine, input, got);
      remaining -= got;
      offset += got;
      report.bytes_read += got;
    }
  }

  for (OpenStream& input : inputs) GL_RETURN_IF_ERROR(fm.close(input.fd));
  for (OpenStream& output : outputs) {
    GL_RETURN_IF_ERROR(fm.close(output.fd));
  }

  report.finished = clock.now();
  return report;
}

}  // namespace griddles::apps
