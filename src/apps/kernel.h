// Synthetic legacy applications ("app kernels").
//
// The paper's case-study codes (CHAMMY/PAFEC/FAST/... and
// C-CAM/cc2lam/DARLAM) are proprietary Fortran programs; what the
// experiments depend on is only their IO pattern and compute cost. An
// AppKernel captures exactly that: a timestep loop that reads a slice of
// each input, computes, and writes a slice of each output — through the
// File Multiplexer, with fopen-style calls, like the legacy codes do.
// Writers produce deterministic content so tests can verify that every
// IO mode delivers byte-identical data.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/clock.h"
#include "src/core/multiplexer.h"
#include "src/testbed/testbed.h"

namespace griddles::apps {

/// One file the kernel touches, with its total volume.
struct StreamSpec {
  std::string path;           // name as the legacy program opens it
  std::uint64_t bytes = 0;    // total volume over the whole run
};

struct AppKernel {
  std::string name;
  double work_units = 0;      // total compute (testbed speed units)
  int timesteps = 1;          // read/compute/write loop granularity
  std::vector<StreamSpec> inputs;
  std::vector<StreamSpec> outputs;
  /// Bytes of the first input re-read (seek to 0) after the main loop —
  /// DARLAM's behaviour in §5.3, exercising the Grid Buffer cache.
  std::uint64_t reread_bytes = 0;
  /// Verify that input bytes match the deterministic generator output
  /// (set in tests; costs a pass over the data).
  bool verify_inputs = false;
};

/// Execution record for one kernel run.
struct AppReport {
  std::string name;
  Duration started{0};
  Duration finished{0};
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;

  double elapsed_seconds() const { return to_seconds_d(finished - started); }
};

/// Deterministic content generator: byte `i` of the stream named `path`.
/// Writers emit this sequence; verifying readers recompute it.
std::uint8_t stream_byte(const std::string& path, std::uint64_t index);

/// Fills `out` with stream content starting at `offset`.
void fill_stream(const std::string& path, std::uint64_t offset,
                 MutableByteSpan out);

/// Runs a kernel to completion on a machine, with all file IO through
/// the File Multiplexer. IO routed to local files (or staged copies)
/// charges the machine's modelled disk; IO routed to Grid Buffers
/// charges the per-block IPC cost (the SOAP/service overhead of §4).
Result<AppReport> run_app(const AppKernel& kernel,
                          core::FileMultiplexer& fm,
                          testbed::MachineRuntime& machine, Clock& clock);

/// IO chunk the kernel hands to the FM per call (a legacy WRITE).
inline constexpr std::size_t kAppIoChunk = 64 * 1024;

}  // namespace griddles::apps
