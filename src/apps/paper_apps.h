// The paper's two case-study pipelines as app kernels.
//
// Mechanical engineering durability pipeline (Figure 5):
//   CHAMMY -> PAFEC -> MAKE_SF_FILES -> FAST -> OBJECTIVE
// with the JOB.* intermediate files of the figure. Work-unit splits are
// fitted so experiment 1 of Table 2 lands near 99 minutes on jagan and
// PAFEC dominates (it is the finite-element solver).
//
// Atmospheric sciences pipeline (§5.3):
//   C-CAM -> cc2lam -> DARLAM
// with C-CAM calibrated to 2800 work units (the testbed speed anchor),
// DARLAM to 1310 and cc2lam to 15, all from Table 3. DARLAM re-reads
// part of its input after the main loop, exercising the Grid Buffer
// cache exactly as §5.3 describes.
#pragma once

#include <vector>

#include "src/apps/kernel.h"

namespace griddles::apps {

/// `byte_scale` divides every file size (model times are preserved when
/// the TestbedRuntime is built with the same scale).
std::vector<AppKernel> durability_pipeline(double byte_scale = 1.0);

std::vector<AppKernel> climate_pipeline(double byte_scale = 1.0);

/// Look a kernel up by name in a pipeline definition.
Result<AppKernel> kernel_named(const std::vector<AppKernel>& pipeline,
                               const std::string& name);

}  // namespace griddles::apps
