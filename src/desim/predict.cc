#include "src/desim/predict.h"

#include <algorithm>
#include <cmath>

#include "src/common/strings.h"
#include "src/obs/metrics.h"

namespace griddles::desim {

namespace {
using workflow::CouplingMode;
using workflow::Edge;
using workflow::WorkflowSpec;

constexpr double kDt = 0.25;  // integration step, model seconds
constexpr double kMaxSimSeconds = 48 * 3600;
constexpr double kEps = 1e-9;
}  // namespace

double buffer_stream_bps(const testbed::LinkSpec& link,
                         std::uint32_t block_size, int flusher_threads) {
  if (link.mb_per_s <= 0 && link.latency_s <= 0) return 1e18;  // loopback
  const double bw = link.mb_per_s > 0 ? link.mb_per_s * 1e6 : 1e18;
  // Each flusher is a synchronous request/response loop: one block per
  // (round trip + serialization), `flusher_threads` of them in parallel,
  // never exceeding the link bandwidth.
  const double per_block =
      link.latency_s * 2 + static_cast<double>(block_size) / bw;
  const double pipelined =
      flusher_threads * static_cast<double>(block_size) / per_block;
  return std::min(bw, pipelined);
}

double staged_copy_seconds(const testbed::LinkSpec& link,
                           std::uint64_t bytes) {
  if (link.mb_per_s <= 0 && link.latency_s <= 0) return 0;
  const double bw = link.mb_per_s > 0 ? link.mb_per_s * 1e6 : 1e18;
  // Parallel chunk streams hide per-chunk round trips; a few handshakes
  // remain up front.
  return 4 * link.latency_s + static_cast<double>(bytes) / bw;
}

namespace {

struct TaskState {
  double cpu_total = 0;
  double cpu_done = 0;
  double disk_total = 0;  // bytes through the modelled disk
  double disk_done = 0;
  bool finished = false;
  double finish_time = 0;

  double fraction() const {
    const double total = cpu_total + disk_total * 1e-12;
    if (total <= 0) return finished ? 1.0 : 0.0;
    return (cpu_done + disk_done * 1e-12) / total;
  }
};

/// Weighted water-filling: divides `capacity` among demands in
/// proportion to weights; a demand smaller than its weighted share is
/// fully satisfied and its surplus is redistributed (generalized
/// processor-sharing semantics per dt). A poll-burning reader gets
/// weight = poll duty, a working process weight 1.
std::vector<double> water_fill(const std::vector<double>& demands,
                               const std::vector<double>& weights,
                               double capacity) {
  std::vector<double> alloc(demands.size(), 0.0);
  std::vector<std::size_t> open;
  for (std::size_t i = 0; i < demands.size(); ++i) {
    if (demands[i] > kEps && weights[i] > kEps) open.push_back(i);
  }
  while (!open.empty() && capacity > kEps) {
    double weight_sum = 0;
    for (const std::size_t i : open) weight_sum += weights[i];
    std::vector<std::size_t> still_open;
    double used = 0;
    for (const std::size_t i : open) {
      const double share = capacity * weights[i] / weight_sum;
      const double want = demands[i] - alloc[i];
      const double give = std::min(want, share);
      alloc[i] += give;
      used += give;
      if (alloc[i] + kEps < demands[i]) still_open.push_back(i);
    }
    capacity -= used;
    if (used <= kEps) break;
    open = std::move(still_open);
  }
  return alloc;
}

}  // namespace

void record_accuracy(double predicted_s, double actual_s) {
  auto& registry = obs::MetricsRegistry::global();
  static obs::Counter& checked = registry.counter("desim.predictions.checked");
  // Ratio buckets centered on 1.0: 2^-4 .. 2^5 covers 16x-off both ways.
  static obs::Histogram& ratio = registry.histogram(
      "desim.accuracy.ratio", obs::exponential_bounds(0.0625, 2.0, 10));
  checked.add();
  if (predicted_s > 0) ratio.observe(actual_s / predicted_s);
}

Result<Prediction> predict(
    const WorkflowSpec& spec,
    const workflow::WorkflowRunner::Options& options) {
  static obs::Counter& predictions =
      obs::MetricsRegistry::global().counter("desim.predictions");
  predictions.add();
  GL_ASSIGN_OR_RETURN(const std::vector<Edge> edges,
                      workflow::infer_edges(spec));
  GL_ASSIGN_OR_RETURN(const std::vector<std::size_t> order,
                      workflow::topological_order(spec, edges));

  std::vector<testbed::MachineSpec> machines(spec.tasks.size());
  for (std::size_t t = 0; t < spec.tasks.size(); ++t) {
    GL_ASSIGN_OR_RETURN(machines[t],
                        testbed::find_machine(spec.tasks[t].machine));
  }

  Prediction prediction;

  if (options.mode == CouplingMode::kSequentialFiles) {
    double now = 0;
    for (const std::size_t index : order) {
      const apps::AppKernel& kernel = spec.tasks[index].kernel;
      const testbed::MachineSpec& machine = machines[index];
      double bytes = 0;
      for (const auto& in : kernel.inputs) bytes += in.bytes;
      bytes += kernel.reread_bytes;
      for (const auto& out : kernel.outputs) bytes += out.bytes;
      now += kernel.work_units / machine.speed +
             bytes / (machine.disk_mb_per_s * 1e6);
      prediction.task_finish_s[kernel.name] = now;

      for (const Edge& edge : edges) {
        if (edge.producer != index) continue;
        std::vector<std::string> copied_to;
        for (const std::size_t consumer : edge.consumers) {
          const std::string& dst = spec.tasks[consumer].machine;
          if (dst == spec.tasks[index].machine) continue;
          if (std::find(copied_to.begin(), copied_to.end(), dst) !=
              copied_to.end()) {
            continue;
          }
          copied_to.push_back(dst);
          GL_ASSIGN_OR_RETURN(const testbed::MachineSpec dst_spec,
                              testbed::find_machine(dst));
          const double copy = staged_copy_seconds(
              testbed::link_between(machines[index], dst_spec), edge.bytes);
          now += copy;
          prediction.copy_seconds += copy;
        }
      }
    }
    prediction.total_seconds = now;
    return prediction;
  }

  // ---- Concurrent modes: demand-limited fluid integration. ------------
  const bool buffers = options.mode == CouplingMode::kGridBuffers;
  const std::size_t n = spec.tasks.size();

  std::vector<TaskState> tasks(n);
  for (std::size_t t = 0; t < n; ++t) {
    const apps::AppKernel& kernel = spec.tasks[t].kernel;
    tasks[t].cpu_total = kernel.work_units;
    auto is_edge = [&](const std::string& path) {
      return std::any_of(edges.begin(), edges.end(),
                         [&](const Edge& e) { return e.path == path; });
    };
    double edge_bytes = 0;
    double file_bytes = 0;
    for (const auto& in : kernel.inputs) {
      (is_edge(in.path) ? edge_bytes : file_bytes) += in.bytes;
    }
    edge_bytes += kernel.reread_bytes;
    for (const auto& out : kernel.outputs) {
      (is_edge(out.path) ? edge_bytes : file_bytes) += out.bytes;
    }
    if (buffers) {
      // Streamed bytes pay the per-block service tax in CPU.
      tasks[t].cpu_total +=
          edge_bytes / 4096.0 * machines[t].ipc_units_per_block;
      tasks[t].disk_total = file_bytes;
    } else {
      tasks[t].disk_total = edge_bytes + file_bytes;
    }
  }

  // Edge delivery caps (bytes/second from producer to consumers).
  std::vector<double> delivered(edges.size(), 0.0);
  std::vector<double> stream_bps(edges.size(), 1e18);
  if (buffers) {
    for (std::size_t e = 0; e < edges.size(); ++e) {
      const testbed::MachineSpec& producer = machines[edges[e].producer];
      const testbed::MachineSpec& buffer_host =
          machines[edges[e].consumers.front()];
      stream_bps[e] = buffer_stream_bps(
          testbed::link_between(producer, buffer_host),
          options.buffer_block, options.flusher_threads);
    }
  }

  // Per-machine resource capacities.
  std::map<std::string, double> cpu_rate;   // work units / second
  std::map<std::string, double> disk_rate;  // bytes / second
  for (std::size_t t = 0; t < n; ++t) {
    cpu_rate[spec.tasks[t].machine] = machines[t].speed;
    disk_rate[spec.tasks[t].machine] = machines[t].disk_mb_per_s * 1e6;
  }

  double now = 0;
  std::size_t remaining = n;
  while (remaining > 0 && now < kMaxSimSeconds) {
    // Input-availability cap per task.
    std::vector<double> cap(n, 1.0);
    for (std::size_t e = 0; e < edges.size(); ++e) {
      const double avail =
          edges[e].bytes > 0
              ? delivered[e] / static_cast<double>(edges[e].bytes)
              : 1.0;
      for (const std::size_t consumer : edges[e].consumers) {
        cap[consumer] = std::min(cap[consumer], avail);
      }
    }

    // Build per-machine demand lists.
    struct Demand {
      std::size_t task;
      bool is_poller;
    };
    std::map<std::string, std::vector<Demand>> cpu_demanders;
    std::map<std::string, std::vector<double>> cpu_demands;
    std::map<std::string, std::vector<double>> cpu_weights;
    std::map<std::string, std::vector<std::size_t>> disk_demanders;
    std::map<std::string, std::vector<double>> disk_demands;
    std::map<std::string, std::vector<double>> disk_weights;

    for (std::size_t t = 0; t < n; ++t) {
      if (tasks[t].finished) continue;
      const std::string& machine = spec.tasks[t].machine;
      const double speed = machines[t].speed;
      const double cpu_room =
          std::max(0.0, cap[t] * tasks[t].cpu_total - tasks[t].cpu_done);
      const double disk_room =
          std::max(0.0, cap[t] * tasks[t].disk_total - tasks[t].disk_done);
      const double cpu_demand = std::min(cpu_room, speed * kDt);
      const double disk_demand =
          std::min(disk_room, disk_rate[machine] * kDt);
      if (cpu_demand > kEps) {
        cpu_demanders[machine].push_back({t, false});
        cpu_demands[machine].push_back(cpu_demand);
        cpu_weights[machine].push_back(1.0);
      }
      // An input-rate-limited tailing reader polls between trickles,
      // burning a duty-weighted CPU share on top of its real work.
      if (!buffers && cap[t] < 1.0 - kEps &&
          cpu_room < speed * kDt - kEps && !spec.tasks[t].kernel.inputs
                                                .empty()) {
        cpu_demanders[machine].push_back({t, true});
        cpu_demands[machine].push_back(options.poll_duty * speed * kDt);
        cpu_weights[machine].push_back(options.poll_duty);
      }
      if (disk_demand > kEps) {
        disk_demanders[machine].push_back(t);
        disk_demands[machine].push_back(disk_demand);
        disk_weights[machine].push_back(1.0);
      }
    }

    // Allocate and apply.
    for (auto& [machine, demands] : cpu_demands) {
      const auto alloc = water_fill(demands, cpu_weights[machine],
                                    cpu_rate[machine] * kDt);
      for (std::size_t i = 0; i < alloc.size(); ++i) {
        const Demand& demand = cpu_demanders[machine][i];
        if (!demand.is_poller) tasks[demand.task].cpu_done += alloc[i];
      }
    }
    for (auto& [machine, demands] : disk_demands) {
      const auto alloc = water_fill(demands, disk_weights[machine],
                                    disk_rate[machine] * kDt);
      for (std::size_t i = 0; i < alloc.size(); ++i) {
        tasks[disk_demanders[machine][i]].disk_done += alloc[i];
      }
    }

    // Deliver edge bytes: bounded by producer progress and stream rate.
    for (std::size_t e = 0; e < edges.size(); ++e) {
      const double produced =
          tasks[edges[e].producer].fraction() *
          static_cast<double>(edges[e].bytes);
      delivered[e] =
          std::min(produced, delivered[e] + stream_bps[e] * kDt);
    }

    now += kDt;

    // Completion: all fluids done and all inputs fully delivered.
    for (std::size_t t = 0; t < n; ++t) {
      if (tasks[t].finished) continue;
      if (tasks[t].cpu_done + 1e-6 < tasks[t].cpu_total) continue;
      if (tasks[t].disk_done + 1e-3 < tasks[t].disk_total) continue;
      bool inputs_complete = true;
      for (std::size_t e = 0; e < edges.size(); ++e) {
        const auto& consumers = edges[e].consumers;
        if (std::find(consumers.begin(), consumers.end(), t) ==
            consumers.end()) {
          continue;
        }
        if (delivered[e] + 1e-3 < static_cast<double>(edges[e].bytes)) {
          inputs_complete = false;
          break;
        }
      }
      if (!inputs_complete) continue;
      tasks[t].finished = true;
      tasks[t].finish_time = now;
      --remaining;
    }
  }

  if (remaining > 0) {
    return internal_error(
        strings::cat("prediction did not converge for '", spec.name, "'"));
  }
  for (std::size_t t = 0; t < n; ++t) {
    prediction.task_finish_s[spec.tasks[t].kernel.name] =
        tasks[t].finish_time;
    prediction.total_seconds =
        std::max(prediction.total_seconds, tasks[t].finish_time);
  }
  return prediction;
}

}  // namespace griddles::desim
