// Analytic workflow-time predictor (fluid-flow simulation).
//
// A deterministic, instantaneous cross-check for the real scaled-clock
// runs: tasks are fluids that advance under processor sharing; edges cap
// a consumer's progress by what its producer has delivered (through the
// modelled disk, link, or Grid Buffer stream). Integration is discrete
// (dt = 0.25 model seconds), which is plenty for experiments measured in
// minutes. The tests assert that real runs and predictions agree within
// tolerance; the table benches print both columns.
#pragma once

#include <map>
#include <string>

#include "src/workflow/runner.h"

namespace griddles::desim {

struct Prediction {
  std::map<std::string, double> task_finish_s;  // cumulative, per task
  double copy_seconds = 0;   // staging copies (sequential mode)
  double total_seconds = 0;
};

/// Predicts the outcome of WorkflowRunner::run for the same spec/options
/// on the paper testbed (byte_scale-independent: uses paper byte counts).
Result<Prediction> predict(const workflow::WorkflowSpec& spec,
                           const workflow::WorkflowRunner::Options& options);

/// Records one predicted-vs-actual comparison into the metrics registry:
/// bumps `desim.predictions.checked` and observes actual/predicted in the
/// `desim.accuracy.ratio` histogram (1.0 = perfect). Call it after a real
/// run whose spec/options were previously fed to predict().
void record_accuracy(double predicted_s, double actual_s);

/// Closed-form throughput of a Grid Buffer stream over a link
/// (flusher-bounded request/response pipelining): bytes per second.
double buffer_stream_bps(const testbed::LinkSpec& link,
                         std::uint32_t block_size, int flusher_threads);

/// Closed-form duration of a parallel-stream staged copy.
double staged_copy_seconds(const testbed::LinkSpec& link,
                           std::uint64_t bytes);

}  // namespace griddles::desim
