// The GNS mapping database: an ordered rule list with glob matching and a
// version counter for dynamic reconfiguration.
//
// The File Multiplexer treats the GNS as read-only; workflow tooling
// writes rules. Every mutation bumps the version, which clients poll to
// discover remappings of read-only files mid-run (paper §3.1).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/gns/mapping.h"
#include "src/common/thread_annotations.h"

namespace griddles::gns {

class Database {
 public:
  Database() = default;

  /// Appends a rule (later rules are consulted first, so more-specific
  /// overrides can be layered on top of defaults).
  void add_rule(MappingRule rule);

  /// Replaces the whole rule set.
  void set_rules(std::vector<MappingRule> rules);

  /// Removes every rule with exactly these patterns; returns count.
  std::size_t remove_rules(const std::string& host_pattern,
                           const std::string& path_pattern);

  /// Most-recently-added matching rule's mapping. A miss means the FM
  /// should treat the file as plain local IO.
  std::optional<FileMapping> lookup(std::string_view host,
                                    std::string_view path) const;

  std::vector<MappingRule> rules() const;

  /// Monotonic; bumped by every mutation.
  std::uint64_t version() const;

  /// Loads (appends) all "mapping:*" sections of a config.
  Status load_config(const Config& config);

 private:
  mutable Mutex mu_;
  std::vector<MappingRule> rules_ GUARDED_BY(mu_);
  std::uint64_t version_ GUARDED_BY(mu_) = 0;
};

}  // namespace griddles::gns
