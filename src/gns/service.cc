#include "src/gns/service.h"

#include "src/common/strings.h"

namespace griddles::gns {

namespace {
constexpr std::uint16_t method_id(Method m) {
  return static_cast<std::uint16_t>(m);
}
}  // namespace

GnsServer::GnsServer(Database& db, net::Transport& transport,
                     net::Endpoint bind, net::WireFormat format)
    : db_(db), rpc_(transport, std::move(bind), format) {
  rpc_.register_method(
      method_id(Method::kLookup),
      [this](ByteSpan request, const net::RpcContext&) -> Result<Bytes> {
        xdr::Decoder dec(request);
        GL_ASSIGN_OR_RETURN(const std::string host, dec.string());
        GL_ASSIGN_OR_RETURN(const std::string path, dec.string());
        const std::optional<FileMapping> mapping = db_.lookup(host, path);
        xdr::Encoder enc;
        enc.put_u64(db_.version());
        enc.put_bool(mapping.has_value());
        if (mapping) encode_mapping(enc, *mapping);
        return std::move(enc).take();
      });
  rpc_.register_method(
      method_id(Method::kAddRule),
      [this](ByteSpan request, const net::RpcContext&) -> Result<Bytes> {
        xdr::Decoder dec(request);
        GL_ASSIGN_OR_RETURN(MappingRule rule, decode_rule(dec));
        db_.add_rule(std::move(rule));
        return Bytes{};
      });
  rpc_.register_method(
      method_id(Method::kRemoveRules),
      [this](ByteSpan request, const net::RpcContext&) -> Result<Bytes> {
        xdr::Decoder dec(request);
        GL_ASSIGN_OR_RETURN(const std::string host_pattern, dec.string());
        GL_ASSIGN_OR_RETURN(const std::string path_pattern, dec.string());
        const std::size_t removed =
            db_.remove_rules(host_pattern, path_pattern);
        xdr::Encoder enc;
        enc.put_u64(removed);
        return std::move(enc).take();
      });
  rpc_.register_method(
      method_id(Method::kListRules),
      [this](ByteSpan, const net::RpcContext&) -> Result<Bytes> {
        xdr::Encoder enc;
        enc.put_vector(db_.rules(),
                       [](xdr::Encoder& e, const MappingRule& rule) {
                         encode_rule(e, rule);
                       });
        return std::move(enc).take();
      });
  rpc_.register_method(
      method_id(Method::kVersion),
      [this](ByteSpan, const net::RpcContext&) -> Result<Bytes> {
        xdr::Encoder enc;
        enc.put_u64(db_.version());
        return std::move(enc).take();
      });
}

GnsClient::GnsClient(net::Transport& transport, net::Endpoint server,
                     net::WireFormat format,
                     std::chrono::milliseconds cache_ttl)
    : rpc_(transport, std::move(server), format), cache_ttl_(cache_ttl) {}

Result<std::optional<FileMapping>> GnsClient::lookup(const std::string& host,
                                                     const std::string& path) {
  const auto key = std::make_pair(host, path);
  {
    MutexLock lock(mu_);
    if (cache_ttl_.count() > 0 && have_version_ &&
        WallClock::now() - validated_at_ < cache_ttl_) {
      const auto it = cache_.find(key);
      if (it != cache_.end()) {
        ++cache_hits_;
        return it->second;
      }
    }
  }

  xdr::Encoder enc;
  enc.put_string(host);
  enc.put_string(path);
  GL_ASSIGN_OR_RETURN(const Bytes reply,
                      rpc_.call(method_id(Method::kLookup), enc.buffer()));
  xdr::Decoder dec(reply);
  GL_ASSIGN_OR_RETURN(const std::uint64_t version, dec.u64());
  GL_ASSIGN_OR_RETURN(const bool present, dec.boolean());
  std::optional<FileMapping> mapping;
  if (present) {
    GL_ASSIGN_OR_RETURN(mapping, decode_mapping(dec));
  }

  MutexLock lock(mu_);
  if (!have_version_ || version != cached_version_) {
    cache_.clear();
    cached_version_ = version;
    have_version_ = true;
  }
  validated_at_ = WallClock::now();
  cache_[key] = mapping;
  return mapping;
}

Status GnsClient::add_rule(const MappingRule& rule) {
  xdr::Encoder enc;
  encode_rule(enc, rule);
  GL_ASSIGN_OR_RETURN(const Bytes reply,
                      rpc_.call(method_id(Method::kAddRule), enc.buffer()));
  (void)reply;
  invalidate_cache();
  return Status::ok();
}

Result<std::size_t> GnsClient::remove_rules(const std::string& host_pattern,
                                            const std::string& path_pattern) {
  xdr::Encoder enc;
  enc.put_string(host_pattern);
  enc.put_string(path_pattern);
  GL_ASSIGN_OR_RETURN(
      const Bytes reply,
      rpc_.call(method_id(Method::kRemoveRules), enc.buffer()));
  xdr::Decoder dec(reply);
  GL_ASSIGN_OR_RETURN(const std::uint64_t removed, dec.u64());
  invalidate_cache();
  return static_cast<std::size_t>(removed);
}

Result<std::vector<MappingRule>> GnsClient::list_rules() {
  GL_ASSIGN_OR_RETURN(const Bytes reply,
                      rpc_.call(method_id(Method::kListRules), {}));
  xdr::Decoder dec(reply);
  return dec.vector<MappingRule>(
      [](xdr::Decoder& d) { return decode_rule(d); });
}

Result<std::uint64_t> GnsClient::version() {
  GL_ASSIGN_OR_RETURN(const Bytes reply,
                      rpc_.call(method_id(Method::kVersion), {}));
  xdr::Decoder dec(reply);
  return dec.u64();
}

void GnsClient::invalidate_cache() {
  MutexLock lock(mu_);
  cache_.clear();
  have_version_ = false;
}

std::uint64_t GnsClient::cache_hits() const {
  MutexLock lock(mu_);
  return cache_hits_;
}

}  // namespace griddles::gns
