// GNS server and client: the RPC face of the mapping database.
//
// One GNS may serve a single workflow or many (paper §3.2); it is just a
// database behind an endpoint. The client caches lookups against the
// database version so steady-state opens cost no round trip, while a
// version bump (dynamic remapping) invalidates the cache.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>

#include "src/gns/database.h"
#include "src/common/thread_annotations.h"
#include "src/net/rpc.h"

namespace griddles::gns {

/// RPC method ids.
enum class Method : std::uint16_t {
  kLookup = 1,
  kAddRule = 2,
  kRemoveRules = 3,
  kListRules = 4,
  kVersion = 5,
};

/// Serves a Database over RPC.
class GnsServer {
 public:
  /// The database must outlive the server.
  GnsServer(Database& db, net::Transport& transport, net::Endpoint bind,
            net::WireFormat format = net::WireFormat::kBinary);

  Status start() { return rpc_.start(); }
  void stop() { rpc_.stop(); }
  net::Endpoint endpoint() const { return rpc_.endpoint(); }

 private:
  Database& db_;
  net::RpcServer rpc_;
};

/// Anything that can resolve (host, path) to a mapping for the File
/// Multiplexer: a single GnsClient, or a ReplicatedNameService fronting
/// several replicas (src/gns/replicated.h). Implementations must be
/// callable from multiple FM threads.
class NameService {
 public:
  virtual ~NameService() = default;

  /// Resolves (host, path). nullopt = no mapping: use plain local IO.
  virtual Result<std::optional<FileMapping>> lookup(
      const std::string& host, const std::string& path) = 0;
};

/// Client used by the File Multiplexer (lookups, cached) and by workflow
/// tooling (rule edits).
class GnsClient final : public NameService {
 public:
  /// `cache_ttl`: wall-clock window during which cached lookups may be
  /// served without revalidation. Zero disables caching entirely.
  GnsClient(net::Transport& transport, net::Endpoint server,
            net::WireFormat format = net::WireFormat::kBinary,
            std::chrono::milliseconds cache_ttl =
                std::chrono::milliseconds(200));

  /// Resolves (host, path). nullopt = no mapping: use plain local IO.
  /// Cached entries are served within the TTL; any observed version bump
  /// flushes the cache (dynamic remapping, paper §3.1).
  Result<std::optional<FileMapping>> lookup(
      const std::string& host, const std::string& path) override;

  Status add_rule(const MappingRule& rule);
  Result<std::size_t> remove_rules(const std::string& host_pattern,
                                   const std::string& path_pattern);
  Result<std::vector<MappingRule>> list_rules();
  Result<std::uint64_t> version();

  /// Forgets all cached lookups.
  void invalidate_cache();

  /// Lookups performed without a server round trip (for tests).
  std::uint64_t cache_hits() const;

 private:
  net::RpcClient rpc_;
  const std::chrono::milliseconds cache_ttl_;
  mutable Mutex mu_;
  std::uint64_t cached_version_ GUARDED_BY(mu_) = 0;
  bool have_version_ GUARDED_BY(mu_) = false;
  WallClock::time_point validated_at_ GUARDED_BY(mu_){};
  std::map<std::pair<std::string, std::string>, std::optional<FileMapping>>
      cache_ GUARDED_BY(mu_);
  std::uint64_t cache_hits_ GUARDED_BY(mu_) = 0;
};

}  // namespace griddles::gns
