// The GNS shard map: how the (host, path) namespace is carved across a
// replica set, and which replicas own each shard.
//
// Lookup keys hash to one of `num_shards` shards; each shard is owned by
// a preference list of `replication` replicas chosen by rendezvous
// (highest-random-weight) hashing, so adding or removing one replica
// reassigns only the shards that replica wins or loses — the consistent-
// hash property the anti-entropy and reconfiguration machinery relies
// on. Rules whose patterns contain globs cannot be hashed to a single
// shard; they live in the distinguished broadcast shard (kGlobalShard),
// owned by every replica, and every lookup consults it alongside the
// key's hashed shard.
//
// A ShardMap is a value: replicas install new epochs wholesale during
// runtime reconfiguration, and clients cache the epoch they last saw.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"
#include "src/xdr/codec.h"

namespace griddles::gns {

/// The broadcast shard holding glob rules; owned by every replica.
inline constexpr std::uint32_t kGlobalShard = 0xffffffffu;

struct ShardMap {
  std::uint64_t epoch = 0;
  std::uint32_t num_shards = 8;
  /// Owners per shard; 0 (or >= replica count) means every replica.
  std::uint32_t replication = 0;
  std::vector<std::string> replicas;  // member ids, sorted unique

  /// The shard a concrete lookup key hashes to.
  std::uint32_t shard_of(std::string_view host,
                         std::string_view path) const;

  /// The shard a rule's key belongs to: kGlobalShard when either
  /// pattern globs, else shard_of(host_pattern, path_pattern).
  std::uint32_t shard_of_rule(std::string_view host_pattern,
                              std::string_view path_pattern) const;

  /// Rendezvous preference list for `shard` (primary first). For
  /// kGlobalShard the full membership, rotated deterministically.
  std::vector<std::string> owners(std::uint32_t shard) const;

  bool owns(std::string_view replica, std::uint32_t shard) const;

  /// Every shard id a replica owns, kGlobalShard included.
  std::vector<std::uint32_t> shards_of(std::string_view replica) const;

  /// All shard ids: 0..num_shards-1 plus kGlobalShard.
  std::vector<std::uint32_t> all_shards() const;

  std::uint32_t effective_replication() const noexcept;

  void encode(xdr::Encoder& enc) const;
  static Result<ShardMap> decode(xdr::Decoder& dec);

  friend bool operator==(const ShardMap&, const ShardMap&) = default;
};

}  // namespace griddles::gns
