#include "src/gns/shard_map.h"

#include <algorithm>

#include "src/common/bytes.h"

namespace griddles::gns {

namespace {
std::uint64_t hash_text(std::string_view text) {
  return fnv1a(as_bytes_view(text));
}

/// splitmix64 finalizer — the rendezvous weight mixer. Independent of
/// fault::mix so shard placement never changes with fault-plan code.
std::uint64_t finalize(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
}  // namespace

std::uint32_t ShardMap::shard_of(std::string_view host,
                                 std::string_view path) const {
  const std::uint32_t shards = std::max<std::uint32_t>(1, num_shards);
  const std::uint64_t h =
      finalize(hash_text(host) ^ (hash_text(path) * 0x100000001b3ULL));
  return static_cast<std::uint32_t>(h % shards);
}

std::uint32_t ShardMap::shard_of_rule(std::string_view host_pattern,
                                      std::string_view path_pattern) const {
  const auto globs = [](std::string_view pattern) {
    return pattern.find_first_of("*?") != std::string_view::npos;
  };
  if (globs(host_pattern) || globs(path_pattern)) return kGlobalShard;
  return shard_of(host_pattern, path_pattern);
}

std::uint32_t ShardMap::effective_replication() const noexcept {
  const auto count = static_cast<std::uint32_t>(replicas.size());
  if (replication == 0 || replication >= count) return count;
  return replication;
}

std::vector<std::string> ShardMap::owners(std::uint32_t shard) const {
  // Highest-random-weight: stable under membership change except for
  // the shards the joining/leaving replica wins or loses.
  std::vector<std::pair<std::uint64_t, std::string>> ranked;
  ranked.reserve(replicas.size());
  for (const std::string& replica : replicas) {
    ranked.emplace_back(finalize(hash_text(replica) ^ (shard + 1)),
                        replica);
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) {
              return a.first != b.first ? a.first > b.first
                                        : a.second < b.second;
            });
  const std::size_t take = shard == kGlobalShard
                               ? replicas.size()
                               : effective_replication();
  std::vector<std::string> result;
  result.reserve(take);
  for (std::size_t i = 0; i < take && i < ranked.size(); ++i) {
    result.push_back(ranked[i].second);
  }
  return result;
}

bool ShardMap::owns(std::string_view replica, std::uint32_t shard) const {
  if (shard == kGlobalShard) {
    return std::find(replicas.begin(), replicas.end(), replica) !=
           replicas.end();
  }
  const std::vector<std::string> list = owners(shard);
  return std::find(list.begin(), list.end(), replica) != list.end();
}

std::vector<std::uint32_t> ShardMap::shards_of(
    std::string_view replica) const {
  std::vector<std::uint32_t> result;
  for (std::uint32_t shard = 0; shard < num_shards; ++shard) {
    if (owns(replica, shard)) result.push_back(shard);
  }
  if (owns(replica, kGlobalShard)) result.push_back(kGlobalShard);
  return result;
}

std::vector<std::uint32_t> ShardMap::all_shards() const {
  std::vector<std::uint32_t> result;
  result.reserve(num_shards + 1);
  for (std::uint32_t shard = 0; shard < num_shards; ++shard) {
    result.push_back(shard);
  }
  result.push_back(kGlobalShard);
  return result;
}

void ShardMap::encode(xdr::Encoder& enc) const {
  enc.put_u64(epoch);
  enc.put_u32(num_shards);
  enc.put_u32(replication);
  enc.put_vector(replicas, [](xdr::Encoder& e, const std::string& name) {
    e.put_string(name);
  });
}

Result<ShardMap> ShardMap::decode(xdr::Decoder& dec) {
  ShardMap map;
  GL_ASSIGN_OR_RETURN(map.epoch, dec.u64());
  GL_ASSIGN_OR_RETURN(map.num_shards, dec.u32());
  GL_ASSIGN_OR_RETURN(map.replication, dec.u32());
  GL_ASSIGN_OR_RETURN(map.replicas, dec.vector<std::string>([](
                                        xdr::Decoder& d) {
                        return d.string();
                      }));
  return map;
}

}  // namespace griddles::gns
