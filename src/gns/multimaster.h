// Multi-master GNS replica node and its peer RPC face.
//
// The old "replicated" GNS was N servers fronting ONE shared Database —
// replica loss was survivable but replicas could never diverge, so
// partition behaviour was untestable. A ReplicaNode owns its OWN
// ReplicaStore: writes coordinate on one owner (vector-clock bump +
// Lamport priority), replicate synchronously to the shard's co-owners,
// and tolerate replication failure — a partitioned or dead peer simply
// misses the write and anti-entropy repairs it after the fault heals.
//
// Wire compatibility: method id 1 (kLookup) answers the exact frame
// GnsClient speaks against a single-master GnsServer, so the
// ReplicatedNameService client reuses GnsClient for reads and the
// version-bump cache invalidation keeps working. The multi-master verbs
// (put/replicate/digest/exchange/map install) use new ids.
//
// Fault surface (consulted BEFORE any peer RPC, sender side, so the
// injection schedule is deterministic per message):
//   - Site::kGnsSync, key sync_pair_key(a, b): `partition@gns:<a>-<b>`
//     severs replicate-forwards and anti-entropy between a and b;
//   - Site::kGns, key <replica>: `die@gns:<replica>` stops that replica
//     from sending OR receiving sync — a dead replica both misses
//     writes and cannot pull repairs, which is what makes the
//     ROADMAP divergence drill produce real divergence.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/common/thread_annotations.h"
#include "src/gns/service.h"
#include "src/gns/shard_map.h"
#include "src/gns/store.h"

namespace griddles::gns {

/// Canonical fault-plan key for the (a, b) sync pair: the two names
/// sorted and joined with '-', so one `partition@gns:a-b` rule severs
/// both directions regardless of which side initiates.
std::string sync_pair_key(std::string_view a, std::string_view b);

/// Multi-master RPC method ids. kLookup deliberately shares id 1 and
/// frame layout with gns::Method::kLookup (GnsClient compatibility).
enum class PeerMethod : std::uint16_t {
  kLookup = 1,
  kPut = 6,         // coordinate a client write (may forward to owner)
  kReplicate = 7,   // owner -> co-owner push of one versioned entry
  kDigests = 8,     // per-shard digests of the callee's store
  kExchange = 9,    // bidirectional entry swap for one divergent shard
  kInstallMap = 10, // push a higher-epoch ShardMap
  kGetMap = 11,     // current map + (name, endpoint) roster
};

/// One (name, endpoint) membership row as served by kGetMap.
struct ReplicaAddress {
  std::string name;
  net::Endpoint endpoint;
};

/// Typed client for the multi-master verbs. Thread-safe (the underlying
/// RpcClient serialises calls).
class PeerClient {
 public:
  PeerClient(net::Transport& transport, net::Endpoint server,
             net::WireFormat format = net::WireFormat::kBinary);

  /// Coordinates a write. `allow_forward` lets the callee relay to the
  /// shard owner when it no longer owns the key (stale client map);
  /// forwarded hops send false so a map disagreement cannot loop.
  /// Returns the callee's map epoch (stale callers should refresh).
  Result<std::uint64_t> put(const MappingRule& rule, bool tombstone,
                            bool allow_forward);

  Result<std::vector<std::pair<std::uint32_t, std::uint64_t>>> digests();

  /// Sends `mine` for `shard`; the callee merges them and replies with
  /// its own entries, which the caller merges — one RPC, both repaired.
  Result<std::vector<VersionedRule>> exchange(
      std::uint32_t shard, const std::vector<VersionedRule>& mine);

  Status replicate(std::uint32_t shard, const VersionedRule& entry);
  Status install_map(const ShardMap& map);
  Result<std::pair<ShardMap, std::vector<ReplicaAddress>>> get_map();

 private:
  net::RpcClient rpc_;
};

/// One multi-master replica: its own versioned store, the current shard
/// map, a peer registry, and the RPC server face.
class ReplicaNode {
 public:
  ReplicaNode(std::string name, net::Transport& transport,
              net::Endpoint bind,
              net::WireFormat format = net::WireFormat::kBinary);

  Status start() { return rpc_.start(); }
  void stop() { rpc_.stop(); }

  const std::string& name() const noexcept { return name_; }
  net::Endpoint endpoint() const { return rpc_.endpoint(); }

  /// Installs `map` if its epoch is newer (idempotent otherwise) and
  /// bumps the lookup version so client caches revalidate.
  void set_map(ShardMap map);
  ShardMap map() const;

  void set_peer(const std::string& peer, net::Endpoint endpoint);
  void remove_peer(const std::string& peer);
  std::vector<ReplicaAddress> roster() const;

  /// Coordinates a write on this node (or forwards it to the shard's
  /// primary when this node does not own the shard and `allow_forward`).
  /// Replication failures are tolerated and counted
  /// (gns.replicate.failed) — anti-entropy repairs the miss.
  Result<std::uint64_t> put(MappingRule rule, bool tombstone,
                            bool allow_forward);

  /// One anti-entropy exchange with `peer`: compare digests for every
  /// shard both own, swap entries for the divergent ones. Returns the
  /// number of entries this side repaired (kNew/kConflict applies).
  /// Fails typed when the pair is partitioned or either end is dead.
  Result<std::uint64_t> sync_with(const std::string& peer);

  /// Targeted handoff sync: pull one shard's entries from `peer`
  /// (runtime reconfiguration primes a new owner BEFORE the new map is
  /// installed, so no lookup ever observes a missing shard).
  Status sync_shard_from(const std::string& peer, std::uint32_t shard);

  /// Post-handoff GC: drop `shard`'s bucket once the wall clock passes
  /// `after` (the old owner serves stale-map readers until then).
  void schedule_drop(std::uint32_t shard, WallClock::time_point after);
  /// Applies due drops (called from the anti-entropy tick).
  void gc_dropped_shards();

  /// Monotonic lookup version: bumped on every store change or map
  /// install, echoed by kLookup — GnsClient's cache invalidation key.
  std::uint64_t version() const noexcept {
    return version_.load(std::memory_order_relaxed);
  }

  ReplicaStore& store() noexcept { return store_; }
  const ReplicaStore& store() const noexcept { return store_; }

 private:
  void register_handlers();
  void bump_version() noexcept {
    version_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Consults the armed fault plan for one sync message to `peer`:
  /// kSever when the pair is partitioned, kUnavailable when either end
  /// is `die@gns` dead; injected delays are slept here.
  Status consult_sync_fault(const std::string& peer);

  std::shared_ptr<PeerClient> peer_client(const std::string& peer);

  /// Merges `entry`, bumping the lookup version and the anti-entropy
  /// repair counter (when `count_repair`) on effective change.
  ReplicaStore::Applied merge_entry(std::uint32_t shard,
                                    const VersionedRule& entry,
                                    bool count_repair);

  const std::string name_;
  net::Transport& transport_;
  const net::WireFormat format_;
  ReplicaStore store_;
  net::RpcServer rpc_;

  // lint: not-a-metric (cache-invalidation version, echoed by kLookup)
  std::atomic<std::uint64_t> version_{1};

  struct Peer {
    net::Endpoint endpoint;
    std::shared_ptr<PeerClient> client;  // lazily dialled
  };

  struct PendingDrop {
    std::uint32_t shard = 0;
    WallClock::time_point after{};
  };

  mutable Mutex mu_;
  ShardMap map_ GUARDED_BY(mu_);
  std::map<std::string, Peer> peers_ GUARDED_BY(mu_);
  std::vector<PendingDrop> pending_drops_ GUARDED_BY(mu_);
};

}  // namespace griddles::gns
