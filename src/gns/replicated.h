// Replicated GNS client face: one NameService over a replica set.
//
// Against a multi-master deployment (gns::ReplicaNode / GnsCluster) the
// service is shard-aware: it caches the cluster's ShardMap and walks
// each key's rendezvous preference list (primary first), so reads land
// on the replica that coordinated the latest write for that shard.
// Against plain single-master GnsServers (which do not speak kGetMap)
// it degrades to the old behaviour — replicas walked in registration
// order over one shared database.
//
// Resilience per replica attempt (unchanged machinery):
//   - circuit breakers: closed -> open after `failure_threshold`
//     consecutive kUnavailable lookups, open -> half-open after a fixed
//     `cooldown` (exactly ONE probe is admitted, counted by
//     gns.breaker.probe), half-open -> closed on success;
//   - failover: any replica's transient failure moves the walk to the
//     next candidate (`gns.failover` counts lookups that survived);
//   - mapping leases: every success is cached with a wall TTL and
//     served only when every candidate is down (`gns.lease.served`).
//
// Writes (add_rule/remove_rule) route to the shard's owner and then
// WRITE-THROUGH INVALIDATE: every per-replica client cache is flushed
// and matching leases are dropped, closing the stale-read window where
// a remap was observable only after the client TTL expired.
//
// The cached shard map refreshes on a TTL shorter than the cluster's
// handoff lease, and once more on a total walk failure — so runtime
// replica add/remove never loses a lookup: stale-map reads hit the old
// owner (still serving its lease), refreshed-map reads hit the primed
// new owner.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/common/thread_annotations.h"
#include "src/gns/multimaster.h"
#include "src/gns/service.h"

namespace griddles::gns {

/// Circuit-breaker state of one replica, in the classic three-state
/// machine (see DESIGN.md "Control-plane resilience").
enum class BreakerState : std::uint8_t { kClosed = 0, kOpen = 1, kHalfOpen = 2 };

std::string_view breaker_state_name(BreakerState state) noexcept;

class ReplicatedNameService final : public NameService {
 public:
  struct Options {
    /// Consecutive kUnavailable lookups that open a replica's breaker.
    int failure_threshold = 3;
    /// Wall time an open breaker waits before admitting the half-open
    /// probe lookup. Fixed, so schedules replay deterministically.
    std::chrono::milliseconds cooldown{250};
    /// Wall-clock lifetime of a cached mapping lease; leases are served
    /// only when every replica is down or skipped. Zero disables them.
    std::chrono::milliseconds lease_ttl{30000};
    /// Per-replica client cache TTL (see GnsClient).
    std::chrono::milliseconds client_cache_ttl{200};
    /// How long a cached ShardMap is trusted before revalidation; must
    /// stay below the cluster's handoff lease so reconfiguration never
    /// strands a client on a dropped shard. Zero refetches every lookup.
    std::chrono::milliseconds map_refresh{500};
    net::WireFormat format = net::WireFormat::kBinary;
  };

  ReplicatedNameService(net::Transport& transport, Options options);
  explicit ReplicatedNameService(net::Transport& transport)
      : ReplicatedNameService(transport, Options{}) {}

  /// Registers a replica; `name` doubles as the fault-plan site key
  /// (`die@gns:<name>`). Multi-master deployments may grow the roster
  /// later via map refresh; single-master walks follow this order.
  void add_replica(std::string name, net::Endpoint endpoint);

  /// Resolves via the key's owner preference list (or registration
  /// order without a map), failing over on transient errors; under
  /// total outage serves a fresh lease or the last typed error.
  Result<std::optional<FileMapping>> lookup(
      const std::string& host, const std::string& path) override;

  /// Coordinates a rule write on the shard's owner, then invalidates
  /// every replica client cache and the leases the rule shadows
  /// (multi-master; falls back to GnsClient::add_rule without a map).
  Status add_rule(const MappingRule& rule);

  /// Tombstones the rule keyed (host_pattern, path_pattern).
  Status remove_rule(const std::string& host_pattern,
                     const std::string& path_pattern);

  std::size_t replica_count() const;
  BreakerState breaker_state(std::string_view name) const;
  /// Leases currently held (tests).
  std::size_t lease_count() const;
  /// The cached map's epoch, 0 before any fetch (tests).
  std::uint64_t map_epoch() const;

 private:
  struct Replica {
    std::string name;
    net::Endpoint endpoint;
    std::unique_ptr<GnsClient> client;   // lookups (kLookup-compatible)
    std::unique_ptr<PeerClient> control; // writes + map fetch
    // lint: not-a-metric (breaker state machine, exported via gauges)
    std::atomic<std::uint8_t> state{
        static_cast<std::uint8_t>(BreakerState::kClosed)};
    // lint: not-a-metric (breaker bookkeeping, reset on success)
    std::atomic<int> failures{0};
    // lint: not-a-metric (wall timestamp of the open transition)
    std::atomic<std::int64_t> opened_at_ns{0};
  };

  struct Lease {
    std::optional<FileMapping> mapping;
    WallClock::time_point stored_at{};
  };

  /// Breaker gate: may this lookup attempt hit `replica`? Claims the
  /// half-open probe slot when the cooldown has elapsed.
  bool admit(Replica& replica);
  void record_success(Replica& replica);
  void record_failure(Replica& replica);

  void store_lease(const std::string& host, const std::string& path,
                   const std::optional<FileMapping>& mapping);
  /// A still-fresh lease for (host, path), if any.
  std::optional<std::optional<FileMapping>> fresh_lease(
      const std::string& host, const std::string& path) const;

  /// Revalidates the cached shard map when missing, expired, or
  /// `force`d; grows the roster with replicas the cluster added. A
  /// deployment that does not speak kGetMap is remembered and never
  /// asked again (single-master mode).
  void refresh_map(bool force);

  std::vector<Replica*> replicas_snapshot() const;
  /// Candidate order for (host, path): the shard's map owners first
  /// (preference order), then every remaining replica as a stale-map
  /// fallback; without a map, registration order.
  std::vector<Replica*> walk_order(const std::string& host,
                                   const std::string& path) const;
  /// Candidate order for a rule write (shard_of_rule instead of
  /// shard_of; glob rules route to the broadcast shard's owners).
  std::vector<Replica*> rule_order(const MappingRule& rule) const;
  void add_replica_locked(std::string name, net::Endpoint endpoint)
      REQUIRES(mu_);
  /// Multi-master write: coordinate on the first healthy owner.
  Status write_mapped(const MappingRule& rule, bool tombstone);

  /// Flushes every replica client cache and drops the leases matched
  /// by (host_pattern, path_pattern) — the write-through invalidation.
  void invalidate_after_write(const std::string& host_pattern,
                              const std::string& path_pattern);

  net::Transport& transport_;
  const Options options_;

  mutable Mutex mu_;
  std::vector<std::unique_ptr<Replica>> replicas_ GUARDED_BY(mu_);
  std::map<std::pair<std::string, std::string>, Lease> leases_
      GUARDED_BY(mu_);
  ShardMap map_ GUARDED_BY(mu_);
  bool have_map_ GUARDED_BY(mu_) = false;
  bool map_unsupported_ GUARDED_BY(mu_) = false;
  WallClock::time_point map_fetched_at_ GUARDED_BY(mu_){};
};

}  // namespace griddles::gns
