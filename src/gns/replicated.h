// Replicated GNS: one NameService face over N gns::Service replicas.
//
// The paper treats the GNS as a single point the File Multiplexer must
// reach on every uncached open; grid deployments that survived treated
// name services as replicated, degradable components. This layer adds:
//
//   - per-replica circuit breakers: closed -> open after
//     `failure_threshold` consecutive kUnavailable lookups, open ->
//     half-open after a fixed `cooldown` (one probe lookup is admitted),
//     half-open -> closed on success / back to open on failure;
//   - failover: a lookup walks replicas in registration order and any
//     replica's transient failure just moves it to the next one
//     (`gns.failover` counts lookups that survived this way);
//   - mapping leases: every successful lookup is cached with a wall TTL
//     and served only when ALL replicas are down or skipped, so a
//     workflow holding warm leases rides out a total GNS outage
//     (`gns.lease.served`) while cold lookups fail typed kUnavailable.
//
// The breaker hot path (every lookup against a healthy replica) is one
// relaxed atomic load; state transitions use CAS so racing lookups
// account each transition exactly once. Fault-plan verdicts at
// Site::kGns (keyed by replica name) are consulted before any RPC, so
// `die@gns:*` produces fast typed failures rather than retry stalls.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/common/thread_annotations.h"
#include "src/gns/service.h"

namespace griddles::gns {

/// Circuit-breaker state of one replica, in the classic three-state
/// machine (see DESIGN.md "Control-plane resilience").
enum class BreakerState : std::uint8_t { kClosed = 0, kOpen = 1, kHalfOpen = 2 };

std::string_view breaker_state_name(BreakerState state) noexcept;

class ReplicatedNameService final : public NameService {
 public:
  struct Options {
    /// Consecutive kUnavailable lookups that open a replica's breaker.
    int failure_threshold = 3;
    /// Wall time an open breaker waits before admitting the half-open
    /// probe lookup. Fixed, so schedules replay deterministically.
    std::chrono::milliseconds cooldown{250};
    /// Wall-clock lifetime of a cached mapping lease; leases are served
    /// only when every replica is down or skipped. Zero disables them.
    std::chrono::milliseconds lease_ttl{30000};
    /// Per-replica client cache TTL (see GnsClient).
    std::chrono::milliseconds client_cache_ttl{200};
    net::WireFormat format = net::WireFormat::kBinary;
  };

  ReplicatedNameService(net::Transport& transport, Options options);
  explicit ReplicatedNameService(net::Transport& transport)
      : ReplicatedNameService(transport, Options{}) {}

  /// Registers a replica; `name` doubles as the fault-plan site key
  /// (`die@gns:<name>`). Replicas are tried in registration order.
  /// Register every replica before the first lookup.
  void add_replica(std::string name, net::Endpoint endpoint);

  /// Resolves via the first healthy replica, failing over on transient
  /// errors; under total outage serves a fresh lease or returns the last
  /// replica's kUnavailable.
  Result<std::optional<FileMapping>> lookup(
      const std::string& host, const std::string& path) override;

  std::size_t replica_count() const { return replicas_.size(); }
  BreakerState breaker_state(std::string_view name) const;
  /// Leases currently held (tests).
  std::size_t lease_count() const;

 private:
  struct Replica {
    std::string name;
    std::unique_ptr<GnsClient> client;
    // lint: not-a-metric (breaker state machine, exported via gauges)
    std::atomic<std::uint8_t> state{
        static_cast<std::uint8_t>(BreakerState::kClosed)};
    // lint: not-a-metric (breaker bookkeeping, reset on success)
    std::atomic<int> failures{0};
    // lint: not-a-metric (wall timestamp of the open transition)
    std::atomic<std::int64_t> opened_at_ns{0};
  };

  struct Lease {
    std::optional<FileMapping> mapping;
    WallClock::time_point stored_at{};
  };

  /// Breaker gate: may this lookup attempt hit `replica`? Claims the
  /// half-open probe slot when the cooldown has elapsed.
  bool admit(Replica& replica);
  void record_success(Replica& replica);
  void record_failure(Replica& replica);

  void store_lease(const std::string& host, const std::string& path,
                   const std::optional<FileMapping>& mapping);
  /// A still-fresh lease for (host, path), if any.
  std::optional<std::optional<FileMapping>> fresh_lease(
      const std::string& host, const std::string& path) const;

  net::Transport& transport_;
  const Options options_;
  std::vector<std::unique_ptr<Replica>> replicas_;  // fixed after setup

  mutable Mutex mu_;
  std::map<std::pair<std::string, std::string>, Lease> leases_
      GUARDED_BY(mu_);
};

}  // namespace griddles::gns
