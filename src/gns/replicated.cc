#include "src/gns/replicated.h"

#include <algorithm>
#include <optional>

#include "src/common/deadline.h"
#include "src/common/strings.h"
#include "src/fault/plan.h"
#include "src/obs/metrics.h"
#include "src/obs/span.h"

namespace griddles::gns {

namespace {
/// Handles cached once; see src/obs/metrics.h naming scheme.
struct GnsMetrics {
  obs::Counter& failover;        // lookups that survived a replica loss
  obs::Counter& lease_served;    // lookups served from a lease (outage)
  obs::Counter& breaker_opened;  // closed -> open transitions
  obs::Counter& breaker_recovered;  // half-open -> closed transitions
  obs::Counter& breaker_probe;      // half-open probe slots claimed
  obs::Gauge& breakers_open;        // replicas currently open
  obs::Gauge& breakers_half_open;   // replicas currently probing

  static GnsMetrics& get() {
    auto& registry = obs::MetricsRegistry::global();
    static GnsMetrics metrics{
        registry.counter("gns.failover"),
        registry.counter("gns.lease.served"),
        registry.counter("gns.breaker.opened"),
        registry.counter("gns.breaker.recovered"),
        registry.counter("gns.breaker.probe"),
        registry.gauge("gns.breaker.open"),
        registry.gauge("gns.breaker.half_open"),
    };
    return metrics;
  }
};

std::int64_t wall_now_ns() {
  return WallClock::now().time_since_epoch().count();
}

/// Consults the armed plan for one client-side attempt against
/// `replica` (Site::kGns, keyed by replica name — never severed by
/// partition rules, which live at Site::kGnsSync). Returns false when
/// the replica is injected-dead; sleeps injected delays.
bool replica_alive(const std::string& replica) {
  fault::Plan* plan = fault::armed();
  if (plan == nullptr) return true;
  const fault::Decision verdict =
      plan->consult(fault::Site::kGns, replica);
  if (verdict.action == fault::Decision::Action::kFail ||
      verdict.action == fault::Decision::Action::kKill) {
    return false;
  }
  if (verdict.action == fault::Decision::Action::kDelay) {
    fault::sleep_for_model(verdict.delay);
  }
  return true;
}
}  // namespace

std::string_view breaker_state_name(BreakerState state) noexcept {
  switch (state) {
    case BreakerState::kClosed: return "closed";
    case BreakerState::kOpen: return "open";
    case BreakerState::kHalfOpen: return "half-open";
  }
  return "?";
}

ReplicatedNameService::ReplicatedNameService(net::Transport& transport,
                                             Options options)
    : transport_(transport), options_(options) {}

void ReplicatedNameService::add_replica_locked(std::string name,
                                               net::Endpoint endpoint) {
  auto replica = std::make_unique<Replica>();
  replica->name = std::move(name);
  replica->endpoint = endpoint;
  replica->client = std::make_unique<GnsClient>(
      transport_, endpoint, options_.format, options_.client_cache_ttl);
  replica->control = std::make_unique<PeerClient>(transport_, endpoint,
                                                  options_.format);
  replicas_.push_back(std::move(replica));
}

void ReplicatedNameService::add_replica(std::string name,
                                        net::Endpoint endpoint) {
  MutexLock lock(mu_);
  add_replica_locked(std::move(name), std::move(endpoint));
}

std::vector<ReplicatedNameService::Replica*>
ReplicatedNameService::replicas_snapshot() const {
  MutexLock lock(mu_);
  std::vector<Replica*> result;
  result.reserve(replicas_.size());
  for (const auto& replica : replicas_) result.push_back(replica.get());
  return result;
}

std::size_t ReplicatedNameService::replica_count() const {
  MutexLock lock(mu_);
  return replicas_.size();
}

std::uint64_t ReplicatedNameService::map_epoch() const {
  MutexLock lock(mu_);
  return have_map_ ? map_.epoch : 0;
}

namespace {
/// Owners-first candidate order shared by lookups and writes.
template <typename Replicas>
std::vector<typename Replicas::value_type::element_type*> order_for(
    const Replicas& replicas, const std::vector<std::string>& owners) {
  using Ptr = typename Replicas::value_type::element_type*;
  std::vector<Ptr> result;
  result.reserve(replicas.size());
  for (const std::string& owner : owners) {
    for (const auto& replica : replicas) {
      if (replica->name == owner) {
        result.push_back(replica.get());
        break;
      }
    }
  }
  for (const auto& replica : replicas) {
    if (std::find(result.begin(), result.end(), replica.get()) ==
        result.end()) {
      result.push_back(replica.get());
    }
  }
  return result;
}
}  // namespace

std::vector<ReplicatedNameService::Replica*>
ReplicatedNameService::walk_order(const std::string& host,
                                  const std::string& path) const {
  MutexLock lock(mu_);
  if (!have_map_) {
    std::vector<Replica*> result;
    result.reserve(replicas_.size());
    for (const auto& replica : replicas_) result.push_back(replica.get());
    return result;
  }
  return order_for(replicas_, map_.owners(map_.shard_of(host, path)));
}

std::vector<ReplicatedNameService::Replica*>
ReplicatedNameService::rule_order(const MappingRule& rule) const {
  MutexLock lock(mu_);
  if (!have_map_) {
    std::vector<Replica*> result;
    result.reserve(replicas_.size());
    for (const auto& replica : replicas_) result.push_back(replica.get());
    return result;
  }
  return order_for(replicas_,
                   map_.owners(map_.shard_of_rule(rule.host_pattern,
                                                  rule.path_pattern)));
}

void ReplicatedNameService::refresh_map(bool force) {
  {
    MutexLock lock(mu_);
    if (map_unsupported_ || replicas_.empty()) return;
    if (!force && have_map_ && options_.map_refresh.count() > 0 &&
        WallClock::now() - map_fetched_at_ < options_.map_refresh) {
      return;
    }
    // Stamp the attempt so a down cluster is retried once per window,
    // not once per lookup.
    map_fetched_at_ = WallClock::now();
  }
  for (Replica* replica : replicas_snapshot()) {
    if (!replica_alive(replica->name)) continue;
    Result<std::pair<ShardMap, std::vector<ReplicaAddress>>> fetched =
        replica->control->get_map();
    if (fetched.is_ok()) {
      ShardMap& fresh = fetched->first;
      MutexLock lock(mu_);
      for (const ReplicaAddress& address : fetched->second) {
        const bool known = std::any_of(
            replicas_.begin(), replicas_.end(), [&](const auto& known) {
              return known->name == address.name;
            });
        if (!known) add_replica_locked(address.name, address.endpoint);
      }
      if (!have_map_ || fresh.epoch >= map_.epoch) {
        map_ = std::move(fresh);
        have_map_ = true;
      }
      map_fetched_at_ = WallClock::now();
      return;
    }
    const ErrorCode code = fetched.status().code();
    if (code != ErrorCode::kUnavailable && code != ErrorCode::kTimeout) {
      // The replica answered but does not speak kGetMap: a plain
      // single-master GnsServer deployment. Remember, don't re-ask.
      MutexLock lock(mu_);
      map_unsupported_ = true;
      return;
    }
  }
}

bool ReplicatedNameService::admit(Replica& replica) {
  // Hot path (healthy replica): one relaxed load, no writes.
  const auto state = static_cast<BreakerState>(
      replica.state.load(std::memory_order_relaxed));
  if (state == BreakerState::kClosed) return true;
  if (state == BreakerState::kHalfOpen) return false;  // probe in flight
  const std::int64_t cooldown_ns =
      std::chrono::nanoseconds(options_.cooldown).count();
  if (wall_now_ns() - replica.opened_at_ns.load(std::memory_order_relaxed) <
      cooldown_ns) {
    return false;
  }
  // Cooldown elapsed: claim the single half-open probe slot.
  auto expected = static_cast<std::uint8_t>(BreakerState::kOpen);
  if (replica.state.compare_exchange_strong(
          expected, static_cast<std::uint8_t>(BreakerState::kHalfOpen),
          std::memory_order_acq_rel, std::memory_order_relaxed)) {
    GnsMetrics::get().breakers_open.sub(1);
    GnsMetrics::get().breakers_half_open.add(1);
    GnsMetrics::get().breaker_probe.add();
    return true;
  }
  return false;
}

void ReplicatedNameService::record_success(Replica& replica) {
  replica.failures.store(0, std::memory_order_relaxed);
  const auto previous = static_cast<BreakerState>(replica.state.exchange(
      static_cast<std::uint8_t>(BreakerState::kClosed),
      std::memory_order_acq_rel));
  if (previous == BreakerState::kHalfOpen) {
    GnsMetrics::get().breakers_half_open.sub(1);
    GnsMetrics::get().breaker_recovered.add();
  } else if (previous == BreakerState::kOpen) {
    // Shouldn't happen (admit gates open replicas) but keep gauges sane.
    GnsMetrics::get().breakers_open.sub(1);
    GnsMetrics::get().breaker_recovered.add();
  }
}

void ReplicatedNameService::record_failure(Replica& replica) {
  const int failures =
      replica.failures.fetch_add(1, std::memory_order_relaxed) + 1;
  const auto state = static_cast<BreakerState>(
      replica.state.load(std::memory_order_relaxed));
  if (state == BreakerState::kHalfOpen) {
    // The probe failed: back to open, cooldown restarts.
    replica.opened_at_ns.store(wall_now_ns(), std::memory_order_relaxed);
    auto expected = static_cast<std::uint8_t>(BreakerState::kHalfOpen);
    if (replica.state.compare_exchange_strong(
            expected, static_cast<std::uint8_t>(BreakerState::kOpen),
            std::memory_order_acq_rel, std::memory_order_relaxed)) {
      GnsMetrics::get().breakers_half_open.sub(1);
      GnsMetrics::get().breakers_open.add(1);
    }
  } else if (state == BreakerState::kClosed &&
             failures >= options_.failure_threshold) {
    replica.opened_at_ns.store(wall_now_ns(), std::memory_order_relaxed);
    auto expected = static_cast<std::uint8_t>(BreakerState::kClosed);
    if (replica.state.compare_exchange_strong(
            expected, static_cast<std::uint8_t>(BreakerState::kOpen),
            std::memory_order_acq_rel, std::memory_order_relaxed)) {
      GnsMetrics::get().breaker_opened.add();
      GnsMetrics::get().breakers_open.add(1);
    }
  }
}

void ReplicatedNameService::store_lease(
    const std::string& host, const std::string& path,
    const std::optional<FileMapping>& mapping) {
  if (options_.lease_ttl <= std::chrono::milliseconds::zero()) return;
  MutexLock lock(mu_);
  leases_[{host, path}] = Lease{mapping, WallClock::now()};
}

std::optional<std::optional<FileMapping>> ReplicatedNameService::fresh_lease(
    const std::string& host, const std::string& path) const {
  if (options_.lease_ttl <= std::chrono::milliseconds::zero()) {
    return std::nullopt;
  }
  MutexLock lock(mu_);
  const auto it = leases_.find({host, path});
  if (it == leases_.end()) return std::nullopt;
  if (WallClock::now() - it->second.stored_at > options_.lease_ttl) {
    return std::nullopt;
  }
  return it->second.mapping;
}

Result<std::optional<FileMapping>> ReplicatedNameService::lookup(
    const std::string& host, const std::string& path) {
  refresh_map(/*force=*/false);
  Status last = unavailable("gns: no replicas registered");
  bool degraded = false;  // some replica was skipped or failed first
  // Opened when the first replica fails or is skipped; covers the rest
  // of the walk, so the timeline shows what the replica loss cost.
  std::optional<obs::Span> failover_span;
  const auto note_degraded = [&](const std::string& replica_name) {
    degraded = true;
    if (!failover_span) {
      failover_span.emplace(obs::SpanKind::kFailover,
                            strings::cat("gns.failover:", replica_name));
    }
  };
  const auto attempt = [&](const std::vector<Replica*>& order)
      -> std::optional<Result<std::optional<FileMapping>>> {
    for (Replica* replica_ptr : order) {
      Replica& replica = *replica_ptr;
      // An expired budget ends the failover walk: trying yet another
      // replica only delays an answer the caller can no longer use.
      if (deadline_expired()) {
        return Result<std::optional<FileMapping>>(
            check_deadline("gns failover walk"));
      }
      if (!replica_alive(replica.name)) {
        last = unavailable(
            strings::cat("injected fault: gns ", replica.name));
        record_failure(replica);
        note_degraded(replica.name);
        continue;
      }
      if (!admit(replica)) {
        note_degraded(replica.name);
        continue;
      }
      auto result = replica.client->lookup(host, path);
      if (result.is_ok()) {
        record_success(replica);
        if (degraded) GnsMetrics::get().failover.add();
        store_lease(host, path, *result);
        return result;
      }
      if (result.status().code() != ErrorCode::kUnavailable) {
        // A definitive answer (bad request, decode failure): every
        // replica would say the same, so neither fail over nor burn
        // the breaker.
        return result;
      }
      record_failure(replica);
      note_degraded(replica.name);
      last = result.status();
    }
    return std::nullopt;
  };

  if (auto answered = attempt(walk_order(host, path)); answered) {
    return std::move(*answered);
  }
  // Every candidate failed. The map may be stale (mid-reconfiguration):
  // revalidate once and re-walk under the new epoch before giving up.
  const std::uint64_t stale_epoch = map_epoch();
  refresh_map(/*force=*/true);
  if (map_epoch() != stale_epoch) {
    if (auto answered = attempt(walk_order(host, path)); answered) {
      return std::move(*answered);
    }
  }
  // Total outage: a warm lease keeps in-flight opens on their last known
  // route; a cold lookup fails typed so callers can recover.
  if (auto lease = fresh_lease(host, path); lease.has_value()) {
    GnsMetrics::get().lease_served.add();
    return *lease;
  }
  return last;
}

Status ReplicatedNameService::write_mapped(const MappingRule& rule,
                                           bool tombstone) {
  Status last = unavailable("gns: no replicas registered");
  for (Replica* replica_ptr : rule_order(rule)) {
    Replica& replica = *replica_ptr;
    if (!replica_alive(replica.name)) {
      last = unavailable(strings::cat("injected fault: gns ", replica.name));
      continue;
    }
    if (!admit(replica)) continue;
    const Result<std::uint64_t> put_result =
        replica.control->put(rule, tombstone, /*allow_forward=*/true);
    if (put_result.is_ok()) {
      record_success(replica);
      if (*put_result != map_epoch()) refresh_map(/*force=*/true);
      return Status::ok();
    }
    if (put_result.status().code() == ErrorCode::kUnavailable) {
      record_failure(replica);
    }
    last = put_result.status();
  }
  return last;
}

Status ReplicatedNameService::add_rule(const MappingRule& rule) {
  refresh_map(/*force=*/false);
  Status written;
  if (map_epoch() != 0) {
    written = write_mapped(rule, /*tombstone=*/false);
  } else {
    // Single-master fallback: any healthy replica edits the shared db.
    written = unavailable("gns: no replicas registered");
    for (Replica* replica : replicas_snapshot()) {
      if (!replica_alive(replica->name)) continue;
      written = replica->client->add_rule(rule);
      if (written.is_ok()) break;
    }
  }
  if (written.is_ok()) {
    invalidate_after_write(rule.host_pattern, rule.path_pattern);
  }
  return written;
}

Status ReplicatedNameService::remove_rule(const std::string& host_pattern,
                                          const std::string& path_pattern) {
  refresh_map(/*force=*/false);
  Status written;
  if (map_epoch() != 0) {
    MappingRule rule;
    rule.host_pattern = host_pattern;
    rule.path_pattern = path_pattern;
    written = write_mapped(rule, /*tombstone=*/true);
  } else {
    written = unavailable("gns: no replicas registered");
    for (Replica* replica : replicas_snapshot()) {
      if (!replica_alive(replica->name)) continue;
      const Result<std::size_t> removed =
          replica->client->remove_rules(host_pattern, path_pattern);
      written = removed.is_ok() ? Status::ok() : removed.status();
      if (written.is_ok()) break;
    }
  }
  if (written.is_ok()) invalidate_after_write(host_pattern, path_pattern);
  return written;
}

void ReplicatedNameService::invalidate_after_write(
    const std::string& host_pattern, const std::string& path_pattern) {
  // Write-through invalidation: without this, a remap stayed invisible
  // until every per-replica cache TTL expired — the stale-read window.
  for (Replica* replica : replicas_snapshot()) {
    replica->client->invalidate_cache();
  }
  MutexLock lock(mu_);
  for (auto it = leases_.begin(); it != leases_.end();) {
    if (strings::glob_match(host_pattern, it->first.first) &&
        strings::glob_match(path_pattern, it->first.second)) {
      it = leases_.erase(it);
    } else {
      ++it;
    }
  }
}

BreakerState ReplicatedNameService::breaker_state(
    std::string_view name) const {
  MutexLock lock(mu_);
  for (const auto& replica : replicas_) {
    if (replica->name == name) {
      return static_cast<BreakerState>(
          replica->state.load(std::memory_order_relaxed));
    }
  }
  return BreakerState::kClosed;
}

std::size_t ReplicatedNameService::lease_count() const {
  MutexLock lock(mu_);
  return leases_.size();
}

}  // namespace griddles::gns
