#include "src/gns/replicated.h"

#include <optional>

#include "src/common/strings.h"
#include "src/fault/plan.h"
#include "src/obs/metrics.h"
#include "src/obs/span.h"

namespace griddles::gns {

namespace {
/// Handles cached once; see src/obs/metrics.h naming scheme.
struct GnsMetrics {
  obs::Counter& failover;        // lookups that survived a replica loss
  obs::Counter& lease_served;    // lookups served from a lease (outage)
  obs::Counter& breaker_opened;  // closed -> open transitions
  obs::Counter& breaker_recovered;  // half-open -> closed transitions
  obs::Gauge& breakers_open;        // replicas currently open
  obs::Gauge& breakers_half_open;   // replicas currently probing

  static GnsMetrics& get() {
    auto& registry = obs::MetricsRegistry::global();
    static GnsMetrics metrics{
        registry.counter("gns.failover"),
        registry.counter("gns.lease.served"),
        registry.counter("gns.breaker.opened"),
        registry.counter("gns.breaker.recovered"),
        registry.gauge("gns.breaker.open"),
        registry.gauge("gns.breaker.half_open"),
    };
    return metrics;
  }
};

std::int64_t wall_now_ns() {
  return WallClock::now().time_since_epoch().count();
}
}  // namespace

std::string_view breaker_state_name(BreakerState state) noexcept {
  switch (state) {
    case BreakerState::kClosed: return "closed";
    case BreakerState::kOpen: return "open";
    case BreakerState::kHalfOpen: return "half-open";
  }
  return "?";
}

ReplicatedNameService::ReplicatedNameService(net::Transport& transport,
                                             Options options)
    : transport_(transport), options_(options) {}

void ReplicatedNameService::add_replica(std::string name,
                                        net::Endpoint endpoint) {
  auto replica = std::make_unique<Replica>();
  replica->name = std::move(name);
  replica->client = std::make_unique<GnsClient>(
      transport_, endpoint, options_.format, options_.client_cache_ttl);
  replicas_.push_back(std::move(replica));
}

bool ReplicatedNameService::admit(Replica& replica) {
  // Hot path (healthy replica): one relaxed load, no writes.
  const auto state = static_cast<BreakerState>(
      replica.state.load(std::memory_order_relaxed));
  if (state == BreakerState::kClosed) return true;
  if (state == BreakerState::kHalfOpen) return false;  // probe in flight
  const std::int64_t cooldown_ns =
      std::chrono::nanoseconds(options_.cooldown).count();
  if (wall_now_ns() - replica.opened_at_ns.load(std::memory_order_relaxed) <
      cooldown_ns) {
    return false;
  }
  // Cooldown elapsed: claim the single half-open probe slot.
  auto expected = static_cast<std::uint8_t>(BreakerState::kOpen);
  if (replica.state.compare_exchange_strong(
          expected, static_cast<std::uint8_t>(BreakerState::kHalfOpen),
          std::memory_order_acq_rel, std::memory_order_relaxed)) {
    GnsMetrics::get().breakers_open.sub(1);
    GnsMetrics::get().breakers_half_open.add(1);
    return true;
  }
  return false;
}

void ReplicatedNameService::record_success(Replica& replica) {
  replica.failures.store(0, std::memory_order_relaxed);
  const auto previous = static_cast<BreakerState>(replica.state.exchange(
      static_cast<std::uint8_t>(BreakerState::kClosed),
      std::memory_order_acq_rel));
  if (previous == BreakerState::kHalfOpen) {
    GnsMetrics::get().breakers_half_open.sub(1);
    GnsMetrics::get().breaker_recovered.add();
  } else if (previous == BreakerState::kOpen) {
    // Shouldn't happen (admit gates open replicas) but keep gauges sane.
    GnsMetrics::get().breakers_open.sub(1);
    GnsMetrics::get().breaker_recovered.add();
  }
}

void ReplicatedNameService::record_failure(Replica& replica) {
  const int failures =
      replica.failures.fetch_add(1, std::memory_order_relaxed) + 1;
  const auto state = static_cast<BreakerState>(
      replica.state.load(std::memory_order_relaxed));
  if (state == BreakerState::kHalfOpen) {
    // The probe failed: back to open, cooldown restarts.
    replica.opened_at_ns.store(wall_now_ns(), std::memory_order_relaxed);
    auto expected = static_cast<std::uint8_t>(BreakerState::kHalfOpen);
    if (replica.state.compare_exchange_strong(
            expected, static_cast<std::uint8_t>(BreakerState::kOpen),
            std::memory_order_acq_rel, std::memory_order_relaxed)) {
      GnsMetrics::get().breakers_half_open.sub(1);
      GnsMetrics::get().breakers_open.add(1);
    }
  } else if (state == BreakerState::kClosed &&
             failures >= options_.failure_threshold) {
    replica.opened_at_ns.store(wall_now_ns(), std::memory_order_relaxed);
    auto expected = static_cast<std::uint8_t>(BreakerState::kClosed);
    if (replica.state.compare_exchange_strong(
            expected, static_cast<std::uint8_t>(BreakerState::kOpen),
            std::memory_order_acq_rel, std::memory_order_relaxed)) {
      GnsMetrics::get().breaker_opened.add();
      GnsMetrics::get().breakers_open.add(1);
    }
  }
}

void ReplicatedNameService::store_lease(
    const std::string& host, const std::string& path,
    const std::optional<FileMapping>& mapping) {
  if (options_.lease_ttl <= std::chrono::milliseconds::zero()) return;
  MutexLock lock(mu_);
  leases_[{host, path}] = Lease{mapping, WallClock::now()};
}

std::optional<std::optional<FileMapping>> ReplicatedNameService::fresh_lease(
    const std::string& host, const std::string& path) const {
  if (options_.lease_ttl <= std::chrono::milliseconds::zero()) {
    return std::nullopt;
  }
  MutexLock lock(mu_);
  const auto it = leases_.find({host, path});
  if (it == leases_.end()) return std::nullopt;
  if (WallClock::now() - it->second.stored_at > options_.lease_ttl) {
    return std::nullopt;
  }
  return it->second.mapping;
}

Result<std::optional<FileMapping>> ReplicatedNameService::lookup(
    const std::string& host, const std::string& path) {
  Status last = unavailable("gns: no replicas registered");
  bool degraded = false;  // some replica was skipped or failed first
  // Opened when the first replica fails or is skipped; covers the rest
  // of the walk, so the timeline shows what the replica loss cost.
  std::optional<obs::Span> failover_span;
  const auto note_degraded = [&](const std::string& replica_name) {
    degraded = true;
    if (!failover_span) {
      failover_span.emplace(obs::SpanKind::kFailover,
                            strings::cat("gns.failover:", replica_name));
    }
  };
  for (const auto& replica_ptr : replicas_) {
    Replica& replica = *replica_ptr;
    if (fault::Plan* plan = fault::armed(); plan != nullptr) {
      const fault::Decision verdict =
          plan->consult(fault::Site::kGns, replica.name);
      if (verdict.action == fault::Decision::Action::kFail ||
          verdict.action == fault::Decision::Action::kKill) {
        last = unavailable(
            strings::cat("injected fault: gns ", replica.name));
        record_failure(replica);
        note_degraded(replica.name);
        continue;
      }
      if (verdict.action == fault::Decision::Action::kDelay) {
        fault::sleep_for_model(verdict.delay);
      }
    }
    if (!admit(replica)) {
      note_degraded(replica.name);
      continue;
    }
    auto result = replica.client->lookup(host, path);
    if (result.is_ok()) {
      record_success(replica);
      if (degraded) GnsMetrics::get().failover.add();
      store_lease(host, path, *result);
      return result;
    }
    if (result.status().code() != ErrorCode::kUnavailable) {
      // A definitive answer (bad request, decode failure): every replica
      // would say the same, so neither fail over nor burn the breaker.
      return result;
    }
    record_failure(replica);
    note_degraded(replica.name);
    last = result.status();
  }
  // Total outage: a warm lease keeps in-flight opens on their last known
  // route; a cold lookup fails typed so callers can recover.
  if (auto lease = fresh_lease(host, path); lease.has_value()) {
    GnsMetrics::get().lease_served.add();
    return *lease;
  }
  return last;
}

BreakerState ReplicatedNameService::breaker_state(
    std::string_view name) const {
  for (const auto& replica : replicas_) {
    if (replica->name == name) {
      return static_cast<BreakerState>(
          replica->state.load(std::memory_order_relaxed));
    }
  }
  return BreakerState::kClosed;
}

std::size_t ReplicatedNameService::lease_count() const {
  MutexLock lock(mu_);
  return leases_.size();
}

}  // namespace griddles::gns
