#include "src/gns/vclock.h"

#include "src/common/strings.h"

namespace griddles::gns {

std::string_view vorder_name(VOrder order) noexcept {
  switch (order) {
    case VOrder::kEqual: return "equal";
    case VOrder::kBefore: return "before";
    case VOrder::kAfter: return "after";
    case VOrder::kConcurrent: return "concurrent";
  }
  return "?";
}

void VClock::bump(const std::string& replica) { ++counters_[replica]; }

std::uint64_t VClock::count(const std::string& replica) const {
  const auto it = counters_.find(replica);
  return it == counters_.end() ? 0 : it->second;
}

void VClock::join(const VClock& other) {
  for (const auto& [replica, counter] : other.counters_) {
    auto& mine = counters_[replica];
    if (counter > mine) mine = counter;
  }
}

VOrder VClock::compare(const VClock& other) const {
  bool less = false;   // some counter of ours is behind other's
  bool more = false;   // some counter of ours is ahead of other's
  for (const auto& [replica, counter] : counters_) {
    const std::uint64_t theirs = other.count(replica);
    if (counter > theirs) more = true;
    if (counter < theirs) less = true;
  }
  for (const auto& [replica, counter] : other.counters_) {
    if (count(replica) < counter) less = true;
  }
  if (less && more) return VOrder::kConcurrent;
  if (less) return VOrder::kBefore;
  if (more) return VOrder::kAfter;
  return VOrder::kEqual;
}

std::uint64_t VClock::height() const noexcept {
  std::uint64_t sum = 0;
  for (const auto& [replica, counter] : counters_) sum += counter;
  return sum;
}

std::string VClock::to_string() const {
  std::string out = "{";
  bool first = true;
  for (const auto& [replica, counter] : counters_) {
    if (!first) out.push_back(',');
    first = false;
    out += strings::cat(replica, ":", counter);
  }
  out.push_back('}');
  return out;
}

void VClock::encode(xdr::Encoder& enc) const {
  enc.put_u32(static_cast<std::uint32_t>(counters_.size()));
  for (const auto& [replica, counter] : counters_) {
    enc.put_string(replica);
    enc.put_u64(counter);
  }
}

Result<VClock> VClock::decode(xdr::Decoder& dec) {
  VClock clock;
  GL_ASSIGN_OR_RETURN(const std::uint32_t count, dec.u32());
  for (std::uint32_t i = 0; i < count; ++i) {
    GL_ASSIGN_OR_RETURN(std::string replica, dec.string());
    GL_ASSIGN_OR_RETURN(const std::uint64_t counter, dec.u64());
    clock.counters_[std::move(replica)] = counter;
  }
  return clock;
}

}  // namespace griddles::gns
