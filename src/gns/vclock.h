// Vector clocks for multi-master GNS replication.
//
// Every versioned mapping value carries one VClock: a per-replica
// counter map. A replica coordinating a write bumps its own counter over
// the version it read, so causally-ordered writes compare kBefore/kAfter
// and writes issued on different replicas during a partition compare
// kConcurrent — detectable divergence instead of silent last-writer-wins
// (cf. the semilattice-join vclock metadata rethinkdb threads through
// its cluster membership).
//
// The join (pointwise max) is a semilattice operation — commutative,
// associative, idempotent — which is what lets anti-entropy repair merge
// replica states in any order and still converge.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "src/common/status.h"
#include "src/xdr/codec.h"

namespace griddles::gns {

/// Partial order between two vector clocks.
enum class VOrder : std::uint8_t {
  kEqual,
  kBefore,      // this happened-before other
  kAfter,       // other happened-before this
  kConcurrent,  // neither dominates: divergent writes
};

std::string_view vorder_name(VOrder order) noexcept;

class VClock {
 public:
  VClock() = default;

  /// Increments `replica`'s counter (a write coordinated there).
  void bump(const std::string& replica);

  std::uint64_t count(const std::string& replica) const;

  /// Pointwise max with `other` (the semilattice join).
  void join(const VClock& other);

  VOrder compare(const VClock& other) const;

  bool empty() const noexcept { return counters_.empty(); }
  std::size_t size() const noexcept { return counters_.size(); }

  /// Sum of all counters: a Lamport-style height used only for
  /// deterministic conflict ranking, never for causality.
  std::uint64_t height() const noexcept;

  /// "{n0:2,n1:1}" — stable (sorted) rendering for digests and logs.
  std::string to_string() const;

  void encode(xdr::Encoder& enc) const;
  static Result<VClock> decode(xdr::Decoder& dec);

  friend bool operator==(const VClock&, const VClock&) = default;

 private:
  std::map<std::string, std::uint64_t> counters_;
};

}  // namespace griddles::gns
