// GNS mapping model: what the GriddLeS Name Service answers when the File
// Multiplexer asks "the program on host H opened path P — what do I do?".
//
// A mapping selects one of the paper's six IO mechanisms and carries the
// parameters that mechanism needs. Mappings are stored against (host
// pattern, path pattern) keys, where patterns use '*'/'?' globs, so one
// rule can cover a family of files (e.g. every JOB.* intermediate).
#pragma once

#include <cstdint>
#include <string>

#include "src/common/config.h"
#include "src/common/status.h"
#include "src/xdr/codec.h"

namespace griddles::gns {

/// The six IO mechanisms of the paper (§2), plus kAuto which defers the
/// copy-vs-proxy choice for remote files to the FM's AccessAdvisor.
enum class IoMode : std::uint8_t {
  kLocal = 0,        // (1) plain local file IO, with optional renaming
  kRemoteCopy,       // (2)/(5) stage to local disk at open; push back at close
  kRemoteProxy,      // (3) block-level access through the remote file server
  kReplicated,       // (4)/(5) resolve a logical name via the replica catalog
  kGridBuffer,       // (6) direct writer->reader stream channel
  kAuto,             // remote file; advisor picks copy vs proxy at open time
};

std::string_view io_mode_name(IoMode mode) noexcept;
Result<IoMode> io_mode_from_name(std::string_view name);

/// How a mapped file is reached.
struct FileMapping {
  IoMode mode = IoMode::kLocal;

  /// kLocal: the real path (identity when empty). Remote modes: the local
  /// staging path for copies.
  std::string local_path;

  /// Remote modes: the file-server endpoint ("inproc://dione/fileserver")
  /// and the path on that server.
  std::string remote_endpoint;
  std::string remote_path;

  /// kReplicated: logical file name in the replica catalog, plus the
  /// catalog endpoint.
  std::string logical_name;
  std::string catalog_endpoint;

  /// kGridBuffer: global channel name (the rendezvous key matching the
  /// writer with its readers) and the buffer server endpoint.
  std::string channel;
  std::string buffer_endpoint;

  /// kGridBuffer: spill consumed blocks to a cache file so readers may
  /// seek backwards / re-read (paper §3.1). Disable for pure streams.
  bool cache_enabled = true;

  /// kGridBuffer: stream block granularity (paper used 4096).
  std::uint32_t block_size = 4096;

  /// Readers expected on the channel (broadcast when > 1).
  std::uint32_t reader_count = 1;

  /// Optional xdr::RecordSchema text for cross-endian record reordering.
  std::string record_schema;

  /// kAuto: fraction of the file the application is expected to touch
  /// (drives the copy-vs-proxy heuristic of paper §3.1). 1.0 = all of it.
  double access_fraction = 1.0;

  /// kLocal reads: the file is being produced by a concurrently-running
  /// local writer — poll-and-retry at EOF until "<path>.done" appears
  /// (how a conventional-files workflow overlaps stages on one machine).
  bool tail = false;

  friend bool operator==(const FileMapping&, const FileMapping&) = default;
};

/// A database entry: glob patterns over (host, path) plus the mapping.
struct MappingRule {
  std::string host_pattern;  // e.g. "jagan" or "*"
  std::string path_pattern;  // e.g. "/work/JOB.*"
  FileMapping mapping;

  bool matches(std::string_view host, std::string_view path) const;

  friend bool operator==(const MappingRule&, const MappingRule&) = default;
};

void encode_mapping(xdr::Encoder& enc, const FileMapping& mapping);
Result<FileMapping> decode_mapping(xdr::Decoder& dec);
void encode_rule(xdr::Encoder& enc, const MappingRule& rule);
Result<MappingRule> decode_rule(xdr::Decoder& dec);

/// Loads rules from a Config: every section named "mapping:<anything>"
/// becomes one rule, in section order.
Result<std::vector<MappingRule>> rules_from_config(const Config& config);

}  // namespace griddles::gns
