#include "src/gns/store.h"

#include "src/common/bytes.h"
#include "src/common/strings.h"
#include "src/gns/shard_map.h"
#include "src/obs/metrics.h"
#include "src/obs/span.h"

namespace griddles::gns {

namespace {
/// Handles cached once; see src/obs/metrics.h naming scheme.
struct ConflictMetrics {
  obs::Counter& detected;  // concurrent version pairs seen by apply()
  obs::Counter& resolved;  // pairs joined deterministically (== detected)

  static ConflictMetrics& get() {
    auto& registry = obs::MetricsRegistry::global();
    static ConflictMetrics metrics{
        registry.counter("gns.conflict.detected"),
        registry.counter("gns.conflict.resolved"),
    };
    return metrics;
  }
};
}  // namespace

std::string_view applied_name(ReplicaStore::Applied applied) noexcept {
  switch (applied) {
    case ReplicaStore::Applied::kNew: return "new";
    case ReplicaStore::Applied::kEqual: return "equal";
    case ReplicaStore::Applied::kStale: return "stale";
    case ReplicaStore::Applied::kConflict: return "conflict";
  }
  return "?";
}

void encode_versioned(xdr::Encoder& enc, const VersionedRule& entry) {
  encode_rule(enc, entry.rule);
  enc.put_bool(entry.tombstone);
  entry.version.encode(enc);
  enc.put_string(entry.writer);
  enc.put_u64(entry.priority);
}

Result<VersionedRule> decode_versioned(xdr::Decoder& dec) {
  VersionedRule entry;
  GL_ASSIGN_OR_RETURN(entry.rule, decode_rule(dec));
  GL_ASSIGN_OR_RETURN(entry.tombstone, dec.boolean());
  GL_ASSIGN_OR_RETURN(entry.version, VClock::decode(dec));
  GL_ASSIGN_OR_RETURN(entry.writer, dec.string());
  GL_ASSIGN_OR_RETURN(entry.priority, dec.u64());
  return entry;
}

bool ReplicaStore::concurrent_winner(const VersionedRule& incoming,
                                     const VersionedRule& current) {
  if (incoming.priority != current.priority) {
    return incoming.priority > current.priority;
  }
  // Same writer cannot produce concurrent versions (its own counter
  // orders them), so the ids differ and the comparison is total.
  return incoming.writer > current.writer;
}

VersionedRule ReplicaStore::coordinate(std::uint32_t shard,
                                       MappingRule rule, bool tombstone) {
  MutexLock lock(mu_);
  auto& bucket = shards_[shard];
  const Key key = key_of(rule);
  VersionedRule entry;
  entry.rule = std::move(rule);
  entry.tombstone = tombstone;
  const auto it = bucket.find(key);
  if (it != bucket.end()) entry.version = it->second.version;
  entry.version.bump(replica_id_);
  entry.writer = replica_id_;
  entry.priority = ++lamport_;
  bucket[key] = entry;
  return entry;
}

ReplicaStore::Applied ReplicaStore::apply(std::uint32_t shard,
                                          const VersionedRule& entry) {
  MutexLock lock(mu_);
  if (entry.priority > lamport_) lamport_ = entry.priority;
  auto& bucket = shards_[shard];
  const Key key = key_of(entry.rule);
  const auto it = bucket.find(key);
  if (it == bucket.end()) {
    bucket.emplace(key, entry);
    return Applied::kNew;
  }
  VersionedRule& current = it->second;
  switch (current.version.compare(entry.version)) {
    case VOrder::kEqual:
      return Applied::kEqual;
    case VOrder::kBefore:
      current = entry;
      return Applied::kNew;
    case VOrder::kAfter:
      return Applied::kStale;
    case VOrder::kConcurrent:
      break;
  }
  // Divergent writes met: deterministic semilattice join. Both sides
  // of the exchange run the same rule, so they converge to identical
  // bytes regardless of merge order.
  ConflictMetrics::get().detected.add();
  obs::Span conflict_span(
      obs::SpanKind::kConflict,
      strings::cat("gns.conflict:", key.first, "|", key.second));
  conflict_span.add_attr("local", current.version.to_string());
  conflict_span.add_attr("remote", entry.version.to_string());
  VClock joined = current.version;
  joined.join(entry.version);
  if (concurrent_winner(entry, current)) {
    const std::uint64_t priority =
        std::max(current.priority, entry.priority);
    current = entry;
    current.priority = priority;
  }
  conflict_span.add_attr("winner", current.writer);
  current.version = std::move(joined);
  ConflictMetrics::get().resolved.add();
  return Applied::kConflict;
}

std::optional<FileMapping> ReplicaStore::lookup(std::uint32_t shard,
                                                std::string_view host,
                                                std::string_view path) const {
  MutexLock lock(mu_);
  const VersionedRule* best = nullptr;
  const auto consider = [&](std::uint32_t bucket_id) {
    const auto bucket_it = shards_.find(bucket_id);
    if (bucket_it == shards_.end()) return;
    for (const auto& [key, entry] : bucket_it->second) {
      if (entry.tombstone) continue;
      if (!entry.rule.matches(host, path)) continue;
      if (best == nullptr || entry.priority > best->priority ||
          (entry.priority == best->priority &&
           entry.writer > best->writer)) {
        best = &entry;
      }
    }
  };
  consider(shard);
  if (shard != kGlobalShard) consider(kGlobalShard);
  if (best == nullptr) return std::nullopt;
  return best->rule.mapping;
}

std::uint64_t ReplicaStore::digest(std::uint32_t shard) const {
  MutexLock lock(mu_);
  const auto bucket_it = shards_.find(shard);
  if (bucket_it == shards_.end()) return 0;
  // XOR of per-entry hashes: order-independent, so replicas that
  // merged in different orders still produce equal digests.
  std::uint64_t digest = 0;
  for (const auto& [key, entry] : bucket_it->second) {
    xdr::Encoder enc;
    encode_versioned(enc, entry);
    digest ^= fnv1a(enc.buffer());
  }
  return digest;
}

std::vector<VersionedRule> ReplicaStore::entries(
    std::uint32_t shard) const {
  MutexLock lock(mu_);
  std::vector<VersionedRule> result;
  const auto bucket_it = shards_.find(shard);
  if (bucket_it == shards_.end()) return result;
  result.reserve(bucket_it->second.size());
  for (const auto& [key, entry] : bucket_it->second) {
    result.push_back(entry);
  }
  return result;
}

std::size_t ReplicaStore::live_count(std::uint32_t shard) const {
  MutexLock lock(mu_);
  const auto bucket_it = shards_.find(shard);
  if (bucket_it == shards_.end()) return 0;
  std::size_t live = 0;
  for (const auto& [key, entry] : bucket_it->second) {
    if (!entry.tombstone) ++live;
  }
  return live;
}

std::size_t ReplicaStore::live_count() const {
  MutexLock lock(mu_);
  std::size_t live = 0;
  for (const auto& [shard, bucket] : shards_) {
    for (const auto& [key, entry] : bucket) {
      if (!entry.tombstone) ++live;
    }
  }
  return live;
}

void ReplicaStore::drop_shard(std::uint32_t shard) {
  MutexLock lock(mu_);
  shards_.erase(shard);
}

}  // namespace griddles::gns
