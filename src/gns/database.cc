#include "src/gns/database.h"

#include <algorithm>

namespace griddles::gns {

void Database::add_rule(MappingRule rule) {
  MutexLock lock(mu_);
  rules_.push_back(std::move(rule));
  ++version_;
}

void Database::set_rules(std::vector<MappingRule> rules) {
  MutexLock lock(mu_);
  rules_ = std::move(rules);
  ++version_;
}

std::size_t Database::remove_rules(const std::string& host_pattern,
                                   const std::string& path_pattern) {
  MutexLock lock(mu_);
  const auto it = std::remove_if(
      rules_.begin(), rules_.end(), [&](const MappingRule& rule) {
        return rule.host_pattern == host_pattern &&
               rule.path_pattern == path_pattern;
      });
  const std::size_t removed = static_cast<std::size_t>(rules_.end() - it);
  rules_.erase(it, rules_.end());
  if (removed > 0) ++version_;
  return removed;
}

std::optional<FileMapping> Database::lookup(std::string_view host,
                                            std::string_view path) const {
  MutexLock lock(mu_);
  for (auto it = rules_.rbegin(); it != rules_.rend(); ++it) {
    if (it->matches(host, path)) return it->mapping;
  }
  return std::nullopt;
}

std::vector<MappingRule> Database::rules() const {
  MutexLock lock(mu_);
  return rules_;
}

std::uint64_t Database::version() const {
  MutexLock lock(mu_);
  return version_;
}

Status Database::load_config(const Config& config) {
  GL_ASSIGN_OR_RETURN(std::vector<MappingRule> rules,
                      rules_from_config(config));
  MutexLock lock(mu_);
  for (MappingRule& rule : rules) rules_.push_back(std::move(rule));
  ++version_;
  return Status::ok();
}

}  // namespace griddles::gns
